package policy

import (
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/stats"
)

func j(id int, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func TestOrderings(t *testing.T) {
	short := j(1, 10, 2, 100)
	long := j(2, 5, 2, 1000)
	wide := j(3, 20, 8, 100)

	if !(FCFS{}).Less(long, short) { // earlier submit first
		t.Fatal("FCFS should favor earlier submission")
	}
	if !(SJF{}).Less(short, long) {
		t.Fatal("SJF should favor shorter jobs")
	}
	if !(LJF{}).Less(long, short) {
		t.Fatal("LJF should favor longer jobs")
	}
	if !(WidestFirst{}).Less(wide, short) {
		t.Fatal("WIDE should favor wider jobs")
	}
	if !(NarrowestFirst{}).Less(short, wide) {
		t.Fatal("NARROW should favor narrower jobs")
	}
	if !(LargestAreaFirst{}).Less(long, wide) { // 2000 vs 800
		t.Fatal("LAF should favor larger areas")
	}
	if !(SmallestAreaFirst{}).Less(short, long) {
		t.Fatal("SAF should favor smaller areas")
	}
}

func TestTieBreakByID(t *testing.T) {
	a := j(1, 10, 2, 100)
	b := j(2, 10, 2, 100)
	for _, p := range Extended() {
		if !p.Less(a, b) || p.Less(b, a) {
			t.Fatalf("%s tie-break by ID broken", p.Name())
		}
	}
}

func TestByName(t *testing.T) {
	for _, p := range Extended() {
		got, err := ByName(p.Name())
		if err != nil || got.Name() != p.Name() {
			t.Fatalf("ByName(%q) failed: %v", p.Name(), err)
		}
	}
	if _, err := ByName("BOGUS"); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestStandardIsPaperSet(t *testing.T) {
	std := Standard()
	if len(std) != 3 || std[0].Name() != "FCFS" || std[1].Name() != "SJF" || std[2].Name() != "LJF" {
		t.Fatalf("Standard() = %v", std)
	}
}

func TestBuildFCFSSequence(t *testing.T) {
	// 4-proc machine, three 4-wide jobs: strict sequence in submit order.
	base := machine.New(4, 0)
	waiting := []*job.Job{j(2, 10, 4, 100), j(1, 5, 4, 50), j(3, 20, 4, 25)}
	s, err := Build(FCFS{}, 30, base, waiting)
	if err != nil {
		t.Fatal(err)
	}
	if s.Find(1).Start != 30 || s.Find(2).Start != 80 || s.Find(3).Start != 180 {
		t.Fatalf("FCFS starts wrong: %v", s)
	}
	if err := s.Validate(base); err != nil {
		t.Fatal(err)
	}
}

func TestBuildImplicitBackfilling(t *testing.T) {
	// M=4. Running job holds 2 procs until t=100. Waiting: a wide job
	// (w=4) and a narrow short job (w=2, d=50). FCFS places the wide job
	// first at t=100; the narrow job fits *before* it (implicit
	// backfilling) at t=0.
	base := machine.New(4, 0)
	if err := base.Reserve(0, 100, 2); err != nil {
		t.Fatal(err)
	}
	wide := j(1, 0, 4, 100)
	narrow := j(2, 1, 2, 50)
	s, err := Build(FCFS{}, 0, base, []*job.Job{wide, narrow})
	if err != nil {
		t.Fatal(err)
	}
	if s.Find(1).Start != 100 {
		t.Fatalf("wide job start %d, want 100", s.Find(1).Start)
	}
	if s.Find(2).Start != 1 {
		t.Fatalf("narrow job start %d, want 1 (backfilled)", s.Find(2).Start)
	}
}

func TestBuildRespectsSubmitTime(t *testing.T) {
	base := machine.New(4, 0)
	future := j(1, 500, 1, 10)
	s, err := Build(FCFS{}, 0, base, []*job.Job{future})
	if err != nil {
		t.Fatal(err)
	}
	if s.Find(1).Start != 500 {
		t.Fatalf("start %d, want 500 (not before submission)", s.Find(1).Start)
	}
}

func TestBuildTooWide(t *testing.T) {
	base := machine.New(4, 0)
	if _, err := Build(FCFS{}, 0, base, []*job.Job{j(1, 0, 5, 10)}); err == nil {
		t.Fatal("over-wide job scheduled")
	}
}

func TestBuildDoesNotMutateInputs(t *testing.T) {
	base := machine.New(4, 0)
	waiting := []*job.Job{j(2, 10, 1, 10), j(1, 0, 1, 10)}
	if _, err := Build(SJF{}, 10, base, waiting); err != nil {
		t.Fatal(err)
	}
	if waiting[0].ID != 2 || waiting[1].ID != 1 {
		t.Fatal("Build reordered the caller's slice")
	}
	if base.FreeAt(10) != 4 {
		t.Fatal("Build mutated the base profile")
	}
}

func TestSJFvsLJFCharacter(t *testing.T) {
	// On a saturated machine SJF must yield a lower average response time
	// than LJF (classic result the self-tuner exploits).
	base := machine.New(2, 0)
	waiting := []*job.Job{
		j(1, 0, 2, 1000), j(2, 0, 2, 10), j(3, 0, 2, 10), j(4, 0, 2, 10),
	}
	sjf, err := Build(SJF{}, 0, base, waiting)
	if err != nil {
		t.Fatal(err)
	}
	ljf, err := Build(LJF{}, 0, base, waiting)
	if err != nil {
		t.Fatal(err)
	}
	art := metrics.ART{}
	if !(art.Eval(sjf) < art.Eval(ljf)) {
		t.Fatalf("SJF ART %v not better than LJF ART %v", art.Eval(sjf), art.Eval(ljf))
	}
	// Both schedule the same job set, so the makespan-relevant total area
	// is equal and both must be feasible.
	if err := sjf.Validate(base); err != nil {
		t.Fatal(err)
	}
	if err := ljf.Validate(base); err != nil {
		t.Fatal(err)
	}
}

// Property: every policy produces a feasible schedule containing exactly
// the waiting jobs, with no job before its submit time or now.
func TestBuildFeasibilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		base := machine.New(16, 0)
		for k := 0; k < r.Intn(3); k++ {
			base.Reserve(0, int64(r.Intn(400)+1), r.Intn(8)+1)
		}
		now := int64(r.Intn(100))
		var waiting []*job.Job
		for k := 0; k < r.Intn(12); k++ {
			waiting = append(waiting, j(k+1, int64(r.Intn(int(now)+1)),
				r.Intn(16)+1, int64(r.Intn(600)+1)))
		}
		for _, p := range Extended() {
			s, err := Build(p, now, base, waiting)
			if err != nil {
				return false
			}
			if len(s.Entries) != len(waiting) {
				return false
			}
			if s.Validate(base) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Build is greedy-tight for the *first* job in policy order: it
// starts at the earliest time the base profile admits it.
func TestFirstJobTightProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		base := machine.New(8, 0)
		for k := 0; k < r.Intn(3); k++ {
			base.Reserve(0, int64(r.Intn(200)+1), r.Intn(4)+1)
		}
		jb := j(1, 0, r.Intn(8)+1, int64(r.Intn(300)+1))
		s, err := Build(FCFS{}, 0, base, []*job.Job{jb})
		if err != nil {
			return false
		}
		want, _ := base.EarliestFit(0, jb.Estimate, jb.Width)
		return s.Find(1).Start == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild25Jobs(b *testing.B) {
	r := stats.NewRand(99)
	base := machine.New(430, 0)
	var waiting []*job.Job
	for k := 0; k < 25; k++ {
		waiting = append(waiting, j(k+1, int64(r.Intn(3600)),
			r.Intn(64)+1, int64(r.Intn(14400)+60)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(FCFS{}, 3600, base, waiting); err != nil {
			b.Fatal(err)
		}
	}
}

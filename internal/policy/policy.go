// Package policy implements the scheduling policies of the paper's CCS
// system — FCFS, SJF and LJF — as planning-based list schedulers, plus a
// few extension policies. A policy is an ordering of the waiting queue;
// Build places each job, in policy order, at the earliest time its width
// fits the free-capacity profile for its whole estimated duration. Because
// later (smaller or narrower) jobs may slip into earlier holes, "with this
// approach backfilling is done implicitly".
package policy

import (
	"fmt"
	"runtime"
	"sort"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Policy orders the waiting queue for the list scheduler.
type Policy interface {
	Name() string
	// Less is a strict weak ordering over waiting jobs. Implementations
	// must fall back to the job ID so the order is total and
	// deterministic.
	Less(a, b *job.Job) bool
}

// byID breaks ties deterministically.
func byID(a, b *job.Job) bool { return a.ID < b.ID }

// FCFS is first come, first serve: by submission time.
type FCFS struct{}

func (FCFS) Name() string { return "FCFS" }
func (FCFS) Less(a, b *job.Job) bool {
	if a.Submit != b.Submit {
		return a.Submit < b.Submit
	}
	return byID(a, b)
}

// SJF is shortest job first: by estimated duration, ascending.
type SJF struct{}

func (SJF) Name() string { return "SJF" }
func (SJF) Less(a, b *job.Job) bool {
	if a.Estimate != b.Estimate {
		return a.Estimate < b.Estimate
	}
	return FCFS{}.Less(a, b)
}

// LJF is longest job first: by estimated duration, descending.
type LJF struct{}

func (LJF) Name() string { return "LJF" }
func (LJF) Less(a, b *job.Job) bool {
	if a.Estimate != b.Estimate {
		return a.Estimate > b.Estimate
	}
	return FCFS{}.Less(a, b)
}

// WidestFirst orders by width, descending — an extension policy useful
// for packing-heavy workloads.
type WidestFirst struct{}

func (WidestFirst) Name() string { return "WIDE" }
func (WidestFirst) Less(a, b *job.Job) bool {
	if a.Width != b.Width {
		return a.Width > b.Width
	}
	return FCFS{}.Less(a, b)
}

// NarrowestFirst orders by width, ascending.
type NarrowestFirst struct{}

func (NarrowestFirst) Name() string { return "NARROW" }
func (NarrowestFirst) Less(a, b *job.Job) bool {
	if a.Width != b.Width {
		return a.Width < b.Width
	}
	return FCFS{}.Less(a, b)
}

// LargestAreaFirst orders by estimated area (width × duration), descending.
type LargestAreaFirst struct{}

func (LargestAreaFirst) Name() string { return "LAF" }
func (LargestAreaFirst) Less(a, b *job.Job) bool {
	if a.Area() != b.Area() {
		return a.Area() > b.Area()
	}
	return FCFS{}.Less(a, b)
}

// SmallestAreaFirst orders by estimated area, ascending.
type SmallestAreaFirst struct{}

func (SmallestAreaFirst) Name() string { return "SAF" }
func (SmallestAreaFirst) Less(a, b *job.Job) bool {
	if a.Area() != b.Area() {
		return a.Area() < b.Area()
	}
	return FCFS{}.Less(a, b)
}

// Standard returns the three policies of the paper's CCS: FCFS, SJF, LJF.
func Standard() []Policy { return []Policy{FCFS{}, SJF{}, LJF{}} }

// Extended returns the standard policies plus the extension policies.
func Extended() []Policy {
	return append(Standard(),
		WidestFirst{}, NarrowestFirst{}, LargestAreaFirst{}, SmallestAreaFirst{})
}

// ByName resolves a policy name (as returned by Name) to a Policy.
func ByName(name string) (Policy, error) {
	for _, p := range Extended() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("policy: unknown policy %q", name)
}

// Build computes the full schedule for the waiting jobs under policy p:
// jobs are sorted in policy order and greedily placed at their earliest
// feasible start on top of base (the profile holding the running jobs).
// base is not modified. Jobs submitted after now (none, in a well-formed
// self-tuning step) are not started before their submission.
//
// It returns an error only if a job is wider than the machine.
func Build(p Policy, now int64, base *machine.Profile, waiting []*job.Job) (*schedule.Schedule, error) {
	ordered := append([]*job.Job(nil), waiting...)
	sort.Slice(ordered, func(i, j int) bool { return p.Less(ordered[i], ordered[j]) })

	prof := base.Clone()
	s := &schedule.Schedule{Policy: p.Name(), Now: now, Machine: base.Total(),
		Entries: make([]schedule.Entry, 0, len(ordered))}
	for i, j := range ordered {
		// Cooperative yield every 64 placements: a deep queue makes one
		// build run for multiple milliseconds of profile scans, which is
		// under the Go async-preemption threshold — on a small-GOMAXPROCS
		// serving host, a goroutine returning from blocking I/O (the WAL's
		// durability barrier) would otherwise wait out the whole slice
		// before it can reacquire a P.
		if i&63 == 63 {
			runtime.Gosched()
		}
		earliest := now
		if j.Submit > earliest {
			earliest = j.Submit
		}
		start, ok := prof.EarliestFit(earliest, j.Estimate, j.Width)
		if !ok {
			return nil, fmt.Errorf("policy: job %d (width %d) wider than machine (%d)",
				j.ID, j.Width, base.Total())
		}
		if err := prof.Reserve(start, start+j.Estimate, j.Width); err != nil {
			return nil, fmt.Errorf("policy: job %d: %v", j.ID, err)
		}
		s.Entries = append(s.Entries, schedule.Entry{Job: j, Start: start})
	}
	return s, nil
}

//go:build !linux

package wal

import "os"

// preallocate is a no-op off Linux: the segment grows per append and
// sync pays the full fsync. Correctness is identical — only the
// journal-avoidance optimization is Linux-specific.
func preallocate(f *os.File, size int64) error { return nil }

// datasync falls back to a full fsync off Linux.
func datasync(f *os.File) error { return f.Sync() }

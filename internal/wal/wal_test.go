package wal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

type testPayload struct {
	ID int    `json:"id"`
	S  string `json:"s,omitempty"`
}

func openTest(t *testing.T, dir string, opts Options) (*Log, *Replay) {
	t.Helper()
	opts.Dir = dir
	opts.NoSync = true // tmpfs/test speed; durability is the OS's problem here
	l, rep, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l, rep
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rep := openTest(t, dir, Options{})
	if rep.SnapshotSeq != 0 || len(rep.Records) != 0 {
		t.Fatalf("fresh log replay not empty: %+v", rep)
	}
	for i := 1; i <= 10; i++ {
		seq, err := l.AppendSync("submit", testPayload{ID: i}, nil)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if seq != uint64(i) {
			t.Fatalf("seq = %d, want %d", seq, i)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2, rep2 := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rep2.Records) != 10 {
		t.Fatalf("replayed %d records, want 10", len(rep2.Records))
	}
	for i, r := range rep2.Records {
		if r.Seq != uint64(i+1) || r.Type != "submit" {
			t.Fatalf("record %d: seq=%d type=%q", i, r.Seq, r.Type)
		}
		var p testPayload
		if err := json.Unmarshal(r.Data, &p); err != nil || p.ID != i+1 {
			t.Fatalf("record %d payload: %v %+v", i, err, p)
		}
	}
	if l2.Seq() != 10 {
		t.Fatalf("reopened tail seq = %d, want 10", l2.Seq())
	}
	// Appends continue the chain after reopen.
	if seq, err := l2.AppendSync("submit", testPayload{ID: 11}, nil); err != nil || seq != 11 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestGroupCommitConcurrent(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{FsyncEvery: 16})
	const n = 200
	var wg sync.WaitGroup
	seqs := make([]uint64, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seqs[i], errs[i] = l.AppendSync("submit", testPayload{ID: i}, nil)
		}(i)
	}
	wg.Wait()
	seen := map[uint64]bool{}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("append %d: %v", i, errs[i])
		}
		if seen[seqs[i]] {
			t.Fatalf("duplicate seq %d", seqs[i])
		}
		seen[seqs[i]] = true
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l2, rep := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rep.Records) != n {
		t.Fatalf("replayed %d, want %d", len(rep.Records), n)
	}
	for i, r := range rep.Records {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d out of order: seq %d", i, r.Seq)
		}
	}
}

func TestOnSeqCallbackUnderLock(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	defer l.Close()
	var got uint64
	seq, err := l.AppendSync("submit", nil, func(s uint64) { got = s })
	if err != nil {
		t.Fatal(err)
	}
	if got != seq || got != 1 {
		t.Fatalf("onSeq got %d, append returned %d", got, seq)
	}
}

func TestSnapshotRotatePruneReplay(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 5; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	state := map[string]int{"applied": 5}
	if err := l.Snapshot(5, state); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	for i := 6; i <= 8; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot rotated to wal-5 and pruned wal-0.
	if _, err := os.Stat(filepath.Join(dir, segName(0))); !os.IsNotExist(err) {
		t.Fatalf("wal-0 not pruned: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, segName(5))); err != nil {
		t.Fatalf("rotated segment missing: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapName(5))); err != nil {
		t.Fatalf("snapshot missing: %v", err)
	}

	l2, rep := openTest(t, dir, Options{})
	defer l2.Close()
	if rep.SnapshotSeq != 5 {
		t.Fatalf("SnapshotSeq = %d, want 5", rep.SnapshotSeq)
	}
	var st map[string]int
	if err := json.Unmarshal(rep.Snapshot, &st); err != nil || st["applied"] != 5 {
		t.Fatalf("snapshot state: %v %+v", err, st)
	}
	if len(rep.Records) != 3 || rep.Records[0].Seq != 6 || rep.Records[2].Seq != 8 {
		t.Fatalf("tail records: %+v", rep.Records)
	}
	if l2.Seq() != 8 {
		t.Fatalf("tail seq = %d", l2.Seq())
	}
}

func TestSnapshotAppliedLagsTail(t *testing.T) {
	// appliedSeq < tail: records after it must still be replayed.
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 6; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(4, map[string]int{"applied": 4}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rep := openTest(t, dir, Options{})
	defer l2.Close()
	if rep.SnapshotSeq != 4 {
		t.Fatalf("SnapshotSeq = %d, want 4", rep.SnapshotSeq)
	}
	if len(rep.Records) != 2 || rep.Records[0].Seq != 5 || rep.Records[1].Seq != 6 {
		t.Fatalf("tail records: %+v", rep.Records)
	}
}

func TestSnapshotBeyondTailRejected(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	defer l.Close()
	if err := l.Snapshot(3, nil); err == nil {
		t.Fatal("snapshot beyond tail accepted")
	}
}

func TestMultipleSnapshotsNewestWins(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 12; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			if err := l.Snapshot(uint64(i), map[string]int{"applied": i}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rep := openTest(t, dir, Options{})
	defer l2.Close()
	if rep.SnapshotSeq != 12 || len(rep.Records) != 0 {
		t.Fatalf("SnapshotSeq=%d records=%d, want 12/0", rep.SnapshotSeq, len(rep.Records))
	}
}

func TestAbortDropsPendingKeepsWritten(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 3; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort()
	if _, err := l.Append("submit", nil); err != ErrClosed {
		t.Fatalf("append after abort: %v", err)
	}
	l2, rep := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rep.Records) != 3 {
		t.Fatalf("replayed %d records after abort, want 3", len(rep.Records))
	}
}

func TestAsyncAppendDurableAfterClose(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 50; i++ {
		if _, err := l.Append("plan", testPayload{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rep := openTest(t, dir, Options{})
	defer l2.Close()
	if len(rep.Records) != 50 {
		t.Fatalf("replayed %d, want 50", len(rep.Records))
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l, _ := openTest(t, dir, Options{})
	for i := 1; i <= 6; i++ {
		typ := "submit"
		if i%2 == 0 {
			typ = "complete"
		}
		if _, err := l.AppendSync(typ, testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Snapshot(3, map[string]int{"applied": 3}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Closing after the snapshot appended nothing; tail stays 6 from
	// before the snapshot? No: snapshot was taken after 6 appends with
	// applied 3, so replayable = seqs 4..6.
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect: %v", err)
	}
	if info.Corrupt != "" {
		t.Fatalf("corrupt: %s", info.Corrupt)
	}
	if info.TailSeq != 6 || info.SnapshotSeq != 3 || info.Replayable != 3 {
		t.Fatalf("info: %+v", info)
	}
	if info.ByType["submit"] == 0 && info.ByType["complete"] == 0 {
		t.Fatalf("ByType empty: %+v", info.ByType)
	}
	if len(info.Snapshots) == 0 || len(info.Segments) == 0 {
		t.Fatalf("missing file info: %+v", info)
	}
	if info.Chain == "" {
		t.Fatal("no chain rendered")
	}
}

func TestManySegmentsReopenContinuity(t *testing.T) {
	dir := t.TempDir()
	seq := uint64(0)
	for round := 0; round < 4; round++ {
		l, _ := openTest(t, dir, Options{})
		for i := 0; i < 5; i++ {
			s, err := l.AppendSync("submit", testPayload{ID: int(seq) + 1}, nil)
			if err != nil {
				t.Fatal(err)
			}
			seq++
			if s != seq {
				t.Fatalf("round %d: seq %d, want %d", round, s, seq)
			}
		}
		if round == 1 {
			if err := l.Snapshot(seq, map[string]uint64{"applied": seq}); err != nil {
				t.Fatal(err)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	l, rep := openTest(t, dir, Options{})
	defer l.Close()
	if rep.SnapshotSeq != 10 {
		t.Fatalf("SnapshotSeq = %d, want 10", rep.SnapshotSeq)
	}
	if len(rep.Records) != 10 || rep.Records[0].Seq != 11 {
		t.Fatalf("records: n=%d first=%+v", len(rep.Records), rep.Records)
	}
}

func TestEmptyDirInspect(t *testing.T) {
	dir := t.TempDir()
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.TailSeq != 0 || info.Replayable != 0 || info.Corrupt != "" {
		t.Fatalf("info: %+v", info)
	}
}

func TestChainHexDeterministic(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	var chains [2]string
	for i, dir := range []string{dir1, dir2} {
		l, _ := openTest(t, dir, Options{})
		for j := 1; j <= 4; j++ {
			if _, err := l.AppendSync("submit", testPayload{ID: j, S: "x"}, nil); err != nil {
				t.Fatal(err)
			}
		}
		chains[i] = ChainHex(l.Chain())
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if chains[0] != chains[1] {
		t.Fatalf("identical logs, different chains: %s vs %s", chains[0], chains[1])
	}
	if chains[0] == ChainHex([32]byte{}) {
		t.Fatal("chain never advanced")
	}
}

func BenchmarkAppendSyncGroupCommit(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(Options{Dir: dir, FsyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			i++
			if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkAppendAsync(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(Options{Dir: dir, FsyncEvery: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append("plan", testPayload{ID: i}); err != nil {
			b.Fatal(err)
		}
	}
}

package wal

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// writeLog builds a log with n records (and an optional snapshot at
// snapAt) and returns the directory and the path of the last segment.
func writeLog(t *testing.T, n int, snapAt uint64) (dir, lastSeg string) {
	t.Helper()
	dir = t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i, S: "payload"}, nil); err != nil {
			t.Fatal(err)
		}
		if snapAt != 0 && uint64(i) == snapAt {
			if err := l.Snapshot(snapAt, map[string]uint64{"applied": snapAt}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := sortedKeys(segs)
	if len(keys) == 0 {
		t.Fatal("no segments written")
	}
	return dir, segs[keys[len(keys)-1]]
}

func replaySeqs(rep *Replay) []uint64 {
	out := make([]uint64, len(rep.Records))
	for i, r := range rep.Records {
		out[i] = r.Seq
	}
	return out
}

func TestTornTailTruncatedSilently(t *testing.T) {
	for _, cut := range []int{1, 10, headerSize - 1, headerSize + 3} {
		dir, seg := writeLog(t, 8, 0)
		b, err := os.ReadFile(seg)
		if err != nil {
			t.Fatal(err)
		}
		if cut >= len(b) {
			t.Fatalf("cut %d >= file size %d", cut, len(b))
		}
		// Chop the last cut bytes: a torn final write.
		if err := os.WriteFile(seg, b[:len(b)-cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: torn tail refused: %v", cut, err)
		}
		// The final record straddles the cut, so exactly 7 must replay.
		if len(rep.Records) != 7 {
			t.Fatalf("cut=%d: replayed %d records, want 7 (%v)", cut, len(rep.Records), replaySeqs(rep))
		}
		if rep.TornBytes == 0 {
			t.Fatalf("cut=%d: torn bytes not reported", cut)
		}
		// The log is usable: append record 8 again and reopen clean.
		if _, err := l.AppendSync("submit", testPayload{ID: 8}, nil); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, rep2, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: reopen after truncate: %v", cut, err)
		}
		if len(rep2.Records) != 8 {
			t.Fatalf("cut=%d: after re-append replayed %d, want 8", cut, len(rep2.Records))
		}
		l2.Close()
	}
}

func TestFlippedCRCByteFailsLoudly(t *testing.T) {
	dir, seg := writeLog(t, 8, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Find the start of the 4th record and flip a byte in its CRC field.
	off := recordOffset(t, b, 3)
	b[off+4] ^= 0xFF
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("flipped CRC not refused: %v", err)
	}

	// Repair mode recovers exactly the 3-record prefix.
	l, rep, err := Open(Options{Dir: dir, NoSync: true, Repair: true})
	if err != nil {
		t.Fatalf("repair failed: %v", err)
	}
	if got := replaySeqs(rep); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("repair recovered %v, want [1 2 3]", got)
	}
	if rep.Repaired == 0 {
		t.Fatal("repair not counted")
	}
	// Post-repair the log must be clean and appendable.
	if _, err := l.AppendSync("submit", testPayload{ID: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	if got := replaySeqs(rep2); len(got) != 4 || got[3] != 4 {
		t.Fatalf("after repair+append replayed %v", got)
	}
}

func TestFlippedPayloadByteFailsLoudly(t *testing.T) {
	dir, seg := writeLog(t, 5, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := recordOffset(t, b, 1)
	b[off+headerSize+2] ^= 0x01 // inside record 2's payload
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("payload corruption not refused: %v", err)
	}
}

func TestReorderedRecordsBreakChain(t *testing.T) {
	dir, seg := writeLog(t, 6, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Swap records 3 and 4 wholesale (frames incl. headers): each frame
	// is internally consistent (CRC ok) but the hash chain must break.
	o3 := recordOffset(t, b, 2)
	o4 := recordOffset(t, b, 3)
	o5 := recordOffset(t, b, 4)
	var swapped []byte
	swapped = append(swapped, b[:o3]...)
	swapped = append(swapped, b[o4:o5]...)
	swapped = append(swapped, b[o3:o4]...)
	swapped = append(swapped, b[o5:]...)
	if err := os.WriteFile(seg, swapped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("reordered records not refused: %v", err)
	}

	_, rep, err := Open(Options{Dir: dir, NoSync: true, Repair: true})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if got := replaySeqs(rep); len(got) != 2 || got[1] != 2 {
		t.Fatalf("repair after reorder recovered %v, want [1 2]", got)
	}
}

func TestRewrittenRecordBreaksChain(t *testing.T) {
	// Rewrite record 2 with a self-consistent frame (valid CRC, valid
	// chain-from-genesis… but the wrong chain position): tamper-evident.
	dir, seg := writeLog(t, 4, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	o2 := recordOffset(t, b, 1)
	o3 := recordOffset(t, b, 2)
	payload, _ := json.Marshal(Record{Seq: 2, Type: "submit", Data: json.RawMessage(`{"id":999}`)})
	forged := appendFrame(nil, payload, [32]byte{}) // wrong chain on purpose
	if len(forged) > o3-o2 {
		forged = forged[:o3-o2] // still corrupt either way
	}
	copy(b[o2:o3], forged)
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("rewritten record not refused: %v", err)
	}
}

func TestCorruptionBeforeSnapshotStillRecovers(t *testing.T) {
	// Corruption in a pruned-away range is invisible; corruption in the
	// replay tail is what matters. Build snapshot at 6 of 10 records,
	// corrupt record 8 (in the tail): must refuse, repair keeps 1..7.
	dir, lastSeg := writeLog(t, 10, 6)
	b, err := os.ReadFile(lastSeg)
	if err != nil {
		t.Fatal(err)
	}
	// lastSeg is wal-6 holding seqs 7..10; record index 1 there is seq 8.
	off := recordOffset(t, b, 1)
	b[off+4] ^= 0x10
	if err := os.WriteFile(lastSeg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("tail corruption not refused: %v", err)
	}
	_, rep, err := Open(Options{Dir: dir, NoSync: true, Repair: true})
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if rep.SnapshotSeq != 6 {
		t.Fatalf("SnapshotSeq = %d, want 6", rep.SnapshotSeq)
	}
	if got := replaySeqs(rep); len(got) != 1 || got[0] != 7 {
		t.Fatalf("repair recovered %v, want [7]", got)
	}
}

func TestCorruptSnapshotRefused(t *testing.T) {
	dir, _ := writeLog(t, 8, 5)
	_, snaps, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range snaps {
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[len(b)-1] ^= 0x40
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt snapshot not refused: %v", err)
	}
}

func TestMissingSegmentRefused(t *testing.T) {
	// Delete the middle segment of a 3-segment log: a seq gap no repair
	// can bridge.
	dir := t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i}, nil); err != nil {
			t.Fatal(err)
		}
		if i == 4 || i == 8 {
			// applied 1 keeps every segment alive (prune can't collect).
			if err := l.Snapshot(1, map[string]int{"applied": 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, segName(4))); err != nil {
		t.Fatal(err)
	}
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("missing middle segment not refused: %v", err)
	}
	if _, _, err := Open(Options{Dir: dir, NoSync: true, Repair: true}); err == nil {
		// Repair may legitimately truncate to the prefix before the gap;
		// what it must never do is silently skip the gap. Verify the
		// recovered prefix is contiguous.
		_, rep, _ := Open(Options{Dir: dir, NoSync: true, Repair: true})
		for i, r := range rep.Records {
			if i > 0 && r.Seq != rep.Records[i-1].Seq+1 {
				t.Fatalf("repair produced a seq gap: %v", replaySeqs(rep))
			}
		}
	}
}

func TestInspectReportsCorruption(t *testing.T) {
	dir, seg := writeLog(t, 6, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := recordOffset(t, b, 2)
	b[off+4] ^= 0x08
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(dir)
	if err != nil {
		t.Fatalf("Inspect errored instead of reporting: %v", err)
	}
	if info.Corrupt == "" {
		t.Fatal("Inspect did not flag corruption")
	}
}

// TestFuzzTruncateAndFlip is the byte-level sweep: for every truncation
// point and a sample of single-byte flips, recovery must either load an
// exact prefix of the original records or refuse with CorruptError —
// never a wrong job set.
func TestFuzzTruncateAndFlip(t *testing.T) {
	const n = 6
	dir, seg := writeLog(t, n, 0)
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Reference payloads, by seq.
	want := make(map[uint64]string)
	{
		l, rep, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Records {
			want[r.Seq] = string(r.Data)
		}
		l.Close()
	}
	checkPrefix := func(tag string, rep *Replay) {
		for i, r := range rep.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("%s: records not a prefix: %v", tag, replaySeqs(rep))
			}
			if string(r.Data) != want[r.Seq] {
				t.Fatalf("%s: record %d data mutated: %s", tag, r.Seq, r.Data)
			}
		}
	}

	fuzzDir := t.TempDir()
	fseg := filepath.Join(fuzzDir, filepath.Base(seg))
	restore := func(b []byte) {
		if err := os.WriteFile(fseg, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Every truncation length.
	for cut := 0; cut <= len(orig); cut++ {
		restore(orig[:cut])
		l, rep, err := Open(Options{Dir: fuzzDir, NoSync: true})
		if err != nil {
			t.Fatalf("truncate@%d: torn prefix refused: %v", cut, err)
		}
		checkPrefix("truncate", rep)
		l.Close()
	}

	// Sampled single-byte flips (every byte would be slow; step through
	// deterministically seeded positions covering headers and payloads).
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		pos := rng.Intn(len(orig))
		mut := append([]byte(nil), orig...)
		mut[pos] ^= byte(1 << uint(rng.Intn(8)))
		restore(mut)
		l, rep, err := Open(Options{Dir: fuzzDir, NoSync: true})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip@%d: non-CorruptError failure: %v", pos, err)
			}
			// Loud refusal: acceptable. Repair must still yield a prefix.
			restore(mut)
			rl, rrep, rerr := Open(Options{Dir: fuzzDir, NoSync: true, Repair: true})
			if rerr == nil {
				checkPrefix("flip-repair", rrep)
				rl.Close()
			}
			continue
		}
		// Accepted: the flip must have landed in the torn-truncatable
		// tail region or left the content equivalent — either way the
		// replayed set must be an exact prefix.
		checkPrefix("flip-accept", rep)
		l.Close()
	}
}

// recordOffset returns the byte offset of the idx-th (0-based) record
// frame in a segment image.
func recordOffset(t *testing.T, b []byte, idx int) int {
	t.Helper()
	off := 0
	for i := 0; i < idx; i++ {
		if off+headerSize > len(b) {
			t.Fatalf("segment too short for record %d", idx)
		}
		length := int(uint32(b[off]) | uint32(b[off+1])<<8 | uint32(b[off+2])<<16 | uint32(b[off+3])<<24)
		off += headerSize + length
	}
	return off
}

package wal

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
)

// scanResult is everything Open needs from a recovery pass: the replay
// for the application, the tail position for new appends, and the
// truncation/drop work that makes the on-disk log the recovered prefix.
type scanResult struct {
	replay   *Replay
	tailSeq  uint64
	chain    [32]byte
	segStart uint64 // active segment name for appends
	tailOff  int64  // append offset in the active segment

	truncatePath string // segment to truncate ("" = none)
	truncateLen  int64
	dropSegments []string // segments after a repair point

	segInfos []SegmentInfo
}

// scan reads and verifies the whole log directory. With repair false it
// returns a *CorruptError on the first invalid (but fully present)
// record; with repair true it truncates there and drops the rest. A
// torn final record — incomplete bytes at the very end of the last
// segment — is always truncated silently: the crash hit mid-write and
// the record was never acknowledged.
func scan(dir string, repair bool) (*scanResult, error) {
	segs, snaps, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	// Choose the newest loadable snapshot for state. Only a corrupt
	// snapshot file falls back to an older one (and only under repair);
	// segment records are never skipped by this choice.
	var (
		state      *snapPayload
		stateChain [32]byte
		haveState  bool
	)
	snapSeqs := sortedKeys(snaps)
	snapChains := make(map[uint64][32]byte, len(snaps)) // tailSeq -> frame chain
	snapPayloads := make(map[uint64]*snapPayload, len(snaps))
	for _, s := range snapSeqs {
		p, chain, err := loadSnap(snaps[s], s)
		if err != nil {
			if repair {
				continue
			}
			return nil, err
		}
		snapChains[s] = chain
		snapPayloads[s] = p
	}
	for i := len(snapSeqs) - 1; i >= 0; i-- {
		if p, ok := snapPayloads[snapSeqs[i]]; ok {
			state, stateChain, haveState = p, snapChains[snapSeqs[i]], true
			break
		}
	}

	res := &scanResult{replay: &Replay{}}
	if haveState {
		res.replay.SnapshotSeq = state.AppliedSeq
		res.replay.Snapshot = state.State
	}

	segSeqs := sortedKeys(segs)
	if len(segSeqs) == 0 {
		// Fresh directory (or snapshot-only after a crash between the
		// snapshot rename and the rotation with nothing ever appended
		// after; the rotation order makes that impossible unless files
		// were removed by hand, which the tail check below rejects).
		if haveState && state.TailSeq > state.AppliedSeq {
			return nil, &CorruptError{Path: dir, Reason: fmt.Sprintf(
				"no segments but snapshot records tail seq %d > applied seq %d", state.TailSeq, state.AppliedSeq)}
		}
		if haveState {
			res.tailSeq, res.chain, res.segStart = state.TailSeq, stateChain, state.TailSeq
		}
		return res, nil
	}

	// Verify the full chain from the earliest kept segment. Its anchor
	// is genesis (all zeros) for wal-0, else the snapshot of the same
	// name left in place exactly for this purpose by prune.
	var chain [32]byte
	first := segSeqs[0]
	if first != 0 {
		anchor, ok := snapChains[first]
		if !ok {
			return nil, &CorruptError{Path: segs[first], Reason: fmt.Sprintf(
				"no chain anchor: snapshot %s missing or corrupt", snapName(first))}
		}
		chain = anchor
	}

	seq := first
	appliedSeq := res.replay.SnapshotSeq
	stopped := false // a repair truncation ends the readable prefix
	for i, s := range segSeqs {
		path := segs[s]
		if stopped {
			res.dropSegments = append(res.dropSegments, path)
			continue
		}
		if s != seq {
			return nil, &CorruptError{Path: path, Reason: fmt.Sprintf(
				"segment starts at seq %d but log ends at seq %d (missing segment)", s+1, seq)}
		}
		last := i == len(segSeqs)-1
		info, newChain, serr := readSegment(path, s, chain, appliedSeq, res.replay, last, repair)
		res.segInfos = append(res.segInfos, *info)
		if serr != nil {
			if ce, ok := serr.(*CorruptError); ok && repair {
				// Keep the valid prefix of this segment, drop the rest
				// of the log.
				res.truncatePath, res.truncateLen = path, ce.Offset
				res.replay.Repaired++
				stopped = true
				seq = info.LastSeq
				chain = newChain
				continue
			}
			return nil, serr
		}
		if info.TornBytes > 0 {
			res.truncatePath, res.truncateLen = path, info.GoodBytes
			res.replay.TornBytes += info.TornBytes
		}
		seq = info.LastSeq
		chain = newChain
		// Cross-check: a snapshot taken at this seq recorded the chain
		// it saw; the replayed chain must agree.
		if want, ok := snapChains[seq]; ok && want != chain {
			return nil, &CorruptError{Path: snaps[seq], Reason: fmt.Sprintf(
				"snapshot chain disagrees with replayed chain at seq %d", seq)}
		}
	}
	res.replay.Segments = len(res.segInfos)

	if haveState && !stopped && seq < state.TailSeq {
		return nil, &CorruptError{Path: dir, Reason: fmt.Sprintf(
			"log ends at seq %d before snapshot tail seq %d (missing records)", seq, state.TailSeq)}
	}
	if haveState && seq < state.AppliedSeq {
		// Even repair cannot rebuild the chain position inside the
		// snapshot's covered range; refuse rather than guess.
		return nil, &CorruptError{Path: dir, Reason: fmt.Sprintf(
			"log ends at seq %d inside snapshot coverage (applied seq %d)", seq, state.AppliedSeq)}
	}
	if n := len(res.replay.Records); n > 0 && res.replay.Records[0].Seq != appliedSeq+1 {
		return nil, &CorruptError{Path: dir, Reason: fmt.Sprintf(
			"first replayable record is seq %d, want %d", res.replay.Records[0].Seq, appliedSeq+1)}
	}
	res.tailSeq, res.chain = seq, chain
	res.segStart = segSeqs[0]
	for _, s := range segSeqs {
		if s <= seq {
			res.segStart = s
		}
	}
	if stopped {
		// Appends continue on the truncated segment.
		res.segStart = first
		for i, s := range segSeqs {
			if segs[s] == res.truncatePath {
				res.segStart = segSeqs[i]
				break
			}
		}
	}
	for _, si := range res.segInfos {
		if si.Name == segName(res.segStart) {
			res.tailOff = si.GoodBytes
		}
	}
	return res, nil
}

// SegmentInfo describes one verified segment file.
type SegmentInfo struct {
	Name      string `json:"name"`
	FirstSeq  uint64 `json:"first_seq"` // 0 when the segment is empty
	LastSeq   uint64 `json:"last_seq"`
	Records   int    `json:"records"`
	GoodBytes int64  `json:"bytes"`
	TornBytes int64  `json:"torn_bytes,omitempty"`
}

// readSegment verifies one segment starting at chain position chain and
// seq s, appending records with seq > appliedSeq to replay. It returns
// the segment info and the chain at its end. A *CorruptError carries
// the byte offset of the first invalid record (the repair truncation
// point).
func readSegment(path string, s uint64, chain [32]byte, appliedSeq uint64, replay *Replay, last, repair bool) (*SegmentInfo, [32]byte, error) {
	info := &SegmentInfo{Name: segName(s), LastSeq: s}
	f, err := os.Open(path)
	if err != nil {
		return info, chain, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	seq := s
	for {
		var hdr [headerSize]byte
		n, err := io.ReadFull(br, hdr[:])
		if err == io.EOF {
			break // clean end
		}
		if err == io.ErrUnexpectedEOF {
			if !last {
				return info, chain, &CorruptError{Path: path, Offset: offset,
					Reason: fmt.Sprintf("truncated header (%d bytes) in non-final segment", n)}
			}
			info.TornBytes = int64(n)
			info.GoodBytes = offset
			return info, chain, nil
		}
		if err != nil {
			return info, chain, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		if length == 0 || length > maxRecordSize {
			// Not a readable frame: either the zero tail of a
			// preallocated segment (clean end), a torn final write, or
			// corruption — the bytes to the end of the file decide.
			rest, rerr := io.ReadAll(br)
			if rerr != nil {
				return info, chain, rerr
			}
			kind, torn := classifyTail(append(hdr[:], rest...), length)
			if kind == tailClean {
				return info, chain, nil
			}
			if kind == tailTorn && last {
				info.TornBytes = torn
				return info, chain, nil
			}
			return info, chain, &CorruptError{Path: path, Offset: offset,
				Reason: fmt.Sprintf("record seq %d: implausible length %d", seq+1, length)}
		}
		payload := make([]byte, length)
		pn, err := io.ReadFull(br, payload)
		if err == io.ErrUnexpectedEOF || err == io.EOF {
			if !last {
				return info, chain, &CorruptError{Path: path, Offset: offset,
					Reason: fmt.Sprintf("truncated payload (%d of %d bytes) in non-final segment", pn, length)}
			}
			info.TornBytes = int64(headerSize + pn)
			info.GoodBytes = offset
			return info, chain, nil
		}
		if err != nil {
			return info, chain, err
		}
		if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(hdr[4:8]) {
			if last {
				// A bad final frame with nothing but zeros after it is
				// a torn write (an acknowledged record would have been
				// followed by more live bytes or a clean close), not
				// corruption.
				rest, rerr := io.ReadAll(br)
				if rerr != nil {
					return info, chain, rerr
				}
				frame := append(append(append([]byte(nil), hdr[:]...), payload...), rest...)
				if kind, torn := classifyTail(frame, length); kind == tailTorn {
					info.TornBytes = torn
					return info, chain, nil
				}
			}
			return info, chain, &CorruptError{Path: path, Offset: offset,
				Reason: fmt.Sprintf("record seq %d: CRC mismatch", seq+1)}
		}
		next := sha256.Sum256(append(chain[:], payload...))
		if !bytes.Equal(next[:], hdr[8:headerSize]) {
			return info, chain, &CorruptError{Path: path, Offset: offset,
				Reason: fmt.Sprintf("record seq %d: hash chain broken", seq+1)}
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return info, chain, &CorruptError{Path: path, Offset: offset,
				Reason: fmt.Sprintf("record seq %d: bad envelope: %v", seq+1, err)}
		}
		if rec.Seq != seq+1 {
			return info, chain, &CorruptError{Path: path, Offset: offset,
				Reason: fmt.Sprintf("record claims seq %d, want %d", rec.Seq, seq+1)}
		}
		seq = rec.Seq
		chain = next
		offset += int64(headerSize) + int64(length)
		if info.FirstSeq == 0 {
			info.FirstSeq = rec.Seq
		}
		info.LastSeq = rec.Seq
		info.Records++
		info.GoodBytes = offset
		if rec.Seq > appliedSeq {
			replay.Records = append(replay.Records, rec)
		}
	}
	return info, chain, nil
}

// tailKind classifies the bytes of a segment from a failed frame's
// start to the end of the file.
type tailKind int

const (
	tailCorrupt tailKind = iota // live bytes past the failed frame's extent
	tailClean                   // the zero tail of a preallocated segment
	tailTorn                    // a partial frame, then zeros (or nothing)
)

// classifyTail decides what a frame-validation failure is. tail holds
// the segment bytes from the failed frame's start to the end of the
// file; claimed is the frame header's length field. All zeros is the
// unwritten tail of a preallocated segment — a clean end. A nonzero
// prefix confined to the failed frame's own extent is a torn write: a
// single sequential batch write that died leaves a prefix of one frame
// and nothing after it. A nonzero byte beyond that extent means a
// fully written record followed the failure, so the failure is real
// corruption, never a tear.
func classifyTail(tail []byte, claimed uint32) (tailKind, int64) {
	window := int64(headerSize)
	if claimed > 0 && claimed <= maxRecordSize {
		window += int64(claimed)
	}
	last := int64(-1)
	for i := len(tail) - 1; i >= 0; i-- {
		if tail[i] != 0 {
			last = int64(i)
			break
		}
	}
	switch {
	case last < 0:
		return tailClean, 0
	case last < window:
		return tailTorn, last + 1
	default:
		return tailCorrupt, 0
	}
}

// loadSnap reads and validates one snapshot file.
func loadSnap(path string, nameSeq uint64) (*snapPayload, [32]byte, error) {
	var chain [32]byte
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, chain, err
	}
	if len(b) < headerSize {
		return nil, chain, &CorruptError{Path: path, Reason: "truncated snapshot header"}
	}
	length := binary.LittleEndian.Uint32(b[0:4])
	if int(length) != len(b)-headerSize {
		return nil, chain, &CorruptError{Path: path,
			Reason: fmt.Sprintf("snapshot length %d does not match file size %d", length, len(b))}
	}
	payload := b[headerSize:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(b[4:8]) {
		return nil, chain, &CorruptError{Path: path, Reason: "snapshot CRC mismatch"}
	}
	copy(chain[:], b[8:headerSize])
	var p snapPayload
	if err := json.Unmarshal(payload, &p); err != nil {
		return nil, chain, &CorruptError{Path: path, Reason: fmt.Sprintf("bad snapshot payload: %v", err)}
	}
	if p.TailSeq != nameSeq {
		return nil, chain, &CorruptError{Path: path,
			Reason: fmt.Sprintf("snapshot records tail seq %d but is named %d", p.TailSeq, nameSeq)}
	}
	if p.AppliedSeq > p.TailSeq {
		return nil, chain, &CorruptError{Path: path,
			Reason: fmt.Sprintf("snapshot applied seq %d beyond its tail seq %d", p.AppliedSeq, p.TailSeq)}
	}
	return &p, chain, nil
}

// SnapshotInfo describes one snapshot file.
type SnapshotInfo struct {
	Name       string `json:"name"`
	AppliedSeq uint64 `json:"applied_seq"`
	TailSeq    uint64 `json:"tail_seq"`
	StateBytes int    `json:"state_bytes"`
	Corrupt    string `json:"corrupt,omitempty"`
}

// Info is the offline inspection report of a log directory (the
// `schedctl wal` subcommand).
type Info struct {
	Dir         string         `json:"dir"`
	TailSeq     uint64         `json:"tail_seq"`
	Chain       string         `json:"chain"`
	SnapshotSeq uint64         `json:"snapshot_seq"`
	Replayable  int            `json:"replayable_records"`
	ByType      map[string]int `json:"records_by_type,omitempty"`
	TornBytes   int64          `json:"torn_bytes,omitempty"`
	Segments    []SegmentInfo  `json:"segments"`
	Snapshots   []SnapshotInfo `json:"snapshots"`
	// Corrupt is the verification failure, if any ("" = chain OK). A
	// torn final record is not corruption (the crash hit mid-write).
	Corrupt string `json:"corrupt,omitempty"`
}

// Inspect verifies a log directory without modifying it and reports its
// structure. A corrupt log still returns an Info (with Corrupt set and
// whatever could be verified); only I/O errors return a non-nil error.
func Inspect(dir string) (*Info, error) {
	info := &Info{Dir: dir, ByType: map[string]int{}}
	_, snaps, err := listFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, s := range sortedKeys(snaps) {
		si := SnapshotInfo{Name: snapName(s)}
		if p, _, err := loadSnap(snaps[s], s); err != nil {
			si.Corrupt = err.Error()
		} else {
			si.AppliedSeq, si.TailSeq, si.StateBytes = p.AppliedSeq, p.TailSeq, len(p.State)
		}
		info.Snapshots = append(info.Snapshots, si)
	}
	sc, err := scan(dir, false)
	if err != nil {
		if ce, ok := err.(*CorruptError); ok {
			info.Corrupt = ce.Error()
			return info, nil
		}
		return nil, err
	}
	info.TailSeq = sc.tailSeq
	info.Chain = ChainHex(sc.chain)
	info.SnapshotSeq = sc.replay.SnapshotSeq
	info.Replayable = len(sc.replay.Records)
	info.TornBytes = sc.replay.TornBytes
	info.Segments = sc.segInfos
	for _, r := range sc.replay.Records {
		info.ByType[r.Type]++
	}
	sort.Slice(info.Segments, func(i, j int) bool { return info.Segments[i].Name < info.Segments[j].Name })
	return info, nil
}

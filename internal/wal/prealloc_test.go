package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"testing"
)

// dataEnd walks a segment image and returns the offset where its frames
// stop (the start of the preallocated zero tail).
func dataEnd(t *testing.T, b []byte) int {
	t.Helper()
	off := 0
	for off+headerSize <= len(b) {
		length := int(binary.LittleEndian.Uint32(b[off : off+4]))
		if length == 0 || length > maxRecordSize || off+headerSize+length > len(b) {
			break
		}
		off += headerSize + length
	}
	return off
}

// crashedLog builds a log of n records and Aborts it (crash simulation:
// no close-time truncation), returning the directory and the last
// segment's path. The segment keeps its preallocated zero tail.
func crashedLog(t *testing.T, n int) (dir, seg string) {
	t.Helper()
	dir = t.TempDir()
	l, _, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= n; i++ {
		if _, err := l.AppendSync("submit", testPayload{ID: i, S: "payload"}, nil); err != nil {
			t.Fatal(err)
		}
	}
	l.Abort()
	segs, _, err := listFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := sortedKeys(segs)
	if len(keys) == 0 {
		t.Fatal("no segments written")
	}
	return dir, segs[keys[len(keys)-1]]
}

func TestPreallocatedZeroTailIsCleanEnd(t *testing.T) {
	dir, seg := crashedLog(t, 9)
	st, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() < preallocBytes {
		t.Skipf("filesystem did not preallocate (size %d); zero-tail path not exercised", st.Size())
	}
	l, rep, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("zero tail refused: %v", err)
	}
	if len(rep.Records) != 9 || rep.TornBytes != 0 {
		t.Fatalf("replayed %d records, torn %d; want 9, 0", len(rep.Records), rep.TornBytes)
	}
	// Appends must land right after the recovered tail, over the zeros.
	if _, err := l.AppendSync("submit", testPayload{ID: 10}, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rep2, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("reopen after append-over-zeros: %v", err)
	}
	if len(rep2.Records) != 10 {
		t.Fatalf("after append replayed %d, want 10", len(rep2.Records))
	}
}

func TestTornFrameInPreallocatedTailTruncated(t *testing.T) {
	dir, seg := crashedLog(t, 6)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	end := dataEnd(t, b)
	if end >= len(b) {
		t.Skip("no preallocated tail to tear into")
	}
	// A torn write: a plausible header claiming 100 payload bytes, of
	// which only 20 garbage bytes landed before the crash.
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [headerSize + 20]byte
	binary.LittleEndian.PutUint32(frame[0:4], 100)
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE([]byte("x")))
	for i := headerSize; i < len(frame); i++ {
		frame[i] = 0xAB
	}
	if _, err := f.WriteAt(frame[:], int64(end)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l, rep, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("torn frame in zero tail refused: %v", err)
	}
	if len(rep.Records) != 6 || rep.TornBytes == 0 {
		t.Fatalf("replayed %d records, torn %d; want 6 records and torn bytes", len(rep.Records), rep.TornBytes)
	}
	l.Close()
}

func TestLiveBytesBeyondTornFrameIsCorrupt(t *testing.T) {
	dir, seg := crashedLog(t, 6)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	end := dataEnd(t, b)
	if end+headerSize+200 >= len(b) {
		t.Skip("no preallocated tail to write into")
	}
	// Same torn header claiming 100 bytes — but live bytes sit beyond
	// the claimed frame's extent, so a fully written record must have
	// followed: corruption, not a tear.
	f, err := os.OpenFile(seg, os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var frame [headerSize + 20]byte
	binary.LittleEndian.PutUint32(frame[0:4], 100)
	for i := headerSize; i < len(frame); i++ {
		frame[i] = 0xAB
	}
	if _, err := f.WriteAt(frame[:], int64(end)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xCD}, int64(end+headerSize+150)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, _, err = Open(Options{Dir: dir, NoSync: true})
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("live bytes beyond torn frame not refused: %v", err)
	}
}

func TestFlipInFinalRecordDroppedAsTorn(t *testing.T) {
	// An in-place corruption of the very last record, with nothing after
	// it, is indistinguishable from a torn write: dropped silently, and
	// the prefix must survive intact.
	dir, seg := writeLog(t, 5, 0)
	b, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	off := recordOffset(t, b, 4)
	b[off+headerSize+1] ^= 0x04
	if err := os.WriteFile(seg, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, rep, err := Open(Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("final-record flip refused: %v", err)
	}
	if got := replaySeqs(rep); len(got) != 4 || got[3] != 4 {
		t.Fatalf("replayed %v, want [1 2 3 4]", got)
	}
	if rep.TornBytes == 0 {
		t.Fatal("dropped final record not counted as torn")
	}
}

// TestFuzzFlipInPreallocatedImage is the preallocated-segment variant of
// the byte-fuzz sweep: flips inside the data region of a crashed
// (zero-tailed) segment must recover an exact prefix or refuse loudly —
// never a wrong job set.
func TestFuzzFlipInPreallocatedImage(t *testing.T) {
	const n = 6
	dir, seg := crashedLog(t, n)
	orig, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	end := dataEnd(t, orig)
	want := make(map[uint64]string)
	{
		l, rep, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rep.Records {
			want[r.Seq] = string(r.Data)
		}
		l.Abort() // keep the zero tail for the fuzz copies
	}
	checkPrefix := func(tag string, pos int, rep *Replay) {
		for i, r := range rep.Records {
			if r.Seq != uint64(i+1) {
				t.Fatalf("%s@%d: records not a prefix: %v", tag, pos, replaySeqs(rep))
			}
			if string(r.Data) != want[r.Seq] {
				t.Fatalf("%s@%d: record %d data mutated: %s", tag, pos, r.Seq, r.Data)
			}
		}
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 120; trial++ {
		pos := rng.Intn(end)
		mut := append([]byte(nil), orig...)
		mut[pos] ^= byte(1 << uint(rng.Intn(8)))
		if err := os.WriteFile(seg, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		l, rep, err := Open(Options{Dir: dir, NoSync: true})
		if err != nil {
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("flip@%d: non-CorruptError failure: %v", pos, err)
			}
			continue
		}
		checkPrefix("flip", pos, rep)
		l.Abort()
	}
}

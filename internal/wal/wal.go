// Package wal is the durable write-ahead job log of the scheduling
// service: an append-only, hash-chained, CRC-checksummed record log
// with batched group-commit fsync, periodic state snapshots, and
// prefix-exact crash recovery.
//
// The design follows the same amortization idea as schedd's submission
// batching: instead of one fsync per record, concurrent appenders are
// coalesced into one write + one fsync (group commit, bounded by
// Options.FsyncEvery), so per-record durability cost shrinks as load
// grows — exactly when it matters. Segments are preallocated up front
// (fallocate) so appends never change file metadata and the flush is
// fdatasync — a pure data flush that does not serialize on the
// filesystem journal against snapshot writes, directory updates, or
// any other fsync on the machine, which is what keeps the commit's
// tail latency flat. Each record is framed as
//
//	len(4, LE) | crc32(4, LE, IEEE, over payload) | chain(32) | payload
//
// where payload is the JSON envelope {"seq","type","data"} and chain is
// the running SHA-256 hash chain
//
//	chain_i = SHA256(chain_{i-1} || payload_i)     (chain_0 = 0…0)
//
// The CRC detects byte corruption of a single record; the chain makes
// the log tamper-evident end to end (a reordered, dropped or rewritten
// record breaks every later link), which doubles as an audit trail of
// admission decisions.
//
// Snapshots bound replay time: Snapshot(appliedSeq, state) persists an
// application state that covers every record with seq <= appliedSeq,
// rotates the log to a fresh segment, and prunes segments that no
// replay can need. Recovery (Open) loads the newest valid snapshot and
// re-applies only the records after it, verifying CRCs, the hash chain
// and seq contiguity along the way. The zero tail of a preallocated
// segment is a clean end; a torn final record — a partial frame
// followed by that zero tail, or by the end of the file — is truncated
// silently (an in-place corruption of the very last record, with
// nothing after it, is indistinguishable from a torn write and is
// likewise dropped, as in every log without a separate commit record).
// Any other corruption — a broken record with live bytes after it —
// refuses to start unless Options.Repair is set, in which case the
// longest valid prefix is kept and the rest dropped — recovery is
// always prefix-exact, never silently wrong.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

const (
	headerSize    = 4 + 4 + 32 // len | crc | chain
	maxRecordSize = 16 << 20

	// preallocBytes is the segment preallocation unit: segments are
	// fallocated up front so appends never change file metadata and the
	// group commit can flush with fdatasync — a pure data flush that
	// does not serialize on the filesystem journal with every other
	// fsync on the machine (snapshot files, directory updates). A
	// cleanly closed or rotated-away segment is truncated back to its
	// records; scan treats the zero tail of a crashed segment as a
	// clean end.
	preallocBytes = 4 << 20

	// asyncFlushInterval bounds how long async (non-durability-barrier)
	// records sit in the pending queue when no AppendSync leader and no
	// snapshot comes along to flush them.
	asyncFlushInterval = 50 * time.Millisecond

	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

// ErrClosed is returned by appends after Close or Abort.
var ErrClosed = errors.New("wal: closed")

// CorruptError reports a record that is present but invalid: a CRC
// mismatch, a broken hash chain, a seq discontinuity, or a malformed
// envelope. It is how recovery fails loudly instead of loading a
// silently wrong job set.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt log %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Record is one replayed log record.
type Record struct {
	// Seq is the global, contiguous, 1-based sequence number.
	Seq uint64 `json:"seq"`
	// Type names the record kind (application-defined).
	Type string `json:"type"`
	// Data is the application payload.
	Data json.RawMessage `json:"data,omitempty"`
}

// Replay is the recovered tail handed to the application by Open: the
// newest valid snapshot state plus every record after it.
type Replay struct {
	// SnapshotSeq is the applied seq of the loaded snapshot (0 = none).
	SnapshotSeq uint64
	// Snapshot is the application state stored at SnapshotSeq (nil when
	// the log has no snapshot).
	Snapshot json.RawMessage
	// Records are the log records with seq > SnapshotSeq, in order.
	Records []Record
	// TornBytes counts bytes of a torn final record dropped at the tail.
	TornBytes int64
	// Repaired counts records dropped by Options.Repair truncation.
	Repaired int
	// Segments is how many segment files were read.
	Segments int
}

// Options parameterizes Open.
type Options struct {
	// Dir is the log directory (created if missing).
	Dir string
	// FsyncEvery caps how many pending appends one group commit flushes
	// with a single fsync (default 64).
	FsyncEvery int
	// NoSync skips fsync entirely (tests and benchmarks only).
	NoSync bool
	// Repair truncates the log at the first corrupt record instead of
	// refusing to open; the dropped suffix is counted in Replay.Repaired.
	Repair bool
	// Trace and Metrics are the observability sinks (nil-safe).
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

// pendingRec is one queued append (or a snapshot barrier).
type pendingRec struct {
	payload []byte
	done    chan error // non-nil: a waiter wants fsync confirmation
	snap    *snapReq   // non-nil: snapshot barrier, payload unused
}

type snapReq struct {
	appliedSeq uint64
	state      []byte
	done       chan error
}

// Log is an open write-ahead log. Appends are safe for concurrent use.
// Writes are single-writer under the writing token: an AppendSync
// caller leads its own group commit when the file is free (waitOrLead),
// and the background syncer goroutine drains async records, snapshot
// barriers, and anything leaders leave queued.
type Log struct {
	opts Options
	dir  string

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*pendingRec
	seq     uint64 // last assigned seq
	closed  bool
	abort   bool  // drop pending instead of draining (crash simulation)
	err     error // sticky background write error
	writing bool  // a writer (syncer or group-commit leader) holds the file

	// Writer-owned state (guarded by the writing token, not mu).
	f          *os.File
	off        int64 // append offset in the active segment
	alloc      int64 // preallocated capacity of the active segment
	chain      [32]byte
	writtenSeq uint64
	segStart   uint64         // name (last-seq-before) of the active segment
	snapWG     sync.WaitGroup // in-flight background snapshot write

	done chan struct{}

	cAppends   *obs.Counter
	cErrors    *obs.Counter
	cFsyncs    *obs.Counter
	cSnapshots *obs.Counter
	hAppendMs  *obs.Histogram
	hFsyncMs   *obs.Histogram
	hBatch     *obs.Histogram
}

// Open opens (or creates) the log in opts.Dir, recovers its state, and
// returns the log ready for appends plus the replay the application
// must re-apply. Recovery verifies every record's CRC, the hash chain
// and seq contiguity; see the package comment for the failure rules.
func Open(opts Options) (*Log, *Replay, error) {
	if opts.Dir == "" {
		return nil, nil, errors.New("wal: no directory")
	}
	if opts.FsyncEvery < 1 {
		opts.FsyncEvery = 64
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	span := opts.Trace.StartSpan("wal.replay", obs.Str("dir", opts.Dir))
	sc, err := scan(opts.Dir, opts.Repair)
	if err != nil {
		span.End(obs.Str("status", "corrupt"))
		return nil, nil, err
	}
	// Drop the torn/repaired suffix of the last segment, then any
	// segments past a repair point, so the on-disk log is exactly the
	// recovered prefix before new appends land.
	if sc.truncatePath != "" {
		if err := os.Truncate(sc.truncatePath, sc.truncateLen); err != nil {
			return nil, nil, fmt.Errorf("wal: truncate %s: %w", sc.truncatePath, err)
		}
	}
	for _, p := range sc.dropSegments {
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return nil, nil, fmt.Errorf("wal: drop %s: %w", p, err)
		}
	}
	l := &Log{
		opts:       opts,
		dir:        opts.Dir,
		seq:        sc.tailSeq,
		chain:      sc.chain,
		writtenSeq: sc.tailSeq,
		segStart:   sc.segStart,
		done:       make(chan struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	if reg := opts.Metrics; reg != nil {
		msBounds := []float64{0.05, 0.1, 0.25, 0.5, 1, 2, 5, 10, 25, 50, 100}
		batchBounds := []float64{1, 2, 4, 8, 16, 32, 64, 128}
		l.cAppends = reg.Counter("wal.appends")
		l.cErrors = reg.Counter("wal.append.errors")
		l.cFsyncs = reg.Counter("wal.fsyncs")
		l.cSnapshots = reg.Counter("wal.snapshots")
		l.hAppendMs = reg.Histogram("wal.append.wait.ms", msBounds)
		l.hFsyncMs = reg.Histogram("wal.fsync.ms", msBounds)
		l.hBatch = reg.Histogram("wal.fsync.batch", batchBounds)
		reg.Counter("wal.replay.records").Add(int64(len(sc.replay.Records)))
		reg.Counter("wal.replay.torn.bytes").Add(sc.replay.TornBytes)
		reg.Counter("wal.replay.repaired").Add(int64(sc.replay.Repaired))
	}
	segPath := filepath.Join(opts.Dir, segName(sc.segStart))
	f, err := os.OpenFile(segPath, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, nil, err
	}
	l.f = f
	l.off = sc.tailOff
	if st, err := f.Stat(); err == nil {
		l.alloc = st.Size()
	}
	if err := l.grow(l.off + 1); err != nil {
		f.Close()
		return nil, nil, err
	}
	go l.syncer()
	go l.flushTicker()
	span.End(
		obs.Int("snapshot_seq", int64(sc.replay.SnapshotSeq)),
		obs.Int("records", int64(len(sc.replay.Records))),
		obs.Int("torn_bytes", sc.replay.TornBytes),
		obs.Int("repaired", int64(sc.replay.Repaired)),
		obs.Int("tail_seq", int64(sc.tailSeq)))
	return l, sc.replay, nil
}

// Append queues one record and returns its assigned seq without waiting
// for durability (writer-loop records whose loss a replay repairs).
// Async records ride the next group commit — a sync append's batch, a
// snapshot, Close, or at the latest the periodic flush tick — and an
// all-async batch is written without an fsync, so async appends never
// pay or cause a disk flush of their own. A background write failure is
// sticky: it is reported by Err and every later AppendSync.
func (l *Log) Append(typ string, data any) (uint64, error) {
	return l.append(typ, data, nil, false)
}

// AppendSync queues one record and blocks until it (and everything
// queued before it) is fsynced — the durability barrier an admission
// response must pass before committing. onSeq, if non-nil, is invoked
// with the assigned seq while the assignment lock is held, so the
// caller can register the seq atomically with its allocation.
func (l *Log) AppendSync(typ string, data any, onSeq func(uint64)) (uint64, error) {
	return l.append(typ, data, onSeq, true)
}

func (l *Log) append(typ string, data any, onSeq func(uint64), sync bool) (uint64, error) {
	var body json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			return 0, fmt.Errorf("wal: marshal %s record: %w", typ, err)
		}
		body = b
	}
	start := time.Now()
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.err != nil {
		err := l.err
		l.mu.Unlock()
		return 0, err
	}
	l.seq++
	seq := l.seq
	payload, err := json.Marshal(Record{Seq: seq, Type: typ, Data: body})
	if err != nil {
		l.seq--
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: marshal %s envelope: %w", typ, err)
	}
	if onSeq != nil {
		onSeq(seq)
	}
	pr := &pendingRec{payload: payload}
	if sync {
		pr.done = make(chan error, 1)
	}
	l.pending = append(l.pending, pr)
	// Only a backpressured async append wakes the syncer. A sync
	// append's caller is about to lead the write itself (waitOrLead),
	// and waking the syncer would race it for the batch — losing that
	// race costs the caller a scheduler round trip, which on a busy
	// single-CPU host means waiting out whatever slice holds the CPU.
	// Async records carry no durability deadline, so they simply ride
	// the next leader's batch, snapshot, Close, or flush tick instead
	// of waking the syncer once per record.
	if !sync && len(l.pending) >= l.opts.FsyncEvery {
		l.cond.Signal()
	}
	l.mu.Unlock()
	l.cAppends.Inc()
	if !sync {
		return seq, nil
	}
	err = l.waitOrLead(pr)
	l.hAppendMs.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	if err != nil {
		l.cErrors.Inc()
	}
	return seq, err
}

// waitOrLead completes a sync append: when no writer is active the
// calling goroutine becomes the group-commit leader and performs the
// batch write itself — on a small host this skips two scheduler
// handoffs through the background syncer, which otherwise bound submit
// tail latency whenever a long replan slice holds the CPU — and
// otherwise it blocks until the active writer delivers its record's
// durability result. A snapshot barrier at the head of the queue
// belongs to the syncer; leaders never process one.
func (l *Log) waitOrLead(pr *pendingRec) error {
	for {
		select {
		case err := <-pr.done:
			return err
		default:
		}
		l.mu.Lock()
		if l.writing || l.closed || len(l.pending) == 0 || l.pending[0].snap != nil {
			l.mu.Unlock()
			return <-pr.done
		}
		batch, needSync := l.cutBatch()
		l.mu.Unlock()
		l.runBatch(batch, needSync)
		l.mu.Lock()
		l.writing = false
		l.cond.Signal()
		l.mu.Unlock()
	}
}

// flushTicker periodically nudges the syncer so async records never sit
// in memory longer than asyncFlushInterval when no sync append, snapshot
// or Close comes along to flush them.
func (l *Log) flushTicker() {
	t := time.NewTicker(asyncFlushInterval)
	defer t.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.writing && len(l.pending) > 0 {
				l.cond.Signal()
			}
			l.mu.Unlock()
		}
	}
}

// Snapshot persists the application state covering every record with
// seq <= appliedSeq, rotates the log to a fresh segment, and prunes
// segments and snapshots no replay can need. It blocks until the
// rotation is durable; the snapshot file itself is written by a
// background goroutine (a failure there is sticky, reported by Err and
// later AppendSyncs) so appends resume immediately, and Close waits for
// it. Until the file lands, recovery simply anchors on the previous
// snapshot. appliedSeq may lag the tail (records after it
// are simply replayed on top of the state), but must not exceed it.
func (l *Log) Snapshot(appliedSeq uint64, state any) error {
	stateBytes, err := json.Marshal(state)
	if err != nil {
		return fmt.Errorf("wal: marshal snapshot state: %w", err)
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if appliedSeq > l.seq {
		seq := l.seq
		l.mu.Unlock()
		return fmt.Errorf("wal: snapshot applied seq %d beyond tail %d", appliedSeq, seq)
	}
	req := &snapReq{appliedSeq: appliedSeq, state: stateBytes, done: make(chan error, 1)}
	l.pending = append(l.pending, &pendingRec{snap: req})
	l.cond.Signal()
	l.mu.Unlock()
	return <-req.done
}

// Seq returns the last assigned sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Chain returns the hash-chain value at the last written record.
func (l *Log) Chain() [32]byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.chain
}

// Err returns the sticky background write error, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close drains every pending append, fsyncs, and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
	return l.Err()
}

// Abort simulates a crash for tests: pending (unwritten) appends are
// dropped and the file is closed without a final fsync — exactly the
// state a kill -9 leaves behind. Records already handed to the OS
// survive; queued ones do not.
func (l *Log) Abort() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.abort = true
	for _, p := range l.pending {
		if p.done != nil {
			p.done <- ErrClosed
		}
		if p.snap != nil {
			p.snap.done <- ErrClosed
		}
	}
	l.pending = nil
	l.cond.Signal()
	l.mu.Unlock()
	<-l.done
}

// syncer is the fallback writer goroutine: it drains whatever the
// group-commit leaders (AppendSync callers, see waitOrLead) leave
// behind — async writer-loop records, snapshot barriers, the final
// drain on Close — one exclusive batch at a time under the writing
// token shared with the leaders.
func (l *Log) syncer() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for l.writing || (len(l.pending) == 0 && !l.closed) {
			l.cond.Wait()
		}
		if len(l.pending) == 0 || l.abort {
			closed := l.closed
			l.mu.Unlock()
			if closed {
				if !l.abort {
					l.sync()
					// Release the preallocated zero tail: a cleanly
					// closed segment is exactly its records. A crash
					// skips this, and scan treats the zero tail as a
					// clean end; the truncation is cosmetic, so its
					// durability (and failure) does not matter.
					l.f.Truncate(l.off)
				}
				l.snapWG.Wait()
				l.f.Close()
				return
			}
			continue
		}
		if snap := l.pending[0].snap; snap != nil {
			// A snapshot barrier is processed alone.
			l.pending = l.pending[1:]
			l.writing = true
			l.mu.Unlock()
			err := l.startSnapshot(snap)
			if err != nil {
				l.fail(err)
			}
			snap.done <- err
		} else {
			batch, needSync := l.cutBatch()
			l.mu.Unlock()
			l.runBatch(batch, needSync)
		}
		l.mu.Lock()
		l.writing = false
		l.cond.Signal()
		l.mu.Unlock()
	}
}

// cutBatch splices up to FsyncEvery records off the head of the pending
// queue (stopping before any snapshot barrier) and takes the writing
// token. Called with l.mu held and a non-snap record at the head.
// needSync reports whether anyone in the batch is blocked on
// durability: an all-async batch is written but not flushed — written
// bytes survive a process kill (the crash model the service recovers
// from), the next sync-bearing batch, snapshot, or Close covers them,
// and a machine-failure torn tail is the artifact replay already
// truncates.
func (l *Log) cutBatch() (batch []*pendingRec, needSync bool) {
	n := len(l.pending)
	if n > l.opts.FsyncEvery {
		n = l.opts.FsyncEvery
	}
	for i := 0; i < n; i++ {
		if l.pending[i].snap != nil {
			n = i
			break
		}
	}
	batch = append([]*pendingRec(nil), l.pending[:n]...)
	l.pending = l.pending[n:]
	l.writing = true
	for _, p := range batch {
		if p.done != nil {
			needSync = true
			break
		}
	}
	return batch, needSync
}

// runBatch writes one exclusive batch and delivers the result to every
// durability waiter in it. Called with the writing token held.
func (l *Log) runBatch(batch []*pendingRec, needSync bool) {
	err := l.writeBatch(batch, needSync)
	if err != nil {
		l.fail(err)
	}
	for _, p := range batch {
		if p.done != nil {
			p.done <- err
		}
	}
}

// writeBatch frames and writes the batch into the preallocated segment,
// then flushes once. The chain is advanced on a local copy and
// published under the lock so Chain() readers never race the write
// path.
func (l *Log) writeBatch(batch []*pendingRec, needSync bool) error {
	var buf []byte
	chain := l.chain
	for _, p := range batch {
		chain = sha256.Sum256(append(chain[:], p.payload...))
		buf = appendFrame(buf, p.payload, chain)
	}
	if err := l.grow(l.off + int64(len(buf))); err != nil {
		return err
	}
	if _, err := l.f.WriteAt(buf, l.off); err != nil {
		return fmt.Errorf("wal: write: %w", err)
	}
	l.off += int64(len(buf))
	if needSync {
		if err := l.sync(); err != nil {
			return err
		}
	}
	l.mu.Lock()
	l.chain = chain
	l.mu.Unlock()
	l.writtenSeq += uint64(len(batch))
	l.hBatch.Observe(float64(len(batch)))
	return nil
}

// grow ensures the active segment has durable allocated capacity up to
// need bytes (rounded up to whole preallocation units). Growth beyond
// the initial preallocation is rare — a segment outlives preallocBytes
// only when snapshots stall — but the allocation metadata must be
// flushed before the data lands: an acknowledged record beyond a lost
// size update would vanish with the crash.
func (l *Log) grow(need int64) error {
	if need <= l.alloc {
		return nil
	}
	size := l.alloc
	if size < preallocBytes {
		size = preallocBytes
	}
	for size < need {
		size += preallocBytes
	}
	if err := preallocate(l.f, size); err != nil {
		return fmt.Errorf("wal: preallocate: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: fsync: %w", err)
		}
	}
	l.alloc = size
	return nil
}

// sync makes every written record durable. Appends stay inside the
// preallocated extent, so fdatasync has no metadata to flush and does
// not serialize on the filesystem journal (see preallocBytes).
func (l *Log) sync() error {
	if l.opts.NoSync {
		return nil
	}
	t0 := time.Now()
	if err := datasync(l.f); err != nil {
		return fmt.Errorf("wal: fdatasync: %w", err)
	}
	l.cFsyncs.Inc()
	l.hFsyncMs.Observe(float64(time.Since(t0)) / float64(time.Millisecond))
	return nil
}

// fail records a sticky background error and emits it once.
func (l *Log) fail(err error) {
	l.mu.Lock()
	first := l.err == nil
	if first {
		l.err = err
	}
	l.mu.Unlock()
	if first {
		l.cErrors.Inc()
		l.opts.Trace.Emit("wal.error", obs.Str("err", err.Error()))
	}
}

// startSnapshot runs the synchronous half of a snapshot — flush the
// active segment so the captured chain position is durable, rotate to a
// fresh segment named by the tail seq — then hands the snapshot file
// write to a background goroutine so queued appends never stall behind
// its fsyncs. Crash safety does not depend on the async half landing:
// until the snapshot file is renamed into place, recovery anchors on
// the previous snapshot and replays straight across the new segment
// boundary (scan verifies the chain through every kept segment), and
// prune runs only after the new snapshot is durable.
func (l *Log) startSnapshot(req *snapReq) error {
	l.snapWG.Wait() // at most one snapshot write in flight
	if err := l.sync(); err != nil {
		return err
	}
	tail, chain := l.writtenSeq, l.chain
	// Rotate (unless the active segment is already named by this tail,
	// which happens when a snapshot is taken with zero new records).
	if tail != l.segStart {
		nf, err := os.OpenFile(filepath.Join(l.dir, segName(tail)),
			os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		if err := preallocate(nf, preallocBytes); err != nil {
			nf.Close()
			return fmt.Errorf("wal: preallocate: %w", err)
		}
		if !l.opts.NoSync {
			if err := nf.Sync(); err != nil {
				nf.Close()
				return fmt.Errorf("wal: fsync: %w", err)
			}
		}
		if err := fsyncDir(l.dir, l.opts.NoSync); err != nil {
			nf.Close()
			return err
		}
		// Release the old segment's zero tail (cosmetic; a failure or a
		// crash before the truncation is durable just leaves zeros that
		// scan treats as a clean end).
		l.f.Truncate(l.off)
		l.f.Close()
		l.f = nf
		l.off, l.alloc = 0, preallocBytes
		l.segStart = tail
	}
	l.snapWG.Add(1)
	go func() {
		defer l.snapWG.Done()
		if err := l.writeSnapshotFile(req, tail, chain); err != nil {
			l.fail(err)
		}
	}()
	return nil
}

// writeSnapshotFile persists the snapshot file durably (tmp + fsync +
// rename + dir fsync) and prunes files every future replay has
// outgrown. It runs off the append path; a failure is sticky via fail.
func (l *Log) writeSnapshotFile(req *snapReq, tail uint64, chain [32]byte) error {
	payload, err := json.Marshal(snapPayload{
		AppliedSeq: req.appliedSeq,
		TailSeq:    tail,
		State:      req.state,
	})
	if err != nil {
		return fmt.Errorf("wal: marshal snapshot: %w", err)
	}
	frame := appendFrame(nil, payload, chain)
	path := filepath.Join(l.dir, snapName(tail))
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, frame, l.opts.NoSync); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: rename snapshot: %w", err)
	}
	if err := fsyncDir(l.dir, l.opts.NoSync); err != nil {
		return err
	}
	l.cSnapshots.Inc()
	l.opts.Trace.Emit("wal.snapshot",
		obs.Int("applied_seq", int64(req.appliedSeq)),
		obs.Int("tail_seq", int64(tail)),
		obs.Int("state_bytes", int64(len(req.state))))
	l.prune(req.appliedSeq)
	return nil
}

// prune removes segments every future replay has outgrown (their last
// record is covered by the newest snapshot) and snapshots older than
// the earliest kept segment's chain anchor.
func (l *Log) prune(appliedSeq uint64) {
	segs, snaps, err := listFiles(l.dir)
	if err != nil {
		return
	}
	segSeqs := sortedKeys(segs)
	earliest := uint64(0)
	for i, s := range segSeqs {
		// Segment s covers (s, next]; prunable once next <= appliedSeq.
		if i+1 < len(segSeqs) && segSeqs[i+1] <= appliedSeq {
			os.Remove(segs[s])
			continue
		}
		if earliest == 0 || s < earliest {
			earliest = s
		}
		break
	}
	for s, p := range snaps {
		if s < earliest {
			os.Remove(p)
		}
	}
}

// snapPayload is the snapshot file's JSON body.
type snapPayload struct {
	AppliedSeq uint64          `json:"applied_seq"`
	TailSeq    uint64          `json:"tail_seq"`
	State      json.RawMessage `json:"state"`
}

func segName(seq uint64) string  { return fmt.Sprintf("%s%016d%s", segPrefix, seq, segSuffix) }
func snapName(seq uint64) string { return fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix) }

func appendFrame(buf, payload []byte, chain [32]byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	copy(hdr[8:], chain[:])
	return append(append(buf, hdr[:]...), payload...)
}

func writeFileSync(path string, b []byte, noSync bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
	}
	return f.Close()
}

func fsyncDir(dir string, noSync bool) error {
	if noSync {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// listFiles maps segment and snapshot sequence numbers to paths.
func listFiles(dir string) (segs, snaps map[uint64]string, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	segs, snaps = map[uint64]string{}, map[uint64]string{}
	for _, e := range ents {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, segPrefix) && strings.HasSuffix(name, segSuffix):
			var n uint64
			if _, err := fmt.Sscanf(name, segPrefix+"%d", &n); err == nil {
				segs[n] = filepath.Join(dir, name)
			}
		case strings.HasPrefix(name, snapPrefix) && strings.HasSuffix(name, snapSuffix):
			var n uint64
			if _, err := fmt.Sscanf(name, snapPrefix+"%d", &n); err == nil {
				snaps[n] = filepath.Join(dir, name)
			}
		}
	}
	return segs, snaps, nil
}

func sortedKeys(m map[uint64]string) []uint64 {
	out := make([]uint64, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ChainHex renders a chain value for display.
func ChainHex(c [32]byte) string { return hex.EncodeToString(c[:]) }

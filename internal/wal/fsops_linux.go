//go:build linux

package wal

import (
	"os"
	"syscall"
)

// preallocate extends f to size bytes of allocated-and-zero blocks
// (fallocate mode 0). With the segment's blocks and size fixed up
// front, later appends change no file metadata, so datasync flushes
// pure data — no ext4 journal transaction — which keeps the group
// commit's flush latency independent of every other fsync on the
// machine (directory updates, snapshot files, other services sharing
// the journal). Best-effort: on filesystems without fallocate the
// segment simply grows per append like a plain log.
func preallocate(f *os.File, size int64) error {
	err := syscall.Fallocate(int(f.Fd()), 0, 0, size)
	if err == syscall.EOPNOTSUPP || err == syscall.ENOSYS {
		return nil
	}
	return err
}

// datasync flushes f's data without forcing a metadata commit
// (fdatasync). Appends into preallocated space leave metadata clean,
// so this is the cheap half of fsync on the hot path.
func datasync(f *os.File) error {
	for {
		err := syscall.Fdatasync(int(f.Fd()))
		if err != syscall.EINTR {
			return err
		}
	}
}

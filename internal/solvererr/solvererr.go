// Package solvererr holds the error plumbing shared by the lp and mip
// solver packages. Both expose the same cancellation contract — a typed
// *CanceledError matched by a package-local ErrCanceled sentinel via
// errors.Is — and both map a small Status enum onto fixed name tables.
// The implementations used to be copy-pasted; this package is the single
// spot they share, while each solver keeps its own distinct error type
// (so errors.As(*lp.CanceledError) never matches a mip cancellation and
// vice versa) and its own sentinel.
package solvererr

// Canceled is the common implementation behind lp.CanceledError and
// mip.CanceledError: it formats "<op>: solve canceled: <cause>", unwraps
// to the cause, and makes errors.Is match the owning package's sentinel.
// The solver packages embed it in their exported error types, keeping
// the types distinct for errors.As while sharing the behavior.
type Canceled struct {
	// Op is the owning package's error prefix ("lp", "mip").
	Op string
	// Sentinel is the owning package's ErrCanceled value.
	Sentinel error
	// Cause is context.Cause of the context at abort time, so callers can
	// distinguish deadlines from explicit cancellation with errors.Is.
	Cause error
}

func (e *Canceled) Error() string {
	return e.Op + ": solve canceled: " + e.Cause.Error()
}

// Unwrap exposes the abort cause to errors.Is/errors.As chains.
func (e *Canceled) Unwrap() error { return e.Cause }

// Is makes errors.Is(err, <owning package>.ErrCanceled) match.
func (e *Canceled) Is(target error) bool { return target == e.Sentinel }

// StatusName maps a status ordinal onto its name table; out-of-range
// values (including the enums' catch-all default) fall to the last name,
// matching the switch-default the solver packages used to hand-write.
func StatusName(s int, names []string) string {
	if s >= 0 && s < len(names) {
		return names[s]
	}
	return names[len(names)-1]
}

package mip

import (
	"fmt"
	"math"
	"time"

	"repro/internal/table"
)

// SolveReport is a human-readable summary of a branch-and-bound solve,
// rendered by the CLIs as an aligned table at exit.
type SolveReport struct {
	Status           Status
	Objective        float64
	BestBound        float64
	Gap              float64
	Nodes            int
	Pruned           int
	LPSolves         int
	LPIters          int
	Refactorizations int
	DegeneratePivots int
	Incumbents       int
	HeuristicHits    int
	Cuts             int
	DeadlineHit      bool
	Elapsed          time.Duration
}

// Report summarizes the result.
func (r *Result) Report() *SolveReport {
	return &SolveReport{
		Status:           r.Status,
		Objective:        r.Objective,
		BestBound:        r.BestBound,
		Gap:              r.Gap(),
		Nodes:            r.Nodes,
		Pruned:           r.Pruned,
		LPSolves:         r.LPSolves,
		LPIters:          r.LPIters,
		Refactorizations: r.Refactorizations,
		DegeneratePivots: r.DegeneratePivots,
		Incumbents:       len(r.Incumbents),
		HeuristicHits:    r.HeuristicHits,
		Cuts:             r.Cuts,
		DeadlineHit:      r.DeadlineHit,
		Elapsed:          r.Elapsed,
	}
}

// String renders the report as a two-column table.
func (sr *SolveReport) String() string {
	t := table.New("solve", "value")
	t.Row("status", sr.Status.String())
	if !math.IsInf(sr.Objective, 0) {
		t.Row("objective", fmt.Sprintf("%.6g", sr.Objective))
	}
	if !math.IsInf(sr.BestBound, 0) {
		t.Row("best bound", fmt.Sprintf("%.6g", sr.BestBound))
		t.Row("gap [%]", fmt.Sprintf("%.2f", 100*sr.Gap))
	}
	t.Row("nodes explored", sr.Nodes)
	t.Row("nodes pruned", sr.Pruned)
	t.Row("LP solves", sr.LPSolves)
	t.Row("LP iterations", sr.LPIters)
	t.Row("refactorizations", sr.Refactorizations)
	t.Row("degenerate pivots", sr.DegeneratePivots)
	t.Row("incumbents", sr.Incumbents)
	t.Row("heuristic hits", sr.HeuristicHits)
	t.Row("root cuts", sr.Cuts)
	t.Row("deadline hit", sr.DeadlineHit)
	t.Row("elapsed", sr.Elapsed.Round(time.Millisecond).String())
	return t.String()
}

package mip

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/stats"
)

func TestSeparateCoverFindsViolation(t *testing.T) {
	// Knapsack 3x1 + 3x2 + 3x3 <= 5 with x* = (0.8, 0.8, 0): the cover
	// {1,2} (weight 6 > 5) gives x1 + x2 <= 1, violated by 1.6.
	row := knapsackRow{cols: []int{0, 1, 2}, weights: []float64{3, 3, 3}, cap: 5}
	cover, ok := separateCover(row, []float64{0.8, 0.8, 0}, 1e-4)
	if !ok {
		t.Fatal("violated cover not found")
	}
	if len(cover) != 2 {
		t.Fatalf("cover = %v, want 2 columns", cover)
	}
	seen := map[int]bool{}
	for _, c := range cover {
		seen[c] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("cover = %v, want {0, 1}", cover)
	}
}

func TestSeparateCoverNoViolation(t *testing.T) {
	row := knapsackRow{cols: []int{0, 1}, weights: []float64{3, 3}, cap: 5}
	// Integral point: no violated cover.
	if _, ok := separateCover(row, []float64{1, 0}, 1e-4); ok {
		t.Fatal("cover reported for an integral feasible point")
	}
	// No cover exists at all (weights fit together).
	light := knapsackRow{cols: []int{0, 1}, weights: []float64{2, 2}, cap: 5}
	if _, ok := separateCover(light, []float64{0.9, 0.9}, 1e-4); ok {
		t.Fatal("cover reported where none exists")
	}
}

func TestKnapsackRowsEligibility(t *testing.T) {
	p := lp.NewProblem()
	b1 := p.AddVariable(0, 1, 0, "b1")
	b2 := p.AddVariable(0, 1, 0, "b2")
	cont := p.AddVariable(0, 5, 0, "c")
	rKnap := p.AddConstraint(lp.LE, 3)
	p.SetCoeff(rKnap, b1, 2)
	p.SetCoeff(rKnap, b2, 2)
	rMixed := p.AddConstraint(lp.LE, 3) // has a continuous column: ineligible
	p.SetCoeff(rMixed, b1, 1)
	p.SetCoeff(rMixed, cont, 1)
	rGE := p.AddConstraint(lp.GE, 1) // wrong sense
	p.SetCoeff(rGE, b1, 1)
	p.SetCoeff(rGE, b2, 1)
	rNeg := p.AddConstraint(lp.LE, 3) // negative coefficient: ineligible
	p.SetCoeff(rNeg, b1, -1)
	p.SetCoeff(rNeg, b2, 1)

	rows := knapsackRows(p, map[int]bool{b1: true, b2: true})
	if len(rows) != 1 || rows[0].cap != 3 || len(rows[0].cols) != 2 {
		t.Fatalf("knapsackRows = %+v, want exactly the pure binary LE row", rows)
	}
}

func TestRootCutsImproveBoundAndPreserveOptimum(t *testing.T) {
	// A knapsack whose LP bound is fractional: cuts must not change the
	// integer optimum but should reduce the search.
	values := []float64{10, 10, 10, 10, 10, 10}
	weights := []float64{3, 3, 3, 3, 3, 3}
	pNo, intsNo := knapsack(values, weights, 8) // best: 2 items = -20
	pCut, intsCut := knapsack(values, weights, 8)
	resNo, err := Solve(pNo, intsNo, Options{IntegralObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	resCut, err := Solve(pCut, intsCut, Options{IntegralObjective: true, RootCutRounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if resNo.Status != Optimal || resCut.Status != Optimal {
		t.Fatalf("statuses: %v / %v", resNo.Status, resCut.Status)
	}
	if math.Abs(resNo.Objective-resCut.Objective) > 1e-6 {
		t.Fatalf("cuts changed the optimum: %g vs %g", resNo.Objective, resCut.Objective)
	}
	if resCut.Objective != -20 {
		t.Fatalf("objective = %g, want -20", resCut.Objective)
	}
	if resCut.Cuts == 0 {
		t.Fatal("no cuts were added on a fractional knapsack root")
	}
}

// Property: with and without root cuts the optimum agrees on random
// binary knapsacks (cuts are valid inequalities).
func TestCutsPreserveOptimumProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(8) + 3
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := range values {
			values[j] = float64(r.Intn(20) + 1)
			weights[j] = float64(r.Intn(6) + 1)
		}
		capacity := float64(r.Intn(12) + 3)
		pA, iA := knapsack(values, weights, capacity)
		pB, iB := knapsack(values, weights, capacity)
		a, err := Solve(pA, iA, Options{IntegralObjective: true})
		if err != nil || a.Status != Optimal {
			return false
		}
		b, err := Solve(pB, iB, Options{IntegralObjective: true, RootCutRounds: 4})
		if err != nil || b.Status != Optimal {
			return false
		}
		return math.Abs(a.Objective-b.Objective) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

package mip

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// hardKnapsack returns a knapsack instance that needs a real search tree.
func hardKnapsack() ([]float64, []float64, float64) {
	values := []float64{10, 13, 7, 8, 2, 11, 9, 6, 5, 12, 4, 3}
	weights := []float64{3, 4, 2, 3, 1, 4, 3, 2, 2, 4, 1, 1}
	return values, weights, 11
}

func TestProgressCallback(t *testing.T) {
	values, weights, cap := hardKnapsack()
	p, ints := knapsack(values, weights, cap)
	var calls []Progress
	res, err := Solve(p, ints, Options{
		Progress:      func(pr Progress) { calls = append(calls, pr) },
		ProgressEvery: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if len(calls) == 0 {
		t.Fatal("Progress callback never invoked")
	}
	var sawIncumbent bool
	lastNodes := 0
	for _, pr := range calls {
		if pr.Nodes < lastNodes {
			t.Errorf("node count went backwards: %d after %d", pr.Nodes, lastNodes)
		}
		lastNodes = pr.Nodes
		if pr.HasIncumbent {
			sawIncumbent = true
			if math.IsInf(pr.Incumbent, 0) {
				t.Errorf("HasIncumbent with infinite objective")
			}
		}
	}
	if !sawIncumbent {
		t.Error("no progress snapshot ever carried an incumbent")
	}
	// Incumbent acceptance also fires the callback, so there must be at
	// least Nodes (one per node at ProgressEvery=1) calls.
	if len(calls) < res.Nodes {
		t.Errorf("got %d progress calls for %d nodes", len(calls), res.Nodes)
	}
}

func TestIncumbentAndBoundLogs(t *testing.T) {
	values, weights, cap := hardKnapsack()
	p, ints := knapsack(values, weights, cap)
	res, err := Solve(p, ints, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Incumbents) == 0 {
		t.Fatal("no incumbent records")
	}
	last := math.Inf(1)
	for _, rec := range res.Incumbents {
		if rec.Objective >= last {
			t.Errorf("incumbent objective not improving: %g after %g", rec.Objective, last)
		}
		last = rec.Objective
		if rec.Source != "lp" && rec.Source != "heuristic" && rec.Source != "initial" {
			t.Errorf("unknown incumbent source %q", rec.Source)
		}
	}
	if res.Incumbents[len(res.Incumbents)-1].Objective != res.Objective {
		t.Errorf("last incumbent %g != final objective %g",
			res.Incumbents[len(res.Incumbents)-1].Objective, res.Objective)
	}
	lastBound := math.Inf(-1)
	for _, rec := range res.Bounds {
		if rec.Bound <= lastBound {
			t.Errorf("bound trajectory not monotone: %g after %g", rec.Bound, lastBound)
		}
		lastBound = rec.Bound
	}
	if res.LPSolves != res.Nodes {
		t.Errorf("LPSolves = %d, want %d (no cuts configured)", res.LPSolves, res.Nodes)
	}
}

func TestSolveTraceAndMetrics(t *testing.T) {
	values, weights, cap := hardKnapsack()
	p, ints := knapsack(values, weights, cap)
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	res, err := Solve(p, ints, Options{Trace: obs.NewTracer(&buf), Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}

	types := map[string]int{}
	var sawSolveEnd bool
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		ev := e["ev"].(string)
		types[ev]++
		if ev == "mip.solve" && e["phase"] == "end" {
			sawSolveEnd = true
			if e["status"] != "optimal" {
				t.Errorf("solve span status = %v", e["status"])
			}
		}
	}
	for _, want := range []string{"mip.solve", "mip.incumbent", "mip.bound"} {
		if types[want] == 0 {
			t.Errorf("no %s events in trace (types: %v)", want, types)
		}
	}
	if !sawSolveEnd {
		t.Error("mip.solve span never ended")
	}
	if got := reg.Counter("mip.nodes").Value(); got != int64(res.Nodes) {
		t.Errorf("mip.nodes counter = %d, want %d", got, res.Nodes)
	}
	if got := reg.Counter("mip.incumbents").Value(); got != int64(len(res.Incumbents)) {
		t.Errorf("mip.incumbents counter = %d, want %d", got, len(res.Incumbents))
	}
	if got := reg.Counter("mip.lp_iters").Value(); got != int64(res.LPIters) {
		t.Errorf("mip.lp_iters counter = %d, want %d", got, res.LPIters)
	}

	// Tracing must not change the search: re-solve without observers.
	p2, ints2 := knapsack(values, weights, cap)
	res2, err := Solve(p2, ints2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Objective != res.Objective || res2.Nodes != res.Nodes || res2.LPIters != res.LPIters {
		t.Errorf("tracing changed the search: (%g,%d,%d) vs (%g,%d,%d)",
			res.Objective, res.Nodes, res.LPIters, res2.Objective, res2.Nodes, res2.LPIters)
	}
}

func TestDeadlineHitCounter(t *testing.T) {
	values, weights, cap := hardKnapsack()
	p, ints := knapsack(values, weights, cap)
	reg := obs.NewRegistry()
	res, err := Solve(p, ints, Options{TimeLimit: time.Nanosecond, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != NoSolution {
		t.Fatalf("status = %v, want no-solution under a 1ns deadline", res.Status)
	}
	if !res.DeadlineHit {
		t.Error("DeadlineHit not set")
	}
	if got := reg.Counter("mip.deadline_hits").Value(); got != 1 {
		t.Errorf("mip.deadline_hits = %d, want 1", got)
	}
}

func TestSolveReportRendering(t *testing.T) {
	values, weights, cap := hardKnapsack()
	p, ints := knapsack(values, weights, cap)
	res, err := Solve(p, ints, Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Report().String()
	for _, want := range []string{"status", "optimal", "nodes explored", "LP iterations", "elapsed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

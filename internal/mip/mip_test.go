package mip

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/stats"
)

// knapsack builds min -sum(v_j x_j) s.t. sum(w_j x_j) <= cap, x binary.
func knapsack(values, weights []float64, capacity float64) (*lp.Problem, []int) {
	p := lp.NewProblem()
	row := p.AddConstraint(lp.LE, capacity)
	ints := make([]int, len(values))
	for j := range values {
		c := p.AddVariable(0, 1, -values[j], "x")
		p.SetCoeff(row, c, weights[j])
		ints[j] = c
	}
	return p, ints
}

// bruteKnapsack enumerates all subsets.
func bruteKnapsack(values, weights []float64, capacity float64) float64 {
	n := len(values)
	best := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		var v, w float64
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				v += values[j]
				w += weights[j]
			}
		}
		if w <= capacity && v > best {
			best = v
		}
	}
	return -best
}

func TestKnapsackSmall(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{3, 4, 2, 3, 1}
	p, ints := knapsack(values, weights, 7)
	res, err := Solve(p, ints, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := bruteKnapsack(values, weights, 7)
	if math.Abs(res.Objective-want) > 1e-6 {
		t.Fatalf("objective %g, want %g", res.Objective, want)
	}
	for _, c := range ints {
		if f := res.X[c]; math.Abs(f-math.Round(f)) > 1e-6 {
			t.Fatalf("x[%d] = %g not integral", c, f)
		}
	}
}

func TestIntegerRounding(t *testing.T) {
	// min -x s.t. 2x <= 5, x integer in [0, 10] -> x = 2.
	p := lp.NewProblem()
	x := p.AddVariable(0, 10, -1, "x")
	r := p.AddConstraint(lp.LE, 5)
	p.SetCoeff(r, x, 2)
	res, err := Solve(p, []int{x}, Options{IntegralObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.X[x]-2) > 1e-6 {
		t.Fatalf("got %v x=%g, want optimal x=2", res.Status, res.X[x])
	}
}

func TestInfeasibleMIP(t *testing.T) {
	// x + y = 1 with x,y binary and x+y >= 2... simpler: 2x = 1, x binary.
	p := lp.NewProblem()
	x := p.AddVariable(0, 1, 0, "x")
	r := p.AddConstraint(lp.EQ, 1)
	p.SetCoeff(r, x, 2)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestLPInfeasibleRoot(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(0, 1, 0, "x")
	r := p.AddConstraint(lp.GE, 5)
	p.SetCoeff(r, x, 1)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestUnboundedRoot(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVariable(0, lp.Inf, -1, "x")
	y := p.AddVariable(0, 1, 0, "y")
	r := p.AddConstraint(lp.LE, 1)
	p.SetCoeff(r, y, 1)
	res, err := Solve(p, []int{x}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestInitialIncumbent(t *testing.T) {
	values := []float64{5, 5, 5}
	weights := []float64{2, 2, 2}
	p, ints := knapsack(values, weights, 4)
	// Feasible incumbent: take item 0 only (value 5).
	inc := []float64{1, 0, 0}
	res, err := Solve(p, ints, Options{Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-(-10)) > 1e-6 {
		t.Fatalf("got %v %g, want optimal -10", res.Status, res.Objective)
	}

	// An infeasible incumbent must be rejected with an error.
	bad := []float64{1, 1, 1} // weight 6 > 4
	if _, err := Solve(p, ints, Options{Incumbent: bad}); err == nil {
		t.Fatal("infeasible incumbent accepted")
	}
	// A fractional incumbent must be rejected too.
	frac := []float64{0.5, 0, 0}
	if _, err := Solve(p, ints, Options{Incumbent: frac}); err == nil {
		t.Fatal("fractional incumbent accepted")
	}
}

func TestNodeLimitWithIncumbent(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6}
	weights := []float64{3, 4, 2, 3, 1, 4, 2, 3}
	p, ints := knapsack(values, weights, 9)
	inc := make([]float64, len(values)) // empty knapsack, objective 0
	res, err := Solve(p, ints, Options{MaxNodes: 1, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible && res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Status == Feasible && res.Gap() < 0 {
		t.Fatalf("negative gap %g", res.Gap())
	}
}

func TestNodeLimitWithoutIncumbent(t *testing.T) {
	values := []float64{10, 13, 7}
	weights := []float64{3, 4, 2}
	p, ints := knapsack(values, weights, 5)
	res, err := Solve(p, ints, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One node may already find an integral optimum via the LP; accept
	// either, but a NoSolution result must carry no solution vector.
	if res.Status == NoSolution && res.X != nil {
		t.Fatal("NoSolution with a solution vector")
	}
}

func TestHeuristicProvidesIncumbent(t *testing.T) {
	values := []float64{10, 13, 7, 8}
	weights := []float64{3, 4, 2, 3}
	p, ints := knapsack(values, weights, 7)
	calls := 0
	h := func(x []float64) ([]float64, bool) {
		calls++
		// Greedy rounding: take items while capacity remains.
		out := make([]float64, len(x))
		capLeft := 7.0
		for j := range x {
			if x[j] > 0.5 && weights[j] <= capLeft {
				out[j] = 1
				capLeft -= weights[j]
			}
		}
		return out, true
	}
	res, err := Solve(p, ints, Options{Heuristic: h})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	want := bruteKnapsack(values, weights, 7)
	if math.Abs(res.Objective-want) > 1e-6 {
		t.Fatalf("objective %g, want %g", res.Objective, want)
	}
	if calls == 0 && res.Nodes > 1 {
		t.Fatal("heuristic never invoked despite branching")
	}
}

func TestBadHeuristicIsIgnored(t *testing.T) {
	values := []float64{10, 13, 7}
	weights := []float64{3, 4, 2}
	p, ints := knapsack(values, weights, 5)
	h := func(x []float64) ([]float64, bool) {
		return []float64{1, 1, 1}, true // infeasible: weight 9 > 5
	}
	res, err := Solve(p, ints, Options{Heuristic: h})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteKnapsack(values, weights, 5)
	if res.Status != Optimal || math.Abs(res.Objective-want) > 1e-6 {
		t.Fatalf("got %v %g, want optimal %g", res.Status, res.Objective, want)
	}
}

func TestRelativeGapTermination(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9}
	weights := []float64{3, 4, 2, 3, 1, 4}
	p, ints := knapsack(values, weights, 8)
	res, err := Solve(p, ints, Options{RelativeGap: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal && res.Status != Feasible {
		t.Fatalf("status = %v", res.Status)
	}
	want := bruteKnapsack(values, weights, 8)
	// Within 50% of optimal.
	if res.Objective > want*0.5+1e-9 {
		t.Fatalf("gap solution %g not within 50%% of %g", res.Objective, want)
	}
}

func TestBadIntegerColumn(t *testing.T) {
	p := lp.NewProblem()
	p.AddVariable(0, 1, 0, "x")
	if _, err := Solve(p, []int{5}, Options{}); err == nil {
		t.Fatal("out-of-range integer column accepted")
	}
}

// Property: branch and bound matches brute force on random binary
// knapsack-style problems with two constraints.
func TestRandomBinaryProblemsMatchBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(9) + 2
		p := lp.NewProblem()
		rows := []int{p.AddConstraint(lp.LE, float64(r.Intn(12)+3)), p.AddConstraint(lp.LE, float64(r.Intn(12)+3))}
		costs := make([]float64, n)
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		ints := make([]int, n)
		for j := 0; j < n; j++ {
			costs[j] = float64(r.Intn(21) - 10)
			w1[j] = float64(r.Intn(5))
			w2[j] = float64(r.Intn(5))
			c := p.AddVariable(0, 1, costs[j], "x")
			p.SetCoeff(rows[0], c, w1[j])
			p.SetCoeff(rows[1], c, w2[j])
			ints[j] = c
		}
		res, err := Solve(p, ints, Options{IntegralObjective: true})
		if err != nil || res.Status != Optimal {
			t.Logf("seed %d: %v %v", seed, res, err)
			return false
		}
		_, rhs1 := p.Row(rows[0])
		_, rhs2 := p.Row(rows[1])
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			var c, a, b float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					c += costs[j]
					a += w1[j]
					b += w2[j]
				}
			}
			if a <= rhs1 && b <= rhs2 && c < best {
				best = c
			}
		}
		if math.Abs(res.Objective-best) > 1e-6 {
			t.Logf("seed %d: mip %g brute %g", seed, res.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: general (non-binary) integer variables also match brute force.
func TestRandomIntegerProblemsMatchBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(3) + 2 // 2..4 vars with range [0,3]: <= 256 combos
		p := lp.NewProblem()
		row := p.AddConstraint(lp.LE, float64(r.Intn(10)+2))
		costs := make([]float64, n)
		w := make([]float64, n)
		ints := make([]int, n)
		for j := 0; j < n; j++ {
			costs[j] = float64(r.Intn(11) - 5)
			w[j] = float64(r.Intn(4))
			c := p.AddVariable(0, 3, costs[j], "x")
			p.SetCoeff(row, c, w[j])
			ints[j] = c
		}
		res, err := Solve(p, ints, Options{IntegralObjective: true})
		if err != nil || res.Status != Optimal {
			return false
		}
		_, rhs := p.Row(row)
		best := math.Inf(1)
		var rec func(j int, c, a float64)
		rec = func(j int, c, a float64) {
			if a > rhs {
				return
			}
			if j == n {
				if c < best {
					best = c
				}
				return
			}
			for v := 0.0; v <= 3; v++ {
				rec(j+1, c+costs[j]*v, a+w[j]*v)
			}
		}
		rec(0, 0, 0)
		return math.Abs(res.Objective-best) <= 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKnapsack12(b *testing.B) {
	r := stats.NewRand(3)
	values := make([]float64, 12)
	weights := make([]float64, 12)
	for j := range values {
		values[j] = float64(r.Intn(20) + 1)
		weights[j] = float64(r.Intn(8) + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ints := knapsack(values, weights, 30)
		res, err := Solve(p, ints, Options{IntegralObjective: true})
		if err != nil || res.Status != Optimal {
			b.Fatalf("%v %v", res, err)
		}
	}
}

// Pseudocost learning must not change correctness: larger knapsacks with
// repeated structure still match brute force (the pseudocost path is the
// default brancher, exercised once columns gather history).
func TestPseudocostCorrectness(t *testing.T) {
	r := stats.NewRand(99)
	for trial := 0; trial < 25; trial++ {
		n := 12
		values := make([]float64, n)
		weights := make([]float64, n)
		for j := range values {
			values[j] = float64(r.Intn(25) + 1)
			weights[j] = float64(r.Intn(7) + 1)
		}
		capacity := float64(r.Intn(20) + 8)
		p, ints := knapsack(values, weights, capacity)
		res, err := Solve(p, ints, Options{IntegralObjective: true})
		if err != nil || res.Status != Optimal {
			t.Fatalf("trial %d: %v %v", trial, res, err)
		}
		want := bruteKnapsack(values, weights, capacity)
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: mip %g brute %g", trial, res.Objective, want)
		}
	}
}

func TestGapEdgeCases(t *testing.T) {
	opt := &Result{Status: Optimal, Objective: 5, BestBound: 5}
	if opt.Gap() != 0 {
		t.Fatalf("optimal gap = %v", opt.Gap())
	}
	feas := &Result{Status: Feasible, Objective: 10, BestBound: 8}
	if g := feas.Gap(); math.Abs(g-0.2) > 1e-12 {
		t.Fatalf("gap = %v, want 0.2", g)
	}
}

func TestStatusStrings(t *testing.T) {
	want := map[Status]string{
		Optimal: "optimal", Feasible: "feasible", Infeasible: "infeasible",
		NoSolution: "no-solution", Unbounded: "unbounded",
	}
	for st, s := range want {
		if st.String() != s {
			t.Fatalf("%d.String() = %q, want %q", st, st.String(), s)
		}
	}
}

package mip

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/lp"
	"repro/internal/stats"
)

// randomKnapsack builds a seeded n-item knapsack (the mip_test helper
// shapes, sized to keep the search busy for cancellation tests).
func randomKnapsack(seed uint64, n int) (*lp.Problem, []int) {
	r := stats.NewRand(seed)
	values := make([]float64, n)
	weights := make([]float64, n)
	var total float64
	for j := range values {
		values[j] = 1 + 99*r.Float64()
		weights[j] = 1 + 49*r.Float64()
		total += weights[j]
	}
	return knapsack(values, weights, total/3)
}

func TestSolveCtxAlreadyCanceled(t *testing.T) {
	p, ints := randomKnapsack(7, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveCtx(ctx, p, ints, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveCtx = %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || !errors.Is(ce.Cause, context.Canceled) {
		t.Fatalf("error %v, want *CanceledError wrapping context.Canceled", err)
	}
	// No partial state: the same problem re-solves to optimality.
	res, err := Solve(p, ints, Options{})
	if err != nil {
		t.Fatalf("re-solve: %v", err)
	}
	if res.Status != Optimal {
		t.Fatalf("re-solve status %v, want optimal", res.Status)
	}
}

func TestSolveCtxDeadlineMidSearch(t *testing.T) {
	p, ints := randomKnapsack(11, 60)
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	// A deliberately slow heuristic keeps each node busy long enough
	// that the context deadline reliably fires mid-search.
	slow := Heuristic(func([]float64) ([]float64, bool) {
		time.Sleep(2 * time.Millisecond)
		return nil, false
	})
	start := time.Now()
	_, err := SolveCtx(ctx, p, ints, Options{Heuristic: slow})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveCtx = %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) || !errors.Is(ce.Cause, context.DeadlineExceeded) {
		t.Fatalf("error %v, want *CanceledError wrapping DeadlineExceeded", err)
	}
	// The hard abort must react at checkpoint granularity, not after the
	// whole search (which takes far longer on this instance).
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("cancellation took %v", el)
	}
}

// The soft TimeLimit keeps the incumbent (anytime semantics) while a
// hard context abort discards everything — the two stop mechanisms must
// not be conflated.
func TestSoftTimeLimitKeepsIncumbent(t *testing.T) {
	p, ints := randomKnapsack(13, 60)
	// A heuristic that always produces the (trivially feasible) empty
	// load guarantees an incumbent exists from the first node, so the
	// soft stop keeps one no matter how few nodes fit in the budget on a
	// slow or race-instrumented run.
	empty := Heuristic(func(relax []float64) ([]float64, bool) {
		return make([]float64, len(relax)), true
	})
	res, err := Solve(p, ints, Options{TimeLimit: 20 * time.Millisecond, Heuristic: empty})
	if err != nil {
		t.Fatalf("Solve with TimeLimit: %v", err)
	}
	if res.Status != Optimal && res.Status != Feasible {
		t.Fatalf("status %v, want optimal or feasible", res.Status)
	}
	if res.Status == Feasible && !res.DeadlineHit {
		t.Fatal("Feasible result without DeadlineHit")
	}
}

func TestLPSolveCtxCanceled(t *testing.T) {
	p, _ := randomKnapsack(17, 40)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.SolveCtx(ctx, lp.Options{})
	if !errors.Is(err, lp.ErrCanceled) {
		t.Fatalf("lp SolveCtx = %v, want lp.ErrCanceled", err)
	}
	var ce *lp.CanceledError
	if !errors.As(err, &ce) || !errors.Is(ce.Cause, context.Canceled) {
		t.Fatalf("error %v, want *lp.CanceledError wrapping context.Canceled", err)
	}
	// No partial state in the LP either.
	res, err := p.Solve(lp.Options{})
	if err != nil {
		t.Fatalf("re-solve: %v", err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("re-solve status %v, want optimal", res.Status)
	}
}

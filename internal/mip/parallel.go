package mip

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
	"repro/internal/obs"
)

// Parallel branch and bound: N workers pull nodes off a shared
// mutex-guarded best-bound heap, solve each node's LP relaxation on a
// private clone of the (cut-tightened) root problem, and push children
// back. Incumbent objectives are mirrored in an atomic word so workers
// can prune mid-pipeline without taking the pool lock; all structural
// state (queue, incumbent vector, logs, telemetry) lives under one
// mutex, which is cheap because LP solves dominate the per-node cost.
//
// The root node is processed serially first (root relaxation, cover
// cuts, heuristic, initial branching) with exactly the serial solver's
// code path, so cut separation mutates the shared problem before any
// clone is taken.

// pbb is the shared state of one parallel solve.
type pbb struct {
	s *solver

	mu   sync.Mutex
	cond *sync.Cond
	// queue and seq continue the root phase's heap and node numbering.
	queue *nodeQueue
	seq   int
	// inFlight maps worker id -> bound of the node it is solving. The
	// global lower bound at any instant is min(queue top, inFlight), which
	// keeps the observed bound trajectory monotone even though workers
	// pop nodes out from under each other.
	inFlight    map[int]float64
	outstanding int // nodes popped but not yet fully processed
	stopped     bool
	limited     bool
	failErr     error

	// incBits mirrors s.incumbentObj (math.Float64bits) for lock-free
	// prune-on-read between the LP solve and the locked result handling.
	incBits atomic.Uint64
}

func (b *pbb) storeIncBits() { b.incBits.Store(math.Float64bits(b.s.incumbentObj)) }

// incObj returns the mirrored incumbent objective (+Inf when none).
func (b *pbb) incObj() float64 { return math.Float64frombits(b.incBits.Load()) }

// stopLocked latches a stop condition and wakes idle workers.
func (b *pbb) stopLocked() {
	b.stopped = true
	b.cond.Broadcast()
}

// runParallel is the Workers>1 counterpart of solver.run.
func (s *solver) runParallel() (*Result, error) {
	queue := &nodeQueue{}
	s.queue = queue
	b := &pbb{s: s, queue: queue, seq: 1, inFlight: make(map[int]float64)}
	b.cond = sync.NewCond(&b.mu)
	b.storeIncBits()

	// Root phase (serial): solve the root relaxation on the shared
	// problem, tighten with cover cuts, then branch. Any terminal outcome
	// here returns without spinning up workers.
	done, res, err := s.rootPhase(b)
	if done {
		return res, err
	}

	// The workers evaluate incumbent candidates against the shared root
	// problem concurrently (read-only); force the lazy coalesce now.
	s.p.Freeze()

	var wg sync.WaitGroup
	for id := 0; id < s.opt.Workers; id++ {
		wp := s.p.Clone()
		wg.Add(1)
		s.cWorkers.Inc()
		go func(id int, wp *lp.Problem) {
			defer wg.Done()
			b.worker(id, wp)
		}(id, wp)
	}
	wg.Wait()

	if b.failErr != nil {
		return nil, b.failErr
	}
	switch {
	case s.haveInc && !b.limited && queue.Len() == 0:
		return s.result(Optimal), nil
	case s.haveInc && s.opt.RelativeGap > 0 && !b.limited:
		// Queue drained under a gap limit: incumbent is within the gap.
		return s.result(Optimal), nil
	case s.haveInc:
		r := s.result(Feasible)
		// Best bound = min over remaining open nodes (or incumbent).
		bb := s.incumbentObj
		for _, nd := range *queue {
			if bd := s.strengthen(nd.bound); bd < bb {
				bb = bd
			}
		}
		r.BestBound = bb
		return r, nil
	case b.limited:
		return s.result(NoSolution), nil
	default:
		return s.result(Infeasible), nil
	}
}

// rootPhase explores the root node exactly like the serial loop does
// (including cut-and-branch, which mutates s.p before workers clone it).
// done=true means the solve terminated at the root.
func (s *solver) rootPhase(b *pbb) (done bool, _ *Result, _ error) {
	res, err := s.p.SolveFromCtx(s.lpCtx, nil, s.opt.LP)
	if err != nil {
		if errors.Is(err, lp.ErrCanceled) {
			if s.ctx.Err() != nil {
				return true, nil, NewCanceledError(context.Cause(s.ctx))
			}
			s.noteDeadline()
			if s.haveInc {
				return true, s.result(Feasible), nil // initial incumbent, bound unproven
			}
			return true, s.result(NoSolution), nil
		}
		return true, nil, err
	}
	s.nodes++
	s.countLP(res)
	s.observeBound(s.strengthen(res.Objective))
	switch res.Status {
	case lp.Infeasible:
		if s.haveInc {
			return true, s.result(Optimal), nil // initial incumbent is all there is
		}
		return true, s.result(Infeasible), nil
	case lp.Unbounded:
		return true, s.result(Unbounded), nil
	case lp.IterationLimit:
		if s.haveInc {
			r := s.result(Feasible)
			r.BestBound = s.incumbentObj // no open nodes to bound from
			return true, r, nil
		}
		return true, s.result(NoSolution), nil
	}
	bound := s.strengthen(res.Objective)
	if s.haveInc && bound >= s.incumbentObj-1e-9 {
		return true, s.result(Optimal), nil
	}
	branchCol := s.fractional(res.X)
	if branchCol < 0 {
		if err := s.tryIncumbent(res.X, "lp"); err != nil {
			return true, nil, fmt.Errorf("mip: integral LP solution rejected: %v", err)
		}
		b.storeIncBits()
		return true, s.result(Optimal), nil
	}
	if s.opt.RootCutRounds > 0 {
		tightened, nCuts, err := s.addRootCuts(res, s.opt.RootCutRounds)
		if err != nil {
			return true, nil, err
		}
		s.cuts = nCuts
		s.cCuts.Add(int64(nCuts))
		if nCuts > 0 {
			s.trace.Emit("mip.cuts", obs.Int("count", int64(nCuts)),
				obs.Float("bound", s.strengthen(tightened.Objective)))
			res = tightened
			bound = s.strengthen(res.Objective)
			if s.haveInc && bound >= s.incumbentObj-1e-9 {
				return true, s.result(Optimal), nil
			}
			branchCol = s.fractional(res.X)
			if branchCol < 0 {
				if err := s.tryIncumbent(res.X, "lp"); err != nil {
					return true, nil, fmt.Errorf("mip: integral cut solution rejected: %v", err)
				}
				b.storeIncBits()
				return true, s.result(Optimal), nil
			}
		}
	}
	if s.opt.Heuristic != nil {
		if cand, ok := s.opt.Heuristic(res.X); ok {
			if obj, err := s.evaluate(cand); err == nil && obj < s.incumbentObj-1e-9 {
				s.heurHit++
				s.cHeurHits.Inc()
				s.acceptIncumbent(cand, obj, "heuristic")
				b.storeIncBits()
			}
		}
	}
	if s.gapReached(bound) {
		return true, s.result(Optimal), nil
	}
	s.branch(b, &node{bound: math.Inf(-1), branchCol: -1}, res, branchCol)
	return false, nil, nil
}

// branch pushes the children of nd (solved to res, most fractional
// column branchCol) onto the queue. Callers hold b.mu except during the
// single-threaded root phase.
func (s *solver) branch(b *pbb, nd *node, res *lp.Result, branchCol int) {
	var children [][]Bound
	if s.opt.Brancher != nil {
		children = s.opt.Brancher(res.X)
	}
	if len(children) == 0 {
		if pc := s.pickBranchColumn(res.X); pc >= 0 {
			branchCol = pc
		}
		v := res.X[branchCol]
		f := v - math.Floor(v)
		lo, hi := boundsAfter(s.p, nd.changes, branchCol)
		down := &node{
			bound: res.Objective, depth: nd.depth + 1, seq: b.seq,
			changes: append(append([]Bound(nil), nd.changes...),
				Bound{Col: branchCol, Lo: lo, Hi: math.Floor(v)}),
			basis:     res.Basis,
			branchCol: branchCol, branchUp: false, branchFrac: f,
		}
		b.seq++
		up := &node{
			bound: res.Objective, depth: nd.depth + 1, seq: b.seq,
			changes: append(append([]Bound(nil), nd.changes...),
				Bound{Col: branchCol, Lo: math.Ceil(v), Hi: hi}),
			basis:     res.Basis,
			branchCol: branchCol, branchUp: true, branchFrac: 1 - f,
		}
		b.seq++
		// Plunge toward the nearer side first (smaller seq wins ties).
		if f > 0.5 {
			down.seq, up.seq = up.seq, down.seq
		}
		heap.Push(b.queue, down)
		heap.Push(b.queue, up)
		return
	}
	for _, ch := range children {
		heap.Push(b.queue, &node{
			bound: res.Objective, depth: nd.depth + 1, seq: b.seq,
			changes:   append(append([]Bound(nil), nd.changes...), ch...),
			basis:     res.Basis,
			branchCol: -1,
		})
		b.seq++
	}
}

// noteDeadline records a TimeLimit stop (caller holds b.mu in parallel
// paths; the root phase is single-threaded).
func (s *solver) noteDeadline() {
	s.deadlineHit = true
	s.cDeadline.Inc()
	s.trace.Emit("mip.deadline", obs.Int("node", int64(s.nodes)))
}

// worker is one branch-and-bound worker loop. wp is its private problem
// clone; id keys its inFlight entry.
func (b *pbb) worker(id int, wp *lp.Problem) {
	s := b.s
	for {
		b.mu.Lock()
		for b.queue.Len() == 0 && b.outstanding > 0 && !b.stopped {
			b.cond.Wait()
		}
		if b.stopped || b.queue.Len() == 0 {
			b.mu.Unlock()
			return
		}
		if s.nodes >= s.opt.MaxNodes {
			b.limited = true
			b.stopLocked()
			b.mu.Unlock()
			return
		}
		if s.ctx.Err() != nil {
			b.failErr = NewCanceledError(context.Cause(s.ctx))
			b.stopLocked()
			b.mu.Unlock()
			return
		}
		if s.timeUp() {
			s.noteDeadline()
			b.limited = true
			b.stopLocked()
			b.mu.Unlock()
			return
		}
		if s.stopRequested() {
			s.stopped = true
			s.trace.Emit("mip.stopped", obs.Int("node", int64(s.nodes)))
			b.limited = true
			b.stopLocked()
			b.mu.Unlock()
			return
		}
		nd := heap.Pop(b.queue).(*node)
		// Global bound: the popped node is the best open node, but a
		// sibling still in flight may carry a smaller bound.
		gb := nd.bound
		for _, fb := range b.inFlight {
			if fb < gb {
				gb = fb
			}
		}
		s.observeBound(s.strengthen(gb))
		if s.haveInc && s.strengthen(nd.bound) >= s.incumbentObj-1e-9 {
			s.pruned++
			s.cPruned.Inc()
			b.cond.Broadcast() // queue may have emptied: wake waiters to exit
			b.mu.Unlock()
			continue
		}
		b.inFlight[id] = nd.bound
		b.outstanding++
		b.mu.Unlock()

		res, err := func() (*lp.Result, error) {
			undo := applyChanges(wp, nd.changes)
			defer undo()
			return wp.SolveFromCtx(s.lpCtx, nd.basis, s.opt.LP)
		}()

		// Lock-free post-processing: everything that only reads immutable
		// state (options, integer set, frozen root problem) runs before
		// reacquiring the pool lock.
		var branchCol int
		var intObj, heurObj float64
		var intOK, heurOK bool
		var heurCand []float64
		if err == nil && res.Status == lp.Optimal {
			inc := b.incObj() // prune-on-read against the atomic mirror
			if s.strengthen(res.Objective) < inc-1e-9 {
				branchCol = s.fractional(res.X)
				if branchCol < 0 {
					intObj, err = s.evaluate(res.X)
					if err != nil {
						err = fmt.Errorf("mip: integral LP solution rejected: %v", err)
					} else {
						intOK = true
					}
				} else if s.opt.Heuristic != nil {
					if cand, ok := s.opt.Heuristic(res.X); ok {
						if obj, herr := s.evaluate(cand); herr == nil && obj < inc-1e-9 {
							heurCand, heurObj, heurOK = cand, obj, true
						}
					}
				}
			}
		}

		b.mu.Lock()
		delete(b.inFlight, id)
		b.outstanding--
		if err != nil {
			if errors.Is(err, lp.ErrCanceled) {
				if s.ctx.Err() != nil {
					b.failErr = NewCanceledError(context.Cause(s.ctx))
				} else {
					// Our own TimeLimit deadline interrupted the LP: requeue
					// the node so the best-bound proof over open nodes holds.
					heap.Push(b.queue, nd)
					s.noteDeadline()
					b.limited = true
				}
			} else {
				b.failErr = err
			}
			b.stopLocked()
			b.mu.Unlock()
			return
		}
		s.nodes++
		s.countLP(res)
		if s.nodes%s.opt.ProgressEvery == 0 {
			s.progress()
		}
		advance := func() {
			b.cond.Broadcast()
			b.mu.Unlock()
		}
		switch res.Status {
		case lp.Infeasible:
			advance()
			continue
		case lp.Unbounded:
			// Cannot happen below the root with finite branching bounds;
			// treat defensively as unexplorable.
			b.limited = true
			advance()
			continue
		case lp.IterationLimit:
			// No valid bound for this subtree: we must not prune it, and we
			// cannot explore it — give up on proving optimality.
			b.limited = true
			advance()
			continue
		}
		s.recordPseudocost(nd, res.Objective)
		bound := s.strengthen(res.Objective)
		if s.haveInc && bound >= s.incumbentObj-1e-9 {
			advance()
			continue
		}
		if intOK {
			if intObj < s.incumbentObj-1e-9 {
				s.acceptIncumbent(res.X, intObj, "lp")
				b.storeIncBits()
			}
			advance()
			continue
		}
		if heurOK && heurObj < s.incumbentObj-1e-9 {
			s.heurHit++
			s.cHeurHits.Inc()
			s.acceptIncumbent(heurCand, heurObj, "heuristic")
			b.storeIncBits()
		}
		if s.gapReached(bound) {
			advance()
			continue
		}
		s.branch(b, nd, res, branchCol)
		advance()
	}
}

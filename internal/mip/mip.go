// Package mip is a branch-and-bound solver for mixed integer linear
// programs on top of the package lp simplex engine. Together they stand in
// for the ILOG CPLEX library the paper uses: LP relaxations are solved
// with warm-started dual simplex along dives, nodes are selected
// best-bound-first with depth plunging, branching picks the most
// fractional integer column, and a caller-supplied rounding heuristic can
// turn relaxation solutions into incumbents (the time-indexed scheduling
// formulation uses list scheduling in fractional-start order).
package mip

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/solvererr"
)

// ErrCanceled is the sentinel matched (via errors.Is) by every
// *CanceledError a context-aware solve returns.
var ErrCanceled = errors.New("mip: solve canceled")

// CanceledError reports that a solve was aborted because the caller's
// context was done. It is a hard abort: partial results (incumbents,
// bounds) are discarded, unlike Options.TimeLimit which is a soft budget
// that returns the best incumbent with Result.DeadlineHit set. Cause
// (promoted from the shared implementation) is context.Cause of the
// context at abort time; errors.Is(err, ErrCanceled) matches every
// instance.
type CanceledError struct{ solvererr.Canceled }

// NewCanceledError wraps cause in the package's typed cancellation error.
// It exists for middleware that mimics a canceled solve without running
// one (the fault-injection hooks); the solver builds its own instances.
func NewCanceledError(cause error) *CanceledError {
	return &CanceledError{solvererr.Canceled{Op: "mip", Sentinel: ErrCanceled, Cause: cause}}
}

// Status is the outcome of a MIP solve.
type Status int

const (
	// Optimal: the incumbent is proven optimal.
	Optimal Status = iota
	// Feasible: limits were hit; the incumbent is feasible but not proven
	// optimal (Result.BestBound gives the proof gap).
	Feasible
	// Infeasible: no integer solution exists.
	Infeasible
	// NoSolution: limits were hit before any incumbent was found.
	NoSolution
	// Unbounded: the relaxation is unbounded.
	Unbounded
)

var statusNames = []string{"optimal", "feasible", "infeasible", "no-solution", "unbounded"}

func (s Status) String() string { return solvererr.StatusName(int(s), statusNames) }

// Heuristic turns an LP-relaxation solution into a feasible integer
// solution. It returns ok=false if it cannot. The solver verifies the
// candidate against the problem before accepting it.
type Heuristic func(relaxation []float64) (solution []float64, ok bool)

// Bound is one bound tightening applied on a branch.
type Bound struct {
	Col    int
	Lo, Hi float64
}

// Brancher splits a node with the given fractional LP solution into child
// change-sets (each child is the conjunction of its Bounds). Returning nil
// falls back to most-fractional variable branching. Every child must
// genuinely tighten the problem, and the union of children must cover all
// integer solutions of the node, or the solver loses correctness.
// Structured problems use this for far stronger divisions than single
// 0/1 fixings — the time-indexed scheduling model splits a job's start
// range in half (SOS branching).
type Brancher func(relaxation []float64) [][]Bound

// Options control the search.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes (0 = 1<<30).
	// With Workers > 1 the limit is approximate: nodes already in flight
	// when it trips still finish, so the count can overshoot by up to
	// Workers-1.
	MaxNodes int
	// Workers is the number of concurrent branch-and-bound workers pulling
	// nodes off the shared best-bound queue (0 defaults to
	// runtime.GOMAXPROCS(0)). Workers=1 runs the serial solver, which
	// reproduces the historical node order exactly. With more workers the
	// exploration order (and therefore node counts and which of several
	// equally-good incumbents wins) may vary run to run, but the returned
	// objective and best-bound proof remain valid. When Workers > 1 the
	// Heuristic and Brancher callbacks may be invoked concurrently from
	// multiple goroutines and must be safe for that; Progress and
	// OnIncumbent are serialized but may run on worker goroutines.
	Workers int
	// TimeLimit bounds wall-clock time (0 = none).
	TimeLimit time.Duration
	// RelativeGap terminates when (incumbent-bound)/max(1,|incumbent|)
	// drops below it (0 = prove optimality).
	RelativeGap float64
	// IntegralObjective asserts every feasible integer solution has an
	// integral objective value, enabling ceil() bound strengthening (true
	// for the paper's ARTwW objective with integer times and widths).
	IntegralObjective bool
	// Heuristic, if non-nil, runs at every node on the LP solution.
	Heuristic Heuristic
	// Brancher, if non-nil, overrides most-fractional variable branching.
	Brancher Brancher
	// RootCutRounds enables cover-cut separation at the root node
	// (cut-and-branch): up to this many rounds of violated minimal cover
	// inequalities are appended before branching. 0 disables cuts.
	RootCutRounds int
	// Incumbent, if non-nil, is a known feasible solution to start from.
	Incumbent []float64
	// OnIncumbent, if non-nil, is invoked whenever a better feasible
	// solution is accepted (including the initial one), with its
	// objective and a copy of the solution. This enables the anytime use
	// the paper sketches: run the policy schedule immediately and let the
	// optimizer stream in improvements while it is active.
	OnIncumbent func(objective float64, x []float64)
	// LP are the options for the relaxation solves.
	LP lp.Options
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Trace, if non-nil, receives structured solve events: a "mip.solve"
	// span wrapping the search, "mip.incumbent" on every accepted
	// incumbent, "mip.bound" on best-bound improvements and "mip.cuts"
	// after root separation. A nil tracer costs one pointer comparison.
	Trace *obs.Tracer
	// Metrics, if non-nil, accumulates solver counters (mip.nodes,
	// mip.pruned, mip.lp_solves, mip.lp_iters, mip.incumbents,
	// mip.heuristic_hits, mip.deadline_hits, mip.cuts,
	// mip.refactorizations, mip.degenerate_pivots, plus the LP basis
	// family lp.warmstart.hits, lp.eta.updates, lp.lu.ft.updates,
	// lp.lu.fill and lp.lu.refactor.trigger).
	Metrics *obs.Registry
	// Progress, if non-nil, is called with a search snapshot every
	// ProgressEvery explored nodes and after every accepted incumbent.
	Progress func(Progress)
	// ProgressEvery is the node interval between Progress calls
	// (default 500).
	ProgressEvery int
	// Stop, if non-nil, is polled at the same counter-gated cadence as
	// the TimeLimit check. Returning true requests a cooperative soft
	// stop: the search keeps its incumbent (Result.Stopped is set, and
	// the status is Feasible/NoSolution exactly as for a soft deadline)
	// instead of discarding it the way a hard context cancel does. The
	// anytime serving core uses this to preempt a running solve the
	// moment the queue it was solved against changes.
	Stop func() bool
}

func (o Options) withDefaults() Options {
	if o.MaxNodes == 0 {
		o.MaxNodes = 1 << 30
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.IntTol == 0 {
		o.IntTol = 1e-6
	}
	if o.ProgressEvery == 0 {
		o.ProgressEvery = 500
	}
	return o
}

// Progress is a snapshot of the branch-and-bound search handed to the
// Options.Progress callback.
type Progress struct {
	// Nodes is the number of nodes explored (LP relaxations solved in the
	// tree) so far; Open is the current open-node queue length.
	Nodes, Open int
	// LPIters is the cumulative simplex iteration count.
	LPIters int
	// BestBound is the strengthened global lower bound.
	BestBound float64
	// Incumbent is the best feasible objective found (valid only when
	// HasIncumbent).
	Incumbent    float64
	HasIncumbent bool
	// Elapsed is the wall-clock time since the solve started.
	Elapsed time.Duration
}

// IncumbentRecord logs one accepted incumbent of a solve.
type IncumbentRecord struct {
	// At is the wall-clock offset from the solve start.
	At time.Duration
	// Objective is the incumbent's objective value.
	Objective float64
	// Node is the explored-node count at acceptance time.
	Node int
	// Source is "initial" (Options.Incumbent), "lp" (integral relaxation)
	// or "heuristic".
	Source string
}

// BoundRecord logs one improvement of the global best bound.
type BoundRecord struct {
	At    time.Duration
	Bound float64
	Node  int
}

// Result is the outcome of a solve.
type Result struct {
	Status    Status
	Objective float64   // incumbent objective (valid unless NoSolution/Infeasible)
	X         []float64 // incumbent solution
	BestBound float64   // proven lower bound on the optimum
	Nodes     int
	LPIters   int
	Elapsed   time.Duration
	// HeuristicHits counts incumbents contributed by the heuristic.
	HeuristicHits int
	// Cuts counts the cover cuts added at the root.
	Cuts int
	// Pruned counts nodes discarded by bound without solving their LP.
	Pruned int
	// LPSolves counts LP relaxations solved (tree nodes plus root
	// re-solves during cut separation).
	LPSolves int
	// Refactorizations and DegeneratePivots aggregate the simplex
	// telemetry over all relaxation solves.
	Refactorizations int
	DegeneratePivots int
	// WarmStartHits counts relaxation solves served from a warm-started
	// basis (dual simplex or primal repair) instead of a cold restart.
	WarmStartHits int
	// EtaUpdates aggregates the product-form basis updates performed by
	// the relaxation solves between refactorizations (dense basis mode).
	EtaUpdates int
	// FTUpdates aggregates the Forrest–Tomlin basis updates applied by
	// the sparse LU relaxation solves.
	FTUpdates int
	// LUFill aggregates the factor fill-in (entries created beyond the
	// basis nonzeros) across all sparse factorizations and updates.
	LUFill int
	// RefactorTriggers counts refactorizations forced by an adaptive
	// trigger (fill growth, update rejection, drift) rather than the
	// fixed pivot-count schedule.
	RefactorTriggers int
	// DeadlineHit reports that the solve stopped on its TimeLimit.
	DeadlineHit bool
	// Stopped reports that the solve was preempted by Options.Stop
	// (cooperative soft stop; the incumbent is kept).
	Stopped bool
	// Incumbents is the incumbent timeline (objective improvements with
	// timestamps), oldest first.
	Incumbents []IncumbentRecord
	// Bounds is the best-bound trajectory, oldest first.
	Bounds []BoundRecord
}

// Gap returns the relative optimality gap of the result.
func (r *Result) Gap() float64 {
	if r.Status == Optimal {
		return 0
	}
	return (r.Objective - r.BestBound) / math.Max(1, math.Abs(r.Objective))
}

type node struct {
	bound   float64 // parent LP objective (lower bound for the subtree)
	depth   int
	seq     int
	changes []Bound   // path from root
	basis   *lp.Basis // parent basis for warm starting

	// Branching bookkeeping for pseudocost learning: the column and
	// direction this node's last bound change came from, and the
	// fractional distance the change moved it.
	branchCol  int
	branchUp   bool
	branchFrac float64
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].bound != q[j].bound {
		return q[i].bound < q[j].bound
	}
	if q[i].depth != q[j].depth {
		return q[i].depth > q[j].depth // plunge: deeper first on ties
	}
	return q[i].seq < q[j].seq
}
func (q nodeQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x any)   { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

type solver struct {
	p       *lp.Problem
	integer []int
	isInt   map[int]bool
	opt     Options

	incumbent    []float64
	incumbentObj float64
	haveInc      bool

	// Pseudocosts: average objective degradation per unit of fractional
	// distance, learned per column and direction from solved children.
	// The table is lock-striped so parallel workers update it without a
	// global bottleneck; the serial path uses the same table (same values,
	// same branching decisions as the historical map implementation).
	pc *pcTable

	nodes    int
	lpIters  int
	lpSolves int
	heurHit  int
	cuts     int
	pruned   int
	refacts  int
	degen    int
	warmHits int
	etaUp    int
	ftUp     int
	luFill   int
	refTrig  int
	start    time.Time

	// ctx is the caller's context (hard abort); lpCtx additionally
	// carries the TimeLimit as a deadline so relaxation solves stop
	// mid-pivot instead of overshooting the budget on expensive nodes.
	ctx   context.Context
	lpCtx context.Context

	// Observability state.
	trace       *obs.Tracer
	incLog      []IncumbentRecord
	boundLog    []BoundRecord
	lastBound   float64
	sinceCheck  int
	deadlineHit bool
	stopped     bool
	queue       *nodeQueue

	// Cached registry counters (nil when Options.Metrics is nil; all
	// Counter methods are nil-safe).
	cNodes, cPruned, cLPSolves, cLPIters *obs.Counter
	cIncumbents, cHeurHits, cDeadline    *obs.Counter
	cCuts, cRefacts, cDegen              *obs.Counter
	cWorkers, cWarmHits, cEtaUp          *obs.Counter
	cFTUp, cLuFill, cLuTrig              *obs.Counter
}

// pcStripes is the stripe count of the pseudocost table; a power of two
// so the stripe pick is a mask.
const pcStripes = 16

// pcTable holds the pseudocost statistics behind per-stripe locks so the
// parallel branch-and-bound workers can record and score branching
// history concurrently. Columns map to stripes by low bits; within a
// stripe the maps are the same up/down sum-and-count pairs the serial
// solver always kept.
type pcTable struct {
	stripes [pcStripes]pcStripe
}

type pcStripe struct {
	mu         sync.Mutex
	up, down   map[int]float64
	upN, downN map[int]int
}

func newPCTable() *pcTable {
	t := &pcTable{}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.up, st.down = map[int]float64{}, map[int]float64{}
		st.upN, st.downN = map[int]int{}, map[int]int{}
	}
	return t
}

func (t *pcTable) stripe(col int) *pcStripe { return &t.stripes[col&(pcStripes-1)] }

// record adds one observed per-unit objective gain for a branch direction.
func (t *pcTable) record(col int, up bool, perUnit float64) {
	st := t.stripe(col)
	st.mu.Lock()
	if up {
		st.up[col] += perUnit
		st.upN[col]++
	} else {
		st.down[col] += perUnit
		st.downN[col]++
	}
	st.mu.Unlock()
}

// score returns the product pseudocost score of branching on col at
// fraction f, and whether both directions have history.
func (t *pcTable) score(col int, f float64) (float64, bool) {
	st := t.stripe(col)
	st.mu.Lock()
	defer st.mu.Unlock()
	nUp, nDown := st.upN[col], st.downN[col]
	if nUp == 0 || nDown == 0 {
		return 0, false
	}
	up := st.up[col] / float64(nUp) * (1 - f)
	down := st.down[col] / float64(nDown) * f
	// Standard product score with a small floor.
	return math.Max(up, 1e-6) * math.Max(down, 1e-6), true
}

// timeCheckEvery gates the wall-clock deadline test: time.Since is a
// syscall-ish hot-path cost, so it only runs every this many main-loop
// iterations.
const timeCheckEvery = 64

// recordPseudocost updates the branching statistics after a child LP.
func (s *solver) recordPseudocost(nd *node, childObj float64) {
	if nd.branchCol < 0 || nd.branchFrac <= 1e-9 {
		return
	}
	gain := childObj - nd.bound
	if gain < 0 {
		gain = 0
	}
	s.pc.record(nd.branchCol, nd.branchUp, gain/nd.branchFrac)
}

// pickBranchColumn selects the branching column: pseudocost scoring when
// both directions of a column have history, most-fractional otherwise.
func (s *solver) pickBranchColumn(x []float64) int {
	bestPC, bestPCScore := -1, 0.0
	bestFrac, bestFracDist := -1, s.opt.IntTol
	for _, c := range s.integer {
		f := x[c] - math.Floor(x[c])
		dist := math.Min(f, 1-f)
		if dist <= s.opt.IntTol {
			continue
		}
		if score, ok := s.pc.score(c, f); ok {
			if score > bestPCScore {
				bestPCScore, bestPC = score, c
			}
		}
		if dist > bestFracDist {
			bestFracDist, bestFrac = dist, c
		}
	}
	if bestPC >= 0 {
		return bestPC
	}
	return bestFrac
}

// Solve minimizes the problem with the given columns restricted to
// integral values.
func Solve(p *lp.Problem, integer []int, opt Options) (*Result, error) {
	return SolveCtx(context.Background(), p, integer, opt)
}

// SolveCtx is Solve with cooperative cancellation. The context is polled
// at the counter-gated node checkpoint and inside every LP relaxation, so
// a cancellation aborts mid-branch-and-bound within a few pivots. A done
// context returns a *CanceledError and discards partial results; use
// Options.TimeLimit for a soft budget that keeps the incumbent. The
// problem's bounds are restored before returning, so an aborted solve
// leaves no partial state.
func SolveCtx(ctx context.Context, p *lp.Problem, integer []int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	isInt := make(map[int]bool, len(integer))
	for _, c := range integer {
		if c < 0 || c >= p.NumVariables() {
			return nil, fmt.Errorf("mip: integer column %d out of range", c)
		}
		isInt[c] = true
	}
	s := &solver{p: p, integer: integer, isInt: isInt, opt: opt, start: time.Now(),
		pc: newPCTable()}
	s.ctx, s.lpCtx = ctx, ctx
	if opt.TimeLimit > 0 {
		// Soft deadline for the LP relaxations: an expensive node used to
		// overshoot a short TimeLimit by seconds because the wall clock was
		// only consulted every timeCheckEvery node pops. The deadline
		// context stops the simplex mid-pivot; the node loop converts that
		// into the ordinary deadline-hit path, keeping the incumbent.
		lpCtx, cancel := context.WithDeadline(ctx, s.start.Add(opt.TimeLimit))
		defer cancel()
		s.lpCtx = lpCtx
	}
	s.incumbentObj = math.Inf(1)
	s.lastBound = math.Inf(-1)
	s.trace = opt.Trace
	if reg := opt.Metrics; reg != nil {
		s.cNodes = reg.Counter("mip.nodes")
		s.cPruned = reg.Counter("mip.pruned")
		s.cLPSolves = reg.Counter("mip.lp_solves")
		s.cLPIters = reg.Counter("mip.lp_iters")
		s.cIncumbents = reg.Counter("mip.incumbents")
		s.cHeurHits = reg.Counter("mip.heuristic_hits")
		s.cDeadline = reg.Counter("mip.deadline_hits")
		s.cCuts = reg.Counter("mip.cuts")
		s.cRefacts = reg.Counter("mip.refactorizations")
		s.cDegen = reg.Counter("mip.degenerate_pivots")
		s.cWorkers = reg.Counter("mip.workers.active")
		s.cWarmHits = reg.Counter("lp.warmstart.hits")
		s.cEtaUp = reg.Counter("lp.eta.updates")
		s.cFTUp = reg.Counter("lp.lu.ft.updates")
		s.cLuFill = reg.Counter("lp.lu.fill")
		s.cLuTrig = reg.Counter("lp.lu.refactor.trigger")
	}
	spanFields := []obs.Field{
		obs.Int("cols", int64(p.NumVariables())),
		obs.Int("rows", int64(p.NumConstraints())),
		obs.Int("ints", int64(len(integer))),
	}
	// A request trace ID on ctx (the serving path) joins this solve to
	// that request's end-to-end trace.
	if tid := obs.TraceIDFrom(ctx); tid != "" {
		spanFields = append(spanFields, obs.Str("trace", tid))
	}
	span := s.trace.StartSpan("mip.solve", spanFields...)
	statuses := opt.Metrics.CounterVec("mip.solve.status", "status")
	if opt.Incumbent != nil {
		if err := s.tryIncumbent(opt.Incumbent, "initial"); err != nil {
			span.End(obs.Str("status", "error"))
			statuses.With("error").Inc()
			return nil, fmt.Errorf("mip: bad initial incumbent: %v", err)
		}
	}
	var res *Result
	var err error
	if opt.Workers > 1 {
		res, err = s.runParallel()
	} else {
		res, err = s.run()
	}
	if err != nil {
		span.End(obs.Str("status", "error"))
		statuses.With("error").Inc()
		return nil, err
	}
	span.End(obs.Str("status", res.Status.String()),
		obs.Int("nodes", int64(res.Nodes)),
		obs.Int("lp_iters", int64(res.LPIters)),
		obs.Float("objective", res.Objective),
		obs.Float("best_bound", res.BestBound))
	statuses.With(res.Status.String()).Inc()
	return res, nil
}

// evaluate checks candidate feasibility and returns its objective.
func (s *solver) evaluate(x []float64) (float64, error) {
	n := s.p.NumVariables()
	if len(x) != n {
		return 0, fmt.Errorf("dimension %d, want %d", len(x), n)
	}
	const eps = 1e-6
	for j := 0; j < n; j++ {
		lo, hi := s.p.Bounds(j)
		if x[j] < lo-eps || x[j] > hi+eps {
			return 0, fmt.Errorf("column %d value %g outside [%g,%g]", j, x[j], lo, hi)
		}
		if s.isInt[j] && math.Abs(x[j]-math.Round(x[j])) > s.opt.IntTol {
			return 0, fmt.Errorf("column %d value %g not integral", j, x[j])
		}
	}
	if err := checkRows(s.p, x, eps); err != nil {
		return 0, err
	}
	var obj float64
	for j := 0; j < n; j++ {
		obj += s.p.Cost(j) * x[j]
	}
	return obj, nil
}

func (s *solver) tryIncumbent(x []float64, source string) error {
	obj, err := s.evaluate(x)
	if err != nil {
		return err
	}
	if obj < s.incumbentObj-1e-9 {
		s.acceptIncumbent(x, obj, source)
	}
	return nil
}

// acceptIncumbent installs a verified improving solution and reports it
// to every observer (incumbent log, trace, counters, callbacks).
func (s *solver) acceptIncumbent(x []float64, obj float64, source string) {
	s.incumbent = append([]float64(nil), x...)
	s.incumbentObj = obj
	s.haveInc = true
	at := time.Since(s.start)
	s.incLog = append(s.incLog, IncumbentRecord{At: at, Objective: obj, Node: s.nodes, Source: source})
	s.cIncumbents.Inc()
	s.trace.Emit("mip.incumbent",
		obs.Float("objective", obj),
		obs.Int("node", int64(s.nodes)),
		obs.Str("source", source),
		obs.Float("elapsed_ms", float64(at)/float64(time.Millisecond)))
	if s.opt.OnIncumbent != nil {
		s.opt.OnIncumbent(obj, append([]float64(nil), x...))
	}
	s.progress()
}

// progress invokes the user progress callback with a search snapshot.
func (s *solver) progress() {
	if s.opt.Progress == nil {
		return
	}
	open := 0
	if s.queue != nil {
		open = s.queue.Len()
	}
	s.opt.Progress(Progress{
		Nodes: s.nodes, Open: open, LPIters: s.lpIters,
		BestBound: s.lastBound, Incumbent: s.incumbentObj, HasIncumbent: s.haveInc,
		Elapsed: time.Since(s.start),
	})
}

// observeBound records a global best-bound improvement. At a pop of the
// best-bound-first queue the popped node's bound is the global minimum
// over all open nodes, so the trajectory is monotone.
func (s *solver) observeBound(bound float64) {
	if !(bound > s.lastBound) || math.IsInf(bound, -1) {
		return
	}
	s.lastBound = bound
	s.boundLog = append(s.boundLog, BoundRecord{At: time.Since(s.start), Bound: bound, Node: s.nodes})
	s.trace.Emit("mip.bound",
		obs.Float("bound", bound),
		obs.Int("node", int64(s.nodes)))
}

// fractional returns the most fractional integer column of x, or -1 if x
// is integral on all integer columns.
func (s *solver) fractional(x []float64) int {
	best, bestDist := -1, s.opt.IntTol
	for _, c := range s.integer {
		f := x[c] - math.Floor(x[c])
		dist := math.Min(f, 1-f)
		if dist > bestDist {
			bestDist, best = dist, c
		}
	}
	return best
}

// strengthen applies ceil-rounding to a lower bound when the objective is
// known integral.
func (s *solver) strengthen(bound float64) float64 {
	if s.opt.IntegralObjective {
		return math.Ceil(bound - 1e-6)
	}
	return bound
}

// gapReached reports whether the incumbent is within the requested gap of
// the bound.
func (s *solver) gapReached(bound float64) bool {
	if !s.haveInc {
		return false
	}
	if s.incumbentObj-bound <= 1e-9 {
		return true
	}
	if s.opt.RelativeGap > 0 {
		return (s.incumbentObj-bound)/math.Max(1, math.Abs(s.incumbentObj)) <= s.opt.RelativeGap
	}
	return false
}

func (s *solver) timeUp() bool {
	return s.opt.TimeLimit > 0 && time.Since(s.start) > s.opt.TimeLimit
}

// stopRequested polls the cooperative preemption hook.
func (s *solver) stopRequested() bool {
	return s.opt.Stop != nil && s.opt.Stop()
}

// applyChanges sets node bounds on p and returns an undo function. It is
// a free function over an explicit problem because the parallel workers
// apply node paths to their own problem clones, not the shared root.
func applyChanges(p *lp.Problem, changes []Bound) func() {
	old := make([]Bound, len(changes))
	for i, ch := range changes {
		lo, hi := p.Bounds(ch.Col)
		old[i] = Bound{Col: ch.Col, Lo: lo, Hi: hi}
		p.SetBounds(ch.Col, ch.Lo, ch.Hi)
	}
	return func() {
		for i := len(old) - 1; i >= 0; i-- {
			p.SetBounds(old[i].Col, old[i].Lo, old[i].Hi)
		}
	}
}

func (s *solver) run() (*Result, error) {
	queue := &nodeQueue{}
	s.queue = queue
	heap.Push(queue, &node{bound: math.Inf(-1), branchCol: -1})
	seq := 1
	limited := false
	s.sinceCheck = timeCheckEvery // check the deadline on the first iteration

	for queue.Len() > 0 {
		if s.nodes >= s.opt.MaxNodes {
			limited = true
			break
		}
		// Deadline test, counter-gated: time.Since at every node dominates
		// small-LP solves, so it only fires every timeCheckEvery pops.
		if s.sinceCheck++; s.sinceCheck >= timeCheckEvery {
			s.sinceCheck = 0
			if s.ctx.Err() != nil {
				return nil, NewCanceledError(context.Cause(s.ctx))
			}
			if s.timeUp() {
				s.deadlineHit = true
				s.cDeadline.Inc()
				s.trace.Emit("mip.deadline", obs.Int("node", int64(s.nodes)))
				limited = true
				break
			}
			if s.stopRequested() {
				s.stopped = true
				s.trace.Emit("mip.stopped", obs.Int("node", int64(s.nodes)))
				limited = true
				break
			}
		}
		nd := heap.Pop(queue).(*node)
		s.observeBound(s.strengthen(nd.bound))
		// Bound-based pruning against the current incumbent.
		if s.haveInc && s.strengthen(nd.bound) >= s.incumbentObj-1e-9 {
			s.pruned++
			s.cPruned.Inc()
			continue
		}
		undo := applyChanges(s.p, nd.changes)
		res, err := s.p.SolveFromCtx(s.lpCtx, nd.basis, s.opt.LP)
		undo()
		if err != nil {
			if errors.Is(err, lp.ErrCanceled) {
				if s.ctx.Err() != nil {
					// The caller's context aborted the relaxation: hard stop.
					return nil, NewCanceledError(context.Cause(s.ctx))
				}
				// Our own TimeLimit deadline interrupted the LP: behave like
				// the node-loop deadline check. Re-queue the node so the
				// best-bound proof over the open nodes stays valid.
				heap.Push(queue, nd)
				s.deadlineHit = true
				s.cDeadline.Inc()
				s.trace.Emit("mip.deadline", obs.Int("node", int64(s.nodes)))
				limited = true
				break
			}
			return nil, err
		}
		s.nodes++
		s.countLP(res)
		if s.nodes%s.opt.ProgressEvery == 0 {
			s.progress()
		}
		switch res.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			if nd.depth == 0 {
				return s.result(Unbounded), nil
			}
			continue // cannot happen below the root with finite branching bounds
		case lp.IterationLimit:
			// Treat as unexplorable but keep correctness: without a valid
			// bound we must not prune, so re-solving cold already happened
			// inside SolveFrom; give up on proving this subtree.
			limited = true
			continue
		}
		s.recordPseudocost(nd, res.Objective)
		bound := s.strengthen(res.Objective)
		if s.haveInc && bound >= s.incumbentObj-1e-9 {
			continue
		}
		branchCol := s.fractional(res.X)
		if branchCol < 0 {
			// Integral LP solution: new incumbent.
			if err := s.tryIncumbent(res.X, "lp"); err != nil {
				return nil, fmt.Errorf("mip: integral LP solution rejected: %v", err)
			}
			continue
		}
		if nd.depth == 0 && len(nd.changes) == 0 && s.opt.RootCutRounds > 0 {
			// Cut-and-branch: tighten the root relaxation with cover cuts.
			tightened, nCuts, err := s.addRootCuts(res, s.opt.RootCutRounds)
			if err != nil {
				return nil, err
			}
			s.cuts = nCuts
			s.cCuts.Add(int64(nCuts))
			if nCuts > 0 {
				s.trace.Emit("mip.cuts", obs.Int("count", int64(nCuts)),
					obs.Float("bound", s.strengthen(tightened.Objective)))
				res = tightened
				bound = s.strengthen(res.Objective)
				if s.haveInc && bound >= s.incumbentObj-1e-9 {
					continue
				}
				branchCol = s.fractional(res.X)
				if branchCol < 0 {
					if err := s.tryIncumbent(res.X, "lp"); err != nil {
						return nil, fmt.Errorf("mip: integral cut solution rejected: %v", err)
					}
					continue
				}
			}
		}
		if s.opt.Heuristic != nil {
			if cand, ok := s.opt.Heuristic(res.X); ok {
				if obj, err := s.evaluate(cand); err == nil && obj < s.incumbentObj-1e-9 {
					s.heurHit++
					s.cHeurHits.Inc()
					s.acceptIncumbent(cand, obj, "heuristic")
				}
			}
		}
		if s.gapReached(bound) {
			continue
		}
		// Branch: a custom brancher may divide the node; otherwise
		// branch on the most fractional column.
		var children [][]Bound
		if s.opt.Brancher != nil {
			children = s.opt.Brancher(res.X)
		}
		if len(children) == 0 {
			if pc := s.pickBranchColumn(res.X); pc >= 0 {
				branchCol = pc
			}
			v := res.X[branchCol]
			f := v - math.Floor(v)
			lo, hi := boundsAfter(s.p, nd.changes, branchCol)
			down := &node{
				bound: res.Objective, depth: nd.depth + 1, seq: seq,
				changes: append(append([]Bound(nil), nd.changes...),
					Bound{Col: branchCol, Lo: lo, Hi: math.Floor(v)}),
				basis:     res.Basis,
				branchCol: branchCol, branchUp: false, branchFrac: f,
			}
			seq++
			up := &node{
				bound: res.Objective, depth: nd.depth + 1, seq: seq,
				changes: append(append([]Bound(nil), nd.changes...),
					Bound{Col: branchCol, Lo: math.Ceil(v), Hi: hi}),
				basis:     res.Basis,
				branchCol: branchCol, branchUp: true, branchFrac: 1 - f,
			}
			seq++
			// Plunge toward the nearer side first (smaller seq wins ties).
			if f > 0.5 {
				down.seq, up.seq = up.seq, down.seq
			}
			heap.Push(queue, down)
			heap.Push(queue, up)
			continue
		}
		for _, ch := range children {
			heap.Push(queue, &node{
				bound: res.Objective, depth: nd.depth + 1, seq: seq,
				changes:   append(append([]Bound(nil), nd.changes...), ch...),
				basis:     res.Basis,
				branchCol: -1,
			})
			seq++
		}
	}

	switch {
	case s.haveInc && !limited && queue.Len() == 0:
		return s.result(Optimal), nil
	case s.haveInc && s.opt.RelativeGap > 0 && !limited:
		// Queue drained under a gap limit: incumbent is within the gap.
		return s.result(Optimal), nil
	case s.haveInc:
		r := s.result(Feasible)
		// Best bound = min over remaining open nodes (or incumbent).
		bb := s.incumbentObj
		for _, nd := range *queue {
			if b := s.strengthen(nd.bound); b < bb {
				bb = b
			}
		}
		r.BestBound = bb
		return r, nil
	case limited:
		return s.result(NoSolution), nil
	default:
		return s.result(Infeasible), nil
	}
}

// countLP merges one relaxation result into the solver telemetry and the
// registry counters. Parallel workers call it under the pool lock.
func (s *solver) countLP(res *lp.Result) {
	s.lpSolves++
	s.lpIters += res.Iterations
	s.refacts += res.Refactorizations
	s.degen += res.DegeneratePivots
	s.etaUp += res.EtaUpdates
	s.ftUp += res.FTUpdates
	s.luFill += res.LUFill
	s.refTrig += res.RefactorsTriggered
	s.cNodes.Inc()
	s.cLPSolves.Inc()
	s.cLPIters.Add(int64(res.Iterations))
	s.cRefacts.Add(int64(res.Refactorizations))
	s.cDegen.Add(int64(res.DegeneratePivots))
	s.cEtaUp.Add(int64(res.EtaUpdates))
	s.cFTUp.Add(int64(res.FTUpdates))
	s.cLuFill.Add(int64(res.LUFill))
	s.cLuTrig.Add(int64(res.RefactorsTriggered))
	if res.WarmStarted {
		s.warmHits++
		s.cWarmHits.Inc()
	}
}

func (s *solver) result(st Status) *Result {
	r := &Result{
		Status:           st,
		Nodes:            s.nodes,
		LPIters:          s.lpIters,
		LPSolves:         s.lpSolves,
		Elapsed:          time.Since(s.start),
		HeuristicHits:    s.heurHit,
		Cuts:             s.cuts,
		Pruned:           s.pruned,
		Refactorizations: s.refacts,
		DegeneratePivots: s.degen,
		WarmStartHits:    s.warmHits,
		EtaUpdates:       s.etaUp,
		FTUpdates:        s.ftUp,
		LUFill:           s.luFill,
		RefactorTriggers: s.refTrig,
		DeadlineHit:      s.deadlineHit,
		Stopped:          s.stopped,
		Incumbents:       s.incLog,
		Bounds:           s.boundLog,
	}
	if s.haveInc {
		r.Objective = s.incumbentObj
		r.X = append([]float64(nil), s.incumbent...)
		r.BestBound = s.incumbentObj
		if st == Feasible {
			r.BestBound = math.Inf(-1)
		}
	} else {
		r.Objective = math.Inf(1)
		r.BestBound = math.Inf(-1)
	}
	return r
}

// boundsAfter returns the effective bounds of col after the node's
// changes (the global problem currently holds root bounds).
func boundsAfter(p *lp.Problem, changes []Bound, col int) (float64, float64) {
	lo, hi := p.Bounds(col)
	for _, ch := range changes {
		if ch.Col == col {
			lo, hi = ch.Lo, ch.Hi
		}
	}
	return lo, hi
}

// checkRows verifies a point against all rows of the problem. It is used
// to validate externally supplied incumbents.
func checkRows(p *lp.Problem, x []float64, eps float64) error {
	m := p.NumConstraints()
	act := make([]float64, m)
	p.AccumulateRows(x, act)
	for i := 0; i < m; i++ {
		sen, rhs := p.Row(i)
		switch sen {
		case lp.LE:
			if act[i] > rhs+eps {
				return fmt.Errorf("row %d: %g > %g", i, act[i], rhs)
			}
		case lp.GE:
			if act[i] < rhs-eps {
				return fmt.Errorf("row %d: %g < %g", i, act[i], rhs)
			}
		case lp.EQ:
			if math.Abs(act[i]-rhs) > eps {
				return fmt.Errorf("row %d: %g != %g", i, act[i], rhs)
			}
		}
	}
	return nil
}

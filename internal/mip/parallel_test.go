package mip

import (
	"context"
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/lp"
	"repro/internal/obs"
	"repro/internal/stats"
)

func TestParallelKnapsackMatchesSerial(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4}
	weights := []float64{3, 4, 2, 3, 1, 4, 2}
	for _, workers := range []int{1, 2, 4} {
		p, ints := knapsack(values, weights, 9)
		res, err := Solve(p, ints, Options{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Status != Optimal {
			t.Fatalf("workers=%d: status = %v", workers, res.Status)
		}
		want := bruteKnapsack(values, weights, 9)
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("workers=%d: objective %g, want %g", workers, res.Objective, want)
		}
		for _, c := range ints {
			if f := res.X[c]; math.Abs(f-math.Round(f)) > 1e-6 {
				t.Fatalf("workers=%d: x[%d] = %g not integral", workers, c, f)
			}
		}
	}
}

// Property: the parallel solver proves the same optimum as brute force on
// random binary problems, regardless of its nondeterministic node order.
func TestParallelRandomBinaryProblemsMatchBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(9) + 2
		p := lp.NewProblem()
		rows := []int{p.AddConstraint(lp.LE, float64(r.Intn(12)+3)), p.AddConstraint(lp.LE, float64(r.Intn(12)+3))}
		costs := make([]float64, n)
		w1 := make([]float64, n)
		w2 := make([]float64, n)
		ints := make([]int, n)
		for j := 0; j < n; j++ {
			costs[j] = float64(r.Intn(21) - 10)
			w1[j] = float64(r.Intn(5))
			w2[j] = float64(r.Intn(5))
			c := p.AddVariable(0, 1, costs[j], "x")
			p.SetCoeff(rows[0], c, w1[j])
			p.SetCoeff(rows[1], c, w2[j])
			ints[j] = c
		}
		res, err := Solve(p, ints, Options{IntegralObjective: true, Workers: 4})
		if err != nil || res.Status != Optimal {
			t.Logf("seed %d: %v %v", seed, res, err)
			return false
		}
		_, rhs1 := p.Row(rows[0])
		_, rhs2 := p.Row(rows[1])
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			var c, a, b float64
			for j := 0; j < n; j++ {
				if mask&(1<<j) != 0 {
					c += costs[j]
					a += w1[j]
					b += w2[j]
				}
			}
			if a <= rhs1 && b <= rhs2 && c < best {
				best = c
			}
		}
		if math.Abs(res.Objective-best) > 1e-6 {
			t.Logf("seed %d: mip %g brute %g", seed, res.Objective, best)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestParallelWorkerCounter(t *testing.T) {
	// Capacity 7 leaves the root relaxation fractional, so the solve
	// branches and actually spins up the worker pool.
	values := []float64{10, 13, 7, 8, 2}
	weights := []float64{3, 4, 2, 3, 1}
	p, ints := knapsack(values, weights, 7)
	reg := obs.NewRegistry()
	res, err := Solve(p, ints, Options{Workers: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if got := reg.Counter("mip.workers.active").Value(); got != 3 {
		t.Fatalf("mip.workers.active = %d, want 3", got)
	}
	if got := reg.Counter("mip.nodes").Value(); got != int64(res.Nodes) {
		t.Fatalf("mip.nodes = %d, result says %d", got, res.Nodes)
	}
}

func TestParallelCancellation(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4}
	weights := []float64{3, 4, 2, 3, 1, 4, 2}
	p, ints := knapsack(values, weights, 9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveCtx(ctx, p, ints, Options{Workers: 4})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	var ce *CanceledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %T, want *CanceledError", err)
	}
}

// The parallel bound trajectory must stay monotone even though workers
// pop nodes concurrently (min over popped + in-flight bounds).
func TestParallelBoundTrajectoryMonotone(t *testing.T) {
	values := []float64{10, 13, 7, 8, 2, 9, 4, 6, 11}
	weights := []float64{3, 4, 2, 3, 1, 4, 2, 3, 5}
	p, ints := knapsack(values, weights, 11)
	res, err := Solve(p, ints, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Bounds); i++ {
		if res.Bounds[i].Bound < res.Bounds[i-1].Bound {
			t.Fatalf("bound log not monotone at %d: %g after %g",
				i, res.Bounds[i].Bound, res.Bounds[i-1].Bound)
		}
	}
}

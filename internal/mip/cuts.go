package mip

import (
	"errors"
	"math"
	"sort"

	"repro/internal/lp"
)

// Cover cuts (cut-and-branch): for a knapsack row sum(w_j x_j) <= C over
// binary columns with positive weights, any cover S (a set with
// sum_{j in S} w_j > C) yields the valid inequality
//
//	sum_{j in S} x_j <= |S| - 1.
//
// At the root we separate violated minimal covers against the LP
// relaxation and append them as rows, tightening every node of the
// subsequent branch and bound. The time-indexed scheduling model's
// capacity rows are exactly such knapsacks.

// knapsackRow describes a row eligible for cover separation.
type knapsackRow struct {
	cols    []int
	weights []float64
	cap     float64
}

// knapsackRows extracts the LE rows whose support is entirely binary
// columns with positive coefficients and positive capacity.
func knapsackRows(p *lp.Problem, isInt map[int]bool) []knapsackRow {
	m := p.NumConstraints()
	n := p.NumVariables()
	rows := make([]knapsackRow, m)
	eligible := make([]bool, m)
	for i := 0; i < m; i++ {
		sen, rhs := p.Row(i)
		if sen == lp.LE && rhs > 0 {
			eligible[i] = true
			rows[i].cap = rhs
		}
	}
	for j := 0; j < n; j++ {
		lo, hi := p.Bounds(j)
		binary := isInt[j] && lo >= 0 && hi <= 1
		p.VisitColumn(j, func(row int, v float64) {
			if !eligible[row] {
				return
			}
			if !binary || v <= 0 {
				eligible[row] = false
				return
			}
			rows[row].cols = append(rows[row].cols, j)
			rows[row].weights = append(rows[row].weights, v)
		})
	}
	out := rows[:0]
	for i := 0; i < m; i++ {
		if eligible[i] && len(rows[i].cols) >= 2 {
			out = append(out, rows[i])
		}
	}
	return out
}

// separateCover finds a violated minimal cover for the row against the
// fractional point x, or ok=false. The classic heuristic sorts columns by
// fractional value (descending) and greedily builds a cover, then
// minimizes it by dropping members while it remains a cover.
func separateCover(row knapsackRow, x []float64, tol float64) (cover []int, ok bool) {
	type cand struct {
		col    int
		w, val float64
	}
	cands := make([]cand, 0, len(row.cols))
	for k, c := range row.cols {
		cands = append(cands, cand{col: c, w: row.weights[k], val: x[c]})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].val != cands[b].val {
			return cands[a].val > cands[b].val
		}
		return cands[a].w > cands[b].w
	})
	var weight float64
	var chosen []cand
	for _, c := range cands {
		chosen = append(chosen, c)
		weight += c.w
		if weight > row.cap+1e-9 {
			break
		}
	}
	if weight <= row.cap+1e-9 {
		return nil, false // no cover exists among these columns
	}
	// Minimize: drop members (smallest x first) while still a cover.
	sort.Slice(chosen, func(a, b int) bool { return chosen[a].val < chosen[b].val })
	kept := chosen[:0]
	for i, c := range chosen {
		if weight-c.w > row.cap+1e-9 {
			weight -= c.w
			continue
		}
		kept = append(kept, chosen[i])
	}
	// Violation check: sum x > |S| - 1 + tol.
	var sum float64
	for _, c := range kept {
		sum += c.val
	}
	if sum <= float64(len(kept)-1)+tol {
		return nil, false
	}
	cover = make([]int, len(kept))
	for i, c := range kept {
		cover[i] = c.col
	}
	return cover, true
}

// addRootCuts runs up to maxRounds of cover separation at the root,
// appending violated cuts to the problem and re-solving the relaxation.
// It returns the final root LP result and the number of cuts added.
func (s *solver) addRootCuts(root *lp.Result, maxRounds int) (*lp.Result, int, error) {
	added := 0
	res := root
	for round := 0; round < maxRounds; round++ {
		rows := knapsackRows(s.p, s.isInt)
		newCuts := 0
		for _, row := range rows {
			cover, ok := separateCover(row, res.X, 1e-4)
			if !ok {
				continue
			}
			cut := s.p.AddConstraint(lp.LE, float64(len(cover)-1))
			for _, c := range cover {
				s.p.SetCoeff(cut, c, 1)
			}
			newCuts++
		}
		if newCuts == 0 {
			break
		}
		added += newCuts
		next, err := s.p.SolveCtx(s.lpCtx, s.opt.LP)
		if err != nil {
			if errors.Is(err, lp.ErrCanceled) && s.ctx.Err() == nil {
				// TimeLimit deadline during separation: the appended cuts
				// stay (they are valid inequalities); keep the previous
				// relaxation and let the node loop take the deadline path.
				return res, added, nil
			}
			return nil, added, err
		}
		s.lpSolves++
		s.cLPSolves.Inc()
		if next.Status != lp.Optimal {
			// Cuts are valid inequalities; a non-optimal status here means
			// iteration trouble, not infeasibility of the MIP. Keep the
			// previous relaxation.
			return res, added, nil
		}
		s.lpIters += next.Iterations
		s.cLPIters.Add(int64(next.Iterations))
		s.refacts += next.Refactorizations
		s.degen += next.DegeneratePivots
		if next.Objective <= res.Objective+1e-9 && math.Abs(next.Objective-res.Objective) < 1e-9 {
			res = next
			break // no bound movement: stop cutting
		}
		res = next
	}
	return res, added, nil
}

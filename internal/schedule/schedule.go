// Package schedule represents full schedules: a planned start time for
// every waiting job, as produced by the planning-based scheduler in every
// self-tuning step. It also implements the compaction pass of §3.2 of the
// paper (re-inserting jobs in a given start order as early as possible),
// which repairs the slack a time-scaled ILP solution leaves behind.
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/job"
	"repro/internal/machine"
)

// Entry is one planned job: the job plus its planned start time.
type Entry struct {
	Job   *job.Job
	Start int64
}

// End returns the planned end time (start + estimated duration): planning
// is always done with estimates.
func (e Entry) End() int64 { return e.Start + e.Job.Estimate }

// ResponseTime returns the planned response time start + d_i - s_i.
func (e Entry) ResponseTime() int64 { return e.End() - e.Job.Submit }

// WaitTime returns the planned waiting time start - s_i.
func (e Entry) WaitTime() int64 { return e.Start - e.Job.Submit }

// Slowdown returns the planned (bounded-from-below-by-1) slowdown
// (wait + d_i) / d_i.
func (e Entry) Slowdown() float64 {
	return float64(e.ResponseTime()) / float64(e.Job.Estimate)
}

// Schedule is a full schedule for a fixed set of waiting jobs, planned at
// time Now on a machine with Machine processors whose residual capacity
// (running jobs) is captured separately as a machine.Profile.
type Schedule struct {
	// Policy names the producer ("FCFS", "SJF", "LJF", "ILP", ...).
	Policy string
	// Now is the planning instant of the self-tuning step.
	Now int64
	// Machine is the total processor count M.
	Machine int
	// Entries, one per waiting job, in no particular order unless
	// SortByStart has been called.
	Entries []Entry
}

// Clone returns a copy sharing the job pointers but not the entry slice.
func (s *Schedule) Clone() *Schedule {
	cp := *s
	cp.Entries = append([]Entry(nil), s.Entries...)
	return &cp
}

// SortByStart orders entries by (Start, Job.ID); the secondary key makes
// the order deterministic so compaction is reproducible.
func (s *Schedule) SortByStart() {
	sort.Slice(s.Entries, func(a, b int) bool {
		if s.Entries[a].Start != s.Entries[b].Start {
			return s.Entries[a].Start < s.Entries[b].Start
		}
		return s.Entries[a].Job.ID < s.Entries[b].Job.ID
	})
}

// Makespan returns the latest planned end time, or Now for an empty
// schedule.
func (s *Schedule) Makespan() int64 {
	m := s.Now
	for _, e := range s.Entries {
		if e.End() > m {
			m = e.End()
		}
	}
	return m
}

// Find returns the entry for the given job ID, or nil.
func (s *Schedule) Find(id int) *Entry {
	for i := range s.Entries {
		if s.Entries[i].Job.ID == id {
			return &s.Entries[i]
		}
	}
	return nil
}

// Validate checks that the schedule is feasible on top of base (the
// machine profile holding only the running jobs): every entry starts at or
// after both Now and its submission time, and capacities are respected.
// base is not modified.
func (s *Schedule) Validate(base *machine.Profile) error {
	p := base.Clone()
	if p.Total() != s.Machine {
		return fmt.Errorf("schedule: machine size %d does not match profile %d", s.Machine, p.Total())
	}
	for _, e := range s.Entries {
		if e.Start < s.Now {
			return fmt.Errorf("schedule: job %d starts at %d before now %d", e.Job.ID, e.Start, s.Now)
		}
		if e.Start < e.Job.Submit {
			return fmt.Errorf("schedule: job %d starts at %d before submission %d", e.Job.ID, e.Start, e.Job.Submit)
		}
		if err := p.Reserve(e.Start, e.End(), e.Job.Width); err != nil {
			return fmt.Errorf("schedule: job %d infeasible: %v", e.Job.ID, err)
		}
	}
	return nil
}

// Reserve books every entry of the schedule into the profile. It is the
// counterpart of Validate that keeps the reservations.
func (s *Schedule) Reserve(p *machine.Profile) error {
	for _, e := range s.Entries {
		if err := p.Reserve(e.Start, e.End(), e.Job.Width); err != nil {
			return fmt.Errorf("schedule: job %d: %v", e.Job.ID, err)
		}
	}
	return nil
}

// Compact re-places the schedule's jobs in the given start order (the
// order of s.Entries after SortByStart) as early as possible on top of
// base. This is the paper's repair for time-scaling: "each job is inserted
// in the schedule according to the starting order of the schedule computed
// by CPLEX. Each job is placed as soon as possible and unused time slots,
// due to time-scaling, do no longer occur."
//
// base is not modified. The result carries the same Policy name.
func (s *Schedule) Compact(base *machine.Profile) (*Schedule, error) {
	ordered := s.Clone()
	ordered.SortByStart()
	p := base.Clone()
	out := &Schedule{Policy: s.Policy, Now: s.Now, Machine: s.Machine,
		Entries: make([]Entry, 0, len(s.Entries))}
	for _, e := range ordered.Entries {
		earliest := s.Now
		if e.Job.Submit > earliest {
			earliest = e.Job.Submit
		}
		start, ok := p.EarliestFit(earliest, e.Job.Estimate, e.Job.Width)
		if !ok {
			return nil, fmt.Errorf("schedule: job %d wider than machine", e.Job.ID)
		}
		if err := p.Reserve(start, start+e.Job.Estimate, e.Job.Width); err != nil {
			return nil, fmt.Errorf("schedule: job %d: %v", e.Job.ID, err)
		}
		out.Entries = append(out.Entries, Entry{Job: e.Job, Start: start})
	}
	return out, nil
}

// String renders a small human-readable listing.
func (s *Schedule) String() string {
	out := fmt.Sprintf("schedule %q (now=%d, %d jobs, makespan=%d)\n",
		s.Policy, s.Now, len(s.Entries), s.Makespan())
	c := s.Clone()
	c.SortByStart()
	for _, e := range c.Entries {
		out += fmt.Sprintf("  job %4d: start=%8d end=%8d width=%3d\n",
			e.Job.ID, e.Start, e.End(), e.Job.Width)
	}
	return out
}

package schedule

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/stats"
)

func j(id int, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func TestEntryDerivedTimes(t *testing.T) {
	e := Entry{Job: j(1, 100, 4, 50), Start: 130}
	if e.End() != 180 {
		t.Fatalf("End = %d, want 180", e.End())
	}
	if e.WaitTime() != 30 {
		t.Fatalf("WaitTime = %d, want 30", e.WaitTime())
	}
	if e.ResponseTime() != 80 {
		t.Fatalf("ResponseTime = %d, want 80", e.ResponseTime())
	}
	if e.Slowdown() != 80.0/50.0 {
		t.Fatalf("Slowdown = %v, want 1.6", e.Slowdown())
	}
}

func TestMakespanAndFind(t *testing.T) {
	s := &Schedule{Now: 10, Machine: 8, Entries: []Entry{
		{Job: j(1, 0, 2, 100), Start: 10},
		{Job: j(2, 0, 2, 50), Start: 200},
	}}
	if s.Makespan() != 250 {
		t.Fatalf("Makespan = %d, want 250", s.Makespan())
	}
	if e := s.Find(2); e == nil || e.Start != 200 {
		t.Fatalf("Find(2) = %+v", e)
	}
	if s.Find(99) != nil {
		t.Fatal("Find(99) found a ghost")
	}
	empty := &Schedule{Now: 42}
	if empty.Makespan() != 42 {
		t.Fatalf("empty Makespan = %d, want 42", empty.Makespan())
	}
}

func TestValidate(t *testing.T) {
	base := machine.New(4, 0)
	good := &Schedule{Now: 0, Machine: 4, Entries: []Entry{
		{Job: j(1, 0, 4, 10), Start: 0},
		{Job: j(2, 0, 4, 10), Start: 10},
	}}
	if err := good.Validate(base); err != nil {
		t.Fatal(err)
	}

	overlap := &Schedule{Now: 0, Machine: 4, Entries: []Entry{
		{Job: j(1, 0, 4, 10), Start: 0},
		{Job: j(2, 0, 1, 10), Start: 5},
	}}
	if err := overlap.Validate(base); err == nil {
		t.Fatal("overlapping schedule accepted")
	}

	early := &Schedule{Now: 100, Machine: 4, Entries: []Entry{{Job: j(1, 0, 1, 10), Start: 50}}}
	base2 := machine.New(4, 50)
	if err := early.Validate(base2); err == nil || !strings.Contains(err.Error(), "before now") {
		t.Fatalf("start-before-now accepted: %v", err)
	}

	preSubmit := &Schedule{Now: 0, Machine: 4, Entries: []Entry{{Job: j(1, 30, 1, 10), Start: 20}}}
	if err := preSubmit.Validate(base); err == nil || !strings.Contains(err.Error(), "before submission") {
		t.Fatalf("start-before-submit accepted: %v", err)
	}

	mismatch := &Schedule{Now: 0, Machine: 8}
	if err := mismatch.Validate(base); err == nil {
		t.Fatal("machine-size mismatch accepted")
	}
}

func TestSortByStartDeterministic(t *testing.T) {
	s := &Schedule{Entries: []Entry{
		{Job: j(3, 0, 1, 5), Start: 10},
		{Job: j(1, 0, 1, 5), Start: 10},
		{Job: j(2, 0, 1, 5), Start: 5},
	}}
	s.SortByStart()
	ids := []int{s.Entries[0].Job.ID, s.Entries[1].Job.ID, s.Entries[2].Job.ID}
	if ids[0] != 2 || ids[1] != 1 || ids[2] != 3 {
		t.Fatalf("sort order %v, want [2 1 3]", ids)
	}
}

func TestCompactRemovesSlack(t *testing.T) {
	// A schedule with artificial gaps (as a coarse time grid would leave):
	// compaction must pull every job forward while keeping the order.
	base := machine.New(4, 0)
	s := &Schedule{Now: 0, Machine: 4, Entries: []Entry{
		{Job: j(1, 0, 4, 10), Start: 60},  // could start at 0
		{Job: j(2, 0, 4, 10), Start: 120}, // could start right after job 1
	}}
	c, err := s.Compact(base)
	if err != nil {
		t.Fatal(err)
	}
	if e := c.Find(1); e.Start != 0 {
		t.Fatalf("job 1 start %d, want 0", e.Start)
	}
	if e := c.Find(2); e.Start != 10 {
		t.Fatalf("job 2 start %d, want 10", e.Start)
	}
	if err := c.Validate(base); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRespectsRunningJobs(t *testing.T) {
	base := machine.New(4, 0)
	if err := base.Reserve(0, 100, 3); err != nil { // running job
		t.Fatal(err)
	}
	s := &Schedule{Now: 0, Machine: 4, Entries: []Entry{
		{Job: j(1, 0, 2, 10), Start: 300},
	}}
	c, err := s.Compact(base)
	if err != nil {
		t.Fatal(err)
	}
	if e := c.Find(1); e.Start != 100 {
		t.Fatalf("job 1 start %d, want 100 (after running job)", e.Start)
	}
}

func TestCompactErrorOnTooWide(t *testing.T) {
	base := machine.New(4, 0)
	s := &Schedule{Now: 0, Machine: 4, Entries: []Entry{{Job: j(1, 0, 8, 10), Start: 0}}}
	if _, err := s.Compact(base); err == nil {
		t.Fatal("over-wide job compacted")
	}
}

func TestReserveBooksEntries(t *testing.T) {
	base := machine.New(4, 0)
	s := &Schedule{Now: 0, Machine: 4, Entries: []Entry{{Job: j(1, 0, 3, 10), Start: 0}}}
	if err := s.Reserve(base); err != nil {
		t.Fatal(err)
	}
	if base.FreeAt(5) != 1 {
		t.Fatalf("FreeAt(5) = %d after Reserve, want 1", base.FreeAt(5))
	}
}

func TestString(t *testing.T) {
	s := &Schedule{Policy: "FCFS", Now: 0, Machine: 4,
		Entries: []Entry{{Job: j(7, 0, 2, 10), Start: 3}}}
	out := s.String()
	if !strings.Contains(out, "FCFS") || !strings.Contains(out, "job    7") {
		t.Fatalf("bad rendering:\n%s", out)
	}
}

// Property: compaction never delays any job relative to a feasible input
// schedule, and the result is always feasible.
func TestCompactNeverDelays(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		base := machine.New(16, 0)
		// Random running jobs.
		for k := 0; k < r.Intn(4); k++ {
			w := r.Intn(8) + 1
			base.Reserve(0, int64(r.Intn(300)+1), w)
		}
		// Random feasible schedule built by greedy placement with random
		// extra delay (simulating grid slack).
		s := &Schedule{Now: 0, Machine: 16}
		p := base.Clone()
		for k := 0; k < r.Intn(10)+1; k++ {
			jb := j(k+1, int64(r.Intn(50)), r.Intn(8)+1, int64(r.Intn(400)+1))
			earliest := jb.Submit + int64(r.Intn(500)) // artificial slack
			start, ok := p.EarliestFit(earliest, jb.Estimate, jb.Width)
			if !ok {
				return false
			}
			p.Reserve(start, start+jb.Estimate, jb.Width)
			s.Entries = append(s.Entries, Entry{Job: jb, Start: start})
		}
		c, err := s.Compact(base)
		if err != nil {
			return false
		}
		if c.Validate(base) != nil {
			return false
		}
		for _, e := range s.Entries {
			if c.Find(e.Job.ID).Start > e.Start {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

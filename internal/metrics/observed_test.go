package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/stats"
)

func comp(id int, submit, start, run int64, width int) Completion {
	return Completion{
		Job: &job.Job{ID: id, Submit: submit, Width: width,
			Estimate: run, Runtime: run},
		Start: start,
		End:   start + run,
	}
}

func TestCompletionDerived(t *testing.T) {
	c := comp(1, 100, 130, 50, 4)
	if c.ResponseTime() != 80 || c.WaitTime() != 30 {
		t.Fatalf("derived times wrong: %d %d", c.ResponseTime(), c.WaitTime())
	}
	if c.Slowdown() != 80.0/50.0 {
		t.Fatalf("slowdown = %v", c.Slowdown())
	}
}

func TestBoundedSlowdown(t *testing.T) {
	// 1-second job that waited 9 seconds: raw slowdown 10, bounded (tau
	// 10) = max(1, 10/10) = 1.
	c := comp(1, 0, 9, 1, 1)
	if got := c.Slowdown(); got != 10 {
		t.Fatalf("raw slowdown = %v, want 10", got)
	}
	if got := c.BoundedSlowdown(10); got != 1 {
		t.Fatalf("bounded slowdown = %v, want 1", got)
	}
	// Long job: bounded equals raw.
	c2 := comp(2, 0, 100, 1000, 1)
	if c2.BoundedSlowdown(10) != c2.Slowdown() {
		t.Fatal("bounded slowdown altered a long job")
	}
	// Never below 1.
	c3 := comp(3, 0, 0, 5, 1)
	if got := c3.BoundedSlowdown(10); got != 1 {
		t.Fatalf("bounded slowdown = %v, want 1 (floor)", got)
	}
}

func TestObserve(t *testing.T) {
	cs := []Completion{
		comp(1, 0, 0, 100, 2),   // resp 100, wait 0, sld 1, area 200
		comp(2, 0, 100, 100, 2), // resp 200, wait 100, sld 2, area 200
	}
	o := Observe(cs, 2)
	if o.Jobs != 2 {
		t.Fatalf("jobs = %d", o.Jobs)
	}
	if o.MeanResponse != 150 || o.MeanWait != 50 || o.MeanSlowdown != 1.5 {
		t.Fatalf("means wrong: %+v", o)
	}
	if o.SLDwA != 1.5 {
		t.Fatalf("SLDwA = %v, want 1.5", o.SLDwA)
	}
	if o.MaxWait != 100 {
		t.Fatalf("MaxWait = %d, want 100", o.MaxWait)
	}
	if o.Makespan != 200 {
		t.Fatalf("Makespan = %d, want 200", o.Makespan)
	}
	if o.Utilization != 1.0 {
		t.Fatalf("Utilization = %v, want 1 (back to back)", o.Utilization)
	}
	// ARTwW = (100*2 + 200*2)/4 = 150.
	if o.WeightedResponse != 150 {
		t.Fatalf("WeightedResponse = %v, want 150", o.WeightedResponse)
	}
	if z := Observe(nil, 4); z.Jobs != 0 || z.MeanResponse != 0 {
		t.Fatalf("empty Observe: %+v", z)
	}
}

// Property: Observed means lie within the per-job extreme values, and
// utilization never exceeds 1 for non-overcommitted completions.
func TestObserveBounds(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(20) + 1
		var cs []Completion
		clock := int64(0)
		for i := 0; i < n; i++ {
			run := int64(r.Intn(500) + 1)
			// Sequential on one processor: utilization <= 1 guaranteed.
			c := comp(i+1, int64(r.Intn(int(clock)+1)), clock, run, 1)
			cs = append(cs, c)
			clock += run
		}
		o := Observe(cs, 1)
		minR, maxR := math.Inf(1), math.Inf(-1)
		for _, c := range cs {
			v := float64(c.ResponseTime())
			minR = math.Min(minR, v)
			maxR = math.Max(maxR, v)
		}
		if o.MeanResponse < minR-1e-9 || o.MeanResponse > maxR+1e-9 {
			return false
		}
		if o.Utilization > 1+1e-9 || o.Utilization <= 0 {
			return false
		}
		if o.BoundedSlowdown < 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

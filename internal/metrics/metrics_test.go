package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/schedule"
	"repro/internal/stats"
)

func sched() *schedule.Schedule {
	// Two jobs, planned at now=0 on a 4-proc machine:
	//  job 1: submit 0,  width 1, est 100, start 0   -> resp 100, wait 0,  sld 1
	//  job 2: submit 50, width 3, est 50,  start 150 -> resp 150, wait 100, sld 3
	return &schedule.Schedule{Policy: "T", Now: 0, Machine: 4, Entries: []schedule.Entry{
		{Job: &job.Job{ID: 1, Submit: 0, Width: 1, Estimate: 100, Runtime: 100}, Start: 0},
		{Job: &job.Job{ID: 2, Submit: 50, Width: 3, Estimate: 50, Runtime: 50}, Start: 150},
	}}
}

func TestARTValues(t *testing.T) {
	s := sched()
	if got := (ART{}).Eval(s); got != 125 {
		t.Fatalf("ART = %v, want 125", got)
	}
	// ARTwW = (100*1 + 150*3) / 4 = 550/4
	if got := (ARTwW{}).Eval(s); got != 550.0/4.0 {
		t.Fatalf("ARTwW = %v, want 137.5", got)
	}
	if got := (AWT{}).Eval(s); got != 50 {
		t.Fatalf("AWT = %v, want 50", got)
	}
}

func TestSlowdownValues(t *testing.T) {
	s := sched()
	if got := (SLD{}).Eval(s); got != 2 {
		t.Fatalf("SLD = %v, want 2", got)
	}
	// areas: 100 and 150; SLDwA = (1*100 + 3*150)/250 = 550/250 = 2.2
	if got := (SLDwA{}).Eval(s); math.Abs(got-2.2) > 1e-12 {
		t.Fatalf("SLDwA = %v, want 2.2", got)
	}
}

func TestUtilizationAndMakespan(t *testing.T) {
	s := sched()
	// makespan = 200; area = 100 + 150 = 250; util = 250 / (4*200)
	if got := (Makespan{}).Eval(s); got != 200 {
		t.Fatalf("CMAX = %v, want 200", got)
	}
	if got := (Utilization{}).Eval(s); math.Abs(got-250.0/800.0) > 1e-12 {
		t.Fatalf("UTIL = %v, want 0.3125", got)
	}
}

func TestEmptySchedules(t *testing.T) {
	empty := &schedule.Schedule{Now: 7, Machine: 4}
	for _, m := range All() {
		if got := m.Eval(empty); got != 0 {
			t.Fatalf("%s on empty schedule = %v, want 0", m.Name(), got)
		}
	}
}

func TestBetter(t *testing.T) {
	if !Better(ART{}, 1, 2) || Better(ART{}, 2, 1) {
		t.Fatal("minimize direction broken")
	}
	if !Better(Utilization{}, 0.9, 0.5) || Better(Utilization{}, 0.5, 0.9) {
		t.Fatal("maximize direction broken")
	}
	if Better(ART{}, math.NaN(), 1) {
		t.Fatal("NaN beat a number")
	}
	if !Better(ART{}, 1, math.NaN()) {
		t.Fatal("number lost to NaN")
	}
}

func TestByName(t *testing.T) {
	for _, m := range All() {
		got, err := ByName(m.Name())
		if err != nil || got.Name() != m.Name() {
			t.Fatalf("ByName(%q) = %v, %v", m.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown metric accepted")
	}
}

func TestQualityAndLoss(t *testing.T) {
	// Minimize: optimal 99, policy 100 -> quality 0.99, loss 1 %.
	q := Quality(SLDwA{}, 99, 100)
	if math.Abs(q-0.99) > 1e-12 {
		t.Fatalf("quality = %v, want 0.99", q)
	}
	if loss := LossPercent(q); math.Abs(loss-1.0) > 1e-9 {
		t.Fatalf("loss = %v, want 1", loss)
	}
	// Policy better than time-scaled optimal: negative loss.
	q = Quality(SLDwA{}, 102, 100)
	if LossPercent(q) >= 0 {
		t.Fatalf("loss = %v, want negative", LossPercent(q))
	}
	// Maximize metric: optimal util 0.8 vs policy 0.4 -> quality 0.5.
	q = Quality(Utilization{}, 0.8, 0.4)
	if math.Abs(q-0.5) > 1e-12 {
		t.Fatalf("maximize quality = %v, want 0.5", q)
	}
	// Degenerate zeros.
	if q := Quality(ART{}, 0, 0); q != 1 {
		t.Fatalf("0/0 quality = %v, want 1", q)
	}
	if q := Quality(ART{}, 5, 0); !math.IsInf(q, 1) {
		t.Fatalf("x/0 quality = %v, want +Inf", q)
	}
}

func TestDirectionString(t *testing.T) {
	if Minimize.String() != "minimize" || Maximize.String() != "maximize" {
		t.Fatal("Direction.String broken")
	}
}

// Property: for any schedule, SLD >= 1 is not guaranteed per-average, but
// every metric must be non-negative and finite, and delaying every start
// by a constant never improves any minimize metric and never degrades the
// set of maximize metrics' direction semantics.
func TestMetricMonotonicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(8) + 1
		s := &schedule.Schedule{Now: 0, Machine: 16}
		for i := 0; i < n; i++ {
			jb := &job.Job{ID: i + 1, Submit: int64(r.Intn(100)),
				Width: r.Intn(8) + 1, Estimate: int64(r.Intn(500) + 1)}
			jb.Runtime = jb.Estimate
			start := jb.Submit + int64(r.Intn(300))
			s.Entries = append(s.Entries, schedule.Entry{Job: jb, Start: start})
		}
		delayed := s.Clone()
		for i := range delayed.Entries {
			delayed.Entries[i].Start += 1000
		}
		for _, m := range All() {
			a, b := m.Eval(s), m.Eval(delayed)
			if math.IsNaN(a) || math.IsInf(a, 0) || a < 0 {
				return false
			}
			if m.Direction() == Minimize && b < a {
				return false // delay improved a minimize metric
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

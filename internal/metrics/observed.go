package metrics

import (
	"math"

	"repro/internal/job"
)

// Completion is one finished job as observed by a simulator: the job plus
// its actual start and end times.
type Completion struct {
	Job   *job.Job
	Start int64
	End   int64
}

// ResponseTime returns End - Submit.
func (c Completion) ResponseTime() int64 { return c.End - c.Job.Submit }

// WaitTime returns Start - Submit.
func (c Completion) WaitTime() int64 { return c.Start - c.Job.Submit }

// Slowdown returns the actual slowdown (response / runtime).
func (c Completion) Slowdown() float64 {
	return float64(c.ResponseTime()) / float64(c.Job.Runtime)
}

// BoundedSlowdown returns the bounded slowdown with threshold tau:
// max(1, response / max(runtime, tau)). The common threshold is 10 s; it
// keeps very short jobs from dominating slowdown averages.
func (c Completion) BoundedSlowdown(tau int64) float64 {
	den := c.Job.Runtime
	if den < tau {
		den = tau
	}
	s := float64(c.ResponseTime()) / float64(den)
	if s < 1 {
		return 1
	}
	return s
}

// Observed aggregates the post-execution performance of a completed
// workload, the quantities schedulers are ultimately judged by.
type Observed struct {
	Jobs             int
	MeanResponse     float64
	MeanWait         float64
	MeanSlowdown     float64
	SLDwA            float64 // slowdown weighted by actual job area
	BoundedSlowdown  float64 // mean bounded slowdown, tau = 10 s
	MaxWait          int64
	Makespan         int64 // last end minus first submission
	Utilization      float64
	WeightedResponse float64 // ARTwW over actual times
}

// BoundedSlowdownTau is the bounded-slowdown threshold used by Observe.
const BoundedSlowdownTau = 10

// Observe computes the observed metrics for the completions on a machine
// with the given processor count. It returns a zero Observed for an empty
// slice.
func Observe(cs []Completion, machine int) Observed {
	var o Observed
	o.Jobs = len(cs)
	if len(cs) == 0 {
		return o
	}
	firstSubmit := int64(math.MaxInt64)
	var lastEnd int64
	var sldSum, areaSum, wSum, wrSum float64
	for _, c := range cs {
		o.MeanResponse += float64(c.ResponseTime())
		o.MeanWait += float64(c.WaitTime())
		o.MeanSlowdown += c.Slowdown()
		o.BoundedSlowdown += c.BoundedSlowdown(BoundedSlowdownTau)
		area := float64(c.Job.ActualArea())
		sldSum += c.Slowdown() * area
		areaSum += area
		wSum += float64(c.Job.Width)
		wrSum += float64(c.ResponseTime()) * float64(c.Job.Width)
		if c.WaitTime() > o.MaxWait {
			o.MaxWait = c.WaitTime()
		}
		if c.Job.Submit < firstSubmit {
			firstSubmit = c.Job.Submit
		}
		if c.End > lastEnd {
			lastEnd = c.End
		}
	}
	n := float64(len(cs))
	o.MeanResponse /= n
	o.MeanWait /= n
	o.MeanSlowdown /= n
	o.BoundedSlowdown /= n
	if areaSum > 0 {
		o.SLDwA = sldSum / areaSum
	}
	if wSum > 0 {
		o.WeightedResponse = wrSum / wSum
	}
	o.Makespan = lastEnd - firstSubmit
	if o.Makespan > 0 && machine > 0 {
		o.Utilization = areaSum / (float64(machine) * float64(o.Makespan))
	}
	return o
}

// Package metrics implements the schedule performance metrics of the
// paper: average response time (plain and weighted by width, the ILP
// objective), average waiting time, average slowdown (plain and weighted
// by job area — SLDwA, the metric Table 1 reports), utilization and
// makespan, plus the quality/performance-loss comparison of §3.2.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/schedule"
)

// Direction says whether smaller or larger metric values are better.
type Direction int

const (
	Minimize Direction = iota
	Maximize
)

func (d Direction) String() string {
	if d == Maximize {
		return "maximize"
	}
	return "minimize"
}

// Metric evaluates a full schedule to a single value, "so that the
// performance of each policy is expressed by a single value".
type Metric interface {
	Name() string
	Direction() Direction
	// Eval returns the metric value of the schedule. Schedules are
	// planning artifacts, so all times are estimate-based.
	Eval(s *schedule.Schedule) float64
}

// Better reports whether value a beats value b under the metric's
// direction. NaN never beats anything.
func Better(m Metric, a, b float64) bool {
	if math.IsNaN(a) {
		return false
	}
	if math.IsNaN(b) {
		return true
	}
	if m.Direction() == Maximize {
		return a > b
	}
	return a < b
}

// ART is the average response time in seconds.
type ART struct{}

func (ART) Name() string         { return "ART" }
func (ART) Direction() Direction { return Minimize }
func (ART) Eval(s *schedule.Schedule) float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.Entries {
		sum += float64(e.ResponseTime())
	}
	return sum / float64(len(s.Entries))
}

// ARTwW is the average response time weighted by job width, the paper's
// ILP objective (Eq. 2): minimize sum_i (t_i - s_i + d_i) * w_i. As a
// metric it is normalized by the total width so values are comparable
// across steps; the normalization does not change which schedule wins.
type ARTwW struct{}

func (ARTwW) Name() string         { return "ARTwW" }
func (ARTwW) Direction() Direction { return Minimize }
func (ARTwW) Eval(s *schedule.Schedule) float64 {
	var sum, wsum float64
	for _, e := range s.Entries {
		sum += float64(e.ResponseTime()) * float64(e.Job.Width)
		wsum += float64(e.Job.Width)
	}
	if wsum == 0 {
		return 0
	}
	return sum / wsum
}

// AWT is the average waiting time in seconds.
type AWT struct{}

func (AWT) Name() string         { return "AWT" }
func (AWT) Direction() Direction { return Minimize }
func (AWT) Eval(s *schedule.Schedule) float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.Entries {
		sum += float64(e.WaitTime())
	}
	return sum / float64(len(s.Entries))
}

// SLD is the average slowdown (response time / estimated duration).
type SLD struct{}

func (SLD) Name() string         { return "SLD" }
func (SLD) Direction() Direction { return Minimize }
func (SLD) Eval(s *schedule.Schedule) float64 {
	if len(s.Entries) == 0 {
		return 0
	}
	var sum float64
	for _, e := range s.Entries {
		sum += e.Slowdown()
	}
	return sum / float64(len(s.Entries))
}

// SLDwA is the average slowdown weighted by job area (width × estimated
// duration): "We measure a schedule with the average slowdown weighted by
// job area (SLDwA) metrics." It is the metric of Table 1.
type SLDwA struct{}

func (SLDwA) Name() string         { return "SLDwA" }
func (SLDwA) Direction() Direction { return Minimize }
func (SLDwA) Eval(s *schedule.Schedule) float64 {
	var sum, asum float64
	for _, e := range s.Entries {
		a := float64(e.Job.Area())
		sum += e.Slowdown() * a
		asum += a
	}
	if asum == 0 {
		return 0
	}
	return sum / asum
}

// Utilization is the fraction of the machine's processor-seconds consumed
// by the scheduled jobs between the planning instant and the schedule
// makespan. Higher is better.
type Utilization struct{}

func (Utilization) Name() string         { return "UTIL" }
func (Utilization) Direction() Direction { return Maximize }
func (Utilization) Eval(s *schedule.Schedule) float64 {
	span := s.Makespan() - s.Now
	if span <= 0 || s.Machine == 0 {
		return 0
	}
	var area float64
	for _, e := range s.Entries {
		// Only the part of the job inside [Now, Makespan] counts; since
		// entries start at or after Now, that is the whole estimated area.
		area += float64(e.Job.Area())
	}
	return area / (float64(s.Machine) * float64(span))
}

// Makespan is the schedule length (latest end − planning instant).
type Makespan struct{}

func (Makespan) Name() string         { return "CMAX" }
func (Makespan) Direction() Direction { return Minimize }
func (Makespan) Eval(s *schedule.Schedule) float64 {
	return float64(s.Makespan() - s.Now)
}

// ByName returns the metric with the given name, or an error. Recognized
// names: ART, ARTwW, AWT, SLD, SLDwA, UTIL, CMAX (case-sensitive).
func ByName(name string) (Metric, error) {
	switch name {
	case "ART":
		return ART{}, nil
	case "ARTwW":
		return ARTwW{}, nil
	case "AWT":
		return AWT{}, nil
	case "SLD":
		return SLD{}, nil
	case "SLDwA":
		return SLDwA{}, nil
	case "UTIL":
		return Utilization{}, nil
	case "CMAX":
		return Makespan{}, nil
	}
	return nil, fmt.Errorf("metrics: unknown metric %q", name)
}

// All returns every implemented metric.
func All() []Metric {
	return []Metric{ART{}, ARTwW{}, AWT{}, SLD{}, SLDwA{}, Utilization{}, Makespan{}}
}

// Quality implements Eq. 7: quality(p, m) = performance(opt, m) /
// performance(p, m) for minimization metrics, so quality < 1 means the
// optimal (ILP) schedule is better and (1 − quality)·100 is the
// percentage of performance lost by using policy p. For maximization
// metrics the ratio is inverted so the same convention (quality < 1 ⇔
// optimal better) holds. A zero policy value with a zero optimal value
// yields 1 (both perfect); a zero policy value otherwise yields +Inf.
func Quality(m Metric, optValue, policyValue float64) float64 {
	a, b := optValue, policyValue
	if m.Direction() == Maximize {
		a, b = b, a
	}
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// LossPercent returns (1 − quality)·100, the performance lost by the
// policy relative to the optimal schedule. Negative values mean the policy
// beat the (time-scaled) optimal schedule, which the paper observes too.
func LossPercent(quality float64) float64 { return (1 - quality) * 100 }

package sim

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
)

// repeatingTrace builds identical whole-machine jobs spaced so far apart
// that the machine is idle again before each submission: every step sees
// the same *relative* instance (one waiting job, empty profile, same
// horizon offset), so all steps after the first share a fingerprint.
func repeatingTrace(n int, procs int) *job.Trace {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID: i + 1, Submit: int64(i) * 200, Width: procs,
			Runtime: 100, Estimate: 100,
		}
	}
	return trace(procs, jobs...)
}

// countingHook counts the solve calls that actually reach the solver
// (cache hits never do), optionally chaining an inner hook.
func countingHook(calls *int64, inner func(solvepipe.SolveFunc) solvepipe.SolveFunc) func(solvepipe.SolveFunc) solvepipe.SolveFunc {
	return func(next solvepipe.SolveFunc) solvepipe.SolveFunc {
		if inner != nil {
			next = inner(next)
		}
		return func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error) {
			atomic.AddInt64(calls, 1)
			return next(ctx, m, opt)
		}
	}
}

// The cross-step cache short-circuits steps whose relative instance
// repeats: on a trace of identical, well-separated jobs only the first
// step solves a model; every later step is a rebased cache hit that
// still starts its job at the right absolute time.
func TestStepCacheHitsAcrossRepeatingSteps(t *testing.T) {
	const n = 3
	var calls int64
	ilp := ilpConfig(countingHook(&calls, nil))
	reg := obs.NewRegistry()
	res, err := mustSim(t, repeatingTrace(n, 4), ilp, &Config{Metrics: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != n {
		t.Fatalf("completed %d/%d jobs", len(res.Completed), n)
	}
	for _, c := range res.Completed {
		if c.Start != c.Job.Submit {
			t.Errorf("job %d started at %d, want its submit %d", c.Job.ID, c.Start, c.Job.Submit)
		}
	}
	if res.ILPSteps != n || res.ILPFallbacks != 0 {
		t.Fatalf("steps=%d fallbacks=%d", res.ILPSteps, res.ILPFallbacks)
	}
	if res.ILPCacheHits != n-1 {
		t.Fatalf("cache hits = %d, want %d", res.ILPCacheHits, n-1)
	}
	if got := atomic.LoadInt64(&calls); got != 1 {
		t.Fatalf("solver called %d times, want 1", got)
	}
	if got := reg.Counter("step.cache.hits").Value(); got != int64(n-1) {
		t.Fatalf("step.cache.hits counter = %d, want %d", got, n-1)
	}
}

// StepCacheOff restores one real solve per step.
func TestStepCacheOff(t *testing.T) {
	const n = 3
	var calls int64
	ilp := ilpConfig(countingHook(&calls, nil))
	ilp.StepCacheOff = true
	res, err := mustSim(t, repeatingTrace(n, 4), ilp, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.ILPCacheHits != 0 {
		t.Fatalf("cache hits = %d with the cache off", res.ILPCacheHits)
	}
	if got := atomic.LoadInt64(&calls); got != n {
		t.Fatalf("solver called %d times, want %d", got, n)
	}
}

// onlyCall faults exactly one solve call (NthCall would fault every
// multiple of N).
type onlyCall struct {
	n    int
	kind faultinject.Kind
}

func (p onlyCall) Next(call int) (faultinject.Kind, bool) {
	if call == p.n {
		return p.kind, true
	}
	return 0, false
}

// A degraded step must never populate the cache: with the first solve
// faulted, the otherwise-identical second step cannot be served a stale
// schedule — it solves for real, and only *its* success seeds the hits
// of the remaining steps.
func TestStepCacheNotPoisonedByFallback(t *testing.T) {
	const n = 4
	inj := faultinject.New(onlyCall{n: 1, kind: faultinject.Timeout})
	var calls int64
	ilp := ilpConfig(countingHook(&calls, inj.Hook))
	reg := obs.NewRegistry()
	res, err := mustSim(t, repeatingTrace(n, 4), ilp, &Config{Metrics: reg}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Injected()) != 1 {
		t.Fatalf("injected %d faults, want 1", len(inj.Injected()))
	}
	if res.ILPFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", res.ILPFallbacks)
	}
	// Step 1 faulted (nothing cached), step 2 solved for real, steps 3..n
	// hit the cache: two real solver calls, n-2 hits.
	if got := atomic.LoadInt64(&calls); got != 2 {
		t.Fatalf("solver called %d times, want 2 (fallback step must not be cached)", got)
	}
	if res.ILPCacheHits != n-2 {
		t.Fatalf("cache hits = %d, want %d", res.ILPCacheHits, n-2)
	}
	// The degraded run still starts every job at its submission: serving
	// any stale schedule would have shifted a start or failed validation.
	if len(res.Completed) != n {
		t.Fatalf("completed %d/%d jobs", len(res.Completed), n)
	}
	for _, c := range res.Completed {
		if c.Start != c.Job.Submit {
			t.Errorf("job %d started at %d, want its submit %d", c.Job.ID, c.Start, c.Job.Submit)
		}
	}
	if got := reg.Counter("step.cache.hits").Value(); got != int64(n-2) {
		t.Fatalf("step.cache.hits counter = %d, want %d", got, n-2)
	}
}

// reuseSeed derives the next step's incumbent candidate from the last
// adopted ILP schedule: departed jobs are dropped, survivors keep their
// relative order, and new arrivals are appended behind them.
func TestReuseSeedFiltersAndAppends(t *testing.T) {
	jA := &job.Job{ID: 1, Submit: 0, Width: 1, Runtime: 50, Estimate: 50}
	jB := &job.Job{ID: 2, Submit: 0, Width: 1, Runtime: 50, Estimate: 50}
	jC := &job.Job{ID: 3, Submit: 90, Width: 1, Runtime: 50, Estimate: 50}
	jD := &job.Job{ID: 4, Submit: 80, Width: 1, Runtime: 50, Estimate: 50}
	s, err := New(trace(2, jA, jB, jC, jD), standard(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if s.reuseSeed(nil) != nil {
		t.Fatal("reuse seed without a previous schedule")
	}
	s.clock = 100
	s.lastILP = &schedule.Schedule{Now: 90, Machine: 2, Entries: []schedule.Entry{
		{Job: jB, Start: 150}, {Job: jA, Start: 100},
	}}
	// jA started since (not waiting); jC and jD arrived since.
	seed := s.reuseSeed([]*job.Job{jB, jC, jD})
	if seed == nil || len(seed.Entries) != 3 {
		t.Fatalf("seed = %+v, want 3 entries", seed)
	}
	// Survivor first with its planned start, then arrivals by submit
	// order (jD before jC) with strictly later starts.
	wantIDs := []int{2, 4, 3}
	for k, e := range seed.Entries {
		if e.Job.ID != wantIDs[k] {
			t.Fatalf("entry %d is job %d, want %d (%+v)", k, e.Job.ID, wantIDs[k], seed.Entries)
		}
	}
	if seed.Entries[0].Start != 150 {
		t.Fatalf("survivor start = %d, want its planned 150", seed.Entries[0].Start)
	}
	if !(seed.Entries[1].Start > 150 && seed.Entries[2].Start > seed.Entries[1].Start) {
		t.Fatalf("appended arrivals must sort last: %+v", seed.Entries)
	}
	// No overlap with the previous plan: no seed at all.
	if got := s.reuseSeed([]*job.Job{jC, jD}); got != nil {
		t.Fatalf("seed from fully-departed plan = %+v, want nil", got)
	}
}

// Race-coverage target (run with -race in CI): an ILP-driven simulation
// with presolve on (the default), the cross-step cache on (the default),
// concurrent policy evaluation and the parallel branch and bound all at
// once. Assertions are minimal on purpose — the test exists to put every
// concurrent component on the same steps.
func TestILPRunParallelStepsWithPresolveAndCache(t *testing.T) {
	jobs := make([]*job.Job, 12)
	for i := range jobs {
		est := int64(60 + 30*(i%4))
		jobs[i] = &job.Job{
			ID: i + 1, Submit: int64(i) * 45, Width: 1 + i%3,
			Runtime: est, Estimate: est,
		}
	}
	ilp := ilpConfig(nil)
	ilp.Pipe.MIP.Workers = 4
	cfg := &Config{ParallelSteps: true, Metrics: obs.NewRegistry()}
	res, err := mustSim(t, trace(4, jobs...), ilp, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != len(jobs) {
		t.Fatalf("completed %d/%d jobs", len(res.Completed), len(jobs))
	}
	if res.ILPSteps == 0 {
		t.Fatal("no ILP steps ran")
	}
	if res.ILPFallbacks != 0 {
		t.Fatalf("%d unexpected fallbacks: %+v", res.ILPFallbacks, res.Failures)
	}
}

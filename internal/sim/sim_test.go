package sim

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dynp"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func fcfsOnly() *dynp.Scheduler {
	return dynp.MustNew([]policy.Policy{policy.FCFS{}}, metrics.SLDwA{}, dynp.SimpleDecider{})
}

func standard() *dynp.Scheduler {
	return dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.AdvancedDecider{})
}

func trace(procs int, jobs ...*job.Job) *job.Trace {
	t := &job.Trace{Processors: procs, Jobs: jobs}
	t.SortBySubmit()
	return t
}

func j(id int, submit int64, width int, est, run int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: run}
}

func find(t *testing.T, r *Result, id int) CompletedJob {
	t.Helper()
	for _, c := range r.Completed {
		if c.Job.ID == id {
			return c
		}
	}
	t.Fatalf("job %d not completed", id)
	return CompletedJob{}
}

func TestSequentialExecution(t *testing.T) {
	// 2-proc machine, two 2-wide jobs: strictly sequential.
	tr := trace(2,
		j(1, 0, 2, 100, 100),
		j(2, 10, 2, 50, 50),
	)
	s, err := New(tr, fcfsOnly(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	c1, c2 := find(t, res, 1), find(t, res, 2)
	if c1.Start != 0 || c1.End != 100 {
		t.Fatalf("job 1 ran [%d,%d), want [0,100)", c1.Start, c1.End)
	}
	if c2.Start != 100 || c2.End != 150 {
		t.Fatalf("job 2 ran [%d,%d), want [100,150)", c2.Start, c2.End)
	}
	if res.Makespan != 150 {
		t.Fatalf("makespan = %d, want 150", res.Makespan)
	}
	if res.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (one per submission)", res.Steps)
	}
}

func TestEarlyCompletionPullsForward(t *testing.T) {
	// Job 1 estimates 100 but runs 40. With replanning on completion,
	// job 2 starts at 40, not at the estimated 100.
	tr := trace(2,
		j(1, 0, 2, 100, 40),
		j(2, 10, 2, 50, 50),
	)
	s, err := New(tr, fcfsOnly(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c2 := find(t, res, 2); c2.Start != 40 {
		t.Fatalf("job 2 start %d, want 40 (pulled forward)", c2.Start)
	}
}

func TestNoReplanOnCompletionWaitsForEstimate(t *testing.T) {
	tr := trace(2,
		j(1, 0, 2, 100, 40),
		j(2, 10, 2, 50, 50),
	)
	s, err := New(tr, fcfsOnly(), Config{ReplanOnCompletion: false})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c2 := find(t, res, 2); c2.Start != 100 {
		t.Fatalf("job 2 start %d, want 100 (estimated end of job 1)", c2.Start)
	}
}

func TestImplicitBackfillingInSimulation(t *testing.T) {
	// M=4: wide job (w=4) blocked behind a running 2-wide job; a narrow
	// 2-wide short job submitted later backfills immediately.
	tr := trace(4,
		j(1, 0, 2, 100, 100), // starts at 0, holds 2 procs
		j(2, 1, 4, 50, 50),   // must wait until 100
		j(3, 2, 2, 20, 20),   // backfills at 2
	)
	s, err := New(tr, fcfsOnly(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c3 := find(t, res, 3); c3.Start != 2 {
		t.Fatalf("job 3 start %d, want 2 (backfilled)", c3.Start)
	}
	if c2 := find(t, res, 2); c2.Start != 100 {
		t.Fatalf("job 2 start %d, want 100", c2.Start)
	}
}

func TestSelfTuningSwitchesOnBurst(t *testing.T) {
	// The machine is busy with a running job while a huge job and a burst
	// of tiny jobs pile up in the queue: FCFS would run the huge job
	// first, so SLDwA self-tuning must switch to SJF at some step.
	jobs := []*job.Job{
		j(1, 0, 4, 50, 50),       // occupies the machine
		j(2, 1, 4, 60000, 60000), // huge job, waits
	}
	for i := 3; i <= 13; i++ {
		jobs = append(jobs, j(i, int64(i), 4, 10, 10))
	}
	tr := trace(4, jobs...)
	s, err := New(tr, standard(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches == 0 {
		t.Fatalf("self-tuner never switched; policy use: %v", res.PolicyUse)
	}
	if res.PolicyUse["SJF"] == 0 {
		t.Fatalf("SJF never chosen on a short-job burst: %v", res.PolicyUse)
	}
}

func TestOnStepHook(t *testing.T) {
	tr := trace(4, j(1, 0, 2, 100, 100), j(2, 50, 2, 100, 100))
	var steps []*StepContext
	cfg := DefaultConfig()
	cfg.OnStep = func(sc *StepContext) { steps = append(steps, sc) }
	s, err := New(tr, standard(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(steps) != 2 {
		t.Fatalf("OnStep fired %d times, want 2", len(steps))
	}
	if steps[0].Submitted.ID != 1 || steps[1].Submitted.ID != 2 {
		t.Fatalf("step submitters wrong: %d, %d", steps[0].Submitted.ID, steps[1].Submitted.ID)
	}
	if len(steps[0].Waiting) != 1 {
		t.Fatalf("step 1 waiting = %d, want 1", len(steps[0].Waiting))
	}
	// Job 1 is running when job 2 arrives: waiting queue is only job 2,
	// and the base profile shows 2 procs busy until 100.
	if len(steps[1].Waiting) != 1 || steps[1].Waiting[0].ID != 2 {
		t.Fatalf("step 2 waiting wrong: %v", steps[1].Waiting)
	}
	if free := steps[1].Base.FreeAt(60); free != 2 {
		t.Fatalf("step 2 base profile FreeAt(60) = %d, want 2", free)
	}
	if len(steps[1].Result.Evals) != 3 {
		t.Fatalf("step 2 has %d evaluations, want 3", len(steps[1].Result.Evals))
	}
}

func TestNewValidation(t *testing.T) {
	tr := trace(4, j(1, 0, 2, 10, 10))
	if _, err := New(tr, nil, DefaultConfig()); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := New(&job.Trace{}, fcfsOnly(), DefaultConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
	noProcs := trace(0, j(1, 0, 2, 10, 10))
	if _, err := New(noProcs, fcfsOnly(), DefaultConfig()); err == nil {
		t.Fatal("unknown machine size accepted")
	}
	// A job wider than the (overridden) machine is rejected by the
	// simulator itself when the trace does not record a machine size.
	wide := trace(0, j(1, 0, 8, 10, 10))
	if _, err := New(wide, fcfsOnly(), Config{Machine: 4, ReplanOnCompletion: true}); err == nil ||
		!strings.Contains(err.Error(), "wider") {
		t.Fatalf("over-wide job accepted: %v", err)
	}
	// A sufficiently large machine override makes the same trace runnable.
	s, err := New(wide, fcfsOnly(), Config{Machine: 16, ReplanOnCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestResultMetrics(t *testing.T) {
	tr := trace(2,
		j(1, 0, 2, 100, 100), // resp 100, wait 0, sld 1
		j(2, 0, 2, 100, 100), // resp 200, wait 100, sld 2
	)
	s, _ := New(tr, fcfsOnly(), DefaultConfig())
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res.MeanResponseTime(); got != 150 {
		t.Fatalf("mean response = %v, want 150", got)
	}
	if got := res.MeanWaitTime(); got != 50 {
		t.Fatalf("mean wait = %v, want 50", got)
	}
	if got := res.MeanSlowdown(); got != 1.5 {
		t.Fatalf("mean slowdown = %v, want 1.5", got)
	}
	if got := res.SlowdownWeightedByArea(); got != 1.5 {
		t.Fatalf("SLDwA = %v, want 1.5 (equal areas)", got)
	}
	if got := res.Utilization(2); got != 1.0 {
		t.Fatalf("utilization = %v, want 1.0 (back-to-back)", got)
	}
	empty := &Result{}
	if empty.MeanResponseTime() != 0 || empty.MeanSlowdown() != 0 ||
		empty.MeanWaitTime() != 0 || empty.SlowdownWeightedByArea() != 0 ||
		empty.Utilization(4) != 0 {
		t.Fatal("empty result metrics not zero")
	}
}

func TestSelfTuneOnCompletion(t *testing.T) {
	tr := trace(2,
		j(1, 0, 2, 100, 40),
		j(2, 10, 2, 50, 50),
	)
	s, err := New(tr, standard(), Config{ReplanOnCompletion: true, SelfTuneOnCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2 submissions + 1 completion with a non-empty queue = 3 steps.
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
	if c2 := find(t, res, 2); c2.Start != 40 {
		t.Fatalf("job 2 start %d, want 40", c2.Start)
	}
}

// verifyCapacity rebuilds the actual usage from completion records and
// fails if the machine was ever over-committed or a job started before
// submission.
func verifyCapacity(t *testing.T, res *Result, procs int) {
	t.Helper()
	p := machine.New(procs, 0)
	for _, c := range res.Completed {
		if c.Start < c.Job.Submit {
			t.Fatalf("job %d started at %d before submission %d", c.Job.ID, c.Start, c.Job.Submit)
		}
		if c.End != c.Start+c.Job.Runtime {
			t.Fatalf("job %d ran %d seconds, runtime is %d", c.Job.ID, c.End-c.Start, c.Job.Runtime)
		}
		if err := p.Reserve(c.Start, c.End, c.Job.Width); err != nil {
			t.Fatalf("capacity violated by job %d: %v", c.Job.ID, err)
		}
	}
}

func TestCapacityNeverViolated(t *testing.T) {
	tr, err := workload.Generate(workload.CTC(), 300, 21)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, standard(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 300 {
		t.Fatalf("completed %d of 300 jobs", len(res.Completed))
	}
	verifyCapacity(t, res, tr.Processors)
}

// Property: random small traces always complete every job exactly once
// with no capacity violation, under every decider/replan configuration.
func TestSimulationInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		n := r.Intn(25) + 1
		procs := r.Intn(15) + 2
		tr := &job.Trace{Processors: procs}
		var clock int64
		for i := 0; i < n; i++ {
			clock += int64(r.Intn(200))
			run := int64(r.Intn(500) + 1)
			est := run + int64(r.Intn(300))
			tr.Jobs = append(tr.Jobs, j(i+1, clock, r.Intn(procs)+1, est, run))
		}
		for _, cfg := range []Config{
			{ReplanOnCompletion: true},
			{ReplanOnCompletion: false},
			{ReplanOnCompletion: true, SelfTuneOnCompletion: true},
		} {
			s, err := New(tr, standard(), cfg)
			if err != nil {
				return false
			}
			res, err := s.Run()
			if err != nil {
				return false
			}
			if len(res.Completed) != n {
				return false
			}
			p := machine.New(procs, 0)
			for _, c := range res.Completed {
				if c.Start < c.Job.Submit {
					return false
				}
				if p.Reserve(c.Start, c.End, c.Job.Width) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSimulate300CTCJobs(b *testing.B) {
	tr, err := workload.Generate(workload.CTC(), 300, 5)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := New(tr, standard(), DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQueueDepthStats(t *testing.T) {
	// Job 1 starts immediately (depth 1 at its step); jobs 2 and 3 queue
	// behind it (depths 1 and 2): max 2, mean 4/3.
	tr := trace(2,
		j(1, 0, 2, 1000, 1000),
		j(2, 1, 2, 10, 10),
		j(3, 2, 2, 10, 10),
	)
	s, err := New(tr, fcfsOnly(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxQueueDepth != 2 {
		t.Fatalf("MaxQueueDepth = %d, want 2", res.MaxQueueDepth)
	}
	if got := res.MeanQueueDepth(); got != 4.0/3.0 {
		t.Fatalf("MeanQueueDepth = %v, want 4/3", got)
	}
	if (&Result{}).MeanQueueDepth() != 0 {
		t.Fatal("empty result mean queue depth not 0")
	}
}

func TestAdvanceReservationBlocksCapacity(t *testing.T) {
	// Machine of 4 with a full-width reservation on [50, 150): a job
	// submitted at 0 with estimate 100 cannot overlap the window, so it
	// must start after the reservation ends (it cannot finish by 50).
	tr := trace(4, j(1, 0, 4, 100, 100))
	cfg := Config{ReplanOnCompletion: true,
		Reservations: []Reservation{{Start: 50, End: 150, Width: 4}}}
	s, err := New(tr, fcfsOnly(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 1); c.Start != 150 {
		t.Fatalf("job start %d, want 150 (after the reservation)", c.Start)
	}
}

func TestShortJobFitsBeforeReservation(t *testing.T) {
	// A 40 s job fits entirely before the [50, 150) reservation.
	tr := trace(4, j(1, 0, 4, 40, 40))
	cfg := Config{ReplanOnCompletion: true,
		Reservations: []Reservation{{Start: 50, End: 150, Width: 4}}}
	s, err := New(tr, fcfsOnly(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 1); c.Start != 0 {
		t.Fatalf("job start %d, want 0 (fits before the reservation)", c.Start)
	}
}

func TestPartialWidthReservation(t *testing.T) {
	// Reservation takes 2 of 4 processors forever-ish: a 2-wide job can
	// run beside it, a 3-wide job must wait until it ends.
	tr := trace(4,
		j(1, 0, 2, 100, 100),
		j(2, 0, 3, 50, 50),
	)
	cfg := Config{ReplanOnCompletion: true,
		Reservations: []Reservation{{Start: 0, End: 1000, Width: 2}}}
	s, err := New(tr, fcfsOnly(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 1); c.Start != 0 {
		t.Fatalf("narrow job start %d, want 0", c.Start)
	}
	if c := find(t, res, 2); c.Start != 1000 {
		t.Fatalf("wide job start %d, want 1000", c.Start)
	}
}

func TestReservationValidation(t *testing.T) {
	tr := trace(4, j(1, 0, 2, 10, 10))
	bad := []Config{
		{ReplanOnCompletion: true, Reservations: []Reservation{{Start: 10, End: 5, Width: 1}}},
		{ReplanOnCompletion: true, Reservations: []Reservation{{Start: 0, End: 5, Width: 0}}},
		{ReplanOnCompletion: true, Reservations: []Reservation{{Start: 0, End: 5, Width: 9}}},
		{ReplanOnCompletion: true, Reservations: []Reservation{{Start: -3, End: 5, Width: 1}}},
	}
	for i, cfg := range bad {
		if _, err := New(tr, fcfsOnly(), cfg); err == nil {
			t.Fatalf("bad reservation config %d accepted", i)
		}
	}
}

// Reproducibility: two simulations of the same trace must agree event for
// event — the determinism the whole harness rests on.
func TestSimulationDeterminism(t *testing.T) {
	tr, err := workload.Generate(workload.CTC(), 150, 99)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		s, err := New(tr, standard(), DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if len(a.Completed) != len(b.Completed) || a.Switches != b.Switches ||
		a.Makespan != b.Makespan {
		t.Fatal("runs diverged at the summary level")
	}
	byID := func(r *Result) map[int]CompletedJob {
		m := map[int]CompletedJob{}
		for _, c := range r.Completed {
			m[c.Job.ID] = c
		}
		return m
	}
	ma, mb := byID(a), byID(b)
	for id, ca := range ma {
		cb := mb[id]
		if ca.Start != cb.Start || ca.End != cb.End {
			t.Fatalf("job %d diverged: [%d,%d) vs [%d,%d)", id, ca.Start, ca.End, cb.Start, cb.End)
		}
	}
}

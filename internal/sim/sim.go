// Package sim is the discrete event simulator of a planning-based
// resource management system (the paper's CCS) driven by the self-tuning
// dynP scheduler. At every job submission a self-tuning step replans the
// complete future resource usage with estimated durations; newly planned
// jobs whose start time equals the current instant begin executing
// immediately, so "backfilling is done implicitly". Jobs run for their
// *actual* runtime; when a job finishes early the plan is rebuilt with the
// active policy, pulling waiting jobs forward — exactly the behaviour of a
// planning-based RMS.
package sim

import (
	"container/heap"
	"context"
	"fmt"
	"sort"

	"repro/internal/dynp"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
)

// eventKind orders simultaneous events: completions free resources before
// plan-driven starts consume them, and submissions replan last.
type eventKind int

const (
	evEnd eventKind = iota
	evStart
	evSubmit
)

type event struct {
	time int64
	kind eventKind
	seq  int // FIFO tie-break for determinism
	job  *job.Job
	ver  int // plan version for evStart; stale starts are ignored
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// CompletedJob records one finished job.
type CompletedJob struct {
	Job   *job.Job
	Start int64
	End   int64 // Start + actual runtime
}

// ResponseTime returns the actual response time End - Submit.
func (c CompletedJob) ResponseTime() int64 { return c.End - c.Job.Submit }

// WaitTime returns Start - Submit.
func (c CompletedJob) WaitTime() int64 { return c.Start - c.Job.Submit }

// Slowdown returns the actual slowdown (response / runtime).
func (c CompletedJob) Slowdown() float64 {
	return float64(c.ResponseTime()) / float64(c.Job.Runtime)
}

// StepContext is passed to the OnStep hook after every self-tuning step.
// It lets observers (the CPLEX-style comparator of internal/core) see the
// exact quasi off-line instance of the step without influencing the
// simulation, as the paper prescribes ("although these schedules are
// available, they are not used for the actual scheduling").
type StepContext struct {
	// Now is the step instant (the submission time).
	Now int64
	// Submitted is the job whose arrival triggered the step.
	Submitted *job.Job
	// Waiting is a snapshot of the waiting queue including Submitted.
	Waiting []*job.Job
	// Base is the machine profile of the running jobs (estimate-based),
	// i.e. the machine history of the step. Observers may clone it but
	// must not modify it.
	Base *machine.Profile
	// Result is the self-tuning outcome (all policy schedules and the
	// decider's choice).
	Result *dynp.StepResult
	// ILP, non-nil only in ILP-driven runs (Config.ILP), carries the
	// step's solve-pipeline outcome and whether the step degraded to the
	// basic-policy schedule.
	ILP *ILPStepInfo
}

// ILPStepInfo is the solve-pipeline provenance of one ILP-driven step.
type ILPStepInfo struct {
	// Outcome is the full retry-ladder record of the step's solve.
	Outcome *solvepipe.Outcome
	// Fallback reports that the pipeline produced no schedule and the
	// step adopted the chosen basic-policy schedule instead.
	Fallback bool
}

// StepFailure is the per-step failure provenance of an ILP-driven run:
// one record per step that fell back to the basic-policy schedule.
type StepFailure struct {
	// Time is the step instant.
	Time int64
	// Kind classifies the terminal failure of the retry ladder.
	Kind solvepipe.FailureKind
	// Attempts is the number of ladder rungs tried.
	Attempts int
	// Err is the terminal error text.
	Err string
}

// ILPConfig makes the simulation adopt solve-pipeline schedules: every
// self-tuning step extracts the quasi off-line instance and solves the
// time-indexed ILP through the internal/solvepipe retry ladder; the
// compacted optimal schedule replaces the basic-policy schedule. (The
// paper computes these schedules observationally; this mode is the
// "what if CPLEX actually drove the machine" experiment, which is only
// viable with the fault tolerance this configuration provides.)
type ILPConfig struct {
	// Pipe parameterizes the retry ladder. Pipe.Trace/Pipe.Metrics
	// default to the simulation's sinks; Pipe.Seed defaults per step to
	// the chosen basic-policy schedule.
	Pipe solvepipe.Config
	// Fallback degrades a step whose ladder is exhausted to the chosen
	// basic-policy schedule (recorded in Result.Failures and the
	// "solve.fallback" trace event). When false such a step aborts the
	// simulation — only sensible in experiments that must not degrade.
	Fallback bool
	// StepCacheOff disables the cross-step solution cache. By default
	// every ILP-driven run carries a solvepipe.StepCache: steps whose
	// relative instance fingerprint matches an already-solved one adopt
	// the rebased cached schedule without building or solving a model.
	// Only successful solves populate the cache (a fallback step cannot
	// poison it), and each hit is re-validated against the live profile.
	StepCacheOff bool
	// StepCacheSize overrides the cache capacity (default 64 entries).
	StepCacheSize int
	// ReuseOff disables seeding each step's branch and bound with the
	// previous step's compacted ILP schedule (on by default; the seed is
	// only an incumbent candidate and never changes the proven optimum).
	ReuseOff bool
}

// Reservation is an advance reservation: Width processors are promised to
// an external party on [Start, End) and are unavailable to batch jobs.
// Supporting these is the planning-based RMS capability the paper
// highlights ("a request for a reservation is submitted ... an answer is
// expected immediately"); queueing systems cannot offer them.
type Reservation struct {
	Start, End int64
	Width      int
}

// Config parameterizes a simulation run.
type Config struct {
	// Machine is the processor count. If zero, the trace's count is used.
	Machine int
	// Reservations are advance reservations blocking capacity windows;
	// every plan is built around them.
	Reservations []Reservation
	// ReplanOnCompletion rebuilds the plan with the active policy when a
	// job finishes (early completions pull work forward). Planning-based
	// systems do this; disable only for experiments. Default true in New.
	ReplanOnCompletion bool
	// SelfTuneOnCompletion additionally runs a full self-tuning step on
	// completions (the paper tunes only at submissions). Default false.
	SelfTuneOnCompletion bool
	// OnStep, if non-nil, observes every self-tuning step.
	OnStep func(*StepContext)
	// ILP, if non-nil, drives every self-tuning step through the
	// fault-tolerant solve pipeline (see ILPConfig). Nil preserves the
	// paper's behaviour: the basic-policy schedule is always adopted.
	ILP *ILPConfig
	// MaxSteps aborts runaway simulations (0 = no limit).
	MaxSteps int
	// ParallelSteps makes every self-tuning step evaluate its candidate
	// policies concurrently (dynp.Scheduler.SetParallel). The simulated
	// results are identical — evaluations are independent and collected
	// positionally — it only changes wall-clock time.
	ParallelSteps bool
	// Trace, if non-nil, receives structured simulator events
	// (sim.submit, sim.start, sim.end, sim.replan, sim.selftune spans)
	// and is also attached to the scheduler (dynp.decision, dynp.switch).
	// Tracing never influences the simulation itself.
	Trace *obs.Tracer
	// Metrics, if non-nil, accumulates simulator counters and the
	// queue-depth histograms; it is also attached to the scheduler.
	Metrics *obs.Registry
}

// Result summarizes a simulation.
type Result struct {
	Completed []CompletedJob
	// Makespan is the end of the last job minus the first submission.
	Makespan int64
	// Steps and Switches are the dynP self-tuning statistics.
	Steps, Switches int
	// Replans counts plan rebuilds triggered by job completions (without
	// a self-tuning step).
	Replans int
	// PolicyUse counts self-tuning decisions per policy name.
	PolicyUse map[string]int
	// MaxQueueDepth is the largest waiting-queue length seen at a
	// self-tuning step, and QueueDepthSum the sum over all steps (so
	// QueueDepthSum/Steps is the average the paper quotes as ~22 for CTC).
	MaxQueueDepth int
	QueueDepthSum int
	// ILPSteps counts the steps driven through the solve pipeline
	// (ILP-driven runs only); ILPFallbacks of them degraded to the
	// basic-policy schedule and ILPRetries sums the retry rungs taken.
	ILPSteps, ILPFallbacks, ILPRetries int
	// ILPCacheHits counts the ILP steps answered by the cross-step
	// solution cache without building or solving a model, and
	// ILPReusedIncumbents the steps whose branch-and-bound incumbent came
	// from the previous step's compacted schedule rather than the
	// basic-policy seed.
	ILPCacheHits, ILPReusedIncumbents int
	// Failures holds the per-step failure provenance of the fallbacks.
	Failures []StepFailure
}

// MeanQueueDepth returns the average waiting-queue length per
// self-tuning step.
func (r *Result) MeanQueueDepth() float64 {
	if r.Steps == 0 {
		return 0
	}
	return float64(r.QueueDepthSum) / float64(r.Steps)
}

// MeanResponseTime returns the average actual response time in seconds.
func (r *Result) MeanResponseTime() float64 {
	if len(r.Completed) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.Completed {
		s += float64(c.ResponseTime())
	}
	return s / float64(len(r.Completed))
}

// MeanWaitTime returns the average actual waiting time in seconds.
func (r *Result) MeanWaitTime() float64 {
	if len(r.Completed) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.Completed {
		s += float64(c.WaitTime())
	}
	return s / float64(len(r.Completed))
}

// MeanSlowdown returns the average actual slowdown.
func (r *Result) MeanSlowdown() float64 {
	if len(r.Completed) == 0 {
		return 0
	}
	var s float64
	for _, c := range r.Completed {
		s += c.Slowdown()
	}
	return s / float64(len(r.Completed))
}

// SlowdownWeightedByArea returns the actual SLDwA over the completed jobs.
func (r *Result) SlowdownWeightedByArea() float64 {
	var s, a float64
	for _, c := range r.Completed {
		area := float64(c.Job.ActualArea())
		s += c.Slowdown() * area
		a += area
	}
	if a == 0 {
		return 0
	}
	return s / a
}

// Utilization returns used processor-seconds / (machine * makespan).
func (r *Result) Utilization(machineSize int) float64 {
	if r.Makespan <= 0 || machineSize <= 0 {
		return 0
	}
	var a float64
	for _, c := range r.Completed {
		a += float64(c.Job.ActualArea())
	}
	return a / (float64(machineSize) * float64(r.Makespan))
}

// Simulator runs a trace against a dynP scheduler.
type Simulator struct {
	cfg       Config
	scheduler *dynp.Scheduler
	total     int

	ctx     context.Context
	clock   int64
	queue   eventQueue
	seq     int
	waiting map[int]*job.Job
	running map[int]*runningJob
	plan    map[int]int64 // waiting job ID -> planned start
	planVer int

	result Result

	// Cross-step reuse state (ILP-driven runs only).
	stepCache *solvepipe.StepCache
	lastILP   *schedule.Schedule // last successfully adopted ILP schedule

	// Observability sinks (all nil-safe no-ops when disabled).
	trace       *obs.Tracer
	cSubmits    *obs.Counter
	cStarts     *obs.Counter
	cEnds       *obs.Counter
	cReplans    *obs.Counter
	cFallbacks  *obs.Counter   // mip.fallbacks: ILP steps degraded to policy
	hQueueDepth *obs.Histogram // waiting-queue length per self-tuning step
	hEventDepth *obs.Histogram // event-loop (heap) depth per event
	// Labeled families of the ILP-driven path (bounded cardinality: the
	// label values are fixed outcome/failure-kind vocabularies).
	vStepOut  *obs.CounterVec // sim.step.outcome{outcome}: ok|cache_hit|fallback
	vFallback *obs.CounterVec // sim.fallback.by_cause{cause}: failure kind
}

type runningJob struct {
	job          *job.Job
	start        int64
	estimatedEnd int64
}

// New creates a simulator for the trace. The scheduler is used for every
// planning decision. ReplanOnCompletion defaults to true when cfg is the
// zero value (pass a non-zero cfg to control it explicitly).
func New(t *job.Trace, s *dynp.Scheduler, cfg Config) (*Simulator, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %v", err)
	}
	if s == nil {
		return nil, fmt.Errorf("sim: nil scheduler")
	}
	total := cfg.Machine
	if total == 0 {
		total = t.Processors
	}
	if total <= 0 {
		return nil, fmt.Errorf("sim: machine size unknown (set Config.Machine or Trace.Processors)")
	}
	for _, j := range t.Jobs {
		if j.Width > total {
			return nil, fmt.Errorf("sim: %v wider than machine (%d)", j, total)
		}
	}
	for _, rv := range cfg.Reservations {
		if rv.Width < 1 || rv.Width > total {
			return nil, fmt.Errorf("sim: reservation width %d outside [1, %d]", rv.Width, total)
		}
		if rv.End <= rv.Start || rv.Start < 0 {
			return nil, fmt.Errorf("sim: bad reservation window [%d, %d)", rv.Start, rv.End)
		}
	}
	sim := &Simulator{
		cfg:       cfg,
		scheduler: s,
		total:     total,
		waiting:   map[int]*job.Job{},
		running:   map[int]*runningJob{},
		plan:      map[int]int64{},
	}
	sim.result.PolicyUse = map[string]int{}
	if cfg.ILP != nil && !cfg.ILP.StepCacheOff && cfg.ILP.Pipe.Cache == nil {
		sim.stepCache = solvepipe.NewStepCache(cfg.ILP.StepCacheSize)
	}
	sim.trace = cfg.Trace
	if reg := cfg.Metrics; reg != nil {
		depthBounds := []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
		sim.cSubmits = reg.Counter("sim.submits")
		sim.cStarts = reg.Counter("sim.starts")
		sim.cEnds = reg.Counter("sim.completions")
		sim.cReplans = reg.Counter("sim.replans")
		sim.cFallbacks = reg.Counter("mip.fallbacks")
		sim.hQueueDepth = reg.Histogram("sim.queue_depth", depthBounds)
		sim.hEventDepth = reg.Histogram("sim.event_loop_depth", depthBounds)
		sim.vStepOut = reg.CounterVec("sim.step.outcome", "outcome")
		sim.vFallback = reg.CounterVec("sim.fallback.by_cause", "cause")
	}
	if cfg.Trace != nil || cfg.Metrics != nil {
		s.SetObs(cfg.Trace, cfg.Metrics)
	}
	if cfg.ParallelSteps {
		s.SetParallel(true)
	}
	for _, j := range t.Jobs {
		sim.push(event{time: j.Submit, kind: evSubmit, job: j})
	}
	return sim, nil
}

func (s *Simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.queue, e)
}

// baseProfile builds the machine history profile from the running jobs at
// the current clock, with estimated ends (the scheduler never sees actual
// runtimes).
func (s *Simulator) baseProfile() (*machine.Profile, error) {
	rs := make([]machine.Running, 0, len(s.running))
	for _, r := range s.running {
		rs = append(rs, machine.Running{JobID: r.job.ID, Width: r.job.Width, End: r.estimatedEnd})
	}
	h, err := machine.HistoryFromRunning(s.total, s.clock, rs)
	if err != nil {
		return nil, err
	}
	p := h.Profile(s.total)
	for _, rv := range s.cfg.Reservations {
		if rv.End <= s.clock {
			continue // already elapsed
		}
		start := rv.Start
		if start < s.clock {
			start = s.clock
		}
		if err := p.Reserve(start, rv.End, rv.Width); err != nil {
			return nil, fmt.Errorf("sim: reservation [%d,%d)x%d conflicts: %v",
				rv.Start, rv.End, rv.Width, err)
		}
	}
	return p, nil
}

func (s *Simulator) waitingSlice() []*job.Job {
	out := make([]*job.Job, 0, len(s.waiting))
	for _, j := range s.waiting {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// adoptPlan installs a new full schedule: it records planned starts,
// enqueues start events, and immediately starts jobs planned for now.
func (s *Simulator) adoptPlan(sch *schedule.Schedule) {
	s.planVer++
	s.plan = make(map[int]int64, len(sch.Entries))
	for _, e := range sch.Entries {
		s.plan[e.Job.ID] = e.Start
		if e.Start > s.clock {
			s.push(event{time: e.Start, kind: evStart, job: e.Job, ver: s.planVer})
		}
	}
	s.startDueJobs()
}

// startDueJobs starts every waiting job whose planned start is <= clock.
func (s *Simulator) startDueJobs() {
	// Deterministic order: by planned start, then ID.
	due := make([]*job.Job, 0, 4)
	for id, start := range s.plan {
		if start <= s.clock {
			if j, ok := s.waiting[id]; ok {
				due = append(due, j)
			}
		}
	}
	sort.Slice(due, func(i, k int) bool {
		if s.plan[due[i].ID] != s.plan[due[k].ID] {
			return s.plan[due[i].ID] < s.plan[due[k].ID]
		}
		return due[i].ID < due[k].ID
	})
	for _, j := range due {
		delete(s.waiting, j.ID)
		delete(s.plan, j.ID)
		r := &runningJob{job: j, start: s.clock, estimatedEnd: s.clock + j.Estimate}
		s.running[j.ID] = r
		s.push(event{time: s.clock + j.Runtime, kind: evEnd, job: j})
		s.cStarts.Inc()
		s.trace.Emit("sim.start",
			obs.Int("t", s.clock),
			obs.Int("job", int64(j.ID)),
			obs.Int("width", int64(j.Width)),
			obs.Int("wait", s.clock-j.Submit))
	}
}

// selfTune runs a self-tuning step and adopts the chosen schedule.
func (s *Simulator) selfTune(submitted *job.Job) error {
	base, err := s.baseProfile()
	if err != nil {
		return err
	}
	waiting := s.waitingSlice()
	s.hQueueDepth.Observe(float64(len(waiting)))
	span := s.trace.StartSpan("sim.selftune",
		obs.Int("t", s.clock),
		obs.Int("queue_depth", int64(len(waiting))))
	res, err := s.scheduler.Step(s.clock, base, waiting)
	if err != nil {
		span.End(obs.Str("status", "error"))
		return err
	}
	span.End(obs.Str("chosen", res.Chosen.Name()), obs.Bool("switched", res.Switched))
	s.result.Steps++
	if res.Switched {
		s.result.Switches++
	}
	s.result.PolicyUse[res.Chosen.Name()]++
	s.result.QueueDepthSum += len(waiting)
	if len(waiting) > s.result.MaxQueueDepth {
		s.result.MaxQueueDepth = len(waiting)
	}
	adopt := res.Schedule
	var ilp *ILPStepInfo
	if s.cfg.ILP != nil {
		adopt, ilp, err = s.ilpSchedule(res, waiting, base)
		if err != nil {
			return err
		}
	}
	if s.cfg.OnStep != nil {
		s.cfg.OnStep(&StepContext{
			Now: s.clock, Submitted: submitted, Waiting: waiting,
			Base: base, Result: res, ILP: ilp,
		})
	}
	s.adoptPlan(adopt)
	return nil
}

// ilpSchedule runs one step's quasi off-line instance through the solve
// pipeline and returns the schedule to adopt. On ladder exhaustion it
// degrades to the chosen basic-policy schedule (Config.ILP.Fallback) or
// aborts; a canceled context always aborts.
func (s *Simulator) ilpSchedule(res *dynp.StepResult, waiting []*job.Job, base *machine.Profile) (*schedule.Schedule, *ILPStepInfo, error) {
	var horizon int64
	for _, e := range res.Evals {
		if mk := e.Schedule.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	if horizon <= s.clock {
		return res.Schedule, nil, nil // every waiting job starts now
	}
	inst := &ilpsched.Instance{
		Now:     s.clock,
		Machine: base.Total(),
		Base:    base,
		Jobs:    waiting,
		Horizon: horizon,
	}
	pipe := s.cfg.ILP.Pipe
	if pipe.Trace == nil {
		pipe.Trace = s.trace
	}
	if pipe.Metrics == nil {
		pipe.Metrics = s.cfg.Metrics
	}
	if pipe.Seed == nil {
		pipe.Seed = res.Schedule
	}
	if pipe.Cache == nil {
		pipe.Cache = s.stepCache
	}
	if pipe.ReuseSeed == nil && !s.cfg.ILP.ReuseOff {
		pipe.ReuseSeed = s.reuseSeed(waiting)
	}
	out := solvepipe.Solve(s.ctx, pipe, inst)
	s.result.ILPSteps++
	s.result.ILPRetries += out.Retries()
	if out.CacheHit {
		s.result.ILPCacheHits++
	}
	if out.IncumbentReused {
		s.result.ILPReusedIncumbents++
	}
	info := &ILPStepInfo{Outcome: out}
	failKind, failErr := out.LastFailure(), out.Err
	if !out.Failed() {
		sch := out.Solution.Compacted
		if verr := sch.Validate(base); verr == nil {
			s.lastILP = sch
			if out.CacheHit {
				s.vStepOut.With("cache_hit").Inc()
			} else {
				s.vStepOut.With("ok").Inc()
			}
			return sch, info, nil
		} else {
			// A solver bug, not an instance property: degrade like any
			// other failure so one bad step cannot kill the run.
			failKind = solvepipe.FailError
			failErr = fmt.Errorf("sim: step at %d: infeasible ILP schedule: %v", s.clock, verr)
		}
	}
	if failKind == solvepipe.FailCanceled {
		return nil, nil, fmt.Errorf("sim: step at %d: %w", s.clock, failErr)
	}
	if !s.cfg.ILP.Fallback {
		return nil, nil, fmt.Errorf("sim: step at %d: solve pipeline failed: %w", s.clock, failErr)
	}
	info.Fallback = true
	s.lastILP = nil // a degraded step's schedule must never seed reuse
	s.result.ILPFallbacks++
	s.cFallbacks.Inc()
	s.vStepOut.With("fallback").Inc()
	s.vFallback.With(failKind.String()).Inc()
	s.result.Failures = append(s.result.Failures, StepFailure{
		Time: s.clock, Kind: failKind, Attempts: len(out.Attempts),
		Err: failErr.Error(),
	})
	s.trace.Emit("solve.fallback",
		obs.Int("t", s.clock),
		obs.Str("cause", failKind.String()),
		obs.Int("attempts", int64(len(out.Attempts))),
		obs.Str("policy", res.Chosen.Name()))
	return res.Schedule, info, nil
}

// reuseSeed derives a second incumbent candidate from the last adopted
// ILP schedule: its entries restricted to the jobs still waiting, with
// jobs that arrived since appended behind them in submission order. Only
// the relative order matters downstream (IncumbentFromSchedule and the
// presolve upper-bound seeds list-schedule in start order), so the
// appended entries just need starts that sort last.
func (s *Simulator) reuseSeed(waiting []*job.Job) *schedule.Schedule {
	if s.lastILP == nil || len(s.lastILP.Entries) == 0 {
		return nil
	}
	waitingByID := make(map[int]bool, len(waiting))
	for _, j := range waiting {
		waitingByID[j.ID] = true
	}
	seed := &schedule.Schedule{Policy: "reuse", Now: s.clock, Machine: s.total}
	kept := make(map[int]bool, len(s.lastILP.Entries))
	maxStart := s.clock
	for _, e := range s.lastILP.Entries {
		if !waitingByID[e.Job.ID] {
			continue // started or otherwise departed since
		}
		kept[e.Job.ID] = true
		seed.Entries = append(seed.Entries, e)
		if e.Start > maxStart {
			maxStart = e.Start
		}
	}
	if len(kept) == 0 {
		return nil // nothing of the old plan survives
	}
	fresh := make([]*job.Job, 0, len(waiting)-len(kept))
	for _, j := range waiting {
		if !kept[j.ID] {
			fresh = append(fresh, j)
		}
	}
	sort.Slice(fresh, func(i, k int) bool {
		if fresh[i].Submit != fresh[k].Submit {
			return fresh[i].Submit < fresh[k].Submit
		}
		return fresh[i].ID < fresh[k].ID
	})
	for k, j := range fresh {
		seed.Entries = append(seed.Entries, schedule.Entry{Job: j, Start: maxStart + int64(k) + 1})
	}
	return seed
}

// replan rebuilds the plan with the active policy, without self-tuning.
func (s *Simulator) replan() error {
	base, err := s.baseProfile()
	if err != nil {
		return err
	}
	s.result.Replans++
	s.cReplans.Inc()
	s.trace.Emit("sim.replan",
		obs.Int("t", s.clock),
		obs.Int("queue_depth", int64(len(s.waiting))),
		obs.Str("policy", s.scheduler.Current().Name()))
	sch, err := s.scheduler.Reschedule(s.clock, base, s.waitingSlice())
	if err != nil {
		return err
	}
	s.adoptPlan(sch)
	return nil
}

// Run executes the whole trace and returns the result.
func (s *Simulator) Run() (*Result, error) {
	return s.RunCtx(context.Background())
}

// cancelCheckEvery is the event interval between context checks in the
// run loop (the per-step solves check far more often via the pipeline).
const cancelCheckEvery = 64

// RunCtx is Run with cooperative cancellation: a done context stops the
// event loop at the next counter-gated checkpoint and hard-aborts any
// in-flight per-step solve.
func (s *Simulator) RunCtx(ctx context.Context) (*Result, error) {
	s.ctx = ctx
	var firstSubmit, lastEnd int64 = -1, 0
	steps := 0
	for s.queue.Len() > 0 {
		if steps%cancelCheckEvery == 0 && ctx.Err() != nil {
			return nil, fmt.Errorf("sim: run canceled: %w", context.Cause(ctx))
		}
		s.hEventDepth.Observe(float64(s.queue.Len()))
		e := heap.Pop(&s.queue).(event)
		if e.time < s.clock {
			return nil, fmt.Errorf("sim: time went backwards (%d < %d)", e.time, s.clock)
		}
		s.clock = e.time
		switch e.kind {
		case evEnd:
			r, ok := s.running[e.job.ID]
			if !ok {
				return nil, fmt.Errorf("sim: completion for job %d which is not running", e.job.ID)
			}
			delete(s.running, e.job.ID)
			done := CompletedJob{Job: r.job, Start: r.start, End: s.clock}
			s.result.Completed = append(s.result.Completed, done)
			s.cEnds.Inc()
			s.trace.Emit("sim.end",
				obs.Int("t", s.clock),
				obs.Int("job", int64(r.job.ID)),
				obs.Int("response", done.ResponseTime()),
				obs.Int("wait", done.WaitTime()))
			if s.clock > lastEnd {
				lastEnd = s.clock
			}
			if len(s.waiting) > 0 {
				if s.cfg.SelfTuneOnCompletion {
					if err := s.selfTune(nil); err != nil {
						return nil, err
					}
				} else if s.cfg.ReplanOnCompletion {
					if err := s.replan(); err != nil {
						return nil, err
					}
				}
			}
		case evStart:
			if e.ver != s.planVer {
				continue // superseded plan
			}
			s.startDueJobs()
		case evSubmit:
			if firstSubmit < 0 {
				firstSubmit = s.clock
			}
			s.waiting[e.job.ID] = e.job
			s.cSubmits.Inc()
			s.trace.Emit("sim.submit",
				obs.Int("t", s.clock),
				obs.Int("job", int64(e.job.ID)),
				obs.Int("width", int64(e.job.Width)),
				obs.Int("estimate", e.job.Estimate))
			if err := s.selfTune(e.job); err != nil {
				return nil, err
			}
		}
		steps++
		if s.cfg.MaxSteps > 0 && steps > s.cfg.MaxSteps {
			return nil, fmt.Errorf("sim: exceeded MaxSteps=%d", s.cfg.MaxSteps)
		}
	}
	if len(s.waiting) > 0 || len(s.running) > 0 {
		return nil, fmt.Errorf("sim: finished with %d waiting and %d running jobs",
			len(s.waiting), len(s.running))
	}
	if firstSubmit < 0 {
		firstSubmit = 0
	}
	s.result.Makespan = lastEnd - firstSubmit
	out := s.result
	return &out, nil
}

// DefaultConfig returns the paper's configuration: replan on completion,
// self-tune only at submissions.
func DefaultConfig() Config {
	return Config{ReplanOnCompletion: true}
}

package sim

import (
	"fmt"

	"repro/internal/table"
)

// PolicyCount is one policy's self-tuning usage count.
type PolicyCount struct {
	Policy string
	Count  int
}

// RunReport is a human-readable summary of a simulation run, rendered by
// cmd/dynpsim as aligned tables at exit.
type RunReport struct {
	Jobs           int
	Makespan       int64
	MeanResponse   float64
	MeanWait       float64
	MeanSlowdown   float64
	SLDwA          float64
	Utilization    float64
	Steps          int
	Switches       int
	Replans        int
	MaxQueueDepth  int
	MeanQueueDepth float64
	// PolicyUse lists the self-tuning decisions per policy in the given
	// order (policies the decider never chose appear with count 0).
	PolicyUse []PolicyCount
	// ILPSteps/ILPFallbacks/ILPRetries summarize the solve pipeline of
	// an ILP-driven run (all zero otherwise), and Failures carries the
	// per-step provenance of the degraded steps.
	ILPSteps     int
	ILPFallbacks int
	ILPRetries   int
	// ILPCacheHits/ILPReusedIncumbents are the cross-step reuse stats:
	// steps answered by the step cache without a solve, and steps whose
	// incumbent came from the previous step's schedule.
	ILPCacheHits        int
	ILPReusedIncumbents int
	Failures            []StepFailure
}

// Report summarizes the result. machineSize is the processor count used
// for utilization; policyOrder fixes the PolicyUse ordering (policies
// absent from the result appear with a zero count).
func (r *Result) Report(machineSize int, policyOrder []string) *RunReport {
	rr := &RunReport{
		Jobs:           len(r.Completed),
		Makespan:       r.Makespan,
		MeanResponse:   r.MeanResponseTime(),
		MeanWait:       r.MeanWaitTime(),
		MeanSlowdown:   r.MeanSlowdown(),
		SLDwA:          r.SlowdownWeightedByArea(),
		Utilization:    r.Utilization(machineSize),
		Steps:          r.Steps,
		Switches:       r.Switches,
		Replans:        r.Replans,
		MaxQueueDepth:  r.MaxQueueDepth,
		MeanQueueDepth: r.MeanQueueDepth(),
	}
	rr.ILPSteps = r.ILPSteps
	rr.ILPFallbacks = r.ILPFallbacks
	rr.ILPRetries = r.ILPRetries
	rr.ILPCacheHits = r.ILPCacheHits
	rr.ILPReusedIncumbents = r.ILPReusedIncumbents
	rr.Failures = append(rr.Failures, r.Failures...)
	for _, name := range policyOrder {
		rr.PolicyUse = append(rr.PolicyUse, PolicyCount{Policy: name, Count: r.PolicyUse[name]})
	}
	return rr
}

// String renders the report as two aligned tables (run metrics, then the
// per-policy self-tuning decisions).
func (rr *RunReport) String() string {
	t := table.New("metric", "value")
	t.Row("jobs completed", rr.Jobs)
	t.Row("makespan [s]", rr.Makespan)
	t.Row("mean response time [s]", fmt.Sprintf("%.1f", rr.MeanResponse))
	t.Row("mean wait time [s]", fmt.Sprintf("%.1f", rr.MeanWait))
	t.Row("mean slowdown", fmt.Sprintf("%.3f", rr.MeanSlowdown))
	t.Row("SLDwA", fmt.Sprintf("%.3f", rr.SLDwA))
	t.Row("utilization", fmt.Sprintf("%.3f", rr.Utilization))
	t.Row("self-tuning steps", rr.Steps)
	t.Row("policy switches", rr.Switches)
	t.Row("replans on completion", rr.Replans)
	t.Row("max queue depth", rr.MaxQueueDepth)
	t.Row("mean queue depth", fmt.Sprintf("%.1f", rr.MeanQueueDepth))
	if rr.ILPSteps > 0 {
		t.Row("ILP-driven steps", rr.ILPSteps)
		t.Row("ILP retries", rr.ILPRetries)
		t.Row("ILP fallbacks", rr.ILPFallbacks)
		t.Row("ILP step-cache hits", rr.ILPCacheHits)
		t.Row("ILP incumbents reused", rr.ILPReusedIncumbents)
	}
	out := t.String()
	if len(rr.PolicyUse) > 0 {
		use := table.New("policy", "times chosen")
		for _, pc := range rr.PolicyUse {
			use.Row(pc.Policy, pc.Count)
		}
		out += use.String()
	}
	if len(rr.Failures) > 0 {
		ft := table.New("step time", "failure", "attempts", "error")
		for _, f := range rr.Failures {
			ft.Row(f.Time, f.Kind.String(), f.Attempts, f.Err)
		}
		out += ft.String()
	}
	return out
}

package sim

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/job"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/solvepipe"
)

// wholeMachineTrace builds identical whole-machine jobs: every feasible
// schedule serializes them, so any two runs — ILP-driven, policy-driven,
// or a mix — produce the exact same start times and therefore the same
// SLDwA. That makes the fault-free run a byte-exact oracle for the
// faulted run's non-degraded steps.
func wholeMachineTrace(n int, procs int) *job.Trace {
	jobs := make([]*job.Job, n)
	for i := range jobs {
		jobs[i] = &job.Job{
			ID: i + 1, Submit: int64(i) * 60, Width: procs,
			Runtime: 100, Estimate: 100,
		}
	}
	return trace(procs, jobs...)
}

func ilpConfig(hook func(solvepipe.SolveFunc) solvepipe.SolveFunc) *ILPConfig {
	return &ILPConfig{
		Pipe: solvepipe.Config{
			Budget:     2 * time.Second,
			Retries:    0, // one solve call per step: call index == step index
			FixedScale: 50,
			MIP:        mip.Options{MaxNodes: 2000},
			Hook:       hook,
		},
		Fallback: true,
	}
}

// End-to-end acceptance: a run with 20% injected solve faults (timeouts
// + panics + infeasible) completes, degrades exactly the faulted steps,
// emits solve.fallback events and retry/fallback counters, and matches
// the fault-free run's SLDwA.
func TestILPRunWithInjectedFaults(t *testing.T) {
	const n = 24
	// Fault-free ILP-driven oracle run.
	clean, err := mustSim(t, wholeMachineTrace(n, 4), ilpConfig(nil), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if clean.ILPSteps == 0 || clean.ILPFallbacks != 0 || len(clean.Failures) != 0 {
		t.Fatalf("clean run: steps=%d fallbacks=%d failures=%d",
			clean.ILPSteps, clean.ILPFallbacks, len(clean.Failures))
	}

	// Faulted run: seeded 20% probability over all three failure kinds.
	inj := faultinject.New(faultinject.NewProbability(25, 0.20))
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	var stepTimes []int64
	var fallbackSteps []int64
	onStep := func(sc *StepContext) {
		stepTimes = append(stepTimes, sc.Now)
		if sc.ILP != nil && sc.ILP.Fallback {
			fallbackSteps = append(fallbackSteps, sc.Now)
		}
	}
	faulted, err := mustSim(t, wholeMachineTrace(n, 4), ilpConfig(inj.Hook),
		&Config{Trace: obs.NewTracer(&buf), Metrics: reg, OnStep: onStep}, nil)
	if err != nil {
		t.Fatalf("faulted run died: %v", err)
	}

	// The run completed every job despite the faults.
	if len(faulted.Completed) != n {
		t.Fatalf("faulted run completed %d/%d jobs", len(faulted.Completed), n)
	}
	injected := inj.Injected()
	if len(injected) == 0 {
		t.Fatal("seed injected no faults; pick another seed")
	}
	kinds := map[faultinject.Kind]int{}
	for _, r := range injected {
		kinds[r.Kind]++
	}
	for _, k := range []faultinject.Kind{faultinject.Timeout, faultinject.Panic, faultinject.Infeasible} {
		if kinds[k] == 0 {
			t.Fatalf("seed injected no %v faults (got %v); pick another seed", k, kinds)
		}
	}

	// Degradation happened on exactly the faulted steps: with zero
	// retries, solve call i belongs to step i, so the injected call
	// indices map one-to-one onto the recorded fallback steps.
	if faulted.ILPSteps != len(stepTimes) || faulted.ILPSteps != n {
		t.Fatalf("ILP steps %d, observed %d, submissions %d", faulted.ILPSteps, len(stepTimes), n)
	}
	if faulted.ILPFallbacks != len(injected) {
		t.Fatalf("%d fallbacks, %d injected faults", faulted.ILPFallbacks, len(injected))
	}
	if len(faulted.Failures) != len(injected) {
		t.Fatalf("%d failure records, %d injected faults", len(faulted.Failures), len(injected))
	}
	wantKind := map[faultinject.Kind]solvepipe.FailureKind{
		faultinject.Timeout:    solvepipe.FailTimeout,
		faultinject.Panic:      solvepipe.FailPanic,
		faultinject.Infeasible: solvepipe.FailInfeasible,
	}
	for i, rec := range injected {
		f := faulted.Failures[i]
		if want := stepTimes[rec.Call-1]; f.Time != want {
			t.Errorf("failure %d at step time %d, want %d (call %d)", i, f.Time, want, rec.Call)
		}
		if f.Kind != wantKind[rec.Kind] {
			t.Errorf("failure %d kind %v, want %v", i, f.Kind, wantKind[rec.Kind])
		}
		if fallbackSteps[i] != f.Time {
			t.Errorf("OnStep fallback %d at %d, want %d", i, fallbackSteps[i], f.Time)
		}
	}
	if len(fallbackSteps) != len(injected) {
		t.Fatalf("OnStep saw %d fallbacks, want %d", len(fallbackSteps), len(injected))
	}

	// Observability: one solve.fallback event per degraded step and the
	// mip.fallbacks/mip.retries counters.
	if got := strings.Count(buf.String(), `"ev":"solve.fallback"`); got != len(injected) {
		t.Errorf("%d solve.fallback events, want %d", got, len(injected))
	}
	if got := reg.Counter("mip.fallbacks").Value(); got != int64(len(injected)) {
		t.Errorf("mip.fallbacks = %d, want %d", got, len(injected))
	}
	if got := reg.Counter("mip.retries").Value(); got != 0 {
		t.Errorf("mip.retries = %d, want 0 with Retries=0", got)
	}

	// Identical-job serialization: degraded steps adopt the policy
	// schedule, which is start-time-identical to the ILP schedule, so
	// the faulted run's SLDwA must equal the fault-free oracle's.
	if c, f := clean.SlowdownWeightedByArea(), faulted.SlowdownWeightedByArea(); c != f {
		t.Errorf("SLDwA diverged: clean %v, faulted %v", c, f)
	}
	if clean.Makespan != faulted.Makespan {
		t.Errorf("makespan diverged: clean %d, faulted %d", clean.Makespan, faulted.Makespan)
	}
}

// The parallel branch and bound under injected faults must degrade
// exactly like the serial solver: the worker pool changes the node
// exploration order, not the retry-ladder or fallback semantics. Same
// seeded fault pattern as the serial test, same oracle equality.
func TestILPRunWithInjectedFaultsParallelSolver(t *testing.T) {
	const n = 24
	clean, err := mustSim(t, wholeMachineTrace(n, 4), ilpConfig(nil), nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	inj := faultinject.New(faultinject.NewProbability(25, 0.20))
	ilp := ilpConfig(inj.Hook)
	ilp.Pipe.MIP.Workers = 4
	reg := obs.NewRegistry()
	faulted, err := mustSim(t, wholeMachineTrace(n, 4), ilp, &Config{Metrics: reg}, nil)
	if err != nil {
		t.Fatalf("faulted parallel run died: %v", err)
	}

	if len(faulted.Completed) != n {
		t.Fatalf("faulted parallel run completed %d/%d jobs", len(faulted.Completed), n)
	}
	injected := inj.Injected()
	if len(injected) == 0 {
		t.Fatal("seed injected no faults; pick another seed")
	}
	if faulted.ILPFallbacks != len(injected) {
		t.Fatalf("%d fallbacks, %d injected faults", faulted.ILPFallbacks, len(injected))
	}
	if len(faulted.Failures) != len(injected) {
		t.Fatalf("%d failure records, %d injected faults", len(faulted.Failures), len(injected))
	}
	// Non-faulted steps solved with the 4-worker pool still serialize the
	// whole-machine jobs, so the SLDwA matches the serial fault-free run.
	if c, f := clean.SlowdownWeightedByArea(), faulted.SlowdownWeightedByArea(); c != f {
		t.Errorf("SLDwA diverged: clean serial %v, faulted parallel %v", c, f)
	}
	if clean.Makespan != faulted.Makespan {
		t.Errorf("makespan diverged: clean %d, faulted parallel %d", clean.Makespan, faulted.Makespan)
	}
	if got := reg.Counter("mip.fallbacks").Value(); got != int64(len(injected)) {
		t.Errorf("mip.fallbacks = %d, want %d", got, len(injected))
	}
}

// mustSim builds and runs a simulation with the standard scheduler.
func mustSim(t *testing.T, tr *job.Trace, ilp *ILPConfig, base *Config, _ any) (*Result, error) {
	t.Helper()
	cfg := DefaultConfig()
	if base != nil {
		cfg = *base
		cfg.ReplanOnCompletion = true
	}
	cfg.ILP = ilp
	s, err := New(tr, standard(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s.Run()
}

// Fallback=false propagates the first solve failure as a run error —
// the strict mode for experiments that must not degrade.
func TestILPRunStrictModeAborts(t *testing.T) {
	inj := faultinject.New(faultinject.NthCall{N: 3, Kind: faultinject.Timeout})
	ilp := ilpConfig(inj.Hook)
	ilp.Fallback = false
	_, err := mustSim(t, wholeMachineTrace(8, 4), ilp, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "solve pipeline failed") {
		t.Fatalf("strict run error = %v, want pipeline failure", err)
	}
}

package sim

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// TestSimulatorTraceEvents runs a CTC-like workload with tracing on and
// checks the JSONL stream carries the full event vocabulary, and that
// observing the run does not change its outcome.
func TestSimulatorTraceEvents(t *testing.T) {
	tr, err := workload.Generate(workload.CTC(), 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	s, err := New(tr, standard(), Config{
		ReplanOnCompletion: true,
		Trace:              obs.NewTracer(&buf),
		Metrics:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}

	types := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", line, err)
		}
		types[e["ev"].(string)]++
	}
	for _, want := range []string{
		"sim.submit", "sim.start", "sim.end", "sim.replan",
		"sim.selftune", "dynp.decision",
	} {
		if types[want] == 0 {
			t.Errorf("no %s events in trace (types: %v)", want, types)
		}
	}
	if types["sim.submit"] != len(tr.Jobs) {
		t.Errorf("sim.submit count %d != %d jobs", types["sim.submit"], len(tr.Jobs))
	}
	if types["sim.end"] != len(res.Completed) {
		t.Errorf("sim.end count %d != %d completions", types["sim.end"], len(res.Completed))
	}
	if res.Switches > 0 && types["dynp.switch"] != res.Switches {
		t.Errorf("dynp.switch count %d != %d switches", types["dynp.switch"], res.Switches)
	}
	if res.Replans == 0 {
		t.Error("Result.Replans = 0 on a replanning run")
	}
	if got := reg.Counter("sim.replans").Value(); got != int64(res.Replans) {
		t.Errorf("sim.replans counter = %d, want %d", got, res.Replans)
	}
	if got := reg.Counter("dynp.steps").Value(); got != int64(res.Steps) {
		t.Errorf("dynp.steps counter = %d, want %d", got, res.Steps)
	}
	if got := reg.Histogram("sim.queue_depth", nil).Count(); got != int64(res.Steps) {
		t.Errorf("queue-depth histogram samples = %d, want %d", got, res.Steps)
	}

	// The same workload without observers must produce the identical run.
	tr2, err := workload.Generate(workload.CTC(), 120, 11)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(tr2, standard(), Config{ReplanOnCompletion: true})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan || res.Steps != res2.Steps ||
		res.Switches != res2.Switches || res.Replans != res2.Replans ||
		!reflect.DeepEqual(res.PolicyUse, res2.PolicyUse) {
		t.Errorf("tracing changed the simulation: %+v vs %+v", res, res2)
	}
	if res.SlowdownWeightedByArea() != res2.SlowdownWeightedByArea() {
		t.Errorf("SLDwA differs with tracing: %g vs %g",
			res.SlowdownWeightedByArea(), res2.SlowdownWeightedByArea())
	}
}

func TestRunReportRendering(t *testing.T) {
	tr, err := workload.Generate(workload.CTC(), 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(tr, standard(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	rr := res.Report(tr.Processors, []string{"FCFS", "SJF", "LJF"})
	if rr.Jobs != len(res.Completed) || rr.Steps != res.Steps {
		t.Errorf("report fields wrong: %+v", rr)
	}
	out := rr.String()
	for _, want := range []string{"jobs completed", "SLDwA", "self-tuning steps", "replans on completion", "FCFS", "SJF", "LJF"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

package job

import (
	"strings"
	"testing"
	"testing/quick"
)

func valid(id int) *Job {
	return &Job{ID: id, Submit: int64(id) * 10, Width: 2, Estimate: 100, Runtime: 80}
}

func TestValidateOK(t *testing.T) {
	if err := valid(1).Validate(); err != nil {
		t.Fatalf("valid job rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Job)
		want string
	}{
		{"zero id", func(j *Job) { j.ID = 0 }, "non-positive ID"},
		{"negative submit", func(j *Job) { j.Submit = -1 }, "negative submit"},
		{"zero width", func(j *Job) { j.Width = 0 }, "width"},
		{"zero estimate", func(j *Job) { j.Estimate = 0 }, "estimate"},
		{"zero runtime", func(j *Job) { j.Runtime = 0 }, "runtime"},
		{"runtime over estimate", func(j *Job) { j.Runtime = j.Estimate + 1 }, "exceeds estimate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := valid(1)
			c.mut(j)
			err := j.Validate()
			if err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestArea(t *testing.T) {
	j := &Job{ID: 1, Width: 8, Estimate: 3600, Runtime: 1800}
	if got := j.Area(); got != 8*3600 {
		t.Fatalf("Area = %d, want %d", got, 8*3600)
	}
	if got := j.ActualArea(); got != 8*1800 {
		t.Fatalf("ActualArea = %d, want %d", got, 8*1800)
	}
}

func TestTraceValidate(t *testing.T) {
	tr := &Trace{Jobs: []*Job{valid(1), valid(2)}, Processors: 16}
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}

	empty := &Trace{}
	if err := empty.Validate(); err != ErrEmptyTrace {
		t.Fatalf("empty trace: got %v, want ErrEmptyTrace", err)
	}

	dup := &Trace{Jobs: []*Job{valid(1), valid(1)}}
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate IDs not rejected: %v", err)
	}

	unsorted := &Trace{Jobs: []*Job{valid(2), valid(1)}}
	if err := unsorted.Validate(); err == nil || !strings.Contains(err.Error(), "not sorted") {
		t.Fatalf("unsorted trace not rejected: %v", err)
	}

	tooWide := &Trace{Jobs: []*Job{valid(1)}, Processors: 1}
	if err := tooWide.Validate(); err == nil || !strings.Contains(err.Error(), "exceeds machine size") {
		t.Fatalf("over-wide job not rejected: %v", err)
	}
}

func TestSortBySubmit(t *testing.T) {
	a, b, c := valid(3), valid(1), valid(2)
	a.Submit, b.Submit, c.Submit = 5, 5, 1
	tr := &Trace{Jobs: []*Job{a, b, c}}
	tr.SortBySubmit()
	if tr.Jobs[0] != c || tr.Jobs[1] != b || tr.Jobs[2] != a {
		t.Fatalf("sort order wrong: %v %v %v", tr.Jobs[0].ID, tr.Jobs[1].ID, tr.Jobs[2].ID)
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("sorted trace invalid: %v", err)
	}
}

func TestMeanInterarrival(t *testing.T) {
	tr := &Trace{Jobs: []*Job{valid(1), valid(2), valid(3)}}
	tr.Jobs[0].Submit, tr.Jobs[1].Submit, tr.Jobs[2].Submit = 0, 100, 400
	if got := tr.MeanInterarrival(); got != 200 {
		t.Fatalf("MeanInterarrival = %v, want 200", got)
	}
	one := &Trace{Jobs: []*Job{valid(1)}}
	if got := one.MeanInterarrival(); got != 0 {
		t.Fatalf("single-job interarrival = %v, want 0", got)
	}
}

func TestAccumulatedRuntime(t *testing.T) {
	jobs := []*Job{valid(1), valid(2)}
	jobs[0].Estimate, jobs[1].Estimate = 100, 250
	if got := AccumulatedRuntime(jobs); got != 350 {
		t.Fatalf("AccumulatedRuntime = %d, want 350", got)
	}
}

func TestClone(t *testing.T) {
	tr := &Trace{Jobs: []*Job{valid(1)}, Processors: 4, Note: "x"}
	cp := tr.Clone()
	cp.Jobs[0].Width = 99
	if tr.Jobs[0].Width == 99 {
		t.Fatal("Clone shares job memory with the original")
	}
	if cp.Processors != 4 || cp.Note != "x" {
		t.Fatal("Clone lost metadata")
	}
}

// Property: Area is always Width*Estimate and non-negative for valid jobs.
func TestAreaProperty(t *testing.T) {
	f := func(w uint8, est uint16) bool {
		j := &Job{ID: 1, Width: int(w%64) + 1, Estimate: int64(est%10000) + 1}
		j.Runtime = j.Estimate
		return j.Area() == int64(j.Width)*j.Estimate && j.Area() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SortBySubmit always yields a trace that passes the ordering
// part of Validate.
func TestSortProperty(t *testing.T) {
	f := func(subs []uint16) bool {
		if len(subs) == 0 {
			return true
		}
		tr := &Trace{}
		for i, s := range subs {
			j := valid(i + 1)
			j.Submit = int64(s)
			tr.Jobs = append(tr.Jobs, j)
		}
		tr.SortBySubmit()
		return tr.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

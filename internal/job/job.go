// Package job defines the parallel-job model used throughout the
// reproduction: rigid jobs with a width (number of requested processors),
// an estimated duration, an actual runtime, and a submission time.
//
// The paper describes jobs by three values: the number of requested
// resources w_i (width), the estimated duration d_i, and the submission
// time s_i. Planning-based resource management systems require runtime
// estimates, so all *planning* (schedule construction, the ILP model) uses
// Estimate; the discrete event simulation additionally carries the actual
// Runtime so that jobs can finish early, exactly as in a real system.
package job

import (
	"errors"
	"fmt"
	"sort"
)

// Job is a rigid parallel job.
//
// All times are in integer seconds, the smallest time step of the resource
// management systems the paper considers.
type Job struct {
	// ID is a unique, positive identifier (the SWF job number).
	ID int

	// Submit is the submission time s_i in seconds since the start of
	// the trace.
	Submit int64

	// Width is the number of requested processors w_i. Width >= 1.
	Width int

	// Estimate is the user-supplied estimated duration d_i in seconds.
	// Planning-based systems schedule with this value. Estimate >= 1.
	Estimate int64

	// Runtime is the actual duration in seconds. In a well-formed trace
	// 1 <= Runtime <= Estimate; systems kill jobs that exceed their
	// estimate. Runtime is only consulted by the simulator when a job
	// completes.
	Runtime int64

	// User and Group optionally identify the submitting user/group
	// (SWF fields); they are carried for workload analysis but have no
	// scheduling semantics.
	User, Group int
}

// Area returns the estimated resource consumption Width * Estimate
// ("job area"), the weight used by the SLDwA metric.
func (j *Job) Area() int64 { return int64(j.Width) * j.Estimate }

// ActualArea returns Width * Runtime.
func (j *Job) ActualArea() int64 { return int64(j.Width) * j.Runtime }

// Validate reports whether the job is internally consistent.
func (j *Job) Validate() error {
	switch {
	case j.ID <= 0:
		return fmt.Errorf("job %d: non-positive ID", j.ID)
	case j.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %d", j.ID, j.Submit)
	case j.Width < 1:
		return fmt.Errorf("job %d: width %d < 1", j.ID, j.Width)
	case j.Estimate < 1:
		return fmt.Errorf("job %d: estimate %d < 1", j.ID, j.Estimate)
	case j.Runtime < 1:
		return fmt.Errorf("job %d: runtime %d < 1", j.ID, j.Runtime)
	case j.Runtime > j.Estimate:
		return fmt.Errorf("job %d: runtime %d exceeds estimate %d", j.ID, j.Runtime, j.Estimate)
	}
	return nil
}

func (j *Job) String() string {
	return fmt.Sprintf("job %d (submit=%d width=%d est=%d run=%d)",
		j.ID, j.Submit, j.Width, j.Estimate, j.Runtime)
}

// ErrEmptyTrace is returned by trace validation for zero-length traces.
var ErrEmptyTrace = errors.New("job: empty trace")

// Trace is a workload: a sequence of jobs ordered by submission time.
type Trace struct {
	// Jobs in non-decreasing submission order.
	Jobs []*Job
	// Processors is the machine size the trace was recorded on (SWF
	// MaxProcs). Zero means unknown.
	Processors int
	// Note is a free-form description (trace file name, generator
	// parameters, ...).
	Note string
}

// Validate checks every job and the submission ordering.
func (t *Trace) Validate() error {
	if len(t.Jobs) == 0 {
		return ErrEmptyTrace
	}
	seen := make(map[int]bool, len(t.Jobs))
	for i, j := range t.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if seen[j.ID] {
			return fmt.Errorf("job: duplicate ID %d", j.ID)
		}
		seen[j.ID] = true
		if i > 0 && j.Submit < t.Jobs[i-1].Submit {
			return fmt.Errorf("job: trace not sorted by submit time at index %d (job %d)", i, j.ID)
		}
		if t.Processors > 0 && j.Width > t.Processors {
			return fmt.Errorf("job %d: width %d exceeds machine size %d", j.ID, j.Width, t.Processors)
		}
	}
	return nil
}

// SortBySubmit sorts the trace by (Submit, ID). Generators and parsers call
// it so that Validate's ordering requirement holds.
func (t *Trace) SortBySubmit() {
	sort.Slice(t.Jobs, func(a, b int) bool {
		if t.Jobs[a].Submit != t.Jobs[b].Submit {
			return t.Jobs[a].Submit < t.Jobs[b].Submit
		}
		return t.Jobs[a].ID < t.Jobs[b].ID
	})
}

// TotalArea returns the summed estimated area of all jobs.
func (t *Trace) TotalArea() int64 {
	var a int64
	for _, j := range t.Jobs {
		a += j.Area()
	}
	return a
}

// AccumulatedRuntime returns the sum of estimated durations, the
// "accumulated run time" input of the paper's Eq. 6.
func AccumulatedRuntime(jobs []*Job) int64 {
	var d int64
	for _, j := range jobs {
		d += j.Estimate
	}
	return d
}

// MeanInterarrival returns the mean time between consecutive submissions
// (0 for traces with fewer than two jobs). The paper quotes 369 s for CTC.
func (t *Trace) MeanInterarrival() float64 {
	if len(t.Jobs) < 2 {
		return 0
	}
	span := t.Jobs[len(t.Jobs)-1].Submit - t.Jobs[0].Submit
	return float64(span) / float64(len(t.Jobs)-1)
}

// Clone returns a deep copy of the trace.
func (t *Trace) Clone() *Trace {
	out := &Trace{Processors: t.Processors, Note: t.Note, Jobs: make([]*Job, len(t.Jobs))}
	for i, j := range t.Jobs {
		cp := *j
		out.Jobs[i] = &cp
	}
	return out
}

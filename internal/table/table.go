// Package table renders aligned plain-text tables for the benchmark
// harness output (Table 1 and the ablation tables).
package table

import (
	"fmt"
	"strings"
)

// Table accumulates rows of cells and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
	// seps marks row indices after which a separator line is drawn.
	seps map[int]bool
}

// New creates a table with the given header cells.
func New(header ...string) *Table {
	return &Table{header: header, seps: map[int]bool{}}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Separator draws a horizontal rule after the last added row (or after
// the header if no rows exist yet).
func (t *Table) Separator() {
	t.seps[len(t.rows)] = true
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	rule := func() {
		total := 0
		for _, w := range width {
			total += w
		}
		total += 2 * (cols - 1)
		b.WriteString(strings.Repeat("-", total))
		b.WriteByte('\n')
	}
	if len(t.header) > 0 {
		writeRow(t.header)
		rule()
	}
	if t.seps[0] {
		rule()
	}
	for i, r := range t.rows {
		writeRow(r)
		if t.seps[i+1] {
			rule()
		}
	}
	return b.String()
}

package table

import (
	"strings"
	"testing"
)

func TestRendering(t *testing.T) {
	tb := New("a", "bbb")
	tb.Row(1, 2.5)
	tb.Row("xx", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "a") || !strings.Contains(lines[0], "bbb") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-") {
		t.Fatalf("missing rule: %q", lines[1])
	}
	if !strings.Contains(lines[2], "2.500") {
		t.Fatalf("float formatting wrong: %q", lines[2])
	}
	// All data lines have identical width.
	if len(lines[0]) != len(lines[2]) || len(lines[2]) != len(lines[3]) {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestSeparators(t *testing.T) {
	tb := New("x")
	tb.Row(1)
	tb.Separator()
	tb.Row(2)
	out := tb.String()
	if strings.Count(out, "-") < 2 {
		t.Fatalf("separator missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("expected 5 lines, got %d:\n%s", len(lines), out)
	}
}

func TestRaggedRows(t *testing.T) {
	tb := New("a")
	tb.Row(1, 2, 3) // more cells than header
	out := tb.String()
	if !strings.Contains(out, "3") {
		t.Fatalf("extra cells dropped:\n%s", out)
	}
}

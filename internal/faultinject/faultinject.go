// Package faultinject is a deterministic fault-injection harness for
// the solve pipeline: it wraps a solvepipe.SolveFunc with middleware
// that injects timeout, panic, infeasible and slow-solve faults on a
// seeded schedule, emulating the exact failure shapes the real solver
// produces so that the pipeline's genuine classification and recovery
// paths run — not test doubles of them.
//
// Injection decisions depend only on the (1-based) call index and the
// seed, never on wall-clock time, so a faulted run is reproducible
// call-for-call and a test can assert that degradation happened on
// exactly the faulted steps.
package faultinject

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/ilpsched"
	"repro/internal/mip"
	"repro/internal/solvepipe"
	"repro/internal/stats"
)

// Kind is the type of an injected fault.
type Kind int

const (
	// Timeout emulates a rung whose budget ran out before any incumbent
	// was found: a *ilpsched.NoScheduleError with a deadline-hit result.
	Timeout Kind = iota
	// Panic panics inside the solve call; solvepipe must recover it.
	Panic
	// Infeasible emulates a proven-infeasible grid instance.
	Infeasible
	// SlowSolve sleeps the injector's Delay (honoring the context) and
	// then delegates to the real solve. It is a latency fault, not a
	// failure: the solve still succeeds unless the budget or context
	// cuts it off.
	SlowSolve
)

func (k Kind) String() string {
	switch k {
	case Timeout:
		return "timeout"
	case Panic:
		return "panic"
	case Infeasible:
		return "infeasible"
	default:
		return "slow-solve"
	}
}

// Record is one injected fault: which call received which kind.
type Record struct {
	Call int // 1-based solve-call index
	Kind Kind
}

// Plan decides, per solve call, whether to inject a fault.
type Plan interface {
	// Next is called once per solve call with the 1-based call index and
	// returns the fault to inject, or ok=false for a clean call.
	Next(call int) (kind Kind, ok bool)
}

// Probability injects with probability P per call, choosing uniformly
// among Kinds, driven by a seeded deterministic generator.
type Probability struct {
	rng   *stats.Rand
	p     float64
	kinds []Kind
}

// NewProbability returns a seeded probability plan. An empty kinds list
// defaults to {Timeout, Panic, Infeasible}.
func NewProbability(seed uint64, p float64, kinds ...Kind) *Probability {
	if len(kinds) == 0 {
		kinds = []Kind{Timeout, Panic, Infeasible}
	}
	return &Probability{rng: stats.NewRand(seed), p: p, kinds: kinds}
}

func (pl *Probability) Next(int) (Kind, bool) {
	if pl.rng.Float64() >= pl.p {
		return 0, false
	}
	return pl.kinds[pl.rng.Intn(len(pl.kinds))], true
}

// NthCall injects Kind on every N-th call (calls N, 2N, 3N, ...).
type NthCall struct {
	N    int
	Kind Kind
}

func (pl NthCall) Next(call int) (Kind, bool) {
	if pl.N < 1 || call%pl.N != 0 {
		return 0, false
	}
	return pl.Kind, true
}

// Injector wraps solve calls with fault injection per a Plan. It is
// safe for concurrent use; the call index orders injection decisions.
type Injector struct {
	// Delay is the sleep of SlowSolve faults (default 10ms).
	Delay time.Duration

	mu       sync.Mutex
	plan     Plan
	calls    int
	injected []Record
}

// New returns an injector following the plan.
func New(plan Plan) *Injector { return &Injector{plan: plan} }

// Hook is the solvepipe.Config.Hook middleware: it decides injection
// before delegating, so a clean call costs one mutex round trip.
func (in *Injector) Hook(next solvepipe.SolveFunc) solvepipe.SolveFunc {
	return func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error) {
		in.mu.Lock()
		in.calls++
		call := in.calls
		kind, ok := in.plan.Next(call)
		if ok {
			in.injected = append(in.injected, Record{Call: call, Kind: kind})
		}
		delay := in.Delay
		in.mu.Unlock()
		if !ok {
			return next(ctx, m, opt)
		}
		switch kind {
		case Timeout:
			return nil, &ilpsched.NoScheduleError{
				Status: mip.NoSolution,
				Result: &mip.Result{Status: mip.NoSolution, DeadlineHit: true},
			}
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic (call %d)", call))
		case Infeasible:
			return nil, &ilpsched.NoScheduleError{
				Status: mip.Infeasible,
				Result: &mip.Result{Status: mip.Infeasible},
			}
		default: // SlowSolve
			if delay <= 0 {
				delay = 10 * time.Millisecond
			}
			t := time.NewTimer(delay)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
				return nil, mip.NewCanceledError(context.Cause(ctx))
			}
			return next(ctx, m, opt)
		}
	}
}

// Calls returns the number of solve calls seen so far.
func (in *Injector) Calls() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// Injected returns a copy of the fault records so far, in call order.
func (in *Injector) Injected() []Record {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Record, len(in.injected))
	copy(out, in.injected)
	return out
}

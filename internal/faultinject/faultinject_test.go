package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/ilpsched"
	"repro/internal/mip"
	"repro/internal/solvepipe"
)

// okSolve is a stub downstream SolveFunc returning a fixed solution.
func okSolve(calls *int) solvepipe.SolveFunc {
	return func(context.Context, *ilpsched.Model, mip.Options) (*ilpsched.Solution, error) {
		*calls++
		return &ilpsched.Solution{MIP: &mip.Result{Status: mip.Optimal}}, nil
	}
}

func TestProbabilityDeterminism(t *testing.T) {
	a := NewProbability(42, 0.3)
	b := NewProbability(42, 0.3)
	for i := 1; i <= 500; i++ {
		ka, oka := a.Next(i)
		kb, okb := b.Next(i)
		if ka != kb || oka != okb {
			t.Fatalf("call %d: same seed diverged: (%v,%v) vs (%v,%v)", i, ka, oka, kb, okb)
		}
	}
}

func TestProbabilityRate(t *testing.T) {
	pl := NewProbability(7, 0.2)
	hits := 0
	for i := 1; i <= 2000; i++ {
		if _, ok := pl.Next(i); ok {
			hits++
		}
	}
	// 2000 Bernoulli(0.2) trials: ~400 expected, 5 sigma ~ 89.
	if hits < 300 || hits > 500 {
		t.Fatalf("injected %d/2000, want ~400", hits)
	}
}

func TestProbabilityKindMix(t *testing.T) {
	pl := NewProbability(11, 1.0) // always inject: exercise the kind choice
	seen := map[Kind]int{}
	for i := 1; i <= 300; i++ {
		k, ok := pl.Next(i)
		if !ok {
			t.Fatalf("call %d: p=1 did not inject", i)
		}
		seen[k]++
	}
	for _, k := range []Kind{Timeout, Panic, Infeasible} {
		if seen[k] == 0 {
			t.Fatalf("kind %v never chosen in 300 draws: %v", k, seen)
		}
	}
}

func TestNthCall(t *testing.T) {
	pl := NthCall{N: 3, Kind: Panic}
	for i := 1; i <= 12; i++ {
		_, ok := pl.Next(i)
		if want := i%3 == 0; ok != want {
			t.Fatalf("call %d: injected=%v, want %v", i, ok, want)
		}
	}
}

func TestInjectedFaultShapes(t *testing.T) {
	ctx := context.Background()
	t.Run("timeout", func(t *testing.T) {
		in := New(NthCall{N: 1, Kind: Timeout})
		calls := 0
		_, err := in.Hook(okSolve(&calls))(ctx, nil, mip.Options{})
		if !errors.Is(err, ilpsched.ErrNoSchedule) {
			t.Fatalf("err = %v, want ErrNoSchedule match", err)
		}
		var nse *ilpsched.NoScheduleError
		if !errors.As(err, &nse) || !nse.DeadlineHit() {
			t.Fatalf("err %v, want deadline-hit *NoScheduleError", err)
		}
		if calls != 0 {
			t.Fatal("downstream solve ran despite injection")
		}
	})
	t.Run("infeasible", func(t *testing.T) {
		in := New(NthCall{N: 1, Kind: Infeasible})
		calls := 0
		_, err := in.Hook(okSolve(&calls))(ctx, nil, mip.Options{})
		if !errors.Is(err, ilpsched.ErrInfeasible) {
			t.Fatalf("err = %v, want ErrInfeasible match", err)
		}
		if calls != 0 {
			t.Fatal("downstream solve ran despite injection")
		}
	})
	t.Run("panic", func(t *testing.T) {
		in := New(NthCall{N: 1, Kind: Panic})
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not propagate")
			}
		}()
		in.Hook(okSolve(new(int)))(ctx, nil, mip.Options{})
	})
	t.Run("slow-solve", func(t *testing.T) {
		in := New(NthCall{N: 1, Kind: SlowSolve})
		in.Delay = 5 * time.Millisecond
		calls := 0
		start := time.Now()
		sol, err := in.Hook(okSolve(&calls))(ctx, nil, mip.Options{})
		if err != nil || sol == nil || calls != 1 {
			t.Fatalf("slow solve did not delegate: sol=%v err=%v calls=%d", sol, err, calls)
		}
		if time.Since(start) < 5*time.Millisecond {
			t.Fatal("slow solve did not delay")
		}
	})
	t.Run("slow-solve-canceled", func(t *testing.T) {
		in := New(NthCall{N: 1, Kind: SlowSolve})
		in.Delay = time.Minute
		cctx, cancel := context.WithTimeout(ctx, time.Millisecond)
		defer cancel()
		calls := 0
		_, err := in.Hook(okSolve(&calls))(cctx, nil, mip.Options{})
		if !errors.Is(err, mip.ErrCanceled) {
			t.Fatalf("err = %v, want mip.ErrCanceled match", err)
		}
		if calls != 0 {
			t.Fatal("downstream solve ran after cancellation")
		}
	})
}

func TestInjectorProvenance(t *testing.T) {
	in := New(NthCall{N: 2, Kind: Timeout})
	fn := in.Hook(okSolve(new(int)))
	for i := 1; i <= 6; i++ {
		fn(context.Background(), nil, mip.Options{})
	}
	if in.Calls() != 6 {
		t.Fatalf("Calls = %d, want 6", in.Calls())
	}
	recs := in.Injected()
	want := []Record{{Call: 2, Kind: Timeout}, {Call: 4, Kind: Timeout}, {Call: 6, Kind: Timeout}}
	if len(recs) != len(want) {
		t.Fatalf("Injected = %v, want %v", recs, want)
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("Injected = %v, want %v", recs, want)
		}
	}
}

// Package exact is a reference solver for the quasi off-line scheduling
// problem of a self-tuning step: it finds the schedule minimizing the
// ARTwW objective (Eq. 2) by branch and bound over job start orders.
//
// Correctness rests on a dominance property: for any feasible schedule,
// greedily re-inserting the jobs in start order ("as soon as possible")
// never delays any job, so some greedy list schedule attains the optimum.
// Enumerating the n! orders with pruning therefore solves the problem
// exactly — practical for roughly n <= 10 and used to cross-validate the
// time-indexed ILP path (package ilpsched) in tests.
package exact

import (
	"fmt"
	"math"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// MaxJobs is the largest instance Solve accepts; order enumeration is
// factorial, so anything bigger belongs to the ILP solver.
const MaxJobs = 10

// Solve returns an ARTwW-optimal schedule for the waiting jobs on top of
// base (the running-jobs profile) at time now, together with the optimal
// weighted-sum objective value.
func Solve(now int64, base *machine.Profile, jobs []*job.Job) (*schedule.Schedule, float64, error) {
	n := len(jobs)
	if n == 0 {
		return &schedule.Schedule{Policy: "EXACT", Now: now, Machine: base.Total()}, 0, nil
	}
	if n > MaxJobs {
		return nil, 0, fmt.Errorf("exact: %d jobs exceeds limit %d", n, MaxJobs)
	}
	for _, j := range jobs {
		if j.Width > base.Total() {
			return nil, 0, fmt.Errorf("exact: %v wider than machine", j)
		}
	}
	s := &searcher{now: now, base: base, jobs: jobs, bestObj: math.Inf(1)}
	// Lower-bound ingredient: each job's individually earliest response
	// time on the bare profile (adding jobs only delays others).
	s.minCost = make([]float64, n)
	for i, j := range jobs {
		earliest := now
		if j.Submit > earliest {
			earliest = j.Submit
		}
		st, ok := base.EarliestFit(earliest, j.Estimate, j.Width)
		if !ok {
			return nil, 0, fmt.Errorf("exact: job %d does not fit", j.ID)
		}
		s.minCost[i] = float64((st + j.Estimate - j.Submit) * int64(j.Width))
	}
	used := make([]bool, n)
	order := make([]int, 0, n)
	s.search(base.Clone(), used, order, 0)
	if math.IsInf(s.bestObj, 1) {
		return nil, 0, fmt.Errorf("exact: no feasible schedule found")
	}
	out := &schedule.Schedule{Policy: "EXACT", Now: now, Machine: base.Total(),
		Entries: make([]schedule.Entry, n)}
	copy(out.Entries, s.best)
	return out, s.bestObj, nil
}

type searcher struct {
	now     int64
	base    *machine.Profile
	jobs    []*job.Job
	minCost []float64

	best    []schedule.Entry
	bestObj float64
	cur     []schedule.Entry
}

// search extends the partial order. prof holds the reservations of the
// already-placed jobs; obj their accumulated weighted response time.
func (s *searcher) search(prof *machine.Profile, used []bool, order []int, obj float64) {
	n := len(s.jobs)
	if len(order) == n {
		if obj < s.bestObj {
			s.bestObj = obj
			s.best = append(s.best[:0], s.cur...)
		}
		return
	}
	// Bound: remaining jobs cost at least their bare-profile minimum.
	rest := 0.0
	for i := 0; i < n; i++ {
		if !used[i] {
			rest += s.minCost[i]
		}
	}
	if obj+rest >= s.bestObj {
		return
	}
	for i := 0; i < n; i++ {
		if used[i] {
			continue
		}
		j := s.jobs[i]
		earliest := s.now
		if j.Submit > earliest {
			earliest = j.Submit
		}
		st, ok := prof.EarliestFit(earliest, j.Estimate, j.Width)
		if !ok {
			continue
		}
		cost := float64((st + j.Estimate - j.Submit) * int64(j.Width))
		if obj+cost+rest-s.minCost[i] >= s.bestObj {
			continue
		}
		child := prof.Clone()
		if err := child.Reserve(st, st+j.Estimate, j.Width); err != nil {
			continue
		}
		used[i] = true
		s.cur = append(s.cur, schedule.Entry{Job: j, Start: st})
		s.search(child, used, append(order, i), obj+cost)
		s.cur = s.cur[:len(s.cur)-1]
		used[i] = false
	}
}

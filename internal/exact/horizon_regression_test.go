package exact

import (
	"math"
	"testing"

	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/stats"
)

// Regression pin for TestILPAgreesWithExact: on this seed the exact
// optimum finishes later than every policy schedule, so the ILP horizon
// must be extended to the exact makespan for the solvers to agree.
func TestILPAgreesWithExactLateOptimumSeed(t *testing.T) {
	seed := uint64(13442482239383397668)
	r := stats.NewRand(seed)
	mSize := r.Intn(4) + 2
	base := machine.New(mSize, 0)
	if r.Intn(2) == 0 {
		base.Reserve(0, int64(r.Intn(30)+1), r.Intn(mSize)+1)
	}
	n := r.Intn(4) + 1
	jobs := make([]*job.Job, n)
	for k := range jobs {
		jobs[k] = jb(k+1, 0, r.Intn(mSize)+1, int64(r.Intn(30)+5))
	}
	exactSch, exactObj, err := Solve(0, base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	var horizon int64
	for _, p := range policy.Standard() {
		s, err := policy.Build(p, 0, base, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if mk := s.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	if exactSch.Makespan() <= horizon {
		t.Fatalf("seed no longer exhibits a late optimum (exact makespan %d, horizon %d)",
			exactSch.Makespan(), horizon)
	}
	if mk := exactSch.Makespan(); mk > horizon {
		horizon = mk
	}
	inst := &ilpsched.Instance{Now: 0, Machine: mSize, Base: base, Jobs: jobs, Horizon: horizon}
	m, err := ilpsched.Build(inst, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mip.Options{MaxNodes: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MIP.Status != mip.Optimal {
		t.Fatalf("ilp status %v", sol.MIP.Status)
	}
	if math.Abs(sol.MIP.Objective-exactObj) > 1e-6 {
		t.Fatalf("ilp %g, exact %g", sol.MIP.Objective, exactObj)
	}
}

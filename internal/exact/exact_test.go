package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/stats"
)

func jb(id int, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func TestEmptyInstance(t *testing.T) {
	s, obj, err := Solve(0, machine.New(4, 0), nil)
	if err != nil || obj != 0 || len(s.Entries) != 0 {
		t.Fatalf("empty solve: %v %v %v", s, obj, err)
	}
}

func TestKnownOptimum(t *testing.T) {
	// Same instance as the ilpsched tiny test: optimal 240.
	base := machine.New(2, 0)
	jobs := []*job.Job{jb(1, 0, 2, 10), jb(2, 0, 1, 100), jb(3, 0, 1, 100)}
	s, obj, err := Solve(0, base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if obj != 240 {
		t.Fatalf("objective = %v, want 240", obj)
	}
	if err := s.Validate(base); err != nil {
		t.Fatal(err)
	}
	if s.Find(1).Start != 0 {
		t.Fatalf("job 1 start %d, want 0", s.Find(1).Start)
	}
}

func TestTooManyJobs(t *testing.T) {
	base := machine.New(2, 0)
	var jobs []*job.Job
	for i := 0; i < MaxJobs+1; i++ {
		jobs = append(jobs, jb(i+1, 0, 1, 10))
	}
	if _, _, err := Solve(0, base, jobs); err == nil {
		t.Fatal("oversized instance accepted")
	}
}

func TestTooWide(t *testing.T) {
	base := machine.New(2, 0)
	if _, _, err := Solve(0, base, []*job.Job{jb(1, 0, 3, 10)}); err == nil {
		t.Fatal("over-wide job accepted")
	}
}

func TestRespectsRunningJobs(t *testing.T) {
	base := machine.New(4, 0)
	if err := base.Reserve(0, 100, 4); err != nil {
		t.Fatal(err)
	}
	s, _, err := Solve(0, base, []*job.Job{jb(1, 0, 1, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Find(1).Start != 100 {
		t.Fatalf("start %d, want 100", s.Find(1).Start)
	}
}

// Property: exact never loses to any basic policy.
func TestExactBeatsPolicies(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		mSize := r.Intn(6) + 2
		base := machine.New(mSize, 0)
		if r.Intn(2) == 0 {
			base.Reserve(0, int64(r.Intn(60)+1), r.Intn(mSize)+1)
		}
		n := r.Intn(5) + 1
		jobs := make([]*job.Job, n)
		for k := range jobs {
			jobs[k] = jb(k+1, 0, r.Intn(mSize)+1, int64(r.Intn(60)+5))
		}
		_, obj, err := Solve(0, base, jobs)
		if err != nil {
			return false
		}
		for _, p := range policy.Standard() {
			s, err := policy.Build(p, 0, base, jobs)
			if err != nil {
				return false
			}
			if obj > ilpsched.ObjectiveOfSchedule(s)+1e-9 {
				t.Logf("seed %d: exact %v worse than %s %v", seed, obj,
					p.Name(), ilpsched.ObjectiveOfSchedule(s))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Cross-validation of the entire CPLEX-substitute path: the time-indexed
// ILP at scale 1 must agree exactly with the order-enumeration optimum.
func TestILPAgreesWithExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		mSize := r.Intn(4) + 2
		base := machine.New(mSize, 0)
		if r.Intn(2) == 0 {
			base.Reserve(0, int64(r.Intn(30)+1), r.Intn(mSize)+1)
		}
		n := r.Intn(4) + 1
		jobs := make([]*job.Job, n)
		for k := range jobs {
			jobs[k] = jb(k+1, 0, r.Intn(mSize)+1, int64(r.Intn(30)+5))
		}
		exactSch, exactObj, err := Solve(0, base, jobs)
		if err != nil {
			return false
		}
		var horizon int64
		for _, p := range policy.Standard() {
			s, err := policy.Build(p, 0, base, jobs)
			if err != nil {
				return false
			}
			if mk := s.Makespan(); mk > horizon {
				horizon = mk
			}
		}
		// The paper's horizon heuristic (max policy makespan) can cut off
		// the unrestricted optimum: a response-time-optimal schedule may
		// finish later than every policy schedule, and then the ILP's best
		// in-horizon objective is legitimately worse than the exact one
		// (seed 13442482239383397668: exact makespan 80 vs horizon 71).
		// Cross-validating the two solvers requires the optimum to be
		// representable on the grid, so extend the horizon to it.
		if mk := exactSch.Makespan(); mk > horizon {
			horizon = mk
		}
		inst := &ilpsched.Instance{Now: 0, Machine: mSize, Base: base,
			Jobs: jobs, Horizon: horizon}
		m, err := ilpsched.Build(inst, 1)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sol, err := m.Solve(mip.Options{MaxNodes: 20000})
		if err != nil || sol.MIP.Status != mip.Optimal {
			t.Logf("seed %d: ilp status %v err %v", seed, sol.MIP.Status, err)
			return false
		}
		if math.Abs(sol.MIP.Objective-exactObj) > 1e-6 {
			t.Logf("seed %d: ilp %g exact %g", seed, sol.MIP.Objective, exactObj)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkExact7Jobs(b *testing.B) {
	r := stats.NewRand(9)
	base := machine.New(8, 0)
	jobs := make([]*job.Job, 7)
	for k := range jobs {
		jobs[k] = jb(k+1, 0, r.Intn(8)+1, int64(r.Intn(500)+10))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Solve(0, base, jobs); err != nil {
			b.Fatal(err)
		}
	}
}

package exact

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/stats"
)

// Cross-validation of the presolve pass against ground truth: the
// *presolved* time-indexed ILP at scale 1 must agree exactly with the
// order-enumeration optimum — the same oracle TestILPAgreesWithExact
// holds the unreduced model to.
func TestPresolvedILPAgreesWithExact(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		mSize := r.Intn(4) + 2
		base := machine.New(mSize, 0)
		if r.Intn(2) == 0 {
			base.Reserve(0, int64(r.Intn(30)+1), r.Intn(mSize)+1)
		}
		n := r.Intn(4) + 1
		jobs := make([]*job.Job, n)
		for k := range jobs {
			jobs[k] = jb(k+1, 0, r.Intn(mSize)+1, int64(r.Intn(30)+5))
		}
		exactSch, exactObj, err := Solve(0, base, jobs)
		if err != nil {
			return false
		}
		var horizon int64
		var seeds []*schedule.Schedule
		for _, p := range policy.Standard() {
			s, err := policy.Build(p, 0, base, jobs)
			if err != nil {
				return false
			}
			seeds = append(seeds, s)
			if mk := s.Makespan(); mk > horizon {
				horizon = mk
			}
		}
		// Same horizon extension as TestILPAgreesWithExact: the optimum
		// must be representable on the grid for the comparison to hold.
		if mk := exactSch.Makespan(); mk > horizon {
			horizon = mk
		}
		inst := &ilpsched.Instance{Now: 0, Machine: mSize, Base: base,
			Jobs: jobs, Horizon: horizon}
		m, st, err := ilpsched.BuildPresolved(inst, 1, ilpsched.PresolveOptions{Seeds: seeds})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		sol, err := m.Solve(mip.Options{MaxNodes: 20000})
		if err != nil || sol.MIP.Status != mip.Optimal {
			t.Logf("seed %d: presolved ilp status %v err %v", seed, sol.MIP.Status, err)
			return false
		}
		if math.Abs(sol.Objective-exactObj) > 1e-6 {
			t.Logf("seed %d: presolved ilp %g exact %g (stats %+v)",
				seed, sol.Objective, exactObj, st)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

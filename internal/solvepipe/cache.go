// Cross-step solution cache. Consecutive self-tuning steps often carry
// an unchanged waiting set — the step that triggered them only touched
// the running jobs — and the quasi off-line problem is invariant under a
// time shift: the Eq. 2 cost of assigning relative start r to job i is
// (r + (now - s_i) + d_i) * w_i, whose (now - s_i + d_i) * w_i term is a
// per-job constant, so the argmin over relative starts depends only on
// the machine, the relative free-capacity profile, the relative horizon
// and the (width, estimate, clamped relative submit) multiset of the
// waiting jobs. Two steps agreeing on exactly those data share an
// optimal relative schedule even though their absolute times and
// objective values differ.
//
// The cache therefore keys on an FNV-1a fingerprint of that invariant
// data and stores relative start times per job shape. A hit is rebased
// to the current step instant, re-matched to the current job objects by
// sorted shape (identical-shape jobs are interchangeable), validated
// against the current base profile (belt and braces against a hash
// collision) and re-compacted. Only successful pipeline solves are ever
// stored, so a degraded (fallback) step can never poison the cache.
package solvepipe

import (
	"hash/fnv"
	"sort"
	"sync"

	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/mip"
	"repro/internal/schedule"
)

// StepCache is a bounded FIFO cache of step solutions, safe for
// concurrent use. The zero value is not usable; construct with
// NewStepCache.
type StepCache struct {
	mu    sync.Mutex
	max   int
	order []uint64
	byKey map[uint64]*cacheEntry
	hits  int64
	puts  int64
}

// cacheShape is one job of a cached solution: its model-relevant shape
// plus the relative start the solver chose.
type cacheShape struct {
	width     int
	estimate  int64
	relSubmit int64 // max(0, Submit - Now): the earliest relative start
	relStart  int64 // chosen start relative to the step instant
}

type cacheEntry struct {
	scale  int64
	shapes []cacheShape // sorted by shapeLess
	mip    *mip.Result  // telemetry of the original solve
}

// NewStepCache returns a cache holding at most max solutions (default 64
// when max <= 0).
func NewStepCache(max int) *StepCache {
	if max <= 0 {
		max = 64
	}
	return &StepCache{max: max, byKey: make(map[uint64]*cacheEntry)}
}

// Hits returns the number of successful lookups served so far.
func (c *StepCache) Hits() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Len returns the number of cached solutions.
func (c *StepCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

func shapeLess(a, b cacheShape) bool {
	if a.width != b.width {
		return a.width < b.width
	}
	if a.estimate != b.estimate {
		return a.estimate < b.estimate
	}
	return a.relSubmit < b.relSubmit
}

func relSubmit(j *job.Job, now int64) int64 {
	if j.Submit > now {
		return j.Submit - now
	}
	return 0
}

// Fingerprint hashes the time-shift-invariant data of an instance: the
// machine size, the relative horizon, the relative free-capacity profile
// up to the horizon, and the sorted (width, estimate, relative submit)
// multiset of the waiting jobs. Job IDs and absolute times are excluded
// on purpose — see the package comment for why that is sound.
func Fingerprint(inst *ilpsched.Instance) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v int64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(int64(inst.Machine))
	put(inst.Horizon - inst.Now)
	// Relative capacity profile: the free capacity at now, then every
	// breakpoint strictly inside (now, horizon].
	put(int64(inst.Base.FreeAt(inst.Now)))
	for _, st := range inst.Base.Steps() {
		if st.Time <= inst.Now || st.Time > inst.Horizon {
			continue
		}
		put(st.Time - inst.Now)
		put(int64(st.Free))
	}
	shapes := make([]cacheShape, len(inst.Jobs))
	for i, jb := range inst.Jobs {
		shapes[i] = cacheShape{width: jb.Width, estimate: jb.Estimate, relSubmit: relSubmit(jb, inst.Now)}
	}
	sort.Slice(shapes, func(a, b int) bool { return shapeLess(shapes[a], shapes[b]) })
	for _, s := range shapes {
		put(int64(s.width))
		put(s.estimate)
		put(s.relSubmit)
	}
	return h.Sum64()
}

// put stores a successful solve keyed by the instance fingerprint.
func (c *StepCache) put(key uint64, inst *ilpsched.Instance, scale int64, sol *ilpsched.Solution) {
	if c == nil || sol == nil || sol.Grid == nil {
		return
	}
	shapes := make([]cacheShape, 0, len(sol.Grid.Entries))
	for _, e := range sol.Grid.Entries {
		shapes = append(shapes, cacheShape{
			width: e.Job.Width, estimate: e.Job.Estimate,
			relSubmit: relSubmit(e.Job, inst.Now),
			relStart:  e.Start - inst.Now,
		})
	}
	sort.Slice(shapes, func(a, b int) bool { return shapeLess(shapes[a], shapes[b]) })
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byKey[key]; !ok {
		for len(c.order) >= c.max {
			delete(c.byKey, c.order[0])
			c.order = c.order[1:]
		}
		c.order = append(c.order, key)
	}
	c.byKey[key] = &cacheEntry{scale: scale, shapes: shapes, mip: sol.MIP}
	c.puts++
}

// get rebases a cached solution onto the instance: current jobs are
// matched to cached shapes in sorted order (exact shape equality is
// verified, guarding against fingerprint collisions), starts are shifted
// to the current step instant, the grid schedule is validated against
// the current base profile and compacted. Returns nil on any mismatch.
func (c *StepCache) get(key uint64, inst *ilpsched.Instance) (*ilpsched.Solution, int64) {
	if c == nil {
		return nil, 0
	}
	c.mu.Lock()
	entry := c.byKey[key]
	c.mu.Unlock()
	if entry == nil || len(entry.shapes) != len(inst.Jobs) {
		return nil, 0
	}
	order := make([]int, len(inst.Jobs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ja, jb := inst.Jobs[order[a]], inst.Jobs[order[b]]
		sa := cacheShape{width: ja.Width, estimate: ja.Estimate, relSubmit: relSubmit(ja, inst.Now)}
		sb := cacheShape{width: jb.Width, estimate: jb.Estimate, relSubmit: relSubmit(jb, inst.Now)}
		if shapeLess(sa, sb) {
			return true
		}
		if shapeLess(sb, sa) {
			return false
		}
		return ja.ID < jb.ID
	})
	grid := &schedule.Schedule{Policy: "ILP", Now: inst.Now, Machine: inst.Machine}
	for k, s := range entry.shapes {
		jb := inst.Jobs[order[k]]
		if jb.Width != s.width || jb.Estimate != s.estimate || relSubmit(jb, inst.Now) != s.relSubmit {
			return nil, 0 // fingerprint collision: shapes disagree
		}
		grid.Entries = append(grid.Entries, schedule.Entry{Job: jb, Start: inst.Now + s.relStart})
	}
	if err := grid.Validate(inst.Base); err != nil {
		return nil, 0
	}
	compacted, err := grid.Compact(inst.Base)
	if err != nil {
		return nil, 0
	}
	sol := &ilpsched.Solution{
		MIP:       entry.mip,
		Objective: ilpsched.ObjectiveOfSchedule(grid),
		Grid:      grid,
		Compacted: compacted,
	}
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	return sol, entry.scale
}

package solvepipe_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
)

func jb(id int, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func inst(m int, horizon int64, jobs ...*job.Job) *ilpsched.Instance {
	return &ilpsched.Instance{
		Now: 0, Machine: m, Base: machine.New(m, 0),
		Jobs: jobs, Horizon: horizon,
	}
}

func smallInst() *ilpsched.Instance {
	return inst(4, 1000, jb(1, 0, 2, 100), jb(2, 0, 3, 200), jb(3, 0, 1, 150))
}

// failFirst injects the kind on the first n calls, then stays clean.
type failFirst struct {
	kind faultinject.Kind
	n    int
}

func (p failFirst) Next(call int) (faultinject.Kind, bool) {
	if call <= p.n {
		return p.kind, true
	}
	return 0, false
}

func cfg() solvepipe.Config {
	return solvepipe.Config{
		Budget:     time.Second,
		FixedScale: 10,
		MIP:        mip.Options{MaxNodes: 5000},
	}
}

func TestFirstRungSuccess(t *testing.T) {
	out := solvepipe.Solve(context.Background(), cfg(), smallInst())
	if out.Failed() {
		t.Fatalf("pipeline failed: %v", out.Err)
	}
	if out.Retries() != 0 || len(out.Attempts) != 1 {
		t.Fatalf("attempts %d retries %d, want 1/0", len(out.Attempts), out.Retries())
	}
	if out.Attempts[0].Failure != solvepipe.FailNone {
		t.Fatalf("attempt failure %v, want none", out.Attempts[0].Failure)
	}
	if out.Scale != 10 {
		t.Fatalf("winning scale %d, want 10", out.Scale)
	}
	if out.Solution.Compacted == nil {
		t.Fatal("no compacted schedule")
	}
}

func TestRetryAfterInjectedTimeout(t *testing.T) {
	inj := faultinject.New(failFirst{kind: faultinject.Timeout, n: 1})
	c := cfg()
	c.Retries = 2
	c.Hook = inj.Hook
	out := solvepipe.Solve(context.Background(), c, smallInst())
	if out.Failed() {
		t.Fatalf("pipeline failed: %v", out.Err)
	}
	if out.Retries() != 1 {
		t.Fatalf("retries %d, want 1", out.Retries())
	}
	a := out.Attempts
	if a[0].Failure != solvepipe.FailTimeout || a[1].Failure != solvepipe.FailNone {
		t.Fatalf("attempt failures %v/%v, want timeout/none", a[0].Failure, a[1].Failure)
	}
	if a[1].Scale <= a[0].Scale {
		t.Fatalf("scale did not escalate: %d -> %d", a[0].Scale, a[1].Scale)
	}
	if a[1].Budget <= a[0].Budget {
		t.Fatalf("budget did not back off: %v -> %v", a[0].Budget, a[1].Budget)
	}
}

func TestPanicRecoveredAndRetried(t *testing.T) {
	inj := faultinject.New(failFirst{kind: faultinject.Panic, n: 1})
	c := cfg()
	c.Retries = 1
	c.Hook = inj.Hook
	out := solvepipe.Solve(context.Background(), c, smallInst())
	if out.Failed() {
		t.Fatalf("pipeline failed: %v", out.Err)
	}
	if out.Attempts[0].Failure != solvepipe.FailPanic {
		t.Fatalf("attempt failure %v, want panic", out.Attempts[0].Failure)
	}
	var pe *solvepipe.PanicError
	if !errors.As(out.Attempts[0].Err, &pe) {
		t.Fatalf("attempt error %T, want *PanicError", out.Attempts[0].Err)
	}
	if !strings.Contains(pe.Error(), "injected panic") {
		t.Fatalf("panic error %q does not carry the panic value", pe.Error())
	}
}

func TestLadderExhaustionEmitsObs(t *testing.T) {
	inj := faultinject.New(failFirst{kind: faultinject.Timeout, n: 100})
	var buf bytes.Buffer
	reg := obs.NewRegistry()
	c := cfg()
	c.Retries = 2
	c.Hook = inj.Hook
	c.Trace = obs.NewTracer(&buf)
	c.Metrics = reg
	out := solvepipe.Solve(context.Background(), c, smallInst())
	if !out.Failed() {
		t.Fatal("pipeline succeeded under total fault injection")
	}
	if len(out.Attempts) != 3 || out.Retries() != 2 {
		t.Fatalf("attempts %d retries %d, want 3/2", len(out.Attempts), out.Retries())
	}
	if out.LastFailure() != solvepipe.FailTimeout {
		t.Fatalf("last failure %v, want timeout", out.LastFailure())
	}
	if !errors.Is(out.Err, ilpsched.ErrNoSchedule) {
		t.Fatalf("terminal error %v, want ErrNoSchedule match", out.Err)
	}
	if got := reg.Counter("mip.retries").Value(); got != 2 {
		t.Fatalf("mip.retries = %d, want 2", got)
	}
	trace := buf.String()
	// solve.attempt is a span: one begin and one end line per rung, with
	// the classified failure on the end event.
	begins, ends := 0, 0
	for _, line := range strings.Split(trace, "\n") {
		if !strings.Contains(line, `"ev":"solve.attempt"`) {
			continue
		}
		switch {
		case strings.Contains(line, `"phase":"begin"`):
			begins++
		case strings.Contains(line, `"phase":"end"`):
			ends++
			if !strings.Contains(line, `"failure":`) {
				t.Fatalf("attempt end without failure field: %s", line)
			}
		}
	}
	if begins != 3 || ends != 3 {
		t.Fatalf("%d/%d solve.attempt begin/end spans, want 3/3", begins, ends)
	}
	if n := strings.Count(trace, `"ev":"solve.retry"`); n != 2 {
		t.Fatalf("%d solve.retry events, want 2", n)
	}
	// The labeled attempt counter classifies every rung.
	var timeouts int64
	for _, m := range reg.Snapshot() {
		if m.Name == "solve.attempts" {
			for _, l := range m.Labels {
				if l.Key == "failure" && l.Value == "timeout" {
					timeouts = m.Value
				}
			}
		}
	}
	if timeouts != 3 {
		t.Fatalf("solve.attempts{failure=timeout} = %d, want 3", timeouts)
	}
}

func TestTooLargeEscalatesToCoarserGrid(t *testing.T) {
	i := smallInst()
	fineVars, _ := ilpsched.EstimateSize(i, 10)
	coarseVars, _ := ilpsched.EstimateSize(i, 70)
	if coarseVars >= fineVars {
		t.Fatalf("test premise broken: coarser grid not smaller (%d vs %d)", coarseVars, fineVars)
	}
	c := cfg()
	c.Retries = 3
	c.Limit = ilpsched.SizeLimit{MaxVariables: coarseVars}
	// RoundTo drives the escalation granularity: 10 -> 70 -> ...
	c.Scaling.RoundTo = 70
	out := solvepipe.Solve(context.Background(), c, i)
	if out.Failed() {
		t.Fatalf("pipeline failed: %v", out.Err)
	}
	if out.Attempts[0].Failure != solvepipe.FailTooLarge {
		t.Fatalf("first failure %v, want too-large", out.Attempts[0].Failure)
	}
	if !errors.Is(out.Attempts[0].Err, ilpsched.ErrModelTooLarge) {
		t.Fatalf("first error %v, want ErrModelTooLarge", out.Attempts[0].Err)
	}
	if out.Scale <= 10 {
		t.Fatalf("winning scale %d, want coarser than 10", out.Scale)
	}
}

func TestInfeasibleRetryCoarsensGrid(t *testing.T) {
	// Two width-3 jobs on 4 processors cannot overlap, and at scale 10
	// the ~150 s horizon grid cannot serialize them: proven infeasible.
	i := inst(4, 150, jb(1, 0, 3, 100), jb(2, 0, 3, 100))
	c := cfg()
	c.Retries = 0
	out := solvepipe.Solve(context.Background(), c, i)
	if !out.Failed() {
		t.Fatal("pipeline succeeded on an infeasible grid with no retries")
	}
	if out.LastFailure() != solvepipe.FailInfeasible {
		t.Fatalf("last failure %v, want infeasible", out.LastFailure())
	}
	if !errors.Is(out.Err, ilpsched.ErrInfeasible) {
		t.Fatalf("terminal error %v, want ErrInfeasible match", out.Err)
	}
	// One retry escalates to a 60 s grid whose rounding slack admits the
	// serialized placement: grid infeasibility is cured by coarsening,
	// which is exactly why FailInfeasible is retryable.
	c.Retries = 1
	out = solvepipe.Solve(context.Background(), c, i)
	if out.Failed() {
		t.Fatalf("coarsened retry failed: %v", out.Err)
	}
	if out.Attempts[0].Failure != solvepipe.FailInfeasible || out.Retries() != 1 {
		t.Fatalf("attempts %+v, want infeasible then success", out.Attempts)
	}
	if out.Scale <= 10 {
		t.Fatalf("winning scale %d, want coarser than 10", out.Scale)
	}
}

func TestCanceledContextNotRetried(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := cfg()
	c.Retries = 5
	out := solvepipe.Solve(ctx, c, smallInst())
	if !out.Failed() {
		t.Fatal("pipeline succeeded under a canceled context")
	}
	if len(out.Attempts) != 1 {
		t.Fatalf("attempts %d, want 1 (cancellation must not retry)", len(out.Attempts))
	}
	if out.LastFailure() != solvepipe.FailCanceled {
		t.Fatalf("failure %v, want canceled", out.LastFailure())
	}
	if !errors.Is(out.Err, mip.ErrCanceled) {
		t.Fatalf("terminal error %v, want mip.ErrCanceled match", out.Err)
	}
}

// When the previous step's schedule (ReuseSeed) is strictly better than
// the basic-policy seed, it becomes the incumbent and the outcome and
// "step.incumbent.reused" counter say so. On one processor the FCFS
// order long-then-short costs 100 + 110 = 210 while short-then-long
// costs 10 + 110 = 120, so the reuse seed must win; ties or worse go to
// the policy seed.
func TestReuseSeedBecomesIncumbentWhenBetter(t *testing.T) {
	long := jb(1, 0, 1, 100)
	short := jb(2, 0, 1, 10)
	i := inst(1, 200, long, short)
	fcfs := &schedule.Schedule{Now: 0, Machine: 1, Entries: []schedule.Entry{
		{Job: long, Start: 0}, {Job: short, Start: 100},
	}}
	spt := &schedule.Schedule{Now: 0, Machine: 1, Entries: []schedule.Entry{
		{Job: short, Start: 0}, {Job: long, Start: 10},
	}}
	reg := obs.NewRegistry()
	c := cfg()
	c.Seed = fcfs
	c.ReuseSeed = spt
	c.Metrics = reg
	out := solvepipe.Solve(context.Background(), c, i)
	if out.Failed() {
		t.Fatalf("pipeline failed: %v", out.Err)
	}
	if !out.IncumbentReused {
		t.Fatal("strictly better reuse seed was not chosen as incumbent")
	}
	if got := reg.Counter("step.incumbent.reused").Value(); got != 1 {
		t.Fatalf("step.incumbent.reused = %d, want 1", got)
	}
	// With the seeds swapped the policy seed is already the better one
	// (and wins ties by construction): no reuse.
	c.Seed, c.ReuseSeed = spt, fcfs
	out = solvepipe.Solve(context.Background(), c, i)
	if out.Failed() {
		t.Fatalf("pipeline failed: %v", out.Err)
	}
	if out.IncumbentReused {
		t.Fatal("worse reuse seed reported as incumbent")
	}
}

// The pipeline seeds every rung with the given schedule, so a budget of
// effectively zero still returns the seed (anytime semantics survive
// the ladder).
func TestSeededRungSurvivesTinyBudget(t *testing.T) {
	i := smallInst()
	m, err := ilpsched.Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mip.Options{MaxNodes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	c := cfg()
	c.Budget = time.Nanosecond
	c.Seed = sol.Compacted
	out := solvepipe.Solve(context.Background(), c, i)
	if out.Failed() {
		t.Fatalf("seeded pipeline failed: %v", out.Err)
	}
}

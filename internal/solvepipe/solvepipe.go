// Package solvepipe is the fault-tolerant solve pipeline of the
// reproduction: it wraps the per-step ILP solve (build + branch and
// bound) in a retry ladder that trades schedule fidelity for
// survivability, the way the paper trades grid resolution for memory
// (Eq. 6).
//
// Each rung of the ladder re-solves the quasi off-line instance under a
// coarser time-scaling factor and a larger (exponentially backed-off)
// wall-clock budget. A rung can fail by budget exhaustion without an
// incumbent, by the pre-build model-size guard, by proven grid
// infeasibility, or by a recovered solver panic — all of which are
// retryable. A done caller context is a hard stop and is never retried.
// When every rung fails, the Outcome carries the full per-attempt
// provenance so the caller (internal/sim) can degrade gracefully to the
// best basic-policy schedule instead of dying mid-simulation.
package solvepipe

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"repro/internal/ilpsched"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/schedule"
)

// FailureKind classifies why a solve attempt produced no usable schedule.
type FailureKind int

const (
	// FailNone marks a successful attempt.
	FailNone FailureKind = iota
	// FailTimeout: the attempt's budget (wall clock or node limit) ran out
	// before any feasible schedule was found.
	FailTimeout
	// FailTooLarge: the model-size guard refused to build the model.
	FailTooLarge
	// FailInfeasible: the grid instance was proven infeasible (including
	// a horizon too tight for the scaled durations).
	FailInfeasible
	// FailPanic: the solver panicked; the panic was recovered and
	// converted into a *PanicError.
	FailPanic
	// FailCanceled: the caller's context was done. Never retried.
	FailCanceled
	// FailError: any other error (malformed instance, I/O). Never retried.
	FailError
)

func (k FailureKind) String() string {
	switch k {
	case FailNone:
		return "none"
	case FailTimeout:
		return "timeout"
	case FailTooLarge:
		return "too-large"
	case FailInfeasible:
		return "infeasible"
	case FailPanic:
		return "panic"
	case FailCanceled:
		return "canceled"
	default:
		return "error"
	}
}

// Retryable reports whether the ladder may try another rung after this
// failure. Coarsening the grid shrinks the model (helps too-large),
// relaxes the slot rounding (can cure grid infeasibility) and reduces
// the search space (helps timeouts); panics get a fresh solver state.
func (k FailureKind) Retryable() bool {
	switch k {
	case FailTimeout, FailTooLarge, FailInfeasible, FailPanic:
		return true
	}
	return false
}

// PanicError is a solver panic recovered by the pipeline.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("solvepipe: solver panicked: %v", e.Value)
}

// Attempt records one rung of the retry ladder.
type Attempt struct {
	// Scale is the Eq. 6 time-scaling factor of the rung.
	Scale int64
	// Budget is the wall-clock budget granted to the rung.
	Budget time.Duration
	// Failure classifies the rung's outcome (FailNone on success).
	Failure FailureKind
	// Err is the rung's error (nil on success).
	Err error
	// Elapsed is the rung's measured wall-clock time.
	Elapsed time.Duration
}

// Outcome is the result of a full pipeline run.
type Outcome struct {
	// Solution is the winning solution, nil when the ladder was
	// exhausted or the context was canceled.
	Solution *ilpsched.Solution
	// Scale is the time-scaling factor of the winning attempt.
	Scale int64
	// Attempts holds every rung tried, in order, including the winner.
	Attempts []Attempt
	// Err is the last rung's error when Solution is nil.
	Err error
	// CacheHit reports the solution was served from Config.Cache without
	// building or solving a model.
	CacheHit bool
	// IncumbentReused reports that some rung seeded its incumbent from
	// Config.ReuseSeed rather than Config.Seed.
	IncumbentReused bool
	// Presolve carries the winning rung's reduction stats (nil when
	// presolve was off, the ladder failed, or the cache answered).
	Presolve *ilpsched.PresolveStats
}

// Failed reports whether the pipeline produced no schedule.
func (o *Outcome) Failed() bool { return o == nil || o.Solution == nil }

// Retries returns the number of rungs beyond the first.
func (o *Outcome) Retries() int {
	if o == nil || len(o.Attempts) == 0 {
		return 0
	}
	return len(o.Attempts) - 1
}

// LastFailure returns the failure kind of the final attempt (FailNone
// when the pipeline succeeded on its last rung).
func (o *Outcome) LastFailure() FailureKind {
	if o == nil || len(o.Attempts) == 0 {
		return FailNone
	}
	return o.Attempts[len(o.Attempts)-1].Failure
}

// SolveFunc solves a built model under the given options. The pipeline's
// base SolveFunc calls (*ilpsched.Model).SolveCtx; Config.Hook may wrap
// it with middleware (fault injection in tests).
type SolveFunc func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error)

// Config parameterizes the pipeline.
type Config struct {
	// Budget is the wall-clock budget of the first attempt (soft stop:
	// the solver keeps its incumbent). Default 15s.
	Budget time.Duration
	// Retries is the number of extra rungs after the first attempt.
	Retries int
	// BackoffFactor multiplies the budget on every retry (default 2).
	BackoffFactor float64
	// ScaleFactor multiplies the time-scaling factor on every retry
	// (default 2), re-rounded to Scaling.RoundTo.
	ScaleFactor float64
	// Scaling chooses the first rung's scale per Eq. 6 (zero value:
	// ilpsched.DefaultScaling). FixedScale > 0 overrides it.
	Scaling    ilpsched.Scaling
	FixedScale int64
	// Limit is the pre-build model-size guard (zero = unguarded).
	Limit ilpsched.SizeLimit
	// MIP are the base branch-and-bound options. TimeLimit is overridden
	// by the rung budget; Incumbent is overridden when Seed is set.
	MIP mip.Options
	// Seed, if non-nil, warm-starts every rung's search with this
	// feasible schedule (e.g. the best basic-policy schedule).
	Seed *schedule.Schedule
	// ReuseSeed, if non-nil, is a second incumbent candidate — typically
	// the previous step's compacted ILP schedule restricted to the jobs
	// still waiting. Per rung, the candidate with the lower grid
	// objective seeds the search; when ReuseSeed wins, the
	// "step.incumbent.reused" counter is bumped and the Outcome flagged.
	ReuseSeed *schedule.Schedule
	// PresolveOff disables the ilpsched presolve pass. Presolve is ON by
	// default: each rung builds the reduced model via
	// BuildPresolvedGuarded (with Seed and ReuseSeed as upper-bound
	// schedules), which also means the size guard applies to the
	// *reduced* model, so instances that presolve makes tractable are no
	// longer rejected.
	PresolveOff bool
	// Cache, if non-nil, short-circuits steps whose fingerprint matches
	// a previously solved one (see Fingerprint). Only successful
	// pipeline outcomes are stored; failed or degraded steps never
	// populate it.
	Cache *StepCache
	// Hook, if non-nil, wraps the base SolveFunc with middleware. This
	// is the fault-injection seam used by internal/faultinject; it also
	// admits caching or logging middleware.
	Hook func(SolveFunc) SolveFunc
	// Trace, if non-nil, receives a "solve.attempt" span per rung (solver
	// internals nest under it) and "solve.retry" events. Metrics, if
	// non-nil, accumulates the "mip.retries" counter and the
	// "solve.attempts" counter family labeled by failure kind.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 15 * time.Second
	}
	if c.BackoffFactor < 1 {
		c.BackoffFactor = 2
	}
	if c.ScaleFactor <= 1 {
		c.ScaleFactor = 2
	}
	if c.Scaling == (ilpsched.Scaling{}) {
		c.Scaling = ilpsched.DefaultScaling()
	}
	return c
}

// Classify maps a solve error to its FailureKind. Exported for callers
// that record provenance from errors outside the pipeline.
func Classify(ctx context.Context, err error) FailureKind {
	if err == nil {
		return FailNone
	}
	var pe *PanicError
	switch {
	case errors.As(err, &pe):
		return FailPanic
	case errors.Is(err, mip.ErrCanceled) || ctx.Err() != nil:
		return FailCanceled
	case errors.Is(err, ilpsched.ErrModelTooLarge):
		return FailTooLarge
	case errors.Is(err, ilpsched.ErrInfeasible),
		errors.Is(err, ilpsched.ErrHorizonTooTight):
		return FailInfeasible
	case errors.Is(err, ilpsched.ErrNoSchedule):
		// Limits ran out before any incumbent: a budget-class failure.
		return FailTimeout
	default:
		return FailError
	}
}

// Solve runs the retry ladder on the instance. It never panics: solver
// panics are recovered into *PanicError and classified like any other
// rung failure. The returned Outcome is non-nil even on total failure.
func Solve(ctx context.Context, cfg Config, inst *ilpsched.Instance) *Outcome {
	cfg = cfg.withDefaults()
	var key uint64
	if cfg.Cache != nil {
		key = Fingerprint(inst)
		if sol, scale := cfg.Cache.get(key, inst); sol != nil {
			cfg.Metrics.Counter("step.cache.hits").Inc()
			cfg.Trace.Emit("solve.cache.hit", obs.Int("scale", scale))
			return &Outcome{Solution: sol, Scale: scale, CacheHit: true}
		}
	}
	scale := cfg.FixedScale
	if scale <= 0 {
		scale = cfg.Scaling.TimeScale(inst)
	}
	budget := cfg.Budget
	out := &Outcome{}
	attempts := cfg.Metrics.CounterVec("solve.attempts", "failure")
	for rung := 0; ; rung++ {
		att := Attempt{Scale: scale, Budget: budget}
		// The attempt is a span (begin/end pair), so the rung's solver
		// internals (mip.solve, lp spans) nest under it in the trace; the
		// end event carries the classified failure. A trace ID on ctx
		// (single-job batches in the serving path) joins the span to the
		// request's trace.
		spanFields := []obs.Field{
			obs.Int("rung", int64(rung)),
			obs.Int("scale", scale),
			obs.Int("budget_ms", budget.Milliseconds()),
		}
		if tid := obs.TraceIDFrom(ctx); tid != "" {
			spanFields = append(spanFields, obs.Str("trace", tid))
		}
		span := cfg.Trace.StartSpan("solve.attempt", spanFields...)
		start := time.Now()
		sol, rs, err := solveOnce(ctx, cfg, inst, scale, budget)
		att.Elapsed = time.Since(start)
		att.Err = err
		att.Failure = Classify(ctx, err)
		out.Attempts = append(out.Attempts, att)
		if rs.incumbentReused {
			out.IncumbentReused = true
		}
		span.End(obs.Str("failure", att.Failure.String()))
		attempts.With(att.Failure.String()).Inc()
		if err == nil {
			out.Solution, out.Scale, out.Presolve = sol, scale, rs.presolve
			if cfg.Cache != nil {
				cfg.Cache.put(key, inst, scale, sol)
			}
			return out
		}
		if !att.Failure.Retryable() || rung >= cfg.Retries {
			out.Err = err
			return out
		}
		scale = nextScale(scale, cfg.ScaleFactor, cfg.Scaling.RoundTo)
		budget = time.Duration(float64(budget) * cfg.BackoffFactor)
		cfg.Metrics.Counter("mip.retries").Inc()
		cfg.Trace.Emit("solve.retry",
			obs.Int("rung", int64(rung+1)),
			obs.Int("scale", scale),
			obs.Int("budget_ms", budget.Milliseconds()),
			obs.Str("cause", att.Failure.String()))
	}
}

// rungStats carries per-rung provenance out of solveOnce.
type rungStats struct {
	presolve        *ilpsched.PresolveStats
	incumbentReused bool
}

// solveOnce runs one rung: guarded build (presolved unless PresolveOff),
// incumbent seeding from the better of Seed and ReuseSeed, then the
// (possibly hook-wrapped) solve under the rung budget, with panic
// containment around the whole rung.
func solveOnce(ctx context.Context, cfg Config, inst *ilpsched.Instance, scale int64, budget time.Duration) (sol *ilpsched.Solution, rs rungStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	var m *ilpsched.Model
	if cfg.PresolveOff {
		m, err = ilpsched.BuildGuarded(inst, scale, cfg.Limit)
	} else {
		var seeds []*schedule.Schedule
		if cfg.Seed != nil {
			seeds = append(seeds, cfg.Seed)
		}
		if cfg.ReuseSeed != nil {
			seeds = append(seeds, cfg.ReuseSeed)
		}
		var st *ilpsched.PresolveStats
		m, st, err = ilpsched.BuildPresolvedGuarded(inst, scale, cfg.Limit, ilpsched.PresolveOptions{Seeds: seeds})
		if err == nil {
			rs.presolve = st
			cfg.Metrics.Counter("presolve.vars.fixed").Add(int64(st.VarsRemoved()))
			cfg.Metrics.Counter("presolve.rows.removed").Add(int64(st.RowsRemoved()))
		}
	}
	if err != nil {
		return nil, rs, err
	}
	opt := cfg.MIP
	opt.TimeLimit = budget
	// Solver-internal observability (mip.nodes, mip.workers.active,
	// lp.warmstart.hits, ...) flows into the pipeline's sinks unless the
	// caller wired dedicated ones into the MIP options.
	if opt.Trace == nil {
		opt.Trace = cfg.Trace
	}
	if opt.Metrics == nil {
		opt.Metrics = cfg.Metrics
	}
	// Seed the search with the better of the two candidate incumbents.
	var chosen []float64
	bestObj := 0.0
	for _, cand := range []struct {
		s       *schedule.Schedule
		isReuse bool
	}{{cfg.Seed, false}, {cfg.ReuseSeed, true}} {
		if cand.s == nil {
			continue
		}
		inc, serr := m.IncumbentFromSchedule(cand.s)
		if serr != nil {
			continue
		}
		obj := m.ObjectiveOfVector(inc)
		if chosen == nil || obj < bestObj {
			chosen, bestObj = inc, obj
			rs.incumbentReused = cand.isReuse
		}
	}
	if chosen != nil {
		opt.Incumbent = chosen
	}
	if rs.incumbentReused {
		cfg.Metrics.Counter("step.incumbent.reused").Inc()
	}
	fn := SolveFunc(func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error) {
		return m.SolveCtx(ctx, opt)
	})
	if cfg.Hook != nil {
		fn = cfg.Hook(fn)
	}
	sol, err = fn(ctx, m, opt)
	return sol, rs, err
}

// AnytimeIncumbent is one improved incumbent streamed out of an anytime
// solve: the decoded full-instance solution plus when it was found.
type AnytimeIncumbent struct {
	// Solution carries the decoded grid and §3.2-compacted schedules.
	Solution *ilpsched.Solution
	// Objective is the full Eq. 2 objective including the presolve
	// offset (Solution.Objective, hoisted for cheap comparison).
	Objective float64
	// At is the wall-clock offset from the anytime solve's start.
	At time.Duration
}

// SolveAnytime runs a single long solve (no retry ladder) that streams
// every strictly improving incumbent through onImproved as the branch
// and bound finds it, instead of answering only at the end. stop is
// polled at the solver's counter-gated checkpoint: returning true
// preempts the search cooperatively, keeping the best incumbent (this
// is how the anytime core aborts a solve the moment the queue changes).
// onImproved runs on a solver worker goroutine under the solver's
// incumbent lock — it must be fast and must never block; decode
// failures of individual incumbents are skipped, not fatal. The final
// Outcome mirrors Solve's shape (single attempt, cache never consulted:
// an anytime session outlives any one fingerprint).
func SolveAnytime(ctx context.Context, cfg Config, inst *ilpsched.Instance, stop func() bool, onImproved func(AnytimeIncumbent)) *Outcome {
	cfg = cfg.withDefaults()
	scale := cfg.FixedScale
	if scale <= 0 {
		scale = cfg.Scaling.TimeScale(inst)
	}
	out := &Outcome{}
	att := Attempt{Scale: scale, Budget: cfg.Budget}
	span := cfg.Trace.StartSpan("solve.anytime",
		obs.Int("scale", scale),
		obs.Int("budget_ms", cfg.Budget.Milliseconds()))
	start := time.Now()
	sol, rs, err := anytimeOnce(ctx, cfg, inst, scale, stop, start, onImproved)
	att.Elapsed = time.Since(start)
	att.Err = err
	att.Failure = Classify(ctx, err)
	out.Attempts = append(out.Attempts, att)
	out.IncumbentReused = rs.incumbentReused
	span.End(obs.Str("failure", att.Failure.String()))
	cfg.Metrics.CounterVec("solve.attempts", "failure").With(att.Failure.String()).Inc()
	if err == nil {
		out.Solution, out.Scale, out.Presolve = sol, scale, rs.presolve
	} else {
		out.Err = err
	}
	return out
}

// anytimeOnce is solveOnce with incumbent streaming and a cooperative
// stop wired into the MIP options.
func anytimeOnce(ctx context.Context, cfg Config, inst *ilpsched.Instance, scale int64, stop func() bool, start time.Time, onImproved func(AnytimeIncumbent)) (sol *ilpsched.Solution, rs rungStats, err error) {
	defer func() {
		if r := recover(); r != nil {
			sol, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	var m *ilpsched.Model
	if cfg.PresolveOff {
		m, err = ilpsched.BuildGuarded(inst, scale, cfg.Limit)
	} else {
		var seeds []*schedule.Schedule
		if cfg.Seed != nil {
			seeds = append(seeds, cfg.Seed)
		}
		if cfg.ReuseSeed != nil {
			seeds = append(seeds, cfg.ReuseSeed)
		}
		var st *ilpsched.PresolveStats
		m, st, err = ilpsched.BuildPresolvedGuarded(inst, scale, cfg.Limit, ilpsched.PresolveOptions{Seeds: seeds})
		if err == nil {
			rs.presolve = st
		}
	}
	if err != nil {
		return nil, rs, err
	}
	opt := cfg.MIP
	opt.TimeLimit = cfg.Budget
	opt.Stop = stop
	if opt.Trace == nil {
		opt.Trace = cfg.Trace
	}
	if opt.Metrics == nil {
		opt.Metrics = cfg.Metrics
	}
	var chosen []float64
	bestObj := 0.0
	for _, cand := range []struct {
		s       *schedule.Schedule
		isReuse bool
	}{{cfg.Seed, false}, {cfg.ReuseSeed, true}} {
		if cand.s == nil {
			continue
		}
		inc, serr := m.IncumbentFromSchedule(cand.s)
		if serr != nil {
			continue
		}
		obj := m.ObjectiveOfVector(inc)
		if chosen == nil || obj < bestObj {
			chosen, bestObj = inc, obj
			rs.incumbentReused = cand.isReuse
		}
	}
	if chosen != nil {
		opt.Incumbent = chosen
	}
	if onImproved != nil {
		var streamedBest float64
		streamedAny := false
		prev := opt.OnIncumbent
		opt.OnIncumbent = func(obj float64, x []float64) {
			if prev != nil {
				prev(obj, x)
			}
			if streamedAny && obj >= streamedBest {
				return
			}
			// Decode on the worker goroutine: a malformed vector (or a
			// compaction failure) skips this incumbent rather than
			// poisoning the search.
			dec, derr := m.SolutionFromVector(x, obj)
			if derr != nil {
				cfg.Trace.Emit("solve.anytime.decode.failed", obs.Str("err", derr.Error()))
				return
			}
			streamedBest, streamedAny = obj, true
			onImproved(AnytimeIncumbent{
				Solution:  dec,
				Objective: dec.Objective,
				At:        time.Since(start),
			})
		}
	}
	fn := SolveFunc(func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error) {
		return m.SolveCtx(ctx, opt)
	})
	if cfg.Hook != nil {
		fn = cfg.Hook(fn)
	}
	sol, err = fn(ctx, m, opt)
	return sol, rs, err
}

// nextScale coarsens the grid for the next rung: multiply by factor,
// round up to the RoundTo granularity, and guarantee strict growth so
// the ladder always makes progress.
func nextScale(scale int64, factor float64, roundTo int64) int64 {
	next := int64(float64(scale) * factor)
	if roundTo > 1 {
		if rem := next % roundTo; rem != 0 {
			next += roundTo - rem
		}
	}
	if next <= scale {
		step := roundTo
		if step < 1 {
			step = 1
		}
		next = scale + step
	}
	return next
}

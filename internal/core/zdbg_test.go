package core

import (
	"testing"
	"time"

	"repro/internal/sim"
	"repro/internal/workload"
)

func TestZDebugStep(t *testing.T) {
	tr, _ := workload.Generate(workload.CTC(), 60, 7)
	cmp := NewComparator(100000)
	cmp.MIP.TimeLimit = 8 * time.Second
	st := &Study{Comparator: cmp, SampleEvery: 10, MinJobs: 4, MaxJobs: 8}
	if _, err := RunStudy(tr, st, sim.DefaultConfig()); err != nil {
		t.Fatal(err)
	}
	for _, r := range st.Rows {
		t.Logf("jobs=%d vars=%d nodes=%d lpiters=%d %v %v", r.Jobs, r.Variables, r.Nodes, r.LPIters, r.Status, r.ComputeTime)
	}
}

package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

func jb(id int, submit int64, width int, est, run int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: run}
}

// stepContext builds a synthetic self-tuning step for direct testing.
func stepContext(t *testing.T, mSize int, now int64, base *machine.Profile, jobs []*job.Job) *sim.StepContext {
	t.Helper()
	sched := dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.AdvancedDecider{})
	res, err := sched.Step(now, base, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return &sim.StepContext{Now: now, Waiting: jobs, Base: base, Result: res}
}

func TestCompareStepBasic(t *testing.T) {
	base := machine.New(4, 0)
	jobs := []*job.Job{
		jb(1, 0, 4, 600, 600), jb(2, 0, 2, 60, 60), jb(3, 0, 2, 120, 120),
	}
	sc := stepContext(t, 4, 0, base, jobs)
	c := NewComparator(2000)
	c.FixedScale = 1 // exact grid: ILP must be at least as good
	cmp, err := c.CompareStep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cmp == nil {
		t.Fatal("no comparison produced")
	}
	if cmp.Jobs != 3 {
		t.Fatalf("jobs = %d, want 3", cmp.Jobs)
	}
	if cmp.Status != mip.Optimal {
		t.Fatalf("status = %v", cmp.Status)
	}
	// At scale 1 the optimal schedule cannot lose: loss >= 0.
	if cmp.LossPercent < -1e-9 {
		t.Fatalf("negative loss %v at scale 1", cmp.LossPercent)
	}
	if cmp.Quality <= 0 {
		t.Fatalf("quality = %v", cmp.Quality)
	}
	if cmp.AccRuntime != 780 {
		t.Fatalf("acc runtime = %d, want 780", cmp.AccRuntime)
	}
	if cmp.ComputeTime <= 0 {
		t.Fatal("compute time not measured")
	}
}

func TestCompareStepCoarseScaleCanLose(t *testing.T) {
	// With a very coarse grid the compacted ILP schedule can end up worse
	// than the best policy (negative loss), which the paper observes.
	// Whatever the sign, the pipeline must succeed and report it.
	base := machine.New(4, 0)
	jobs := []*job.Job{
		jb(1, 0, 3, 95, 95), jb(2, 0, 2, 35, 35), jb(3, 0, 2, 65, 65), jb(4, 0, 1, 25, 25),
	}
	sc := stepContext(t, 4, 0, base, jobs)
	c := NewComparator(500)
	c.FixedScale = 90
	cmp, err := c.CompareStep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TimeScale != 90 {
		t.Fatalf("scale = %d, want 90", cmp.TimeScale)
	}
	if cmp.Quality <= 0 {
		t.Fatalf("quality = %v", cmp.Quality)
	}
}

func TestCompareStepEmptyQueue(t *testing.T) {
	c := NewComparator(100)
	sc := &sim.StepContext{Now: 0, Base: machine.New(4, 0),
		Result: &dynp.StepResult{}}
	cmp, err := c.CompareStep(sc)
	if err != nil || cmp != nil {
		t.Fatalf("empty step: %v %v", cmp, err)
	}
}

func TestStudyOverSimulation(t *testing.T) {
	tr, err := workload.Generate(workload.CTC(), 60, 33)
	if err != nil {
		t.Fatal(err)
	}
	st := &Study{
		Comparator:  NewComparator(300),
		SampleEvery: 3,
		MinJobs:     2,
		MaxJobs:     10,
	}
	st.Comparator.MIP.TimeLimit = 2 * time.Second
	res, err := RunStudy(tr, st, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Completed) != 60 {
		t.Fatalf("completed %d jobs, want 60", len(res.Completed))
	}
	if len(st.Rows) == 0 {
		t.Skip("workload produced no eligible steps (queue never reached 2 jobs)")
	}
	avg := st.Averages()
	if avg.Quality <= 0 {
		t.Fatalf("average quality %v", avg.Quality)
	}
	out := FormatTable1(st.Rows, avg)
	for _, want := range []string{"submission", "quality", "loss[%]", "averages"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 rendering missing %q:\n%s", want, out)
		}
	}
}

func TestStudySampling(t *testing.T) {
	st := &Study{Comparator: NewComparator(50), SampleEvery: 2, MinJobs: 1}
	hook := st.Hook()
	base := machine.New(4, 0)
	sched := dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.SimpleDecider{})
	for i := 0; i < 6; i++ {
		jobs := []*job.Job{jb(i+1, int64(i), 2, 50, 50)}
		res, err := sched.Step(int64(i), base, jobs)
		if err != nil {
			t.Fatal(err)
		}
		hook(&sim.StepContext{Now: int64(i), Waiting: jobs, Base: base, Result: res})
	}
	if len(st.Rows) != 3 {
		t.Fatalf("sampled %d rows, want 3 (every 2nd of 6)", len(st.Rows))
	}
}

func TestAveragesEmpty(t *testing.T) {
	st := &Study{}
	if avg := st.Averages(); avg.Jobs != 0 || avg.Quality != 0 {
		t.Fatalf("empty averages: %+v", avg)
	}
}

func TestSeedIncumbentImprovesOrEqual(t *testing.T) {
	base := machine.New(8, 0)
	jobs := []*job.Job{
		jb(1, 0, 8, 300, 300), jb(2, 0, 2, 60, 60), jb(3, 0, 4, 120, 120),
		jb(4, 0, 1, 600, 600), jb(5, 0, 2, 90, 90),
	}
	sc := stepContext(t, 8, 0, base, jobs)
	seeded := NewComparator(200)
	seeded.FixedScale = 30
	unseeded := NewComparator(200)
	unseeded.FixedScale = 30
	unseeded.SeedIncumbent = false
	a, err := seeded.CompareStep(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := unseeded.CompareStep(sc)
	if err != nil {
		t.Fatal(err)
	}
	// Both must produce a valid comparison; with identical limits the
	// seeded run can only have an equal or better (lower) ILP value when
	// both are optimal the values must agree.
	if a.Status == mip.Optimal && b.Status == mip.Optimal {
		if a.ILPValue != b.ILPValue {
			t.Fatalf("optimal ILP values differ: %v vs %v", a.ILPValue, b.ILPValue)
		}
	}
}

func TestScalingFallsBackToEq6(t *testing.T) {
	base := machine.New(4, 0)
	jobs := []*job.Job{jb(1, 0, 2, 7200, 7200), jb(2, 0, 2, 3600, 3600)}
	sc := stepContext(t, 4, 0, base, jobs)
	c := NewComparator(200)
	want := ilpsched.DefaultScaling().TimeScale(&ilpsched.Instance{
		Now: 0, Machine: 4, Base: base, Jobs: jobs, Horizon: 10800 + 0,
	})
	// Horizon in CompareStep is the max policy makespan; both sequential
	// orders give 10800.
	cmp, err := c.CompareStep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TimeScale != want {
		t.Fatalf("scale = %d, want Eq.6 value %d", cmp.TimeScale, want)
	}
}

func TestPower(t *testing.T) {
	// Quality 1 earned in 10 ms beats quality 1 earned in 100 s by 1e4.
	fast := Power(1, 10*time.Millisecond)
	slow := Power(1, 100*time.Second)
	if fast/slow != 1e4 {
		t.Fatalf("power ratio = %v, want 1e4", fast/slow)
	}
	if Power(1, 0) != 0 {
		t.Fatal("zero compute time should yield zero power")
	}
	c := &Comparison{Quality: 0.99, ComputeTime: 2 * time.Second}
	if got := c.PolicyPower(10 * time.Millisecond); got != 99 {
		t.Fatalf("PolicyPower = %v, want 99", got)
	}
	if got := c.ILPPower(); got != 0.5 {
		t.Fatalf("ILPPower = %v, want 0.5", got)
	}
}

func TestFormatTable1Rendering(t *testing.T) {
	rows := []Comparison{
		{SubmissionTime: 38000, Jobs: 8, MaxMakespan: 85559, AccRuntime: 1798000,
			TimeScale: 120, BestPolicy: "SJF", Quality: 0.99, LossPercent: 1.0,
			ComputeTime: 90 * time.Minute, Status: mip.Optimal},
		{SubmissionTime: 41000, Jobs: 9, MaxMakespan: 85596, AccRuntime: 1862000,
			TimeScale: 120, BestPolicy: "SJF", Quality: 1.002, LossPercent: -0.2,
			ComputeTime: 41 * time.Hour, Status: mip.Feasible},
	}
	avg := Comparison{Jobs: 8, MaxMakespan: 85577, AccRuntime: 1830000,
		TimeScale: 120, Quality: 0.996, LossPercent: 0.4, ComputeTime: time.Hour}
	out := FormatTable1(rows, avg)
	for _, want := range []string{"38000", "85559", "SJF", "+1.00", "-0.20",
		"optimal", "feasible", "averages", "2", "41h0m0s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestAveragesValues(t *testing.T) {
	st := &Study{Rows: []Comparison{
		{Jobs: 10, MaxMakespan: 100, AccRuntime: 1000, TimeScale: 120,
			Quality: 0.98, LossPercent: 2, ComputeTime: 2 * time.Second},
		{Jobs: 20, MaxMakespan: 300, AccRuntime: 3000, TimeScale: 240,
			Quality: 1.02, LossPercent: -2, ComputeTime: 4 * time.Second},
	}}
	avg := st.Averages()
	if avg.Jobs != 15 || avg.MaxMakespan != 200 || avg.AccRuntime != 2000 {
		t.Fatalf("size averages wrong: %+v", avg)
	}
	if avg.TimeScale != 180 || avg.Quality != 1.0 || avg.LossPercent != 0 {
		t.Fatalf("quality averages wrong: %+v", avg)
	}
	if avg.ComputeTime != 3*time.Second {
		t.Fatalf("compute average = %v", avg.ComputeTime)
	}
}

func TestBestPolicySchedule(t *testing.T) {
	base := machine.New(4, 0)
	jobs := []*job.Job{jb(1, 0, 4, 600, 600), jb(2, 0, 2, 60, 60)}
	sc := stepContext(t, 4, 0, base, jobs)
	c := NewComparator(100)
	s := c.BestPolicySchedule(sc)
	if s == nil {
		t.Fatal("no best schedule")
	}
	want := bestEvaluation(c.Metric, sc.Result.Evals)
	if s.Policy != want.Policy.Name() {
		t.Fatalf("best schedule from %s, want %s", s.Policy, want.Policy.Name())
	}
	empty := &sim.StepContext{Result: &dynp.StepResult{}}
	if c.BestPolicySchedule(empty) != nil {
		t.Fatal("best schedule for empty step")
	}
}

func TestHookSkipsOutOfWindowSteps(t *testing.T) {
	st := &Study{Comparator: NewComparator(50), SampleEvery: 1, MinJobs: 3, MaxJobs: 4}
	hook := st.Hook()
	base := machine.New(8, 0)
	sched := dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.SimpleDecider{})
	sizes := []int{1, 3, 5, 4}
	id := 1
	for _, n := range sizes {
		var jobs []*job.Job
		for k := 0; k < n; k++ {
			jobs = append(jobs, jb(id, 0, 2, 50, 50))
			id++
		}
		res, err := sched.Step(0, base, jobs)
		if err != nil {
			t.Fatal(err)
		}
		hook(&sim.StepContext{Now: 0, Waiting: jobs, Base: base, Result: res})
	}
	if len(st.Rows) != 2 { // only the 3- and 4-job steps are in window
		t.Fatalf("rows = %d, want 2", len(st.Rows))
	}
}

func TestRunStudyBadTrace(t *testing.T) {
	st := &Study{Comparator: NewComparator(10)}
	if _, err := RunStudy(&job.Trace{}, st, sim.DefaultConfig()); err == nil {
		t.Fatal("empty trace accepted")
	}
}

func TestWriteJSON(t *testing.T) {
	st := &Study{Rows: []Comparison{{SubmissionTime: 100, Jobs: 5, Quality: 0.99,
		LossPercent: 1, TimeScale: 120, BestPolicy: "SJF", Status: mip.Optimal}}}
	var buf bytes.Buffer
	if err := st.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Rows     []Comparison `json:"rows"`
		Averages Comparison   `json:"averages"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Rows) != 1 || decoded.Rows[0].BestPolicy != "SJF" {
		t.Fatalf("round trip lost data: %+v", decoded)
	}
	if decoded.Averages.Jobs != 5 {
		t.Fatalf("averages wrong: %+v", decoded.Averages)
	}
}

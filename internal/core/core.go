// Package core implements the paper's primary contribution: the
// comparison of optimal (CPLEX-style, here branch-and-bound) schedules
// with the schedules of the self-tuning dynP scheduler.
//
// At selected self-tuning steps the comparator extracts the quasi
// off-line instance (waiting jobs + machine history), chooses a time
// scale with Eq. 6, solves the time-indexed ILP, compacts the solution
// per §3.2, and reports the quality (Eq. 7) and performance loss of the
// best basic policy — one row of the paper's Table 1. The optimal
// schedules are observational only: they never influence the running
// simulation, exactly as the paper prescribes, so every step compares
// against the same resource-usage history.
package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/dynp"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/table"
)

// Comparison is one row of Table 1.
type Comparison struct {
	// SubmissionTime is the step instant (the submission that triggered
	// the self-tuning step).
	SubmissionTime int64
	// Jobs is the number of waiting jobs in the step.
	Jobs int
	// MaxMakespan is the horizon bound T minus now (the "makespan"
	// column of Table 1).
	MaxMakespan int64
	// AccRuntime is the accumulated estimated runtime of the waiting jobs.
	AccRuntime int64
	// TimeScale is the Eq. 6 grid width in seconds.
	TimeScale int64
	// BestPolicy names the best basic policy of the step and PolicyValue
	// its metric value.
	BestPolicy  string
	PolicyValue float64
	// ILPValue is the metric value of the compacted ILP schedule.
	ILPValue float64
	// Quality is Eq. 7 (ILP/policy for minimize metrics) and LossPercent
	// is (1-quality)*100: positive when the ILP schedule is better,
	// possibly negative under coarse time-scaling.
	Quality     float64
	LossPercent float64
	// ComputeTime is the wall-clock time of model build + solve.
	ComputeTime time.Duration
	// Status/Nodes/LPIters describe the branch-and-bound run. A Feasible
	// status means limits were hit and the ILP value is an upper bound.
	Status  mip.Status
	Nodes   int
	LPIters int
	// Variables/MatrixEntries give the Eq. 6 problem size actually built.
	Variables     int
	MatrixEntries int
}

// Power implements the paper's closing measure of §3: since neither
// quality nor compute time alone ranks a scheduler, "the physical
// definition of power, i.e. work per time unit, is well suited": schedule
// quality earned per second of scheduling compute time. The basic
// policies (quality ≈ 1 in milliseconds) dwarf the ILP (quality 1 in
// minutes to days) on this measure, which is the paper's practical
// conclusion.
func Power(quality float64, computeTime time.Duration) float64 {
	secs := computeTime.Seconds()
	if secs <= 0 {
		return 0
	}
	return quality / secs
}

// PolicyPower returns the power of the best basic policy of the row,
// assuming the measured per-step policy scheduling time.
func (c *Comparison) PolicyPower(policyTime time.Duration) float64 {
	return Power(c.Quality, policyTime)
}

// ILPPower returns the power of the ILP schedule of the row (quality 1 by
// definition, earned over the measured compute time).
func (c *Comparison) ILPPower() float64 {
	return Power(1, c.ComputeTime)
}

// Comparator configures the per-step comparisons.
type Comparator struct {
	// Metric is the schedule metric, SLDwA in the paper's Table 1.
	Metric metrics.Metric
	// Scaling is the Eq. 6 configuration; FixedScale > 0 overrides it.
	Scaling    ilpsched.Scaling
	FixedScale int64
	// MIP are the branch-and-bound limits for each step (node and time
	// limits keep the harness bounded; the paper let CPLEX run for up to
	// 237 hours).
	MIP mip.Options
	// SeedIncumbent seeds the search with the best policy schedule, as
	// the paper seeds T with the policy makespans.
	SeedIncumbent bool
}

// NewComparator returns the paper's configuration (SLDwA, Eq. 6 scaling,
// policy-seeded search) with the given per-step node limit.
func NewComparator(maxNodes int) *Comparator {
	return &Comparator{
		Metric:        metrics.SLDwA{},
		Scaling:       ilpsched.DefaultScaling(),
		MIP:           mip.Options{MaxNodes: maxNodes},
		SeedIncumbent: true,
	}
}

// bestEvaluation returns the policy evaluation with the best metric value.
func bestEvaluation(m metrics.Metric, evals []dynp.Evaluation) dynp.Evaluation {
	best := evals[0]
	for _, e := range evals[1:] {
		if metrics.Better(m, e.Value, best.Value) {
			best = e
		}
	}
	return best
}

// CompareStep runs the full pipeline on one self-tuning step. It returns
// (nil, nil) for steps with an empty waiting queue.
func (c *Comparator) CompareStep(sc *sim.StepContext) (*Comparison, error) {
	if len(sc.Waiting) == 0 || len(sc.Result.Evals) == 0 {
		return nil, nil
	}
	best := bestEvaluation(c.Metric, sc.Result.Evals)
	var horizon int64
	for _, e := range sc.Result.Evals {
		if mk := e.Schedule.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	if horizon <= sc.Now {
		return nil, nil
	}
	inst := &ilpsched.Instance{
		Now:     sc.Now,
		Machine: sc.Base.Total(),
		Base:    sc.Base,
		Jobs:    sc.Waiting,
		Horizon: horizon,
	}
	scale := c.FixedScale
	if scale <= 0 {
		scale = c.Scaling.TimeScale(inst)
	}
	cmp := &Comparison{
		SubmissionTime: sc.Now,
		Jobs:           len(sc.Waiting),
		MaxMakespan:    inst.MaxMakespan(),
		AccRuntime:     inst.AccumulatedRuntime(),
		TimeScale:      scale,
		BestPolicy:     best.Policy.Name(),
		PolicyValue:    best.Value,
	}
	start := time.Now()
	model, err := ilpsched.Build(inst, scale)
	if err != nil {
		return nil, fmt.Errorf("core: step at %d: %w", sc.Now, err)
	}
	cmp.Variables = model.NumVariables()
	cmp.MatrixEntries = model.MatrixEntries()
	opt := c.MIP
	if c.SeedIncumbent {
		if inc, err := model.IncumbentFromSchedule(best.Schedule); err == nil {
			opt.Incumbent = inc
		}
	}
	sol, err := model.Solve(opt)
	cmp.ComputeTime = time.Since(start)
	if err != nil {
		// A *ilpsched.NoScheduleError (node/time limits exhausted without an
		// incumbent, or proven infeasibility) counts as a failed comparison;
		// %w keeps the typed error matchable for callers that care.
		return nil, fmt.Errorf("core: step at %d: %w", sc.Now, err)
	}
	cmp.Status = sol.MIP.Status
	cmp.Nodes = sol.MIP.Nodes
	cmp.LPIters = sol.MIP.LPIters
	if sol.Compacted == nil {
		return nil, fmt.Errorf("core: step at %d: ILP found no schedule (%v)", sc.Now, sol.MIP.Status)
	}
	if err := sol.Compacted.Validate(sc.Base); err != nil {
		return nil, fmt.Errorf("core: step at %d: infeasible ILP schedule: %v", sc.Now, err)
	}
	cmp.ILPValue = c.Metric.Eval(sol.Compacted)
	cmp.Quality = metrics.Quality(c.Metric, cmp.ILPValue, cmp.PolicyValue)
	cmp.LossPercent = metrics.LossPercent(cmp.Quality)
	return cmp, nil
}

// Study runs a whole simulation with the comparator attached to sampled
// self-tuning steps and collects the Table 1 rows.
type Study struct {
	// Comparator does the per-step work.
	Comparator *Comparator
	// SampleEvery compares every k-th eligible step (1 = every step, the
	// paper's setting; larger values keep harness runtimes bounded).
	SampleEvery int
	// MinJobs/MaxJobs restrict comparisons to steps whose queue length is
	// in [MinJobs, MaxJobs] (0 = no upper bound); Table 1 shows steps
	// with roughly 8-33 waiting jobs.
	MinJobs, MaxJobs int

	Rows []Comparison
	// Errors counts steps whose comparison failed (e.g. node limits with
	// no schedule); the simulation itself is never disturbed.
	Errors int

	eligible int
}

// Hook returns the sim.Config.OnStep callback that feeds the study.
func (st *Study) Hook() func(*sim.StepContext) {
	if st.SampleEvery < 1 {
		st.SampleEvery = 1
	}
	return func(sc *sim.StepContext) {
		n := len(sc.Waiting)
		if n < st.MinJobs || (st.MaxJobs > 0 && n > st.MaxJobs) {
			return
		}
		st.eligible++
		if (st.eligible-1)%st.SampleEvery != 0 {
			return
		}
		cmp, err := st.Comparator.CompareStep(sc)
		if err != nil || cmp == nil {
			if err != nil {
				st.Errors++
			}
			return
		}
		st.Rows = append(st.Rows, *cmp)
	}
}

// Averages returns the aggregate row ("the last line with average values
// ... generated from all CPLEX computations").
func (st *Study) Averages() Comparison {
	var avg Comparison
	n := len(st.Rows)
	if n == 0 {
		return avg
	}
	var quality, loss, scale, jobs, mk, acc float64
	var compute time.Duration
	for _, r := range st.Rows {
		quality += r.Quality
		loss += r.LossPercent
		scale += float64(r.TimeScale)
		jobs += float64(r.Jobs)
		mk += float64(r.MaxMakespan)
		acc += float64(r.AccRuntime)
		compute += r.ComputeTime
	}
	avg.Jobs = int(jobs/float64(n) + 0.5)
	avg.MaxMakespan = int64(mk / float64(n))
	avg.AccRuntime = int64(acc / float64(n))
	avg.TimeScale = int64(scale / float64(n))
	avg.Quality = quality / float64(n)
	avg.LossPercent = loss / float64(n)
	avg.ComputeTime = compute / time.Duration(n)
	return avg
}

// FormatTable1 renders the rows and averages in the layout of the paper's
// Table 1 ("Examples of CPLEX problem sizes, the quality, and the compute
// time").
func FormatTable1(rows []Comparison, avg Comparison) string {
	t := table.New("submission", "jobs", "makespan", "acc.runtime",
		"scale[min]", "policy", "quality", "loss[%]", "compute", "status")
	for _, r := range rows {
		t.Row(r.SubmissionTime, r.Jobs, r.MaxMakespan, r.AccRuntime,
			r.TimeScale/60, r.BestPolicy,
			fmt.Sprintf("%.4f", r.Quality), fmt.Sprintf("%+.2f", r.LossPercent),
			fmtDur(r.ComputeTime), r.Status.String())
	}
	t.Separator()
	t.Row("averages", avg.Jobs, avg.MaxMakespan, avg.AccRuntime,
		avg.TimeScale/60, "",
		fmt.Sprintf("%.4f", avg.Quality), fmt.Sprintf("%+.2f", avg.LossPercent),
		fmtDur(avg.ComputeTime), "")
	return t.String()
}

func fmtDur(d time.Duration) string {
	return d.Round(time.Millisecond).String()
}

// RunStudy simulates the trace with a fresh standard dynP scheduler
// (FCFS/SJF/LJF, SLDwA, advanced decider) and the study attached.
func RunStudy(tr *job.Trace, st *Study, cfg sim.Config) (*sim.Result, error) {
	sched, err := dynp.New(policy.Standard(), metrics.SLDwA{}, dynp.AdvancedDecider{})
	if err != nil {
		return nil, err
	}
	cfg.OnStep = st.Hook()
	s, err := sim.New(tr, sched, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// BestPolicySchedule returns the best policy schedule of a step by the
// comparator's metric (exported for the examples).
func (c *Comparator) BestPolicySchedule(sc *sim.StepContext) *schedule.Schedule {
	if len(sc.Result.Evals) == 0 {
		return nil
	}
	return bestEvaluation(c.Metric, sc.Result.Evals).Schedule
}

// WriteJSON emits the study's rows and averages as JSON, for downstream
// analysis of harness runs (cmd/table1 -json).
func (st *Study) WriteJSON(w io.Writer) error {
	type payload struct {
		Rows     []Comparison `json:"rows"`
		Averages Comparison   `json:"averages"`
		Errors   int          `json:"errors"`
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(payload{Rows: st.Rows, Averages: st.Averages(), Errors: st.Errors})
}

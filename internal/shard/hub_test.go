package shard

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// drainEvents reads from a subscription until idle for the grace
// period, the channel closes, or the deadline passes.
func drainEvents(sub *Subscription, idle time.Duration, deadline time.Duration) []Event {
	var out []Event
	stop := time.After(deadline)
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-time.After(idle):
			return out
		case <-stop:
			return out
		}
	}
}

// TestHubPrimerAndContiguity: a subscriber joining mid-stream gets one
// plan-version primer per published shard at its current version, then
// every later publication exactly once — per shard, versions are
// contiguous from the primer, and the subscriber sequence has no gaps.
func TestHubPrimerAndContiguity(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHub(2, 64, reg)
	h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: 1, Now: 10})
	h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: 2, Now: 20})
	h.sink(1).SnapshotPublished(&schedd.Snapshot{Version: 1, Now: 5})

	sub := h.Subscribe(nil)
	defer sub.Close()
	// Concurrent publications after subscription.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := int64(3); v <= 10; v++ {
			h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: v})
		}
		for v := int64(2); v <= 6; v++ {
			h.sink(1).SnapshotPublished(&schedd.Snapshot{Version: v})
		}
		h.sink(1).JobCompleted(schedd.JobStatus{ID: 3, State: schedd.StateDone, Width: 2})
	}()
	<-done

	evs := drainEvents(sub, 100*time.Millisecond, 5*time.Second)
	last := map[int]int64{}
	var seq int64
	jobEvents := 0
	for _, ev := range evs {
		seq++
		if ev.Seq != seq {
			t.Fatalf("subscriber sequence gap: got seq %d, want %d", ev.Seq, seq)
		}
		switch ev.Type {
		case EventPlanVersion:
			prev, seen := last[ev.Shard]
			if seen && ev.Version != prev+1 {
				t.Fatalf("shard %d: version %d after %d (lost or duplicated event)", ev.Shard, ev.Version, prev)
			}
			if !seen {
				// The primer must be the version current at subscribe time.
				want := int64(2)
				if ev.Shard == 1 {
					want = 1
				}
				if ev.Version != want {
					t.Fatalf("shard %d primer at version %d, want %d", ev.Shard, ev.Version, want)
				}
			}
			last[ev.Shard] = ev.Version
		case EventJobCompleted:
			jobEvents++
			// The job ID must arrive globalized: local 3 on shard 1 of 2.
			if ev.Job == nil || ev.Job.ID != 3*2+1 {
				t.Fatalf("completed event job = %+v, want globalized id %d", ev.Job, 3*2+1)
			}
		}
	}
	if last[0] != 10 || last[1] != 6 {
		t.Errorf("final versions %v, want shard0=10 shard1=6", last)
	}
	if jobEvents != 1 {
		t.Errorf("saw %d job-completed events, want exactly 1", jobEvents)
	}
}

func TestHubTypeFilter(t *testing.T) {
	h := newHub(1, 64, nil)
	sub := h.Subscribe(map[string]bool{EventJobPlanned: true})
	defer sub.Close()
	h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: 1})
	h.sink(0).JobPlanned(schedd.JobStatus{ID: 1, State: schedd.StateWaiting})
	h.sink(0).JobCompleted(schedd.JobStatus{ID: 1, State: schedd.StateDone})
	evs := drainEvents(sub, 50*time.Millisecond, time.Second)
	if len(evs) != 1 || evs[0].Type != EventJobPlanned {
		t.Fatalf("filtered stream delivered %+v, want one job-planned", evs)
	}
	// Filtered-out events must not consume sequence numbers: the stream
	// the client sees stays gapless.
	if evs[0].Seq != 1 {
		t.Errorf("first delivered event has seq %d, want 1", evs[0].Seq)
	}
}

// TestHubOverflowDisconnects: a subscriber that stops reading is cut
// off (channel closed, counted) instead of blocking the writer loops.
func TestHubOverflowDisconnects(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHub(1, 2, reg)
	sub := h.Subscribe(nil)
	for v := int64(1); v <= 5; v++ {
		h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: v})
	}
	if h.Subscribers() != 0 {
		t.Errorf("overflowed subscriber still registered (%d subs)", h.Subscribers())
	}
	evs := drainEvents(sub, 50*time.Millisecond, time.Second)
	if len(evs) != 2 {
		t.Errorf("received %d buffered events, want 2", len(evs))
	}
	// The channel must be closed now.
	if _, open := <-sub.Events(); open {
		t.Error("subscription channel still open after overflow")
	}
	if got := counterValue(reg, "shard.sse.overflow_disconnects"); got != 1 {
		t.Errorf("overflow counter = %d, want 1", got)
	}
	// A healthy subscriber keeps receiving after the slow one was cut.
	sub2 := h.Subscribe(nil)
	defer sub2.Close()
	h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: 6})
	evs = drainEvents(sub2, 50*time.Millisecond, time.Second)
	if len(evs) != 2 { // primer (v5) + live v6
		t.Fatalf("fresh subscriber got %d events, want 2", len(evs))
	}
	if evs[0].Version != 5 || evs[1].Version != 6 {
		t.Errorf("fresh subscriber versions %d,%d want 5,6", evs[0].Version, evs[1].Version)
	}
}

// TestHubPrimerOverflowNotRegistered: when the primer loop itself
// overflows the buffer (buffer < published shard count), the dead
// subscription must not be registered — it would sit in h.subs
// forever, inflating Subscribers() and leaking per-subscription state.
func TestHubPrimerOverflowNotRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	h := newHub(3, 1, reg)
	for i := 0; i < 3; i++ {
		h.sink(i).SnapshotPublished(&schedd.Snapshot{Version: 1})
	}
	sub := h.Subscribe(nil)
	if got := h.Subscribers(); got != 0 {
		t.Errorf("dead-at-subscribe subscription registered: Subscribers() = %d, want 0", got)
	}
	// The one buffered primer is readable, then the channel is closed.
	evs := drainEvents(sub, 50*time.Millisecond, time.Second)
	if len(evs) != 1 {
		t.Errorf("received %d primer events, want 1 (buffer size)", len(evs))
	}
	if _, open := <-sub.Events(); open {
		t.Error("subscription channel still open after primer overflow")
	}
	if got := counterValue(reg, "shard.sse.overflow_disconnects"); got != 1 {
		t.Errorf("overflow counter = %d, want 1", got)
	}
	// Close on the already-dead subscription must be a safe no-op, and
	// later publications must not resurrect or double-close it.
	sub.Close()
	h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: 2})
	if got := h.Subscribers(); got != 0 {
		t.Errorf("Subscribers() = %d after close, want 0", got)
	}
}

// TestSSEEndpoint checks the wire format of GET /v1/events: id: is the
// hub-global event ID, event: the type, data: the JSON payload, and a
// ?types= filter restricts delivery.
func TestSSEEndpoint(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 8,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)
	srv := httptest.NewServer(NewHandler(r))
	defer srv.Close()

	// Publish at least one version per shard before subscribing so the
	// primers are guaranteed.
	for i := 0; i < 4; i++ {
		resp := mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 10})
		waitState(t, r, resp.ID)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/v1/events?types=plan-version", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}

	type frame struct {
		id    string
		event string
		data  string
	}
	var frames []frame
	var cur frame
	sc := bufio.NewScanner(resp.Body)
	for len(frames) < 2 && sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.data != "":
			frames = append(frames, cur)
			cur = frame{}
		}
	}
	cancel()
	if len(frames) < 2 {
		t.Fatalf("read %d SSE frames, want 2 primers (one per shard): %v", len(frames), sc.Err())
	}
	shardsSeen := map[int]bool{}
	for i, f := range frames {
		if f.event != EventPlanVersion {
			t.Errorf("frame %d: event %q leaked through types filter", i, f.event)
		}
		var ev Event
		if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
			t.Fatalf("frame %d data %q: %v", i, f.data, err)
		}
		if wantID := strconv.FormatUint(ev.ID, 10); f.id != wantID || ev.ID == 0 {
			t.Errorf("frame %d id %q, want the hub-global ID %q (nonzero)", i, f.id, wantID)
		}
		if ev.Version < 1 {
			t.Errorf("frame %d: primer version %d < 1", i, ev.Version)
		}
		shardsSeen[ev.Shard] = true
	}
	if !shardsSeen[0] || !shardsSeen[1] {
		t.Errorf("primers covered shards %v, want both", shardsSeen)
	}
}

package shard

import (
	"context"
	"errors"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/schedd"
)

func TestPartition(t *testing.T) {
	cases := []struct {
		shards, machine, wide int
		want                  []int
	}{
		{4, 430, 0, []int{108, 108, 107, 107}},
		{4, 430, 256, []int{256, 58, 58, 58}},
		{3, 10, 0, []int{4, 3, 3}},
		{1, 430, 0, []int{430}},
		{2, 7, 5, []int{5, 2}},
	}
	for _, c := range cases {
		r := newTestRouter(t, Config{
			Shards: c.shards, Machine: c.machine, WideLane: c.wide,
			Factory: basicFactory(t, schedd.NewManualClock(0), nil),
		})
		got := r.Machines()
		total := 0
		for i, m := range got {
			total += m
			if m != c.want[i] {
				t.Errorf("shards=%d machine=%d wide=%d: machines %v, want %v",
					c.shards, c.machine, c.wide, got, c.want)
				break
			}
		}
		if total != c.machine {
			t.Errorf("partition of %d sums to %d", c.machine, total)
		}
	}
	// A wide lane that starves the other shards must be rejected.
	if _, err := New(Config{
		Shards: 4, Machine: 10, WideLane: 8,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	}); err == nil {
		t.Error("wide lane 8 of 10 with 4 shards: want error, got nil")
	}
	if _, err := New(Config{Shards: 0, Machine: 4, Factory: basicFactory(t, schedd.NewManualClock(0), nil)}); err == nil {
		t.Error("0 shards: want error")
	}
	if _, err := New(Config{Shards: 4, Machine: 4, Factory: nil}); err == nil {
		t.Error("nil factory: want error")
	}
}

func TestGlobalIDRoundtrip(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 4, Machine: 16,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	for shard := 0; shard < 4; shard++ {
		for local := 1; local <= 100; local++ {
			gid := r.global(shard, local)
			s, l, ok := r.locate(gid)
			if !ok || s != shard || l != local {
				t.Fatalf("global(%d,%d)=%d located as (%d,%d,%v)", shard, local, gid, s, l, ok)
			}
		}
	}
	// IDs below the shard count can never be minted (locals start at 1).
	for gid := 0; gid < 4; gid++ {
		if _, _, ok := r.locate(gid); ok {
			t.Errorf("locate(%d) = ok, want invalid", gid)
		}
	}
}

func TestWidthValidation(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 4, Machine: 430, WideLane: 256,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	var ve *schedd.ValidationError
	// 256 fits the wide lane even though an even split (107) would not.
	// (Cores are unstarted: admission only, nothing consumes the queue.)
	if _, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 256, Estimate: 10}); err != nil {
		t.Errorf("width 256 with wide lane 256: %v", err)
	}
	if _, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 257, Estimate: 10}); !errors.As(err, &ve) {
		t.Errorf("width 257: got %v, want ValidationError", err)
	}
	if _, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 0, Estimate: 10}); !errors.As(err, &ve) {
		t.Errorf("width 0: got %v, want ValidationError", err)
	}
}

func TestKeyedRoutingStableAndDeduplicated(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{
		Shards: 4, Machine: 16, Metrics: reg,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)

	for i := 0; i < 16; i++ {
		key := fmtKey(i)
		want := r.keyShard(key, 1)
		first := mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 5, IdempotencyKey: key})
		if first.Shard != want || first.ID%4 != want {
			t.Fatalf("key %q: routed to shard %d (id %d), want %d", key, first.Shard, first.ID, want)
		}
		// A resubmission with the same key must meet the original
		// admission's dedup entry — same shard, same global ID.
		again := mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 5, IdempotencyKey: key})
		if !again.Deduplicated {
			t.Fatalf("key %q: resubmission not deduplicated", key)
		}
		if again.ID != first.ID {
			t.Fatalf("key %q: resubmission id %d != original %d", key, again.ID, first.ID)
		}
	}
}

// TestKeyedWideRouting: a keyed job wider than some sub-machines must
// pin — stably — to a shard that fits it. With the naive hash(key)%N
// pin, most keys wider than the narrow shards were permanently
// unservable (400 from the pinned core) even though the wide lane had
// room.
func TestKeyedWideRouting(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 4, Machine: 430, WideLane: 256, // machines [256 58 58 58]
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	// Every key must admit a width-100 job, and always on shard 0 (the
	// only fitting shard). Cores are unstarted: admission only.
	for i := 0; i < 32; i++ {
		key := fmtKey(i)
		if got := r.keyShard(key, 100); got != 0 {
			t.Fatalf("key %q width 100: pinned to shard %d, want 0 (machines %v)", key, got, r.Machines())
		}
		resp, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 100, Estimate: 10, IdempotencyKey: key})
		if err != nil {
			t.Fatalf("keyed width-100 submit (key %q): %v", key, err)
		}
		if resp.Shard != 0 {
			t.Fatalf("key %q width 100: landed on shard %d, want 0", key, resp.Shard)
		}
		again, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 100, Estimate: 10, IdempotencyKey: key})
		if err != nil || !again.Deduplicated || again.ID != resp.ID {
			t.Fatalf("key %q: resubmission %+v err=%v, want dedup onto id %d", key, again, err, resp.ID)
		}
	}
	// Narrow keyed jobs keep the full fitting set: the pin equals the
	// legacy hash(key)%N, so pre-existing keys still route unchanged.
	for i := 0; i < 32; i++ {
		h := fnvOf(fmtKey(i))
		if got, want := r.keyShard(fmtKey(i), 1), int(h%4); got != want {
			t.Fatalf("key %q width 1: pinned to shard %d, want hash%%N = %d", fmtKey(i), got, want)
		}
	}
}

// TestReservedMigrationKeyRejected: client keys in the migration
// protocol's synthetic namespace must be refused at the front end — a
// client key like "mig:0:7" landing on the migration's target shard
// would dedup a user job against a migrated one.
func TestReservedMigrationKeyRejected(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 8,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	var ve *schedd.ValidationError
	_, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 1, Estimate: 10, IdempotencyKey: "mig:0:7"})
	if !errors.As(err, &ve) {
		t.Fatalf("reserved key: got %v, want ValidationError", err)
	}
	// A key merely containing (not starting with) the prefix is fine.
	if _, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 1, Estimate: 10, IdempotencyKey: "client-mig:0:7"}); err != nil {
		t.Fatalf("non-prefix key rejected: %v", err)
	}
}

func fnvOf(key string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return h.Sum32()
}

func TestJobLookupAcrossShards(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 4, Machine: 16,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)

	ids := make([]int, 0, 8)
	for i := 0; i < 8; i++ {
		resp := mustSubmit(t, r, schedd.SubmitRequest{Width: 2, Estimate: 10})
		ids = append(ids, resp.ID)
	}
	for _, gid := range ids {
		st := waitState(t, r, gid)
		if st.ID != gid {
			t.Errorf("job %d: status reports id %d", gid, st.ID)
		}
		if st.Shard != gid%4 {
			t.Errorf("job %d: status reports shard %d, want %d", gid, st.Shard, gid%4)
		}
	}
	if _, ok := r.Job(999983); ok {
		t.Error("lookup of never-issued id succeeded")
	}
}

// TestRetryAfterMaxAcrossShards drives every candidate shard into
// backpressure and checks the 429's Retry-After is the maximum hint
// across the shards tried, not the last one's. Cores stay unstarted so
// admission state is fully deterministic.
func TestRetryAfterMaxAcrossShards(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 8, Metrics: reg,
		Factory: basicFactory(t, schedd.NewManualClock(0), func(idx int, cfg *schedd.Config) {
			if idx == 0 {
				cfg.QueueBound = 1 // second admit: ErrQueueFull, Retry-After 1s
			} else {
				cfg.QueueBound = 8
				cfg.RatePerSource = 0.0001 // second token ~10000s away
				cfg.Burst = 1
			}
		}),
	})
	// Fill shard 0's queue and spend shard 1's only token.
	mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 5, Source: "src"})
	mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 5, Source: "src"})

	_, err := r.Submit(context.Background(), schedd.SubmitRequest{Width: 1, Estimate: 5, Source: "src"})
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("got %v, want BackpressureError", err)
	}
	if bp.Shards != 2 {
		t.Errorf("tried %d shards, want 2", bp.Shards)
	}
	// The max across {queue-full 1s, rate-limit ~10000s} must be the
	// rate limiter's wait, regardless of which shard was tried last.
	if bp.RetryAfter <= time.Second {
		t.Errorf("RetryAfter %v: max across shards not propagated", bp.RetryAfter)
	}
	if got := counterValue(reg, "shard.submit.backpressured"); got != 1 {
		t.Errorf("shard.submit.backpressured = %d, want 1", got)
	}
}

// TestPlacementWideVsNarrow checks the two placement regimes: wide jobs
// spread to the least-loaded fitting shard, narrow jobs pack onto the
// busiest shard within the load band (and spread when the band is 0).
func TestPlacementWideVsNarrow(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 20, PackSlack: 8,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)

	// Load shard 0 with one planned job (active=1, score 1).
	resp := mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 100})
	first := resp.ID % 2
	waitState(t, r, resp.ID)

	// Wide (width*2 > 10): must go to the emptier shard.
	order, wide := r.placeOrder(6)
	if !wide {
		t.Fatal("width 6 of max 10 not classified wide")
	}
	if order[0] == first {
		t.Errorf("wide job ordered onto loaded shard %d first", first)
	}
	// Narrow within the band: pack onto the shard with more active work.
	order, wide = r.placeOrder(1)
	if wide {
		t.Fatal("width 1 classified wide")
	}
	if order[0] != first {
		t.Errorf("narrow job (band 8) ordered to shard %d, want busy shard %d", order[0], first)
	}
	// Collapse the band: the busy shard falls outside it and narrow jobs
	// spread by load again.
	r.cfg.PackSlack = 0
	order, _ = r.placeOrder(1)
	if order[0] == first {
		t.Errorf("narrow job (band 0) still ordered to busy shard %d", first)
	}
	// A width only the bigger shard can fit never lists the smaller one.
	r2 := newTestRouter(t, Config{
		Shards: 2, Machine: 12, WideLane: 8,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	order, _ = r2.placeOrder(6)
	if len(order) != 1 || order[0] != 0 {
		t.Errorf("width 6 on machines [8 4]: candidates %v, want [0]", order)
	}
}

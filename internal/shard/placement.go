// Job-width-aware placement. The policy follows the stochastic
// bin-packing shape of Hong, Xie & Wang (2022): narrow jobs consolidate
// onto already-busy shards (keeping whole sub-machines free so wide
// jobs are not fragmented out), while wide jobs — which need contiguous
// capacity — spread to the least-loaded shard that can fit them. A
// bounded load band keeps packing from starving throughput: a narrow
// job packs only onto a shard whose backlog score is within PackSlack
// of the emptiest candidate, so load imbalance stays bounded and the
// per-shard replan loops all stay fed.
package shard

import "sort"

// queueWeight makes admitted-but-unplanned backlog dominate the load
// score: queued jobs are what submit-to-plan latency is made of, while
// planned/running jobs cost each replan far less.
const queueWeight = 4

// shardLoad is one shard's placement-time load sample. Both inputs are
// O(1) reads (channel length, snapshot map length), so placement stays
// cheap on the submission hot path.
type shardLoad struct {
	idx    int
	cap    int
	queued int // admitted, not yet planned
	active int // planned or running
}

func (l shardLoad) score() int { return l.queued*queueWeight + l.active }

// loads samples every shard's current load.
func (r *Router) loads() []shardLoad {
	out := make([]shardLoad, r.n)
	for i, c := range r.cores {
		out[i] = shardLoad{
			idx:    i,
			cap:    r.machines[i],
			queued: c.QueueDepth(),
			active: len(c.Snapshot().Active),
		}
	}
	return out
}

// placeOrder returns the candidate shards for an unkeyed job of the
// given width, best first, and whether the job classified as wide. The
// caller tries candidates in order, falling through on backpressure.
func (r *Router) placeOrder(width int) (order []int, wide bool) {
	ls := r.loads()
	fits := ls[:0]
	for _, l := range ls {
		if l.cap >= width {
			fits = append(fits, l)
		}
	}
	// Wide: the job needs more than half of the largest sub-machine —
	// fragmentation can strand it, so it takes the emptiest fitting
	// shard (ties broken toward spare capacity).
	wide = width*2 > r.maxMachine
	if wide {
		sort.Slice(fits, func(i, k int) bool {
			if fits[i].score() != fits[k].score() {
				return fits[i].score() < fits[k].score()
			}
			if fits[i].cap != fits[k].cap {
				return fits[i].cap > fits[k].cap
			}
			return fits[i].idx < fits[k].idx
		})
	} else {
		// Narrow: greedy packing within the load band — busiest (most
		// active) shard first among those within PackSlack of the
		// emptiest, then the rest by load. Keeping narrow work
		// consolidated leaves other shards' capacity whole for wide jobs.
		minScore := int(^uint(0) >> 1)
		for _, l := range fits {
			if s := l.score(); s < minScore {
				minScore = s
			}
		}
		band := minScore + r.cfg.PackSlack
		sort.Slice(fits, func(i, k int) bool {
			inI, inK := fits[i].score() <= band, fits[k].score() <= band
			if inI != inK {
				return inI
			}
			if inI { // both in band: pack onto the busiest machine
				if fits[i].active != fits[k].active {
					return fits[i].active > fits[k].active
				}
			} else if fits[i].score() != fits[k].score() {
				return fits[i].score() < fits[k].score()
			}
			return fits[i].idx < fits[k].idx
		})
	}
	order = make([]int, len(fits))
	for i, l := range fits {
		order[i] = l.idx
	}
	return order, wide
}

// Package shard is the multi-core scheduling fabric: a front-end
// Router partitions the machine into N per-shard sub-machines, each
// owned by an independent schedd.Core with its own replan loop, WAL
// namespace and token bucket, so submission throughput scales with
// cores instead of being capped by one writer loop.
//
// The pieces:
//
//   - placement (placement.go): job-width-aware routing — wide jobs go
//     to the least-loaded shard that fits them, narrow jobs pack
//     greedily onto the busiest shard within a bounded load band, per
//     the stochastic bin-packing policy of Hong, Xie & Wang (2022);
//   - rebalancing (rebalance.go): queued (not-yet-planned) jobs migrate
//     off a shard whose submit-to-plan p99 diverges past a threshold,
//     per Casanova, Stillwell & Vivien's dynamic re-placement result;
//   - streaming reads (hub.go, http.go): an SSE hub fans each core's
//     snapshot publication out to subscribers, replacing the polling
//     read path, and GET /v1/schedule scatter-gathers shard snapshots
//     into one merged view without blocking any writer.
//
// Job IDs are globalized as global = local*N + shardIdx, so the owning
// shard of any ID is global % N with no lookup table. Idempotency-keyed
// submissions are pinned by key hash over the shards whose sub-machine
// fits the job's width — the same key always lands on the same shard
// regardless of load (and never on one that would reject its width),
// and the rebalancer never migrates keyed jobs, so dedup can never
// split a key across shards. The "mig:" key prefix is reserved for the
// migration protocol's synthetic keys and rejected from clients.
package shard

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// CoreFactory builds the schedd configuration of one shard: scheduler,
// WAL (namespaced to the shard, e.g. wal-dir/shard-<i>), clock, rate
// limits, observability. The router overrides Machine (the shard's
// sub-machine size), ShardID, and Events (the SSE hub's sink) before
// constructing the core, so factories must not rely on those fields.
type CoreFactory func(shardIdx, machine int) (schedd.Config, error)

// Config parameterizes the router.
type Config struct {
	// Shards is the number of per-shard cores (required, >= 1).
	Shards int
	// Machine is the total processor count to partition (required).
	// Shard i owns Machine/Shards processors, the remainder spread
	// one-per-shard from shard 0.
	Machine int
	// WideLane, if > 0, sizes shard 0's sub-machine explicitly and
	// splits the remaining processors evenly across shards 1..N-1. An
	// even partition caps the servable width at Machine/Shards; a wide
	// lane keeps one shard big enough for the workload's widest jobs
	// (e.g. 256 of 430 for the CTC width distribution).
	WideLane int
	// Factory builds each shard's core configuration (required).
	Factory CoreFactory
	// Metrics is the router-level registry (routing, rebalancing and SSE
	// instruments; nil disables them). Per-core registries are separate
	// — the factory supplies them — and are merged with a "shard" label
	// by MergedMetrics.
	Metrics *obs.Registry
	// Trace is the router's tracer (nil-safe).
	Trace *obs.Tracer
	// RebalanceP99 enables the rebalancer: when the submit-to-plan p99
	// of the slowest shard exceeds the fastest's by more than this many
	// milliseconds, queued jobs migrate from slowest to fastest. Zero
	// disables divergence migration (crash recovery hand-offs still
	// complete).
	RebalanceP99 float64
	// RebalanceInterval is the rebalancer's evaluation period (default
	// 200ms).
	RebalanceInterval time.Duration
	// MaxMigratePerRound caps how many queued jobs one rebalance round
	// moves (default 32).
	MaxMigratePerRound int
	// PackSlack is the placement load band: a narrow job packs onto the
	// busiest shard whose load score is within PackSlack of the least
	// loaded fitting shard (default 8). Zero packs only between equally
	// loaded shards.
	PackSlack int
	// GatherTimeout bounds the scatter-gather snapshot merge; a shard
	// that cannot produce its snapshot in time degrades the merge to
	// partial=true instead of blocking the reader (default 250ms).
	GatherTimeout time.Duration
	// SubscriberBuffer is the per-SSE-subscriber event buffer; a
	// subscriber that falls this far behind is disconnected rather than
	// allowed to backpressure the writer loops (default 1024).
	SubscriberBuffer int
}

// BackpressureError reports that every candidate shard rejected a
// submission with backpressure (queue full or rate limited). RetryAfter
// is the maximum hint across the shards tried — retrying sooner would
// hit the most loaded shard again.
type BackpressureError struct {
	// RetryAfter is the largest Retry-After across the shards tried.
	RetryAfter time.Duration
	// Shards is how many shards were tried.
	Shards int
	// Cause is the last shard's rejection.
	Cause error
}

func (e *BackpressureError) Error() string {
	return fmt.Sprintf("shard: all %d candidate shards backpressured (retry after %v): %v", e.Shards, e.RetryAfter, e.Cause)
}

func (e *BackpressureError) Unwrap() error { return e.Cause }

// Router is the sharded front end. Create with New, then Start; submit
// with Submit; stop with Stop.
type Router struct {
	cfg        Config
	n          int
	machines   []int // per-shard sub-machine sizes
	maxMachine int   // largest sub-machine: the servable width bound
	cores      []*schedd.Core
	hub        *Hub

	// fetchSnap is the per-shard snapshot fetch used by Gather — a test
	// seam so merge tests can stall one shard.
	fetchSnap []func() *schedd.Snapshot

	// aliases maps an old global ID to its new global ID after a
	// migration (append-only; chains are followed on lookup). inflight
	// holds the queued status of jobs mid-migration so lookups never 404
	// between steal and target admission.
	aliases  sync.Map // int -> int
	inflight sync.Map // int -> schedd.JobStatus

	stopCh   chan struct{}
	stopOnce sync.Once
	stopped  sync.Once
	wg       sync.WaitGroup
	final    *MergedSnapshot
	stopErr  error

	trace       *obs.Tracer
	vRouted     *obs.CounterVec // by shard
	cWide       *obs.Counter
	cNarrow     *obs.Counter
	cFanRetries *obs.Counter
	cBackpress  *obs.Counter
	cRebalances *obs.Counter
	cMigrated   *obs.Counter
	cMigRetries *obs.Counter
	cPartials   *obs.Counter
}

// New validates the configuration, partitions the machine and builds
// the per-shard cores (stopped; Start launches them).
func New(cfg Config) (*Router, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", cfg.Shards)
	}
	if cfg.Machine < cfg.Shards {
		return nil, fmt.Errorf("shard: machine size %d < %d shards (every shard needs >= 1 processor)", cfg.Machine, cfg.Shards)
	}
	if cfg.Factory == nil {
		return nil, errors.New("shard: nil core factory")
	}
	if cfg.RebalanceInterval <= 0 {
		cfg.RebalanceInterval = 200 * time.Millisecond
	}
	if cfg.MaxMigratePerRound < 1 {
		cfg.MaxMigratePerRound = 32
	}
	if cfg.PackSlack < 0 {
		cfg.PackSlack = 0
	}
	if cfg.GatherTimeout <= 0 {
		cfg.GatherTimeout = 250 * time.Millisecond
	}
	if cfg.SubscriberBuffer < 1 {
		cfg.SubscriberBuffer = 1024
	}
	r := &Router{
		cfg:    cfg,
		n:      cfg.Shards,
		stopCh: make(chan struct{}),
		trace:  cfg.Trace,
	}
	r.hub = newHub(cfg.Shards, cfg.SubscriberBuffer, cfg.Metrics)
	if reg := cfg.Metrics; reg != nil {
		r.vRouted = reg.CounterVec("shard.routed", "shard")
		r.cWide = reg.Counter("shard.routed.wide")
		r.cNarrow = reg.Counter("shard.routed.narrow")
		r.cFanRetries = reg.Counter("shard.submit.fanout_retries")
		r.cBackpress = reg.Counter("shard.submit.backpressured")
		r.cRebalances = reg.Counter("shard.rebalances")
		r.cMigrated = reg.Counter("shard.jobs.migrated")
		r.cMigRetries = reg.Counter("shard.migrations.retried")
		r.cPartials = reg.Counter("shard.gather.partials")
	}
	// Partition: an even Machine/N split (remainder one-per-shard from
	// shard 0), or an explicit wide lane for shard 0 with the rest split
	// evenly.
	r.machines = make([]int, cfg.Shards)
	if cfg.WideLane > 0 {
		rest := cfg.Machine - cfg.WideLane
		if cfg.Shards > 1 && rest < cfg.Shards-1 {
			return nil, fmt.Errorf("shard: wide lane %d leaves %d processors for %d shards", cfg.WideLane, rest, cfg.Shards-1)
		}
		r.machines[0] = cfg.WideLane
		if cfg.Shards > 1 {
			base, rem := rest/(cfg.Shards-1), rest%(cfg.Shards-1)
			for i := 1; i < cfg.Shards; i++ {
				r.machines[i] = base
				if i-1 < rem {
					r.machines[i]++
				}
			}
		}
	} else {
		base, rem := cfg.Machine/cfg.Shards, cfg.Machine%cfg.Shards
		for i := 0; i < cfg.Shards; i++ {
			r.machines[i] = base
			if i < rem {
				r.machines[i]++
			}
		}
	}
	for _, m := range r.machines {
		if m > r.maxMachine {
			r.maxMachine = m
		}
	}
	r.cores = make([]*schedd.Core, cfg.Shards)
	r.fetchSnap = make([]func() *schedd.Snapshot, cfg.Shards)
	for i := 0; i < cfg.Shards; i++ {
		m := r.machines[i]
		ccfg, err := cfg.Factory(i, m)
		if err != nil {
			return nil, fmt.Errorf("shard %d: factory: %w", i, err)
		}
		ccfg.Machine = m
		ccfg.ShardID = i
		ccfg.Events = r.hub.sink(i)
		core, err := schedd.New(ccfg)
		if err != nil {
			return nil, fmt.Errorf("shard %d: core: %w", i, err)
		}
		r.cores[i] = core
		c := core
		r.fetchSnap[i] = func() *schedd.Snapshot { return c.Snapshot() }
	}
	return r, nil
}

// Start launches every core's writer loop and the background
// maintenance loop (recovery hand-off completion + rebalancing).
func (r *Router) Start() {
	for _, c := range r.cores {
		c.Start()
	}
	r.wg.Add(1)
	go r.maintain()
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// Machines returns the per-shard sub-machine sizes.
func (r *Router) Machines() []int { return append([]int(nil), r.machines...) }

// Core returns shard i's core (tests and the daemon's drain path).
func (r *Router) Core(i int) *schedd.Core { return r.cores[i] }

// Hub returns the SSE event hub.
func (r *Router) Hub() *Hub { return r.hub }

// Metrics returns the router-level registry (may be nil).
func (r *Router) Metrics() *obs.Registry { return r.cfg.Metrics }

// global encodes a shard-local job ID: IDs interleave across shards so
// the owner is recoverable by modulus alone.
func (r *Router) global(shardIdx, local int) int { return local*r.n + shardIdx }

// locate decodes a global job ID into (shard, local). ok is false for
// IDs no shard can have minted (local IDs start at 1).
func (r *Router) locate(gid int) (shardIdx, local int, ok bool) {
	if gid < r.n {
		return 0, 0, false
	}
	return gid % r.n, gid / r.n, true
}

// keyShard pins an idempotency key to a shard by hash, independent of
// load, so resubmissions always meet the original admission's dedup
// entry. The hash maps over only the shards whose sub-machine fits the
// job's width, in index order — with a wide lane (machines [256 58 58
// 58]), a keyed 100-wide job pins to the wide lane instead of to a
// narrow shard that would 400 it forever. The fitting set depends only
// on the static partition and the width, so the pin is deterministic;
// as with every other request field, the idempotency contract requires
// a resubmission to repeat the original width. The caller has already
// validated width <= maxMachine, so the set is never empty.
func (r *Router) keyShard(key string, width int) int {
	fit := make([]int, 0, r.n)
	for i, m := range r.machines {
		if width <= m {
			fit = append(fit, i)
		}
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(key))
	return fit[int(h.Sum32()%uint32(len(fit)))]
}

// Submit routes one submission. Keyed submissions go to hash(key)'s
// shard only, among the shards that fit the width (routing stability
// beats load). Unkeyed submissions try candidate shards in placement
// order; backpressure (429) from one shard falls through to the next,
// and if every candidate backpressures the error carries the maximum
// Retry-After seen.
func (r *Router) Submit(ctx context.Context, req schedd.SubmitRequest) (schedd.SubmitResponse, error) {
	if req.Width < 1 || req.Width > r.maxMachine {
		return schedd.SubmitResponse{}, &schedd.ValidationError{
			Reason: fmt.Sprintf("width %d outside [1, %d] (largest shard of %d)", req.Width, r.maxMachine, r.n),
		}
	}
	if key := req.IdempotencyKey; key != "" {
		if strings.HasPrefix(key, schedd.MigrationKeyPrefix) {
			// The migration protocol's synthetic namespace: a client key
			// in it could dedup against a migrated job at the target.
			return schedd.SubmitResponse{}, &schedd.ValidationError{
				Reason: fmt.Sprintf("idempotency key prefix %q is reserved for internal migrations", schedd.MigrationKeyPrefix),
			}
		}
		return r.submitShard(ctx, r.keyShard(key, req.Width), req)
	}
	cands, wide := r.placeOrder(req.Width)
	if wide {
		r.cWide.Inc()
	} else {
		r.cNarrow.Inc()
	}
	var maxRetry time.Duration
	var lastErr error
	tried := 0
	for _, idx := range cands {
		resp, err := r.submitShard(ctx, idx, req)
		if err == nil {
			if tried > 0 {
				r.cFanRetries.Add(int64(tried))
			}
			return resp, nil
		}
		ra, backpressure := retryAfterOf(err)
		if !backpressure {
			return resp, err
		}
		tried++
		lastErr = err
		if ra > maxRetry {
			maxRetry = ra
		}
	}
	r.cBackpress.Inc()
	return schedd.SubmitResponse{}, &BackpressureError{RetryAfter: maxRetry, Shards: tried, Cause: lastErr}
}

// submitShard submits to one core and globalizes the response ID.
func (r *Router) submitShard(ctx context.Context, idx int, req schedd.SubmitRequest) (schedd.SubmitResponse, error) {
	resp, err := r.cores[idx].SubmitCtx(ctx, req)
	if err != nil {
		return resp, err
	}
	resp.ID = r.global(idx, resp.ID)
	resp.Shard = idx
	r.vRouted.With(shardLabel(idx)).Inc()
	return resp, nil
}

// retryAfterOf classifies a shard rejection as backpressure worth
// fanning out over, and extracts its Retry-After hint. Queue-full
// carries the HTTP layer's 1s constant; rate limiting carries the
// bucket's own wait; an SLO-deadline rejection is one shard's twin
// predicting a late start — a less loaded shard may still make the
// deadline, so it fans out too.
func retryAfterOf(err error) (time.Duration, bool) {
	var rl *schedd.RateLimitedError
	if errors.As(err, &rl) {
		return rl.RetryAfter, true
	}
	var se *schedd.SLOExceededError
	if errors.As(err, &se) {
		return se.RetryAfter, true
	}
	if errors.Is(err, schedd.ErrQueueFull) {
		return time.Second, true
	}
	return 0, false
}

// Job resolves a global job ID: migration aliases are followed to the
// job's current home, then the owning core is consulted, then the
// in-flight migration set (a job between steal and target admission is
// still queued, just briefly homeless).
func (r *Router) Job(gid int) (schedd.JobStatus, bool) {
	cur := gid
	for hops := 0; hops < 8; hops++ {
		v, ok := r.aliases.Load(cur)
		if !ok {
			break
		}
		cur = v.(int)
	}
	if idx, local, ok := r.locate(cur); ok {
		if st, ok := r.cores[idx].Job(local); ok {
			st.ID = cur
			st.Shard = idx
			return st, true
		}
	}
	if v, ok := r.inflight.Load(cur); ok {
		return v.(schedd.JobStatus), true
	}
	// The original ID may still be mid-migration even when an alias
	// exists but the target has not published the job yet.
	if cur != gid {
		if v, ok := r.inflight.Load(gid); ok {
			return v.(schedd.JobStatus), true
		}
	}
	return schedd.JobStatus{}, false
}

// Stop drains the fabric: the maintenance loop halts first (no
// migration races a drain), then every core drains concurrently, and
// the final snapshots merge into one view. Safe to call more than once.
func (r *Router) Stop(ctx context.Context) (*MergedSnapshot, error) {
	r.stopOnce.Do(func() { close(r.stopCh) })
	r.stopped.Do(func() {
		r.wg.Wait()
		finals := make([]*schedd.Snapshot, r.n)
		errs := make([]error, r.n)
		var wg sync.WaitGroup
		for i := range r.cores {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				finals[i], errs[i] = r.cores[i].Stop(ctx)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil && r.stopErr == nil {
				r.stopErr = fmt.Errorf("shard %d: %w", i, err)
			}
		}
		r.final = r.merge(finals, nil)
	})
	return r.final, r.stopErr
}

// maintain is the router's background loop: it waits for every core to
// finish WAL replay, rebuilds the alias table and completes interrupted
// migration hand-offs, then evaluates the rebalance signal every
// interval.
func (r *Router) maintain() {
	defer r.wg.Done()
	if !r.waitReady() {
		return
	}
	// Rebuild global aliases from each core's confirmed migrations, then
	// re-drive every unconfirmed hand-off against its recorded target.
	for i, c := range r.cores {
		for local, target := range c.MigrationAliases() {
			r.aliases.Store(r.global(i, local), int(target))
		}
	}
	r.completeAllPending()
	ticker := time.NewTicker(r.cfg.RebalanceInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stopCh:
			return
		case <-ticker.C:
			r.completeAllPending()
			if r.cfg.RebalanceP99 > 0 {
				r.RebalanceOnce()
			}
		}
	}
}

// waitReady blocks until every core reports PhaseReady (WAL replay
// finished); false when the router stops first.
func (r *Router) waitReady() bool {
	for _, c := range r.cores {
		for c.Phase() != schedd.PhaseReady {
			select {
			case <-r.stopCh:
				return false
			case <-time.After(2 * time.Millisecond):
			}
		}
	}
	return true
}

// shardLabel renders a shard index as a metric label value.
func shardLabel(i int) string {
	return fmt.Sprintf("%d", i)
}

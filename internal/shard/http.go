// HTTP front end of the sharded fabric. The surface mirrors the
// single-core daemon API (a schedctl or loadgen pointed at a router
// cannot tell the difference on the write path) and adds the streaming
// read path:
//
//	POST /v1/jobs      submit (routed; 429 carries the max Retry-After
//	                   across the shards tried)
//	GET  /v1/jobs/{id} job state by global ID (migration aliases
//	                   followed transparently)
//	GET  /v1/schedule  scatter-gather merged snapshot (partial=true
//	                   instead of blocking when a shard stalls)
//	GET  /v1/events    Server-Sent Events: plan-version, job-planned,
//	                   job-completed, plan-improved (?types= filters;
//	                   id: is the hub-global event ID — reconnect with
//	                   Last-Event-ID to resume exactly-once)
//	GET  /v1/healthz   fabric health (per-shard phases)
//	GET  /v1/metrics   merged metrics, per-shard "shard" labels (JSON,
//	                   or Prometheus when Accept asks)
//	GET  /metrics      Prometheus text exposition
//	GET  /v1/replans   flight recorders of all shards
//	GET  /v1/shards    per-shard load/placement view
package shard

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// HealthJSON is the router's GET /v1/healthz body.
type HealthJSON struct {
	Status     string   `json:"status"` // "ok", "replaying" or "draining"
	Now        int64    `json:"now"`
	Shards     int      `json:"shards"`
	QueueDepth int      `json:"queue_depth"` // summed across shards
	Waiting    int      `json:"waiting"`
	Running    int      `json:"running"`
	Phases     []string `json:"phases"` // per-shard WAL recovery phase
	// PlanAgeMs is the wall-clock age of the stalest shard's adopted
	// plan — the fabric's plan-freshness signal.
	PlanAgeMs float64 `json:"plan_age_ms"`
}

// ReplansJSON is one shard's flight-recorder dump in GET /v1/replans.
type ReplansJSON struct {
	Shard   int                   `json:"shard"`
	Replans []schedd.ReplanRecord `json:"replans"`
}

// NewHandler returns the router's HTTP API.
func NewHandler(r *Router) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, req *http.Request) {
		var body schedd.SubmitJSON
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
			return
		}
		trace := req.Header.Get(schedd.TraceHeader)
		if trace == "" {
			trace = obs.NewTraceID()
		}
		w.Header().Set(schedd.TraceHeader, trace)
		ctx := obs.WithTraceID(req.Context(), trace)
		resp, err := r.Submit(ctx, schedd.SubmitRequest{
			Width: body.Width, Estimate: body.Estimate, Runtime: body.Runtime, Source: body.Source,
			IdempotencyKey: req.Header.Get(schedd.IdemHeader),
		})
		if err != nil {
			writeSubmitError(w, err)
			return
		}
		writeJSON(w, http.StatusAccepted, resp)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, req *http.Request) {
		id, err := strconv.Atoi(req.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", req.PathValue("id")))
			return
		}
		st, ok := r.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/schedule", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.Gather())
	})
	mux.HandleFunc("GET /v1/events", func(w http.ResponseWriter, req *http.Request) {
		serveEvents(r, w, req)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, health(r))
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, req *http.Request) {
		ms := append(r.MergedMetrics(), obs.RuntimeMetrics()...)
		if wantsPrometheus(req.Header.Get("Accept")) {
			writePrometheus(w, ms)
			return
		}
		writeJSON(w, http.StatusOK, schedd.MetricsToJSON(ms))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, req *http.Request) {
		writePrometheus(w, append(r.MergedMetrics(), obs.RuntimeMetrics()...))
	})
	mux.HandleFunc("GET /v1/replans", func(w http.ResponseWriter, req *http.Request) {
		out := make([]ReplansJSON, r.n)
		for i, c := range r.cores {
			out[i] = ReplansJSON{Shard: i, Replans: c.Replans()}
		}
		writeJSON(w, http.StatusOK, out)
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, http.StatusOK, r.shardViews())
	})
	return mux
}

// serveEvents is the SSE endpoint: one event per line-block, the
// hub-global event ID as the id: field (so a reconnect presenting
// Last-Event-ID resumes exactly-once from the replay ring), a comment
// heartbeat every 15s so idle connections stay alive through proxies.
func serveEvents(r *Router, w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	var types map[string]bool
	if q := req.URL.Query().Get("types"); q != "" {
		types = map[string]bool{}
		for _, t := range strings.Split(q, ",") {
			types[strings.TrimSpace(t)] = true
		}
	}
	var afterID uint64
	if v := req.Header.Get("Last-Event-ID"); v != "" {
		afterID, _ = strconv.ParseUint(v, 10, 64)
	}
	sub := r.hub.SubscribeFrom(types, afterID)
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	heartbeat := time.NewTicker(15 * time.Second)
	defer heartbeat.Stop()
	for {
		select {
		case ev, open := <-sub.Events():
			if !open {
				// Overflow disconnect: the subscriber fell too far behind.
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				return
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data); err != nil {
				return
			}
			flusher.Flush()
		case <-heartbeat.C:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-req.Context().Done():
			return
		}
	}
}

// health assembles the fabric health view from O(1) per-shard reads.
func health(r *Router) HealthJSON {
	h := HealthJSON{Shards: r.n, Phases: make([]string, r.n)}
	status := "ok"
	for i, c := range r.cores {
		s := c.Snapshot()
		h.Phases[i] = c.Phase()
		if age := float64(c.PlanAge()) / float64(time.Millisecond); age > h.PlanAgeMs {
			h.PlanAgeMs = age // stalest shard wins: the weakest freshness
		}
		if h.Phases[i] == schedd.PhaseReplaying {
			status = "replaying"
		}
		if s.Draining {
			status = "draining"
		}
		if s.Now > h.Now {
			h.Now = s.Now
		}
		h.QueueDepth += c.QueueDepth()
		for _, st := range s.Active {
			if st.State == schedd.StateRunning {
				h.Running++
			} else {
				h.Waiting++
			}
		}
	}
	h.Status = status
	return h
}

// LoadJSON is one row of GET /v1/shards: the placement inputs plus
// the rebalance signal.
type LoadJSON struct {
	Shard             int     `json:"shard"`
	Machine           int     `json:"machine"`
	QueueDepth        int     `json:"queue_depth"`
	Active            int     `json:"active"`
	PlanP99Ms         float64 `json:"plan_p99_ms"`
	PendingMigrations int     `json:"pending_migrations"`
	Version           int64   `json:"version"`
}

func (r *Router) shardViews() []LoadJSON {
	out := make([]LoadJSON, r.n)
	for i, c := range r.cores {
		s := c.Snapshot()
		out[i] = LoadJSON{
			Shard:             i,
			Machine:           r.machines[i],
			QueueDepth:        c.QueueDepth(),
			Active:            len(s.Active),
			PlanP99Ms:         c.PlanLatencyQuantile(0.99),
			PendingMigrations: len(c.PendingMigrations()),
			Version:           s.Version,
		}
	}
	return out
}

// writeSubmitError maps routing errors onto the single-core daemon's
// status codes, with the fabric's aggregated Retry-After for
// backpressure.
func writeSubmitError(w http.ResponseWriter, err error) {
	var bp *BackpressureError
	var rl *schedd.RateLimitedError
	var se *schedd.SLOExceededError
	var ve *schedd.ValidationError
	switch {
	case errors.As(err, &bp):
		w.Header().Set("Retry-After", retryAfterSeconds(bp.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, schedd.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &rl):
		w.Header().Set("Retry-After", retryAfterSeconds(rl.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &se):
		w.Header().Set("Retry-After", retryAfterSeconds(se.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, schedd.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, schedd.ErrRecovering):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &ve):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

func retryAfterSeconds(d time.Duration) string {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

func wantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func writePrometheus(w http.ResponseWriter, ms []obs.Metric) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = obs.WritePrometheus(w, ms)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

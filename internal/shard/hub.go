// The streaming event hub: each core's writer loop pushes its state
// changes (snapshot publications, first plans, completions) into the
// hub via the schedd.EventSink hooks, and the hub fans them out to SSE
// subscribers. Delivery is exactly-once per subscriber: subscription
// happens under the hub lock, priming the stream with one plan-version
// event per shard at its current version, and every later publication
// reaches the subscriber exactly once, in order — per shard, versions
// are contiguous from the primer on. The sinks run on the writer
// goroutines, so the hub never blocks: a subscriber whose buffer fills
// is disconnected (and counted) instead of backpressuring a writer.
package shard

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// Event types of the /v1/events stream.
const (
	// EventPlanVersion announces a new published snapshot version of one
	// shard (the streaming replacement for polling /v1/schedule).
	EventPlanVersion = "plan-version"
	// EventJobPlanned announces a job's first adopted plan.
	EventJobPlanned = "job-planned"
	// EventJobCompleted announces a job's completion.
	EventJobCompleted = "job-completed"
)

// Event is one SSE payload. Seq is the per-subscriber stream position
// (contiguous from 1), echoed as the SSE id: field.
type Event struct {
	Seq   int64  `json:"seq"`
	Type  string `json:"type"`
	Shard int    `json:"shard"`
	// Version/Now/Degraded describe the published snapshot
	// (plan-version events).
	Version  int64 `json:"version,omitempty"`
	Now      int64 `json:"now,omitempty"`
	Degraded bool  `json:"degraded,omitempty"`
	// Job carries the subject of job-planned / job-completed events,
	// with the ID already globalized.
	Job *JobEvent `json:"job,omitempty"`
}

// JobEvent is the job payload of a job-planned or job-completed event.
type JobEvent struct {
	ID            int             `json:"id"`
	State         schedd.JobState `json:"state"`
	Width         int             `json:"width"`
	PlannedStart  int64           `json:"planned_start"`
	Start         int64           `json:"start,omitempty"`
	End           int64           `json:"end,omitempty"`
	PlanLatencyMs float64         `json:"plan_latency_ms,omitempty"`
	TraceID       string          `json:"trace_id,omitempty"`
}

// Hub fans writer-loop events out to subscribers.
type Hub struct {
	n      int
	buffer int

	mu       sync.Mutex
	versions []int64 // last published snapshot version per shard
	nows     []int64
	degraded []bool
	subs     map[*Subscription]struct{}

	vEvents    *obs.CounterVec // by type
	cOverflows *obs.Counter
	cSubs      *obs.Counter
}

func newHub(n, buffer int, reg *obs.Registry) *Hub {
	h := &Hub{
		n:        n,
		buffer:   buffer,
		versions: make([]int64, n),
		nows:     make([]int64, n),
		degraded: make([]bool, n),
		subs:     map[*Subscription]struct{}{},
	}
	if reg != nil {
		h.vEvents = reg.CounterVec("shard.events", "type")
		h.cOverflows = reg.Counter("shard.sse.overflow_disconnects")
		h.cSubs = reg.Counter("shard.sse.subscribes")
	}
	return h
}

// sink adapts the hub to one shard's EventSink.
func (h *Hub) sink(idx int) schedd.EventSink { return &hubSink{h: h, shard: idx} }

type hubSink struct {
	h     *Hub
	shard int
}

func (s *hubSink) SnapshotPublished(snap *schedd.Snapshot) {
	s.h.publish(Event{
		Type: EventPlanVersion, Shard: s.shard,
		Version: snap.Version, Now: snap.Now, Degraded: snap.Degraded,
	}, true)
}

func (s *hubSink) JobPlanned(st schedd.JobStatus) {
	s.h.publish(s.h.jobEvent(EventJobPlanned, s.shard, st), false)
}

func (s *hubSink) JobCompleted(st schedd.JobStatus) {
	s.h.publish(s.h.jobEvent(EventJobCompleted, s.shard, st), false)
}

func (h *Hub) jobEvent(typ string, shard int, st schedd.JobStatus) Event {
	return Event{
		Type: typ, Shard: shard,
		Job: &JobEvent{
			ID:            st.ID*h.n + shard, // globalize
			State:         st.State,
			Width:         st.Width,
			PlannedStart:  st.PlannedStart,
			Start:         st.Start,
			End:           st.End,
			PlanLatencyMs: st.PlanLatencyMs,
			TraceID:       st.TraceID,
		},
	}
}

// publish delivers one event to every live subscriber. Version events
// also update the per-shard state that primes new subscriptions, under
// the same lock, so no version can slip between a subscriber's primer
// and its first live event.
func (h *Hub) publish(ev Event, isVersion bool) {
	h.mu.Lock()
	if isVersion {
		h.versions[ev.Shard] = ev.Version
		h.nows[ev.Shard] = ev.Now
		h.degraded[ev.Shard] = ev.Degraded
	}
	h.vEvents.With(ev.Type).Inc()
	for sub := range h.subs {
		sub.push(ev)
	}
	h.mu.Unlock()
}

// Subscribe registers a new subscriber. types filters delivery (nil =
// all). The stream opens with one plan-version primer per shard that
// has published, so a consumer knows the current state before the first
// live event; per shard, versions are then contiguous.
func (h *Hub) Subscribe(types map[string]bool) *Subscription {
	s := &Subscription{
		hub:   h,
		ch:    make(chan Event, h.buffer),
		types: types,
	}
	h.mu.Lock()
	for i := 0; i < h.n; i++ {
		if h.versions[i] > 0 {
			s.push(Event{
				Type: EventPlanVersion, Shard: i,
				Version: h.versions[i], Now: h.nows[i], Degraded: h.degraded[i],
			})
		}
	}
	// Priming alone can overflow a tiny buffer (buffer < shard count):
	// push has then already marked the subscription dead and closed its
	// channel, so registering it would leak it in h.subs forever (push
	// deletes on overflow, Close skips dead subs).
	if !s.dead {
		h.subs[s] = struct{}{}
	}
	h.cSubs.Inc()
	h.mu.Unlock()
	return s
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Subscription is one subscriber's event stream. Read Events until it
// closes (hub overflow disconnect) and call Close when done.
type Subscription struct {
	hub   *Hub
	ch    chan Event
	types map[string]bool
	seq   int64
	dead  bool // guarded by hub.mu
}

// Events is the subscriber's delivery channel; it closes when the hub
// disconnects the subscriber for falling too far behind.
func (s *Subscription) Events() <-chan Event { return s.ch }

// push delivers one event (hub lock held). A full buffer kills the
// subscription: the writer loops must never block on a slow reader.
func (s *Subscription) push(ev Event) {
	if s.dead || (s.types != nil && !s.types[ev.Type]) {
		return
	}
	s.seq++
	ev.Seq = s.seq
	select {
	case s.ch <- ev:
	default:
		s.dead = true
		delete(s.hub.subs, s)
		close(s.ch)
		s.hub.cOverflows.Inc()
	}
}

// Close unregisters the subscription and closes its channel.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	if !s.dead {
		s.dead = true
		delete(s.hub.subs, s)
		close(s.ch)
	}
	s.hub.mu.Unlock()
}

// The streaming event hub: each core's writer loop pushes its state
// changes (snapshot publications, first plans, completions) into the
// hub via the schedd.EventSink hooks, and the hub fans them out to SSE
// subscribers. Delivery is exactly-once per subscriber: subscription
// happens under the hub lock, priming the stream with one plan-version
// event per shard at its current version, and every later publication
// reaches the subscriber exactly once, in order — per shard, versions
// are contiguous from the primer on. The sinks run on the writer
// goroutines, so the hub never blocks: a subscriber whose buffer fills
// is disconnected (and counted) instead of backpressuring a writer.
package shard

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// Event types of the /v1/events stream.
const (
	// EventPlanVersion announces a new published snapshot version of one
	// shard (the streaming replacement for polling /v1/schedule).
	EventPlanVersion = "plan-version"
	// EventJobPlanned announces a job's first adopted plan.
	EventJobPlanned = "job-planned"
	// EventJobCompleted announces a job's completion.
	EventJobCompleted = "job-completed"
	// EventPlanImproved announces that a shard's background anytime
	// optimizer replaced the live plan with a better incumbent.
	EventPlanImproved = "plan-improved"
)

// ringCap bounds the replay ring backing Last-Event-ID resume. A client
// that reconnects within the last ringCap hub-wide events resumes
// exactly-once; older cursors fall back to a fresh primed stream.
const ringCap = 4096

// Event is one SSE payload. ID is the hub-global stream position
// (echoed as the SSE id: field, the Last-Event-ID resume cursor); Seq
// is the per-subscriber delivery position, contiguous from 1.
type Event struct {
	ID    uint64 `json:"id"`
	Seq   int64  `json:"seq"`
	Type  string `json:"type"`
	Shard int    `json:"shard"`
	// Version/Now/Degraded describe the published snapshot
	// (plan-version and plan-improved events).
	Version  int64 `json:"version,omitempty"`
	Now      int64 `json:"now,omitempty"`
	Degraded bool  `json:"degraded,omitempty"`
	// Job carries the subject of job-planned / job-completed events,
	// with the ID already globalized.
	Job *JobEvent `json:"job,omitempty"`
	// Improvement carries the adopted incumbent of plan-improved events.
	Improvement *schedd.PlanImprovement `json:"improvement,omitempty"`
}

// JobEvent is the job payload of a job-planned or job-completed event.
type JobEvent struct {
	ID            int             `json:"id"`
	State         schedd.JobState `json:"state"`
	Width         int             `json:"width"`
	PlannedStart  int64           `json:"planned_start"`
	Start         int64           `json:"start,omitempty"`
	End           int64           `json:"end,omitempty"`
	PlanLatencyMs float64         `json:"plan_latency_ms,omitempty"`
	TraceID       string          `json:"trace_id,omitempty"`
}

// Hub fans writer-loop events out to subscribers.
type Hub struct {
	n      int
	buffer int

	mu       sync.Mutex
	versions []int64 // last published snapshot version per shard
	nows     []int64
	degraded []bool
	subs     map[*Subscription]struct{}
	nextID   uint64  // hub-global event ID of the last publication
	ring     []Event // last ringCap publications, for Last-Event-ID replay

	vEvents    *obs.CounterVec // by type
	cOverflows *obs.Counter
	cSubs      *obs.Counter
}

func newHub(n, buffer int, reg *obs.Registry) *Hub {
	h := &Hub{
		n:        n,
		buffer:   buffer,
		versions: make([]int64, n),
		nows:     make([]int64, n),
		degraded: make([]bool, n),
		subs:     map[*Subscription]struct{}{},
	}
	if reg != nil {
		h.vEvents = reg.CounterVec("shard.events", "type")
		h.cOverflows = reg.Counter("shard.sse.overflow_disconnects")
		h.cSubs = reg.Counter("shard.sse.subscribes")
	}
	return h
}

// sink adapts the hub to one shard's EventSink.
func (h *Hub) sink(idx int) schedd.EventSink { return &hubSink{h: h, shard: idx} }

type hubSink struct {
	h     *Hub
	shard int
}

func (s *hubSink) SnapshotPublished(snap *schedd.Snapshot) {
	s.h.publish(Event{
		Type: EventPlanVersion, Shard: s.shard,
		Version: snap.Version, Now: snap.Now, Degraded: snap.Degraded,
	}, true)
}

func (s *hubSink) JobPlanned(st schedd.JobStatus) {
	s.h.publish(s.h.jobEvent(EventJobPlanned, s.shard, st), false)
}

func (s *hubSink) JobCompleted(st schedd.JobStatus) {
	s.h.publish(s.h.jobEvent(EventJobCompleted, s.shard, st), false)
}

func (s *hubSink) PlanImproved(pi schedd.PlanImprovement) {
	s.h.publish(Event{
		Type: EventPlanImproved, Shard: s.shard,
		Version: pi.Version, Now: pi.Now,
		Improvement: &pi,
	}, false)
}

func (h *Hub) jobEvent(typ string, shard int, st schedd.JobStatus) Event {
	return Event{
		Type: typ, Shard: shard,
		Job: &JobEvent{
			ID:            st.ID*h.n + shard, // globalize
			State:         st.State,
			Width:         st.Width,
			PlannedStart:  st.PlannedStart,
			Start:         st.Start,
			End:           st.End,
			PlanLatencyMs: st.PlanLatencyMs,
			TraceID:       st.TraceID,
		},
	}
}

// publish delivers one event to every live subscriber. The hub-global
// ID is assigned here, under the lock, so IDs are contiguous with the
// replay ring; version events also update the per-shard state that
// primes new subscriptions, under the same lock, so no version can slip
// between a subscriber's primer and its first live event.
func (h *Hub) publish(ev Event, isVersion bool) {
	h.mu.Lock()
	h.nextID++
	ev.ID = h.nextID
	if isVersion {
		h.versions[ev.Shard] = ev.Version
		h.nows[ev.Shard] = ev.Now
		h.degraded[ev.Shard] = ev.Degraded
	}
	h.ring = append(h.ring, ev)
	if len(h.ring) > ringCap {
		h.ring = h.ring[len(h.ring)-ringCap:]
	}
	h.vEvents.With(ev.Type).Inc()
	for sub := range h.subs {
		sub.push(ev)
	}
	h.mu.Unlock()
}

// Subscribe registers a new subscriber. types filters delivery (nil =
// all). The stream opens with one plan-version primer per shard that
// has published, so a consumer knows the current state before the first
// live event; per shard, versions are then contiguous.
func (h *Hub) Subscribe(types map[string]bool) *Subscription {
	return h.SubscribeFrom(types, 0)
}

// SubscribeFrom registers a subscriber resuming after hub-global event
// afterID (a Last-Event-ID cursor). When the replay ring still covers
// everything past the cursor, those events are replayed in publication
// order before any live one, making a reconnect exactly-once; a cursor
// that has aged out of the ring falls back to the fresh-subscribe
// primers, and the consumer must treat the stream as a new baseline.
// afterID 0 is a fresh subscribe.
func (h *Hub) SubscribeFrom(types map[string]bool, afterID uint64) *Subscription {
	s := &Subscription{
		hub:   h,
		ch:    make(chan Event, h.buffer),
		types: types,
	}
	h.mu.Lock()
	// The ring covers (nextID-len(ring), nextID]; a cursor at or past its
	// floor loses nothing to replay.
	if afterID > 0 && afterID >= h.nextID-uint64(len(h.ring)) && afterID <= h.nextID {
		for _, ev := range h.ring {
			if ev.ID > afterID {
				s.push(ev)
			}
		}
		s.resumed = true
	} else {
		for i := 0; i < h.n; i++ {
			if h.versions[i] > 0 {
				// Primers are synthetic (not publications), so they carry
				// the current cursor: a client that stores their id resumes
				// from the right spot.
				s.push(Event{
					ID:   h.nextID,
					Type: EventPlanVersion, Shard: i,
					Version: h.versions[i], Now: h.nows[i], Degraded: h.degraded[i],
				})
			}
		}
	}
	// Priming alone can overflow a tiny buffer (buffer < shard count):
	// push has then already marked the subscription dead and closed its
	// channel, so registering it would leak it in h.subs forever (push
	// deletes on overflow, Close skips dead subs).
	if !s.dead {
		h.subs[s] = struct{}{}
	}
	h.cSubs.Inc()
	h.mu.Unlock()
	return s
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Subscription is one subscriber's event stream. Read Events until it
// closes (hub overflow disconnect) and call Close when done.
type Subscription struct {
	hub     *Hub
	ch      chan Event
	types   map[string]bool
	seq     int64
	dead    bool // guarded by hub.mu
	resumed bool // Last-Event-ID replay succeeded (no primers sent)
}

// Resumed reports whether the subscription resumed from a Last-Event-ID
// cursor (replaying missed events) rather than starting fresh.
func (s *Subscription) Resumed() bool { return s.resumed }

// Events is the subscriber's delivery channel; it closes when the hub
// disconnects the subscriber for falling too far behind.
func (s *Subscription) Events() <-chan Event { return s.ch }

// push delivers one event (hub lock held). A full buffer kills the
// subscription: the writer loops must never block on a slow reader.
func (s *Subscription) push(ev Event) {
	if s.dead || (s.types != nil && !s.types[ev.Type]) {
		return
	}
	s.seq++
	ev.Seq = s.seq
	select {
	case s.ch <- ev:
	default:
		s.dead = true
		delete(s.hub.subs, s)
		close(s.ch)
		s.hub.cOverflows.Inc()
	}
}

// Close unregisters the subscription and closes its channel.
func (s *Subscription) Close() {
	s.hub.mu.Lock()
	if !s.dead {
		s.dead = true
		delete(s.hub.subs, s)
		close(s.ch)
	}
	s.hub.mu.Unlock()
}

// Anytime serving across shards: Last-Event-ID resume on the hub,
// per-shard background optimizers surfacing plan-improved events
// through the SSE fabric while the rebalancer runs, and deadline
// rejections fanning out across every shard's digital twin.
package shard

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/solvepipe"
)

// TestSubscribeFromReplay: a cursor still covered by the replay ring
// resumes exactly-once — every event past it, in publication order, no
// primers; a cursor the ring cannot cover falls back to a fresh primed
// stream.
func TestSubscribeFromReplay(t *testing.T) {
	h := newHub(2, 256, obs.NewRegistry())
	for v := int64(1); v <= 10; v++ {
		h.sink(int(v) % 2).SnapshotPublished(&schedd.Snapshot{Version: v, Now: v * 10})
	}

	// Resume from the middle: exactly events 5..10, ordered, resumed.
	sub := h.SubscribeFrom(nil, 4)
	if !sub.Resumed() {
		t.Error("in-ring cursor did not resume")
	}
	evs := drainEvents(sub, 50*time.Millisecond, time.Second)
	if len(evs) != 6 {
		t.Fatalf("replayed %d events after cursor 4, want 6", len(evs))
	}
	for i, ev := range evs {
		if ev.ID != uint64(5+i) {
			t.Errorf("replay position %d has ID %d, want %d", i, ev.ID, 5+i)
		}
	}
	// Live events keep flowing after the replay, IDs contiguous.
	h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: 11})
	evs = drainEvents(sub, 50*time.Millisecond, time.Second)
	if len(evs) != 1 || evs[0].ID != 11 {
		t.Fatalf("live event after replay = %+v, want ID 11", evs)
	}
	sub.Close()

	// Cursor at the head: nothing to replay, but still a resume (no
	// duplicate primers for a client that merely reconnected quickly).
	head := h.SubscribeFrom(nil, 11)
	if !head.Resumed() {
		t.Error("head cursor did not resume")
	}
	if evs := drainEvents(head, 50*time.Millisecond, time.Second); len(evs) != 0 {
		t.Errorf("head cursor replayed %d events, want 0", len(evs))
	}
	head.Close()

	// A cursor from the future (e.g. a different hub incarnation) can't
	// be honored: fall back to primers so the client rebaselines.
	future := h.SubscribeFrom(nil, 99)
	if future.Resumed() {
		t.Error("future cursor claimed to resume")
	}
	evs = drainEvents(future, 50*time.Millisecond, time.Second)
	if len(evs) != 2 { // one primer per shard
		t.Fatalf("future cursor got %d events, want 2 primers", len(evs))
	}
	for _, ev := range evs {
		if ev.ID != 11 {
			t.Errorf("primer carries cursor %d, want current head 11", ev.ID)
		}
	}
	future.Close()
}

// TestSubscribeFromAgedOutCursor: once the ring has trimmed past a
// cursor, the resume degrades to the primer baseline instead of
// silently skipping the lost events.
func TestSubscribeFromAgedOutCursor(t *testing.T) {
	h := newHub(1, 8, nil)
	for v := int64(1); v <= int64(ringCap)+10; v++ {
		h.sink(0).SnapshotPublished(&schedd.Snapshot{Version: v})
	}
	sub := h.SubscribeFrom(nil, 3) // trimmed out of the ring long ago
	defer sub.Close()
	if sub.Resumed() {
		t.Error("aged-out cursor claimed to resume")
	}
	evs := drainEvents(sub, 50*time.Millisecond, time.Second)
	if len(evs) != 1 {
		t.Fatalf("aged-out cursor got %d events, want 1 primer", len(evs))
	}
	if evs[0].Version != int64(ringCap)+10 {
		t.Errorf("primer version %d, want the current %d", evs[0].Version, ringCap+10)
	}
}

// anytimeFactory builds per-shard cores with the background optimizer
// on and the interval solver starved, so the optimizer is the only
// source of plan improvements (each shard mirrors the single-core SLO
// drill's setup).
func anytimeFactory(t testing.TB, accel float64) CoreFactory {
	return func(idx, machine int) (schedd.Config, error) {
		m, err := metrics.ByName("SLDwA")
		if err != nil {
			return schedd.Config{}, err
		}
		sched, err := dynp.New([]policy.Policy{policy.FCFS{}}, m, dynp.AdvancedDecider{})
		if err != nil {
			return schedd.Config{}, err
		}
		return schedd.Config{
			Scheduler:     sched,
			Clock:         schedd.NewWallClock(accel),
			QueueBound:    64,
			MaxBatch:      16,
			MaxBatchDelay: time.Millisecond,
			ILP: &schedd.ILPConfig{
				Pipe: solvepipe.Config{
					Budget: time.Millisecond,
					MIP:    mip.Options{MaxNodes: 200000},
				},
				Anytime:       true,
				AnytimeBudget: time.Second,
			},
			Metrics: obs.NewRegistry(),
		}, nil
	}
}

// TestShardedAnytimePlanImproved: every shard runs its own background
// optimizer; adopted incumbents must surface as plan-improved events on
// the shared SSE hub — with the rebalancer live — and no job may be
// lost while plans keep being replaced underneath the queue.
func TestShardedAnytimePlanImproved(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 16,
		Factory:           anytimeFactory(t, 2000),
		RebalanceP99:      1,
		RebalanceInterval: 50 * time.Millisecond,
	})
	r.Start()
	defer stopRouter(t, r)

	sub := r.Hub().Subscribe(map[string]bool{EventPlanImproved: true})
	defer sub.Close()

	// Full-shard-width jobs with varied estimates: each shard's queue is
	// a sequential backlog whose FCFS order the optimizer can strictly
	// improve (SPT), so both optimizers have real incumbents to land.
	const nJobs = 16
	ids := make([]int, 0, nJobs)
	for i := 0; i < nJobs; i++ {
		est := int64(100 + (i*397)%900)
		resp := mustSubmit(t, r, schedd.SubmitRequest{
			Width: 8, Estimate: est, Runtime: est,
		})
		ids = append(ids, resp.ID)
		time.Sleep(10 * time.Millisecond)
	}

	// Wait for at least one adopted incumbent to stream out.
	deadline := time.After(20 * time.Second)
	var improved []Event
	for len(improved) == 0 {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				t.Fatal("subscription dropped before any plan-improved event")
			}
			improved = append(improved, ev)
		case <-deadline:
			t.Fatal("no plan-improved event within 20s")
		}
	}
	for _, ev := range improved {
		if ev.Type != EventPlanImproved || ev.Improvement == nil {
			t.Fatalf("malformed plan-improved event: %+v", ev)
		}
		if ev.Improvement.Jobs <= 0 || ev.Improvement.Objective <= 0 {
			t.Errorf("degenerate improvement payload: %+v", ev.Improvement)
		}
		if ev.Shard < 0 || ev.Shard >= 2 {
			t.Errorf("improvement from unknown shard %d", ev.Shard)
		}
	}

	// The metrics roll-up must agree that incumbents were adopted.
	adopted := int64(0)
	for i := 0; i < r.Shards(); i++ {
		adopted += r.Core(i).AnytimeAdopted()
	}
	if adopted == 0 {
		t.Error("plan-improved events streamed but no core counts an adoption")
	}

	// No job lost under adoption + rebalancing: every submission reaches
	// a planned (or later) state.
	for _, id := range ids {
		waitState(t, r, id)
	}
}

// TestShardedSLORejection: when every shard's twin predicts a start
// past the deadline, the router's fan-out surfaces the SLO rejection —
// not a generic queue-full — so clients can tell backlog from a
// hopeless deadline.
func TestShardedSLORejection(t *testing.T) {
	clock := schedd.NewManualClock(0)
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 16,
		Factory: basicFactory(t, clock, nil),
	})
	r.Start()
	defer stopRouter(t, r)

	// Occupy both shards with a long full-width job each.
	for i := 0; i < 2; i++ {
		resp := mustSubmit(t, r, schedd.SubmitRequest{Width: 8, Estimate: 10000})
		waitState(t, r, resp.ID)
	}

	_, err := r.Submit(context.Background(), schedd.SubmitRequest{
		Width: 8, Estimate: 100, Deadline: 500,
	})
	if err == nil {
		t.Fatal("deadline submission admitted despite both shards being busy for 10000s")
	}
	var bp *BackpressureError
	if !errors.As(err, &bp) {
		t.Fatalf("expected BackpressureError, got %T: %v", err, err)
	}
	if bp.Shards != 2 {
		t.Errorf("tried %d shards, want 2", bp.Shards)
	}
	if !strings.Contains(err.Error(), "slo_deadline") {
		t.Errorf("rejection does not name the SLO cause: %v", err)
	}
	if bp.RetryAfter <= 0 {
		t.Errorf("SLO rejection carries no Retry-After hint: %v", bp.RetryAfter)
	}

	// A submission without a deadline is still admitted: the twin only
	// turns away jobs that asked for a guarantee it cannot give.
	mustSubmit(t, r, schedd.SubmitRequest{Width: 8, Estimate: 100})
}

package shard

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/schedd"
)

// TestGatherMerge merges two live shards: counts sum, schedule entries
// come back with globalized IDs in (start, ID) order, and the per-shard
// views carry each shard's own version.
func TestGatherMerge(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 8,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)

	// Pin submissions to each core directly so both shards hold work.
	perShard := []int{3, 2}
	for idx, n := range perShard {
		for i := 0; i < n; i++ {
			resp, err := r.Core(idx).Submit(schedd.SubmitRequest{Width: 4, Estimate: 50})
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, r, r.global(idx, resp.ID))
		}
	}

	g := r.Gather()
	if g.Partial || len(g.MissingShards) != 0 {
		t.Fatalf("partial merge with all shards live: %+v", g)
	}
	if g.Shards != 2 || g.Machine != 8 {
		t.Errorf("merged shape shards=%d machine=%d", g.Shards, g.Machine)
	}
	if g.Counts.Submitted != 5 || g.Counts.Planned != 5 {
		t.Errorf("merged counts submitted=%d planned=%d, want 5/5", g.Counts.Submitted, g.Counts.Planned)
	}
	// Width 4 on 4-wide sub-machines: jobs serialize per shard, so the
	// waiting ones appear in the merged schedule with globalized IDs.
	seen := map[int]bool{}
	var prevStart, prevID int64 = -1, -1
	for _, e := range g.Schedule {
		if seen[e.JobID] {
			t.Fatalf("job %d appears twice in merged schedule", e.JobID)
		}
		seen[e.JobID] = true
		if _, _, ok := r.locate(e.JobID); !ok {
			t.Errorf("schedule entry id %d is not a valid global id", e.JobID)
		}
		if e.Start < prevStart || (e.Start == prevStart && int64(e.JobID) <= prevID) {
			t.Errorf("merged schedule out of (start, id) order at job %d", e.JobID)
		}
		prevStart, prevID = e.Start, int64(e.JobID)
	}
	for i, v := range g.PerShard {
		if v.Missing || v.Version < 1 {
			t.Errorf("shard %d view missing=%v version=%d", i, v.Missing, v.Version)
		}
		if v.Counts.Submitted != int64(perShard[i]) {
			t.Errorf("shard %d view submitted=%d, want %d", i, v.Counts.Submitted, perShard[i])
		}
	}
}

// TestGatherPartialOnStalledShard: a shard whose snapshot fetch hangs
// degrades the merge to partial=true within the gather deadline instead
// of blocking the read path.
func TestGatherPartialOnStalledShard(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 8, Metrics: reg, GatherTimeout: 30 * time.Millisecond,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)
	resp := mustSubmit(t, r, schedd.SubmitRequest{Width: 1, Estimate: 10})
	waitState(t, r, resp.ID)

	// Stall shard 1's snapshot fetch (the test seam Gather reads).
	release := make(chan struct{})
	orig := r.fetchSnap[1]
	r.fetchSnap[1] = func() *schedd.Snapshot {
		<-release
		return orig()
	}
	defer close(release)

	start := time.Now()
	g := r.Gather()
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("gather with stalled shard took %v", el)
	}
	if !g.Partial {
		t.Fatal("merge with stalled shard not marked partial")
	}
	if len(g.MissingShards) != 1 || g.MissingShards[0] != 1 {
		t.Errorf("missing shards %v, want [1]", g.MissingShards)
	}
	if !g.PerShard[1].Missing {
		t.Error("stalled shard's view not marked missing")
	}
	// The live shard's data still made it into the merge.
	if g.PerShard[0].Missing || g.Counts.Submitted != 1 {
		t.Errorf("live shard dropped from partial merge: %+v", g.PerShard[0])
	}
	if got := counterValue(reg, "shard.gather.partials"); got != 1 {
		t.Errorf("shard.gather.partials = %d, want 1", got)
	}
}

// TestMergedMetricsExposition: the merged scrape must relabel per-core
// series with shard labels, sum the shard="all" rollup, and render a
// valid Prometheus exposition (families adjacent, one TYPE line each).
func TestMergedMetricsExposition(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 8, Metrics: reg,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	r.Start()
	defer stopRouter(t, r)
	for idx := 0; idx < 2; idx++ {
		for i := 0; i < idx+1; i++ {
			resp, err := r.Core(idx).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, r, r.global(idx, resp.ID))
		}
	}

	ms := r.MergedMetrics()
	byKey := map[string]obs.Metric{}
	for _, m := range ms {
		byKey[m.Name+"|"+labelKey(m.Labels)] = m
	}
	// The rollup must equal the sum of the per-shard series: 1 + 2.
	shardVal := func(v string) int64 {
		m, ok := byKey["schedd.submits|"+labelKey([]obs.Label{{Key: "shard", Value: v}})]
		if !ok {
			t.Fatalf("no schedd.submits series for shard=%q", v)
		}
		return m.Value
	}
	if all, s0, s1 := shardVal("all"), shardVal("0"), shardVal("1"); all != 3 || s0+s1 != 3 {
		t.Errorf("schedd.submits all=%d shard0=%d shard1=%d, want 3 = 1+2", all, s0, s1)
	}
	// Router-level instruments pass through unlabeled.
	if _, ok := byKey["shard.routed.narrow|"]; !ok {
		t.Error("router-level counter missing from merged scrape")
	}
	var buf bytes.Buffer
	if err := obs.WritePrometheus(&buf, ms); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(buf.Bytes()); err != nil {
		t.Errorf("merged exposition invalid: %v\n%s", err, buf.String())
	}
}

// Shared helpers of the shard package tests.
package shard

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
)

func newScheduler(t testing.TB) *dynp.Scheduler {
	t.Helper()
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		t.Fatal(err)
	}
	s, err := dynp.New([]policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}, m, dynp.AdvancedDecider{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// basicFactory builds minimal per-shard cores over a shared clock; mut
// (optional) tweaks one shard's config by index.
func basicFactory(t testing.TB, clock schedd.Clock, mut func(idx int, cfg *schedd.Config)) CoreFactory {
	return func(idx, machine int) (schedd.Config, error) {
		cfg := schedd.Config{
			Scheduler:  newScheduler(t),
			Clock:      clock,
			QueueBound: 64,
			MaxBatch:   16,
			Metrics:    obs.NewRegistry(),
		}
		if mut != nil {
			mut(idx, &cfg)
		}
		return cfg, nil
	}
}

func newTestRouter(t testing.TB, cfg Config) *Router {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func stopRouter(t testing.TB, r *Router) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := r.Stop(ctx); err != nil {
		t.Errorf("router stop: %v", err)
	}
}

// waitState polls until the job reaches a non-queued state (planned,
// running or done).
func waitState(t testing.TB, r *Router, gid int) schedd.JobStatus {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, ok := r.Job(gid)
		if ok && st.State != schedd.StateQueued {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d never left queued (ok=%v state=%v)", gid, ok, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func mustSubmit(t testing.TB, r *Router, req schedd.SubmitRequest) schedd.SubmitResponse {
	t.Helper()
	resp, err := r.Submit(context.Background(), req)
	if err != nil {
		t.Fatalf("submit %+v: %v", req, err)
	}
	return resp
}

// counterValue digs one plain counter out of a registry snapshot.
func counterValue(reg *obs.Registry, name string) int64 {
	for _, m := range reg.Snapshot() {
		if m.Name == name && m.Labels == nil {
			return m.Value
		}
	}
	return 0
}

func fmtKey(i int) string { return fmt.Sprintf("key-%d", i) }

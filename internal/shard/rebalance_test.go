package shard

import (
	"context"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ilpsched"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/schedd"
	"repro/internal/solvepipe"
	"repro/internal/wal"
)

// slowShardHook returns a solve hook for one shard: the first call is
// delayed by warm (producing one honest slow plan-latency sample), and
// every later call parks on the returned release channel — the writer
// loop holds exactly one submission while the rest pile up in the
// queue, which is the backlog the rebalancer steals from.
func slowShardHook(warm time.Duration) (func(solvepipe.SolveFunc) solvepipe.SolveFunc, chan struct{}) {
	release := make(chan struct{})
	var calls atomic.Int64
	hook := func(base solvepipe.SolveFunc) solvepipe.SolveFunc {
		return func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error) {
			if calls.Add(1) == 1 {
				time.Sleep(warm)
			} else {
				select {
				case <-release:
				case <-ctx.Done():
				}
			}
			return base(ctx, m, opt)
		}
	}
	return hook, release
}

func ilpCfg(hook func(solvepipe.SolveFunc) solvepipe.SolveFunc) *schedd.ILPConfig {
	return &schedd.ILPConfig{Pipe: solvepipe.Config{
		// A budget far past the test horizon: the ladder must never time
		// a parked solve out and plan the job behind the test's back.
		Budget: 120 * time.Second,
		MIP:    mip.Options{MaxNodes: 50000},
		Hook:   hook,
	}}
}

// TestStealQueuedWidthFilter: a queued job wider than the target's
// sub-machine must not be stolen — the target would reject the hand-off
// forever, stranding the job in the pending-migration set.
func TestStealQueuedWidthFilter(t *testing.T) {
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 16, WideLane: 12,
		Factory: basicFactory(t, schedd.NewManualClock(0), nil),
	})
	// Cores stay unstarted: submissions stay queued, nothing drains.
	wide, err := r.Core(0).Submit(schedd.SubmitRequest{Width: 8, Estimate: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Core(0).Submit(schedd.SubmitRequest{Width: 3, Estimate: 10}); err != nil {
		t.Fatal(err)
	}
	stolen := r.Core(0).StealQueued(8, 1, r.machines[1])
	if len(stolen) != 1 || stolen[0].Width != 3 {
		t.Fatalf("stole %+v, want exactly the width-3 job (target machine is %d)", stolen, r.machines[1])
	}
	// The too-wide job is still queued at its source.
	st, ok := r.Job(r.global(0, wide.ID))
	if !ok || st.State != schedd.StateQueued {
		t.Fatalf("wide job status = %+v ok=%v, want queued at shard 0", st, ok)
	}
	// The stolen job, mid-migration (steal durable, target hand-off not
	// yet driven — exactly the post-crash-recovery state too), must stay
	// visible as queued through both the core and the router: status
	// lookups never 404 between steal and target admission.
	mid := stolen[0].ID
	if st, ok := r.Core(0).Job(mid); !ok || st.State != schedd.StateQueued {
		t.Fatalf("mid-migration core lookup = %+v ok=%v, want queued", st, ok)
	}
	if st, ok := r.Job(r.global(0, mid)); !ok || st.State != schedd.StateQueued {
		t.Fatalf("mid-migration router lookup = %+v ok=%v, want queued", st, ok)
	}
}

// TestRebalanceMigratesQueuedExactlyOnce drives shard 0's p99 past the
// divergence threshold with a parked solver, lets the maintenance loop
// migrate the queued backlog to shard 1, and checks each migrated job
// is planned exactly once — and that a keyed job never migrates.
func TestRebalanceMigratesQueuedExactlyOnce(t *testing.T) {
	hook, release := slowShardHook(250 * time.Millisecond)
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{
		Shards: 2, Machine: 16, Metrics: reg,
		RebalanceP99:      20, // ms; shard 0's warm sample is ~250ms
		RebalanceInterval: 10 * time.Millisecond,
		Factory: basicFactory(t, schedd.NewManualClock(0), func(idx int, cfg *schedd.Config) {
			cfg.MaxBatch = 1 // the parked writer holds exactly one job
			if idx == 0 {
				cfg.ILP = ilpCfg(hook)
			}
		}),
	})
	r.Start()
	released := false
	defer func() {
		if !released {
			close(release)
		}
		stopRouter(t, r)
	}()

	// One honestly-planned job per shard: shard 0 slow (~250ms sample),
	// shard 1 fast — that asymmetry is the p99 divergence signal.
	slow, err := r.Core(0).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, r.global(0, slow.ID))
	fast, err := r.Core(1).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, r, r.global(1, fast.ID))

	// Park shard 0's writer on the next solve, then build the backlog:
	// two unkeyed jobs (stealable) and one keyed job (pinned).
	if _, err := r.Core(0).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10}); err != nil {
		t.Fatal(err) // consumed by the writer, parked in its solve
	}
	var queued []int
	for i := 0; i < 2; i++ {
		resp, err := r.Core(0).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, resp.ID)
	}
	pinned, err := r.Core(0).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10, IdempotencyKey: "pinned"})
	if err != nil {
		t.Fatal(err)
	}

	// The maintenance loop must observe the divergence and migrate the
	// two unkeyed queued jobs.
	deadline := time.Now().Add(10 * time.Second)
	for counterValue(reg, "shard.jobs.migrated") < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("rebalancer migrated %d jobs, want 2 (p99 shard0=%.1f shard1=%.1f)",
				counterValue(reg, "shard.jobs.migrated"),
				r.Core(0).PlanLatencyQuantile(0.99), r.Core(1).PlanLatencyQuantile(0.99))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := counterValue(reg, "shard.rebalances"); got < 1 {
		t.Errorf("shard.rebalances = %d, want >= 1", got)
	}

	for _, local := range queued {
		gOld := r.global(0, local)
		// The old global ID must keep resolving (via the alias) and the
		// job must land planned on shard 1.
		st := waitState(t, r, gOld)
		if st.Shard != 1 {
			t.Errorf("migrated job %d lives on shard %d, want 1", gOld, st.Shard)
		}
		if st.ID%2 != 1 {
			t.Errorf("migrated job %d resolved to id %d, not a shard-1 id", gOld, st.ID)
		}
		// The source core must no longer know the job...
		if _, ok := r.Core(0).Job(local); ok {
			t.Errorf("source core still owns migrated job %d", local)
		}
		// ...and the target must hold the dedup entry that makes any
		// hand-off retry exactly-once.
		again, err := r.Core(1).Submit(schedd.SubmitRequest{
			Width: 1, Estimate: 10, IdempotencyKey: fmt.Sprintf("mig:0:%d", local),
		})
		if err != nil || !again.Deduplicated {
			t.Errorf("migration key of job %d not deduplicated at target: %+v %v", local, again, err)
		}
	}
	// The keyed job must never migrate: it stays queued on shard 0.
	if st, ok := r.Job(r.global(0, pinned.ID)); !ok || st.State != schedd.StateQueued {
		t.Errorf("pinned keyed job state %+v ok=%v, want queued on shard 0", st, ok)
	}

	// Unpark shard 0, drain, and check the exactly-once ledger: six
	// jobs total, two of which migrated — exactly 3 planned per shard.
	close(release)
	released = true
	final, err := r.Stop(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if final.Counts.Planned != 6 {
		t.Errorf("final merged planned = %d, want 6 (each job exactly once)", final.Counts.Planned)
	}
	if p0, p1 := final.PerShard[0].Counts.Planned, final.PerShard[1].Counts.Planned; p0 != 3 || p1 != 3 {
		t.Errorf("per-shard planned = %d/%d, want 3/3", p0, p1)
	}
}

// parkHook parks every solve call on the returned channel: the first
// submission stalls the writer loop so later ones pile up in the queue.
func parkHook() (func(solvepipe.SolveFunc) solvepipe.SolveFunc, chan struct{}) {
	release := make(chan struct{})
	hook := func(base solvepipe.SolveFunc) solvepipe.SolveFunc {
		return func(ctx context.Context, m *ilpsched.Model, opt mip.Options) (*ilpsched.Solution, error) {
			select {
			case <-release:
			case <-ctx.Done():
			}
			return base(ctx, m, opt)
		}
	}
	return hook, release
}

// walFactory builds WAL-backed cores under dir/shard-<i>; slowHook, if
// non-nil, parks shard 0's solver (for building a queued backlog).
// Returned logs are indexed by shard for crash (Abort) control.
func walFactory(t *testing.T, dir string, clock schedd.Clock, slowHook func(solvepipe.SolveFunc) solvepipe.SolveFunc) (CoreFactory, []*wal.Log) {
	logs := make([]*wal.Log, 2)
	factory := func(idx, machine int) (schedd.Config, error) {
		log, rep, err := wal.Open(wal.Options{Dir: filepath.Join(dir, fmt.Sprintf("shard-%d", idx)), NoSync: true})
		if err != nil {
			return schedd.Config{}, err
		}
		logs[idx] = log
		cfg := schedd.Config{
			Scheduler:  newScheduler(t),
			Clock:      clock,
			QueueBound: 64,
			MaxBatch:   1,
			WAL:        log,
			Recovery:   rep,
			Metrics:    obs.NewRegistry(),
		}
		if idx == 0 && slowHook != nil {
			cfg.ILP = ilpCfg(slowHook)
		}
		return cfg, nil
	}
	return factory, logs
}

// TestMigrationCrashRecovery kills the fabric (WAL aborts, the
// in-process kill -9) in the middle of a migration hand-off — one
// stolen job not yet submitted to its target (phase A), one submitted
// but unconfirmed (phase B) — and checks recovery completes both
// against the recorded target with neither loss nor duplication.
func TestMigrationCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	hook, release := parkHook()
	factory, logs := walFactory(t, dir, schedd.NewManualClock(0), hook)
	// A one-hour maintenance interval: r1's own loop must not complete
	// the hand-offs before the crash the test is staging.
	r1 := newTestRouter(t, Config{Shards: 2, Machine: 16, Factory: factory, RebalanceInterval: time.Hour})
	r1.Start()

	readyDeadline := time.Now().Add(10 * time.Second)
	for r1.Core(0).Phase() != schedd.PhaseReady || r1.Core(1).Phase() != schedd.PhaseReady {
		if time.Now().After(readyDeadline) {
			t.Fatal("cores never became ready")
		}
		time.Sleep(time.Millisecond)
	}

	// Park shard 0's writer, then queue two stealable jobs behind it.
	blocker, err := r1.Core(0).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
	if err != nil {
		t.Fatal(err)
	}
	var locals []int
	for i := 0; i < 2; i++ {
		resp, err := r1.Core(0).Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
		if err != nil {
			t.Fatal(err)
		}
		locals = append(locals, resp.ID)
	}

	// Steal both for shard 1 (durable migrate-out records). Complete the
	// target submit for the second job only — but crash before its
	// MigrateDone confirmation lands.
	stolen := r1.Core(0).StealQueued(8, 1, 0)
	if len(stolen) != 2 {
		t.Fatalf("stole %d jobs, want 2", len(stolen))
	}
	if _, err := r1.Core(1).Submit(schedd.SubmitRequest{
		Width: stolen[1].Width, Estimate: stolen[1].Estimate, Runtime: stolen[1].Runtime,
		Source: stolen[1].Source, IdempotencyKey: stolen[1].Key,
	}); err != nil {
		t.Fatalf("phase-B target submit: %v", err)
	}

	// kill -9: poison both WALs, abandon the routers' goroutines.
	logs[0].Abort()
	logs[1].Abort()
	close(release)

	// Restart: fresh cores over the same WAL dirs, no parked solver.
	factory2, logs2 := walFactory(t, dir, schedd.NewManualClock(0), nil)
	r2 := newTestRouter(t, Config{Shards: 2, Machine: 16, Factory: factory2})
	r2.Start()
	defer func() {
		stopRouter(t, r2)
		logs2[0].Close()
		logs2[1].Close()
	}()

	// Recovery must re-drive both hand-offs against the recorded target:
	// phase A (never submitted) and phase B (submitted, unconfirmed —
	// the target-side dedup absorbs the retry).
	for _, local := range locals {
		gOld := r2.global(0, local)
		st := waitState(t, r2, gOld)
		if st.Shard != 1 {
			t.Errorf("recovered migration of job %d landed on shard %d, want 1", gOld, st.Shard)
		}
		if _, ok := r2.Core(0).Job(local); ok {
			t.Errorf("source core still owns job %d after recovered migration", local)
		}
	}
	// The blocker was durably admitted pre-crash: replay replans it on
	// shard 0.
	st := waitState(t, r2, r2.global(0, blocker.ID))
	if st.Shard != 0 {
		t.Errorf("blocker recovered on shard %d, want 0", st.Shard)
	}

	// Exactly-once ledger: the pending set drains, both migration keys
	// dedup at the target (a duplicated hand-off would have minted a
	// second ID), and exactly 3 jobs are active across the fabric — the
	// blocker on shard 0 plus the two migrated jobs on shard 1, nothing
	// lost, nothing doubled. (The manual clock never completes a job, so
	// every planned job stays active.)
	deadline := time.Now().Add(10 * time.Second)
	for {
		pending := len(r2.Core(0).PendingMigrations())
		active := len(r2.Core(0).Snapshot().Active) + len(r2.Core(1).Snapshot().Active)
		if pending == 0 && active == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger never converged: pending=%d active=%d, want 0 and 3", pending, active)
		}
		time.Sleep(2 * time.Millisecond)
	}
	newIDs := map[int]bool{}
	for _, m := range stolen {
		again, err := r2.Core(1).Submit(schedd.SubmitRequest{
			Width: m.Width, Estimate: m.Estimate, IdempotencyKey: m.Key,
		})
		if err != nil || !again.Deduplicated {
			t.Errorf("migration key %q not deduplicated at target after recovery: %+v %v", m.Key, again, err)
		}
		if newIDs[again.ID] {
			t.Errorf("both migration keys resolved to target id %d", again.ID)
		}
		newIDs[again.ID] = true
	}
}

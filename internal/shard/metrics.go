// Metrics merge: each shard core owns its own obs.Registry (the
// factory supplies it), and the router exposes one scrape surface that
// relabels every per-core series with a "shard" label plus a summed
// shard="all" rollup per family. Series of one family stay adjacent in
// the output — the Prometheus encoder emits one # TYPE line per
// contiguous family run, so interleaving families would produce a
// malformed exposition.
package shard

import (
	"repro/internal/obs"
)

// MergedMetrics returns the router-level instruments followed by every
// core family: for each family, first the shard="all" aggregate
// (counters and histogram buckets summed across shards), then the
// individual per-shard series.
func (r *Router) MergedMetrics() []obs.Metric {
	out := r.cfg.Metrics.Snapshot()
	type series struct {
		shard int
		m     obs.Metric
	}
	var famOrder []string
	fams := map[string][]series{}
	for i, c := range r.cores {
		for _, m := range c.Metrics().Snapshot() {
			if _, ok := fams[m.Name]; !ok {
				famOrder = append(famOrder, m.Name)
			}
			fams[m.Name] = append(fams[m.Name], series{i, m})
		}
	}
	for _, name := range famOrder {
		ss := fams[name]
		// Aggregate across shards per label tuple (the vast majority of
		// families are unlabeled: one tuple).
		var aggOrder []string
		aggs := map[string]*obs.Metric{}
		for _, s := range ss {
			k := labelKey(s.m.Labels)
			a, ok := aggs[k]
			if !ok {
				cp := s.m
				cp.Labels = withShardLabel(s.m.Labels, "all")
				cp.Buckets = append([]obs.Bucket(nil), s.m.Buckets...)
				aggs[k] = &cp
				aggOrder = append(aggOrder, k)
				continue
			}
			if a.Kind == "gauge" {
				// Gauges roll up as the worst reading, not a sum: a
				// shard="all" plan age is the staleness of the *stalest*
				// shard's plan.
				if s.m.Sum > a.Sum {
					a.Sum, a.Value = s.m.Sum, s.m.Value
				}
				continue
			}
			a.Value += s.m.Value
			a.Sum += s.m.Sum
			if len(a.Buckets) == len(s.m.Buckets) {
				for bi := range a.Buckets {
					a.Buckets[bi].Count += s.m.Buckets[bi].Count
				}
			}
		}
		for _, k := range aggOrder {
			a := aggs[k]
			if a.Kind == "histogram" && a.Value > 0 {
				a.Mean = a.Sum / float64(a.Value)
			}
			out = append(out, *a)
		}
		for _, s := range ss {
			m := s.m
			m.Labels = withShardLabel(s.m.Labels, shardLabel(s.shard))
			out = append(out, m)
		}
	}
	return out
}

// labelKey identifies a label tuple within one family.
func labelKey(ls []obs.Label) string {
	k := ""
	for _, l := range ls {
		k += l.Key + "\xff" + l.Value + "\xff"
	}
	return k
}

// withShardLabel copies a label set with shard=<v> appended.
func withShardLabel(ls []obs.Label, v string) []obs.Label {
	out := make([]obs.Label, 0, len(ls)+1)
	out = append(out, ls...)
	return append(out, obs.Label{Key: "shard", Value: v})
}

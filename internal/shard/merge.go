// Scatter-gather snapshot merge: GET /v1/schedule on the router reads
// every shard's published snapshot concurrently and merges them into
// one machine-wide view. Reads are lock-free on the shard side (the
// atomic snapshot pointer), so the merge never blocks a writer; on the
// router side a gather deadline bounds the wait, and a shard that
// cannot produce its snapshot in time is reported in missing_shards
// with partial=true instead of stalling the response. Shards publish
// independently, so the merged view is a consistent-per-shard cut, not
// a global barrier — the per-shard versions are included so consumers
// can reason about staleness.
package shard

import (
	"sort"
	"time"

	"repro/internal/schedd"
)

// ShardView is one shard's contribution to the merged snapshot.
type ShardView struct {
	Shard   int `json:"shard"`
	Machine int `json:"machine"`
	// Missing marks a shard that failed to produce its snapshot within
	// the gather deadline; its remaining fields are zero.
	Missing    bool   `json:"missing,omitempty"`
	Version    int64  `json:"version"`
	Now        int64  `json:"now"`
	QueueDepth int    `json:"queue_depth"`
	Waiting    int    `json:"waiting"`
	Running    int    `json:"running"`
	Policy     string `json:"policy,omitempty"`
	Degraded   bool   `json:"degraded,omitempty"`
	// PendingMigrations counts migrate-outs awaiting hand-off.
	PendingMigrations int             `json:"pending_migrations,omitempty"`
	Counts            schedd.Counters `json:"counts"`
}

// MergedSnapshot is the machine-wide view assembled from per-shard
// snapshots.
type MergedSnapshot struct {
	// Now is the maximum virtual time across the gathered shards.
	Now    int64 `json:"now"`
	Shards int   `json:"shards"`
	// Machine is the total processor count across all shards.
	Machine int `json:"machine"`
	// Partial marks a merge that is missing at least one shard's
	// snapshot (gather deadline exceeded); MissingShards lists them.
	Partial       bool  `json:"partial"`
	MissingShards []int `json:"missing_shards,omitempty"`
	Draining      bool  `json:"draining"`
	Degraded      bool  `json:"degraded"`
	// Schedule is the union of the shards' plans with globalized job
	// IDs, sorted by (start, ID).
	Schedule []schedd.PlannedEntry `json:"schedule"`
	// Counts sums the gathered shards' monotone totals.
	Counts schedd.Counters `json:"counts"`
	// PerShard carries each shard's own view (including missing ones).
	PerShard []ShardView `json:"per_shard"`
}

// Gather scatter-gathers the current shard snapshots within the
// configured GatherTimeout.
func (r *Router) Gather() *MergedSnapshot {
	type got struct {
		idx  int
		snap *schedd.Snapshot
	}
	// The channel is buffered to n so a fetch that beats the deadline
	// after we stopped listening still completes without leaking its
	// goroutine forever.
	ch := make(chan got, r.n)
	for i := 0; i < r.n; i++ {
		go func(i int) { ch <- got{i, r.fetchSnap[i]()} }(i)
	}
	snaps := make([]*schedd.Snapshot, r.n)
	timer := time.NewTimer(r.cfg.GatherTimeout)
	defer timer.Stop()
	for received := 0; received < r.n; received++ {
		select {
		case g := <-ch:
			snaps[g.idx] = g.snap
		case <-timer.C:
			received = r.n // deadline: merge what arrived
		}
	}
	m := r.merge(snaps, r.queueDepths())
	if m.Partial {
		r.cPartials.Inc()
	}
	return m
}

// queueDepths samples every shard's submit backlog (always available —
// it does not depend on the snapshot fetch).
func (r *Router) queueDepths() []int {
	out := make([]int, r.n)
	for i, c := range r.cores {
		out[i] = c.QueueDepth()
	}
	return out
}

// merge assembles the machine-wide view from whatever snapshots were
// gathered (nil entries are missing shards). depths may be nil.
func (r *Router) merge(snaps []*schedd.Snapshot, depths []int) *MergedSnapshot {
	m := &MergedSnapshot{
		Shards:   r.n,
		Machine:  r.cfg.Machine,
		PerShard: make([]ShardView, r.n),
	}
	for i, s := range snaps {
		v := ShardView{Shard: i, Machine: r.machines[i]}
		if depths != nil {
			v.QueueDepth = depths[i]
		}
		if s == nil {
			v.Missing = true
			m.Partial = true
			m.MissingShards = append(m.MissingShards, i)
			m.PerShard[i] = v
			continue
		}
		v.Version = s.Version
		v.Now = s.Now
		v.Policy = s.Policy
		v.Degraded = s.Degraded
		v.Counts = s.Counts
		v.PendingMigrations = len(r.cores[i].PendingMigrations())
		for _, st := range s.Active {
			if st.State == schedd.StateRunning {
				v.Running++
			} else {
				v.Waiting++
			}
		}
		m.PerShard[i] = v
		if s.Now > m.Now {
			m.Now = s.Now
		}
		m.Draining = m.Draining || s.Draining
		m.Degraded = m.Degraded || s.Degraded
		addCounts(&m.Counts, s.Counts)
		for _, e := range s.Schedule {
			e.JobID = r.global(i, e.JobID)
			m.Schedule = append(m.Schedule, e)
		}
	}
	sort.Slice(m.Schedule, func(i, k int) bool {
		if m.Schedule[i].Start != m.Schedule[k].Start {
			return m.Schedule[i].Start < m.Schedule[k].Start
		}
		return m.Schedule[i].JobID < m.Schedule[k].JobID
	})
	return m
}

func addCounts(dst *schedd.Counters, s schedd.Counters) {
	dst.Submitted += s.Submitted
	dst.Planned += s.Planned
	dst.Started += s.Started
	dst.Completed += s.Completed
	dst.Steps += s.Steps
	dst.Replans += s.Replans
	dst.Batches += s.Batches
	dst.BatchedJobs += s.BatchedJobs
	dst.DegradedSteps += s.DegradedSteps
}

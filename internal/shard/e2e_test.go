// Sharded serving end-to-end test: the 4-shard fabric under
// accelerated CTC replay with injected solve faults, driven through the
// router's HTTP surface. The fabric must accept everything, plan every
// accepted job (zero dropped), survive every faulted solve, and the
// SSE stream must deliver every plan-version event exactly once per
// subscriber — contiguous versions per shard, no gaps, no repeats.
package shard_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/faultinject"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/shard"
	"repro/internal/solvepipe"
	"repro/internal/workload"
)

// sseWatch consumes /v1/events?types=plan-version until ctx ends,
// recording the version sequence seen per shard.
type sseWatch struct {
	mu       sync.Mutex
	versions map[int][]int64
	frames   int
	err      error
}

func watchSSE(ctx context.Context, t *testing.T, url string) (*sseWatch, func()) {
	w := &sseWatch{versions: map[int][]int64{}}
	req, err := http.NewRequestWithContext(ctx, "GET", url+"/v1/events?types=plan-version", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 64*1024)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var ev shard.Event
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				w.mu.Lock()
				w.err = err
				w.mu.Unlock()
				return
			}
			w.mu.Lock()
			w.frames++
			w.versions[ev.Shard] = append(w.versions[ev.Shard], ev.Version)
			w.mu.Unlock()
		}
	}()
	return w, func() { <-done }
}

func TestShardedServingE2EWithFaults(t *testing.T) {
	const nJobs = 250
	tr, err := workload.Generate(workload.CTC(), nJobs, 9)
	if err != nil {
		t.Fatal(err)
	}
	pols := []policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}

	// One fault injector per shard (hooks run on concurrent writer
	// loops): 20% of solve calls fault, every one must degrade
	// gracefully, never kill a shard.
	injectors := make([]*faultinject.Injector, 4)
	factory := func(idx, machine int) (schedd.Config, error) {
		m, err := metrics.ByName("SLDwA")
		if err != nil {
			return schedd.Config{}, err
		}
		sched, err := dynp.New(pols, m, dynp.AdvancedDecider{})
		if err != nil {
			return schedd.Config{}, err
		}
		injectors[idx] = faultinject.New(faultinject.NewProbability(uint64(11+idx), 0.2))
		return schedd.Config{
			Scheduler:     sched,
			Clock:         schedd.NewWallClock(50000),
			QueueBound:    1024,
			MaxBatch:      64,
			MaxBatchDelay: 5 * time.Millisecond,
			ILP: &schedd.ILPConfig{
				Pipe: solvepipe.Config{
					Budget: 500 * time.Millisecond,
					MIP:    mip.Options{MaxNodes: 50000},
					Hook:   injectors[idx].Hook,
				},
			},
			Metrics: obs.NewRegistry(),
		}, nil
	}
	reg := obs.NewRegistry()
	r, err := shard.New(shard.Config{
		Shards:  4,
		Machine: tr.Processors,
		// CTC widths reach 256 of 430 processors: the wide lane keeps
		// shard 0 big enough that no job is unservable.
		WideLane:          256,
		Factory:           factory,
		Metrics:           reg,
		RebalanceP99:      100,
		RebalanceInterval: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	srv := httptest.NewServer(shard.NewHandler(r))
	defer srv.Close()
	stopped := false
	defer func() {
		if !stopped {
			r.Stop(context.Background())
		}
	}()

	sseCtx, sseCancel := context.WithCancel(context.Background())
	watch, join := watchSSE(sseCtx, t, srv.URL)

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     srv.URL,
		Trace:       tr,
		Accel:       50000,
		Sources:     4,
		WaitTimeout: 3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sharded serving e2e:\n%s", res)

	if res.Accepted != nJobs {
		t.Errorf("accepted %d of %d submissions (429=%d other=%d)",
			res.Accepted, nJobs, res.Rejected429, res.RejectedOther)
	}
	if res.TransportErrors > 0 {
		t.Errorf("%d transport errors: the fabric went down under faults", res.TransportErrors)
	}
	// The zero-dropped invariant across the merged rollup: every newly
	// accepted job planned, on some shard.
	if res.DroppedAccepted != 0 {
		t.Errorf("%d accepted jobs were never planned", res.DroppedAccepted)
	}
	if res.MissingJobs > 0 {
		t.Errorf("%d accepted jobs could not be fetched back", res.MissingJobs)
	}
	// The run spans multiple shards, so the per-shard latency breakdown
	// must be populated.
	if len(res.PlanLatencyByShard) < 2 {
		t.Errorf("plan latency by shard has %d groups, want >= 2: %v",
			len(res.PlanLatencyByShard), res.PlanLatencyByShard)
	}
	faults := 0
	for _, inj := range injectors {
		faults += len(inj.Injected())
	}
	if faults == 0 {
		t.Error("fault injectors never fired")
	}
	if res.DegradedSteps == 0 {
		t.Errorf("no degraded steps despite %d injected faults", faults)
	}

	// The merged snapshot must gather all four shards.
	g := r.Gather()
	if g.Partial {
		t.Errorf("full gather came back partial (missing %v)", g.MissingShards)
	}
	if g.Counts.Planned < int64(nJobs) {
		t.Errorf("merged planned count %d < %d", g.Counts.Planned, nJobs)
	}

	// Let the stream settle, then check SSE exactly-once delivery:
	// per shard, versions strictly contiguous — a gap is a lost event,
	// a repeat is a duplicate.
	time.Sleep(300 * time.Millisecond)
	sseCancel()
	join()
	watch.mu.Lock()
	defer watch.mu.Unlock()
	if watch.err != nil {
		t.Fatalf("SSE stream decode: %v", watch.err)
	}
	if watch.frames == 0 {
		t.Fatal("SSE subscriber saw no plan-version events")
	}
	for s, vs := range watch.versions {
		for i := 1; i < len(vs); i++ {
			if vs[i] != vs[i-1]+1 {
				t.Fatalf("shard %d: version %d followed %d at event %d of %d — SSE delivery not exactly-once",
					s, vs[i], vs[i-1], i, len(vs))
			}
		}
	}
	if len(watch.versions) < 2 {
		t.Errorf("SSE saw versions from %d shards, want >= 2", len(watch.versions))
	}

	// Drain: the final merged snapshot closes the ledger.
	final, err := r.Stop(context.Background())
	stopped = true
	if err != nil {
		t.Fatal(err)
	}
	if final.Counts.Planned < int64(nJobs) {
		t.Errorf("final planned %d < accepted %d", final.Counts.Planned, nJobs)
	}
}

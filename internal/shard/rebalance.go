// The rebalancer: dynamic re-placement of queued jobs, after Casanova,
// Stillwell & Vivien (2011) — static partitioning loses to moving work
// when load skews. The signal is submit-to-plan p99 divergence over a
// sliding window (schedd.Config.PlanLatencyWindow, default 15s): when
// the slowest shard's recent p99 exceeds the fastest's by more than
// the configured threshold, queued (not-yet-planned, unkeyed) jobs
// migrate from slowest to fastest via the exactly-once protocol in
// schedd/migrate.go. The window matters: a lifetime-cumulative
// quantile would keep firing for a shard that slowed once and long
// since recovered, churning jobs off it every interval forever. The
// protocol:
//
//	steal (durable migrate-out, fsynced) → submit to recorded target
//	under the synthetic key "mig:<src>:<id>" → confirm (MigrateDone).
//
// A crash anywhere in between leaves the job pending at the source;
// recovery re-drives the hand-off against the *recorded* target, whose
// idempotency dedup makes the retry safe. The router tracks the old →
// new global ID alias so clients polling the original ID keep getting
// answers.
package shard

import (
	"repro/internal/obs"
	"repro/internal/schedd"
)

// RebalanceOnce evaluates the divergence signal and, when it trips,
// migrates up to MaxMigratePerRound queued jobs from the slowest shard
// to the fastest. Returns how many jobs completed their hand-off.
func (r *Router) RebalanceOnce() int {
	if r.n < 2 {
		return 0
	}
	worst, best := 0, 0
	var worstP, bestP float64
	for i, c := range r.cores {
		p := c.PlanLatencyQuantile(0.99)
		if i == 0 || p > worstP {
			worst, worstP = i, p
		}
		if i == 0 || p < bestP {
			best, bestP = i, p
		}
	}
	if worst == best || worstP-bestP < r.cfg.RebalanceP99 {
		return 0
	}
	if r.cores[worst].QueueDepth() == 0 {
		return 0 // nothing stealable: only queued jobs migrate
	}
	// Cap by the target's sub-machine: a job wider than the best shard
	// can serve must stay put (it would be rejected on hand-off forever).
	stolen := r.cores[worst].StealQueued(r.cfg.MaxMigratePerRound, best, r.machines[best])
	moved := r.handOff(worst, stolen)
	if moved > 0 {
		r.cRebalances.Inc()
		r.trace.Emit("shard.rebalance",
			obs.Int("from", int64(worst)),
			obs.Int("to", int64(best)),
			obs.Int("moved", int64(moved)),
			obs.Float("p99_worst_ms", worstP),
			obs.Float("p99_best_ms", bestP))
	}
	return moved
}

// handOff completes the migration of stolen jobs: submit each to its
// recorded target shard under its synthetic idempotency key, then
// confirm. A hand-off that fails (target backpressure, draining) stays
// in the source's pending set and is retried by the next maintenance
// tick — never re-targeted, so the dedup key keeps retries exactly-once.
func (r *Router) handOff(src int, jobs []schedd.MigratedJob) int {
	moved := 0
	for _, m := range jobs {
		gOld := r.global(src, m.ID)
		// Queued placeholder so a status poll of the old ID never 404s
		// between steal and target admission.
		r.inflight.Store(gOld, schedd.JobStatus{
			ID: gOld, State: schedd.StateQueued, Width: m.Width, Estimate: m.Estimate,
			Submit: m.Submit, PlannedStart: -1, Start: -1, End: -1, PlanLatencyMs: -1,
			TraceID: m.Trace, Shard: src,
		})
		resp, err := r.cores[m.Target].Submit(schedd.SubmitRequest{
			Width: m.Width, Estimate: m.Estimate, Runtime: m.Runtime,
			Source: m.Source, IdempotencyKey: m.Key,
		})
		if err != nil {
			r.cMigRetries.Inc()
			continue // still pending at the source; retried next tick
		}
		gNew := r.global(m.Target, resp.ID)
		r.cores[src].MigrateDone(m.ID, int64(gNew))
		r.aliases.Store(gOld, gNew)
		r.inflight.Delete(gOld)
		r.cMigrated.Inc()
		moved++
	}
	return moved
}

// completeAllPending re-drives every unconfirmed migration hand-off
// (after a crash, or after a target rejected the submit on an earlier
// tick). Each goes to its recorded target, where the synthetic key
// dedups any half-completed earlier attempt.
func (r *Router) completeAllPending() {
	for i, c := range r.cores {
		if pending := c.PendingMigrations(); len(pending) > 0 {
			r.handOff(i, pending)
		}
	}
}

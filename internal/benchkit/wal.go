package benchkit

import (
	"encoding/json"
	"os"
	"testing"

	"repro/internal/wal"
)

// walRecord is the append payload of the WAL micro-benchmarks, sized
// like a real schedd submit record.
type walRecord struct {
	ID       int    `json:"id"`
	Submit   int64  `json:"submit"`
	Width    int    `json:"width"`
	Estimate int64  `json:"estimate"`
	Source   string `json:"source"`
	Trace    string `json:"trace"`
}

// BenchWALAppendSync returns the durable-append benchmark body:
// concurrent AppendSync calls (each blocking until its record is
// fsynced) against a real on-disk log with the given group-commit
// batch bound. fsyncEvery 1 measures one fsync per record — the
// no-group-commit baseline — and larger values measure how much the
// group commit amortizes the disk flush across concurrent submitters.
func BenchWALAppendSync(fsyncEvery int) func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "benchwal")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		l, _, err := wal.Open(wal.Options{Dir: dir, FsyncEvery: fsyncEvery})
		if err != nil {
			b.Fatal(err)
		}
		defer l.Close()
		payload, _ := json.Marshal(walRecord{
			ID: 1, Submit: 3600, Width: 8, Estimate: 7200,
			Source: "bench", Trace: "0123456789abcdef0123456789abcdef",
		})
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := l.AppendSync("submit", json.RawMessage(payload), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchWALAppendAsync returns the fire-and-forget append body (the
// writer-loop record path: plan, start, complete records that need
// ordering but not admission-blocking durability).
func BenchWALAppendAsync() func(b *testing.B) {
	return func(b *testing.B) {
		dir, err := os.MkdirTemp("", "benchwal")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		l, _, err := wal.Open(wal.Options{Dir: dir, FsyncEvery: 64})
		if err != nil {
			b.Fatal(err)
		}
		payload, _ := json.Marshal(walRecord{ID: 1, Submit: 3600, Width: 8, Estimate: 7200})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := l.Append("plan", json.RawMessage(payload)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := l.Close(); err != nil { // drain + final fsync is part of honesty, not the timer
			b.Fatal(err)
		}
	}
}

package benchkit

import (
	"context"
	"io"
	"testing"

	"repro/internal/obs"
)

// ObsServing is the serving-hot-path instrument fixture: one Op is the
// observability work the schedd admission + replan path performs per
// accepted submission — a labeled source counter, an admission span
// (ctx-scoped begin/end), the submit point event, a labeled replan
// duration observation and a labeled outcome counter. The modes:
//
//	disabled — nil Registry and Tracer: the no-op default every caller
//	           gets; this path must stay allocation-free.
//	labeled  — Registry attached (labeled counters/histograms live),
//	           no event tracing.
//	tracing  — full JSONL event stream to io.Discard plus the labels.
type ObsServing struct {
	reg  *obs.Registry
	tr   *obs.Tracer
	ctx  context.Context
	vSub *obs.CounterVec
	vOut *obs.CounterVec
	hDur *obs.HistogramVec
}

// NewObsServing builds the fixture for one of the modes above.
func NewObsServing(mode string) *ObsServing {
	o := &ObsServing{}
	switch mode {
	case "labeled":
		o.reg = obs.NewRegistry()
	case "tracing":
		o.reg = obs.NewRegistry()
		o.tr = obs.NewTracer(io.Discard)
	}
	bounds := []float64{1, 5, 10, 50, 100, 500, 1000}
	o.vSub = o.reg.CounterVec("schedd.submits.by_source", "source")
	o.vOut = o.reg.CounterVec("schedd.step.outcome", "outcome", "policy")
	o.hDur = o.reg.HistogramVec("schedd.replan.duration.ms", bounds, "kind")
	o.ctx = obs.WithTraceID(context.Background(), "bench-trace-id")
	return o
}

// Op performs the per-submission instrument work of the serving path.
func (o *ObsServing) Op(i int) {
	o.vSub.With("loadgen").Inc()
	ctx, span := o.tr.StartSpanCtx(o.ctx, "schedd.admit",
		obs.Str("source", "loadgen"), obs.Int("width", 4))
	o.tr.EmitCtx(ctx, "schedd.submit",
		obs.Int("t", int64(i)),
		obs.Int("job", int64(i)),
		obs.Int("width", 4),
		obs.Str("source", "loadgen"))
	span.End(obs.Str("outcome", "accepted"), obs.Int("job", int64(i)))
	o.hDur.With("step").Observe(float64(i % 100))
	o.vOut.With("ok", "FCFS").Inc()
}

// BenchObsServingPath returns the benchmark body measuring the serving
// path's observability overhead in the given mode.
func BenchObsServingPath(mode string) func(b *testing.B) {
	return func(b *testing.B) {
		o := NewObsServing(mode)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			o.Op(i)
		}
	}
}

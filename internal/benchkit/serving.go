package benchkit

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/dynp"
	"repro/internal/faultinject"
	"repro/internal/job"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/shard"
	"repro/internal/solvepipe"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ServingConfig parameterizes one serving benchmark leg: a full
// in-process schedd service (core + HTTP API) driven by the loadgen
// open-loop replayer over a synthetic CTC-like trace.
type ServingConfig struct {
	// Jobs is the number of submissions to replay (default 10000).
	Jobs int
	// Seed seeds the synthetic workload (default 1).
	Seed uint64
	// Accel compresses trace time (default 100000: CTC's mean 369 s
	// interarrival becomes ~3.7 ms of wall time).
	Accel float64
	// Batching sets MaxBatch 64 with a 5 ms coalescing delay; off means
	// MaxBatch 1, one replan per submission.
	Batching bool
	// FaultP, if > 0, drives replans through the ILP pipeline with
	// injected solve faults at this probability (the degradation leg).
	FaultP float64
	// QueueBound overrides the submit queue bound (default: Jobs, so
	// the benchmark measures replan throughput, not 429 churn).
	QueueBound int
	// WAL, when true, routes every admission through a durable
	// write-ahead log in a temp directory (group-commit fsync, batch
	// bound WALFsyncEvery, default 64): the submit path then pays a real
	// disk flush before each 202, which is the durability overhead the
	// serving comparison quantifies.
	WAL           bool
	WALFsyncEvery int
	// Shards, when > 1, serves the replay through the sharded fabric
	// (internal/shard): the machine partitions into Shards sub-machines
	// with independent cores and replan loops behind one router, so the
	// planning work runs on as many OS threads as GOMAXPROCS allows.
	// WideLane sizes shard 0's sub-machine (0 = even partition); the CTC
	// width distribution needs 256 of 430 to keep every job servable.
	Shards   int
	WideLane int
}

// ServingBench runs one serving leg and returns the loadgen measurement
// plus the core's drain-time counters.
func ServingBench(cfg ServingConfig) (*loadgen.Result, *schedd.Counters, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 10000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Accel <= 0 {
		cfg.Accel = 100000
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = cfg.Jobs
	}
	tr, err := workload.Generate(workload.CTC(), cfg.Jobs, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}

	pols := []policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		return nil, nil, err
	}
	if cfg.Shards > 1 {
		return shardedServingBench(cfg, tr, pols, m)
	}
	sched, err := dynp.New(pols, m, dynp.AdvancedDecider{})
	if err != nil {
		return nil, nil, err
	}
	scfg := schedd.Config{
		Machine:    tr.Processors,
		Scheduler:  sched,
		Clock:      schedd.NewWallClock(cfg.Accel),
		QueueBound: cfg.QueueBound,
		MaxBatch:   1,
		Metrics:    obs.NewRegistry(),
	}
	if cfg.Batching {
		scfg.MaxBatch = 64
		scfg.MaxBatchDelay = 5 * time.Millisecond
	}
	var walLog *wal.Log
	if cfg.WAL {
		dir, err := os.MkdirTemp("", "benchwal-serving")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		fsyncEvery := cfg.WALFsyncEvery
		if fsyncEvery <= 0 {
			fsyncEvery = 64
		}
		walLog, scfg.Recovery, err = wal.Open(wal.Options{Dir: dir, FsyncEvery: fsyncEvery})
		if err != nil {
			return nil, nil, err
		}
		defer walLog.Close()
		scfg.WAL = walLog
	}
	if cfg.FaultP > 0 {
		inj := faultinject.New(faultinject.NewProbability(cfg.Seed, cfg.FaultP))
		scfg.ILP = &schedd.ILPConfig{
			Pipe: solvepipe.Config{
				Budget:  200 * time.Millisecond,
				Retries: 1,
				Hook:    inj.Hook,
			},
		}
	}
	core, err := schedd.New(scfg)
	if err != nil {
		return nil, nil, err
	}
	core.Start()
	srv := httptest.NewServer(schedd.NewHandler(core))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     srv.URL,
		Trace:       tr,
		Accel:       cfg.Accel,
		Sources:     8,
		WaitTimeout: 5 * time.Minute,
	})
	stopCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, stopErr := core.Stop(stopCtx)
	if err != nil {
		return nil, nil, err
	}
	if stopErr != nil {
		return nil, nil, fmt.Errorf("drain: %w", stopErr)
	}
	return res, &final.Counts, nil
}

// shardedServingBench is the Shards > 1 leg: the same replay served by
// the sharded fabric, each shard a full core with its own replan loop
// (and, with WAL, its own log namespace). Apart from the partitioning
// the per-core configuration matches the single-core leg, so the two
// results isolate the fabric's parallelism.
func shardedServingBench(cfg ServingConfig, tr *job.Trace, pols []policy.Policy, m metrics.Metric) (*loadgen.Result, *schedd.Counters, error) {
	var walRoot string
	if cfg.WAL {
		dir, err := os.MkdirTemp("", "benchwal-sharded")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		walRoot = dir
	}
	var walLogs []*wal.Log
	factory := func(idx, machine int) (schedd.Config, error) {
		sched, err := dynp.New(pols, m, dynp.AdvancedDecider{})
		if err != nil {
			return schedd.Config{}, err
		}
		scfg := schedd.Config{
			Scheduler:  sched,
			Clock:      schedd.NewWallClock(cfg.Accel),
			QueueBound: cfg.QueueBound,
			MaxBatch:   1,
			Metrics:    obs.NewRegistry(),
		}
		if cfg.Batching {
			scfg.MaxBatch = 64
			scfg.MaxBatchDelay = 5 * time.Millisecond
		}
		if cfg.FaultP > 0 {
			inj := faultinject.New(faultinject.NewProbability(cfg.Seed+uint64(idx), cfg.FaultP))
			scfg.ILP = &schedd.ILPConfig{
				Pipe: solvepipe.Config{
					Budget:  200 * time.Millisecond,
					Retries: 1,
					Hook:    inj.Hook,
				},
			}
		}
		if walRoot != "" {
			fsyncEvery := cfg.WALFsyncEvery
			if fsyncEvery <= 0 {
				fsyncEvery = 64
			}
			walLog, rec, err := wal.Open(wal.Options{
				Dir:        fmt.Sprintf("%s/shard-%d", walRoot, idx),
				FsyncEvery: fsyncEvery,
			})
			if err != nil {
				return schedd.Config{}, err
			}
			walLogs = append(walLogs, walLog)
			scfg.WAL, scfg.Recovery = walLog, rec
		}
		return scfg, nil
	}
	r, err := shard.New(shard.Config{
		Shards:   cfg.Shards,
		Machine:  tr.Processors,
		WideLane: cfg.WideLane,
		Factory:  factory,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		for _, l := range walLogs {
			l.Close()
		}
	}()
	r.Start()
	srv := httptest.NewServer(shard.NewHandler(r))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     srv.URL,
		Trace:       tr,
		Accel:       cfg.Accel,
		Sources:     8,
		WaitTimeout: 5 * time.Minute,
	})
	stopCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, stopErr := r.Stop(stopCtx)
	if err != nil {
		return nil, nil, err
	}
	if stopErr != nil {
		return nil, nil, fmt.Errorf("drain: %w", stopErr)
	}
	return res, &final.Counts, nil
}

package benchkit

import (
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"time"

	"repro/internal/dynp"
	"repro/internal/faultinject"
	"repro/internal/job"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/shard"
	"repro/internal/solvepipe"
	"repro/internal/wal"
	"repro/internal/workload"
)

// ServingConfig parameterizes one serving benchmark leg: a full
// in-process schedd service (core + HTTP API) driven by the loadgen
// open-loop replayer over a synthetic CTC-like trace.
type ServingConfig struct {
	// Jobs is the number of submissions to replay (default 10000).
	Jobs int
	// Seed seeds the synthetic workload (default 1).
	Seed uint64
	// Accel compresses trace time (default 100000: CTC's mean 369 s
	// interarrival becomes ~3.7 ms of wall time).
	Accel float64
	// Batching sets MaxBatch 64 with a 5 ms coalescing delay; off means
	// MaxBatch 1, one replan per submission.
	Batching bool
	// AdaptiveBatch sizes the coalescing delay from the observed arrival
	// rate (schedd.Config.AdaptiveBatch) with MaxBatch 128 and a 2 s
	// cap — the workload-adaptive mode the SLO legs run, where a few
	// large interval steps stand in for the paper's per-interval solves
	// and bound the denominator of the adoptions-per-replan-interval
	// measurement. The long coalescing cap trades admission-to-plan
	// latency for step sparsity; the twin's SLOMargin must absorb the
	// extra virtual-time slip (cap x Accel) it introduces.
	AdaptiveBatch bool
	// FaultP, if > 0, drives replans through the ILP pipeline with
	// injected solve faults at this probability (the degradation leg).
	FaultP float64
	// QueueBound overrides the submit queue bound (default: Jobs, so
	// the benchmark measures replan throughput, not 429 churn).
	QueueBound int
	// WAL, when true, routes every admission through a durable
	// write-ahead log in a temp directory (group-commit fsync, batch
	// bound WALFsyncEvery, default 64): the submit path then pays a real
	// disk flush before each 202, which is the durability overhead the
	// serving comparison quantifies.
	WAL           bool
	WALFsyncEvery int
	// Shards, when > 1, serves the replay through the sharded fabric
	// (internal/shard): the machine partitions into Shards sub-machines
	// with independent cores and replan loops behind one router, so the
	// planning work runs on as many OS threads as GOMAXPROCS allows.
	// WideLane sizes shard 0's sub-machine (0 = even partition); the CTC
	// width distribution needs 256 of 430 to keep every job servable.
	Shards   int
	WideLane int
	// DeadlineS, when > 0, attaches this start-SLO deadline (virtual
	// seconds) to every replayed submission, turning the leg into an
	// SLO-serving measurement: the twin's deadline rejections, latched
	// misses and anytime adoptions all land in the loadgen result.
	DeadlineS int64
	// SLOMargin is the twin's admission headroom (schedd.Config.SLOMargin).
	SLOMargin int64
	// TwinGateOff admits every deadline-bearing job regardless of its
	// predicted start (the pre-twin baseline leg): deadlines are still
	// recorded and misses still latch, nothing is rejected up front.
	TwinGateOff bool
	// Budget, when > 0, drives every step through the ILP solve
	// pipeline with this per-step budget (the interval-solve mode; no
	// injected faults, unlike FaultP).
	Budget time.Duration
	// Anytime runs the background optimizer alongside the interval
	// solver, each session bounded by AnytimeBudget. The equal-budget
	// comparison against a pure interval leg is Budget_baseline =
	// Budget_anytime + AnytimeBudget: the same solver allowance per
	// replan interval, spent in one burst or streamed continuously.
	Anytime       bool
	AnytimeBudget time.Duration
	// LoadFactor scales the CTC arrival intensity (interarrivals divide
	// by it; 0/1 = the paper's rate). The stock CTC mix runs the 430-way
	// machine near 0.86 utilization, where backlogs are transient;
	// SLO legs push it past saturation so a persistent waiting queue
	// exists for deadlines to bite on and the optimizer to reorder.
	LoadFactor float64
	// FCFSOnly restricts the dynP policy set to FCFS, which keeps
	// planned starts in admission order — the configuration under which
	// the twin's prediction is an upper bound the policy path never
	// violates (SLO legs use it so misses isolate optimizer behavior).
	FCFSOnly bool
}

// ServingBench runs one serving leg and returns the loadgen measurement
// plus the core's drain-time counters.
func ServingBench(cfg ServingConfig) (*loadgen.Result, *schedd.Counters, error) {
	if cfg.Jobs <= 0 {
		cfg.Jobs = 10000
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Accel <= 0 {
		cfg.Accel = 100000
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = cfg.Jobs
	}
	wcfg := workload.CTC()
	if cfg.LoadFactor > 0 {
		wcfg.MeanInterarrival /= cfg.LoadFactor
	}
	tr, err := workload.Generate(wcfg, cfg.Jobs, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}

	pols := []policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}
	if cfg.FCFSOnly {
		pols = []policy.Policy{policy.FCFS{}}
	}
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		return nil, nil, err
	}
	if cfg.Shards > 1 {
		return shardedServingBench(cfg, tr, pols, m)
	}
	sched, err := dynp.New(pols, m, dynp.AdvancedDecider{})
	if err != nil {
		return nil, nil, err
	}
	scfg := schedd.Config{
		Machine:     tr.Processors,
		Scheduler:   sched,
		Clock:       schedd.NewWallClock(cfg.Accel),
		QueueBound:  cfg.QueueBound,
		MaxBatch:    1,
		SLOMargin:   cfg.SLOMargin,
		TwinGateOff: cfg.TwinGateOff,
		Metrics:     obs.NewRegistry(),
	}
	if cfg.Batching {
		scfg.MaxBatch = 64
		scfg.MaxBatchDelay = 5 * time.Millisecond
	}
	if cfg.AdaptiveBatch {
		scfg.MaxBatch = 128
		scfg.MaxBatchDelay = 2 * time.Second
		scfg.AdaptiveBatch = true
	}
	if cfg.Budget > 0 || cfg.Anytime {
		scfg.ILP = &schedd.ILPConfig{
			Pipe:          solvepipe.Config{Budget: cfg.Budget},
			Anytime:       cfg.Anytime,
			AnytimeBudget: cfg.AnytimeBudget,
		}
	}
	var walLog *wal.Log
	if cfg.WAL {
		dir, err := os.MkdirTemp("", "benchwal-serving")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		fsyncEvery := cfg.WALFsyncEvery
		if fsyncEvery <= 0 {
			fsyncEvery = 64
		}
		walLog, scfg.Recovery, err = wal.Open(wal.Options{Dir: dir, FsyncEvery: fsyncEvery})
		if err != nil {
			return nil, nil, err
		}
		defer walLog.Close()
		scfg.WAL = walLog
	}
	if cfg.FaultP > 0 {
		inj := faultinject.New(faultinject.NewProbability(cfg.Seed, cfg.FaultP))
		scfg.ILP = &schedd.ILPConfig{
			Pipe: solvepipe.Config{
				Budget:  200 * time.Millisecond,
				Retries: 1,
				Hook:    inj.Hook,
			},
		}
	}
	core, err := schedd.New(scfg)
	if err != nil {
		return nil, nil, err
	}
	core.Start()
	srv := httptest.NewServer(schedd.NewHandler(core))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:      srv.URL,
		Trace:        tr,
		Accel:        cfg.Accel,
		Sources:      8,
		WaitTimeout:  5 * time.Minute,
		SLODeadlineS: cfg.DeadlineS,
	})
	stopCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, stopErr := core.Stop(stopCtx)
	if err != nil {
		return nil, nil, err
	}
	if stopErr != nil {
		return nil, nil, fmt.Errorf("drain: %w", stopErr)
	}
	return res, &final.Counts, nil
}

// shardedServingBench is the Shards > 1 leg: the same replay served by
// the sharded fabric, each shard a full core with its own replan loop
// (and, with WAL, its own log namespace). Apart from the partitioning
// the per-core configuration matches the single-core leg, so the two
// results isolate the fabric's parallelism.
func shardedServingBench(cfg ServingConfig, tr *job.Trace, pols []policy.Policy, m metrics.Metric) (*loadgen.Result, *schedd.Counters, error) {
	var walRoot string
	if cfg.WAL {
		dir, err := os.MkdirTemp("", "benchwal-sharded")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		walRoot = dir
	}
	var walLogs []*wal.Log
	factory := func(idx, machine int) (schedd.Config, error) {
		sched, err := dynp.New(pols, m, dynp.AdvancedDecider{})
		if err != nil {
			return schedd.Config{}, err
		}
		scfg := schedd.Config{
			Scheduler:   sched,
			Clock:       schedd.NewWallClock(cfg.Accel),
			QueueBound:  cfg.QueueBound,
			MaxBatch:    1,
			SLOMargin:   cfg.SLOMargin,
			TwinGateOff: cfg.TwinGateOff,
			Metrics:     obs.NewRegistry(),
		}
		if cfg.Budget > 0 || cfg.Anytime {
			scfg.ILP = &schedd.ILPConfig{
				Pipe:          solvepipe.Config{Budget: cfg.Budget},
				Anytime:       cfg.Anytime,
				AnytimeBudget: cfg.AnytimeBudget,
			}
		}
		if cfg.Batching {
			scfg.MaxBatch = 64
			scfg.MaxBatchDelay = 5 * time.Millisecond
		}
		if cfg.AdaptiveBatch {
			scfg.MaxBatch = 128
			scfg.MaxBatchDelay = 2 * time.Second
			scfg.AdaptiveBatch = true
		}
		if cfg.FaultP > 0 {
			inj := faultinject.New(faultinject.NewProbability(cfg.Seed+uint64(idx), cfg.FaultP))
			scfg.ILP = &schedd.ILPConfig{
				Pipe: solvepipe.Config{
					Budget:  200 * time.Millisecond,
					Retries: 1,
					Hook:    inj.Hook,
				},
			}
		}
		if walRoot != "" {
			fsyncEvery := cfg.WALFsyncEvery
			if fsyncEvery <= 0 {
				fsyncEvery = 64
			}
			walLog, rec, err := wal.Open(wal.Options{
				Dir:        fmt.Sprintf("%s/shard-%d", walRoot, idx),
				FsyncEvery: fsyncEvery,
			})
			if err != nil {
				return schedd.Config{}, err
			}
			walLogs = append(walLogs, walLog)
			scfg.WAL, scfg.Recovery = walLog, rec
		}
		return scfg, nil
	}
	r, err := shard.New(shard.Config{
		Shards:   cfg.Shards,
		Machine:  tr.Processors,
		WideLane: cfg.WideLane,
		Factory:  factory,
		Metrics:  obs.NewRegistry(),
	})
	if err != nil {
		return nil, nil, err
	}
	defer func() {
		for _, l := range walLogs {
			l.Close()
		}
	}()
	r.Start()
	srv := httptest.NewServer(shard.NewHandler(r))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:      srv.URL,
		Trace:        tr,
		Accel:        cfg.Accel,
		Sources:      8,
		WaitTimeout:  5 * time.Minute,
		SLODeadlineS: cfg.DeadlineS,
	})
	stopCtx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, stopErr := r.Stop(stopCtx)
	if err != nil {
		return nil, nil, err
	}
	if stopErr != nil {
		return nil, nil, fmt.Errorf("drain: %w", stopErr)
	}
	return res, &final.Counts, nil
}

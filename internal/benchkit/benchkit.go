// Package benchkit holds the solver benchmark bodies shared between the
// repo's `go test -bench` harness (bench_parallel_test.go) and the
// cmd/benchjson trajectory writer, so both measure exactly the same
// workloads. The fixtures mirror the paper's evaluation: the E3
// self-tuning step (25 waiting jobs on the 430-processor machine) and the
// E5 consecutive-step blow-up instance (near-tied widths and durations on
// a 16-processor machine, the degenerate plateau that makes branch and
// bound unpredictable).
package benchkit

import (
	"testing"

	"repro/internal/dynp"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/stats"
)

// StepFixture is the E3 self-tuning step workload: 25 waiting jobs, a
// 430-processor machine with a 200-wide reservation.
type StepFixture struct {
	Sched   *dynp.Scheduler
	Base    *machine.Profile
	Waiting []*job.Job
}

// NewStepFixture builds the E3 fixture (seed 11, matching
// BenchmarkSelfTuningStep25Jobs).
func NewStepFixture(parallel bool) *StepFixture {
	r := stats.NewRand(11)
	base := machine.New(430, 0)
	base.Reserve(0, 7200, 200)
	var waiting []*job.Job
	for k := 0; k < 25; k++ {
		est := int64(r.Intn(14400) + 60)
		waiting = append(waiting, &job.Job{ID: k + 1, Submit: int64(r.Intn(3600)),
			Width: r.Intn(64) + 1, Estimate: est, Runtime: est})
	}
	sched := dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.AdvancedDecider{})
	sched.SetParallel(parallel)
	return &StepFixture{Sched: sched, Base: base, Waiting: waiting}
}

// BenchSelfTuningStep returns the E3 benchmark body: one full self-tuning
// step (three policy schedules + decision) per iteration.
func BenchSelfTuningStep(parallel bool) func(b *testing.B) {
	return func(b *testing.B) {
		fx := NewStepFixture(parallel)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := fx.Sched.Step(3600, fx.Base, fx.Waiting); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BlowupModel builds the E5 blow-up instance with n jobs (seed 1234,
// matching BenchmarkConsecutiveStepBlowup) on the minute grid.
func BlowupModel(n int) (*ilpsched.Model, error) {
	r := stats.NewRand(1234)
	jobs := make([]*job.Job, n)
	for k := 0; k < n; k++ {
		// Near-tied widths/durations create the degenerate plateaus that
		// blow up branch and bound.
		est := int64(1800 + 60*r.Intn(4))
		jobs[k] = &job.Job{ID: k + 1, Submit: 0, Width: 5 + r.Intn(3),
			Estimate: est, Runtime: est}
	}
	base := machine.New(16, 0)
	var horizon int64
	for _, p := range policy.Standard() {
		s, err := policy.Build(p, 0, base, jobs)
		if err != nil {
			return nil, err
		}
		if mk := s.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	inst := &ilpsched.Instance{Now: 0, Machine: 16, Base: base, Jobs: jobs, Horizon: horizon}
	return ilpsched.Build(inst, 60)
}

// blowupOptions bounds one benchmark solve of the E5 instance: enough
// nodes to exercise the tree without letting a degenerate run dominate
// the measurement.
func blowupOptions(workers int) mip.Options {
	return mip.Options{MaxNodes: 2000, Workers: workers}
}

// BenchParallelBnB returns the branch-and-bound benchmark body: one
// bounded solve of the 7-job E5 blow-up instance per iteration with the
// given worker count. Rebuilding the model inside the loop is part of the
// measured path on purpose — it is what every dynpsim self-tuning step
// pays — and it also resets the bound state between solves.
func BenchParallelBnB(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := BlowupModel(7)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Solve(blowupOptions(workers)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchWarmStart returns the warm-start/allocation benchmark body: one
// serial bounded solve of the 6-job E5 instance per iteration. Its
// allocs/op tracks the sync.Pool scratch reuse in the simplex and the
// arena build in ilpsched; its WarmStartHits tracks the dual-simplex and
// primal-repair warm paths. dense selects the explicit-inverse basis
// instead of the default sparse LU, so the two representations can be
// benchmarked against each other.
func BenchWarmStart(dense bool) func(b *testing.B) {
	return func(b *testing.B) {
		opt := blowupOptions(1)
		opt.LP.DenseBasis = dense
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := BlowupModel(6)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := m.Solve(opt); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// WarmStartStatsResult carries the basis-telemetry aggregates of one
// instrumented warm-start solve for the machine-readable benchmark
// trajectory.
type WarmStartStatsResult struct {
	WarmStartHits    int
	LPSolves         int
	EtaUpdates       int
	FTUpdates        int
	LUFill           int
	RefactorTriggers int
}

// WarmStartStats runs one instrumented solve of the 6-job E5 instance in
// the selected basis mode and returns its warm-start and basis-update
// telemetry.
func WarmStartStats(dense bool) (WarmStartStatsResult, error) {
	m, err := BlowupModel(6)
	if err != nil {
		return WarmStartStatsResult{}, err
	}
	opt := blowupOptions(1)
	opt.LP.DenseBasis = dense
	sol, err := m.Solve(opt)
	if err != nil {
		return WarmStartStatsResult{}, err
	}
	return WarmStartStatsResult{
		WarmStartHits:    sol.MIP.WarmStartHits,
		LPSolves:         sol.MIP.LPSolves,
		EtaUpdates:       sol.MIP.EtaUpdates,
		FTUpdates:        sol.MIP.FTUpdates,
		LUFill:           sol.MIP.LUFill,
		RefactorTriggers: sol.MIP.RefactorTriggers,
	}, nil
}

// Presolve and cross-step-reuse benchmark bodies: sampled E1-style CTC
// self-tuning steps solved with and without the ilpsched presolve pass,
// plus an end-to-end ILP-driven simulation with and without cross-step
// reuse (step cache + previous-schedule incumbent). Shared between
// bench_presolve_test.go and cmd/benchjson like the rest of the kit.
package benchkit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/solvepipe"
	"repro/internal/workload"
)

// StepInstance is one sampled CTC self-tuning step: the quasi off-line
// instance plus the basic-policy schedules of the step (presolve
// upper-bound seeds).
type StepInstance struct {
	Inst  *ilpsched.Instance
	Seeds []*schedule.Schedule
}

// stepSampleScale is the Eq. 6 grid the sampled steps are solved on,
// matching the E1 determinism test.
const stepSampleScale = 120

var (
	sampleOnce  sync.Once
	sampleSteps []*StepInstance
	sampleErr   error
)

// SampledCTCSteps simulates the E1-style CTC workload (120 jobs, seed 7)
// and samples up to max eligible self-tuning steps — 4 to 12 waiting
// jobs, every other eligible step, the same sampling the determinism
// test uses. The result is memoized: every benchmark body measures the
// identical instances.
func SampledCTCSteps(max int) ([]*StepInstance, error) {
	sampleOnce.Do(func() {
		tr, err := workload.Generate(workload.CTC(), 120, 7)
		if err != nil {
			sampleErr = err
			return
		}
		eligible := 0
		cfg := sim.DefaultConfig()
		cfg.OnStep = func(sc *sim.StepContext) {
			n := len(sc.Waiting)
			if n < 4 || n > 12 || len(sc.Result.Evals) == 0 || len(sampleSteps) >= max {
				return
			}
			eligible++
			if (eligible-1)%2 != 0 {
				return
			}
			var horizon int64
			var seeds []*schedule.Schedule
			for _, e := range sc.Result.Evals {
				seeds = append(seeds, e.Schedule)
				if mk := e.Schedule.Makespan(); mk > horizon {
					horizon = mk
				}
			}
			if horizon <= sc.Now {
				return
			}
			sampleSteps = append(sampleSteps, &StepInstance{
				Inst: &ilpsched.Instance{
					Now: sc.Now, Machine: sc.Base.Total(), Base: sc.Base,
					Jobs: sc.Waiting, Horizon: horizon,
				},
				Seeds: seeds,
			})
		}
		sched := dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.AdvancedDecider{})
		s, err := sim.New(tr, sched, cfg)
		if err != nil {
			sampleErr = err
			return
		}
		if _, err := s.Run(); err != nil {
			sampleErr = err
			return
		}
		if len(sampleSteps) == 0 {
			sampleErr = fmt.Errorf("benchkit: CTC sampling produced no steps")
		}
	})
	if sampleErr != nil {
		return nil, sampleErr
	}
	if len(sampleSteps) > max {
		return sampleSteps[:max], nil
	}
	return sampleSteps, nil
}

// PresolveReduction aggregates the presolve stats over the sampled steps.
type PresolveReduction struct {
	Steps                       int `json:"steps"`
	VarsBefore, VarsAfter       int `json:"-"`
	EntriesBefore, EntriesAfter int `json:"-"`
	RowsBefore, RowsAfter       int `json:"-"`
}

// VarsRemovedPct returns the percentage of x_it columns presolve removed.
func (r *PresolveReduction) VarsRemovedPct() float64 {
	if r.VarsBefore == 0 {
		return 0
	}
	return 100 * float64(r.VarsBefore-r.VarsAfter) / float64(r.VarsBefore)
}

// EntriesRemovedPct returns the percentage of matrix entries removed.
func (r *PresolveReduction) EntriesRemovedPct() float64 {
	if r.EntriesBefore == 0 {
		return 0
	}
	return 100 * float64(r.EntriesBefore-r.EntriesAfter) / float64(r.EntriesBefore)
}

// PresolveReductionStats runs the presolve analysis on the sampled CTC
// steps and returns the aggregate before/after model sizes — the
// machine-readable reduction row of the benchmark trajectory.
func PresolveReductionStats() (*PresolveReduction, error) {
	steps, err := SampledCTCSteps(4)
	if err != nil {
		return nil, err
	}
	out := &PresolveReduction{Steps: len(steps)}
	for _, st := range steps {
		_, ps, err := ilpsched.BuildPresolved(st.Inst, stepSampleScale,
			ilpsched.PresolveOptions{Seeds: st.Seeds})
		if err != nil {
			return nil, err
		}
		out.VarsBefore += ps.VarsBefore
		out.VarsAfter += ps.VarsAfter
		out.EntriesBefore += ps.EntriesBefore
		out.EntriesAfter += ps.EntriesAfter
		out.RowsBefore += ps.RowsBefore
		out.RowsAfter += ps.RowsAfter
	}
	return out, nil
}

// BenchPresolveStepSolve returns the benchmark body for one full pass
// over the sampled CTC steps: build (reduced or unreduced) and solve to
// optimality. The presolve analysis is inside the measured path on
// purpose — its cost must be paid back by the smaller search.
func BenchPresolveStepSolve(presolve bool) func(b *testing.B) {
	return func(b *testing.B) {
		steps, err := SampledCTCSteps(4)
		if err != nil {
			b.Fatal(err)
		}
		opt := mip.Options{MaxNodes: 100000}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, st := range steps {
				var m *ilpsched.Model
				var err error
				if presolve {
					m, _, err = ilpsched.BuildPresolved(st.Inst, stepSampleScale,
						ilpsched.PresolveOptions{Seeds: st.Seeds})
				} else {
					m, err = ilpsched.Build(st.Inst, stepSampleScale)
				}
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Solve(opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// RecurringTrace builds the steady-state production-queue workload of
// the cross-step-reuse benchmark: every 2-hour period a whole-machine
// "backbone" job arrives on an idle 64-processor machine, followed by
// six class jobs (two recurring shape classes) at fixed offsets that all
// queue behind it and drain before the next period. Runtimes equal
// estimates, so every period after the first repeats the exact relative
// step instances of the first — the recurring-submission pattern the
// cross-step solution cache targets. (Synthetic-but-adversarial fixture
// in the spirit of the E5 blow-up instance.)
func RecurringTrace(periods int) *job.Trace {
	const (
		machine = 64
		period  = 7200
	)
	var jobs []*job.Job
	id := 0
	add := func(submit int64, width int, est int64) {
		id++
		jobs = append(jobs, &job.Job{
			ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est,
		})
	}
	for p := 0; p < periods; p++ {
		t0 := int64(p) * period
		add(t0, machine, 3600) // backbone: blocks the whole machine
		for k := int64(0); k < 3; k++ {
			add(t0+60+60*k, 16, 1800) // class A
		}
		for k := int64(0); k < 3; k++ {
			add(t0+240+60*k, 8, 1500) // class B
		}
	}
	return &job.Trace{Jobs: jobs, Processors: machine,
		Note: "benchkit recurring-submission fixture"}
}

// reuseSimResult runs one ILP-driven simulation of the recurring trace
// and reports the reuse statistics, for both the benchmark body and the
// trajectory row.
func reuseSimResult(reuse bool) (*sim.Result, error) {
	tr := RecurringTrace(10)
	ilp := &sim.ILPConfig{
		Pipe: solvepipe.Config{
			Budget:     2 * time.Second,
			Retries:    1,
			FixedScale: stepSampleScale,
			Limit:      ilpsched.SizeLimit{MaxVariables: 250000},
			MIP:        mip.Options{MaxNodes: 3000},
		},
		Fallback:     true,
		StepCacheOff: !reuse,
		ReuseOff:     !reuse,
	}
	cfg := sim.DefaultConfig()
	cfg.ILP = ilp
	sched := dynp.MustNew(policy.Standard(), metrics.SLDwA{}, dynp.AdvancedDecider{})
	s, err := sim.New(tr, sched, cfg)
	if err != nil {
		return nil, err
	}
	return s.Run()
}

// BenchSimCrossStepReuse returns the end-to-end benchmark body: one
// complete ILP-driven CTC simulation per iteration, with cross-step
// reuse (solution cache + previous-schedule incumbent) on or off.
func BenchSimCrossStepReuse(reuse bool) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := reuseSimResult(reuse)
			if err != nil {
				b.Fatal(err)
			}
			if res.ILPSteps == 0 {
				b.Fatal("no ILP steps ran")
			}
		}
	}
}

// CrossStepReuseStats runs one instrumented ILP-driven simulation with
// reuse on and returns the hit/reuse counts for the trajectory.
func CrossStepReuseStats() (ilpSteps, cacheHits, incumbentReuses, fallbacks int, err error) {
	res, err := reuseSimResult(true)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	return res.ILPSteps, res.ILPCacheHits, res.ILPReusedIncumbents, res.ILPFallbacks, nil
}

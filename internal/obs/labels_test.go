package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestCounterVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req.total", "source", "outcome")
	v.With("cli", "ok").Add(3)
	v.With("cli", "rejected").Inc()
	v.With("cli", "ok").Inc() // same tuple → same child
	if got := v.With("cli", "ok").Value(); got != 4 {
		t.Errorf("cli/ok = %d, want 4", got)
	}
	if r.CounterVec("req.total", "ignored") != v {
		t.Error("CounterVec not idempotent per name")
	}

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Series sorted by label values: (cli,ok) < (cli,rejected).
	if snap[0].Labels[1].Value != "ok" || snap[0].Value != 4 {
		t.Errorf("snap[0] = %+v", snap[0])
	}
	if snap[1].Labels[1].Value != "rejected" || snap[1].Value != 1 {
		t.Errorf("snap[1] = %+v", snap[1])
	}
	for _, m := range snap {
		if m.Name != "req.total" || m.Kind != "counter" || m.Labels[0] != (Label{"source", "cli"}) {
			t.Errorf("series = %+v", m)
		}
	}
	if out := r.String(); !strings.Contains(out, "req.total{source=cli,outcome=ok}") {
		t.Errorf("String() = %q", out)
	}
}

func TestHistogramVecBasics(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("lat.ms", []float64{10, 100}, "kind")
	v.With("batch").Observe(5)
	v.With("batch").Observe(50)
	v.With("drain").Observe(500)
	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Labels[0].Value != "batch" || snap[0].Value != 2 || snap[0].Sum != 55 {
		t.Errorf("batch series = %+v", snap[0])
	}
	if snap[1].Labels[0].Value != "drain" || snap[1].Value != 1 {
		t.Errorf("drain series = %+v", snap[1])
	}
	if len(snap[0].Buckets) != 3 {
		t.Errorf("buckets = %+v", snap[0].Buckets)
	}
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Error("wrong label arity must panic")
		}
	}()
	v.With("only-one")
}

// Past MaxSeries distinct tuples, every new tuple lands in the shared
// all-"other" overflow series — the registry stays bounded no matter how
// hostile the label values are.
func TestVecCardinalityBound(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("c", "source")
	for i := 0; i < MaxSeries+50; i++ {
		v.With(fmt.Sprintf("src-%03d", i)).Inc()
	}
	snap := r.Snapshot()
	if len(snap) != MaxSeries+1 {
		t.Fatalf("got %d series, want %d (MaxSeries + overflow)", len(snap), MaxSeries+1)
	}
	var overflow *Metric
	for i := range snap {
		if snap[i].Labels[0].Value == overflowValue {
			overflow = &snap[i]
		}
	}
	if overflow == nil {
		t.Fatal("no overflow series")
	}
	if overflow.Value != 50 {
		t.Errorf("overflow count = %d, want 50", overflow.Value)
	}
	// Existing tuples still resolve to their own series.
	if got := v.With("src-000").Value(); got != 1 {
		t.Errorf("src-000 = %d, want 1", got)
	}
	// The overflow child is reused, never re-inserted.
	before := len(r.Snapshot())
	v.With("yet-another").Inc()
	if after := len(r.Snapshot()); after != before {
		t.Errorf("overflow insert grew the family: %d -> %d", before, after)
	}
}

func TestVecConcurrency(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "g")
	hv := r.HistogramVec("h", []float64{10}, "g")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("g%d", g%4) // contend on shared tuples
			for i := 0; i < 1000; i++ {
				cv.With(name).Inc()
				hv.With(name).Observe(float64(i % 20))
				if i%100 == 0 {
					r.Snapshot() // snapshots race against writes
				}
			}
		}(g)
	}
	wg.Wait()
	total := int64(0)
	for _, m := range r.Snapshot() {
		if m.Name == "c" {
			total += m.Value
		}
	}
	if total != 8000 {
		t.Errorf("counter total = %d, want 8000", total)
	}
}

func TestVecNilSafety(t *testing.T) {
	var r *Registry
	cv := r.CounterVec("x", "k")
	if cv != nil {
		t.Error("nil registry CounterVec != nil")
	}
	c := cv.With("v")
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil vec child counted")
	}
	hv := r.HistogramVec("y", []float64{1}, "k")
	h := hv.With("v")
	h.Observe(1)
	if h.Count() != 0 {
		t.Error("nil vec child observed")
	}
}

// The steady-state path — With on an existing tuple plus the child
// update — must not allocate; families are safe to use per-event.
func TestVecSteadyStateAllocations(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("c", "outcome")
	cv.With("ok").Inc() // create outside the measured loop
	if n := testing.AllocsPerRun(1000, func() {
		cv.With("ok").Inc()
	}); n != 0 {
		t.Errorf("steady-state With+Inc allocates %v per op, want 0", n)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 40, 80})
	// 100 samples uniform over (0,100]: ~10 per decile.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	cases := []struct {
		q, want, tol float64
	}{
		{0.5, 50, 10},   // interpolated within the (40,80] bucket
		{0.1, 10, 5},    // first bucket
		{0.9, 80, 10},   // (40,80] bucket upper region
		{0.99, 80, 0.1}, // overflow → last finite bound
		{1.0, 80, 0.1},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got < c.want-c.tol || got > c.want+c.tol {
			t.Errorf("Quantile(%g) = %g, want %g ± %g", c.q, got, c.want, c.tol)
		}
	}
	// Clamping and edge cases.
	if got := h.Quantile(-1); got < 0 || got > 10 {
		t.Errorf("Quantile(-1) = %g, want within first bucket", got)
	}
	if got := h.Quantile(2); got != 80 {
		t.Errorf("Quantile(2) = %g, want 80", got)
	}
	if (*Histogram)(nil).Quantile(0.5) != 0 {
		t.Error("nil histogram Quantile != 0")
	}
	if NewHistogram([]float64{1}).Quantile(0.5) != 0 {
		t.Error("empty histogram Quantile != 0")
	}
}

// With fine buckets the estimator should land close to exact ranks —
// this is the contract loadgen's percentile reporting now relies on.
func TestHistogramQuantileAccuracy(t *testing.T) {
	bounds := make([]float64, 200)
	for i := range bounds {
		bounds[i] = float64(i+1) * 5 // 5,10,...,1000
	}
	h := NewHistogram(bounds)
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		want := q * 1000
		if got := h.Quantile(q); got < want-6 || got > want+6 {
			t.Errorf("Quantile(%g) = %g, want %g ± 6", q, got, want)
		}
	}
}

package obs

import "runtime"

// RuntimeMetrics returns a point-in-time snapshot of Go runtime health
// as gauge Metrics (value in Sum; Value is the rounded integer). The
// daemon appends these to its registry snapshot at exposition time, so
// they ride the same JSON/Prometheus encoders as application metrics
// without ever living in a Registry.
func RuntimeMetrics() []Metric {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge := func(name string, v float64) Metric {
		return Metric{Name: name, Kind: "gauge", Value: int64(v), Sum: v}
	}
	return []Metric{
		gauge("go.goroutines", float64(runtime.NumGoroutine())),
		gauge("go.heap.alloc.bytes", float64(ms.HeapAlloc)),
		gauge("go.heap.objects", float64(ms.HeapObjects)),
		gauge("go.heap.sys.bytes", float64(ms.HeapSys)),
		gauge("go.gc.cycles", float64(ms.NumGC)),
		gauge("go.gc.pause.total.ms", float64(ms.PauseTotalNs)/1e6),
		gauge("go.alloc.total.bytes", float64(ms.TotalAlloc)),
	}
}

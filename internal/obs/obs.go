// Package obs is the observability layer of the reproduction: a
// dependency-free structured JSONL event emitter with nestable spans
// (Tracer), plus atomic counters and fixed-bucket histograms behind a
// Registry. Everything is nil-safe: a nil *Tracer, *Registry, *Counter,
// *Histogram or *Span is a valid no-op receiver, so instrumented hot
// paths cost a single pointer comparison when observability is disabled.
//
// Trace format: one JSON object per line. Reserved keys are
//
//	t      seconds since the tracer was created (float)
//	seq    monotone event sequence number
//	ev     event type, e.g. "mip.incumbent" or "sim.replan"
//	span   span id (events emitted inside a span, and span begin/end)
//	parent enclosing span id (span begin events only)
//	phase  "begin" or "end" (span boundary events only)
//	dur_ms span wall-clock duration (span end events only)
//
// all other keys are caller-supplied fields. Field values are typed
// (Int/Float/Str/Bool constructors) so that emitting does not box values
// into interfaces.
package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
	"time"
)

// Field is one typed key/value pair of an event.
type Field struct {
	Key  string
	kind fieldKind
	i    int64
	f    float64
	s    string
}

type fieldKind uint8

const (
	kindInt fieldKind = iota
	kindFloat
	kindStr
	kindBool
)

// Int returns an integer-valued field.
func Int(key string, v int64) Field { return Field{Key: key, kind: kindInt, i: v} }

// Float returns a float-valued field.
func Float(key string, v float64) Field { return Field{Key: key, kind: kindFloat, f: v} }

// Str returns a string-valued field.
func Str(key, v string) Field { return Field{Key: key, kind: kindStr, s: v} }

// Bool returns a boolean-valued field.
func Bool(key string, v bool) Field {
	var i int64
	if v {
		i = 1
	}
	return Field{Key: key, kind: kindBool, i: i}
}

// Tracer emits structured JSONL events. A nil Tracer is a no-op.
type Tracer struct {
	mu       sync.Mutex
	w        io.Writer
	buf      []byte
	start    time.Time
	now      func() time.Time
	seq      int64
	nextSpan int64
	stack    []int64 // open span ids; top is the current parent
	err      error
}

// NewTracer creates a tracer writing JSONL events to w. The caller owns
// w (wrap files in a bufio.Writer and flush at exit for throughput).
func NewTracer(w io.Writer) *Tracer {
	return &Tracer{w: w, start: time.Now(), now: time.Now}
}

// SetClock overrides the tracer's time source (tests).
func (t *Tracer) SetClock(start time.Time, now func() time.Time) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.start, t.now = start, now
	t.mu.Unlock()
}

// Enabled reports whether events are actually recorded. Instrumented
// code may use it to skip expensive field preparation.
func (t *Tracer) Enabled() bool { return t != nil }

// Err returns the first write error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Emit writes one point event with the given fields. Inside an open
// span the event carries the span id.
func (t *Tracer) Emit(event string, fields ...Field) {
	if t == nil {
		return
	}
	t.mu.Lock()
	span := int64(-1)
	if n := len(t.stack); n > 0 {
		span = t.stack[n-1]
	}
	t.write(event, span, -1, "", 0, fields)
	t.mu.Unlock()
}

// Span is an open trace span. A nil Span is a no-op.
type Span struct {
	t     *Tracer
	id    int64
	name  string
	start time.Time
	trace string // request trace ID (spans opened via StartSpanCtx)
}

// StartSpan emits a begin event and opens a nested span: events emitted
// until the matching End carry this span's id.
func (t *Tracer) StartSpan(name string, fields ...Field) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	parent := int64(-1)
	if n := len(t.stack); n > 0 {
		parent = t.stack[n-1]
	}
	t.nextSpan++
	id := t.nextSpan
	t.stack = append(t.stack, id)
	now := t.now()
	t.write(name, id, parent, "begin", 0, fields)
	t.mu.Unlock()
	return &Span{t: t, id: id, name: name, start: now}
}

// End closes the span, emitting an end event with its duration and any
// extra fields. Out-of-order ends are tolerated (the span is removed
// from wherever it sits on the stack).
func (sp *Span) End(fields ...Field) {
	if sp == nil || sp.t == nil {
		return
	}
	t := sp.t
	if sp.trace != "" {
		fields = append(fields, Str("trace", sp.trace))
	}
	t.mu.Lock()
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == sp.id {
			t.stack = append(t.stack[:i], t.stack[i+1:]...)
			break
		}
	}
	dur := t.now().Sub(sp.start)
	t.write(sp.name, sp.id, -1, "end", dur, fields)
	t.mu.Unlock()
	sp.t = nil // double End is a no-op
}

// write appends one encoded line; the caller holds t.mu.
func (t *Tracer) write(event string, span, parent int64, phase string, dur time.Duration, fields []Field) {
	if t.err != nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"t":`...)
	b = strconv.AppendFloat(b, t.now().Sub(t.start).Seconds(), 'f', 6, 64)
	b = append(b, `,"seq":`...)
	b = strconv.AppendInt(b, t.seq, 10)
	t.seq++
	b = append(b, `,"ev":`...)
	b = appendJSONString(b, event)
	if span >= 0 {
		b = append(b, `,"span":`...)
		b = strconv.AppendInt(b, span, 10)
	}
	if parent >= 0 {
		b = append(b, `,"parent":`...)
		b = strconv.AppendInt(b, parent, 10)
	}
	if phase != "" {
		b = append(b, `,"phase":`...)
		b = appendJSONString(b, phase)
		if phase == "end" {
			b = append(b, `,"dur_ms":`...)
			b = strconv.AppendFloat(b, float64(dur)/float64(time.Millisecond), 'f', 3, 64)
		}
	}
	for _, f := range fields {
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case kindInt:
			b = strconv.AppendInt(b, f.i, 10)
		case kindFloat:
			b = appendJSONFloat(b, f.f)
		case kindStr:
			b = appendJSONString(b, f.s)
		case kindBool:
			if f.i != 0 {
				b = append(b, "true"...)
			} else {
				b = append(b, "false"...)
			}
		}
	}
	b = append(b, '}', '\n')
	t.buf = b
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// appendJSONFloat encodes f as a JSON number (NaN/Inf become null, which
// plain JSON cannot represent).
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(b, "null"...)
	}
	return strconv.AppendFloat(b, f, 'g', -1, 64)
}

const hexDigits = "0123456789abcdef"

// appendJSONString encodes s as a quoted JSON string.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c >= 0x20:
			b = append(b, c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
	}
	return append(b, '"')
}

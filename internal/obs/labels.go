package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Labeled metric families. A family is one metric name plus a fixed set
// of label keys; each distinct label-value tuple is one child instrument
// (a series). Cardinality is bounded: once a family holds MaxSeries
// distinct tuples, further tuples share a single overflow series whose
// every label value is "other", so a high-cardinality label (a
// user-supplied source string, say) can never grow the registry without
// bound. Children are plain *Counter/*Histogram values — call With once
// at wire-up time and keep the child when the tuple is static; the
// serving hot path then pays exactly the unlabeled price.
//
// Everything is nil-safe like the rest of the package: a nil vec hands
// out nil children, which are no-ops.

// MaxSeries bounds the distinct label tuples of one family.
const MaxSeries = 64

// overflowValue replaces every label value of tuples beyond MaxSeries.
const overflowValue = "other"

// Label is one key/value pair of a labeled series.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// sep joins label values into map keys; it cannot appear in sane label
// values (it is not valid UTF-8 as a standalone byte).
const sep = "\xff"

func joinValues(values []string) string { return strings.Join(values, sep) }

// CounterVec is a family of counters sharing a name and label keys.
type CounterVec struct {
	name string
	keys []string

	mu    sync.RWMutex
	kids  map[string]*Counter
	order []string // insertion-ordered tuple keys
}

// With returns the child counter for the given label values (one per
// key, in key order), creating it on first use. Past the cardinality
// bound every new tuple maps to the shared overflow series. A nil vec
// returns a nil (no-op) counter.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", v.name, len(v.keys), len(values)))
	}
	key := joinValues(values)
	v.mu.RLock()
	c := v.kids[key]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.kids[key]; c != nil {
		return c
	}
	if len(v.kids) >= MaxSeries {
		key = v.overflowKey()
		if c := v.kids[key]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.kids[key] = c
	v.order = append(v.order, key)
	return c
}

func (v *CounterVec) overflowKey() string {
	vals := make([]string, len(v.keys))
	for i := range vals {
		vals[i] = overflowValue
	}
	return joinValues(vals)
}

// HistogramVec is a family of histograms sharing a name, bucket bounds
// and label keys.
type HistogramVec struct {
	name   string
	keys   []string
	bounds []float64

	mu    sync.RWMutex
	kids  map[string]*Histogram
	order []string
}

// With returns the child histogram for the given label values, creating
// it on first use; see CounterVec.With for the cardinality bound. A nil
// vec returns a nil (no-op) histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	if len(values) != len(v.keys) {
		panic(fmt.Sprintf("obs: %s takes %d label values, got %d", v.name, len(v.keys), len(values)))
	}
	key := joinValues(values)
	v.mu.RLock()
	h := v.kids[key]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.kids[key]; h != nil {
		return h
	}
	if len(v.kids) >= MaxSeries {
		vals := make([]string, len(v.keys))
		for i := range vals {
			vals[i] = overflowValue
		}
		key = joinValues(vals)
		if h := v.kids[key]; h != nil {
			return h
		}
	}
	h = newHistogram(v.bounds)
	v.kids[key] = h
	v.order = append(v.order, key)
	return h
}

// CounterVec returns the counter family with the given name and label
// keys, creating it on first use (later keys are ignored, like
// Histogram bounds). Returns nil (a no-op family) on a nil registry.
func (r *Registry) CounterVec(name string, keys ...string) *CounterVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.cvs[name]
	if !ok {
		v = &CounterVec{name: name, keys: append([]string(nil), keys...), kids: map[string]*Counter{}}
		r.cvs[name] = v
		r.order = append(r.order, name)
	}
	return v
}

// HistogramVec returns the histogram family with the given name, bucket
// bounds and label keys, creating it on first use. Returns nil on a nil
// registry.
func (r *Registry) HistogramVec(name string, bounds []float64, keys ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.hvs[name]
	if !ok {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		v = &HistogramVec{name: name, keys: append([]string(nil), keys...), bounds: bs, kids: map[string]*Histogram{}}
		r.hvs[name] = v
		r.order = append(r.order, name)
	}
	return v
}

// labels reassembles the Label slice of a tuple key.
func labelsOf(keys []string, tupleKey string) []Label {
	vals := strings.Split(tupleKey, sep)
	out := make([]Label, len(keys))
	for i, k := range keys {
		v := ""
		if i < len(vals) {
			v = vals[i]
		}
		out[i] = Label{Key: k, Value: v}
	}
	return out
}

// sortedTuples returns the family's tuple keys sorted lexicographically,
// so snapshots (and therefore expositions) are deterministic regardless
// of which series was touched first.
func sortedTuples(order []string) []string {
	out := append([]string(nil), order...)
	sort.Strings(out)
	return out
}

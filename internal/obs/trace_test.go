package obs

import (
	"bytes"
	"context"
	"regexp"
	"sync"
	"testing"
)

func TestNewTraceID(t *testing.T) {
	hex16 := regexp.MustCompile(`^[0-9a-f]{16}$`)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if !hex16.MatchString(id) {
			t.Fatalf("trace ID %q not 16 lowercase hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

func TestTraceIDContext(t *testing.T) {
	if got := TraceIDFrom(context.Background()); got != "" {
		t.Errorf("empty context trace ID = %q", got)
	}
	if got := TraceIDFrom(nil); got != "" { //nolint:staticcheck // nil-safety is the contract
		t.Errorf("nil context trace ID = %q", got)
	}
	ctx := WithTraceID(context.Background(), "abc123")
	if got := TraceIDFrom(ctx); got != "abc123" {
		t.Errorf("trace ID = %q, want abc123", got)
	}
}

func TestStartSpanCtxParentageAndTrace(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	ctx := WithTraceID(context.Background(), "t1")

	ctx1, root := tr.StartSpanCtx(ctx, "req")
	ctx2, child := tr.StartSpanCtx(ctx1, "phase")
	tr.EmitCtx(ctx2, "point", Int("k", 1))
	child.End()
	root.End(Str("status", "ok"))

	events := decodeLines(t, &buf)
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	// Root begin: no parent, trace stamped.
	if events[0]["ev"] != "req" || events[0]["phase"] != "begin" || events[0]["trace"] != "t1" {
		t.Errorf("root begin = %v", events[0])
	}
	if _, hasParent := events[0]["parent"]; hasParent {
		t.Errorf("root span must have no parent: %v", events[0])
	}
	rootID := events[0]["span"]
	// Child begin: parent is the root span, trace stamped.
	if events[1]["parent"] != rootID || events[1]["trace"] != "t1" {
		t.Errorf("child begin = %v", events[1])
	}
	childID := events[1]["span"]
	// EmitCtx point: attributed to the child span, trace stamped.
	if events[2]["span"] != childID || events[2]["trace"] != "t1" {
		t.Errorf("point = %v", events[2])
	}
	// Ends carry trace and duration.
	for _, e := range events[3:] {
		if e["phase"] != "end" || e["trace"] != "t1" {
			t.Errorf("end event = %v", e)
		}
		if _, ok := e["dur_ms"]; !ok {
			t.Errorf("end missing dur_ms: %v", e)
		}
	}
	if root.Trace() != "t1" {
		t.Errorf("Span.Trace() = %q", root.Trace())
	}
}

// Ctx spans must not touch the tracer's span stack: a concurrent stack
// span keeps its own parentage, and EmitCtx on a bare context attaches
// to the root, not to whatever stack span happens to be open.
func TestCtxSpansIndependentOfStack(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)

	stack := tr.StartSpan("loop.step")
	_, req := tr.StartSpanCtx(WithTraceID(context.Background(), "t2"), "req")
	tr.Emit("stack.point")                          // should attach to loop.step
	tr.EmitCtx(context.Background(), "naked.point") // no ctx span: root, no trace
	req.End()
	stack.End()

	events := decodeLines(t, &buf)
	stackID := events[0]["span"]
	if events[1]["ev"] != "req" {
		t.Fatalf("events[1] = %v", events[1])
	}
	if _, hasParent := events[1]["parent"]; hasParent {
		t.Errorf("ctx span must not parent under the stack span: %v", events[1])
	}
	if events[2]["span"] != stackID {
		t.Errorf("stack emit not attributed to stack span: %v", events[2])
	}
	if _, hasSpan := events[3]["span"]; hasSpan {
		t.Errorf("EmitCtx without ctx span must attach to root: %v", events[3])
	}
	if _, hasTrace := events[3]["trace"]; hasTrace {
		t.Errorf("EmitCtx without trace ID must not stamp trace: %v", events[3])
	}
}

func TestStartSpanCtxConcurrency(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := WithTraceID(context.Background(), NewTraceID())
			for i := 0; i < 50; i++ {
				c, sp := tr.StartSpanCtx(ctx, "req")
				tr.EmitCtx(c, "work", Int("g", int64(g)))
				sp.End()
			}
		}(g)
	}
	wg.Wait()
	events := decodeLines(t, &buf)
	if len(events) != 8*50*3 {
		t.Fatalf("got %d events, want %d", len(events), 8*50*3)
	}
	// Every event of a span must carry that span's trace ID consistently.
	spanTrace := map[float64]string{}
	for _, e := range events {
		id := e["span"].(float64)
		trace := e["trace"].(string)
		if prev, ok := spanTrace[id]; ok && prev != trace {
			t.Fatalf("span %v carries two trace IDs: %q and %q", id, prev, trace)
		}
		spanTrace[id] = trace
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestCtxNilSafety(t *testing.T) {
	var tr *Tracer
	ctx := context.Background()
	c, sp := tr.StartSpanCtx(ctx, "x")
	if c != ctx || sp != nil {
		t.Error("nil tracer StartSpanCtx must return ctx unchanged and nil span")
	}
	tr.EmitCtx(ctx, "ev")
	if (*Span)(nil).ID() != 0 {
		t.Error("nil span ID != 0")
	}
	if (*Span)(nil).Trace() != "" {
		t.Error("nil span Trace != \"\"")
	}
}

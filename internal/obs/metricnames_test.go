package obs_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Metric names are dot-separated snake_case segments: "schedd.submits",
// "schedd.replan.duration.ms", "go.heap.alloc.bytes". The Prometheus
// encoder maps dots to underscores, so anything matching this rule also
// yields a valid exposition name.
var metricNameRule = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// registryMethods are the Registry/instrument constructors whose first
// string-literal argument is a metric name.
var registryMethods = map[string]bool{
	"Counter": true, "Histogram": true, "CounterVec": true, "HistogramVec": true,
	"Gauge": true,
}

// registeredName is one metric-name string literal found by the AST scan,
// with its location for error reporting.
type registeredName struct {
	name string
	at   string
}

// collectRegisteredMetricNames walks every non-test Go file in the repo
// and returns the first string-literal argument of each Registry
// constructor call.
func collectRegisteredMetricNames(t *testing.T) []registeredName {
	t.Helper()
	root := repoRoot(t)
	var found []registeredName
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			rel, _ := filepath.Rel(root, path)
			found = append(found, registeredName{
				name: name,
				at:   rel + ":" + strconv.Itoa(fset.Position(lit.Pos()).Line),
			})
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return found
}

// Every metric name registered anywhere in the repository must follow
// the naming rule — a vet-style test, so a typo'd name ("Schedd.Foo",
// "mip-retries") fails CI instead of silently producing an ugly or
// invalid Prometheus series.
func TestAllRegisteredMetricNamesFollowRule(t *testing.T) {
	names := collectRegisteredMetricNames(t)
	for _, rn := range names {
		if !metricNameRule.MatchString(rn.name) {
			t.Errorf("%s: metric name %q violates %s", rn.at, rn.name, metricNameRule)
		}
	}
	if len(names) < 20 {
		t.Fatalf("only %d registered metric names found — scan broken?", len(names))
	}
}

// luFamily is the closed set of metric names under the lp.lu. prefix:
// the sparse-basis telemetry the simplex core exposes. Growing the
// family is fine — add the new name here in the same change — but a
// typo'd or undocumented lp.lu.* registration fails instead of silently
// starting a stray series.
var luFamily = map[string]bool{
	"lp.lu.ft.updates":       true,
	"lp.lu.fill":             true,
	"lp.lu.refactor.trigger": true,
}

// The lp.lu.* family must be registered exactly as documented: every
// member present somewhere in the repo, and nothing else under the
// prefix.
func TestLUMetricFamilyIsClosed(t *testing.T) {
	seen := map[string]bool{}
	for _, rn := range collectRegisteredMetricNames(t) {
		if !strings.HasPrefix(rn.name, "lp.lu.") {
			continue
		}
		if !luFamily[rn.name] {
			t.Errorf("%s: metric %q is not a documented lp.lu.* family member", rn.at, rn.name)
		}
		seen[rn.name] = true
	}
	for name := range luFamily {
		if !seen[name] {
			t.Errorf("lp.lu.* family member %q is documented but never registered", name)
		}
	}
}

// anytimeFamily is the closed set of metric names under the anytime.
// prefix: the background optimizer's telemetry, split between the
// solver side (solves, preemptions, incumbents found) and the writer
// side (incumbents adopted / rejected / dropped as stale). Growing the
// family is fine — add the new name here in the same change.
var anytimeFamily = map[string]bool{
	"anytime.solves":              true,
	"anytime.solves.preempted":    true,
	"anytime.incumbents.found":    true,
	"anytime.incumbents.adopted":  true,
	"anytime.incumbents.stale":    true,
	"anytime.incumbents.rejected": true,
}

// The anytime.* family must be registered exactly as documented: every
// member present somewhere in the repo, and nothing else under the
// prefix.
func TestAnytimeMetricFamilyIsClosed(t *testing.T) {
	seen := map[string]bool{}
	for _, rn := range collectRegisteredMetricNames(t) {
		if !strings.HasPrefix(rn.name, "anytime.") {
			continue
		}
		if !anytimeFamily[rn.name] {
			t.Errorf("%s: metric %q is not a documented anytime.* family member", rn.at, rn.name)
		}
		seen[rn.name] = true
	}
	for name := range anytimeFamily {
		if !seen[name] {
			t.Errorf("anytime.* family member %q is documented but never registered", name)
		}
	}
}

// Runtime gauges are built outside a Registry; hold them to the same rule.
func TestRuntimeMetricNamesFollowRule(t *testing.T) {
	for _, m := range obs.RuntimeMetrics() {
		if !metricNameRule.MatchString(m.Name) {
			t.Errorf("runtime metric %q violates %s", m.Name, metricNameRule)
		}
	}
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

package obs_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/obs"
)

// Metric names are dot-separated snake_case segments: "schedd.submits",
// "schedd.replan.duration.ms", "go.heap.alloc.bytes". The Prometheus
// encoder maps dots to underscores, so anything matching this rule also
// yields a valid exposition name.
var metricNameRule = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)*$`)

// registryMethods are the Registry/instrument constructors whose first
// string-literal argument is a metric name.
var registryMethods = map[string]bool{
	"Counter": true, "Histogram": true, "CounterVec": true, "HistogramVec": true,
}

// Every metric name registered anywhere in the repository must follow
// the naming rule — a vet-style test, so a typo'd name ("Schedd.Foo",
// "mip-retries") fails CI instead of silently producing an ugly or
// invalid Prometheus series.
func TestAllRegisteredMetricNamesFollowRule(t *testing.T) {
	root := repoRoot(t)
	var checked int
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == ".git" || name == ".github" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			lit, ok := call.Args[0].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			name, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			checked++
			if !metricNameRule.MatchString(name) {
				rel, _ := filepath.Rel(root, path)
				t.Errorf("%s:%d: metric name %q violates %s",
					rel, fset.Position(lit.Pos()).Line, name, metricNameRule)
			}
			return true
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 20 {
		t.Fatalf("only %d registered metric names found — scan broken?", checked)
	}
}

// Runtime gauges are built outside a Registry; hold them to the same rule.
func TestRuntimeMetricNamesFollowRule(t *testing.T) {
	for _, m := range obs.RuntimeMetrics() {
		if !metricNameRule.MatchString(m.Name) {
			t.Errorf("runtime metric %q violates %s", m.Name, metricNameRule)
		}
	}
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above the test directory")
		}
		dir = parent
	}
}

package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeLines parses every JSONL line of buf with encoding/json, proving
// the hand-rolled encoder emits valid JSON.
func decodeLines(t *testing.T, buf *bytes.Buffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("invalid JSON line %q: %v", line, err)
		}
		out = append(out, m)
	}
	return out
}

func TestTracerJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.Emit("test.point",
		Int("i", 42),
		Float("f", 1.5),
		Str("s", `quo"te\and	tab`),
		Bool("b", true),
		Float("nan", math.NaN()))
	events := decodeLines(t, &buf)
	if len(events) != 1 {
		t.Fatalf("got %d events, want 1", len(events))
	}
	e := events[0]
	if e["ev"] != "test.point" {
		t.Errorf("ev = %v", e["ev"])
	}
	if e["i"] != float64(42) || e["f"] != 1.5 || e["b"] != true {
		t.Errorf("fields = %v", e)
	}
	if e["s"] != `quo"te\and	tab` {
		t.Errorf("string field mangled: %q", e["s"])
	}
	if e["nan"] != nil {
		t.Errorf("NaN should encode as null, got %v", e["nan"])
	}
	if _, ok := e["seq"]; !ok {
		t.Error("missing seq")
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	outer := tr.StartSpan("outer")
	inner := tr.StartSpan("inner", Int("k", 1))
	tr.Emit("point")
	inner.End()
	inner.End() // double End must be a no-op
	outer.End(Str("status", "done"))
	tr.Emit("after")

	events := decodeLines(t, &buf)
	if len(events) != 6 {
		t.Fatalf("got %d events, want 6", len(events))
	}
	// outer begin: no parent.
	if events[0]["phase"] != "begin" || events[0]["ev"] != "outer" {
		t.Errorf("events[0] = %v", events[0])
	}
	if _, hasParent := events[0]["parent"]; hasParent {
		t.Errorf("outer span must have no parent: %v", events[0])
	}
	outerID := events[0]["span"]
	// inner begin: parent = outer.
	if events[1]["ev"] != "inner" || events[1]["parent"] != outerID {
		t.Errorf("inner begin not nested under outer: %v", events[1])
	}
	innerID := events[1]["span"]
	// point event inherits the innermost open span.
	if events[2]["span"] != innerID {
		t.Errorf("point not attributed to inner span: %v", events[2])
	}
	// inner end carries a duration.
	if events[3]["phase"] != "end" || events[3]["span"] != innerID {
		t.Errorf("events[3] = %v", events[3])
	}
	if _, ok := events[3]["dur_ms"]; !ok {
		t.Errorf("span end missing dur_ms: %v", events[3])
	}
	// outer end carries the extra field.
	if events[4]["span"] != outerID || events[4]["status"] != "done" {
		t.Errorf("events[4] = %v", events[4])
	}
	// after both ends, events carry no span.
	if _, hasSpan := events[5]["span"]; hasSpan {
		t.Errorf("event after all spans closed still has span: %v", events[5])
	}
}

func TestSpanDuration(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	base := time.Unix(100, 0)
	clock := base
	tr.SetClock(base, func() time.Time { return clock })
	sp := tr.StartSpan("work")
	clock = clock.Add(250 * time.Millisecond)
	sp.End()
	events := decodeLines(t, &buf)
	if got := events[1]["dur_ms"]; got != 250.0 {
		t.Errorf("dur_ms = %v, want 250", got)
	}
	if got := events[1]["t"]; got != 0.25 {
		t.Errorf("t = %v, want 0.25", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("depth", []float64{1, 4, 16})
	for _, v := range []float64{0, 1, 2, 4, 5, 16, 100} {
		h.Observe(v)
	}
	bs := h.Buckets()
	if len(bs) != 4 {
		t.Fatalf("got %d buckets, want 4", len(bs))
	}
	// Upper edges inclusive: [<=1]=2 (0,1), [<=4]=2 (2,4), [<=16]=2 (5,16), [+Inf]=1 (100).
	want := []int64{2, 2, 2, 1}
	for i, b := range bs {
		if b.Count != want[i] {
			t.Errorf("bucket %d (<= %g): count %d, want %d", i, b.UpperBound, b.Count, want[i])
		}
	}
	if !math.IsInf(bs[3].UpperBound, 1) {
		t.Errorf("last bucket bound = %g, want +Inf", bs[3].UpperBound)
	}
	if h.Count() != 7 {
		t.Errorf("Count = %d, want 7", h.Count())
	}
	if h.Sum() != 128 {
		t.Errorf("Sum = %g, want 128", h.Sum())
	}
	if got, want := h.Mean(), 128.0/7; math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %g, want %g", got, want)
	}
}

func TestRegistryCountersAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Errorf("counter = %d, want 4", c.Value())
	}
	if r.Counter("a") != c {
		t.Error("Counter not idempotent per name")
	}
	r.Histogram("b", []float64{10}).Observe(5)
	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].Value != 4 || snap[1].Value != 1 {
		t.Errorf("snapshot values = %+v", snap)
	}
	if out := r.String(); !strings.Contains(out, "a") || !strings.Contains(out, "4") {
		t.Errorf("String() = %q", out)
	}
}

func TestCounterConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h", []float64{50})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("counter = %d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("histogram count=%d sum=%g, want 8000", h.Count(), h.Sum())
	}
}

// TestNilSafety drives every instrument through nil receivers: the
// disabled configuration must be inert, not crash.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit("ev", Int("x", 1))
	sp := tr.StartSpan("span")
	sp.End()
	(*Span)(nil).End()
	if err := tr.Err(); err != nil {
		t.Error(err)
	}
	tr.SetClock(time.Time{}, nil)

	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	h := r.Histogram("y", []float64{1})
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Buckets() != nil {
		t.Error("nil histogram not inert")
	}
	if r.Snapshot() != nil || r.String() != "" {
		t.Error("nil registry snapshot not empty")
	}
}

// TestNoopAllocations proves the disabled instruments allocate nothing
// on the hot path — the contract that lets solver and simulator inner
// loops stay instrumented unconditionally.
func TestNoopAllocations(t *testing.T) {
	var tr *Tracer
	var c *Counter
	var h *Histogram
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit("ev", Int("a", 1), Float("b", 2.5), Str("c", "x"))
		c.Inc()
		h.Observe(1)
	}); n != 0 {
		t.Errorf("no-op instrumentation allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp := tr.StartSpan("s", Int("a", 1))
		sp.End()
	}); n != 0 {
		t.Errorf("no-op span allocates %v per op, want 0", n)
	}
}

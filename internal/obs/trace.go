package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync/atomic"
)

// Request-scoped tracing. A trace ID names one end-to-end request (one
// job submission travelling admission → batch → replan → solve →
// publish); it is minted at the edge (or accepted from an
// `X-Trace-Id`-style header), carried in a context.Context, and stamped
// onto every event and span emitted with the *Ctx methods as a "trace"
// field. Span parentage for these request paths is explicit — the parent
// span travels in the context — so concurrent requests never steal each
// other's spans the way the tracer's goroutine-agnostic span stack
// would.
//
// The stack-based StartSpan/Emit remain the right tool inside a
// single-goroutine pipeline (the schedd writer loop, the simulator, the
// solvers): spans opened there nest automatically, and the two models
// compose — a *Ctx span can parent a stack span and vice versa, because
// both write the same span/parent ids.

type traceIDKey struct{}
type spanCtxKey struct{}

// traceSeq disambiguates fallback IDs minted when crypto/rand fails.
var traceSeq atomic.Int64

// NewTraceID returns a fresh 16-hex-character random trace ID.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// process-unique sequence rather than failing the request.
		n := traceSeq.Add(1)
		for i := 0; i < 8; i++ {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// WithTraceID returns a context carrying the trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFrom returns the context's trace ID, or "" when none is set.
func TraceIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}

// ContextWithSpan returns a context carrying sp as the current span, so
// later StartSpanCtx/EmitCtx calls parent under it.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the context's current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// ID returns the span's id in the trace (0 for a nil span). Ids are
// positive, so 0 is unambiguous "no span".
func (sp *Span) ID() int64 {
	if sp == nil {
		return 0
	}
	return sp.id
}

// Trace returns the trace ID the span was started with ("" when it was
// opened outside a traced context).
func (sp *Span) Trace() string {
	if sp == nil {
		return ""
	}
	return sp.trace
}

// StartSpanCtx opens a span whose parent is the context's current span
// (explicit parenting — the tracer's span stack is not consulted or
// modified) and whose begin and end events carry the context's trace ID.
// The returned context carries the new span, so nested StartSpanCtx and
// EmitCtx calls attach under it. On a nil tracer it returns the context
// unchanged and a nil (no-op) span.
func (t *Tracer) StartSpanCtx(ctx context.Context, name string, fields ...Field) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	parent := SpanFromContext(ctx).ID()
	trace := TraceIDFrom(ctx)
	if trace != "" {
		fields = append(fields, Str("trace", trace))
	}
	t.mu.Lock()
	t.nextSpan++
	id := t.nextSpan
	now := t.now()
	pid := int64(-1)
	if parent > 0 {
		pid = parent
	}
	t.write(name, id, pid, "begin", 0, fields)
	t.mu.Unlock()
	sp := &Span{t: t, id: id, name: name, start: now, trace: trace}
	return ContextWithSpan(ctx, sp), sp
}

// EmitCtx writes one point event attributed to the context's current
// span (or to the root when the context carries none — unlike Emit it
// never attaches to whatever span happens to top the tracer's stack)
// and stamped with the context's trace ID.
func (t *Tracer) EmitCtx(ctx context.Context, event string, fields ...Field) {
	if t == nil {
		return
	}
	if trace := TraceIDFrom(ctx); trace != "" {
		fields = append(fields, Str("trace", trace))
	}
	span := SpanFromContext(ctx).ID()
	t.mu.Lock()
	sid := int64(-1)
	if span > 0 {
		sid = span
	}
	t.write(event, sid, -1, "", 0, fields)
	t.mu.Unlock()
}

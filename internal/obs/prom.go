package obs

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) for registry
// snapshots, plus an in-process promtool-style parser used by tests and
// the CI daemon drill to reject malformed output. Both operate on
// []Metric so the JSON and Prometheus encoders share one snapshot pass.

// promName sanitizes a registry metric name for Prometheus: the
// registry's snake.case dots become underscores (`schedd.step.total` →
// `schedd_step_total`); any other invalid rune is likewise replaced.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 2)
	for i := 0; i < len(v); i++ {
		switch c := v[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promFloat formats a sample value; Prometheus spells infinities
// "+Inf"/"-Inf" (Go's FormatFloat matches for NaN).
func promFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders {k="v",...} with an optional extra le label, or ""
// when there are no labels at all.
func promLabels(labels []Label, le string) string {
	if len(labels) == 0 && le == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(promEscape(l.Value))
		b.WriteByte('"')
	}
	if le != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`le="`)
		b.WriteString(le)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format: one # TYPE line per family (labeled series of one family are
// adjacent in Snapshot output and share it), histograms expanded into
// cumulative _bucket series with le labels plus _sum and _count.
func WritePrometheus(w io.Writer, ms []Metric) error {
	var b strings.Builder
	lastTyped := ""
	for _, m := range ms {
		name := promName(m.Name)
		kind := m.Kind
		if kind != "counter" && kind != "gauge" && kind != "histogram" {
			kind = "untyped"
		}
		if name != lastTyped {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, kind)
			lastTyped = name
		}
		switch m.Kind {
		case "counter":
			fmt.Fprintf(&b, "%s%s %d\n", name, promLabels(m.Labels, ""), m.Value)
		case "gauge":
			fmt.Fprintf(&b, "%s%s %s\n", name, promLabels(m.Labels, ""), promFloat(m.Sum))
		default: // histogram
			cum := int64(0)
			for _, bk := range m.Buckets {
				cum += bk.Count
				fmt.Fprintf(&b, "%s_bucket%s %d\n", name, promLabels(m.Labels, promFloat(bk.UpperBound)), cum)
			}
			fmt.Fprintf(&b, "%s_sum%s %s\n", name, promLabels(m.Labels, ""), promFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count%s %d\n", name, promLabels(m.Labels, ""), m.Value)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ValidateExposition parses a Prometheus text exposition and returns the
// first syntax error found (nil when well-formed) — an in-process
// promtool check so CI can fail on malformed output without external
// tooling. It verifies metric-name and label syntax, label-value escape
// sequences, sample values, and that at most one # TYPE line names each
// family.
func ValidateExposition(data []byte) error {
	typed := map[string]bool{}
	lines := strings.Split(string(data), "\n")
	for i, line := range lines {
		lineno := i + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimPrefix(line, "#")
			rest = strings.TrimPrefix(rest, " ")
			switch {
			case strings.HasPrefix(rest, "TYPE "):
				parts := strings.Fields(rest)
				if len(parts) != 3 {
					return fmt.Errorf("line %d: malformed TYPE line", lineno)
				}
				if !validPromName(parts[1]) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE line", lineno, parts[1])
				}
				switch parts[2] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineno, parts[2])
				}
				if typed[parts[1]] {
					return fmt.Errorf("line %d: duplicate TYPE line for %q", lineno, parts[1])
				}
				typed[parts[1]] = true
			case strings.HasPrefix(rest, "HELP "):
				// free-form; nothing to check beyond the name
				parts := strings.SplitN(rest, " ", 3)
				if len(parts) < 2 || !validPromName(parts[1]) {
					return fmt.Errorf("line %d: malformed HELP line", lineno)
				}
			default:
				// other comments are ignored by scrapers
			}
			continue
		}
		if err := validateSample(line); err != nil {
			return fmt.Errorf("line %d: %v", lineno, err)
		}
	}
	return nil
}

func validPromName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// validateSample checks one sample line: name[{labels}] value [timestamp].
func validateSample(line string) error {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	if !validPromName(line[:i]) {
		return fmt.Errorf("invalid metric name %q", line[:i])
	}
	if i < len(line) && line[i] == '{' {
		i++ // past '{'
		for {
			if i >= len(line) {
				return fmt.Errorf("unterminated label set")
			}
			if line[i] == '}' {
				i++
				break
			}
			j := i
			for j < len(line) && line[j] != '=' {
				j++
			}
			if j >= len(line) || !validLabelName(line[i:j]) {
				return fmt.Errorf("invalid label name %q", line[i:j])
			}
			i = j + 1
			if i >= len(line) || line[i] != '"' {
				return fmt.Errorf("label value must be quoted")
			}
			i++
			for {
				if i >= len(line) {
					return fmt.Errorf("unterminated label value")
				}
				if line[i] == '\\' {
					if i+1 >= len(line) {
						return fmt.Errorf("dangling escape in label value")
					}
					switch line[i+1] {
					case '\\', '"', 'n':
					default:
						return fmt.Errorf("invalid escape \\%c in label value", line[i+1])
					}
					i += 2
					continue
				}
				if line[i] == '"' {
					i++
					break
				}
				i++
			}
			if i < len(line) && line[i] == ',' {
				i++
			}
		}
	}
	rest := strings.TrimLeft(line[i:], " \t")
	if rest == "" {
		return fmt.Errorf("missing sample value")
	}
	fields := strings.Fields(rest)
	if len(fields) > 2 {
		return fmt.Errorf("trailing garbage after sample value")
	}
	if !validPromValue(fields[0]) {
		return fmt.Errorf("invalid sample value %q", fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("invalid timestamp %q", fields[1])
		}
	}
	return nil
}

func validPromValue(s string) bool {
	switch s {
	case "+Inf", "-Inf", "Inf", "NaN":
		return true
	}
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. A nil Counter
// is a no-op.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.n.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is a last-value instrument (float64, atomically stored): set it
// to the current reading rather than accumulating. A nil Gauge is a
// no-op.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores the current reading.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last reading (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket histogram: bounds are the inclusive upper
// edges of each bucket, with an implicit +Inf overflow bucket. A nil
// Histogram is a no-op.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// NewHistogram creates a standalone histogram with the given bucket
// bounds (an implicit +Inf overflow bucket is added), for callers that
// want estimation (Quantile, Mean) without a registry.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of samples (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns the average sample, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if n := h.Count(); n > 0 {
		return h.Sum() / float64(n)
	}
	return 0
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the recorded samples
// by linear interpolation within the bucket holding the target rank —
// the usual fixed-bucket estimator, so accuracy is bounded by bucket
// width. Samples in the +Inf overflow bucket are attributed to the last
// finite bound (there is nothing better to interpolate against).
// Returns 0 for a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: no finite upper edge.
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper edge (+Inf for the overflow bucket).
	UpperBound float64
	Count      int64
}

// Buckets returns a snapshot of the bucket counts.
func (h *Histogram) Buckets() []Bucket {
	if h == nil {
		return nil
	}
	out := make([]Bucket, len(h.counts))
	for i := range h.counts {
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = Bucket{UpperBound: ub, Count: h.counts[i].Load()}
	}
	return out
}

// Registry holds named counters and histograms — plain and labeled
// (see CounterVec/HistogramVec). A nil Registry hands out nil (no-op)
// instruments, so callers never need to branch.
type Registry struct {
	mu    sync.Mutex
	cs    map[string]*Counter
	gs    map[string]*Gauge
	hs    map[string]*Histogram
	cvs   map[string]*CounterVec
	hvs   map[string]*HistogramVec
	order []string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		cs:  map[string]*Counter{},
		gs:  map[string]*Gauge{},
		hs:  map[string]*Histogram{},
		cvs: map[string]*CounterVec{},
		hvs: map[string]*HistogramVec{},
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Returns nil (a no-op counter) on a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.cs[name]
	if !ok {
		c = &Counter{}
		r.cs[name] = c
		r.order = append(r.order, name)
	}
	return c
}

// Gauge returns the gauge with the given name, creating it on first
// use. Returns nil (a no-op gauge) on a nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gs[name]
	if !ok {
		g = &Gauge{}
		r.gs[name] = g
		r.order = append(r.order, name)
	}
	return g
}

// Histogram returns the histogram with the given name, creating it with
// the given bucket bounds on first use (later bounds are ignored).
// Returns nil (a no-op histogram) on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hs[name]
	if !ok {
		h = newHistogram(bounds)
		r.hs[name] = h
		r.order = append(r.order, name)
	}
	return h
}

// Metric is one instrument (or one series of a labeled family) in a
// registry snapshot.
type Metric struct {
	Name string
	Kind string // "counter", "gauge" or "histogram"
	// Labels identify the series within a labeled family (nil for plain
	// instruments). Series of one family share the Name and are adjacent
	// in the snapshot, sorted by label values.
	Labels  []Label
	Value   int64 // counter/gauge value, or histogram sample count
	Sum     float64
	Mean    float64
	Buckets []Bucket // histograms only
}

// Snapshot returns all instruments in registration order; labeled
// families expand into one Metric per series, sorted by label values so
// successive snapshots enumerate series deterministically.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.order))
	for _, name := range r.order {
		if c, ok := r.cs[name]; ok {
			out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
			continue
		}
		if g, ok := r.gs[name]; ok {
			v := g.Value()
			out = append(out, Metric{Name: name, Kind: "gauge", Value: int64(v), Sum: v})
			continue
		}
		if h, ok := r.hs[name]; ok {
			out = append(out, Metric{Name: name, Kind: "histogram",
				Value: h.Count(), Sum: h.Sum(), Mean: h.Mean(), Buckets: h.Buckets()})
			continue
		}
		if v, ok := r.cvs[name]; ok {
			v.mu.RLock()
			for _, key := range sortedTuples(v.order) {
				c := v.kids[key]
				out = append(out, Metric{Name: name, Kind: "counter",
					Labels: labelsOf(v.keys, key), Value: c.Value()})
			}
			v.mu.RUnlock()
			continue
		}
		if v, ok := r.hvs[name]; ok {
			v.mu.RLock()
			for _, key := range sortedTuples(v.order) {
				h := v.kids[key]
				out = append(out, Metric{Name: name, Kind: "histogram",
					Labels: labelsOf(v.keys, key), Value: h.Count(),
					Sum: h.Sum(), Mean: h.Mean(), Buckets: h.Buckets()})
			}
			v.mu.RUnlock()
		}
	}
	return out
}

// String renders the registry as an aligned two-column table.
func (r *Registry) String() string {
	ms := r.Snapshot()
	if len(ms) == 0 {
		return ""
	}
	rows := make([][2]string, len(ms))
	width := 0
	for i, m := range ms {
		name := m.Name
		if len(m.Labels) > 0 {
			parts := make([]string, len(m.Labels))
			for j, l := range m.Labels {
				parts[j] = l.Key + "=" + l.Value
			}
			name += "{" + strings.Join(parts, ",") + "}"
		}
		rows[i][0] = name
		switch m.Kind {
		case "counter":
			rows[i][1] = fmt.Sprintf("%d", m.Value)
		case "gauge":
			rows[i][1] = fmt.Sprintf("%g", m.Sum)
		default:
			rows[i][1] = fmt.Sprintf("n=%d mean=%.3f sum=%.3f", m.Value, m.Mean, m.Sum)
		}
		if len(name) > width {
			width = len(name)
		}
	}
	var b strings.Builder
	for _, row := range rows {
		fmt.Fprintf(&b, "%-*s  %s\n", width, row[0], row[1])
	}
	return b.String()
}

package obs

import (
	"strings"
	"testing"
)

// Golden test pinning the exposition format: TYPE lines, cumulative
// +Inf-terminated histogram buckets, dot→underscore name sanitization,
// and label-value escaping. Any encoder change must update this
// deliberately.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("schedd.submits.total").Add(7)
	h := r.Histogram("schedd.step.duration.ms", []float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	cv := r.CounterVec("schedd.step.outcome", "outcome", "policy")
	cv.With("ok", "FCFS").Add(3)
	cv.With(`we"ird\value`+"\n", "SJF").Inc()
	hv := r.HistogramVec("solve.latency.ms", []float64{1}, "kind")
	hv.With("mip").Observe(0.5)

	snap := r.Snapshot()
	snap = append(snap, Metric{Name: "go.goroutines", Kind: "gauge", Value: 12, Sum: 12})

	var b strings.Builder
	if err := WritePrometheus(&b, snap); err != nil {
		t.Fatal(err)
	}
	want := `# TYPE schedd_submits_total counter
schedd_submits_total 7
# TYPE schedd_step_duration_ms histogram
schedd_step_duration_ms_bucket{le="10"} 1
schedd_step_duration_ms_bucket{le="100"} 2
schedd_step_duration_ms_bucket{le="+Inf"} 3
schedd_step_duration_ms_sum 555
schedd_step_duration_ms_count 3
# TYPE schedd_step_outcome counter
schedd_step_outcome{outcome="ok",policy="FCFS"} 3
schedd_step_outcome{outcome="we\"ird\\value\n",policy="SJF"} 1
# TYPE solve_latency_ms histogram
solve_latency_ms_bucket{kind="mip",le="1"} 1
solve_latency_ms_bucket{kind="mip",le="+Inf"} 1
solve_latency_ms_sum{kind="mip"} 0.5
solve_latency_ms_count{kind="mip"} 1
# TYPE go_goroutines gauge
go_goroutines 12
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Errorf("golden exposition fails validation: %v", err)
	}
}

func TestWritePrometheusEmptyAndUntyped(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheus(&b, nil); err != nil {
		t.Fatal(err)
	}
	if b.String() != "" {
		t.Errorf("empty snapshot rendered %q", b.String())
	}
	b.Reset()
	if err := WritePrometheus(&b, []Metric{{Name: "9weird", Kind: "bogus"}}); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "# TYPE _9weird untyped") {
		t.Errorf("unknown kind not rendered untyped: %q", out)
	}
	if err := ValidateExposition([]byte(out)); err != nil {
		t.Errorf("untyped exposition fails validation: %v", err)
	}
}

func TestValidateExposition(t *testing.T) {
	good := []string{
		"",
		"# HELP x something about x\n# TYPE x counter\nx 1\n",
		`x{a="1",b="two"} 3.5` + "\n",
		`x_bucket{le="+Inf"} 4 1700000000000` + "\n",
		"x NaN\n# arbitrary comment\ny -Inf\n",
		`x{v="esc\\aped\"quote\nnewline"} 1` + "\n",
	}
	for _, g := range good {
		if err := ValidateExposition([]byte(g)); err != nil {
			t.Errorf("valid exposition rejected: %v\n%q", err, g)
		}
	}
	bad := map[string]string{
		"bad metric name":     "9x 1\n",
		"missing value":       "x\n",
		"bad value":           "x one\n",
		"unterminated labels": `x{a="1" 2` + "\n",
		"unquoted label":      "x{a=1} 2\n",
		"bad label name":      `x{9a="1"} 2` + "\n",
		"bad escape":          `x{a="\q"} 2` + "\n",
		"dangling escape":     `x{a="\` + "\n",
		"bad TYPE arity":      "# TYPE x\n",
		"bad TYPE kind":       "# TYPE x banana\n",
		"duplicate TYPE":      "# TYPE x counter\n# TYPE x counter\n",
		"trailing garbage":    "x 1 2 3\n",
		"bad timestamp":       "x 1 soon\n",
	}
	for name, b := range bad {
		if err := ValidateExposition([]byte(b)); err == nil {
			t.Errorf("%s: malformed exposition accepted: %q", name, b)
		}
	}
}

func TestRuntimeMetrics(t *testing.T) {
	ms := RuntimeMetrics()
	if len(ms) == 0 {
		t.Fatal("no runtime metrics")
	}
	byName := map[string]Metric{}
	for _, m := range ms {
		if m.Kind != "gauge" {
			t.Errorf("%s kind = %q, want gauge", m.Name, m.Kind)
		}
		byName[m.Name] = m
	}
	if byName["go.goroutines"].Sum < 1 {
		t.Errorf("go.goroutines = %v", byName["go.goroutines"].Sum)
	}
	if byName["go.heap.alloc.bytes"].Sum <= 0 {
		t.Errorf("go.heap.alloc.bytes = %v", byName["go.heap.alloc.bytes"].Sum)
	}
	var b strings.Builder
	if err := WritePrometheus(&b, ms); err != nil {
		t.Fatal(err)
	}
	if err := ValidateExposition([]byte(b.String())); err != nil {
		t.Errorf("runtime metrics exposition invalid: %v", err)
	}
}

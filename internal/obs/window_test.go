package obs

import (
	"testing"
	"time"
)

// fakeNow installs a controllable clock on a WindowedHistogram and
// returns the advance function.
func fakeNow(w *WindowedHistogram) func(time.Duration) {
	t := time.Unix(1000, 0)
	w.now = func() time.Time { return t }
	w.curStart = t
	return func(d time.Duration) { t = t.Add(d) }
}

// TestWindowedHistogramDecay: samples must age out of the window — the
// fix for the rebalancer's signal, where a lifetime histogram kept a
// transient slowdown's p99 elevated forever.
func TestWindowedHistogramDecay(t *testing.T) {
	bounds := []float64{1, 10, 100, 1000}
	w := NewWindowedHistogram(bounds, 10*time.Second, 5)
	tick := fakeNow(w)

	// A burst of slow samples: p99 reads high.
	for i := 0; i < 20; i++ {
		w.Observe(800)
	}
	if q := w.Quantile(0.99); q < 100 {
		t.Fatalf("p99 = %g right after slow burst, want >= 100", q)
	}
	// Recovery: fast samples only. Within the window both populations
	// are visible.
	tick(4 * time.Second)
	for i := 0; i < 20; i++ {
		w.Observe(2)
	}
	if n := w.Count(); n != 40 {
		t.Fatalf("count inside window = %d, want 40", n)
	}
	// Once the slow burst's slots rotate out, only recent behavior
	// remains: p99 must fall back to the fast buckets.
	tick(7 * time.Second)
	if n := w.Count(); n != 20 {
		t.Fatalf("count after slow slots expired = %d, want 20", n)
	}
	if q := w.Quantile(0.99); q > 10 {
		t.Errorf("p99 = %g after recovery, want <= 10 (slow burst aged out)", q)
	}
	// An idle gap longer than the window empties it entirely.
	tick(time.Minute)
	if n := w.Count(); n != 0 {
		t.Errorf("count after idle gap = %d, want 0", n)
	}
	if q := w.Quantile(0.99); q != 0 {
		t.Errorf("p99 of empty window = %g, want 0", q)
	}
}

func TestWindowedHistogramNilAndDefaults(t *testing.T) {
	var w *WindowedHistogram
	w.Observe(1) // must not panic
	if w.Quantile(0.5) != 0 || w.Count() != 0 {
		t.Error("nil WindowedHistogram not a no-op")
	}
	// Degenerate constructor args clamp instead of failing.
	w2 := NewWindowedHistogram([]float64{1, 2}, 0, 0)
	w2.Observe(1.5)
	if w2.Count() != 1 {
		t.Errorf("clamped window count = %d, want 1", w2.Count())
	}
	if q := w2.Quantile(1); q < 1 || q > 2 {
		t.Errorf("clamped window Quantile(1) = %g, want within (1,2]", q)
	}
}

package obs

import (
	"sync"
	"time"
)

// WindowedHistogram is a sliding-window variant of Histogram: samples
// age out after roughly the configured window, in slot-sized steps
// (window/slots granularity). It exists for *signals* — values that
// must track recent behavior, like the shard rebalancer's p99
// divergence — where a lifetime-cumulative histogram would keep a
// transient slowdown visible forever. Cumulative metrics exported to
// Prometheus should keep using Histogram; rate() belongs to the
// scraper there, not here.
//
// A nil WindowedHistogram is a no-op, like the other instruments.
type WindowedHistogram struct {
	mu       sync.Mutex
	bounds   []float64
	slots    []*Histogram
	slotDur  time.Duration
	cur      int
	curStart time.Time
	now      func() time.Time // test seam
}

// NewWindowedHistogram creates a sliding-window histogram with the
// given bucket bounds covering roughly window of history in slots
// rotating sub-histograms (slots < 2 is raised to 2; window <= 0
// defaults to 15s).
func NewWindowedHistogram(bounds []float64, window time.Duration, slots int) *WindowedHistogram {
	if slots < 2 {
		slots = 2
	}
	if window <= 0 {
		window = 15 * time.Second
	}
	w := &WindowedHistogram{
		bounds:  append([]float64(nil), bounds...),
		slots:   make([]*Histogram, slots),
		slotDur: window / time.Duration(slots),
		now:     time.Now,
	}
	for i := range w.slots {
		w.slots[i] = newHistogram(bounds)
	}
	w.curStart = w.now()
	return w
}

// advance rotates out every slot whose time has passed (mu held). An
// idle gap longer than the whole window clears everything at once
// instead of stepping slot by slot.
func (w *WindowedHistogram) advance() {
	elapsed := w.now().Sub(w.curStart)
	if elapsed < w.slotDur {
		return
	}
	steps := int(elapsed / w.slotDur)
	if steps >= len(w.slots) {
		for i := range w.slots {
			w.slots[i] = newHistogram(w.bounds)
		}
		w.cur = 0
		w.curStart = w.now()
		return
	}
	for s := 0; s < steps; s++ {
		w.cur = (w.cur + 1) % len(w.slots)
		w.slots[w.cur] = newHistogram(w.bounds)
	}
	w.curStart = w.curStart.Add(time.Duration(steps) * w.slotDur)
}

// Observe records one sample into the current slot.
func (w *WindowedHistogram) Observe(v float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.advance()
	w.slots[w.cur].Observe(v)
	w.mu.Unlock()
}

// merged combines every live slot into one histogram (mu held).
func (w *WindowedHistogram) merged() *Histogram {
	m := newHistogram(w.bounds)
	for _, s := range w.slots {
		for i := range s.counts {
			if n := s.counts[i].Load(); n != 0 {
				m.counts[i].Add(n)
				m.count.Add(n)
			}
		}
	}
	return m
}

// Quantile estimates the q-quantile over the samples still inside the
// window (0 for a nil or empty window); see Histogram.Quantile for the
// estimator.
func (w *WindowedHistogram) Quantile(q float64) float64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	w.advance()
	m := w.merged()
	w.mu.Unlock()
	return m.Quantile(q)
}

// Count returns how many samples are still inside the window.
func (w *WindowedHistogram) Count() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	w.advance()
	m := w.merged()
	w.mu.Unlock()
	return m.Count()
}

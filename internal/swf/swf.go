// Package swf reads and writes the Standard Workload Format (SWF) of the
// Parallel Workloads Archive, the format the paper's CTC trace is
// distributed in. The parser is tolerant: comment/header lines start with
// ';', missing optional fields are -1, and jobs unusable for scheduling
// studies (zero processors or non-positive runtime, e.g. cancelled jobs)
// are skipped and counted.
package swf

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/job"
)

// The 18 standard SWF fields.
const (
	fieldJobNumber = iota
	fieldSubmit
	fieldWait
	fieldRunTime
	fieldAllocProcs
	fieldAvgCPU
	fieldUsedMem
	fieldReqProcs
	fieldReqTime
	fieldReqMem
	fieldStatus
	fieldUser
	fieldGroup
	fieldExecutable
	fieldQueue
	fieldPartition
	fieldPrecedingJob
	fieldThinkTime
	numFields
)

// ParseResult is the outcome of parsing an SWF stream.
type ParseResult struct {
	Trace *job.Trace
	// Skipped counts records dropped because they cannot be scheduled
	// (non-positive width or runtime).
	Skipped int
	// Malformed counts records dropped by lenient mode because they were
	// truncated or unparseable (always 0 in strict mode, which errors).
	Malformed int
	// BadLines holds the line numbers of the malformed records, capped
	// at maxBadLines so a corrupt gigabyte trace cannot balloon memory.
	BadLines []int
	// HeaderFields holds the "; Key: Value" header lines.
	HeaderFields map[string]string
}

// maxBadLines caps ParseResult.BadLines; Malformed keeps the full count.
const maxBadLines = 100

// Options parameterize ParseWith.
type Options struct {
	// Lenient tolerates corrupt records instead of failing the parse:
	// truncated lines with at least the five scheduling-relevant leading
	// fields (job, submit, wait, runtime, processors) are padded with -1
	// sentinels, and lines shorter than that or with unparseable numbers
	// are counted in Malformed and skipped. Archive traces accumulate
	// such damage (truncated downloads, editor mangling); a 40-day CTC
	// replay should not die on one bad line.
	Lenient bool
}

// minFields is the shortest record lenient mode accepts: through the
// allocated-processor field, enough to reconstruct a schedulable job.
const minFields = fieldAllocProcs + 1

// Parse reads an SWF stream strictly: any malformed record is an error.
// Width is the requested processor count when present, otherwise the
// allocated count; the estimate is the requested time when present,
// otherwise the actual runtime. Estimates below the runtime are raised
// to the runtime (planning systems kill jobs exceeding their estimate,
// so recorded runtimes never legitimately exceed it).
func Parse(r io.Reader) (*ParseResult, error) {
	return ParseWith(r, Options{})
}

// ParseWith is Parse under the given options.
func ParseWith(r io.Reader, opt Options) (*ParseResult, error) {
	res := &ParseResult{
		Trace:        &job.Trace{Note: "swf"},
		HeaderFields: map[string]string{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			key, val, ok := strings.Cut(strings.TrimSpace(line[1:]), ":")
			if ok {
				res.HeaderFields[strings.TrimSpace(key)] = strings.TrimSpace(val)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < numFields {
			if !opt.Lenient {
				return nil, fmt.Errorf("swf: line %d: %d fields, want %d", lineNo, len(fields), numFields)
			}
			if len(fields) < minFields {
				res.recordBad(lineNo)
				continue
			}
			// Truncated record: pad the missing trailing fields with the
			// SWF "unknown" sentinel.
			for len(fields) < numFields {
				fields = append(fields, "-1")
			}
		}
		vals := make([]int64, numFields)
		bad := false
		for i := 0; i < numFields; i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				if !opt.Lenient {
					return nil, fmt.Errorf("swf: line %d field %d: %v", lineNo, i+1, err)
				}
				res.recordBad(lineNo)
				bad = true
				break
			}
			vals[i] = int64(v)
		}
		if bad {
			continue
		}
		j := &job.Job{
			ID:     int(vals[fieldJobNumber]),
			Submit: vals[fieldSubmit],
			User:   int(vals[fieldUser]),
			Group:  int(vals[fieldGroup]),
		}
		j.Width = int(vals[fieldReqProcs])
		if j.Width <= 0 {
			j.Width = int(vals[fieldAllocProcs])
		}
		j.Runtime = vals[fieldRunTime]
		j.Estimate = vals[fieldReqTime]
		if j.Estimate <= 0 {
			j.Estimate = j.Runtime
		}
		if j.Estimate < j.Runtime {
			j.Estimate = j.Runtime
		}
		if j.Width <= 0 || j.Runtime <= 0 {
			res.Skipped++
			continue
		}
		if j.Submit < 0 {
			j.Submit = 0
		}
		res.Trace.Jobs = append(res.Trace.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: %v", err)
	}
	if mp, ok := res.HeaderFields["MaxProcs"]; ok {
		if n, err := strconv.Atoi(strings.Fields(mp)[0]); err == nil {
			res.Trace.Processors = n
		}
	}
	res.Trace.SortBySubmit()
	return res, nil
}

func (res *ParseResult) recordBad(lineNo int) {
	res.Malformed++
	if len(res.BadLines) < maxBadLines {
		res.BadLines = append(res.BadLines, lineNo)
	}
}

// Write emits the trace in SWF. Unknown optional fields are written as -1.
// The header records the machine size and the note.
func Write(w io.Writer, t *job.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; Computer: %s\n", orUnknown(t.Note))
	if t.Processors > 0 {
		fmt.Fprintf(bw, "; MaxProcs: %d\n", t.Processors)
	}
	fmt.Fprintf(bw, "; MaxJobs: %d\n", len(t.Jobs))
	for _, j := range t.Jobs {
		// job submit wait run alloc cpu mem reqproc reqtime reqmem
		// status user group exe queue partition preceding think
		if _, err := fmt.Fprintf(bw, "%d %d -1 %d %d -1 -1 %d %d -1 1 %d %d -1 -1 -1 -1 -1\n",
			j.ID, j.Submit, j.Runtime, j.Width, j.Width, j.Estimate, j.User, j.Group); err != nil {
			return fmt.Errorf("swf: write: %v", err)
		}
	}
	return bw.Flush()
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

package swf

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/stats"
)

const sample = `; Computer: Cornell Theory Center SP2
; MaxProcs: 430
; note: header lines are ignored except Key: Value pairs

1 0 10 3600 16 -1 -1 16 7200 -1 1 3 1 -1 -1 -1 -1 -1
2 100 0 60 -1 -1 -1 4 120 -1 1 5 2 -1 -1 -1 -1 -1
3 200 0 -1 8 -1 -1 8 600 -1 5 1 1 -1 -1 -1 -1 -1
4 50 0 90 2 -1 -1 -1 -1 -1 1 1 1 -1 -1 -1 -1 -1
`

func TestParseSample(t *testing.T) {
	res, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Processors != 430 {
		t.Fatalf("Processors = %d, want 430", res.Trace.Processors)
	}
	if res.Skipped != 1 { // job 3 has run time -1
		t.Fatalf("Skipped = %d, want 1", res.Skipped)
	}
	if len(res.Trace.Jobs) != 3 {
		t.Fatalf("jobs = %d, want 3", len(res.Trace.Jobs))
	}
	// Sorted by submit: job 1 (0), job 4 (50), job 2 (100).
	if res.Trace.Jobs[0].ID != 1 || res.Trace.Jobs[1].ID != 4 || res.Trace.Jobs[2].ID != 2 {
		t.Fatalf("order wrong: %v %v %v", res.Trace.Jobs[0].ID, res.Trace.Jobs[1].ID, res.Trace.Jobs[2].ID)
	}
	j1 := res.Trace.Jobs[0]
	if j1.Width != 16 || j1.Runtime != 3600 || j1.Estimate != 7200 || j1.User != 3 {
		t.Fatalf("job 1 fields wrong: %+v", j1)
	}
	// Job 4 has no requested procs/time: falls back to allocated/runtime.
	j4 := res.Trace.Jobs[1]
	if j4.Width != 2 || j4.Estimate != 90 || j4.Runtime != 90 {
		t.Fatalf("job 4 fallback wrong: %+v", j4)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseEstimateRaisedToRuntime(t *testing.T) {
	line := "1 0 0 100 4 -1 -1 4 50 -1 1 1 1 -1 -1 -1 -1 -1\n"
	res, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Jobs[0].Estimate != 100 {
		t.Fatalf("estimate = %d, want raised to runtime 100", res.Trace.Jobs[0].Estimate)
	}
}

func TestParseNegativeSubmitClamped(t *testing.T) {
	line := "1 -5 0 100 4 -1 -1 4 200 -1 1 1 1 -1 -1 -1 -1 -1\n"
	res, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Jobs[0].Submit != 0 {
		t.Fatalf("submit = %d, want 0", res.Trace.Jobs[0].Submit)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse(strings.NewReader("1 2 3\n")); err == nil {
		t.Fatal("short line accepted")
	}
	if _, err := Parse(strings.NewReader(strings.Repeat("x ", 18) + "\n")); err == nil {
		t.Fatal("non-numeric line accepted")
	}
}

func TestParseFloatFields(t *testing.T) {
	// Some archive traces carry float submit times.
	line := "1 12.5 0 100.0 4 -1 -1 4 200 -1 1 1 1 -1 -1 -1 -1 -1\n"
	res, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Jobs[0].Submit != 12 {
		t.Fatalf("float submit parsed to %d, want 12", res.Trace.Jobs[0].Submit)
	}
}

func TestRoundTrip(t *testing.T) {
	tr := &job.Trace{Processors: 64, Note: "synthetic", Jobs: []*job.Job{
		{ID: 1, Submit: 0, Width: 8, Estimate: 3600, Runtime: 1800, User: 2, Group: 1},
		{ID: 2, Submit: 500, Width: 1, Estimate: 60, Runtime: 60, User: 3, Group: 1},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, tr); err != nil {
		t.Fatal(err)
	}
	res, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.Processors != 64 || len(res.Trace.Jobs) != 2 {
		t.Fatalf("round trip lost data: %+v", res.Trace)
	}
	for i, want := range tr.Jobs {
		got := res.Trace.Jobs[i]
		if got.ID != want.ID || got.Submit != want.Submit || got.Width != want.Width ||
			got.Estimate != want.Estimate || got.Runtime != want.Runtime ||
			got.User != want.User || got.Group != want.Group {
			t.Fatalf("job %d round trip mismatch: got %+v want %+v", i, got, want)
		}
	}
}

// Property: Write then Parse preserves every scheduling-relevant field for
// arbitrary valid traces.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		tr := &job.Trace{Processors: 128, Note: "prop"}
		n := r.Intn(20) + 1
		var submit int64
		for i := 0; i < n; i++ {
			submit += int64(r.Intn(1000))
			run := int64(r.Intn(5000) + 1)
			tr.Jobs = append(tr.Jobs, &job.Job{
				ID: i + 1, Submit: submit, Width: r.Intn(128) + 1,
				Estimate: run + int64(r.Intn(1000)), Runtime: run,
				User: r.Intn(50), Group: r.Intn(5),
			})
		}
		var buf bytes.Buffer
		if Write(&buf, tr) != nil {
			return false
		}
		res, err := Parse(&buf)
		if err != nil || res.Skipped != 0 || len(res.Trace.Jobs) != n {
			return false
		}
		for i := range tr.Jobs {
			a, b := tr.Jobs[i], res.Trace.Jobs[i]
			if a.ID != b.ID || a.Submit != b.Submit || a.Width != b.Width ||
				a.Estimate != b.Estimate || a.Runtime != b.Runtime {
				return false
			}
		}
		return res.Trace.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: arbitrary garbage input must produce an error or a valid
// trace — never a panic and never an invalid trace.
func TestParseNeverPanics(t *testing.T) {
	f := func(raw []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse panicked on %q: %v", raw, r)
			}
		}()
		res, err := Parse(bytes.NewReader(raw))
		if err != nil {
			return true
		}
		return res.Trace.Validate() == nil || len(res.Trace.Jobs) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	// Structured near-miss inputs.
	for _, s := range []string{
		"; header only\n",
		"1 0 0 10 0 0 0 0 0 0 1 1 1 0 0 0 0 0\n",  // zero procs: skipped
		"1 0 0 10 2 0 0 2 -5 0 1 1 1 0 0 0 0 0\n", // negative req time
		"nan nan nan nan nan nan nan nan nan nan nan nan nan nan nan nan nan nan\n",
	} {
		if res, err := Parse(strings.NewReader(s)); err == nil {
			if len(res.Trace.Jobs) > 0 {
				if err := res.Trace.Validate(); err != nil {
					t.Fatalf("invalid trace accepted from %q: %v", s, err)
				}
			}
		}
	}
}

// Lenient mode on the corrupt-fixture corpus: truncated records with at
// least the scheduling-relevant leading fields are padded, shorter or
// unparseable ones are counted and skipped, and strict mode still errors
// on every fixture.
func TestParseLenientCorruptCorpus(t *testing.T) {
	cases := []struct {
		file      string
		jobs      int // schedulable jobs recovered in lenient mode
		malformed int
		badLines  []int
		skipped   int
	}{
		// Records 1 and 5 are clean; 2 (5 fields) and 3 (9 fields) are
		// padded; 4 (3 fields) is malformed.
		{"testdata/corrupt_truncated.swf", 4, 1, []int{10}, 0},
		// Records 1, 3 and 5 parse; 2 (bad number) and the garbage line
		// are malformed; 4 is a cancelled job (skipped, not malformed).
		{"testdata/corrupt_garbage.swf", 3, 2, []int{6, 8}, 1},
	}
	for _, tc := range cases {
		raw, err := os.ReadFile(tc.file)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Parse(bytes.NewReader(raw)); err == nil {
			t.Errorf("%s: strict Parse accepted a corrupt trace", tc.file)
		}
		res, err := ParseWith(bytes.NewReader(raw), Options{Lenient: true})
		if err != nil {
			t.Fatalf("%s: lenient parse: %v", tc.file, err)
		}
		if got := len(res.Trace.Jobs); got != tc.jobs {
			t.Errorf("%s: %d jobs, want %d", tc.file, got, tc.jobs)
		}
		if res.Malformed != tc.malformed {
			t.Errorf("%s: Malformed = %d, want %d", tc.file, res.Malformed, tc.malformed)
		}
		if len(res.BadLines) != len(tc.badLines) {
			t.Errorf("%s: BadLines = %v, want %v", tc.file, res.BadLines, tc.badLines)
		} else {
			for i, ln := range tc.badLines {
				if res.BadLines[i] != ln {
					t.Errorf("%s: BadLines = %v, want %v", tc.file, res.BadLines, tc.badLines)
					break
				}
			}
		}
		if res.Skipped != tc.skipped {
			t.Errorf("%s: Skipped = %d, want %d", tc.file, res.Skipped, tc.skipped)
		}
		if err := res.Trace.Validate(); err != nil {
			t.Errorf("%s: recovered trace invalid: %v", tc.file, err)
		}
	}
}

// A truncated record recovered by lenient mode reconstructs the job from
// the leading fields with sentinel fallbacks (width from alloc procs,
// estimate from runtime).
func TestParseLenientPaddedRecord(t *testing.T) {
	res, err := ParseWith(strings.NewReader("7 30 -1 200 8\n"), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace.Jobs) != 1 || res.Malformed != 0 {
		t.Fatalf("jobs=%d malformed=%d, want 1/0", len(res.Trace.Jobs), res.Malformed)
	}
	j := res.Trace.Jobs[0]
	if j.ID != 7 || j.Submit != 30 || j.Runtime != 200 || j.Width != 8 || j.Estimate != 200 {
		t.Fatalf("unexpected job %+v", j)
	}
}

// BadLines is capped but Malformed keeps counting.
func TestParseLenientBadLineCap(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < maxBadLines+25; i++ {
		sb.WriteString("garbage\n")
	}
	res, err := ParseWith(strings.NewReader(sb.String()), Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Malformed != maxBadLines+25 {
		t.Fatalf("Malformed = %d, want %d", res.Malformed, maxBadLines+25)
	}
	if len(res.BadLines) != maxBadLines {
		t.Fatalf("len(BadLines) = %d, want %d", len(res.BadLines), maxBadLines)
	}
}

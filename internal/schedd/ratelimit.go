package schedd

import (
	"sync"
	"time"
)

// rateLimiter is a per-source token bucket: each source accumulates
// tokens at rate per wall second up to burst, and a submission spends
// one token. The zero rate disables limiting.
type rateLimiter struct {
	rate  float64
	burst float64

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int) *rateLimiter {
	if rate <= 0 {
		return nil // nil limiter admits everything
	}
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), buckets: map[string]*bucket{}}
}

// allow reports whether source may submit now, and if not, how long to
// wait for the next token (the Retry-After hint).
func (rl *rateLimiter) allow(source string, now time.Time) (bool, time.Duration) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b, ok := rl.buckets[source]
	if !ok {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[source] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * rl.rate
	if b.tokens > rl.burst {
		b.tokens = rl.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// Anytime serving end-to-end: the SLO drill behind the CI anytime-e2e
// job, plus the incumbent-adoption race test. The drill proves the
// twin/optimizer contract on a sequential (full-width) workload where
// it is structural: deadline-busting submissions are 429ed up front,
// admitted jobs never miss their planned-start SLO (FCFS fallbacks
// keep admission order, and both the step SLO guard and the anytime
// adoption gate refuse deadline-busting reorders), and the background
// optimizer still lands strictly improving incumbents in the slack
// phase. The race test hammers the writer with concurrent submissions
// and injected solve faults while validating every published snapshot
// for capacity consistency on the writer goroutine itself.
package schedd_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/faultinject"
	"repro/internal/job"
	"repro/internal/loadgen"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/solvepipe"
)

// planSink records PlanImproved events and, on every published
// snapshot, re-validates the plan against machine capacity. Callbacks
// run on the writer goroutine between mutation and publish, so a
// failure here is a real adoption race, not a stale-read artifact.
type planSink struct {
	mu        sync.Mutex
	improved  []schedd.PlanImprovement
	snapshots int
	capErrs   []string
	machine   int
}

func (s *planSink) SnapshotPublished(snap *schedd.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.snapshots++
	if err := validatePlanCapacity(snap, s.machine); err != nil {
		s.capErrs = append(s.capErrs, fmt.Sprintf("version %d: %v", snap.Version, err))
	}
}
func (s *planSink) JobPlanned(schedd.JobStatus)   {}
func (s *planSink) JobCompleted(schedd.JobStatus) {}
func (s *planSink) PlanImproved(pi schedd.PlanImprovement) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.improved = append(s.improved, pi)
}

// validatePlanCapacity packs the snapshot's running jobs and planned
// entries into a fresh machine profile: any overflow means an adopted
// plan was staler than the queue state it replaced.
func validatePlanCapacity(snap *schedd.Snapshot, total int) error {
	rs := make([]machine.Running, 0, len(snap.Active))
	for id, st := range snap.Active {
		if st.State != schedd.StateRunning {
			continue
		}
		end := st.Start + st.Estimate
		if end <= snap.Now {
			end = snap.Now + 1
		}
		rs = append(rs, machine.Running{JobID: id, Width: st.Width, End: end})
	}
	h, err := machine.HistoryFromRunning(total, snap.Now, rs)
	if err != nil {
		return fmt.Errorf("running set: %w", err)
	}
	p := h.Profile(total)
	for _, e := range snap.Schedule {
		if e.Start < snap.Now {
			return fmt.Errorf("job %d planned in the past: start %d < now %d", e.JobID, e.Start, snap.Now)
		}
		if err := p.Reserve(e.Start, e.Start+e.Estimate, e.Width); err != nil {
			return fmt.Errorf("job %d: %w", e.JobID, err)
		}
	}
	return nil
}

// fullWidthTrace builds a sequential workload: every job needs the
// whole machine, so any schedule is a permutation and the twin's
// greedy prediction is exact. Runtimes vary (SPT beats FCFS, so the
// optimizer has real improvements to find) while the arrival gap is
// small enough that backlog builds past any fixed deadline.
func fullWidthTrace(n, procs int, gap int64) *job.Trace {
	tr := &job.Trace{Processors: procs, Note: "anytime SLO drill"}
	for i := 0; i < n; i++ {
		rt := int64(100 + (i*397)%900)
		tr.Jobs = append(tr.Jobs, &job.Job{
			ID: i + 1, Submit: int64(i) * gap, Width: procs,
			Estimate: rt, Runtime: rt,
		})
	}
	return tr
}

// fcfsScheduler is a single-policy dynP instance: FCFS keeps admission
// order, which is what makes the drill's zero-miss assertion
// structural rather than statistical.
func fcfsScheduler(t *testing.T) *dynp.Scheduler {
	t.Helper()
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := dynp.New([]policy.Policy{policy.FCFS{}}, m, dynp.AdvancedDecider{})
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

// TestAnytimeSLODrill is the CI drill: deadline-aware admission must
// reject some submissions under backlog, every admitted job must keep
// its planned-start SLO, and the background optimizer must adopt
// incumbents and surface them as plan-improved events.
func TestAnytimeSLODrill(t *testing.T) {
	const (
		nJobs    = 40
		procs    = 16
		gapS     = 150  // virtual seconds between submissions
		deadline = 6000 // per-job start SLO, virtual seconds
	)
	tr := fullWidthTrace(nJobs, procs, gapS)
	sink := &planSink{machine: procs}
	reg := obs.NewRegistry()
	core, err := schedd.New(schedd.Config{
		Machine:       procs,
		Scheduler:     fcfsScheduler(t),
		Clock:         schedd.NewWallClock(1000),
		QueueBound:    256,
		MaxBatch:      16,
		MaxBatchDelay: 2 * time.Millisecond,
		ReplanBuffer:  4096,
		Events:        sink,
		// The virtual clock runs on during writer passes, so actual
		// starts slip behind the twin's prediction by the accumulated
		// processing latency; the margin absorbs that slip (at accel
		// 1000, 1200 virtual seconds = 1.2 s of writer wall time over a
		// job's whole wait).
		SLOMargin: 1200,
		ILP: &schedd.ILPConfig{
			// The interval solver is starved on purpose: with a 1 ms
			// budget nearly every step falls back to the FCFS schedule,
			// so every optimization the run sees comes from the
			// background core — the "CPLEX keeps improving the active
			// plan" mode of §4, with the self-tuning step reduced to
			// keeping the plan fresh.
			Pipe: solvepipe.Config{
				Budget: time.Millisecond,
				MIP:    mip.Options{MaxNodes: 200000},
			},
			Anytime:       true,
			AnytimeBudget: 2 * time.Second,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Start()
	srv := httptest.NewServer(schedd.NewHandler(core))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:      srv.URL,
		Trace:        tr,
		Accel:        1000,
		Sources:      2,
		WaitTimeout:  2 * time.Minute,
		SLODeadlineS: deadline,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("anytime SLO drill:\n%s", res)

	if res.TransportErrors > 0 {
		t.Errorf("%d transport errors", res.TransportErrors)
	}
	// (a) Backlog must exceed the deadline at some point: the twin has
	// to turn submissions away with deadline-aware 429s.
	if res.RejectedSLO == 0 {
		t.Error("no deadline-aware 429s: the twin never rejected a submission")
	}
	if res.Accepted == 0 || res.Accepted == res.Submitted {
		t.Errorf("accepted %d of %d: the drill needs both admitted and rejected jobs",
			res.Accepted, res.Submitted)
	}
	// (b) Zero admitted jobs miss their planned-start SLO: FCFS keeps
	// admission order, and the step SLO guard plus the anytime adoption
	// gate refuse any reordering past a deadline.
	if res.SLOMisses != 0 {
		t.Errorf("%d admitted jobs were planned past their deadline", res.SLOMisses)
	}
	// (c) The background optimizer must actually improve the serving
	// plan, not just burn cycles.
	if res.AnytimeAdopted == 0 {
		t.Error("no anytime incumbents adopted")
	}
	if res.DroppedAccepted != 0 {
		t.Errorf("%d accepted jobs were never planned", res.DroppedAccepted)
	}

	sink.mu.Lock()
	improved := len(sink.improved)
	for _, pi := range sink.improved {
		if pi.Jobs <= 0 || pi.Seq <= 0 || pi.Objective <= 0 {
			t.Errorf("malformed plan-improved event: %+v", pi)
		}
	}
	capErrs := append([]string(nil), sink.capErrs...)
	sink.mu.Unlock()
	if improved == 0 {
		t.Error("no PlanImproved events despite adopted incumbents")
	}
	for _, e := range capErrs {
		t.Errorf("snapshot capacity violation: %s", e)
	}

	// The health endpoint must expose plan freshness.
	hr, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health schedd.HealthJSON
	if err := json.NewDecoder(hr.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if health.PlanAgeMs < 0 {
		t.Errorf("negative plan age %f", health.PlanAgeMs)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := core.Stop(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if final.Counts.Planned != int64(res.Accepted) {
		t.Errorf("drained with %d planned of %d accepted", final.Counts.Planned, res.Accepted)
	}
	// Deadlines and the latched miss flag must be visible per job; with
	// zero misses, no status may carry one.
	for id, st := range final.Active {
		if st.SLOMiss {
			t.Errorf("job %d latched an SLO miss in the final snapshot", id)
		}
	}
}

// TestAnytimeAdoptionRace floods the writer with concurrent
// submissions while the background optimizer races it with incumbents
// and a fault injector breaks a third of the solves. Run under -race
// this is the adoption-staleness drill: every published snapshot is
// capacity-validated on the writer goroutine, so an incumbent adopted
// against outdated queue state surfaces as a hard failure, not a
// heisenbug.
func TestAnytimeAdoptionRace(t *testing.T) {
	const (
		nJobs = 150
		procs = 32
	)
	inj := faultinject.New(faultinject.NewProbability(11, 0.3))
	sink := &planSink{machine: procs}
	reg := obs.NewRegistry()
	core, err := schedd.New(schedd.Config{
		Machine:       procs,
		Scheduler:     fcfsScheduler(t),
		Clock:         schedd.NewWallClock(20000),
		QueueBound:    1024,
		MaxBatch:      32,
		MaxBatchDelay: time.Millisecond,
		Events:        sink,
		ILP: &schedd.ILPConfig{
			// Starved steps (most fall back to the policy schedule, some
			// fault outright) leave suboptimal plans behind on purpose:
			// the background optimizer then has real improvements to
			// race the writer with.
			Pipe: solvepipe.Config{
				Budget: 2 * time.Millisecond,
				MIP:    mip.Options{MaxNodes: 200000},
				Hook:   inj.Hook,
			},
			Anytime:       true,
			AnytimeBudget: 300 * time.Millisecond,
		},
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Start()

	var wg sync.WaitGroup
	accepted := make([]int, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < nJobs; i += 8 {
				est := int64(60 + (i*113)%600)
				_, err := core.Submit(schedd.SubmitRequest{
					Width:    1 + i%8,
					Estimate: est,
					Runtime:  est,
					Source:   fmt.Sprintf("src-%d", w),
				})
				if err != nil {
					t.Errorf("submit %d: %v", i, err)
					return
				}
				accepted[w]++
				time.Sleep(time.Duration(2+i%7) * time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	// Quiet settle window: with submissions over, the optimizer gets
	// uninterrupted sessions against a stable queue — the adoption
	// nudge path runs against live completions instead of going stale
	// on every batch.
	time.Sleep(300 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := core.Stop(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	total := 0
	for _, n := range accepted {
		total += n
	}
	if total != nJobs {
		t.Fatalf("accepted %d of %d", total, nJobs)
	}
	if final.Counts.Planned != int64(nJobs) {
		t.Errorf("drained with %d planned of %d accepted", final.Counts.Planned, nJobs)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	for _, e := range sink.capErrs {
		t.Errorf("snapshot capacity violation: %s", e)
	}
	if sink.snapshots == 0 {
		t.Error("no snapshots published")
	}
	// Counter consistency: the writer can only adopt incumbents the
	// solver published, and every inspected incumbent lands in exactly
	// one bucket.
	found := reg.Counter("anytime.incumbents.found").Value()
	adopted := reg.Counter("anytime.incumbents.adopted").Value()
	stale := reg.Counter("anytime.incumbents.stale").Value()
	rejected := reg.Counter("anytime.incumbents.rejected").Value()
	if adopted != core.AnytimeAdopted() {
		t.Errorf("AnytimeAdopted()=%d, counter=%d", core.AnytimeAdopted(), adopted)
	}
	if adopted+stale+rejected > found {
		t.Errorf("inspected %d incumbents (adopted %d, stale %d, rejected %d) but only %d were published",
			adopted+stale+rejected, adopted, stale, rejected, found)
	}
	if len(sink.improved) != int(adopted) {
		t.Errorf("%d PlanImproved events for %d adoptions", len(sink.improved), adopted)
	}
	t.Logf("race drill: %d snapshots, incumbents found %d / adopted %d / stale %d / rejected %d, %d faults injected",
		sink.snapshots, found, adopted, stale, rejected, len(inj.Injected()))
}

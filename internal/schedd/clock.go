// Clock abstraction of the scheduling service: the replan loop and the
// API report times in virtual seconds (the trace time base of the rest
// of the repository), while timers and batching delays run on the wall
// clock. A WallClock with Accel > 1 compresses trace time so the same
// service core serves live traffic (Accel 1) and accelerated replay.
package schedd

import (
	"sync/atomic"
	"time"
)

// Clock maps between virtual trace seconds and wall time.
type Clock interface {
	// Now returns the current virtual time in seconds.
	Now() int64
	// Until returns the wall-clock duration until virtual instant v
	// (zero or negative when v is not in the future).
	Until(v int64) time.Duration
}

// WallClock derives virtual time from the wall clock: virtual second v
// is reached Accel times faster than real time. The zero Accel means 1
// (live time). The epoch is atomic so Resume can rebase a restarted
// service onto its recovered virtual time while readers keep calling
// Now.
type WallClock struct {
	epochNano atomic.Int64
	accel     float64
}

// NewWallClock starts a wall-backed virtual clock at virtual second 0.
func NewWallClock(accel float64) *WallClock {
	if accel <= 0 {
		accel = 1
	}
	c := &WallClock{accel: accel}
	c.epochNano.Store(time.Now().UnixNano())
	return c
}

// Accel returns the acceleration factor.
func (c *WallClock) Accel() float64 { return c.accel }

// Now returns elapsed wall seconds times the acceleration factor.
func (c *WallClock) Now() int64 {
	elapsed := time.Duration(time.Now().UnixNano() - c.epochNano.Load())
	return int64(elapsed.Seconds() * c.accel)
}

// Resume rebases the clock so Now() reads v right now — how WAL
// recovery continues the crashed process's virtual timeline instead of
// restarting trace time from zero (planned starts recovered from the
// log would otherwise wait out a whole replayed epoch).
func (c *WallClock) Resume(v int64) {
	off := time.Duration(float64(v) / c.accel * float64(time.Second))
	c.epochNano.Store(time.Now().Add(-off).UnixNano())
}

// Until converts a virtual deadline into a wall duration.
func (c *WallClock) Until(v int64) time.Duration {
	d := time.Duration(float64(v-c.Now()) / c.accel * float64(time.Second))
	if d < 0 {
		return 0
	}
	return d
}

// ManualClock is a test clock: virtual time only moves via Set/Advance,
// so a service driven by it reacts to submissions alone and never fires
// completion or start timers on its own (Until reports a far-future
// wall duration for any instant beyond Now).
type ManualClock struct {
	now atomic.Int64
}

// NewManualClock returns a manual clock at virtual second v.
func NewManualClock(v int64) *ManualClock {
	c := &ManualClock{}
	c.now.Store(v)
	return c
}

// Now returns the manually set virtual time.
func (c *ManualClock) Now() int64 { return c.now.Load() }

// Set moves virtual time to v.
func (c *ManualClock) Set(v int64) { c.now.Store(v) }

// Advance moves virtual time forward by d seconds.
func (c *ManualClock) Advance(d int64) { c.now.Add(d) }

// Until returns an hour for future instants so that manual-clock timers
// effectively never fire by themselves; tests advance the clock and
// poke the service instead.
func (c *ManualClock) Until(v int64) time.Duration {
	if v <= c.Now() {
		return 0
	}
	return time.Hour
}

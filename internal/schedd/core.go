// Package schedd is the online scheduling service core of the
// reproduction: it wraps the self-tuning dynP step (internal/dynp) and
// the fault-tolerant ILP solve pipeline (internal/solvepipe) behind a
// submission API, turning the batch simulator's replan-per-event loop
// into a production-shaped serving loop.
//
// The design is a single-writer replan loop with lock-free read
// snapshots: exactly one goroutine mutates scheduler state (the paper's
// planning-based RMS is inherently serial — every plan is a function of
// the full queue), while query traffic reads an immutable *Snapshot
// published through an atomic pointer. Around that loop sit the serving
// concerns the batch CLIs never needed:
//
//   - submission batching: a burst of arrivals is coalesced into ONE
//     self-tuning step (bounded by MaxBatch and MaxBatchDelay) instead
//     of replanning per job;
//   - admission control: a bounded submit queue (ErrQueueFull maps to
//     HTTP 429 + Retry-After) and per-source token-bucket rate limiting;
//   - graceful drain: Stop finishes the in-flight replan, plans every
//     already-admitted submission, and publishes a final snapshot, so
//     an accepted job is never dropped;
//   - degradation surfacing: when the ILP pipeline exhausts its retry
//     ladder the step falls back to the basic-policy schedule and the
//     API reports degraded=true with the failure reason.
//
// Time is virtual (trace seconds) via the Clock abstraction, so the
// same core serves live traffic (wall clock) and accelerated trace
// replay (internal/loadgen).
package schedd

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/anytime"
	"repro/internal/dynp"
	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
	"repro/internal/wal"
)

// Admission errors. The HTTP layer maps ErrQueueFull and
// *RateLimitedError to 429 with a Retry-After hint, ErrDraining to 503.
var (
	ErrQueueFull = errors.New("schedd: submit queue full")
	ErrDraining  = errors.New("schedd: draining, not accepting submissions")
	ErrStopped   = errors.New("schedd: service stopped")
)

// RateLimitedError reports a per-source rate-limit rejection.
type RateLimitedError struct {
	Source     string
	RetryAfter time.Duration
}

func (e *RateLimitedError) Error() string {
	return fmt.Sprintf("schedd: source %q rate limited (retry after %v)", e.Source, e.RetryAfter)
}

// SLOExceededError reports a deadline-aware admission rejection: the
// digital twin predicted a planned start past the client's SLO deadline,
// so admitting the job would only manufacture a guaranteed miss. The
// HTTP layer maps it to 429 with a Retry-After hint sized to when the
// predicted backlog would clear enough for the deadline to be met.
type SLOExceededError struct {
	// Deadline is the absolute virtual latest acceptable start.
	Deadline int64
	// PredictedStart is the twin's earliest-fit planned start.
	PredictedStart int64
	// RetryAfter is the wall-clock hint until resubmission could fit.
	RetryAfter time.Duration
}

func (e *SLOExceededError) Error() string {
	return fmt.Sprintf("schedd: slo_deadline: predicted start %d past deadline %d (retry after %v)",
		e.PredictedStart, e.Deadline, e.RetryAfter)
}

// ValidationError reports a malformed submission (HTTP 400).
type ValidationError struct{ Reason string }

func (e *ValidationError) Error() string { return "schedd: invalid submission: " + e.Reason }

// JobState is the lifecycle of a served job.
type JobState string

const (
	// StateQueued: admitted, waiting for the next self-tuning step.
	StateQueued JobState = "queued"
	// StateWaiting: planned with a future start time.
	StateWaiting JobState = "waiting"
	// StateRunning: started; End is the projected completion.
	StateRunning JobState = "running"
	// StateDone: completed.
	StateDone JobState = "done"
)

// SubmitRequest is one job submission.
type SubmitRequest struct {
	// Width is the requested processor count (1..machine size).
	Width int
	// Estimate is the user-supplied estimated duration in seconds.
	Estimate int64
	// Runtime is the actual duration for self-executing (replay) mode;
	// zero defaults to Estimate. Must not exceed Estimate.
	Runtime int64
	// Source identifies the submitter for rate limiting ("" = anonymous).
	Source string
	// IdempotencyKey, if non-empty, dedupes resubmissions: a second
	// submit with the same key (including after a crash and recovery)
	// returns the original job's ID with Deduplicated set instead of
	// admitting a duplicate.
	IdempotencyKey string
	// Deadline, if > 0, is the client's SLO on the planned start in
	// virtual seconds relative to admission: the job must be planned to
	// start no later than now+Deadline. Admission runs the digital-twin
	// check (see SLOExceededError); 0 means no SLO.
	Deadline int64
}

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	ID    int      `json:"id"`
	State JobState `json:"state"`
	Now   int64    `json:"now"`
	// TraceID echoes the request's trace ID ("" when untraced) so the
	// submitter can grep the JSONL trace for the job's whole path.
	TraceID string `json:"trace_id,omitempty"`
	// Deduplicated reports the submission matched an earlier job's
	// idempotency key; ID is that job's ID and no new job was admitted.
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Shard is the shard the job was routed to (filled by the front-end
	// router; always 0 on a standalone core).
	Shard int `json:"shard,omitempty"`
}

// JobStatus is the queryable state of one job.
type JobStatus struct {
	ID           int      `json:"id"`
	State        JobState `json:"state"`
	Width        int      `json:"width"`
	Estimate     int64    `json:"estimate_s"`
	Submit       int64    `json:"submit"`
	PlannedStart int64    `json:"planned_start"` // -1 until planned
	Start        int64    `json:"start"`         // -1 until started
	End          int64    `json:"end"`           // -1 until done (running: projection)
	// PlanLatencyMs is the wall-clock time from admission to the first
	// adopted plan containing the job (-1 until planned).
	PlanLatencyMs float64 `json:"plan_latency_ms"`
	// Degraded reports that the step that (last) planned the job fell
	// back to the basic-policy schedule.
	Degraded bool `json:"degraded,omitempty"`
	// Deadline is the absolute virtual latest acceptable planned start
	// the job was admitted with (0 = no SLO).
	Deadline int64 `json:"deadline,omitempty"`
	// SLOMiss reports the job was, at some point, planned to start past
	// its deadline (latched: once missed, always reported).
	SLOMiss bool `json:"slo_miss,omitempty"`
	// TraceID is the request trace ID the job was submitted with.
	TraceID string `json:"trace_id,omitempty"`
	// Shard is the shard that owns the job in a sharded deployment
	// (filled by the front-end router; always 0 on a standalone core).
	Shard int `json:"shard,omitempty"`
}

// PlannedEntry is one row of the published schedule.
type PlannedEntry struct {
	JobID    int   `json:"id"`
	Width    int   `json:"width"`
	Start    int64 `json:"start"`
	Estimate int64 `json:"estimate_s"`
}

// Counters are the snapshot's monotone totals.
type Counters struct {
	Submitted     int64 `json:"submitted"`
	Planned       int64 `json:"planned"`
	Started       int64 `json:"started"`
	Completed     int64 `json:"completed"`
	Steps         int64 `json:"steps"`
	Replans       int64 `json:"replans"`
	Batches       int64 `json:"batches"`
	BatchedJobs   int64 `json:"batched_jobs"`
	DegradedSteps int64 `json:"degraded_steps"`
}

// Snapshot is an immutable view of the service, published by the
// writer loop after every state change and read lock-free by query
// traffic. Jobs that are admitted but not yet planned, and jobs that
// already completed, are tracked separately (see Core.Job).
type Snapshot struct {
	// Now is the virtual time of publication.
	Now int64 `json:"now"`
	// Version increments with every published snapshot.
	Version int64 `json:"version"`
	// Draining reports the service no longer accepts submissions.
	Draining bool `json:"draining"`
	// Active holds every planned-but-not-completed job by ID.
	Active map[int]JobStatus `json:"-"`
	// Schedule is the current plan: waiting jobs by (start, ID).
	Schedule []PlannedEntry `json:"schedule"`
	// Degraded reports the most recent self-tuning step fell back to
	// the basic-policy schedule; Reason classifies why.
	Degraded       bool   `json:"degraded"`
	DegradedReason string `json:"degraded_reason,omitempty"`
	// Policy is the currently active dynP policy.
	Policy string `json:"policy"`
	// Counts are the monotone service totals.
	Counts Counters `json:"counts"`
}

// ILPConfig enables ILP-driven steps: every self-tuning step is solved
// through the solvepipe retry ladder and the compacted optimal schedule
// replaces the basic-policy one. Unlike sim.ILPConfig there is no
// abort-on-failure mode: a serving process always degrades gracefully.
type ILPConfig struct {
	// Pipe parameterizes the retry ladder; Trace/Metrics/Seed/Cache
	// default per step like in the simulator.
	Pipe solvepipe.Config
	// StepCacheOff disables the cross-step solution cache.
	StepCacheOff bool
	// StepCacheSize overrides the cache capacity (default 64).
	StepCacheSize int
	// ReuseOff disables seeding from the previous step's ILP schedule.
	ReuseOff bool
	// Anytime runs the background anytime-optimizer core alongside the
	// per-step solves: the branch and bound keeps improving the adopted
	// plan between replan intervals, and every strictly better validated
	// incumbent is adopted and published without blocking the writer.
	Anytime bool
	// AnytimeBudget bounds one anytime solve session (default: the
	// pipeline's Budget default). A session also ends when the queue
	// changes (preemption) or the search proves optimality.
	AnytimeBudget time.Duration
}

// Config parameterizes the service core.
type Config struct {
	// Machine is the processor count (required).
	Machine int
	// Scheduler is the self-tuning dynP scheduler (required). The core
	// is its only user once Start is called.
	Scheduler *dynp.Scheduler
	// Clock drives virtual time; nil defaults to NewWallClock(1).
	Clock Clock
	// QueueBound caps the submit queue (default 256). A full queue
	// rejects with ErrQueueFull.
	QueueBound int
	// MaxBatch caps how many arrivals one self-tuning step coalesces
	// (default 64). 1 replans per submission (batching off).
	MaxBatch int
	// MaxBatchDelay is how long the writer waits for more arrivals
	// after the first of a batch. Zero coalesces only submissions that
	// are already queued (no added latency).
	MaxBatchDelay time.Duration
	// RatePerSource, if > 0, enforces a per-source token bucket of this
	// many submissions per wall second with the given Burst (default 1).
	RatePerSource float64
	Burst         int
	// WFQRate, if > 0, replaces the flat per-source token bucket with
	// weighted fair queueing across sources: the aggregate admission
	// rate (submissions per wall second) is shared by virtual-time fair
	// queueing, so a lone source may use the whole rate while
	// concurrent sources converge to weighted fair shares instead of
	// each being capped at a fixed slice. Takes precedence over
	// RatePerSource when both are set.
	WFQRate float64
	// WFQBurst is the fair queue's tolerance in admissions (default 1):
	// how far a source's virtual finish may run ahead of the aggregate
	// virtual clock before it is rejected with Retry-After.
	WFQBurst int
	// WFQWeights maps source names to relative weights (default 1.0
	// for unlisted sources): a weight-2 source gets twice the share
	// under contention.
	WFQWeights map[string]float64
	// AdaptiveBatch sizes the batch-collection delay from the observed
	// arrival rate instead of always waiting the full MaxBatchDelay:
	// the writer waits just long enough for the expected batch
	// occupancy to reach BatchSetpoint·MaxBatch, capped at
	// MaxBatchDelay. Idle periods pay no added latency; bursts fill
	// batches without stretching the wait.
	AdaptiveBatch bool
	// BatchSetpoint is the target batch occupancy as a fraction of
	// MaxBatch (default 0.5).
	BatchSetpoint float64
	// SLOMargin is the safety headroom (virtual seconds) the digital
	// twin adds to its predicted start before comparing it against a
	// submission's deadline. The prediction is exact only at admission
	// time: between admission and every later handoff the virtual
	// clock keeps running while the writer batches, solves and adopts,
	// so actual starts slip behind the prediction by the accumulated
	// processing latency. A margin covering that slip turns the
	// deadline check from best-effort into a guarantee the planner
	// paths (FCFS order, step SLO guard, anytime adoption gate) can
	// actually keep. Zero (the default) admits up to the exact
	// predicted deadline.
	SLOMargin int64
	// TwinGateOff records submission deadlines (and latches SLO misses
	// against them) without letting the digital twin reject anything:
	// every deadline-bearing job is admitted no matter how hopeless its
	// predicted start. This is the pre-twin serving behavior, kept as a
	// measurement baseline — the serving benchmark runs one leg with the
	// gate off to price what the admission twin saves.
	TwinGateOff bool
	// ILP, if non-nil, drives steps through the solve pipeline.
	ILP *ILPConfig
	// Trace and Metrics are the observability sinks (nil-safe).
	Trace   *obs.Tracer
	Metrics *obs.Registry
	// ReplanBuffer caps the flight recorder's ring of replan summaries
	// (default 64). The recorder is always on.
	ReplanBuffer int
	// SlowReplan, if > 0, is the wall-clock threshold past which a
	// replan's reconstructed span tree is dumped to Trace — even when
	// step tracing is sampled off via TraceSampleEvery.
	SlowReplan time.Duration
	// TraceSampleEvery, if > 1, traces only every Nth step/replan span
	// (and its solver internals). Per-job request events (submit,
	// batched, planned, published, start, end), the flight recorder and
	// slow-replan dumps are never sampled away.
	TraceSampleEvery int
	// WAL, if non-nil, makes every admission decision durable: a
	// submission is fsynced (group commit) before Submit returns, and
	// plan adoptions, starts, completions and rejections are logged by
	// the writer loop. The core owns appends but not the log's
	// lifecycle; the caller opens it (wal.Open) and closes it after
	// Stop.
	WAL *wal.Log
	// Recovery is the replay returned by wal.Open; the writer re-applies
	// it before accepting traffic (Submit returns ErrRecovering until
	// then, and Phase reports "replaying").
	Recovery *wal.Replay
	// SnapshotEvery is how many WAL records accumulate between state
	// snapshots (default 1024; snapshots bound replay time).
	SnapshotEvery int
	// PanicHook, if non-nil, is invoked with the recovered panic value
	// when the writer loop panics, before the panic is re-raised — the
	// place to flush tracers and dump the flight recorder for post-crash
	// forensics.
	PanicHook func(any)
	// Events, if non-nil, receives writer-loop lifecycle events
	// (snapshot publications, first plans, completions) for streaming
	// transports. Callbacks run on the writer goroutine and must not
	// block.
	Events EventSink
	// ShardID identifies this core within a sharded fabric (0 for a
	// standalone core). It namespaces the synthetic idempotency keys the
	// migration protocol mints, so keys from different source shards can
	// never collide at a target.
	ShardID int
	// PlanLatencyWindow is how much recent history PlanLatencyQuantile
	// covers (default 15s). The rebalance signal must track *current*
	// shard behavior: a lifetime-cumulative quantile would keep a
	// transient slowdown visible forever and migrate jobs off a shard
	// long after it recovered.
	PlanLatencyWindow time.Duration
}

// submission travels from the admission path to the writer loop.
type submission struct {
	job       *job.Job
	source    string
	trace     string // request trace ID ("" when untraced)
	idemKey   string // idempotency key ("" = unkeyed; keyed jobs never migrate)
	deadline  int64  // absolute virtual SLO deadline on the planned start (0 = none)
	admitWall time.Time
	walSeq    uint64 // the submit record's WAL seq (0 without a WAL)
}

// rec is the writer-side record of an active job.
type rec struct {
	job          *job.Job
	admitWall    time.Time
	trace        string
	planned      bool
	planLatency  time.Duration
	plannedStart int64
	start        int64
	degraded     bool
	deadline     int64 // absolute virtual SLO deadline (0 = none)
	sloMiss      bool  // latched on the first plan past the deadline
}

// Core is the scheduling service. Create with New, then Start; submit
// with Submit; stop with Stop.
type Core struct {
	cfg     Config
	clock   Clock
	total   int
	limiter *rateLimiter
	wfq     *wfqLimiter

	submitCh chan *submission
	drainCh  chan chan *Snapshot
	loopDone chan struct{}

	gate     sync.RWMutex // serializes Submit sends against drain
	draining bool
	started  atomic.Bool
	stopOnce sync.Once
	final    *Snapshot
	stopErr  error

	nextID   atomic.Int64
	accepted atomic.Int64
	pending  sync.Map // id -> JobStatus, admitted but not yet planned
	// twinMu serializes deadline-bearing admissions from twin
	// prediction through the pending-store, so every prediction sees
	// all previously admitted jobs (see SubmitCtx).
	twinMu sync.Mutex
	done   sync.Map // id -> JobStatus, completed (write-once)
	snap   atomic.Pointer[Snapshot]

	// Durability state (see durable.go). phase gates Submit during WAL
	// replay; idem maps idempotency keys to job IDs; inflight holds the
	// WAL seqs of accepted submissions the writer has not yet consumed
	// (the snapshot lower bound); lastSnapSeq is writer-owned.
	phase       atomic.Int32
	idem        sync.Map // idempotency key -> job ID
	inflightMu  sync.Mutex
	inflight    map[uint64]struct{}
	lastSnapSeq uint64

	// Migration state (see migrate.go): pendingMig holds migrated-out
	// jobs whose hand-off to the target shard has not been confirmed;
	// migAliases maps a migrated job's local ID to its new global ID at
	// the target. Both survive crashes through the WAL.
	migMu      sync.Mutex
	pendingMig map[int]MigratedJob
	migAliases map[int]int64

	// Writer-loop state (owned by run()).
	vnow      int64
	waiting   map[int]*job.Job
	recs      map[int]*rec
	running   map[int]*rec
	plan      map[int]int64
	stepCache *solvepipe.StepCache
	lastILP   *schedule.Schedule
	version   int64
	counts    Counters
	degraded  bool
	degReason string
	// newlyPlanned defers pending-map deletion until the snapshot that
	// carries the job is published, so a concurrent Job() lookup never
	// falls into the gap between the two.
	newlyPlanned []int

	// Flight recorder and step-span sampling state (stepSeq is owned by
	// the writer loop).
	recorder *flightRecorder
	stepSeq  int64

	// Anytime-optimizer state. The background core (nil when off) is
	// fed the latest problem after every writer mutation; anyNudge is
	// the nonblocking wake-up the core's Notify fires; the lastAny*
	// fields are the writer's staleness key for adoption (they describe
	// the most recently pushed problem). anyDirty marks that this
	// writer pass mutated queue state and the core needs a fresh push.
	any         *anytime.Core
	anyNudge    chan struct{}
	lastAnyInst *ilpsched.Instance
	lastAnyFp   uint64
	lastAnySeq  int64
	anyDirty    bool

	// Adaptive batching state (writer-owned): an EWMA of the wall-clock
	// arrival rate, sampled from the accepted counter between batches.
	arrRate      float64 // jobs per wall second
	lastArrWall  time.Time
	lastArrCount int64

	// lastPlanWall is the wall-clock time of the last plan adoption
	// (unix nanos, atomic: written by the writer, read by health and
	// metrics handlers for the plan-age gauge).
	lastPlanWall atomic.Int64

	// Observability instruments (nil-safe).
	trace        *obs.Tracer
	cSubmits     *obs.Counter
	cRejectFull  *obs.Counter
	cRejectRate  *obs.Counter
	cRejectDrain *obs.Counter
	cRejectRecov *obs.Counter
	cDeduped     *obs.Counter
	cSteps       *obs.Counter
	cReplans     *obs.Counter
	cBatches     *obs.Counter
	cPlanned     *obs.Counter
	cStarts      *obs.Counter
	cEnds        *obs.Counter
	cDegraded    *obs.Counter
	cRejectSLO   *obs.Counter
	cSLOMiss     *obs.Counter
	cSLOGuard    *obs.Counter
	cAnyAdopted  *obs.Counter
	cAnyStale    *obs.Counter
	cAnyRejected *obs.Counter
	gPlanAge     *obs.Gauge
	gBatchDelay  *obs.Gauge
	hBatchSize   *obs.Histogram
	hQueueDepth  *obs.Histogram
	hPlanLatency *obs.Histogram
	// winPlanLat is the sliding-window twin of hPlanLatency: the
	// rebalance signal reads this one (recent behavior), the cumulative
	// histogram stays for metrics export. Always present, so the signal
	// works even without a metrics registry.
	winPlanLat *obs.WindowedHistogram
	// Labeled families (bounded cardinality; see obs.MaxSeries).
	vSubmits    *obs.CounterVec   // by source
	vStepOut    *obs.CounterVec   // by outcome, policy
	vDegReason  *obs.CounterVec   // by bounded reason class
	hvReplanDur *obs.HistogramVec // by replan kind
}

// New validates the configuration and creates a stopped core.
func New(cfg Config) (*Core, error) {
	if cfg.Machine < 1 {
		return nil, fmt.Errorf("schedd: machine size %d < 1", cfg.Machine)
	}
	if cfg.Scheduler == nil {
		return nil, errors.New("schedd: nil scheduler")
	}
	if cfg.Clock == nil {
		cfg.Clock = NewWallClock(1)
	}
	if cfg.QueueBound < 1 {
		cfg.QueueBound = 256
	}
	if cfg.MaxBatch < 1 {
		cfg.MaxBatch = 64
	}
	if cfg.SnapshotEvery < 1 {
		cfg.SnapshotEvery = 1024
	}
	if cfg.BatchSetpoint <= 0 || cfg.BatchSetpoint > 1 {
		cfg.BatchSetpoint = 0.5
	}
	c := &Core{
		cfg:        cfg,
		clock:      cfg.Clock,
		total:      cfg.Machine,
		limiter:    newRateLimiter(cfg.RatePerSource, cfg.Burst),
		wfq:        newWFQLimiter(cfg.WFQRate, cfg.WFQBurst, cfg.WFQWeights),
		submitCh:   make(chan *submission, cfg.QueueBound),
		drainCh:    make(chan chan *Snapshot),
		loopDone:   make(chan struct{}),
		waiting:    map[int]*job.Job{},
		recs:       map[int]*rec{},
		running:    map[int]*rec{},
		plan:       map[int]int64{},
		inflight:   map[uint64]struct{}{},
		pendingMig: map[int]MigratedJob{},
		migAliases: map[int]int64{},
	}
	if cfg.WAL != nil {
		// Submissions are refused until the writer loop has replayed the
		// log (Start flips the phase to ready once recovery finishes).
		c.phase.Store(phaseReplaying)
	}
	if cfg.ILP != nil && !cfg.ILP.StepCacheOff && cfg.ILP.Pipe.Cache == nil {
		c.stepCache = solvepipe.NewStepCache(cfg.ILP.StepCacheSize)
	}
	c.recorder = newFlightRecorder(cfg.ReplanBuffer)
	c.trace = cfg.Trace
	latBounds := []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 5000}
	c.winPlanLat = obs.NewWindowedHistogram(latBounds, cfg.PlanLatencyWindow, 5)
	if reg := cfg.Metrics; reg != nil {
		depthBounds := []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256}
		c.cSubmits = reg.Counter("schedd.submits")
		c.cRejectFull = reg.Counter("schedd.rejects.queue_full")
		c.cRejectRate = reg.Counter("schedd.rejects.rate_limited")
		c.cRejectDrain = reg.Counter("schedd.rejects.draining")
		c.cRejectRecov = reg.Counter("schedd.rejects.recovering")
		c.cDeduped = reg.Counter("schedd.submits.deduplicated")
		c.cSteps = reg.Counter("schedd.steps")
		c.cReplans = reg.Counter("schedd.replans")
		c.cBatches = reg.Counter("schedd.batches")
		c.cPlanned = reg.Counter("schedd.jobs.planned")
		c.cStarts = reg.Counter("schedd.starts")
		c.cEnds = reg.Counter("schedd.completions")
		c.cDegraded = reg.Counter("schedd.degraded.steps")
		c.cRejectSLO = reg.Counter("schedd.rejects.slo_deadline")
		c.cSLOMiss = reg.Counter("schedd.slo.misses")
		c.cSLOGuard = reg.Counter("schedd.steps.slo_guarded")
		c.cAnyAdopted = reg.Counter("anytime.incumbents.adopted")
		c.cAnyStale = reg.Counter("anytime.incumbents.stale")
		c.cAnyRejected = reg.Counter("anytime.incumbents.rejected")
		c.gPlanAge = reg.Gauge("schedd.plan.age.ms")
		c.gBatchDelay = reg.Gauge("schedd.batch.delay.ms")
		c.hBatchSize = reg.Histogram("schedd.batch.size", depthBounds)
		c.hQueueDepth = reg.Histogram("schedd.queue_depth", depthBounds)
		c.hPlanLatency = reg.Histogram("schedd.submit_to_plan_ms", latBounds)
		c.vSubmits = reg.CounterVec("schedd.submits.by_source", "source")
		c.vStepOut = reg.CounterVec("schedd.step.outcome", "outcome", "policy")
		c.vDegReason = reg.CounterVec("schedd.degraded.by_reason", "reason")
		c.hvReplanDur = reg.HistogramVec("schedd.replan.duration.ms", latBounds, "kind")
	}
	if cfg.Trace != nil || cfg.Metrics != nil {
		cfg.Scheduler.SetObs(cfg.Trace, cfg.Metrics)
	}
	if cfg.ILP != nil && cfg.ILP.Anytime {
		c.anyNudge = make(chan struct{}, 1)
		pipe := cfg.ILP.Pipe
		if cfg.ILP.AnytimeBudget > 0 {
			pipe.Budget = cfg.ILP.AnytimeBudget
		}
		c.any = anytime.New(anytime.Config{
			Pipe:    pipe,
			Trace:   cfg.Trace,
			Metrics: cfg.Metrics,
			Notify: func() {
				select {
				case c.anyNudge <- struct{}{}:
				default:
				}
			},
		})
	}
	c.lastPlanWall.Store(time.Now().UnixNano())
	c.publish()
	return c, nil
}

// Start launches the writer loop. It must be called exactly once.
func (c *Core) Start() {
	if !c.started.CompareAndSwap(false, true) {
		panic("schedd: Start called twice")
	}
	go c.run()
}

// Machine returns the processor count.
func (c *Core) Machine() int { return c.total }

// Metrics returns the registry the core was configured with (may be nil).
func (c *Core) Metrics() *obs.Registry { return c.cfg.Metrics }

// QueueDepth returns the current admitted-but-unplanned backlog.
func (c *Core) QueueDepth() int { return len(c.submitCh) }

// PlanLatencyQuantile estimates the q-quantile of the submit-to-plan
// latency distribution in milliseconds over a sliding window of recent
// samples (Config.PlanLatencyWindow, default 15s; 0 with no samples in
// the window). This is the signal the shard rebalancer compares across
// cores — windowed so a transient slowdown ages out instead of marking
// the shard slow forever, and independent of the metrics registry.
func (c *Core) PlanLatencyQuantile(q float64) float64 {
	return c.winPlanLat.Quantile(q)
}

// Submit admits one job without a request context; see SubmitCtx.
func (c *Core) Submit(req SubmitRequest) (SubmitResponse, error) {
	return c.SubmitCtx(context.Background(), req)
}

// SubmitCtx admits one job: it validates the request, applies
// per-source rate limiting and the bounded submit queue, and hands the
// job to the writer loop. A trace ID in ctx (obs.WithTraceID) rides the
// submission through batching, planning and publication, so the whole
// submit→planned path shares one trace. Safe for concurrent use.
func (c *Core) SubmitCtx(ctx context.Context, req SubmitRequest) (SubmitResponse, error) {
	if req.Width < 1 || req.Width > c.total {
		return SubmitResponse{}, &ValidationError{Reason: fmt.Sprintf("width %d outside [1, %d]", req.Width, c.total)}
	}
	if req.Estimate < 1 {
		return SubmitResponse{}, &ValidationError{Reason: fmt.Sprintf("estimate %d < 1", req.Estimate)}
	}
	if req.Runtime == 0 {
		req.Runtime = req.Estimate
	}
	if req.Runtime < 1 || req.Runtime > req.Estimate {
		return SubmitResponse{}, &ValidationError{Reason: fmt.Sprintf("runtime %d outside [1, estimate %d]", req.Runtime, req.Estimate)}
	}
	if req.Deadline < 0 {
		return SubmitResponse{}, &ValidationError{Reason: fmt.Sprintf("deadline %d < 0", req.Deadline)}
	}
	c.gate.RLock()
	defer c.gate.RUnlock()
	if c.draining {
		c.cRejectDrain.Inc()
		return SubmitResponse{}, ErrDraining
	}
	if c.phase.Load() == phaseReplaying {
		c.cRejectRecov.Inc()
		return SubmitResponse{}, ErrRecovering
	}
	trace := obs.TraceIDFrom(ctx)
	// Idempotent resubmission: a known key returns the original job
	// before burning rate-limit tokens or queue capacity.
	if key := req.IdempotencyKey; key != "" {
		if v, ok := c.idem.Load(key); ok {
			return c.dedupResponse(v.(int), trace), nil
		}
	}
	if c.wfq != nil {
		// Weighted fair queueing across sources: the aggregate rate is
		// shared by virtual-time fairness instead of flat per-source
		// buckets.
		if ok, wait := c.wfq.allow(req.Source, time.Now()); !ok {
			c.cRejectRate.Inc()
			return SubmitResponse{}, &RateLimitedError{Source: req.Source, RetryAfter: wait}
		}
	} else if ok, wait := c.limiter.allow(req.Source, time.Now()); !ok {
		c.cRejectRate.Inc()
		return SubmitResponse{}, &RateLimitedError{Source: req.Source, RetryAfter: wait}
	}
	now := c.clock.Now()
	var deadline int64
	locked := false
	unlockTwin := func() {
		if locked {
			locked = false
			c.twinMu.Unlock()
		}
	}
	defer unlockTwin()
	if req.Deadline > 0 {
		deadline = now + req.Deadline
	}
	if deadline > 0 && !c.cfg.TwinGateOff {
		// Deadline-aware admission: reject only jobs whose *planned*
		// start, per the digital twin of the current plan, would bust
		// the SLO — admitting them would manufacture a guaranteed miss.
		// Deadline admissions are serialized from prediction through the
		// pending-store below: without that, two concurrent marginal
		// admissions would each predict against a queue missing the
		// other, and jointly bust a deadline either alone would keep.
		c.twinMu.Lock()
		locked = true
		if pred, ok := c.predictStart(now, req.Width, req.Estimate); ok && pred+c.cfg.SLOMargin > deadline {
			c.cRejectSLO.Inc()
			c.trace.EmitCtx(ctx, "schedd.reject.slo",
				obs.Int("t", now),
				obs.Int("predicted", pred),
				obs.Int("deadline", deadline),
				obs.Str("source", req.Source))
			return SubmitResponse{}, &SLOExceededError{
				Deadline:       deadline,
				PredictedStart: pred,
				// Resubmitted once the virtual clock reaches
				// pred+margin-Deadline, a fresh window [t, t+Deadline]
				// would cover the predicted start plus margin.
				RetryAfter: c.clock.Until(pred + c.cfg.SLOMargin - req.Deadline),
			}
		}
	}
	id := int(c.nextID.Add(1))
	if key := req.IdempotencyKey; key != "" {
		// Two racing submits with the same key: exactly one claims it.
		if prev, loaded := c.idem.LoadOrStore(key, id); loaded {
			return c.dedupResponse(prev.(int), trace), nil
		}
	}
	j := &job.Job{ID: id, Submit: now, Width: req.Width, Estimate: req.Estimate, Runtime: req.Runtime}
	sub := &submission{job: j, source: req.Source, trace: trace, idemKey: req.IdempotencyKey, deadline: deadline, admitWall: time.Now()}
	c.pending.Store(id, JobStatus{
		ID: id, State: StateQueued, Width: j.Width, Estimate: j.Estimate, TraceID: trace,
		Submit: now, PlannedStart: -1, Start: -1, End: -1, PlanLatencyMs: -1,
		Deadline: deadline,
	})
	// The job is visible to the next prediction; the fsync below must
	// not run under the twin lock.
	unlockTwin()
	if w := c.cfg.WAL; w != nil {
		// The durability barrier: the submit record is fsynced (group
		// commit amortizes the cost across concurrent admissions) before
		// the response can commit. onSeq registers the seq in the
		// in-flight set atomically with its assignment, so a snapshot
		// taken before the writer consumes this submission stays below
		// it.
		seq, err := w.AppendSync(walSubmit, submitWAL{
			ID: id, Submit: now, Width: j.Width, Estimate: j.Estimate, Runtime: j.Runtime,
			Source: req.Source, Trace: trace, IdemKey: req.IdempotencyKey, Deadline: deadline,
		}, c.inflightAdd)
		if err != nil {
			c.pending.Delete(id)
			if req.IdempotencyKey != "" {
				c.idem.Delete(req.IdempotencyKey)
			}
			c.inflightDone(seq)
			return SubmitResponse{}, fmt.Errorf("schedd: wal append: %w", err)
		}
		sub.walSeq = seq
	}
	select {
	case c.submitCh <- sub:
	default:
		c.pending.Delete(id)
		if req.IdempotencyKey != "" {
			c.idem.Delete(req.IdempotencyKey)
		}
		if sub.walSeq != 0 {
			// The submit record is already durable; log the rejection so
			// replay drops the job again (audit trail of the 429).
			c.inflightDone(sub.walSeq)
			c.walAppend(walReject, rejectWAL{ID: id, Reason: "queue_full", IdemKey: req.IdempotencyKey})
		}
		c.cRejectFull.Inc()
		return SubmitResponse{}, ErrQueueFull
	}
	c.accepted.Add(1)
	c.cSubmits.Inc()
	c.vSubmits.With(req.Source).Inc()
	c.trace.EmitCtx(ctx, "schedd.submit",
		obs.Int("t", now),
		obs.Int("job", int64(id)),
		obs.Int("width", int64(j.Width)),
		obs.Str("source", req.Source))
	return SubmitResponse{ID: id, State: StateQueued, Now: now, TraceID: trace}, nil
}

// dedupResponse acknowledges an idempotent resubmission with the
// original job's current state.
func (c *Core) dedupResponse(id int, trace string) SubmitResponse {
	c.cDeduped.Inc()
	state := StateQueued
	if st, ok := c.Job(id); ok {
		state = st.State
	}
	return SubmitResponse{ID: id, State: state, Now: c.clock.Now(), TraceID: trace, Deduplicated: true}
}

// Replans returns the flight recorder's replan summaries, newest first.
func (c *Core) Replans() []ReplanRecord { return c.recorder.list() }

// Tracer returns the tracer the core was configured with (may be nil).
func (c *Core) Tracer() *obs.Tracer { return c.trace }

// Snapshot returns the latest published view (never nil).
func (c *Core) Snapshot() *Snapshot { return c.snap.Load() }

// Job returns the status of the job with the given ID. It consults the
// active snapshot, then the completed set, then the admitted-but-
// unplanned set, then the pending-migration set — all without taking
// the writer's locks.
func (c *Core) Job(id int) (JobStatus, bool) {
	if st, ok := c.snap.Load().Active[id]; ok {
		return st, true
	}
	if v, ok := c.done.Load(id); ok {
		return v.(JobStatus), true
	}
	if v, ok := c.pending.Load(id); ok {
		// The writer may have planned (or even completed) the job
		// between the snapshot read and this lookup; re-check so a
		// moved job is not reported as queued with stale fields.
		if st, ok2 := c.snap.Load().Active[id]; ok2 {
			return st, true
		}
		if d, ok2 := c.done.Load(id); ok2 {
			return d.(JobStatus), true
		}
		return v.(JobStatus), true
	}
	// A job stolen for migration but not yet admitted by its target —
	// including after crash-recovery replay, before the first hand-off
	// tick — is still queued, just briefly homeless. StealQueued records
	// the migration before deleting the pending entry, so every job is
	// visible in at least one of the two sets until the hand-off
	// confirms (after which the front end's alias table takes over).
	c.migMu.Lock()
	m, ok := c.pendingMig[id]
	c.migMu.Unlock()
	if ok {
		return JobStatus{
			ID: id, State: StateQueued, Width: m.Width, Estimate: m.Estimate, TraceID: m.Trace,
			Submit: m.Submit, PlannedStart: -1, Start: -1, End: -1, PlanLatencyMs: -1,
		}, true
	}
	return JobStatus{}, false
}

// Stop drains the service: it blocks new submissions, lets the writer
// finish any in-flight replan, plans every already-admitted submission,
// publishes the final snapshot and stops the loop. Safe to call more
// than once; later calls return the first result. The context bounds
// the wait for the writer to finish.
func (c *Core) Stop(ctx context.Context) (*Snapshot, error) {
	c.stopOnce.Do(func() {
		c.gate.Lock()
		c.draining = true
		c.gate.Unlock()
		if !c.started.Load() {
			// Never started: nothing to drain.
			c.final = c.snap.Load()
			return
		}
		reply := make(chan *Snapshot, 1)
		select {
		case c.drainCh <- reply:
		case <-ctx.Done():
			c.stopErr = fmt.Errorf("schedd: drain request: %w", context.Cause(ctx))
			return
		}
		select {
		case c.final = <-reply:
		case <-ctx.Done():
			c.stopErr = fmt.Errorf("schedd: drain wait: %w", context.Cause(ctx))
		}
	})
	return c.final, c.stopErr
}

// run is the single-writer replan loop. All scheduler and plan state is
// owned by this goroutine; everything it shares is published as
// immutable snapshots.
func (c *Core) run() {
	defer close(c.loopDone)
	defer func() {
		// The daemon's panic path: give the hook a chance to flush the
		// tracer and dump the flight recorder before the crash surfaces,
		// then re-raise so the process still dies loudly.
		if r := recover(); r != nil {
			if h := c.cfg.PanicHook; h != nil {
				h(r)
			}
			panic(r)
		}
	}()
	if c.any != nil {
		c.any.Start()
		defer c.any.Stop()
	}
	c.recoverFromWAL()
	c.pushAnytime()
	for {
		var timerC <-chan time.Time
		var timer *time.Timer
		if next, ok := c.nextEventTime(); ok {
			timer = time.NewTimer(c.clock.Until(next))
			timerC = timer.C
		}
		select {
		case sub := <-c.submitCh:
			batch := c.collectBatch(sub)
			c.advance()
			c.step(batch)
			c.publish()
			c.maybeSnapshot()
		case <-timerC:
			c.advance()
			c.publish()
			c.maybeSnapshot()
		case <-c.anyNudge:
			// The anytime core found a better plan for (what it believes
			// is) the current queue. Adoption re-checks freshness on this
			// goroutine; a stale or non-improving plan is dropped without
			// a publish. anyNudge is nil (blocks forever) when off.
			if plan := c.adoptAnytime(); plan != nil {
				c.publish()
				c.emitPlanImproved(plan)
				c.maybeSnapshot()
			}
		case reply := <-c.drainCh:
			if timer != nil {
				timer.Stop()
			}
			c.finalDrain()
			c.publish()
			c.snapshotNow() // a clean drain leaves a replay-free log
			reply <- c.snap.Load()
			return
		}
		if timer != nil {
			timer.Stop()
		}
		// Whenever this pass mutated queue state (new arrivals, starts,
		// completions — but not a pure anytime adoption, which must not
		// restart the very solve that produced it), hand the background
		// optimizer the fresh problem.
		c.pushDirty()
	}
}

// pushDirty hands the background optimizer the current problem if queue
// state changed since the last push. Called at the end of every writer
// pass and after mid-coalescing advances, so incumbents found during a
// long batching window are solved against live state, not the state
// frozen at the window's start.
func (c *Core) pushDirty() {
	if c.anyDirty {
		c.anyDirty = false
		c.pushAnytime()
	}
}

// collectBatch coalesces a burst of arrivals: it always drains what is
// already queued (up to MaxBatch) and, with MaxBatchDelay > 0,
// additionally waits up to that long for stragglers.
func (c *Core) collectBatch(first *submission) []*submission {
	batch := []*submission{first}
	max := c.cfg.MaxBatch
	if max <= 1 {
		return batch
	}
	if delay := c.batchDelay(); delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		for len(batch) < max {
			// While coalescing, the writer keeps serving the rest of the
			// data plane: due starts and completions advance on time (the
			// virtual clock does not pause for stragglers) and background
			// incumbents are adopted as they stream in, so a long adaptive
			// window is optimization time, not dead time. Without this, a
			// multi-second coalescing cap would stall every virtual event
			// behind it — the actual starts would slip past the twin's
			// predictions by the full window and bust deadlines the
			// admission gate had verified.
			var evC <-chan time.Time
			var evT *time.Timer
			if next, ok := c.nextEventTime(); ok {
				evT = time.NewTimer(c.clock.Until(next))
				evC = evT.C
			}
			select {
			case sub := <-c.submitCh:
				batch = append(batch, sub)
			case <-evC:
				c.advance()
				c.publish()
				c.pushDirty()
			case <-c.anyNudge:
				if plan := c.adoptAnytime(); plan != nil {
					c.publish()
					c.emitPlanImproved(plan)
				}
			case <-t.C:
				if evT != nil {
					evT.Stop()
				}
				return batch
			}
			if evT != nil {
				evT.Stop()
			}
		}
		return batch
	}
	for len(batch) < max {
		select {
		case sub := <-c.submitCh:
			batch = append(batch, sub)
		default:
			return batch
		}
	}
	return batch
}

// batchDelay returns how long this batch collection waits for
// stragglers. Plain mode: the configured MaxBatchDelay. Adaptive mode:
// just long enough for the observed arrival rate to fill the batch to
// BatchSetpoint·MaxBatch, capped at MaxBatchDelay (default cap 250ms
// when unset) — a burst fills the batch without stretching the wait,
// and a quiet service pays almost no added latency.
func (c *Core) batchDelay() time.Duration {
	if !c.cfg.AdaptiveBatch {
		return c.cfg.MaxBatchDelay
	}
	cap := c.cfg.MaxBatchDelay
	if cap <= 0 {
		cap = 250 * time.Millisecond
	}
	nowW := time.Now()
	n := c.accepted.Load()
	if !c.lastArrWall.IsZero() {
		if dt := nowW.Sub(c.lastArrWall).Seconds(); dt > 0 {
			inst := float64(n-c.lastArrCount) / dt
			// EWMA with a ~2s time constant, gap-weighted so long idle
			// stretches decay the rate instead of freezing it.
			alpha := 1 - math.Exp(-dt/2.0)
			c.arrRate += alpha * (inst - c.arrRate)
		}
	}
	c.lastArrWall, c.lastArrCount = nowW, n
	delay := cap
	if c.arrRate > 0 {
		target := c.cfg.BatchSetpoint * float64(c.cfg.MaxBatch)
		if want := time.Duration(target / c.arrRate * float64(time.Second)); want < delay {
			delay = want
		}
	}
	c.gBatchDelay.Set(float64(delay) / float64(time.Millisecond))
	return delay
}

// nextEventTime returns the earliest pending virtual event: a running
// job's completion or a planned start.
func (c *Core) nextEventTime() (int64, bool) {
	var t int64
	found := false
	for _, r := range c.running {
		end := r.start + r.job.Runtime
		if !found || end < t {
			t, found = end, true
		}
	}
	for id, start := range c.plan {
		if _, ok := c.waiting[id]; !ok {
			continue
		}
		if !found || start < t {
			t, found = start, true
		}
	}
	return t, found
}

// advance catches the writer state up with the clock: it processes all
// due completions and planned starts in event order, replanning (with
// the active policy, no self-tuning — the paper tunes only at
// submissions) after completions so early finishers pull work forward.
func (c *Core) advance() {
	now := c.clock.Now()
	if now < c.vnow {
		now = c.vnow
	}
	for {
		t, ok := c.nextEventTime()
		if !ok || t > now {
			break
		}
		if t > c.vnow {
			c.vnow = t
		}
		if c.completeDue(t) {
			if len(c.waiting) > 0 {
				c.replan(t)
			}
		}
		c.startDue(t)
	}
	if now > c.vnow {
		c.vnow = now
	}
}

// completeDue finishes every running job whose end is <= t.
func (c *Core) completeDue(t int64) bool {
	var ids []int
	for id, r := range c.running {
		if r.start+r.job.Runtime <= t {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		r := c.running[id]
		delete(c.running, id)
		end := r.start + r.job.Runtime
		c.counts.Completed++
		c.cEnds.Inc()
		st := JobStatus{
			ID: id, State: StateDone, Width: r.job.Width, Estimate: r.job.Estimate,
			Submit: r.job.Submit, PlannedStart: r.plannedStart, Start: r.start, End: end,
			PlanLatencyMs: float64(r.planLatency) / float64(time.Millisecond),
			Degraded:      r.degraded,
			Deadline:      r.deadline,
			SLOMiss:       r.sloMiss,
			TraceID:       r.trace,
		}
		c.done.Store(id, st)
		c.walAppend(walComplete, completeWAL{Status: st})
		c.emitCompleted(st)
		fields := []obs.Field{
			obs.Int("t", end),
			obs.Int("job", int64(id)),
			obs.Int("response", end-r.job.Submit),
		}
		if r.trace != "" {
			fields = append(fields, obs.Str("trace", r.trace))
		}
		c.trace.Emit("schedd.end", fields...)
	}
	if len(ids) > 0 {
		c.anyDirty = true
	}
	return len(ids) > 0
}

// startDue starts every waiting job whose planned start is <= t, in
// (planned start, ID) order.
func (c *Core) startDue(t int64) {
	var due []int
	for id, start := range c.plan {
		if start <= t {
			if _, ok := c.waiting[id]; ok {
				due = append(due, id)
			}
		}
	}
	sort.Slice(due, func(i, k int) bool {
		if c.plan[due[i]] != c.plan[due[k]] {
			return c.plan[due[i]] < c.plan[due[k]]
		}
		return due[i] < due[k]
	})
	for _, id := range due {
		r := c.recs[id]
		delete(c.waiting, id)
		delete(c.plan, id)
		delete(c.recs, id)
		r.start = t
		c.running[id] = r
		c.counts.Started++
		c.cStarts.Inc()
		c.walAppend(walStart, startWAL{ID: id, T: t})
		fields := []obs.Field{
			obs.Int("t", t),
			obs.Int("job", int64(id)),
			obs.Int("width", int64(r.job.Width)),
			obs.Int("wait", t-r.job.Submit),
		}
		if r.trace != "" {
			fields = append(fields, obs.Str("trace", r.trace))
		}
		c.trace.Emit("schedd.start", fields...)
	}
	if len(due) > 0 {
		c.anyDirty = true
	}
}

// baseProfile builds the machine profile of the running jobs at time
// now with estimated ends (planning never sees actual runtimes).
func (c *Core) baseProfile(now int64) (*machine.Profile, error) {
	rs := make([]machine.Running, 0, len(c.running))
	for _, r := range c.running {
		end := r.start + r.job.Estimate
		if end <= now {
			// Overdue per its own estimate but not completed yet (can
			// happen when planning catches up after a busy stretch):
			// keep it occupying capacity for one more second.
			end = now + 1
		}
		rs = append(rs, machine.Running{JobID: r.job.ID, Width: r.job.Width, End: end})
	}
	h, err := machine.HistoryFromRunning(c.total, now, rs)
	if err != nil {
		return nil, err
	}
	return h.Profile(c.total), nil
}

func (c *Core) waitingSlice() []*job.Job {
	out := make([]*job.Job, 0, len(c.waiting))
	for _, j := range c.waiting {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// step runs one self-tuning step over the batch of new arrivals plus
// everything already waiting, optionally through the ILP pipeline, and
// adopts the resulting plan. A step that cannot produce any schedule
// keeps the previous plan and reports degradation — a serving process
// never dies on a bad step.
func (c *Core) step(batch []*submission) {
	wallStart := time.Now()
	c.anyDirty = true
	now := c.clock.Now()
	if now < c.vnow {
		now = c.vnow
	}
	c.vnow = now
	for _, sub := range batch {
		// Trace-replay admissions may carry virtual submit times the
		// accelerated clock has already passed; planning requires
		// Submit <= now.
		if sub.job.Submit > now {
			sub.job.Submit = now
		}
		c.waiting[sub.job.ID] = sub.job
		c.recs[sub.job.ID] = &rec{job: sub.job, admitWall: sub.admitWall, trace: sub.trace, plannedStart: -1, start: -1, deadline: sub.deadline}
		// The writer owns the submission now: its WAL record is covered
		// by this state, so it no longer holds back snapshot bounds.
		c.inflightDone(sub.walSeq)
	}
	c.counts.Batches++
	c.counts.BatchedJobs += int64(len(batch))
	c.cBatches.Inc()
	c.hBatchSize.Observe(float64(len(batch)))
	waiting := c.waitingSlice()
	c.hQueueDepth.Observe(float64(len(waiting)))

	c.stepSeq++
	tr := c.sampledTracer()
	record := ReplanRecord{Kind: "step", Now: now, Batch: len(batch), QueueDepth: len(waiting)}
	for _, sub := range batch {
		if sub.trace != "" && len(record.Traces) < maxRecordTraces {
			record.Traces = append(record.Traces, sub.trace)
		}
	}
	plannedBefore := len(c.newlyPlanned)
	defer func() {
		record.DurMs = float64(time.Since(wallStart)) / float64(time.Millisecond)
		record.Planned = len(c.newlyPlanned) - plannedBefore
		c.recordReplan(record)
	}()

	span := tr.StartSpan("schedd.step",
		obs.Int("t", now),
		obs.Int("batch", int64(len(batch))),
		obs.Int("queue_depth", int64(len(waiting))))
	for _, sub := range batch {
		// Per-job trace join: the batched event carries the request trace
		// ID and (when the step span is traced) the step's span id, tying
		// the request's trace to the shared replan span tree.
		if sub.trace != "" {
			c.trace.Emit("schedd.job.batched",
				obs.Int("t", now),
				obs.Int("job", int64(sub.job.ID)),
				obs.Str("trace", sub.trace))
		}
	}
	base, err := c.baseProfile(now)
	if err != nil {
		span.End(obs.Str("status", "error"))
		c.failStep(fmt.Sprintf("base profile: %v", err))
		record.Outcome, record.ReasonClass, record.Reason = "failed", "step_error", c.degReason
		return
	}
	res, err := c.cfg.Scheduler.Step(now, base, waiting)
	if err != nil {
		span.End(obs.Str("status", "error"))
		c.failStep(fmt.Sprintf("self-tuning step: %v", err))
		record.Outcome, record.ReasonClass, record.Reason = "failed", "step_error", c.degReason
		return
	}
	record.Policy = res.Chosen.Name()
	adopt := res.Schedule
	degraded := false
	reasonClass, reason := "", ""
	if c.cfg.ILP != nil {
		// A single traced submission in the batch threads its trace ID
		// down to the MIP solve span; multi-job batches share one solve,
		// so no single trace can own it.
		ctx := context.Background()
		if len(record.Traces) == 1 && record.Batch == 1 {
			ctx = obs.WithTraceID(ctx, record.Traces[0])
		}
		var out *solvepipe.Outcome
		adopt, degraded, reasonClass, reason, out = c.ilpSchedule(ctx, tr, now, res, waiting, base)
		if out != nil {
			record.CacheHit = out.CacheHit
			record.SeedReused = out.IncumbentReused
			for _, a := range out.Attempts {
				record.Attempts = append(record.Attempts, AttemptRecord{
					Scale:    a.Scale,
					BudgetMs: a.Budget.Milliseconds(),
					DurMs:    float64(a.Elapsed) / float64(time.Millisecond),
					Failure:  a.Failure.String(),
				})
			}
		}
	}
	c.counts.Steps++
	c.cSteps.Inc()
	c.degraded, c.degReason = degraded, reason
	record.Outcome = "ok"
	if degraded {
		c.counts.DegradedSteps++
		c.cDegraded.Inc()
		record.Outcome = "degraded"
		record.ReasonClass, record.Reason = reasonClass, reason
	}
	c.adoptPlan(now, adopt, degraded)
	c.appendPlanWAL("step", now, len(batch), degraded, reason, c.newlyPlanned[plannedBefore:])
	span.End(obs.Str("chosen", res.Chosen.Name()), obs.Bool("degraded", degraded))
}

// sampledTracer returns the tracer for the current replan's span tree,
// nil when this replan is sampled off (TraceSampleEvery). The caller
// must have advanced stepSeq first.
func (c *Core) sampledTracer() *obs.Tracer {
	if n := c.cfg.TraceSampleEvery; n > 1 && c.stepSeq%int64(n) != 0 {
		return nil
	}
	return c.trace
}

// recordReplan finishes one replan's bookkeeping: flight recorder,
// labeled outcome/duration metrics, and the slow-replan dump.
func (c *Core) recordReplan(r ReplanRecord) {
	r = c.recorder.add(r)
	c.hvReplanDur.With(r.Kind).Observe(r.DurMs)
	policy := r.Policy
	if policy == "" {
		policy = "none"
	}
	c.vStepOut.With(r.Outcome, policy).Inc()
	if r.ReasonClass != "" {
		c.vDegReason.With(r.ReasonClass).Inc()
	}
	if c.cfg.SlowReplan > 0 && r.DurMs >= float64(c.cfg.SlowReplan)/float64(time.Millisecond) {
		c.dumpSlowReplan(r)
	}
}

// dumpSlowReplan reconstructs the span tree of an offending replan on
// the always-on tracer from the flight recorder's provenance. This is
// how a slow replan becomes visible in the JSONL trace even when step
// tracing was sampled off: the live spans were never written, so the
// dump re-emits them (span dur_ms is the reconstruction time; the
// measured durations ride in replan_dur_ms/attempt_dur_ms).
func (c *Core) dumpSlowReplan(r ReplanRecord) {
	sp := c.trace.StartSpan("schedd.replan.slow",
		obs.Int("replan_seq", r.Seq),
		obs.Str("kind", r.Kind),
		obs.Int("t", r.Now),
		obs.Float("replan_dur_ms", r.DurMs),
		obs.Int("batch", int64(r.Batch)),
		obs.Int("queue_depth", int64(r.QueueDepth)),
		obs.Str("outcome", r.Outcome),
		obs.Str("policy", r.Policy))
	for i, a := range r.Attempts {
		att := c.trace.StartSpan("schedd.replan.slow.attempt",
			obs.Int("rung", int64(i)),
			obs.Int("scale", a.Scale),
			obs.Int("budget_ms", a.BudgetMs))
		att.End(obs.Float("attempt_dur_ms", a.DurMs), obs.Str("failure", a.Failure))
	}
	sp.End(
		obs.Str("reason", r.Reason),
		obs.Bool("cache_hit", r.CacheHit),
		obs.Bool("seed_reused", r.SeedReused))
}

// failStep records a step that produced no schedule at all: the
// previous plan stays in force and the batch's jobs remain waiting for
// the next step (they are in c.waiting, so any later submission or
// completion replans them in).
func (c *Core) failStep(reason string) {
	c.counts.Steps++
	c.counts.DegradedSteps++
	c.cSteps.Inc()
	c.cDegraded.Inc()
	c.degraded, c.degReason = true, reason
	c.appendFailedStepWAL(reason)
	c.trace.Emit("schedd.step.failed", obs.Int("t", c.vnow), obs.Str("reason", reason))
}

// ilpSchedule drives one step through the solve pipeline, always
// degrading to the basic-policy schedule on failure. It returns the
// schedule to adopt, the degradation flag, the bounded-cardinality
// reason class plus free-form detail, and the pipeline outcome (nil
// when the step never reached the pipeline). A trace ID in ctx rides
// down into the MIP solve spans; tr is the (possibly sampled-off)
// tracer for solver-internal events.
func (c *Core) ilpSchedule(ctx context.Context, tr *obs.Tracer, now int64, res *dynp.StepResult, waiting []*job.Job, base *machine.Profile) (*schedule.Schedule, bool, string, string, *solvepipe.Outcome) {
	var horizon int64
	for _, e := range res.Evals {
		if mk := e.Schedule.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	if horizon <= now {
		return res.Schedule, false, "", "", nil // every waiting job starts now
	}
	inst := &ilpsched.Instance{
		Now:     now,
		Machine: base.Total(),
		Base:    base,
		Jobs:    waiting,
		Horizon: horizon,
	}
	pipe := c.cfg.ILP.Pipe
	if pipe.Trace == nil {
		pipe.Trace = tr
	}
	if pipe.Metrics == nil {
		pipe.Metrics = c.cfg.Metrics
	}
	if pipe.Seed == nil {
		pipe.Seed = res.Schedule
	}
	if pipe.Cache == nil {
		pipe.Cache = c.stepCache
	}
	if pipe.ReuseSeed == nil && !c.cfg.ILP.ReuseOff {
		pipe.ReuseSeed = reuseSeed(c.lastILP, waiting, now, c.total)
	}
	out := solvepipe.Solve(ctx, pipe, inst)
	if !out.Failed() {
		sch := out.Solution.Compacted
		if verr := sch.Validate(base); verr == nil {
			c.lastILP = sch
			// SLO guard: the solver minimizes the aggregate objective with
			// no notion of per-job deadlines, so its reordering may push an
			// admitted job past the deadline the twin admitted it under.
			// When the basic-policy schedule keeps every deadline and the
			// ILP one does not, serve the policy schedule — a kept SLO
			// beats a better Eq. 2 objective. (Both busting is still
			// adopted and latched honestly as a miss.)
			if n := c.sloConflicts(sch); n > 0 && c.sloConflicts(res.Schedule) == 0 {
				c.cSLOGuard.Inc()
				tr.Emit("step.slo_guard",
					obs.Int("t", now), obs.Int("conflicts", int64(n)))
				return res.Schedule, false, "", "", out
			}
			return sch, false, "", "", out
		} else {
			c.lastILP = nil
			return res.Schedule, true, "invalid_schedule", fmt.Sprintf("infeasible ILP schedule: %v", verr), out
		}
	}
	c.lastILP = nil // a degraded step's schedule must never seed reuse
	class := out.LastFailure().String()
	reason := class
	if out.Err != nil {
		reason = fmt.Sprintf("%s: %v (%d attempts)", reason, out.Err, len(out.Attempts))
	}
	tr.Emit("solve.fallback",
		obs.Int("t", now),
		obs.Str("cause", out.LastFailure().String()),
		obs.Int("attempts", int64(len(out.Attempts))),
		obs.Str("policy", res.Chosen.Name()))
	return res.Schedule, true, class, reason, out
}

// reuseSeed derives an incumbent candidate from the last adopted ILP
// schedule: its entries restricted to the jobs still waiting, with jobs
// that arrived since appended behind them in submission order (only the
// relative order matters downstream).
func reuseSeed(last *schedule.Schedule, waiting []*job.Job, now int64, total int) *schedule.Schedule {
	if last == nil || len(last.Entries) == 0 {
		return nil
	}
	waitingByID := make(map[int]bool, len(waiting))
	for _, j := range waiting {
		waitingByID[j.ID] = true
	}
	seed := &schedule.Schedule{Policy: "reuse", Now: now, Machine: total}
	kept := make(map[int]bool, len(last.Entries))
	maxStart := now
	for _, e := range last.Entries {
		if !waitingByID[e.Job.ID] {
			continue
		}
		kept[e.Job.ID] = true
		seed.Entries = append(seed.Entries, e)
		if e.Start > maxStart {
			maxStart = e.Start
		}
	}
	if len(kept) == 0 {
		return nil
	}
	fresh := make([]*job.Job, 0, len(waiting)-len(kept))
	for _, j := range waiting {
		if !kept[j.ID] {
			fresh = append(fresh, j)
		}
	}
	sort.Slice(fresh, func(i, k int) bool {
		if fresh[i].Submit != fresh[k].Submit {
			return fresh[i].Submit < fresh[k].Submit
		}
		return fresh[i].ID < fresh[k].ID
	})
	for k, j := range fresh {
		seed.Entries = append(seed.Entries, schedule.Entry{Job: j, Start: maxStart + int64(k) + 1})
	}
	return seed
}

// replan rebuilds the plan with the active policy after completions.
func (c *Core) replan(now int64) {
	wallStart := time.Now()
	c.anyDirty = true
	c.stepSeq++
	tr := c.sampledTracer()
	record := ReplanRecord{
		Kind: "completion", Now: now, QueueDepth: len(c.waiting),
		Policy: c.cfg.Scheduler.Current().Name(),
	}
	plannedBefore := len(c.newlyPlanned)
	defer func() {
		record.DurMs = float64(time.Since(wallStart)) / float64(time.Millisecond)
		record.Planned = len(c.newlyPlanned) - plannedBefore
		c.recordReplan(record)
	}()
	base, err := c.baseProfile(now)
	if err != nil {
		c.trace.Emit("schedd.replan.failed", obs.Int("t", now), obs.Str("reason", err.Error()))
		record.Outcome, record.ReasonClass, record.Reason = "failed", "step_error", err.Error()
		return // keep the previous plan
	}
	sch, err := c.cfg.Scheduler.Reschedule(now, base, c.waitingSlice())
	if err != nil {
		c.trace.Emit("schedd.replan.failed", obs.Int("t", now), obs.Str("reason", err.Error()))
		record.Outcome, record.ReasonClass, record.Reason = "failed", "step_error", err.Error()
		return
	}
	c.counts.Replans++
	c.cReplans.Inc()
	tr.Emit("schedd.replan",
		obs.Int("t", now),
		obs.Int("queue_depth", int64(len(c.waiting))))
	record.Outcome = "ok"
	c.adoptPlan(now, sch, c.degraded)
	c.appendPlanWAL("completion", now, 0, c.degraded, c.degReason, c.newlyPlanned[plannedBefore:])
}

// adoptPlan installs a full schedule: it records planned starts,
// completes the submit-to-plan latency of first-planned jobs, and
// starts jobs planned for now.
func (c *Core) adoptPlan(now int64, sch *schedule.Schedule, degraded bool) {
	c.lastPlanWall.Store(time.Now().UnixNano())
	c.plan = make(map[int]int64, len(sch.Entries))
	for _, e := range sch.Entries {
		c.plan[e.Job.ID] = e.Start
		r, ok := c.recs[e.Job.ID]
		if !ok {
			continue
		}
		r.plannedStart = e.Start
		r.degraded = degraded
		if r.deadline > 0 && e.Start > r.deadline && !r.sloMiss {
			// Latched: the SLO was violated by an adopted plan, even if a
			// later improvement pulls the start back under the deadline.
			r.sloMiss = true
			c.cSLOMiss.Inc()
			c.trace.Emit("schedd.slo.miss",
				obs.Int("t", now),
				obs.Int("job", int64(e.Job.ID)),
				obs.Int("planned_start", e.Start),
				obs.Int("deadline", r.deadline))
		}
		if !r.planned {
			r.planned = true
			r.planLatency = time.Since(r.admitWall)
			c.counts.Planned++
			c.cPlanned.Inc()
			c.hPlanLatency.Observe(float64(r.planLatency) / float64(time.Millisecond))
			c.winPlanLat.Observe(float64(r.planLatency) / float64(time.Millisecond))
			c.newlyPlanned = append(c.newlyPlanned, e.Job.ID)
			if r.trace != "" {
				c.trace.Emit("schedd.job.planned",
					obs.Int("t", now),
					obs.Int("job", int64(e.Job.ID)),
					obs.Int("planned_start", e.Start),
					obs.Float("plan_latency_ms", float64(r.planLatency)/float64(time.Millisecond)),
					obs.Bool("degraded", degraded),
					obs.Str("trace", r.trace))
			}
		}
	}
	c.startDue(now)
}

// finalDrain plans every submission still in the queue so that no
// accepted job is dropped, then emits the drain event.
func (c *Core) finalDrain() {
	var batch []*submission
	for {
		select {
		case sub := <-c.submitCh:
			batch = append(batch, sub)
		default:
			c.advance()
			if len(batch) > 0 || c.hasUnplannedWaiting() {
				c.step(batch)
			}
			c.trace.Emit("schedd.drain",
				obs.Int("t", c.vnow),
				obs.Int("flushed", int64(len(batch))),
				obs.Int("waiting", int64(len(c.waiting))),
				obs.Int("running", int64(len(c.running))))
			return
		}
	}
}

// hasUnplannedWaiting reports whether a failed step left admitted jobs
// without a plan entry (the drain path re-plans them so an accepted job
// is never dropped).
func (c *Core) hasUnplannedWaiting() bool {
	for id := range c.waiting {
		if !c.recs[id].planned {
			return true
		}
	}
	return false
}

// publish builds and installs a fresh immutable snapshot.
func (c *Core) publish() {
	c.version++
	s := &Snapshot{
		Now:            c.vnow,
		Version:        c.version,
		Active:         make(map[int]JobStatus, len(c.waiting)+len(c.running)),
		Degraded:       c.degraded,
		DegradedReason: c.degReason,
		Policy:         c.cfg.Scheduler.Current().Name(),
		Counts:         c.counts,
	}
	c.gate.RLock()
	s.Draining = c.draining
	c.gate.RUnlock()
	s.Counts.Submitted = c.accepted.Load() // accepted admissions, including still-queued ones
	for id, j := range c.waiting {
		r := c.recs[id]
		st := JobStatus{
			ID: id, State: StateQueued, Width: j.Width, Estimate: j.Estimate,
			Submit: j.Submit, PlannedStart: -1, Start: -1, End: -1, PlanLatencyMs: -1,
			TraceID: r.trace, Deadline: r.deadline, SLOMiss: r.sloMiss,
		}
		if r.planned {
			st.State = StateWaiting
			st.PlannedStart = r.plannedStart
			st.PlanLatencyMs = float64(r.planLatency) / float64(time.Millisecond)
			st.Degraded = r.degraded
		}
		s.Active[id] = st
		if start, ok := c.plan[id]; ok {
			s.Schedule = append(s.Schedule, PlannedEntry{JobID: id, Width: j.Width, Start: start, Estimate: j.Estimate})
		}
	}
	for id, r := range c.running {
		s.Active[id] = JobStatus{
			ID: id, State: StateRunning, Width: r.job.Width, Estimate: r.job.Estimate,
			Submit: r.job.Submit, PlannedStart: r.plannedStart, Start: r.start,
			End:           r.start + r.job.Runtime,
			PlanLatencyMs: float64(r.planLatency) / float64(time.Millisecond),
			Degraded:      r.degraded,
			Deadline:      r.deadline,
			SLOMiss:       r.sloMiss,
			TraceID:       r.trace,
		}
	}
	sort.Slice(s.Schedule, func(i, k int) bool {
		if s.Schedule[i].Start != s.Schedule[k].Start {
			return s.Schedule[i].Start < s.Schedule[k].Start
		}
		return s.Schedule[i].JobID < s.Schedule[k].JobID
	})
	c.snap.Store(s)
	c.emitPlanned(s, c.newlyPlanned)
	c.emitPublished(s)
	for _, id := range c.newlyPlanned {
		// Publication closes the traced submit→planned path: the first
		// snapshot carrying the job's plan is now visible to readers.
		if trace := c.traceOf(id); trace != "" {
			c.trace.Emit("schedd.job.published",
				obs.Int("t", c.vnow),
				obs.Int("job", int64(id)),
				obs.Int("version", s.Version),
				obs.Str("trace", trace))
		}
		c.pending.Delete(id)
	}
	c.newlyPlanned = c.newlyPlanned[:0]
}

// traceOf finds a job's trace ID wherever its record currently lives
// (waiting, running, or already completed).
func (c *Core) traceOf(id int) string {
	if r, ok := c.recs[id]; ok {
		return r.trace
	}
	if r, ok := c.running[id]; ok {
		return r.trace
	}
	if v, ok := c.done.Load(id); ok {
		return v.(JobStatus).TraceID
	}
	return ""
}

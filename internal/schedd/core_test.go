package schedd

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/faultinject"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/solvepipe"
)

func newScheduler(t *testing.T) *dynp.Scheduler {
	t.Helper()
	pols := []policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		t.Fatal(err)
	}
	s, err := dynp.New(pols, m, dynp.AdvancedDecider{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// startCore builds and starts a core; the test is responsible for Stop.
func startCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	if cfg.Machine == 0 {
		cfg.Machine = 16
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = newScheduler(t)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Stop(ctx)
	})
	return c
}

// waitPlanned blocks until n jobs have been planned (or times out).
func waitPlanned(t *testing.T, c *Core, n int64) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		s := c.Snapshot()
		if s.Counts.Planned >= n {
			return s
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %d planned jobs (have %d)", n, c.Snapshot().Counts.Planned)
	return nil
}

func TestSubmitValidation(t *testing.T) {
	c := startCore(t, Config{Machine: 8, Clock: NewManualClock(0)})
	cases := []SubmitRequest{
		{Width: 0, Estimate: 10},
		{Width: 9, Estimate: 10},            // wider than machine
		{Width: 1, Estimate: 0},             // no estimate
		{Width: 1, Estimate: 5, Runtime: 9}, // runtime > estimate
	}
	for _, req := range cases {
		if _, err := c.Submit(req); err == nil {
			t.Errorf("Submit(%+v) accepted, want validation error", req)
		}
	}
	if _, err := c.Submit(SubmitRequest{Width: 1, Estimate: 10}); err != nil {
		t.Fatalf("valid submit rejected: %v", err)
	}
}

func TestSubmitPlanAndQuery(t *testing.T) {
	// MaxBatch 1 plus waiting between submissions pins the order: job 1
	// is running before job 2 is even admitted, so every policy plans
	// job 2 behind job 1's estimated end.
	c := startCore(t, Config{Machine: 4, Clock: NewManualClock(0), MaxBatch: 1})
	r1, err := c.Submit(SubmitRequest{Width: 4, Estimate: 100})
	if err != nil {
		t.Fatal(err)
	}
	waitPlanned(t, c, 1)
	r2, err := c.Submit(SubmitRequest{Width: 4, Estimate: 50})
	if err != nil {
		t.Fatal(err)
	}
	s := waitPlanned(t, c, 2)
	// Machine is full with job 1; job 2 must be planned behind it.
	st1, ok := c.Job(r1.ID)
	if !ok {
		t.Fatalf("job %d not found", r1.ID)
	}
	if st1.State != StateRunning {
		t.Errorf("job 1 state = %s, want running (planned at now)", st1.State)
	}
	st2, ok := c.Job(r2.ID)
	if !ok {
		t.Fatalf("job %d not found", r2.ID)
	}
	if st2.State != StateWaiting {
		t.Errorf("job 2 state = %s, want waiting", st2.State)
	}
	if st2.PlannedStart != 100 {
		t.Errorf("job 2 planned start = %d, want 100 (behind job 1's estimate)", st2.PlannedStart)
	}
	if st2.PlanLatencyMs < 0 {
		t.Errorf("job 2 plan latency unset")
	}
	if len(s.Schedule) != 1 || s.Schedule[0].JobID != r2.ID {
		t.Errorf("schedule = %+v, want exactly job 2", s.Schedule)
	}
	if _, ok := c.Job(999); ok {
		t.Error("unknown job id found")
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	// A frozen manual clock plus MaxBatchDelay keeps the writer busy
	// long enough to overfill the bounded queue deterministically: the
	// first submission occupies the writer for the whole batch delay,
	// and the queue bound is hit behind it.
	c := startCore(t, Config{
		Machine:       8,
		Clock:         NewManualClock(0),
		QueueBound:    4,
		MaxBatch:      1, // batch of one: the delay applies per step
		MaxBatchDelay: 0,
	})
	// Saturate: the writer takes jobs one at a time; flood faster than
	// it can drain. With MaxBatch 1 the writer still plans quickly, so
	// use many submitters to guarantee overflow of a 4-slot queue.
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted, full := 0, 0
	for i := 0; i < 200; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Submit(SubmitRequest{Width: 1, Estimate: 10})
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				accepted++
			case err == ErrQueueFull:
				full++
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	wg.Wait()
	if accepted == 0 {
		t.Fatal("no submission accepted")
	}
	if full == 0 {
		t.Skip("queue never filled on this host (writer drained faster than 200 goroutines submitted)")
	}
	// Every accepted job must eventually be planned: none dropped.
	waitPlanned(t, c, int64(accepted))
}

func TestRateLimiting(t *testing.T) {
	c := startCore(t, Config{
		Machine:       8,
		Clock:         NewManualClock(0),
		RatePerSource: 0.001, // effectively one token, no refill in test time
		Burst:         2,
	})
	okA := 0
	var retryAfter time.Duration
	for i := 0; i < 5; i++ {
		_, err := c.Submit(SubmitRequest{Width: 1, Estimate: 10, Source: "a"})
		if err == nil {
			okA++
			continue
		}
		rl, ok := err.(*RateLimitedError)
		if !ok {
			t.Fatalf("want *RateLimitedError, got %v", err)
		}
		retryAfter = rl.RetryAfter
	}
	if okA != 2 {
		t.Errorf("source a: %d accepted, want burst of 2", okA)
	}
	if retryAfter <= 0 {
		t.Error("rate-limit rejection carries no Retry-After hint")
	}
	// An independent source has its own bucket.
	if _, err := c.Submit(SubmitRequest{Width: 1, Estimate: 10, Source: "b"}); err != nil {
		t.Errorf("source b rejected: %v", err)
	}
}

func TestBatchingReducesSteps(t *testing.T) {
	run := func(maxBatch int, delay time.Duration) (steps, planned int64) {
		reg := obs.NewRegistry()
		c := startCore(t, Config{
			Machine:       64,
			Clock:         NewManualClock(0),
			QueueBound:    512,
			MaxBatch:      maxBatch,
			MaxBatchDelay: delay,
			Metrics:       reg,
		})
		const n = 60
		for i := 0; i < n; i++ {
			if _, err := c.Submit(SubmitRequest{Width: 1 + i%4, Estimate: 1000}); err != nil {
				t.Fatal(err)
			}
		}
		s := waitPlanned(t, c, n)
		return s.Counts.Steps, s.Counts.Planned
	}
	stepsOff, _ := run(1, 0)
	stepsOn, _ := run(64, 20*time.Millisecond)
	if stepsOff != 60 {
		t.Errorf("batching off: %d steps, want one per submission (60)", stepsOff)
	}
	if stepsOn >= stepsOff/2 {
		t.Errorf("batching on: %d steps, want well below the %d of batching off", stepsOn, stepsOff)
	}
}

func TestCompletionAndPullForward(t *testing.T) {
	// Accelerated wall clock: virtual seconds fly by at 2000/s, so the
	// short job below completes in a few wall milliseconds and the
	// replan pulls the waiting job forward.
	c := startCore(t, Config{Machine: 4, Clock: NewWallClock(2000), MaxBatch: 1})
	// Job 1 fills the machine; estimate far above runtime, so its
	// completion frees capacity long before the plan expected.
	r1, err := c.Submit(SubmitRequest{Width: 4, Estimate: 100000, Runtime: 100})
	if err != nil {
		t.Fatal(err)
	}
	waitPlanned(t, c, 1) // job 1 must be on the machine before job 2 arrives
	r2, err := c.Submit(SubmitRequest{Width: 4, Estimate: 1000, Runtime: 1000})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st2, ok := c.Job(r2.ID)
		if ok && (st2.State == StateRunning || st2.State == StateDone) {
			if st2.Start >= 100000 {
				t.Errorf("job 2 started at %d: completion of job 1 did not pull it forward", st2.Start)
			}
			st1, _ := c.Job(r1.ID)
			if st1.State != StateDone {
				t.Errorf("job 1 state = %s, want done", st1.State)
			}
			s := c.Snapshot()
			if s.Counts.Replans == 0 {
				t.Error("no completion replan recorded")
			}
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("job 2 never started")
}

func TestDrainPlansQueuedJobs(t *testing.T) {
	reg := obs.NewRegistry()
	c, err := New(Config{
		Machine:   16,
		Scheduler: newScheduler(t),
		Clock:     NewManualClock(0),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := c.Submit(SubmitRequest{Width: 1, Estimate: 60}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := c.Stop(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !final.Draining {
		t.Error("final snapshot not marked draining")
	}
	if final.Counts.Planned != n {
		t.Errorf("drain planned %d of %d accepted jobs", final.Counts.Planned, n)
	}
	// After drain, submissions are rejected.
	if _, err := c.Submit(SubmitRequest{Width: 1, Estimate: 60}); err != ErrDraining {
		t.Errorf("submit after drain: err = %v, want ErrDraining", err)
	}
	// Stop is idempotent.
	again, err := c.Stop(context.Background())
	if err != nil || again != final {
		t.Errorf("second Stop = (%p, %v), want the first result (%p)", again, err, final)
	}
	if reg.Counter("schedd.rejects.draining").Value() == 0 {
		t.Error("draining rejection not counted")
	}
}

func TestILPStepDegradationSurfaced(t *testing.T) {
	// Every solve call fails: each step must degrade to the policy
	// schedule, stay up, and surface degraded=true with a reason.
	inj := faultinject.New(faultinject.NthCall{N: 1, Kind: faultinject.Infeasible})
	c := startCore(t, Config{
		Machine: 16,
		Clock:   NewManualClock(0),
		ILP: &ILPConfig{
			Pipe: solvepipe.Config{
				Budget:  2 * time.Second,
				Retries: 1,
				MIP:     mip.Options{MaxNodes: 1000},
				Hook:    inj.Hook,
			},
		},
	})
	r1, err := c.Submit(SubmitRequest{Width: 16, Estimate: 500})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(SubmitRequest{Width: 16, Estimate: 300}); err != nil {
		t.Fatal(err)
	}
	s := waitPlanned(t, c, 2)
	if s.Counts.DegradedSteps == 0 {
		t.Fatal("no degraded step recorded under 100% fault injection")
	}
	if !s.Degraded {
		t.Error("snapshot not marked degraded")
	}
	if !strings.Contains(s.DegradedReason, "infeasible") {
		t.Errorf("degraded reason %q does not name the failure", s.DegradedReason)
	}
	if st, ok := c.Job(r1.ID); !ok || st.State == StateQueued {
		t.Errorf("job 1 not planned despite fallback (state %v)", st.State)
	}
}

func TestILPStepSolvesWhenHealthy(t *testing.T) {
	c := startCore(t, Config{
		Machine: 8,
		Clock:   NewManualClock(0),
		ILP: &ILPConfig{
			Pipe: solvepipe.Config{
				Budget:  5 * time.Second,
				Retries: 1,
				MIP:     mip.Options{MaxNodes: 20000},
			},
		},
	})
	for i := 0; i < 6; i++ {
		if _, err := c.Submit(SubmitRequest{Width: 1 + i%3, Estimate: int64(100 * (i + 1))}); err != nil {
			t.Fatal(err)
		}
	}
	s := waitPlanned(t, c, 6)
	if s.Degraded {
		t.Errorf("healthy ILP run degraded: %s", s.DegradedReason)
	}
}

func TestSnapshotConsistencyUnderLoad(t *testing.T) {
	// Readers hammer snapshots and job lookups while the writer plans;
	// run under -race this is the lock-free-read correctness test.
	c := startCore(t, Config{
		Machine:    32,
		Clock:      NewWallClock(500),
		QueueBound: 512,
		MaxBatch:   16,
	})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := c.Snapshot()
				if s == nil {
					t.Error("nil snapshot")
					return
				}
				for id := range s.Active {
					c.Job(id)
				}
				c.Job(1)
			}
		}()
	}
	const n = 120
	accepted := 0
	for i := 0; i < n; i++ {
		if _, err := c.Submit(SubmitRequest{Width: 1 + i%8, Estimate: int64(60 + i), Runtime: 30}); err == nil {
			accepted++
		}
		if i%10 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	waitPlanned(t, c, int64(accepted))
	close(stop)
	wg.Wait()
	// Every accepted job is visible through some read path.
	for id := 1; id <= accepted; id++ {
		if _, ok := c.Job(id); !ok {
			t.Errorf("accepted job %d invisible", id)
		}
	}
}

// Queued-job migration: the core-side half of the shard rebalancer's
// move protocol (internal/shard). A migration moves a job that is
// admitted but not yet planned — still sitting in the submit queue,
// untouched by the writer loop — from this core to another shard's
// core. The protocol is exactly-once under crashes:
//
//  1. StealQueued drains eligible submissions from the queue and logs a
//     durable migrate-out record per job (fsynced before the job is
//     handed to the caller) carrying the full job, the target shard,
//     and a synthetic idempotency key "mig:<src-shard>:<id>".
//  2. The router submits the job to the recorded target shard under
//     that key. The target's own WAL makes the admission durable, and
//     the key dedupes any retry of the hand-off.
//  3. MigrateDone logs the confirmation (with the job's new global ID)
//     and clears the pending entry.
//
// A crash between any two steps leaves the job in this core's pending
// set (rebuilt by WAL replay); the router re-drives step 2 against the
// *recorded* target — never a freshly chosen one — so the target-side
// dedup key guarantees the job is admitted, and therefore planned,
// exactly once. Keyed submissions are never stolen: their routing is
// pinned by key hash at the front end, so a rebalance can never split
// one idempotency key across shards.
package schedd

import (
	"sort"

	"repro/internal/obs"
)

// MigratedJob is one queued job stolen from this core's submit queue,
// ready to be re-submitted to the target shard.
type MigratedJob struct {
	// ID is the job's local ID in the source core.
	ID int `json:"id"`
	// Submit is the virtual admission time at the source.
	Submit   int64  `json:"submit"`
	Width    int    `json:"width"`
	Estimate int64  `json:"estimate_s"`
	Runtime  int64  `json:"runtime_s"`
	Source   string `json:"source,omitempty"`
	Trace    string `json:"trace,omitempty"`
	// Target is the shard index the migration was committed against.
	// Crash recovery must complete the hand-off to this exact shard.
	Target int `json:"target"`
	// Key is the synthetic idempotency key that makes the hand-off
	// retryable: "mig:<src-shard>:<id>".
	Key string `json:"key"`
}

// StealQueued removes up to max unkeyed submissions from the submit
// queue for migration to the given target shard, durably logging each
// migrate-out before returning it. Keyed submissions are re-queued (a
// key pins its job to the shard the front end hashed it to), as are
// jobs wider than maxWidth (the target's sub-machine size; a wider job
// would be rejected by the target forever, 0 = unbounded). A stolen
// job stays visible to Job as queued — the pending-migration entry is
// recorded before the pending entry is deleted — until MigrateDone
// confirms the hand-off, so a status lookup racing a migration (or
// arriving after crash recovery, before the hand-off is re-driven)
// never 404s. Safe to call concurrently with Submit and the writer
// loop: the queue is a channel, so every submission is drained by
// exactly one side.
func (c *Core) StealQueued(max, target, maxWidth int) []MigratedJob {
	if max <= 0 {
		return nil
	}
	var out []MigratedJob
	var requeue []*submission
	// Bound the scan by the backlog observed at entry so concurrent
	// submissions cannot trap the loop, and keyed jobs are not examined
	// twice.
	scan := len(c.submitCh)
	for i := 0; i < scan && len(out) < max; i++ {
		var sub *submission
		select {
		case sub = <-c.submitCh:
		default:
			i = scan // queue drained
			continue
		}
		if sub.idemKey != "" || (maxWidth > 0 && sub.job.Width > maxWidth) {
			requeue = append(requeue, sub)
			continue
		}
		m := MigratedJob{
			ID: sub.job.ID, Submit: sub.job.Submit, Width: sub.job.Width,
			Estimate: sub.job.Estimate, Runtime: sub.job.Runtime,
			Source: sub.source, Trace: sub.trace,
			Target: target, Key: migrationKey(c.cfg.ShardID, sub.job.ID),
		}
		if w := c.cfg.WAL; w != nil {
			// The migrate-out barrier: once this record is durable the
			// job's home is the target shard, even across a crash. On a
			// WAL failure the job stays here (re-queued) rather than
			// risking a copy on both sides.
			if _, err := w.AppendSync(walMigrate, m, nil); err != nil {
				c.trace.Emit("schedd.migrate.wal.error", obs.Int("job", int64(sub.job.ID)), obs.Str("err", err.Error()))
				requeue = append(requeue, sub)
				continue
			}
		}
		c.migMu.Lock()
		c.pendingMig[m.ID] = m
		c.migMu.Unlock()
		c.pending.Delete(m.ID)
		c.inflightDone(sub.walSeq)
		c.accepted.Add(-1)
		c.trace.Emit("schedd.migrate.out",
			obs.Int("job", int64(m.ID)),
			obs.Int("target", int64(target)),
			obs.Int("width", int64(m.Width)))
		out = append(out, m)
	}
	for _, sub := range requeue {
		// Capacity exists (we just drained at least this many slots); a
		// racing Submit may have refilled the queue, in which case the
		// send blocks briefly until the writer drains — never drops.
		c.submitCh <- sub
	}
	return out
}

// MigrationKeyPrefix is the reserved idempotency-key namespace of the
// migration hand-off protocol. The sharded front end rejects client
// keys carrying it: a client key like "mig:0:7" that hashed to a
// migration's target shard would otherwise dedup a user job against a
// migrated one (or vice versa), silently returning the wrong job's ID.
const MigrationKeyPrefix = "mig:"

// migrationKey mints the synthetic idempotency key of a migrated job.
func migrationKey(srcShard, id int) string {
	return MigrationKeyPrefix + itoa(srcShard) + ":" + itoa(id)
}

func itoa(v int) string {
	// Tiny non-negative itoa to keep the hot path allocation-lean.
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// MigrateDone confirms that the target shard durably admitted the
// migrated job: the pending entry is cleared, the alias from the old
// local ID to the job's new global ID is recorded for front-end
// lookups, and the confirmation is logged (asynchronously — if it is
// lost, recovery re-drives the hand-off and the target dedups it).
func (c *Core) MigrateDone(id int, targetGlobal int64) {
	c.migMu.Lock()
	delete(c.pendingMig, id)
	c.migAliases[id] = targetGlobal
	c.migMu.Unlock()
	c.walAppend(walMigrateDone, migrateDoneWAL{ID: id, TargetGlobal: targetGlobal})
	c.trace.Emit("schedd.migrate.done",
		obs.Int("job", int64(id)),
		obs.Int("target_global", targetGlobal))
}

// PendingMigrations returns the migrate-outs whose target hand-off has
// not been confirmed, sorted by job ID. After WAL recovery the router
// completes each one against its recorded target shard.
func (c *Core) PendingMigrations() []MigratedJob {
	c.migMu.Lock()
	out := make([]MigratedJob, 0, len(c.pendingMig))
	for _, m := range c.pendingMig {
		out = append(out, m)
	}
	c.migMu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// MigrationAliases returns the local-ID → new-global-ID map of every
// confirmed migration (a copy). The router uses it to rebuild its alias
// table after a restart.
func (c *Core) MigrationAliases() map[int]int64 {
	c.migMu.Lock()
	defer c.migMu.Unlock()
	out := make(map[int]int64, len(c.migAliases))
	for k, v := range c.migAliases {
		out[k] = v
	}
	return out
}

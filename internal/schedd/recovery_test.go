// Crash-recovery tests: in-process kill -9 simulation (wal.Log.Abort
// drops unacknowledged appends, exactly like an OS killing the process
// after the acknowledged bytes reached the kernel), then a second core
// over the same directory must recover every accepted job — zero lost,
// zero duplicated — and idempotent resubmission must dedupe across the
// restart.
package schedd_test

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/wal"
)

func newTestScheduler(t *testing.T) *dynp.Scheduler {
	t.Helper()
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := dynp.New([]policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}, m, dynp.AdvancedDecider{})
	if err != nil {
		t.Fatal(err)
	}
	return sched
}

func newWALCore(t *testing.T, dir string, clock schedd.Clock, snapEvery int) (*schedd.Core, *wal.Log) {
	t.Helper()
	log, rep, err := wal.Open(wal.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	core, err := schedd.New(schedd.Config{
		Machine:       64,
		Scheduler:     newTestScheduler(t),
		Clock:         clock,
		QueueBound:    512,
		MaxBatch:      32,
		WAL:           log,
		Recovery:      rep,
		SnapshotEvery: snapEvery,
		Metrics:       obs.NewRegistry(),
	})
	if err != nil {
		t.Fatalf("schedd.New: %v", err)
	}
	return core, log
}

func waitReady(t *testing.T, core *schedd.Core) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for core.Phase() != schedd.PhaseReady {
		if time.Now().After(deadline) {
			t.Fatalf("core never became ready (phase %s)", core.Phase())
		}
		time.Sleep(time.Millisecond)
	}
}

// submitN admits n jobs and returns their IDs (only successful admits).
func submitN(t *testing.T, core *schedd.Core, n int, keyPrefix string) []int {
	t.Helper()
	var ids []int
	for i := 0; i < n; i++ {
		req := schedd.SubmitRequest{Width: 1 + i%8, Estimate: 100 + int64(i)}
		if keyPrefix != "" {
			req.IdempotencyKey = fmt.Sprintf("%s-%d", keyPrefix, i)
		}
		resp, err := core.Submit(req)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		if resp.Deduplicated {
			t.Fatalf("fresh submit %d reported deduplicated", i)
		}
		ids = append(ids, resp.ID)
	}
	return ids
}

// waitPlanned blocks until every given job is out of the queued state.
func waitPlanned(t *testing.T, core *schedd.Core, ids []int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		allPlanned := true
		for _, id := range ids {
			st, ok := core.Job(id)
			if !ok || st.State == schedd.StateQueued {
				allPlanned = false
				break
			}
		}
		if allPlanned {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("jobs never planned")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCrashRecoveryZeroLostZeroDuplicated(t *testing.T) {
	dir := t.TempDir()
	clock := schedd.NewManualClock(1000)
	core, log := newWALCore(t, dir, clock, 1<<20)
	core.Start()
	waitReady(t, core)
	ids := submitN(t, core, 40, "")
	waitPlanned(t, core, ids)

	// Crash: no drain, no final fsync, queued-but-unwritten appends
	// dropped. Everything the admission path acknowledged is on disk
	// because AppendSync returns only after the write.
	log.Abort()

	clock2 := schedd.NewManualClock(1000)
	core2, log2 := newWALCore(t, dir, clock2, 1<<20)
	core2.Start()
	waitReady(t, core2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		core2.Stop(ctx)
		log2.Close()
	}()

	// Every accepted job is present exactly once, with its original
	// shape, and planned (the recovery replan covers unplanned ones).
	waitPlanned(t, core2, ids)
	seen := map[int]bool{}
	for i, id := range ids {
		st, ok := core2.Job(id)
		if !ok {
			t.Fatalf("job %d lost across crash", id)
		}
		if seen[id] {
			t.Fatalf("job %d duplicated", id)
		}
		seen[id] = true
		if st.Width != 1+i%8 || st.Estimate != 100+int64(i) {
			t.Fatalf("job %d shape mutated: %+v", id, st)
		}
	}
	// Counters recovered: submitted matches the accepted set.
	if got := core2.Snapshot().Counts.Submitted; got != int64(len(ids)) {
		t.Fatalf("recovered Submitted = %d, want %d", got, len(ids))
	}
	// New IDs never collide with recovered ones.
	resp, err := core2.Submit(schedd.SubmitRequest{Width: 1, Estimate: 50})
	if err != nil {
		t.Fatal(err)
	}
	if seen[resp.ID] {
		t.Fatalf("post-recovery ID %d collides with a recovered job", resp.ID)
	}
}

func TestCrashRecoveryAcrossSnapshotAndLifecycle(t *testing.T) {
	// Jobs in every state (done, running, waiting, queued) plus a
	// snapshot mid-log: recovery must reassemble all of them.
	dir := t.TempDir()
	clock := schedd.NewManualClock(1000)
	core, log := newWALCore(t, dir, clock, 1<<20)
	core.Start()
	waitReady(t, core)

	ids := submitN(t, core, 12, "")
	waitPlanned(t, core, ids)
	// Let time pass so some jobs start and complete.
	clock.Advance(150)
	// Poke the writer: submit one more job so it advances the clock.
	more, err := core.Submit(schedd.SubmitRequest{Width: 2, Estimate: 300})
	if err != nil {
		t.Fatal(err)
	}
	waitPlanned(t, core, []int{more.ID})
	all := append(append([]int{}, ids...), more.ID)

	var done, active int
	for _, id := range all {
		st, ok := core.Job(id)
		if !ok {
			t.Fatalf("job %d missing before crash", id)
		}
		if st.State == schedd.StateDone {
			done++
		} else {
			active++
		}
	}
	if done == 0 {
		t.Fatalf("test needs completed jobs before the crash (done=%d active=%d)", done, active)
	}

	// Barrier: writer-loop records (plan/start/complete) are appended
	// asynchronously; this test's counter equality needs them all on
	// disk, so flush the queue before the crash. (The zero-lost
	// guarantee itself never needs this — dropped writer records are
	// repaired by the recovery replan.)
	if _, err := log.AppendSync("barrier", nil, nil); err != nil {
		t.Fatal(err)
	}
	log.Abort()

	clock2 := schedd.NewManualClock(1150)
	core2, log2 := newWALCore(t, dir, clock2, 1<<20)
	core2.Start()
	waitReady(t, core2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		core2.Stop(ctx)
		log2.Close()
	}()

	for _, id := range all {
		st, ok := core2.Job(id)
		if !ok {
			t.Fatalf("job %d lost across crash", id)
		}
		pre, _ := core.Job(id)
		if pre.State == schedd.StateDone {
			if st.State != schedd.StateDone || st.End != pre.End || st.Start != pre.Start {
				t.Fatalf("done job %d mutated: pre %+v post %+v", id, pre, st)
			}
		}
	}
	c2 := core2.Snapshot().Counts
	c1 := core.Snapshot().Counts
	if c2.Completed != c1.Completed || c2.Started != c1.Started {
		t.Fatalf("lifecycle counters diverged: pre %+v post %+v", c1, c2)
	}
}

func TestRecoveryWithSnapshotCadence(t *testing.T) {
	// Aggressive snapshot cadence: every few records. Recovery must be
	// identical whether state comes from the snapshot or the tail.
	dir := t.TempDir()
	clock := schedd.NewManualClock(0)
	core, log := newWALCore(t, dir, clock, 4)
	core.Start()
	waitReady(t, core)
	ids := submitN(t, core, 30, "")
	waitPlanned(t, core, ids)
	log.Abort()

	core2, log2 := newWALCore(t, dir, schedd.NewManualClock(0), 4)
	core2.Start()
	waitReady(t, core2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		core2.Stop(ctx)
		log2.Close()
	}()
	for _, id := range ids {
		if _, ok := core2.Job(id); !ok {
			t.Fatalf("job %d lost with snapshot cadence", id)
		}
	}
	if got := core2.Snapshot().Counts.Submitted; got != int64(len(ids)) {
		t.Fatalf("Submitted = %d, want %d", got, len(ids))
	}
}

func TestIdempotentResubmissionSameProcess(t *testing.T) {
	dir := t.TempDir()
	core, log := newWALCore(t, dir, schedd.NewManualClock(0), 1<<20)
	core.Start()
	waitReady(t, core)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		core.Stop(ctx)
		log.Close()
	}()

	first, err := core.Submit(schedd.SubmitRequest{Width: 4, Estimate: 100, IdempotencyKey: "job-a"})
	if err != nil {
		t.Fatal(err)
	}
	second, err := core.Submit(schedd.SubmitRequest{Width: 4, Estimate: 100, IdempotencyKey: "job-a"})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Deduplicated || second.ID != first.ID {
		t.Fatalf("resubmit not deduped: first %+v second %+v", first, second)
	}
	other, err := core.Submit(schedd.SubmitRequest{Width: 4, Estimate: 100, IdempotencyKey: "job-b"})
	if err != nil {
		t.Fatal(err)
	}
	if other.Deduplicated || other.ID == first.ID {
		t.Fatalf("distinct key collided: %+v", other)
	}
}

func TestIdempotentResubmissionAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	core, log := newWALCore(t, dir, schedd.NewManualClock(0), 1<<20)
	core.Start()
	waitReady(t, core)
	ids := submitN(t, core, 10, "retry")
	waitPlanned(t, core, ids)
	log.Abort()

	core2, log2 := newWALCore(t, dir, schedd.NewManualClock(0), 1<<20)
	core2.Start()
	waitReady(t, core2)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		core2.Stop(ctx)
		log2.Close()
	}()

	// A client that saw the crash retries every submission with the
	// same keys: all must dedupe onto the recovered jobs.
	for i := 0; i < 10; i++ {
		resp, err := core2.Submit(schedd.SubmitRequest{
			Width: 1 + i%8, Estimate: 100 + int64(i),
			IdempotencyKey: fmt.Sprintf("retry-%d", i),
		})
		if err != nil {
			t.Fatalf("retry %d: %v", i, err)
		}
		if !resp.Deduplicated {
			t.Fatalf("retry %d admitted a duplicate (id %d)", i, resp.ID)
		}
		if resp.ID != ids[i] {
			t.Fatalf("retry %d deduped to %d, want %d", i, resp.ID, ids[i])
		}
	}
	if got := core2.Snapshot().Counts.Submitted; got != int64(len(ids)) {
		t.Fatalf("retries inflated Submitted to %d, want %d", got, len(ids))
	}
}

func TestSubmitRejectedWhileReplaying(t *testing.T) {
	dir := t.TempDir()
	core, log := newWALCore(t, dir, schedd.NewManualClock(0), 1<<20)
	// Not started: the phase stays "replaying", exactly the window
	// between process start and recovery completion.
	if core.Phase() != schedd.PhaseReplaying {
		t.Fatalf("phase = %s before recovery", core.Phase())
	}
	_, err := core.Submit(schedd.SubmitRequest{Width: 1, Estimate: 10})
	if !errors.Is(err, schedd.ErrRecovering) {
		t.Fatalf("submit during replay: %v", err)
	}
	core.Start()
	waitReady(t, core)
	if _, err := core.Submit(schedd.SubmitRequest{Width: 1, Estimate: 10}); err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	core.Stop(ctx)
	log.Close()
}

func TestCleanDrainLeavesReplayFreeLog(t *testing.T) {
	dir := t.TempDir()
	core, log := newWALCore(t, dir, schedd.NewManualClock(0), 1<<20)
	core.Start()
	waitReady(t, core)
	ids := submitN(t, core, 8, "")
	waitPlanned(t, core, ids)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := core.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}
	// The drain snapshot covers the whole log: reopening replays only
	// the snapshot, no records.
	_, rep, err := wal.Open(wal.Options{Dir: dir, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 0 {
		t.Fatalf("replay after clean drain has %d records", len(rep.Records))
	}
	if rep.SnapshotSeq == 0 {
		t.Fatal("no drain snapshot written")
	}
}

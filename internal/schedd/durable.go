// Durable admission: the WAL record vocabulary of the service, the
// replay that rebuilds writer state after a crash, and the periodic
// snapshots that bound replay time.
//
// Every admission decision is logged before it commits: a submission is
// AppendSync'd (group-commit fsync) before the HTTP 202 is written, and
// the writer loop appends plan adoptions, starts, completions and
// queue-full rejections as it makes them. Record application is
// idempotent — a submit for a known job, a start for a job already
// running, a plan older than the state's step seq are all skipped — so
// a snapshot's lower bound may be conservative without ever duplicating
// work on replay. The one deliberate asymmetry: a crash between a
// submission's record and its queue-full rejection record resurrects
// the job on restart (the client saw 429, the job is admitted anyway).
// Durability always errs toward keeping accepted work, never losing it.
package schedd

import (
	"encoding/json"
	"errors"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/wal"
)

// ErrRecovering is returned by Submit while the writer is still
// replaying the write-ahead log (HTTP 503 + Retry-After).
var ErrRecovering = errors.New("schedd: replaying write-ahead log, not accepting submissions")

// Recovery phases reported by Phase and /v1/healthz.
const (
	PhaseReady     = "ready"
	PhaseReplaying = "replaying"
)

const (
	phaseReady int32 = iota
	phaseReplaying
)

// WAL record types.
const (
	walSubmit      = "submit"
	walPlan        = "plan"
	walStart       = "start"
	walComplete    = "complete"
	walReject      = "reject"
	walMigrate     = "migrate"      // queued job stolen for another shard (data: MigratedJob)
	walMigrateDone = "migrate_done" // target shard confirmed the hand-off
)

// migrateDoneWAL confirms a migrated job's durable admission at its
// target shard; TargetGlobal is the job's new front-end (global) ID.
type migrateDoneWAL struct {
	ID           int   `json:"id"`
	TargetGlobal int64 `json:"target_global"`
}

// submitWAL is the durable form of one admitted submission.
type submitWAL struct {
	ID       int    `json:"id"`
	Submit   int64  `json:"submit"`
	Width    int    `json:"width"`
	Estimate int64  `json:"estimate_s"`
	Runtime  int64  `json:"runtime_s"`
	Source   string `json:"source,omitempty"`
	Trace    string `json:"trace,omitempty"`
	IdemKey  string `json:"idem_key,omitempty"`
	Deadline int64  `json:"deadline,omitempty"` // absolute virtual SLO deadline (0 = none)
}

// planEntryWAL is one (job, planned start) row of a logged plan.
type planEntryWAL struct {
	ID    int   `json:"id"`
	Start int64 `json:"start"`
}

// planWAL logs one adopted plan (or a failed step, for exact counter
// replay). StepSeq is the writer's monotone step counter; replay skips
// records at or below the recovered state's StepSeq.
type planWAL struct {
	StepSeq      int64          `json:"step_seq"`
	Kind         string         `json:"kind"` // "step" | "completion" | "anytime"
	Now          int64          `json:"t"`
	Batch        int            `json:"batch,omitempty"`
	Degraded     bool           `json:"degraded,omitempty"`
	DegReason    string         `json:"deg_reason,omitempty"`
	Failed       bool           `json:"failed,omitempty"` // no schedule produced
	Entries      []planEntryWAL `json:"entries,omitempty"`
	NewlyPlanned []int          `json:"newly_planned,omitempty"`
}

type startWAL struct {
	ID int   `json:"id"`
	T  int64 `json:"t"`
}

type completeWAL struct {
	Status JobStatus `json:"status"`
}

type rejectWAL struct {
	ID      int    `json:"id"`
	Reason  string `json:"reason"`
	IdemKey string `json:"idem_key,omitempty"`
}

// walJobState is one outstanding (waiting or running) job in a snapshot.
type walJobState struct {
	ID           int     `json:"id"`
	Submit       int64   `json:"submit"`
	Width        int     `json:"width"`
	Estimate     int64   `json:"estimate_s"`
	Runtime      int64   `json:"runtime_s"`
	Trace        string  `json:"trace,omitempty"`
	Planned      bool    `json:"planned,omitempty"`
	PlannedStart int64   `json:"planned_start"`
	PlanDegraded bool    `json:"plan_degraded,omitempty"`
	Start        int64   `json:"start"` // >= 0: running since Start
	PlanLatMs    float64 `json:"plan_latency_ms,omitempty"`
	Deadline     int64   `json:"deadline,omitempty"`
	SLOMiss      bool    `json:"slo_miss,omitempty"`
}

// walState is the snapshot the writer persists every SnapshotEvery
// records: everything replay needs that the log tail no longer covers.
type walState struct {
	NextID    int64          `json:"next_id"`
	Accepted  int64          `json:"accepted"`
	VNow      int64          `json:"vnow"`
	StepSeq   int64          `json:"step_seq"`
	Counts    Counters       `json:"counts"`
	Degraded  bool           `json:"degraded,omitempty"`
	DegReason string         `json:"deg_reason,omitempty"`
	Jobs      []walJobState  `json:"jobs"`
	Plan      []planEntryWAL `json:"plan,omitempty"`
	Done      []JobStatus    `json:"done,omitempty"`
	Idem      map[string]int `json:"idem,omitempty"`
	// PendingMig and MigAliases persist the migration protocol's state
	// (see migrate.go) so a snapshot-bounded replay still completes
	// in-flight hand-offs and answers aliased job lookups.
	PendingMig []MigratedJob `json:"pending_mig,omitempty"`
	MigAliases map[int]int64 `json:"mig_aliases,omitempty"`
}

// Phase reports the recovery phase: PhaseReplaying until the writer has
// re-applied the log, PhaseReady after (always ready without a WAL).
func (c *Core) Phase() string {
	if c.phase.Load() == phaseReplaying {
		return PhaseReplaying
	}
	return PhaseReady
}

// inflightAdd registers a submit record's seq as accepted-but-not-yet-
// consumed by the writer. Called from AppendSync's onSeq callback, so
// registration is atomic with seq assignment.
func (c *Core) inflightAdd(seq uint64) {
	c.inflightMu.Lock()
	c.inflight[seq] = struct{}{}
	c.inflightMu.Unlock()
}

// inflightDone removes a seq once the writer owns the submission (or
// the admission path rejected it).
func (c *Core) inflightDone(seq uint64) {
	if seq == 0 {
		return
	}
	c.inflightMu.Lock()
	delete(c.inflight, seq)
	c.inflightMu.Unlock()
}

// snapshotLowerBound returns the largest seq S such that the writer's
// state covers every record <= S: the tail, held back below any submit
// record still sitting unconsumed in the queue. The tail is read before
// the set is locked so a submit assigned in between only makes the
// bound more conservative (replay application is idempotent, so a
// conservative bound is always safe).
func (c *Core) snapshotLowerBound() uint64 {
	s := c.cfg.WAL.Seq()
	c.inflightMu.Lock()
	for seq := range c.inflight {
		if seq-1 < s {
			s = seq - 1
		}
	}
	c.inflightMu.Unlock()
	return s
}

// walAppend logs one writer-loop record asynchronously (its loss in a
// crash is repaired by replaying the decision, not by losing a job; the
// durability barrier is only on the admission path). A background write
// failure is surfaced once via the trace and the wal error counter.
func (c *Core) walAppend(typ string, data any) {
	if c.cfg.WAL == nil {
		return
	}
	if _, err := c.cfg.WAL.Append(typ, data); err != nil {
		c.trace.Emit("schedd.wal.error", obs.Str("type", typ), obs.Str("err", err.Error()))
	}
}

// appendPlanWAL logs the plan the writer just adopted. Entries carry
// only the newly planned jobs' starts (read from c.plan after due
// starts fired, so replay never resurrects a start that already
// happened): the full plan would make every record O(waiting) —
// hundreds of KB per step at scale, queued ahead of latency-sensitive
// submit records — and recovery re-steps anyway, rebuilding every
// start from scratch. The record's job is idempotency bookkeeping
// (StepSeq, planned flags, counters), not plan fidelity; the periodic
// snapshot carries the full plan.
func (c *Core) appendPlanWAL(kind string, now int64, batch int, degraded bool, reason string, newly []int) {
	if c.cfg.WAL == nil {
		return
	}
	p := planWAL{
		StepSeq: c.stepSeq, Kind: kind, Now: now, Batch: batch,
		Degraded: degraded, DegReason: reason,
	}
	if len(newly) > 0 {
		p.NewlyPlanned = append([]int(nil), newly...)
		for _, id := range newly {
			if start, ok := c.plan[id]; ok {
				if _, w := c.waiting[id]; w {
					p.Entries = append(p.Entries, planEntryWAL{ID: id, Start: start})
				}
			}
		}
	}
	c.walAppend(walPlan, p)
}

// appendFailedStepWAL logs a step that produced no schedule, so counter
// replay stays exact.
func (c *Core) appendFailedStepWAL(reason string) {
	if c.cfg.WAL == nil {
		return
	}
	c.walAppend(walPlan, planWAL{
		StepSeq: c.stepSeq, Kind: "step", Now: c.vnow,
		Degraded: true, DegReason: reason, Failed: true,
	})
}

// maybeSnapshot persists a state snapshot once SnapshotEvery records
// have accumulated since the last one. Runs on the writer goroutine.
func (c *Core) maybeSnapshot() {
	w := c.cfg.WAL
	if w == nil {
		return
	}
	if w.Seq() < c.lastSnapSeq+uint64(c.cfg.SnapshotEvery) {
		return
	}
	c.snapshotNow()
}

// snapshotNow persists a snapshot unconditionally (drain path, or a due
// cadence tick). Runs on the writer goroutine.
func (c *Core) snapshotNow() {
	w := c.cfg.WAL
	if w == nil {
		return
	}
	s := c.snapshotLowerBound()
	if s <= c.lastSnapSeq {
		return
	}
	if err := w.Snapshot(s, c.buildWALState()); err != nil {
		c.trace.Emit("schedd.wal.snapshot.failed", obs.Str("err", err.Error()))
		return
	}
	c.lastSnapSeq = s
}

// buildWALState captures the writer's view. Accepted is derived from
// the writer-known job set (not the live atomic) so submit records
// still in flight replay on top without double counting.
func (c *Core) buildWALState() *walState {
	st := &walState{
		NextID:    c.nextID.Load(),
		VNow:      c.vnow,
		StepSeq:   c.stepSeq,
		Counts:    c.counts,
		Degraded:  c.degraded,
		DegReason: c.degReason,
		Idem:      map[string]int{},
	}
	st.Accepted = int64(len(c.waiting)+len(c.running)) + c.counts.Completed
	st.Counts.Submitted = st.Accepted
	for id, j := range c.waiting {
		r := c.recs[id]
		st.Jobs = append(st.Jobs, walJobState{
			ID: id, Submit: j.Submit, Width: j.Width, Estimate: j.Estimate, Runtime: j.Runtime,
			Trace: r.trace, Planned: r.planned, PlannedStart: r.plannedStart,
			PlanDegraded: r.degraded, Start: -1,
			PlanLatMs: float64(r.planLatency) / float64(time.Millisecond),
			Deadline:  r.deadline, SLOMiss: r.sloMiss,
		})
	}
	for id, r := range c.running {
		st.Jobs = append(st.Jobs, walJobState{
			ID: id, Submit: r.job.Submit, Width: r.job.Width, Estimate: r.job.Estimate, Runtime: r.job.Runtime,
			Trace: r.trace, Planned: r.planned, PlannedStart: r.plannedStart,
			PlanDegraded: r.degraded, Start: r.start,
			PlanLatMs: float64(r.planLatency) / float64(time.Millisecond),
			Deadline:  r.deadline, SLOMiss: r.sloMiss,
		})
	}
	for id, start := range c.plan {
		if _, ok := c.waiting[id]; ok {
			st.Plan = append(st.Plan, planEntryWAL{ID: id, Start: start})
		}
	}
	c.done.Range(func(_, v any) bool {
		st.Done = append(st.Done, v.(JobStatus))
		return true
	})
	c.idem.Range(func(k, v any) bool {
		st.Idem[k.(string)] = v.(int)
		return true
	})
	c.migMu.Lock()
	for _, m := range c.pendingMig {
		st.PendingMig = append(st.PendingMig, m)
	}
	if len(c.migAliases) > 0 {
		st.MigAliases = make(map[int]int64, len(c.migAliases))
		for k, v := range c.migAliases {
			st.MigAliases[k] = v
		}
	}
	c.migMu.Unlock()
	return st
}

// recoverFromWAL rebuilds writer state from Config.Recovery, replans
// any admitted-but-unplanned jobs, publishes the recovered view, and
// flips the phase to ready. Runs first on the writer goroutine.
func (c *Core) recoverFromWAL() {
	if c.cfg.WAL == nil {
		c.phase.Store(phaseReady)
		return
	}
	rep := c.cfg.Recovery
	span := c.trace.StartSpan("schedd.recover")
	applied, skipped := 0, 0
	if rep != nil {
		if len(rep.Snapshot) > 0 {
			var st walState
			if err := json.Unmarshal(rep.Snapshot, &st); err != nil {
				c.trace.Emit("schedd.recover.badsnapshot", obs.Str("err", err.Error()))
			} else {
				c.applyWALState(&st)
			}
		}
		for _, r := range rep.Records {
			if c.applyWALRecord(r) {
				applied++
			} else {
				skipped++
			}
		}
		c.lastSnapSeq = rep.SnapshotSeq
	}
	// Resume the virtual clock where the crashed process left it, so
	// recovered plans fire on schedule instead of waiting out a restart
	// of virtual time from zero.
	if rc, ok := c.clock.(interface{ Resume(int64) }); ok && c.vnow > c.clock.Now() {
		rc.Resume(c.vnow)
	}
	// The recovery replan: plan records only carry newly-planned starts,
	// so whenever any job is still waiting the plan must be rebuilt from
	// scratch before the service goes ready (this also re-plans jobs
	// whose plan record was lost with the crash).
	if len(c.waiting) > 0 {
		c.step(nil)
	}
	c.publish()
	c.phase.Store(phaseReady)
	span.End(
		obs.Int("applied", int64(applied)),
		obs.Int("skipped", int64(skipped)),
		obs.Int("waiting", int64(len(c.waiting))),
		obs.Int("running", int64(len(c.running))),
		obs.Int("vnow", c.vnow))
	c.trace.Emit("schedd.recovered",
		obs.Int("applied", int64(applied)),
		obs.Int("waiting", int64(len(c.waiting))),
		obs.Int("running", int64(len(c.running))))
}

// applyWALState installs a recovered snapshot as the writer state.
func (c *Core) applyWALState(st *walState) {
	c.nextID.Store(st.NextID)
	c.accepted.Store(st.Accepted)
	c.vnow = st.VNow
	c.stepSeq = st.StepSeq
	c.counts = st.Counts
	c.degraded, c.degReason = st.Degraded, st.DegReason
	now := time.Now()
	for _, js := range st.Jobs {
		j := &job.Job{ID: js.ID, Submit: js.Submit, Width: js.Width, Estimate: js.Estimate, Runtime: js.Runtime}
		r := &rec{
			job: j, admitWall: now, trace: js.Trace,
			planned: js.Planned, plannedStart: js.PlannedStart,
			degraded: js.PlanDegraded, start: js.Start,
			planLatency: time.Duration(js.PlanLatMs * float64(time.Millisecond)),
			deadline:    js.Deadline, sloMiss: js.SLOMiss,
		}
		if js.Start >= 0 {
			c.running[js.ID] = r
		} else {
			c.waiting[js.ID] = j
			c.recs[js.ID] = r
		}
	}
	c.plan = make(map[int]int64, len(st.Plan))
	for _, e := range st.Plan {
		if _, ok := c.waiting[e.ID]; ok {
			c.plan[e.ID] = e.Start
		}
	}
	for _, d := range st.Done {
		c.done.Store(d.ID, d)
	}
	for k, v := range st.Idem {
		c.idem.Store(k, v)
	}
	c.migMu.Lock()
	for _, m := range st.PendingMig {
		c.pendingMig[m.ID] = m
	}
	for k, v := range st.MigAliases {
		c.migAliases[k] = v
	}
	c.migMu.Unlock()
}

// jobKnown reports whether replay already holds the job anywhere.
func (c *Core) jobKnown(id int) bool {
	if _, ok := c.recs[id]; ok {
		return true
	}
	if _, ok := c.running[id]; ok {
		return true
	}
	_, ok := c.done.Load(id)
	return ok
}

// applyWALRecord re-applies one log record; it reports whether the
// record changed state (false = skipped as already covered).
func (c *Core) applyWALRecord(r wal.Record) bool {
	switch r.Type {
	case walSubmit:
		var s submitWAL
		if json.Unmarshal(r.Data, &s) != nil || c.jobKnown(s.ID) {
			return false
		}
		j := &job.Job{ID: s.ID, Submit: s.Submit, Width: s.Width, Estimate: s.Estimate, Runtime: s.Runtime}
		c.waiting[s.ID] = j
		c.recs[s.ID] = &rec{job: j, admitWall: time.Now(), trace: s.Trace, plannedStart: -1, start: -1, deadline: s.Deadline}
		if s.IdemKey != "" {
			c.idem.Store(s.IdemKey, s.ID)
		}
		if int64(s.ID) > c.nextID.Load() {
			c.nextID.Store(int64(s.ID))
		}
		c.accepted.Add(1)
		if s.Submit > c.vnow {
			c.vnow = s.Submit
		}
		return true
	case walPlan:
		var p planWAL
		if json.Unmarshal(r.Data, &p) != nil || p.StepSeq <= c.stepSeq {
			return false
		}
		c.stepSeq = p.StepSeq
		if p.Now > c.vnow {
			c.vnow = p.Now
		}
		switch p.Kind {
		case "completion":
			c.counts.Replans++
		case "anytime":
			// An anytime adoption is neither a step nor a replan: only
			// its StepSeq/plan bookkeeping matters on replay.
		default:
			c.counts.Steps++
			c.counts.Batches++
			c.counts.BatchedJobs += int64(p.Batch)
		}
		c.degraded, c.degReason = p.Degraded, p.DegReason
		if p.Degraded {
			c.counts.DegradedSteps++
		}
		if p.Failed {
			return true
		}
		// Entries are merged, not rebuilt: a record only carries the newly
		// planned jobs, so older entries (from the snapshot or earlier
		// records) stay until a start/complete/reject removes them. Merged
		// starts may be stale relative to the crashed process's last
		// adopted plan — recovery re-steps before going ready, replacing
		// the whole plan, so stale starts never fire.
		for _, e := range p.Entries {
			if _, ok := c.waiting[e.ID]; !ok {
				continue
			}
			c.plan[e.ID] = e.Start
			if rr, ok := c.recs[e.ID]; ok {
				rr.plannedStart = e.Start
				rr.degraded = p.Degraded
			}
		}
		for _, id := range p.NewlyPlanned {
			if rr, ok := c.recs[id]; ok && !rr.planned {
				rr.planned = true
				c.counts.Planned++
			}
		}
		return true
	case walStart:
		var s startWAL
		if json.Unmarshal(r.Data, &s) != nil {
			return false
		}
		if _, ok := c.waiting[s.ID]; !ok {
			return false
		}
		rr := c.recs[s.ID]
		delete(c.waiting, s.ID)
		delete(c.plan, s.ID)
		delete(c.recs, s.ID)
		rr.start = s.T
		c.running[s.ID] = rr
		c.counts.Started++
		if s.T > c.vnow {
			c.vnow = s.T
		}
		return true
	case walComplete:
		var cw completeWAL
		if json.Unmarshal(r.Data, &cw) != nil {
			return false
		}
		id := cw.Status.ID
		if _, ok := c.done.Load(id); ok {
			return false
		}
		delete(c.running, id)
		delete(c.waiting, id)
		delete(c.plan, id)
		delete(c.recs, id)
		c.done.Store(id, cw.Status)
		c.counts.Completed++
		if cw.Status.End > c.vnow {
			c.vnow = cw.Status.End
		}
		return true
	case walMigrate:
		var m MigratedJob
		if json.Unmarshal(r.Data, &m) != nil {
			return false
		}
		c.migMu.Lock()
		_, pending := c.pendingMig[m.ID]
		_, confirmed := c.migAliases[m.ID]
		if pending || confirmed {
			c.migMu.Unlock()
			return false // snapshot already covered this migrate-out
		}
		c.pendingMig[m.ID] = m
		c.migMu.Unlock()
		if _, ok := c.waiting[m.ID]; ok {
			delete(c.waiting, m.ID)
			delete(c.plan, m.ID)
			delete(c.recs, m.ID)
			c.accepted.Add(-1)
		}
		return true
	case walMigrateDone:
		var md migrateDoneWAL
		if json.Unmarshal(r.Data, &md) != nil {
			return false
		}
		c.migMu.Lock()
		delete(c.pendingMig, md.ID)
		c.migAliases[md.ID] = md.TargetGlobal
		c.migMu.Unlock()
		return true
	case walReject:
		var rj rejectWAL
		if json.Unmarshal(r.Data, &rj) != nil {
			return false
		}
		if _, ok := c.waiting[rj.ID]; !ok {
			return false
		}
		delete(c.waiting, rj.ID)
		delete(c.plan, rj.ID)
		delete(c.recs, rj.ID)
		if rj.IdemKey != "" {
			c.idem.Delete(rj.IdemKey)
		}
		c.accepted.Add(-1)
		return true
	}
	return false
}

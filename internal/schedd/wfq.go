// Weighted fair queueing admission: the replacement for flat per-source
// token buckets. One aggregate admission rate is shared across sources
// by virtual-time fair queueing — a lone source may consume the whole
// rate (work conserving, which a fixed per-source slice never is), while
// concurrent backlogged sources converge to weighted fair shares: each
// admission advances its source's virtual finish time by 1/weight, the
// global virtual clock advances with wall time at the aggregate rate,
// and a source whose finish runs more than the burst tolerance ahead of
// the clock is rejected with a Retry-After sized to when it falls back
// within tolerance.
package schedd

import (
	"sync"
	"time"
)

// wfqLimiter implements weighted fair queueing over admission slots.
type wfqLimiter struct {
	mu      sync.Mutex
	rate    float64 // aggregate admissions per wall second
	burst   float64 // tolerance in weight-1 admission units
	weights map[string]float64

	vtime  float64 // global virtual clock, in admission units
	last   time.Time
	finish map[string]float64 // per-source virtual finish time
}

// newWFQLimiter returns nil (admit everything) when rate <= 0.
func newWFQLimiter(rate float64, burst int, weights map[string]float64) *wfqLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &wfqLimiter{
		rate:    rate,
		burst:   float64(burst),
		weights: weights,
		finish:  map[string]float64{},
	}
}

// allow reports whether a submission from source may be admitted now,
// and if not, how long until it could be. A nil limiter admits all.
func (w *wfqLimiter) allow(source string, now time.Time) (bool, time.Duration) {
	if w == nil {
		return true, 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.last.IsZero() {
		if dt := now.Sub(w.last).Seconds(); dt > 0 {
			w.vtime += dt * w.rate
		}
	}
	w.last = now
	// Lazily drop sources whose backlog has fully drained, so the map
	// does not grow with every source name ever seen.
	if len(w.finish) > 1024 {
		for s, f := range w.finish {
			if f <= w.vtime {
				delete(w.finish, s)
			}
		}
	}
	weight := 1.0
	if wt, ok := w.weights[source]; ok && wt > 0 {
		weight = wt
	}
	f := w.finish[source]
	if f < w.vtime {
		f = w.vtime
	}
	f += 1 / weight
	if ahead := f - w.vtime; ahead > w.burst {
		wait := time.Duration((ahead - w.burst) / w.rate * float64(time.Second))
		if wait < time.Millisecond {
			wait = time.Millisecond
		}
		return false, wait
	}
	w.finish[source] = f
	return true, 0
}

// Serving end-to-end test: the full HTTP service under accelerated
// CTC replay with injected solve faults. This is the body of the CI
// serving-e2e job (run under -race): the service must stay up, degrade
// gracefully on every failed solve, plan every accepted job, and drain
// cleanly.
package schedd_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/faultinject"
	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
	"repro/internal/solvepipe"
	"repro/internal/workload"
)

func TestServingE2EWithFaults(t *testing.T) {
	const nJobs = 200
	tr, err := workload.Generate(workload.CTC(), nJobs, 7)
	if err != nil {
		t.Fatal(err)
	}
	pols := []policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}
	m, err := metrics.ByName("SLDwA")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := dynp.New(pols, m, dynp.AdvancedDecider{})
	if err != nil {
		t.Fatal(err)
	}
	// 20% of solve calls fault (timeouts, panics, infeasibilities); no
	// retries, so every faulted step must degrade to the basic-policy
	// schedule and be reported, never kill the service.
	inj := faultinject.New(faultinject.NewProbability(7, 0.2))
	core, err := schedd.New(schedd.Config{
		Machine:       tr.Processors,
		Scheduler:     sched,
		Clock:         schedd.NewWallClock(50000),
		QueueBound:    1024,
		MaxBatch:      64,
		MaxBatchDelay: 5 * time.Millisecond,
		ReplanBuffer:  4096, // keep every replan of the run for the assertions below
		ILP: &schedd.ILPConfig{
			Pipe: solvepipe.Config{
				Budget: 500 * time.Millisecond,
				MIP:    mip.Options{MaxNodes: 50000},
				Hook:   inj.Hook,
			},
		},
		Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	core.Start()
	srv := httptest.NewServer(schedd.NewHandler(core))
	defer srv.Close()

	res, err := loadgen.Run(context.Background(), loadgen.Config{
		BaseURL:     srv.URL,
		Trace:       tr,
		Accel:       50000,
		Sources:     4,
		WaitTimeout: 3 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("serving e2e:\n%s", res)

	if res.Accepted != nJobs {
		t.Errorf("accepted %d of %d submissions", res.Accepted, nJobs)
	}
	if res.TransportErrors > 0 {
		t.Errorf("%d transport errors: the service went down under faults", res.TransportErrors)
	}
	// Zero dropped accepted jobs: everything admitted must be planned.
	if res.DroppedAccepted != 0 {
		t.Errorf("%d accepted jobs were never planned", res.DroppedAccepted)
	}
	// With 20% per-call faults and no retries, degraded replans must
	// both happen and be surfaced.
	if res.DegradedSteps == 0 {
		t.Errorf("no degraded steps despite %d injected faults", len(inj.Injected()))
	}
	if len(inj.Injected()) == 0 {
		t.Error("fault injector never fired")
	}

	// The snapshot API must expose the degradation state and a
	// non-empty metrics dump must be served.
	r, err := http.Get(srv.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	var snap schedd.Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if snap.Counts.DegradedSteps != res.DegradedSteps {
		t.Errorf("snapshot reports %d degraded steps, metrics %d",
			snap.Counts.DegradedSteps, res.DegradedSteps)
	}
	rm, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms []schedd.MetricJSON
	if err := json.NewDecoder(rm.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	rm.Body.Close()
	if len(ms) == 0 {
		t.Error("empty /v1/metrics dump")
	}

	// Every faulted (degraded) replan must be queryable in the flight
	// recorder with a reason, and the Prometheus exposition must parse
	// and carry the degraded outcome as a labeled series.
	rr, err := http.Get(srv.URL + "/v1/replans")
	if err != nil {
		t.Fatal(err)
	}
	var recs []schedd.ReplanRecord
	if err := json.NewDecoder(rr.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	degradedRecs := int64(0)
	for _, rec := range recs {
		if rec.Outcome != "degraded" {
			continue
		}
		degradedRecs++
		if rec.ReasonClass == "" || rec.Reason == "" {
			t.Errorf("degraded replan %d has no reason: %+v", rec.Seq, rec)
		}
		if len(rec.Attempts) == 0 {
			t.Errorf("degraded replan %d has no attempt provenance", rec.Seq)
		}
	}
	if degradedRecs != res.DegradedSteps {
		t.Errorf("/v1/replans shows %d degraded replans, metrics %d", degradedRecs, res.DegradedSteps)
	}
	pm, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	expo, err := io.ReadAll(pm.Body)
	pm.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(expo); err != nil {
		t.Errorf("malformed Prometheus exposition: %v", err)
	}
	if !strings.Contains(string(expo), `schedd_step_outcome{outcome="degraded"`) {
		t.Error("exposition missing degraded outcome series")
	}

	// Clean drain: Stop returns without error and the final snapshot
	// accounts for every accepted job.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	final, err := core.Stop(ctx)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if !final.Draining {
		t.Error("final snapshot not marked draining")
	}
	if final.Counts.Planned != int64(res.Accepted) {
		t.Errorf("drained with %d planned of %d accepted", final.Counts.Planned, res.Accepted)
	}
}

// Anytime serving: the writer loop's half of the background optimizer
// pairing (see internal/anytime for the solver half).
//
// The writer pushes an immutable problem — instance, adopted-plan seed,
// fingerprint — after every pass that mutated queue state, and adopts
// published incumbents at its own pace when the core's nudge fires. The
// invariant defended here is that an adopted incumbent is never staler
// than the queue state it was solved against: adoption re-checks the
// fingerprint, the virtual time, the exact job coverage and feasibility
// against the pushed base, and strict objective improvement, all on the
// writer goroutine, before the plan replaces the live one. Anything
// stale is counted and dropped; the solver never blocks the writer and
// the writer never blocks the solver.
package schedd

import (
	"time"

	"repro/internal/anytime"
	"repro/internal/ilpsched"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
)

// pushAnytime hands the background optimizer the writer's current
// problem. Pushed whenever a writer pass mutated queue state; an empty
// or unimprovable queue pushes the idle problem, which also preempts
// any in-flight solve of outdated state.
func (c *Core) pushAnytime() {
	if c.any == nil {
		return
	}
	now := c.vnow
	idle := func() {
		c.lastAnyInst, c.lastAnyFp = nil, 0
		c.any.Update(anytime.Problem{})
	}
	if len(c.waiting) == 0 {
		idle()
		return
	}
	seed := c.currentPlanSchedule(now)
	if len(seed.Entries) != len(c.waiting) {
		// A failed step left jobs unplanned: without a feasible seed
		// covering the whole queue there is no sound incumbent to
		// improve — the next successful step re-arms the optimizer.
		idle()
		return
	}
	horizon := seed.Makespan()
	if horizon <= now {
		idle() // every waiting job starts now; nothing to reorder
		return
	}
	base, err := c.baseProfile(now)
	if err != nil {
		idle()
		return
	}
	inst := &ilpsched.Instance{
		Now: now, Machine: c.total, Base: base,
		Jobs: c.waitingSlice(), Horizon: horizon,
	}
	fp := solvepipe.Fingerprint(inst)
	c.lastAnyInst, c.lastAnyFp = inst, fp
	c.any.Update(anytime.Problem{Inst: inst, Seed: seed, Fingerprint: fp, Now: now})
}

// currentPlanSchedule materializes the adopted plan (restricted to jobs
// still waiting) as a schedule — the seed of the next anytime session
// and the objective baseline adoption compares against.
func (c *Core) currentPlanSchedule(now int64) *schedule.Schedule {
	s := &schedule.Schedule{Policy: "adopted", Now: now, Machine: c.total}
	for id, start := range c.plan {
		j, ok := c.waiting[id]
		if !ok {
			continue
		}
		if start < now {
			start = now
		}
		s.Entries = append(s.Entries, schedule.Entry{Job: j, Start: start})
	}
	s.SortByStart()
	return s
}

// adoptAnytime inspects the optimizer's best published plan and adopts
// it if — and only if — it is exactly as fresh as the problem the
// writer last pushed and strictly better than the live plan. Returns
// the adopted plan, nil when nothing was adopted. Runs on the writer
// goroutine.
func (c *Core) adoptAnytime() *anytime.Plan {
	if c.any == nil {
		return nil
	}
	plan := c.any.Best()
	if plan == nil || plan.Seq <= c.lastAnySeq {
		return nil // already inspected (several nudges can coalesce)
	}
	c.lastAnySeq = plan.Seq
	// Staleness gate: the plan must name the problem the writer pushed
	// last. The fingerprint covers the relative problem shape, Now pins
	// the absolute frame, and the per-entry check below pins the exact
	// job identities (fingerprints are shape-based by design, so two
	// different queues could collide on one).
	if c.lastAnyInst == nil || plan.Fingerprint != c.lastAnyFp || plan.Now != c.lastAnyInst.Now {
		c.cAnyStale.Inc()
		return nil
	}
	if len(plan.Schedule.Entries) != len(c.waiting) {
		c.cAnyStale.Inc()
		return nil
	}
	for _, e := range plan.Schedule.Entries {
		if _, ok := c.waiting[e.Job.ID]; !ok {
			c.cAnyStale.Inc()
			return nil
		}
		// SLO gate: the optimizer minimizes the aggregate objective and
		// may do so by starting one job later — never at the cost of a
		// deadline the twin already admitted against.
		if r := c.recs[e.Job.ID]; r != nil && r.deadline > 0 && e.Start > r.deadline {
			c.cAnyRejected.Inc()
			c.trace.Emit("anytime.adopt.slo_conflict",
				obs.Int("t", c.vnow), obs.Int("job", int64(e.Job.ID)))
			return nil
		}
	}
	// Feasibility against the pushed base (the base cannot have changed
	// since the push without the fingerprint changing with it).
	if err := plan.Schedule.Validate(c.lastAnyInst.Base); err != nil {
		c.cAnyRejected.Inc()
		c.trace.Emit("anytime.adopt.invalid", obs.Int("t", c.vnow), obs.Str("err", err.Error()))
		return nil
	}
	// Strict improvement over the live plan — an intervening step may
	// already have adopted something at least as good.
	cur := c.currentPlanSchedule(c.vnow)
	if len(cur.Entries) == len(plan.Schedule.Entries) &&
		plan.Objective >= ilpsched.ObjectiveOfSchedule(cur) {
		c.cAnyRejected.Inc()
		return nil
	}

	wallStart := time.Now()
	c.stepSeq++
	record := ReplanRecord{
		Kind: "anytime", Now: c.vnow, QueueDepth: len(c.waiting),
		Policy: c.cfg.Scheduler.Current().Name(), Outcome: "ok",
	}
	plannedBefore := len(c.newlyPlanned)
	c.lastILP = plan.Schedule // the next step's reuse seed
	c.degraded, c.degReason = false, ""
	c.adoptPlan(c.vnow, plan.Schedule, false)
	c.appendPlanWAL("anytime", c.vnow, 0, false, "", c.newlyPlanned[plannedBefore:])
	c.cAnyAdopted.Inc()
	c.trace.Emit("anytime.adopted",
		obs.Int("t", c.vnow),
		obs.Int("seq", plan.Seq),
		obs.Float("objective", plan.Objective),
		obs.Float("found_ms", float64(plan.FoundAfter)/float64(time.Millisecond)))
	record.DurMs = float64(time.Since(wallStart)) / float64(time.Millisecond)
	record.Planned = len(c.newlyPlanned) - plannedBefore
	c.recordReplan(record)
	return plan
}

// sloConflicts counts schedule entries that start past the deadline
// their job was admitted with — the shared gate predicate of the step
// SLO guard and the anytime adoption path.
func (c *Core) sloConflicts(s *schedule.Schedule) int {
	n := 0
	for _, e := range s.Entries {
		if r := c.recs[e.Job.ID]; r != nil && r.deadline > 0 && e.Start > r.deadline {
			n++
		}
	}
	return n
}

// predictStart is the digital-twin admission predictor: it rebuilds the
// machine occupancy from the latest published snapshot — running jobs
// at their estimated ends, waiting jobs at their planned starts, plus
// queued-but-unplanned admissions packed greedily — and earliest-fits
// the candidate job into it. Lock-free (snapshot read only), so it runs
// on the admission path without touching the writer. Returns ok=false
// when no prediction is possible (the twin fails open: admission
// proceeds rather than 429ing on a guess).
func (c *Core) predictStart(now int64, width int, est int64) (int64, bool) {
	s := c.snap.Load()
	rs := make([]machine.Running, 0, len(s.Active))
	planned := make(map[int]bool, len(s.Active))
	for id, st := range s.Active {
		if st.State != StateRunning {
			planned[id] = true
			continue
		}
		planned[id] = true
		end := st.Start + st.Estimate
		if end <= now {
			end = now + 1
		}
		rs = append(rs, machine.Running{JobID: id, Width: st.Width, End: end})
	}
	h, err := machine.HistoryFromRunning(c.total, now, rs)
	if err != nil {
		return 0, false
	}
	p := h.Profile(c.total)
	for _, e := range s.Schedule {
		start := e.Start
		if start < now {
			start = now
		}
		if p.Reserve(start, start+e.Estimate, e.Width) != nil {
			return 0, false // snapshot raced into inconsistency; fail open
		}
	}
	// Queued-but-unplanned admissions occupy future capacity too: pack
	// them earliest-fit in ID order so a burst ahead of the next step is
	// not invisible to the twin.
	var queued []JobStatus
	c.pending.Range(func(id, v any) bool {
		if !planned[id.(int)] {
			queued = append(queued, v.(JobStatus))
		}
		return true
	})
	for i := 1; i < len(queued); i++ {
		for k := i; k > 0 && queued[k].ID < queued[k-1].ID; k-- {
			queued[k], queued[k-1] = queued[k-1], queued[k]
		}
	}
	for _, st := range queued {
		start, ok := p.EarliestFit(now, st.Estimate, st.Width)
		if !ok {
			return 0, false
		}
		if p.Reserve(start, start+st.Estimate, st.Width) != nil {
			return 0, false
		}
	}
	return p.EarliestFit(now, est, width)
}

// PlanAge returns the wall-clock age of the most recently adopted plan
// and refreshes the schedd.plan.age.ms gauge, so every scrape reads a
// live value rather than the age at the last adoption.
func (c *Core) PlanAge() time.Duration {
	age := time.Duration(time.Now().UnixNano() - c.lastPlanWall.Load())
	if age < 0 {
		age = 0
	}
	c.gPlanAge.Set(float64(age) / float64(time.Millisecond))
	return age
}

// AnytimeAdopted returns how many anytime incumbents this core has
// adopted (0 when the optimizer is off or unmetered).
func (c *Core) AnytimeAdopted() int64 { return c.cAnyAdopted.Value() }

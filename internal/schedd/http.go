package schedd

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// TraceHeader carries the request trace ID. Clients may supply one (any
// non-empty value); the daemon mints a fresh ID otherwise and always
// echoes the effective ID back on the response.
const TraceHeader = "X-Trace-Id"

// IdemHeader carries the client-supplied idempotency key on POST
// /v1/jobs: a resubmission with the same key (including after a daemon
// crash and WAL recovery) returns the original job instead of admitting
// a duplicate.
const IdemHeader = "Idempotency-Key"

// API types of the HTTP layer. Everything is plain JSON; errors are
// {"error": "..."} with the appropriate status code.

// SubmitJSON is the POST /v1/jobs request body.
type SubmitJSON struct {
	Width    int    `json:"width"`
	Estimate int64  `json:"estimate_s"`
	Runtime  int64  `json:"runtime_s,omitempty"`
	Source   string `json:"source,omitempty"`
	// Deadline is an optional start-SLO: the job must start within this
	// many virtual seconds of admission, or the digital twin rejects it
	// up front (429 with a deadline-aware Retry-After).
	Deadline int64 `json:"deadline_s,omitempty"`
}

// HealthJSON is the GET /v1/healthz response body.
type HealthJSON struct {
	Status     string `json:"status"` // "ok", "replaying" or "draining"
	Now        int64  `json:"now"`
	QueueDepth int    `json:"queue_depth"`
	Waiting    int    `json:"waiting"`
	Running    int    `json:"running"`
	Policy     string `json:"policy"`
	// Phase is the WAL recovery phase: "replaying" until the writer has
	// re-applied the log, "ready" after (always "ready" without a WAL).
	Phase string `json:"phase"`
	// PlanAgeMs is the wall-clock age of the adopted plan: how long ago
	// the writer last replaced it (step, replan or anytime adoption).
	PlanAgeMs float64 `json:"plan_age_ms"`
}

// MetricJSON is one instrument of the GET /v1/metrics dump. Histogram
// bucket upper bounds are rendered as strings so the +Inf overflow
// bucket survives JSON. Labeled families expand into one entry per
// series, carrying the label pairs.
type MetricJSON struct {
	Name    string       `json:"name"`
	Kind    string       `json:"kind"`
	Labels  []obs.Label  `json:"labels,omitempty"`
	Value   int64        `json:"value"`
	Sum     float64      `json:"sum,omitempty"`
	Mean    float64      `json:"mean,omitempty"`
	Buckets []BucketJSON `json:"buckets,omitempty"`
}

// BucketJSON is one histogram bucket ("le" is the inclusive upper edge,
// "+Inf" for the overflow bucket).
type BucketJSON struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MetricsToJSON converts a registry snapshot into the wire form.
func MetricsToJSON(ms []obs.Metric) []MetricJSON {
	out := make([]MetricJSON, 0, len(ms))
	for _, m := range ms {
		mj := MetricJSON{Name: m.Name, Kind: m.Kind, Labels: m.Labels, Value: m.Value, Sum: m.Sum, Mean: m.Mean}
		for _, b := range m.Buckets {
			le := "+Inf"
			if !math.IsInf(b.UpperBound, 1) {
				le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
			}
			mj.Buckets = append(mj.Buckets, BucketJSON{LE: le, Count: b.Count})
		}
		out = append(out, mj)
	}
	return out
}

// NewHandler returns the HTTP API of the service:
//
//	POST /v1/jobs      submit a job (202; 400/429/503 on rejection)
//	GET  /v1/jobs/{id} job state and planned start
//	GET  /v1/schedule  the current full plan
//	GET  /v1/healthz   liveness and queue depths
//	GET  /v1/metrics   obs registry dump (JSON, or Prometheus text when
//	                   the Accept header asks for it)
//	GET  /metrics      Prometheus text exposition (scrape target)
//	GET  /v1/replans   flight recorder: the last N replan summaries
func NewHandler(c *Core) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var req SubmitJSON
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %v", err))
			return
		}
		trace := r.Header.Get(TraceHeader)
		if trace == "" {
			trace = obs.NewTraceID()
		}
		w.Header().Set(TraceHeader, trace)
		ctx := obs.WithTraceID(r.Context(), trace)
		ctx, span := c.Tracer().StartSpanCtx(ctx, "schedd.admit",
			obs.Str("source", req.Source),
			obs.Int("width", int64(req.Width)))
		resp, err := c.SubmitCtx(ctx, SubmitRequest{
			Width: req.Width, Estimate: req.Estimate, Runtime: req.Runtime, Source: req.Source,
			Deadline:       req.Deadline,
			IdempotencyKey: r.Header.Get(IdemHeader),
		})
		if err != nil {
			span.End(obs.Str("outcome", admitOutcome(err)))
			writeSubmitError(w, err)
			return
		}
		span.End(obs.Str("outcome", "accepted"), obs.Int("job", int64(resp.ID)))
		writeJSON(w, http.StatusAccepted, resp)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := strconv.Atoi(r.PathValue("id"))
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad job id %q", r.PathValue("id")))
			return
		}
		st, ok := c.Job(id)
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/schedule", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Snapshot())
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		s := c.Snapshot()
		phase := c.Phase()
		status := "ok"
		if phase == PhaseReplaying {
			status = "replaying"
		}
		if s.Draining {
			status = "draining"
		}
		waiting, running := 0, 0
		for _, st := range s.Active {
			if st.State == StateRunning {
				running++
			} else {
				waiting++
			}
		}
		writeJSON(w, http.StatusOK, HealthJSON{
			Status: status, Now: s.Now, QueueDepth: c.QueueDepth(),
			Waiting: waiting, Running: running, Policy: s.Policy,
			Phase:     phase,
			PlanAgeMs: float64(c.PlanAge()) / float64(time.Millisecond),
		})
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		// One snapshot pass feeds whichever encoder the client
		// negotiated; JSON stays the default for compatibility.
		ms := metricsSnapshot(c)
		if wantsPrometheus(r.Header.Get("Accept")) {
			writePrometheus(w, ms)
			return
		}
		writeJSON(w, http.StatusOK, MetricsToJSON(ms))
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writePrometheus(w, metricsSnapshot(c))
	})
	mux.HandleFunc("GET /v1/replans", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Replans())
	})
	return mux
}

// metricsSnapshot is the single snapshot pass shared by the JSON and
// Prometheus encoders: the registry's instruments plus live Go runtime
// gauges. PlanAge refreshes the freshness gauge first, so scrapes read
// the live plan age rather than the age at the last adoption.
func metricsSnapshot(c *Core) []obs.Metric {
	c.PlanAge()
	ms := c.Metrics().Snapshot()
	return append(ms, obs.RuntimeMetrics()...)
}

// wantsPrometheus reports whether the Accept header asks for the text
// exposition (a Prometheus scraper sends text/plain and/or
// application/openmetrics-text; JSON clients and browsers do not lead
// with those).
func wantsPrometheus(accept string) bool {
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func writePrometheus(w http.ResponseWriter, ms []obs.Metric) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = obs.WritePrometheus(w, ms)
}

// admitOutcome classifies a submit error for the admission span.
func admitOutcome(err error) string {
	var rl *RateLimitedError
	var se *SLOExceededError
	var ve *ValidationError
	switch {
	case errors.Is(err, ErrQueueFull):
		return "queue_full"
	case errors.As(err, &rl):
		return "rate_limited"
	case errors.As(err, &se):
		return "slo_deadline"
	case errors.Is(err, ErrDraining):
		return "draining"
	case errors.Is(err, ErrRecovering):
		return "recovering"
	case errors.As(err, &ve):
		return "invalid"
	default:
		return "error"
	}
}

// writeSubmitError maps admission errors to their status codes: 429
// with Retry-After for backpressure, 503 while draining, 400 for
// malformed submissions.
func writeSubmitError(w http.ResponseWriter, err error) {
	var rl *RateLimitedError
	var se *SLOExceededError
	var ve *ValidationError
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &rl):
		w.Header().Set("Retry-After", retryAfterSeconds(rl.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.As(err, &se):
		// The twin's predicted start busts the client's deadline: 429 with
		// a Retry-After sized so a resubmission could still make it.
		w.Header().Set("Retry-After", retryAfterSeconds(se.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, ErrRecovering):
		// Recovery is short and bounded (snapshots cap the replay), so a
		// quick retry is the right client behavior.
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
	case errors.As(err, &ve):
		writeError(w, http.StatusBadRequest, err)
	default:
		writeError(w, http.StatusInternalServerError, err)
	}
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 as the header cannot express sub-second waits).
func retryAfterSeconds(d time.Duration) string {
	s := int64(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return strconv.FormatInt(s, 10)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

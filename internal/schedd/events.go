// EventSink is the writer-loop's push interface: the streaming
// transport (internal/shard's SSE hub) subscribes to state changes at
// their source instead of polling snapshots. Callbacks run on the
// writer goroutine between state mutation and the next select, so
// implementations must be fast and must never block — enqueue and
// return. Everything passed in is immutable (a published *Snapshot, a
// value-copied JobStatus), so sinks may retain the arguments.
package schedd

// EventSink receives writer-loop lifecycle events. A nil sink in
// Config.Events disables eventing with zero overhead.
type EventSink interface {
	// SnapshotPublished fires after every snapshot store, exactly once
	// per version, in version order.
	SnapshotPublished(s *Snapshot)
	// JobPlanned fires the first time a job appears in an adopted plan,
	// before the snapshot carrying it is published.
	JobPlanned(st JobStatus)
	// JobCompleted fires when a running job finishes.
	JobCompleted(st JobStatus)
}

// emitPublished forwards a snapshot publication to the sink, if any.
func (c *Core) emitPublished(s *Snapshot) {
	if sink := c.cfg.Events; sink != nil {
		sink.SnapshotPublished(s)
	}
}

// emitPlanned forwards first-plan events for the given job IDs; the
// statuses are read from the snapshot that is about to carry them.
func (c *Core) emitPlanned(s *Snapshot, ids []int) {
	sink := c.cfg.Events
	if sink == nil || len(ids) == 0 {
		return
	}
	for _, id := range ids {
		if st, ok := s.Active[id]; ok {
			sink.JobPlanned(st)
			continue
		}
		// Planned and already completed within the same writer pass.
		if v, ok := c.done.Load(id); ok {
			sink.JobPlanned(v.(JobStatus))
		}
	}
}

// emitCompleted forwards a completion to the sink, if any.
func (c *Core) emitCompleted(st JobStatus) {
	if sink := c.cfg.Events; sink != nil {
		sink.JobCompleted(st)
	}
}

// EventSink is the writer-loop's push interface: the streaming
// transport (internal/shard's SSE hub) subscribes to state changes at
// their source instead of polling snapshots. Callbacks run on the
// writer goroutine between state mutation and the next select, so
// implementations must be fast and must never block — enqueue and
// return. Everything passed in is immutable (a published *Snapshot, a
// value-copied JobStatus), so sinks may retain the arguments.
package schedd

import (
	"time"

	"repro/internal/anytime"
)

// EventSink receives writer-loop lifecycle events. A nil sink in
// Config.Events disables eventing with zero overhead.
type EventSink interface {
	// SnapshotPublished fires after every snapshot store, exactly once
	// per version, in version order.
	SnapshotPublished(s *Snapshot)
	// JobPlanned fires the first time a job appears in an adopted plan,
	// before the snapshot carrying it is published.
	JobPlanned(st JobStatus)
	// JobCompleted fires when a running job finishes.
	JobCompleted(st JobStatus)
	// PlanImproved fires when the background anytime optimizer's
	// incumbent replaces the live plan, after the snapshot carrying the
	// improved plan is published.
	PlanImproved(pi PlanImprovement)
}

// PlanImprovement describes one adopted anytime incumbent.
type PlanImprovement struct {
	// Now and Version identify the snapshot that carries the plan.
	Now     int64 `json:"now"`
	Version int64 `json:"version"`
	// Objective is the adopted plan's Eq. 2 objective.
	Objective float64 `json:"objective"`
	// Jobs is how many waiting jobs the plan covers.
	Jobs int `json:"jobs"`
	// FoundAfterMs is how far into its solve session the optimizer
	// found this incumbent.
	FoundAfterMs float64 `json:"found_after_ms"`
	// Seq is the optimizer's publication sequence number.
	Seq int64 `json:"seq"`
}

// emitPublished forwards a snapshot publication to the sink, if any.
func (c *Core) emitPublished(s *Snapshot) {
	if sink := c.cfg.Events; sink != nil {
		sink.SnapshotPublished(s)
	}
}

// emitPlanned forwards first-plan events for the given job IDs; the
// statuses are read from the snapshot that is about to carry them.
func (c *Core) emitPlanned(s *Snapshot, ids []int) {
	sink := c.cfg.Events
	if sink == nil || len(ids) == 0 {
		return
	}
	for _, id := range ids {
		if st, ok := s.Active[id]; ok {
			sink.JobPlanned(st)
			continue
		}
		// Planned and already completed within the same writer pass.
		if v, ok := c.done.Load(id); ok {
			sink.JobPlanned(v.(JobStatus))
		}
	}
}

// emitCompleted forwards a completion to the sink, if any.
func (c *Core) emitCompleted(st JobStatus) {
	if sink := c.cfg.Events; sink != nil {
		sink.JobCompleted(st)
	}
}

// emitPlanImproved forwards an adopted anytime incumbent to the sink,
// if any. Called after the snapshot carrying the plan is published, so
// Version refers to a snapshot subscribers can already read.
func (c *Core) emitPlanImproved(plan *anytime.Plan) {
	sink := c.cfg.Events
	if sink == nil {
		return
	}
	sink.PlanImproved(PlanImprovement{
		Now:          c.vnow,
		Version:      c.version,
		Objective:    plan.Objective,
		Jobs:         len(plan.Schedule.Entries),
		FoundAfterMs: float64(plan.FoundAfter) / float64(time.Millisecond),
		Seq:          plan.Seq,
	})
}

package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/solvepipe"
)

func TestFlightRecorderRing(t *testing.T) {
	f := newFlightRecorder(16)
	for i := 0; i < 100; i++ {
		f.add(ReplanRecord{Kind: "step", Batch: i})
	}
	if f.len() != 16 {
		t.Fatalf("len = %d, want 16", f.len())
	}
	recs := f.list()
	if len(recs) != 16 {
		t.Fatalf("list returned %d records, want 16", len(recs))
	}
	// Newest first: seq 100 down to 85, batch fields matching.
	for i, r := range recs {
		wantSeq := int64(100 - i)
		if r.Seq != wantSeq || r.Batch != int(wantSeq)-1 {
			t.Fatalf("recs[%d] = seq %d batch %d, want seq %d", i, r.Seq, r.Batch, wantSeq)
		}
	}
}

func TestFlightRecorderPartialFill(t *testing.T) {
	f := newFlightRecorder(8)
	f.add(ReplanRecord{Kind: "step"})
	f.add(ReplanRecord{Kind: "completion"})
	recs := f.list()
	if len(recs) != 2 || recs[0].Kind != "completion" || recs[1].Kind != "step" {
		t.Fatalf("list = %+v", recs)
	}
}

func TestFlightRecorderConcurrency(t *testing.T) {
	f := newFlightRecorder(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				f.add(ReplanRecord{Kind: "step"})
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				recs := f.list()
				for k := 1; k < len(recs); k++ {
					if recs[k].Seq >= recs[k-1].Seq {
						t.Errorf("list not newest-first: seq %d before %d", recs[k-1].Seq, recs[k].Seq)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := f.list()[0].Seq; got != 2000 {
		t.Errorf("final newest seq = %d, want 2000", got)
	}
}

// A degraded step must land in the flight recorder with its outcome,
// bounded reason class, and solve-attempt provenance — the queryable
// answer to "why did that replan fall back?".
func TestRecorderCapturesDegradedReplan(t *testing.T) {
	inj := faultinject.New(faultinject.NthCall{N: 1, Kind: faultinject.Infeasible})
	reg := obs.NewRegistry()
	c := startCore(t, Config{
		Machine: 16,
		Clock:   NewManualClock(0),
		Metrics: reg,
		ILP: &ILPConfig{
			Pipe: solvepipe.Config{
				Budget:  2 * time.Second,
				Retries: 1,
				MIP:     mip.Options{MaxNodes: 1000},
				Hook:    inj.Hook,
			},
		},
	})
	if _, err := c.Submit(SubmitRequest{Width: 16, Estimate: 500}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(SubmitRequest{Width: 16, Estimate: 300}); err != nil {
		t.Fatal(err)
	}
	waitPlanned(t, c, 2)

	var deg *ReplanRecord
	for _, r := range c.Replans() {
		if r.Outcome == "degraded" {
			deg = &r
			break
		}
	}
	if deg == nil {
		t.Fatalf("no degraded record in %+v", c.Replans())
	}
	if deg.Kind != "step" || deg.ReasonClass != "infeasible" {
		t.Errorf("degraded record = %+v, want kind step, reason class infeasible", deg)
	}
	if !strings.Contains(deg.Reason, "infeasible") {
		t.Errorf("reason %q does not name the failure", deg.Reason)
	}
	if len(deg.Attempts) == 0 {
		t.Error("degraded record carries no attempt provenance")
	} else if deg.Attempts[len(deg.Attempts)-1].Failure != "infeasible" {
		t.Errorf("last attempt failure = %q", deg.Attempts[len(deg.Attempts)-1].Failure)
	}
	if deg.DurMs < 0 {
		t.Errorf("negative duration %v", deg.DurMs)
	}

	// The labeled families must expose the same outcome.
	found := map[string]bool{}
	for _, m := range reg.Snapshot() {
		if m.Name == "schedd.step.outcome" || m.Name == "schedd.degraded.by_reason" {
			for _, l := range m.Labels {
				found[l.Value] = true
			}
		}
	}
	if !found["degraded"] || !found["infeasible"] {
		t.Errorf("labeled metrics missing degraded outcome/reason: %v", found)
	}
}

// One trace ID must be followable through every lifecycle event:
// admission span, submit, batched, planned, published.
func TestTraceFollowsJobThroughLifecycle(t *testing.T) {
	var buf bytes.Buffer
	srv, c := startServer(t, Config{
		Machine: 8,
		Clock:   NewManualClock(0),
		Trace:   obs.NewTracer(&buf),
	})
	req, _ := http.NewRequest("POST", srv.URL+"/v1/jobs",
		strings.NewReader(`{"width": 2, "estimate_s": 100, "source": "test"}`))
	req.Header.Set(TraceHeader, "trace-e2e-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(TraceHeader) != "trace-e2e-1" || sr.TraceID != "trace-e2e-1" {
		t.Errorf("trace not echoed: header %q, body %q", resp.Header.Get(TraceHeader), sr.TraceID)
	}
	waitPlanned(t, c, 1)
	if st, ok := c.Job(sr.ID); !ok || st.TraceID != "trace-e2e-1" {
		t.Errorf("job status trace = %+v", st)
	}

	// Stop the core so the writer loop (and its tracer writes) are done
	// before the buffer is read.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Stop(ctx); err != nil {
		t.Fatal(err)
	}

	want := map[string]bool{
		"schedd.admit": false, "schedd.submit": false, "schedd.job.batched": false,
		"schedd.job.planned": false, "schedd.job.published": false,
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		var e map[string]any
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		ev, _ := e["ev"].(string)
		if _, tracked := want[ev]; tracked && e["trace"] == "trace-e2e-1" && e["phase"] != "begin" {
			want[ev] = true
		}
		// The admit span's begin event carries the trace too.
		if ev == "schedd.admit" && e["phase"] == "begin" && e["trace"] == "trace-e2e-1" {
			want["schedd.admit"] = true
		}
	}
	for ev, seen := range want {
		if !seen {
			t.Errorf("event %s with trace ID never emitted\ntrace:\n%s", ev, buf.String())
		}
	}
}

// With step tracing sampled off, per-job trace events survive and a
// slow replan still dumps its reconstructed span tree.
func TestSamplingAndSlowReplanDump(t *testing.T) {
	var buf bytes.Buffer
	c := startCore(t, Config{
		Machine:          8,
		Clock:            NewManualClock(0),
		Trace:            obs.NewTracer(&buf),
		TraceSampleEvery: 1 << 30,         // sample every step span off
		SlowReplan:       time.Nanosecond, // every replan is "slow"
	})
	ctx := obs.WithTraceID(context.Background(), "t-sampled")
	if _, err := c.SubmitCtx(ctx, SubmitRequest{Width: 2, Estimate: 50}); err != nil {
		t.Fatal(err)
	}
	waitPlanned(t, c, 1)
	stopCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.Stop(stopCtx); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `"ev":"schedd.step"`) {
		t.Error("step span emitted despite sampling off")
	}
	if !strings.Contains(out, `"ev":"schedd.replan.slow"`) {
		t.Errorf("no slow-replan dump in trace:\n%s", out)
	}
	if !strings.Contains(out, `"ev":"schedd.job.planned"`) || !strings.Contains(out, "t-sampled") {
		t.Error("per-job trace events were sampled away")
	}
}

func TestReplansAndPromEndpoints(t *testing.T) {
	srv, c := startServer(t, Config{Machine: 8, Clock: NewManualClock(0)})
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(SubmitRequest{Width: 1, Estimate: int64(10 * (i + 1)), Source: "s1"}); err != nil {
			t.Fatal(err)
		}
	}
	waitPlanned(t, c, 3)

	rr, err := http.Get(srv.URL + "/v1/replans")
	if err != nil {
		t.Fatal(err)
	}
	var recs []ReplanRecord
	if err := json.NewDecoder(rr.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	rr.Body.Close()
	if len(recs) == 0 {
		t.Fatal("empty /v1/replans")
	}
	if recs[0].Seq < recs[len(recs)-1].Seq {
		t.Error("/v1/replans not newest first")
	}
	okSteps := 0
	for _, r := range recs {
		if r.Kind == "step" && r.Outcome == "ok" {
			okSteps++
		}
	}
	if okSteps == 0 {
		t.Errorf("no ok step records: %+v", recs)
	}

	// /metrics serves a valid Prometheus exposition with runtime gauges
	// and the labeled submit counter.
	pm, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, pm)
	if ct := pm.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Errorf("invalid exposition: %v\n%s", err, body)
	}
	for _, wantLine := range []string{"go_goroutines", `schedd_submits_by_source{source="s1"} 3`} {
		if !strings.Contains(string(body), wantLine) {
			t.Errorf("exposition missing %q:\n%s", wantLine, body)
		}
	}

	// /v1/metrics negotiates: Prometheus for text/plain, JSON otherwise;
	// both views come from the same snapshot logic.
	req, _ := http.NewRequest("GET", srv.URL+"/v1/metrics", nil)
	req.Header.Set("Accept", "text/plain;version=0.0.4")
	pn, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(readAll(t, pn)); err != nil {
		t.Errorf("negotiated /v1/metrics exposition invalid: %v", err)
	}
	jm, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms []MetricJSON
	if err := json.NewDecoder(jm.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	jm.Body.Close()
	var bySource *MetricJSON
	gauges := 0
	for i := range ms {
		if ms[i].Name == "schedd.submits.by_source" {
			bySource = &ms[i]
		}
		if ms[i].Kind == "gauge" {
			gauges++
		}
	}
	if bySource == nil || len(bySource.Labels) != 1 || bySource.Labels[0] != (obs.Label{Key: "source", Value: "s1"}) {
		t.Errorf("labeled series missing from JSON: %+v", bySource)
	}
	if gauges == 0 {
		t.Error("no runtime gauges in JSON metrics")
	}
}

func readAll(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	var b bytes.Buffer
	if _, err := b.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

package schedd

import "sync"

// The flight recorder keeps the last N replan summaries in memory,
// always on: when an operator asks "why was that plan late/degraded?"
// the answer is already recorded, even with tracing sampled off. It is
// deliberately a summary store, not a span store — a fixed ring of
// small records costs nothing on the hot path — but each record keeps
// enough solve-pipeline provenance (per-attempt scale/budget/failure/
// duration) to reconstruct the span tree of an offending replan after
// the fact; see Core.dumpSlowReplan.

// AttemptRecord is one solve-pipeline rung of a recorded replan.
type AttemptRecord struct {
	Scale    int64   `json:"scale"`
	BudgetMs int64   `json:"budget_ms"`
	DurMs    float64 `json:"dur_ms"`
	Failure  string  `json:"failure"` // "none" on success
}

// ReplanRecord is one replan summary in the flight recorder.
type ReplanRecord struct {
	// Seq is the recorder-assigned sequence number (monotone, 1-based).
	Seq int64 `json:"seq"`
	// Kind is what triggered the replan: "step" (submissions batched into
	// a self-tuning step, including the drain flush) or "completion" (a
	// policy replan after job completions).
	Kind string `json:"kind"`
	// Now is the virtual time of the replan.
	Now int64 `json:"now"`
	// DurMs is the wall-clock duration of the whole replan.
	DurMs float64 `json:"dur_ms"`
	// Batch is the number of newly admitted jobs coalesced into the step
	// (0 for completion replans).
	Batch int `json:"batch"`
	// QueueDepth is the waiting-queue size the replan planned over.
	QueueDepth int `json:"queue_depth"`
	// Planned is how many jobs received their first plan in this replan.
	Planned int `json:"planned"`
	// Outcome is "ok", "degraded" (fell back to the basic-policy
	// schedule) or "failed" (no schedule at all; previous plan kept).
	Outcome string `json:"outcome"`
	// Policy is the dynP policy that produced the adopted schedule.
	Policy string `json:"policy,omitempty"`
	// ReasonClass is the bounded-cardinality degradation class (a
	// solvepipe failure kind, "invalid_schedule" or "step_error"); Reason
	// is the free-form detail. Both empty when Outcome is "ok".
	ReasonClass string `json:"reason_class,omitempty"`
	Reason      string `json:"reason,omitempty"`
	// CacheHit/SeedReused report cross-step solution reuse.
	CacheHit   bool `json:"cache_hit,omitempty"`
	SeedReused bool `json:"seed_reused,omitempty"`
	// Attempts is the solve pipeline's per-rung provenance (nil when the
	// step did not reach the pipeline).
	Attempts []AttemptRecord `json:"attempts,omitempty"`
	// Traces are the trace IDs riding in the step's batch (capped; see
	// maxRecordTraces).
	Traces []string `json:"traces,omitempty"`
}

// maxRecordTraces caps the trace IDs kept per record so a huge batch
// cannot bloat the ring.
const maxRecordTraces = 8

// flightRecorder is a fixed-capacity ring of ReplanRecords. The writer
// loop adds; HTTP handlers list concurrently.
type flightRecorder struct {
	mu   sync.Mutex
	buf  []ReplanRecord
	cap  int
	next int   // ring index of the next write
	seq  int64 // total records ever added
}

func newFlightRecorder(capacity int) *flightRecorder {
	if capacity < 1 {
		capacity = 64
	}
	return &flightRecorder{buf: make([]ReplanRecord, 0, capacity), cap: capacity}
}

// add assigns the record's sequence number, stores it (evicting the
// oldest once full) and returns it.
func (f *flightRecorder) add(r ReplanRecord) ReplanRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seq++
	r.Seq = f.seq
	if len(f.buf) < f.cap {
		f.buf = append(f.buf, r)
	} else {
		f.buf[f.next] = r
	}
	f.next = (f.next + 1) % f.cap
	return r
}

// list returns the recorded replans, newest first.
func (f *flightRecorder) list() []ReplanRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ReplanRecord, 0, len(f.buf))
	// Newest is the slot just before next (once the ring wrapped, next
	// points at the oldest).
	for i := 0; i < len(f.buf); i++ {
		idx := (f.next - 1 - i + len(f.buf)) % len(f.buf)
		out = append(out, f.buf[idx])
	}
	return out
}

func (f *flightRecorder) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.buf)
}

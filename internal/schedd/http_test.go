package schedd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/obs"
)

// startServer spins up a core behind the HTTP API.
func startServer(t *testing.T, cfg Config) (*httptest.Server, *Core) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c := startCore(t, cfg)
	srv := httptest.NewServer(NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

func postJob(t *testing.T, url string, body SubmitJSON) (*http.Response, SubmitResponse) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var out SubmitResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	resp.Body.Close()
	return resp, out
}

func TestHTTPSubmitAndQuery(t *testing.T) {
	srv, c := startServer(t, Config{Machine: 8, Clock: NewManualClock(0)})
	resp, sub := postJob(t, srv.URL, SubmitJSON{Width: 2, Estimate: 300})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs = %d, want 202", resp.StatusCode)
	}
	if sub.ID != 1 || sub.State != StateQueued {
		t.Errorf("submit response = %+v", sub)
	}
	waitPlanned(t, c, 1)

	r, err := http.Get(srv.URL + "/v1/jobs/" + strconv.Itoa(sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/jobs/%d = %d", sub.ID, r.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.ID != sub.ID || st.State == StateQueued {
		t.Errorf("job status = %+v, want planned state", st)
	}

	if r404, _ := http.Get(srv.URL + "/v1/jobs/4242"); r404.StatusCode != http.StatusNotFound {
		t.Errorf("GET unknown job = %d, want 404", r404.StatusCode)
	}
	if rbad, _ := http.Get(srv.URL + "/v1/jobs/xyz"); rbad.StatusCode != http.StatusBadRequest {
		t.Errorf("GET bad id = %d, want 400", rbad.StatusCode)
	}
}

func TestHTTPValidationRejects(t *testing.T) {
	srv, _ := startServer(t, Config{Machine: 4, Clock: NewManualClock(0)})
	resp, _ := postJob(t, srv.URL, SubmitJSON{Width: 99, Estimate: 10})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized width = %d, want 400", resp.StatusCode)
	}
	r, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body = %d, want 400", r.StatusCode)
	}
}

func TestHTTPRateLimit429(t *testing.T) {
	srv, _ := startServer(t, Config{
		Machine: 8, Clock: NewManualClock(0),
		RatePerSource: 0.001, Burst: 1,
	})
	first, _ := postJob(t, srv.URL, SubmitJSON{Width: 1, Estimate: 10, Source: "u1"})
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", first.StatusCode)
	}
	second, _ := postJob(t, srv.URL, SubmitJSON{Width: 1, Estimate: 10, Source: "u1"})
	if second.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited submit = %d, want 429", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After header")
	} else if s, err := strconv.Atoi(ra); err != nil || s < 1 {
		t.Errorf("Retry-After = %q, want a positive integer", ra)
	}
}

func TestHTTPScheduleHealthMetrics(t *testing.T) {
	srv, c := startServer(t, Config{Machine: 8, Clock: NewManualClock(0)})
	for i := 0; i < 3; i++ {
		resp, _ := postJob(t, srv.URL, SubmitJSON{Width: 8, Estimate: int64(100 * (i + 1))})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, resp.StatusCode)
		}
	}
	waitPlanned(t, c, 3)

	r, err := http.Get(srv.URL + "/v1/schedule")
	if err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.NewDecoder(r.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if snap.Counts.Planned != 3 {
		t.Errorf("schedule counts = %+v, want 3 planned", snap.Counts)
	}
	// Machine is width-8-saturated: one running, two waiting in the plan.
	if len(snap.Schedule) != 2 {
		t.Errorf("schedule has %d entries, want 2 future starts", len(snap.Schedule))
	}
	if snap.Policy == "" {
		t.Error("snapshot has no active policy")
	}

	rh, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthJSON
	if err := json.NewDecoder(rh.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	rh.Body.Close()
	if h.Status != "ok" {
		t.Errorf("health status = %q", h.Status)
	}
	if h.Running != 1 || h.Waiting != 2 {
		t.Errorf("health running/waiting = %d/%d, want 1/2", h.Running, h.Waiting)
	}

	rm, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var ms []MetricJSON
	if err := json.NewDecoder(rm.Body).Decode(&ms); err != nil {
		t.Fatal(err)
	}
	rm.Body.Close()
	if len(ms) == 0 {
		t.Fatal("empty metrics dump")
	}
	byName := map[string]MetricJSON{}
	for _, m := range ms {
		byName[m.Name] = m
	}
	if byName["schedd.submits"].Value != 3 {
		t.Errorf("schedd.submits = %d, want 3", byName["schedd.submits"].Value)
	}
	lat, ok := byName["schedd.submit_to_plan_ms"]
	if !ok || lat.Kind != "histogram" || lat.Value != 3 {
		t.Errorf("schedd.submit_to_plan_ms = %+v, want histogram with 3 samples", lat)
	}
	if len(lat.Buckets) == 0 || lat.Buckets[len(lat.Buckets)-1].LE != "+Inf" {
		t.Errorf("histogram buckets malformed: %+v", lat.Buckets)
	}
}

func TestHTTPDraining503(t *testing.T) {
	srv, c := startServer(t, Config{Machine: 8, Clock: NewManualClock(0)})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Stop(ctx); err != nil {
		t.Fatal(err)
	}
	resp, _ := postJob(t, srv.URL, SubmitJSON{Width: 1, Estimate: 10})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining = %d, want 503", resp.StatusCode)
	}
	rh, err := http.Get(srv.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer rh.Body.Close()
	var h HealthJSON
	if err := json.NewDecoder(rh.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" {
		t.Errorf("health status = %q, want draining", h.Status)
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	// The core is built but its writer loop never started: the submit
	// queue cannot drain, so the bound is hit deterministically and the
	// HTTP layer must answer 429 with Retry-After.
	c, err := New(Config{
		Machine: 8, Scheduler: newScheduler(t), Clock: NewManualClock(0),
		QueueBound: 2, Metrics: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(c))
	defer srv.Close()
	for i := 0; i < 2; i++ {
		resp, _ := postJob(t, srv.URL, SubmitJSON{Width: 1, Estimate: 10})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d = %d, want 202", i, resp.StatusCode)
		}
	}
	b, _ := json.Marshal(SubmitJSON{Width: 1, Estimate: 10})
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit into full queue = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("queue-full 429 without Retry-After")
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
		t.Errorf("429 body not a JSON error: %v %v", e, err)
	}
	// The queued-but-unplanned jobs are still visible as queued.
	if st, ok := c.Job(1); !ok || st.State != StateQueued {
		t.Errorf("job 1 = %+v (%v), want queued", st, ok)
	}
}

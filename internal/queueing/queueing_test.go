package queueing

import (
	"testing"
	"testing/quick"

	"repro/internal/dynp"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func j(id int, submit int64, width int, est, run int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: run}
}

func trace(procs int, jobs ...*job.Job) *job.Trace {
	t := &job.Trace{Processors: procs, Jobs: jobs}
	t.SortBySubmit()
	return t
}

func find(t *testing.T, r *Result, id int) metrics.Completion {
	t.Helper()
	for _, c := range r.Completed {
		if c.Job.ID == id {
			return c
		}
	}
	t.Fatalf("job %d not completed", id)
	return metrics.Completion{}
}

func TestFCFSNoBackfillBlocks(t *testing.T) {
	// Head job (w=4) blocked by a running 2-wide job; a narrow job behind
	// it must NOT start under strict FCFS even though it would fit.
	tr := trace(4,
		j(1, 0, 2, 100, 100),
		j(2, 1, 4, 50, 50),
		j(3, 2, 2, 20, 20),
	)
	res, err := Simulate(tr, FCFSNoBackfill, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 3); c.Start != 150 {
		t.Fatalf("job 3 start %d, want 150 (after head)", c.Start)
	}
	if res.Backfilled != 0 {
		t.Fatalf("strict FCFS backfilled %d jobs", res.Backfilled)
	}
}

func TestEASYBackfillsShortJob(t *testing.T) {
	// Same trace under EASY: job 3 (20 s) finishes before the head's
	// shadow time (100), so it backfills immediately.
	tr := trace(4,
		j(1, 0, 2, 100, 100),
		j(2, 1, 4, 50, 50),
		j(3, 2, 2, 20, 20),
	)
	res, err := Simulate(tr, EASY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 3); c.Start != 2 {
		t.Fatalf("job 3 start %d, want 2 (backfilled)", c.Start)
	}
	if c := find(t, res, 2); c.Start != 100 {
		t.Fatalf("head start %d, want 100 (not delayed)", c.Start)
	}
	if res.Backfilled != 1 {
		t.Fatalf("Backfilled = %d, want 1", res.Backfilled)
	}
}

func TestEASYDoesNotDelayHead(t *testing.T) {
	// A long candidate that fits now but would run past the shadow time
	// and exceed the extra nodes must NOT backfill.
	tr := trace(4,
		j(1, 0, 2, 100, 100), // running, ends (estimated) at 100
		j(2, 1, 4, 50, 50),   // head, shadow = 100, extra = 0
		j(3, 2, 2, 500, 500), // would delay the head
	)
	res, err := Simulate(tr, EASY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 2); c.Start != 100 {
		t.Fatalf("head start %d, want 100", c.Start)
	}
	if c := find(t, res, 3); c.Start < 150 {
		t.Fatalf("long candidate started at %d, delaying the head", c.Start)
	}
}

func TestEASYExtraNodes(t *testing.T) {
	// Head needs 3 of 4 processors: one extra node. A long 1-wide job may
	// backfill on the extra node even though it outlives the shadow time.
	tr := trace(4,
		j(1, 0, 4, 100, 100), // occupies everything
		j(2, 1, 3, 50, 50),   // head: shadow 100, extra 1
		j(3, 2, 1, 900, 900), // 1-wide, fits the extra node
	)
	res, err := Simulate(tr, EASY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c := find(t, res, 3); c.Start != 100 {
		// It cannot start before 100 (no free processor), but at 100 both
		// the head and the extra-node job start together.
		t.Fatalf("extra-node job start %d, want 100", c.Start)
	}
	if c := find(t, res, 2); c.Start != 100 {
		t.Fatalf("head start %d, want 100", c.Start)
	}
}

func TestEarlyCompletionStartsQueue(t *testing.T) {
	// Queueing systems react to actual completions: job 1 estimates 100
	// but ends at 40, so the head starts at 40.
	tr := trace(2,
		j(1, 0, 2, 100, 40),
		j(2, 1, 2, 50, 50),
	)
	for _, d := range []Discipline{FCFSNoBackfill, EASY} {
		res, err := Simulate(tr, d, 0)
		if err != nil {
			t.Fatal(err)
		}
		if c := find(t, res, 2); c.Start != 40 {
			t.Fatalf("%v: job 2 start %d, want 40", d, c.Start)
		}
	}
}

func TestSimulateErrors(t *testing.T) {
	if _, err := Simulate(&job.Trace{}, EASY, 4); err == nil {
		t.Fatal("empty trace accepted")
	}
	tr := trace(0, j(1, 0, 2, 10, 10))
	if _, err := Simulate(tr, EASY, 0); err == nil {
		t.Fatal("unknown machine size accepted")
	}
	wide := trace(2, j(1, 0, 2, 10, 10))
	if _, err := Simulate(wide, EASY, 1); err == nil {
		t.Fatal("over-wide job accepted")
	}
}

func TestDisciplineString(t *testing.T) {
	if FCFSNoBackfill.String() != "FCFS-noBF" || EASY.String() != "EASY" {
		t.Fatal("Discipline.String broken")
	}
}

// Property: every queueing run completes all jobs exactly once without
// over-committing the machine, EASY never performs worse than strict
// FCFS on mean wait... (not true in general!) — so we assert only the
// safety invariants plus "EASY backfills at least as many jobs as strict
// FCFS" (trivially >= 0) and utilization is well-defined.
func TestQueueingInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		procs := r.Intn(15) + 2
		n := r.Intn(25) + 1
		tr := &job.Trace{Processors: procs}
		var clock int64
		for i := 0; i < n; i++ {
			clock += int64(r.Intn(150))
			run := int64(r.Intn(400) + 1)
			tr.Jobs = append(tr.Jobs, j(i+1, clock, r.Intn(procs)+1, run+int64(r.Intn(200)), run))
		}
		for _, d := range []Discipline{FCFSNoBackfill, EASY} {
			res, err := Simulate(tr, d, 0)
			if err != nil {
				return false
			}
			if len(res.Completed) != n {
				return false
			}
			p := machine.New(procs, 0)
			for _, c := range res.Completed {
				if c.Start < c.Job.Submit {
					return false
				}
				if c.End != c.Start+c.Job.Runtime {
					return false
				}
				if p.Reserve(c.Start, c.End, c.Job.Width) != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// EASY's guarantee is only that the queue *head* is never delayed by a
// backfill decision; jobs further back can occasionally lose even with
// exact estimates, so "EASY <= FCFS" is not a per-instance invariant.
// Statistically, however, backfilling must be a clear net win: across
// many random workloads EASY's mean wait should beat strict FCFS's on
// the vast majority of instances and by a large margin in aggregate.
func TestEASYBeatsStrictFCFSStatistically(t *testing.T) {
	const trials = 80
	wins, losses := 0, 0
	var fcTotal, ezTotal float64
	for seed := uint64(1); seed <= trials; seed++ {
		r := stats.NewRand(seed)
		procs := r.Intn(12) + 2
		n := r.Intn(20) + 2
		tr := &job.Trace{Processors: procs}
		var clock int64
		for i := 0; i < n; i++ {
			clock += int64(r.Intn(100))
			run := int64(r.Intn(300) + 1)
			tr.Jobs = append(tr.Jobs, j(i+1, clock, r.Intn(procs)+1, run, run))
		}
		fc, err := Simulate(tr, FCFSNoBackfill, 0)
		if err != nil {
			t.Fatal(err)
		}
		ez, err := Simulate(tr, EASY, 0)
		if err != nil {
			t.Fatal(err)
		}
		fw := fc.Observe(procs).MeanWait
		ew := ez.Observe(procs).MeanWait
		fcTotal += fw
		ezTotal += ew
		switch {
		case ew < fw-1e-9:
			wins++
		case ew > fw+1e-9:
			losses++
		}
	}
	if losses > wins {
		t.Fatalf("EASY lost more often than it won: %d wins, %d losses", wins, losses)
	}
	if ezTotal > fcTotal {
		t.Fatalf("EASY aggregate mean wait %v worse than strict FCFS %v", ezTotal, fcTotal)
	}
}

// Planning-based FCFS (conservative backfilling) and EASY are different
// systems; on the CTC-like workload both must complete everything, and
// planning (which backfills more aggressively into the future plan)
// should not be dramatically worse.
func TestQueueingVsPlanningSmoke(t *testing.T) {
	tr, err := workload.Generate(workload.CTC(), 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	ez, err := Simulate(tr, EASY, 0)
	if err != nil {
		t.Fatal(err)
	}
	sched := dynp.MustNew([]policy.Policy{policy.FCFS{}}, metrics.SLDwA{}, dynp.SimpleDecider{})
	s, err := sim.New(tr, sched, sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	plan, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(ez.Completed) != 200 || len(plan.Completed) != 200 {
		t.Fatalf("job loss: EASY %d, planning %d", len(ez.Completed), len(plan.Completed))
	}
}

func BenchmarkEASY500Jobs(b *testing.B) {
	tr, err := workload.Generate(workload.CTC(), 500, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(tr, EASY, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// Package queueing implements the *queuing-based* resource management
// alternative the paper contrasts planning against (Hovestadt, Kao,
// Keller & Streit: "Scheduling in HPC Resource Management Systems:
// Queuing vs. Planning", the paper's [4]). A queueing system keeps
// submitted jobs in a queue and only decides what to start *now*; it
// assigns no future start times, so reservations are impossible — the
// capability planning-based systems (package sim) add.
//
// Two classic disciplines are provided:
//
//   - FCFSNoBackfill: strict first come, first serve; the queue head
//     blocks everything behind it.
//   - EASY: aggressive backfilling (Lifka's ANL/IBM SP scheduler, the
//     paper's [8, 12]): the queue head gets a shadow reservation from the
//     running jobs' estimated ends, and later jobs may jump ahead iff
//     they do not delay that reservation.
//
// Conservative backfilling is the planning-based FCFS of package policy
// ("backfilling is done implicitly"), so it lives there.
package queueing

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/job"
	"repro/internal/metrics"
)

// Discipline selects the queue policy.
type Discipline int

const (
	// FCFSNoBackfill starts jobs strictly in arrival order.
	FCFSNoBackfill Discipline = iota
	// EASY is FCFS with aggressive (EASY) backfilling.
	EASY
)

func (d Discipline) String() string {
	if d == EASY {
		return "EASY"
	}
	return "FCFS-noBF"
}

// Result of a queueing simulation.
type Result struct {
	Completed []metrics.Completion
	// Backfilled counts jobs started ahead of an earlier-submitted job.
	Backfilled int
}

// Observe aggregates the observed metrics.
func (r *Result) Observe(machine int) metrics.Observed {
	return metrics.Observe(r.Completed, machine)
}

type qEventKind int

const (
	qEnd qEventKind = iota
	qSubmit
)

type qEvent struct {
	time int64
	kind qEventKind
	seq  int
	job  *job.Job
}

type qEventQueue []qEvent

func (q qEventQueue) Len() int { return len(q) }
func (q qEventQueue) Less(i, j int) bool {
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	if q[i].kind != q[j].kind {
		return q[i].kind < q[j].kind
	}
	return q[i].seq < q[j].seq
}
func (q qEventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *qEventQueue) Push(x any)   { *q = append(*q, x.(qEvent)) }
func (q *qEventQueue) Pop() any {
	old := *q
	e := old[len(old)-1]
	*q = old[:len(old)-1]
	return e
}

type running struct {
	job          *job.Job
	estimatedEnd int64
}

// Simulate runs the trace under the given queueing discipline on a
// machine with total processors (0 = the trace's count).
func Simulate(t *job.Trace, d Discipline, total int) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("queueing: %v", err)
	}
	if total == 0 {
		total = t.Processors
	}
	if total <= 0 {
		return nil, fmt.Errorf("queueing: machine size unknown")
	}
	for _, j := range t.Jobs {
		if j.Width > total {
			return nil, fmt.Errorf("queueing: %v wider than machine (%d)", j, total)
		}
	}
	s := &state{total: total, free: total, disc: d, result: &Result{}}
	for _, j := range t.Jobs {
		s.push(qEvent{time: j.Submit, kind: qSubmit, job: j})
	}
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(qEvent)
		s.clock = e.time
		switch e.kind {
		case qSubmit:
			s.queue = append(s.queue, e.job)
		case qEnd:
			r := s.running[e.job.ID]
			s.result.Completed = append(s.result.Completed, metrics.Completion{
				Job: e.job, Start: r.estimatedEnd - e.job.Estimate, End: s.clock,
			})
			delete(s.running, e.job.ID)
			s.free += e.job.Width
		}
		s.schedule()
	}
	if len(s.queue) > 0 || len(s.running) > 0 {
		return nil, fmt.Errorf("queueing: %d queued and %d running jobs left over",
			len(s.queue), len(s.running))
	}
	return s.result, nil
}

type state struct {
	total, free int
	clock       int64
	disc        Discipline
	queue       []*job.Job
	running     map[int]*running
	events      qEventQueue
	seq         int
	result      *Result
}

func (s *state) push(e qEvent) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

func (s *state) start(j *job.Job) {
	if s.running == nil {
		s.running = map[int]*running{}
	}
	s.free -= j.Width
	s.running[j.ID] = &running{job: j, estimatedEnd: s.clock + j.Estimate}
	s.push(qEvent{time: s.clock + j.Runtime, kind: qEnd, job: j})
}

// schedule starts whatever the discipline admits right now.
func (s *state) schedule() {
	// Start queue heads while they fit (both disciplines do this).
	for len(s.queue) > 0 && s.queue[0].Width <= s.free {
		s.start(s.queue[0])
		s.queue = s.queue[1:]
	}
	if s.disc != EASY || len(s.queue) == 0 {
		return
	}
	// EASY backfilling: the queue head gets a shadow reservation derived
	// from the running jobs' *estimated* ends; a later job may start now
	// iff it fits and either finishes before the shadow time or uses only
	// the extra nodes the head leaves free. The shadow is recomputed
	// after every backfill start, as the started job joins the running
	// set and shifts the picture.
	for {
		shadow, extra, ok := s.shadowForHead()
		if !ok {
			return
		}
		started := false
		for i := 1; i < len(s.queue); i++ {
			c := s.queue[i]
			if c.Width > s.free {
				continue
			}
			if s.clock+c.Estimate <= shadow || c.Width <= extra {
				s.start(c)
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				s.result.Backfilled++
				started = true
				break
			}
		}
		if !started {
			return
		}
	}
}

// shadowForHead computes the earliest time the queue head could start
// given the running jobs' estimated ends (the "shadow time") and the
// number of processors left over for backfilling at that instant.
func (s *state) shadowForHead() (shadow int64, extra int, ok bool) {
	head := s.queue[0]
	type rel struct {
		t int64
		w int
	}
	rels := make([]rel, 0, len(s.running))
	for _, r := range s.running {
		rels = append(rels, rel{r.estimatedEnd, r.job.Width})
	}
	sort.Slice(rels, func(i, j int) bool { return rels[i].t < rels[j].t })
	free := s.free
	shadow = s.clock
	for _, r := range rels {
		if free >= head.Width {
			break
		}
		free += r.w
		shadow = r.t
	}
	if free < head.Width {
		return 0, 0, false // defensive: cannot happen for valid traces
	}
	return shadow, free - head.Width, true
}

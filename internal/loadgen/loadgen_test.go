package loadgen

import (
	"context"
	"math"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/dynp"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedd"
)

// startService brings up a schedd core behind an httptest server.
func startService(t *testing.T, cfg schedd.Config) (*httptest.Server, *schedd.Core) {
	t.Helper()
	if cfg.Machine == 0 {
		cfg.Machine = 64
	}
	if cfg.Scheduler == nil {
		pols := []policy.Policy{policy.FCFS{}, policy.SJF{}, policy.LJF{}}
		m, err := metrics.ByName("SLDwA")
		if err != nil {
			t.Fatal(err)
		}
		cfg.Scheduler, err = dynp.New(pols, m, dynp.AdvancedDecider{})
		if err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Clock == nil {
		cfg.Clock = schedd.NewManualClock(0)
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	c, err := schedd.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		c.Stop(ctx)
	})
	srv := httptest.NewServer(schedd.NewHandler(c))
	t.Cleanup(srv.Close)
	return srv, c
}

// burstTrace builds n jobs arriving in a burst every burstGap seconds,
// burstSize jobs per burst.
func burstTrace(n, burstSize int, burstGap int64) *job.Trace {
	tr := &job.Trace{Processors: 64, Note: "loadgen test"}
	for i := 0; i < n; i++ {
		tr.Jobs = append(tr.Jobs, &job.Job{
			ID:       i + 1,
			Submit:   int64(i/burstSize) * burstGap,
			Width:    1 + i%4,
			Estimate: 600,
			Runtime:  300,
		})
	}
	return tr
}

func TestRunReplaysTraceAndMeasures(t *testing.T) {
	srv, _ := startService(t, schedd.Config{MaxBatch: 64, MaxBatchDelay: 2 * time.Millisecond})
	res, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Trace:   burstTrace(40, 8, 60),
		Accel:   6000, // a 60 s burst gap becomes 10 ms of wall time
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Submitted != 40 || res.Accepted != 40 {
		t.Fatalf("submitted/accepted = %d/%d, want 40/40: %s", res.Submitted, res.Accepted, res)
	}
	if res.Rejected429 != 0 || res.RejectedOther != 0 || res.TransportErrors != 0 {
		t.Errorf("unexpected rejections: %s", res)
	}
	if res.DroppedAccepted != 0 || res.Planned != 40 {
		t.Errorf("planned %d, dropped %d, want 40/0", res.Planned, res.DroppedAccepted)
	}
	if res.Steps <= 0 {
		t.Errorf("steps = %d, want > 0", res.Steps)
	}
	if res.ThroughputRPS <= 0 || res.WallSeconds <= 0 {
		t.Errorf("throughput bookkeeping empty: %s", res)
	}
	if res.SubmitLatency.Max <= 0 {
		t.Errorf("submit latency not measured: %+v", res.SubmitLatency)
	}
	if res.PlanLatency.Max <= 0 || res.PlanLatency.P50 > res.PlanLatency.P99 {
		t.Errorf("plan latency malformed: %+v", res.PlanLatency)
	}
}

func TestRunBatchingReducesReplans(t *testing.T) {
	trace := burstTrace(48, 12, 120)
	steps := make(map[string]int64)
	for _, tc := range []struct {
		name string
		cfg  schedd.Config
	}{
		{"off", schedd.Config{MaxBatch: 1}},
		{"on", schedd.Config{MaxBatch: 64, MaxBatchDelay: 5 * time.Millisecond}},
	} {
		srv, _ := startService(t, tc.cfg)
		res, err := Run(context.Background(), Config{
			BaseURL: srv.URL,
			Trace:   trace,
			Accel:   12000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted != 48 || res.DroppedAccepted != 0 {
			t.Fatalf("batching=%s: accepted %d dropped %d, want 48/0",
				tc.name, res.Accepted, res.DroppedAccepted)
		}
		steps[tc.name] = res.Steps
	}
	if steps["off"] != 48 {
		t.Errorf("batching off: %d steps, want one per submission (48)", steps["off"])
	}
	if steps["on"] >= steps["off"] {
		t.Errorf("batching on: %d steps, want fewer than %d", steps["on"], steps["off"])
	}
}

func TestRunSurfacesBackpressure(t *testing.T) {
	// One token per source and a near-zero refill rate: only the first
	// submission of each source is admitted, the rest must come back as
	// 429s, not transport errors.
	srv, _ := startService(t, schedd.Config{
		RatePerSource: 0.0001, Burst: 1, MaxBatch: 1,
	})
	res, err := Run(context.Background(), Config{
		BaseURL: srv.URL,
		Trace:   burstTrace(12, 12, 0),
		Accel:   1000,
		Sources: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 3 {
		t.Errorf("accepted = %d, want one per source (3)", res.Accepted)
	}
	if res.Rejected429 != 9 {
		t.Errorf("429s = %d, want 9", res.Rejected429)
	}
	if res.TransportErrors != 0 || res.RejectedOther != 0 {
		t.Errorf("unexpected failures: %s", res)
	}
	if res.DroppedAccepted != 0 {
		t.Errorf("dropped accepted = %d, want 0", res.DroppedAccepted)
	}
}

func TestPercentiles(t *testing.T) {
	if p := percentiles(nil); p.P50 != 0 || p.Max != 0 {
		t.Errorf("empty percentiles = %+v", p)
	}
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = float64(i + 1) // 1..100
	}
	p := percentiles(samples)
	// Histogram-estimated quantiles: each distinct sample is a bucket
	// edge, so 1..100 interpolates to the exact nearest-rank values; Max
	// is always exact.
	if p.P50 != 50 || p.P90 != 90 || p.P99 != 99 || p.Max != 100 {
		t.Errorf("percentiles(1..100) = %+v", p)
	}
	one := percentiles([]float64{7})
	if one.Max != 7 {
		t.Errorf("percentiles([7]).Max = %v, want exact 7", one.Max)
	}
	if one.P50 <= 0 || one.P50 > 7 || one.P99 <= 0 || one.P99 > 7 {
		t.Errorf("percentiles([7]) estimates out of range: %+v", one)
	}
	if one.P50 > one.P99 {
		t.Errorf("quantiles not monotone: %+v", one)
	}
	if math.IsNaN(p.P50) {
		t.Error("NaN percentile")
	}
}

func TestRunValidatesConfig(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{BaseURL: "http://127.0.0.1:1"},
		{Trace: burstTrace(1, 1, 0)},
	} {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("Run(%+v) succeeded, want error", cfg)
		}
	}
}

func TestResultString(t *testing.T) {
	r := &Result{Submitted: 10, Accepted: 9, Rejected429: 1, WallSeconds: 2}
	s := r.String()
	for _, want := range []string{"submissions", "429 1", "plan latency"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

// Package loadgen is the open-loop workload driver of the scheduling
// service (internal/schedd): it replays a job trace against the HTTP
// API at a configurable acceleration factor — submission i fires at
// wall time (submit_i - submit_0) / Accel after the start, regardless
// of how fast the service answers, which is what makes the load open
// loop — and measures what serving actually feels like: submit HTTP
// round-trip latency, server-side submit-to-plan latency percentiles,
// throughput, 429 backpressure counts, and the replan/batch totals
// scraped from /v1/metrics.
//
// Traces come from internal/swf (real or ctcgen-written files) or
// internal/workload (synthetic CTC-like Poisson arrivals), so the same
// driver exercises live-shaped traffic and accelerated archive replay.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/job"
	"repro/internal/obs"
	"repro/internal/schedd"
)

// Config parameterizes a load-generation run.
type Config struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets, when non-empty, overrides BaseURL with a round-robin set
	// of service roots: submission i fires at Targets[i mod len], each
	// job's status is fetched back from the target that admitted it, and
	// the scraped planning totals sum across targets. Point it at
	// several independent daemons to compare them under one arrival
	// process; a sharded fabric needs only its router URL (the router
	// merges the per-shard series server-side). Duplicate-ID detection
	// is per-target — independent daemons mint overlapping IDs.
	Targets []string
	// Trace supplies the arrival process: submission times (compressed
	// by Accel), widths, estimates and runtimes.
	Trace *job.Trace
	// Accel compresses trace time: a gap of Accel virtual seconds
	// between submissions becomes one wall second (default 1000).
	Accel float64
	// Sources is the number of distinct source labels assigned
	// round-robin, exercising per-source rate limiting (default 4).
	Sources int
	// Client is the HTTP client (default: http.Client with a 10s
	// timeout and a transport sized for the fan-out).
	Client *http.Client
	// WaitTimeout bounds the post-submission wait for every accepted
	// job to be planned (default 60s).
	WaitTimeout time.Duration
	// StatusWorkers fetches per-job statuses at the end (default 8).
	StatusWorkers int
	// IdempotencyPrefix, when non-empty, attaches a deterministic
	// Idempotency-Key header ("<prefix>-<i>") to submission i. Rerunning
	// the same trace with the same prefix against a recovered daemon is
	// the crash-resume drill: every job that survived the crash answers
	// as a dedup hit with its original ID instead of being admitted
	// twice, and the Result's Deduplicated/NewlyAccepted split plus
	// DuplicateIDs make the zero-duplicates assertion directly checkable.
	IdempotencyPrefix string
	// SLODeadlineS, when > 0, attaches this start-SLO deadline (virtual
	// seconds) to every submission, exercising the digital-twin
	// admission: jobs whose predicted start busts the deadline are
	// rejected up front (counted in RejectedSLO).
	SLODeadlineS int64
}

// Percentiles summarizes a latency distribution in milliseconds.
type Percentiles struct {
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// percentiles summarizes a sample set through the obs histogram
// estimator (the same Quantile the live instruments use): every
// distinct sample value becomes a bucket edge, so the estimate tracks
// the empirical distribution to within interpolation error. Max is
// taken from the samples directly and stays exact.
func percentiles(samples []float64) Percentiles {
	if len(samples) == 0 {
		return Percentiles{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	bounds := make([]float64, 0, len(s))
	for _, v := range s {
		if len(bounds) == 0 || v > bounds[len(bounds)-1] {
			bounds = append(bounds, v)
		}
	}
	h := obs.NewHistogram(bounds)
	for _, v := range s {
		h.Observe(v)
	}
	return Percentiles{
		P50: h.Quantile(0.50), P90: h.Quantile(0.90), P99: h.Quantile(0.99),
		Max: s[len(s)-1],
	}
}

// Result is the outcome of a run.
type Result struct {
	// Submitted is the number of submissions fired; Accepted of them
	// were admitted (202), Rejected429 hit backpressure (queue full or
	// rate limit), RejectedOther covers every other HTTP rejection and
	// TransportErrors failed before an HTTP status was received.
	Submitted       int `json:"submitted"`
	Accepted        int `json:"accepted"`
	Rejected429     int `json:"rejected_429"`
	RejectedOther   int `json:"rejected_other"`
	TransportErrors int `json:"transport_errors"`
	// RejectedSLO is the subset of Rejected429 whose body carried the
	// digital twin's deadline-aware reason (predicted start past the
	// submission's SLO deadline).
	RejectedSLO int `json:"rejected_slo,omitempty"`
	// Deduplicated counts accepted responses that were idempotency-key
	// dedup hits (the server returned an existing job instead of
	// admitting a new one); NewlyAccepted = Accepted - Deduplicated.
	// DuplicateIDs counts accepted responses whose job ID was already
	// returned to a different submission of this run — with distinct
	// keys it must be zero, and nonzero means the service double-admitted.
	Deduplicated  int `json:"deduplicated"`
	NewlyAccepted int `json:"newly_accepted"`
	DuplicateIDs  int `json:"duplicate_ids"`
	// WallSeconds is the submission phase duration; ThroughputRPS is
	// Submitted / WallSeconds. TotalSeconds additionally covers the wait
	// for every accepted job to be planned, and EndToEndRPS is
	// NewlyAccepted / TotalSeconds — the service-side serving throughput
	// once the replay itself stops being the bottleneck (high Accel).
	WallSeconds   float64 `json:"wall_seconds"`
	ThroughputRPS float64 `json:"throughput_rps"`
	TotalSeconds  float64 `json:"total_seconds"`
	EndToEndRPS   float64 `json:"end_to_end_rps"`
	// SubmitLatency is the client-observed HTTP round trip of accepted
	// submissions; PlanLatency is the server-recorded admission-to-plan
	// latency of the same jobs.
	SubmitLatency Percentiles `json:"submit_latency"`
	PlanLatency   Percentiles `json:"plan_latency"`
	// PlanLatencyByShard breaks PlanLatency down by the shard that
	// planned each job (keyed "shard-<i>"; multi-target runs prefix the
	// target index). Empty unless the run spanned more than one group,
	// so single-core results keep their shape.
	PlanLatencyByShard map[string]Percentiles `json:"plan_latency_by_shard,omitempty"`
	// Planned (from /v1/metrics) must cover every newly accepted job:
	// DroppedAccepted = NewlyAccepted - Planned is the service's
	// data-loss count and should always be zero. Dedup hits are excluded
	// because they were planned by a previous process incarnation, whose
	// registry counters (standard counter semantics) reset on restart.
	// MissingJobs counts accepted IDs the final status sweep could not
	// fetch back — the direct zero-lost check of the crash-resume drill.
	Planned         int64 `json:"planned"`
	DroppedAccepted int64 `json:"dropped_accepted"`
	MissingJobs     int   `json:"missing_jobs"`
	// Replan provenance scraped from /v1/metrics.
	Steps         int64 `json:"steps"`
	Replans       int64 `json:"replans"`
	Batches       int64 `json:"batches"`
	DegradedSteps int64 `json:"degraded_steps"`
	// ReplansPerSec is (Steps + Replans) / WallSeconds.
	ReplansPerSec float64 `json:"replans_per_sec"`
	// Anytime serving telemetry scraped from /v1/metrics:
	// AnytimeAdopted counts background-optimizer incumbents that
	// replaced the live plan; SLOMisses counts admitted jobs whose
	// adopted plan busted their start deadline (with SLODeadlineS and
	// the twin admission on, this should be zero). Solves/Found/Stale/
	// Rejected expose the optimizer's funnel — sessions run, incumbents
	// published, and the two drop reasons on the adoption path — and
	// SLOGuarded counts interval steps that served the policy schedule
	// because the ILP result would have busted an admitted deadline.
	AnytimeAdopted  int64 `json:"anytime_adopted,omitempty"`
	AnytimeSolves   int64 `json:"anytime_solves,omitempty"`
	AnytimeFound    int64 `json:"anytime_found,omitempty"`
	AnytimeStale    int64 `json:"anytime_stale,omitempty"`
	AnytimeRejected int64 `json:"anytime_rejected,omitempty"`
	SLOGuarded      int64 `json:"slo_guarded,omitempty"`
	SLOMisses       int64 `json:"slo_misses,omitempty"`
}

func (c Config) withDefaults() Config {
	if c.Accel <= 0 {
		c.Accel = 1000
	}
	if c.Sources < 1 {
		c.Sources = 4
	}
	if c.WaitTimeout <= 0 {
		c.WaitTimeout = 60 * time.Second
	}
	if c.StatusWorkers < 1 {
		c.StatusWorkers = 8
	}
	if c.Client == nil {
		tr := &http.Transport{MaxIdleConns: 128, MaxIdleConnsPerHost: 128}
		c.Client = &http.Client{Timeout: 10 * time.Second, Transport: tr}
	}
	if len(c.Targets) == 0 && c.BaseURL != "" {
		c.Targets = []string{c.BaseURL}
	}
	return c
}

// Run replays the trace against the service. It returns once every
// accepted job is planned (or WaitTimeout expires) with the measured
// result; the error is non-nil only for setup-level failures (bad
// config, unreachable metrics endpoint), not per-request ones.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no BaseURL or Targets")
	}
	if cfg.Trace == nil || len(cfg.Trace.Jobs) == 0 {
		return nil, fmt.Errorf("loadgen: empty trace")
	}
	targets := cfg.Targets
	jobs := cfg.Trace.Jobs
	submit0 := jobs[0].Submit

	// acceptedRef remembers which target admitted a job so the status
	// sweep asks the right service (IDs are only unique per target).
	type acceptedRef struct{ target, id int }
	var (
		mu          sync.Mutex
		res         Result
		submitLatMs []float64
		accepted    []acceptedRef
		seenIDs     = make(map[acceptedRef]bool)
	)
	start := time.Now()
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j *job.Job) {
			defer wg.Done()
			due := start.Add(time.Duration(float64(j.Submit-submit0) / cfg.Accel * float64(time.Second)))
			if d := time.Until(due); d > 0 {
				t := time.NewTimer(d)
				defer t.Stop()
				select {
				case <-t.C:
				case <-ctx.Done():
					return
				}
			}
			body, _ := json.Marshal(schedd.SubmitJSON{
				Width:    j.Width,
				Estimate: j.Estimate,
				Runtime:  j.Runtime,
				Source:   fmt.Sprintf("src-%d", i%cfg.Sources),
				Deadline: cfg.SLODeadlineS,
			})
			target := i % len(targets)
			t0 := time.Now()
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				targets[target]+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if cfg.IdempotencyPrefix != "" {
				req.Header.Set(schedd.IdemHeader, fmt.Sprintf("%s-%d", cfg.IdempotencyPrefix, i))
			}
			resp, err := cfg.Client.Do(req)
			rtt := time.Since(t0)
			mu.Lock()
			defer mu.Unlock()
			res.Submitted++
			if err != nil {
				res.TransportErrors++
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var sr schedd.SubmitResponse
				if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
					res.TransportErrors++
					return
				}
				res.Accepted++
				if sr.Deduplicated {
					res.Deduplicated++
				}
				ref := acceptedRef{target, sr.ID}
				if seenIDs[ref] {
					res.DuplicateIDs++
				}
				seenIDs[ref] = true
				accepted = append(accepted, ref)
				submitLatMs = append(submitLatMs, float64(rtt)/float64(time.Millisecond))
			case http.StatusTooManyRequests:
				res.Rejected429++
				// The twin's deadline rejections share the 429 status with
				// backpressure; the body's error string tells them apart.
				if b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096)); bytes.Contains(b, []byte("slo_deadline")) {
					res.RejectedSLO++
				}
				io.Copy(io.Discard, resp.Body)
			default:
				res.RejectedOther++
				io.Copy(io.Discard, resp.Body)
			}
		}(i, j)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	if res.WallSeconds > 0 {
		res.ThroughputRPS = float64(res.Submitted) / res.WallSeconds
	}
	res.NewlyAccepted = res.Accepted - res.Deduplicated
	res.SubmitLatency = percentiles(submitLatMs)

	// Wait until every target has planned every accepted job (totals sum
	// across targets; a sharded router already serves the merged rollup).
	deadline := time.Now().Add(cfg.WaitTimeout)
	for {
		res.Planned, res.Steps, res.Replans, res.Batches, res.DegradedSteps = 0, 0, 0, 0, 0
		res.AnytimeAdopted, res.SLOMisses = 0, 0
		res.AnytimeSolves, res.AnytimeFound, res.AnytimeStale, res.AnytimeRejected, res.SLOGuarded = 0, 0, 0, 0, 0
		for _, base := range targets {
			m, err := ScrapeMetrics(ctx, cfg.Client, base)
			if err != nil {
				return nil, fmt.Errorf("loadgen: metrics scrape: %w", err)
			}
			res.Planned += m["schedd.jobs.planned"]
			res.Steps += m["schedd.steps"]
			res.Replans += m["schedd.replans"]
			res.Batches += m["schedd.batches"]
			res.DegradedSteps += m["schedd.degraded.steps"]
			res.AnytimeAdopted += m["anytime.incumbents.adopted"]
			res.AnytimeSolves += m["anytime.solves"]
			res.AnytimeFound += m["anytime.incumbents.found"]
			res.AnytimeStale += m["anytime.incumbents.stale"]
			res.AnytimeRejected += m["anytime.incumbents.rejected"]
			res.SLOGuarded += m["schedd.steps.slo_guarded"]
			res.SLOMisses += m["schedd.slo.misses"]
		}
		if res.Planned >= int64(res.NewlyAccepted) || time.Now().After(deadline) || ctx.Err() != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	res.DroppedAccepted = int64(res.NewlyAccepted) - res.Planned
	if res.DroppedAccepted < 0 {
		res.DroppedAccepted = 0
	}
	if res.WallSeconds > 0 {
		res.ReplansPerSec = float64(res.Steps+res.Replans) / res.WallSeconds
	}
	res.TotalSeconds = time.Since(start).Seconds()
	if res.TotalSeconds > 0 {
		res.EndToEndRPS = float64(res.NewlyAccepted) / res.TotalSeconds
	}

	// Collect server-side plan latencies per accepted job, grouped by
	// the shard (and target, for multi-target runs) that planned it.
	planLat := make([]float64, 0, len(accepted))
	byShard := map[string][]float64{}
	refCh := make(chan acceptedRef, len(accepted))
	for _, ref := range accepted {
		refCh <- ref
	}
	close(refCh)
	var pwg sync.WaitGroup
	var pmu sync.Mutex
	for w := 0; w < cfg.StatusWorkers; w++ {
		pwg.Add(1)
		go func() {
			defer pwg.Done()
			for ref := range refCh {
				st, err := FetchJob(ctx, cfg.Client, targets[ref.target], ref.id)
				if err != nil {
					pmu.Lock()
					res.MissingJobs++
					pmu.Unlock()
					continue
				}
				if st.PlanLatencyMs < 0 {
					continue
				}
				key := fmt.Sprintf("shard-%d", st.Shard)
				if len(targets) > 1 {
					key = fmt.Sprintf("target-%d.%s", ref.target, key)
				}
				pmu.Lock()
				planLat = append(planLat, st.PlanLatencyMs)
				byShard[key] = append(byShard[key], st.PlanLatencyMs)
				pmu.Unlock()
			}
		}()
	}
	pwg.Wait()
	res.PlanLatency = percentiles(planLat)
	if len(byShard) > 1 {
		res.PlanLatencyByShard = make(map[string]Percentiles, len(byShard))
		for key, samples := range byShard {
			res.PlanLatencyByShard[key] = percentiles(samples)
		}
	}
	return &res, nil
}

// ScrapeMetrics fetches /v1/metrics and returns counter and histogram
// sample counts by name.
func ScrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/metrics: %s", resp.Status)
	}
	var ms []schedd.MetricJSON
	if err := json.NewDecoder(resp.Body).Decode(&ms); err != nil {
		return nil, err
	}
	out := make(map[string]int64, len(ms))
	for _, m := range ms {
		// A sharded router serves each family as a shard="all" rollup
		// plus per-shard series; only the rollup may land in the map, or
		// the last shard's value would shadow the total.
		if v, labeled := shardLabel(m.Labels); labeled && v != "all" {
			continue
		}
		out[m.Name] = m.Value
	}
	return out, nil
}

// shardLabel extracts the "shard" label when present.
func shardLabel(labels []obs.Label) (string, bool) {
	for _, l := range labels {
		if l.Key == "shard" {
			return l.Value, true
		}
	}
	return "", false
}

// FetchJob fetches one job's status.
func FetchJob(ctx context.Context, client *http.Client, baseURL string, id int) (*schedd.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/v1/jobs/%d", baseURL, id), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /v1/jobs/%d: %s", id, resp.Status)
	}
	var st schedd.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// String renders the result as a human-readable report.
func (r *Result) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "submissions     %d (accepted %d, 429 %d, other %d, transport %d)\n",
		r.Submitted, r.Accepted, r.Rejected429, r.RejectedOther, r.TransportErrors)
	if r.RejectedSLO > 0 || r.SLOMisses > 0 {
		fmt.Fprintf(&b, "slo             %d deadline rejections, %d admitted-then-missed\n",
			r.RejectedSLO, r.SLOMisses)
	}
	if r.AnytimeAdopted > 0 {
		fmt.Fprintf(&b, "anytime         %d incumbents adopted\n", r.AnytimeAdopted)
	}
	if r.Deduplicated > 0 || r.DuplicateIDs > 0 || r.MissingJobs > 0 {
		fmt.Fprintf(&b, "idempotency     %d dedup hits, %d newly accepted, %d duplicate IDs, %d missing jobs\n",
			r.Deduplicated, r.NewlyAccepted, r.DuplicateIDs, r.MissingJobs)
	}
	fmt.Fprintf(&b, "wall time       %.2fs (%.1f submissions/s)\n", r.WallSeconds, r.ThroughputRPS)
	fmt.Fprintf(&b, "end to end      %.2fs (%.1f planned/s)\n", r.TotalSeconds, r.EndToEndRPS)
	fmt.Fprintf(&b, "submit latency  p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		r.SubmitLatency.P50, r.SubmitLatency.P90, r.SubmitLatency.P99, r.SubmitLatency.Max)
	fmt.Fprintf(&b, "plan latency    p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		r.PlanLatency.P50, r.PlanLatency.P90, r.PlanLatency.P99, r.PlanLatency.Max)
	if len(r.PlanLatencyByShard) > 0 {
		keys := make([]string, 0, len(r.PlanLatencyByShard))
		for k := range r.PlanLatencyByShard {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			p := r.PlanLatencyByShard[k]
			fmt.Fprintf(&b, "  %-13s p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
				k, p.P50, p.P90, p.P99, p.Max)
		}
	}
	fmt.Fprintf(&b, "planned         %d of %d accepted (dropped %d)\n",
		r.Planned, r.Accepted, r.DroppedAccepted)
	fmt.Fprintf(&b, "replans         %d steps + %d completion replans in %d batches (%.1f/s, %d degraded)\n",
		r.Steps, r.Replans, r.Batches, r.ReplansPerSec, r.DegradedSteps)
	return b.String()
}

// Presolve for the time-indexed program: a reduction pass run between
// Build and Solve that shrinks the x_it grid before the LP ever sees it.
// Four reductions run to a fixpoint, each one provably keeping at least
// one optimal solution of the unreduced grid model:
//
//   - feasibility trimming: slot t is kept for job i only if the base
//     profile (minus presolve-fixed jobs) has width_i free nodes over the
//     whole window [t, t+dur_i). This relaxes away the other waiting jobs,
//     so it can only remove starts that no feasible solution uses.
//   - single-slot fixing: a job whose window collapses to one slot is
//     pinned there, removed from the program, its width subtracted from
//     the capacity profile and its Eq. 2 cost moved to an objective
//     offset. A negative capacity proves grid infeasibility.
//   - cost-bound trimming: a grid-feasible list schedule (of the caller's
//     seed orders and the canonical submit order) is a valid upper bound
//     UB on the grid optimum. Since cost(i,t) grows by scale*w_i per
//     slot, any solution that starts job i after
//     min_i + (UB - sum_j minCost_j) / (scale*w_i) costs more than UB
//     even if every other job starts at its earliest slot — those slots
//     are dropped. (A naive "trim to the heuristic makespan" is NOT
//     sound: the grid optimum can finish later than every policy
//     schedule — see the TestILPAgreesWithExact regression note in
//     CHANGES.md. The cost bound keeps every optimal solution and the
//     bounding solution itself.)
//   - dominance trimming: jobs with identical shape (width, scaled
//     duration, window) are interchangeable — swapping two of them
//     changes neither feasibility nor the Eq. 2 total — so some optimal
//     solution has their starts sorted in canonical (Submit, ID) order.
//     With at most Q = floor(maxcap/width) of them running concurrently,
//     the k-th member (0-based) of a g-member group cannot start before
//     min + floor(k/Q)*dur nor after max - floor((g-1-k)/Q)*dur in that
//     sorted solution. The surviving groups are recorded on the model so
//     IncumbentFromSchedule can canonicalize seed orders to match.
//
// The reduced model is materialized through the same arena builder as
// Build (see ilpsched.go), with capacity rows kept only where the
// trimmed windows can actually overload a slot.
package ilpsched

import (
	"fmt"
	"sort"

	"repro/internal/job"
	"repro/internal/schedule"
)

// PresolveOptions parameterizes BuildPresolved.
type PresolveOptions struct {
	// Seeds are candidate upper-bound schedules — typically the basic
	// policy schedules the simulator computed anyway, or the previous
	// step's compacted ILP schedule. Each seed's start order is
	// grid-list-scheduled inside the current windows and the best grid
	// objective becomes the cost bound for late-slot trimming. Seeds
	// never affect correctness, only reduction strength: a seed that
	// does not cover the instance or does not fit the grid is skipped,
	// and the canonical submit-order schedule is always tried.
	Seeds []*schedule.Schedule
}

// PresolveStats reports the reduction achieved by the presolve analysis.
// Entry counts are the same conservative estimate EstimateSize uses
// (one assignment entry plus dur capacity entries per variable), so the
// before/after pair is an apples-to-apples comparison.
type PresolveStats struct {
	VarsBefore, VarsAfter       int // binary x_it columns
	EntriesBefore, EntriesAfter int // structural nonzeros (estimate)
	RowsBefore, RowsAfter       int // materialized model rows
	JobsFixed                   int // jobs pinned and removed
	SlotsCut                    int // grid slots dropped from the tail
	Rounds                      int // fixpoint rounds run
}

// VarsRemoved returns the number of eliminated x_it columns.
func (s PresolveStats) VarsRemoved() int { return s.VarsBefore - s.VarsAfter }

// RowsRemoved returns the number of eliminated model rows.
func (s PresolveStats) RowsRemoved() int { return s.RowsBefore - s.RowsAfter }

// analysis is the mutable presolve state over the original job indices.
type analysis struct {
	inst  *Instance
	scale int64
	slots int
	jobs  []*job.Job // == inst.Jobs
	dur   []int
	min   []int // per-job window, trimmed in place
	max   []int
	// capacity is the per-slot free capacity minus the width of every
	// presolve-fixed job.
	capacity  []int
	fixedSlot []int // -1 = still modeled
	fixed     []schedule.Entry
	offset    float64
	// groupsOrig are the dominance groups in canonical order, as
	// original job indices (filtered to modeled indices at spec time).
	groupsOrig [][]int
	stats      PresolveStats
	spec       buildSpec
}

// analyze runs the full presolve fixpoint on the instance and returns
// the finished analysis, or an error wrapping ErrHorizonTooTight /
// ErrInfeasible when the grid instance provably has no schedule.
func analyze(inst *Instance, scale int64, opt PresolveOptions) (*analysis, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("ilpsched: time scale %d < 1", scale)
	}
	n := len(inst.Jobs)
	baseSlots := int((inst.MaxMakespan() + scale - 1) / scale)
	slots := baseSlots + horizonSlack(n)
	a := &analysis{
		inst: inst, scale: scale, slots: slots, jobs: inst.Jobs,
		dur: make([]int, n), min: make([]int, n), max: make([]int, n),
		capacity:  make([]int, slots),
		fixedSlot: make([]int, n),
	}
	for t := 0; t < slots; t++ {
		from := inst.Now + int64(t)*scale
		a.capacity[t] = inst.Base.MinFree(from, from+scale)
	}
	totalWidth := 0
	for i, jb := range inst.Jobs {
		a.fixedSlot[i] = -1
		a.dur[i] = int((jb.Estimate + scale - 1) / scale)
		min := 0
		if jb.Submit > inst.Now {
			min = int((jb.Submit - inst.Now + scale - 1) / scale)
		}
		max := slots - a.dur[i]
		if max < min {
			return nil, fmt.Errorf("%w: job %d does not fit the grid (slots=%d, dur=%d)",
				ErrHorizonTooTight, jb.ID, slots, a.dur[i])
		}
		a.min[i], a.max[i] = min, max
		totalWidth += jb.Width
	}
	// "Before" size: what Build would materialize on this instance.
	a.stats.RowsBefore = n
	for t := 0; t < slots; t++ {
		if a.capacity[t] < totalWidth {
			a.stats.RowsBefore++
		}
	}
	for i := range inst.Jobs {
		nv := a.max[i] - a.min[i] + 1
		a.stats.VarsBefore += nv
		a.stats.EntriesBefore += nv * (1 + a.dur[i])
	}

	if err := a.reduceToFixpoint(); err != nil {
		return nil, err
	}
	a.costBoundTrim(opt.Seeds)
	if err := a.reduceToFixpoint(); err != nil {
		return nil, err
	}
	if err := a.dominanceTrim(); err != nil {
		return nil, err
	}
	if err := a.reduceToFixpoint(); err != nil {
		return nil, err
	}
	a.finish()
	return a, nil
}

// reduceToFixpoint alternates feasibility trimming and single-slot
// fixing until neither changes anything.
func (a *analysis) reduceToFixpoint() error {
	for {
		a.stats.Rounds++
		changed := false
		for i := range a.jobs {
			if a.fixedSlot[i] >= 0 {
				continue
			}
			ch, err := a.feasTrim(i)
			if err != nil {
				return err
			}
			changed = changed || ch
		}
		for i := range a.jobs {
			if a.fixedSlot[i] < 0 && a.min[i] == a.max[i] {
				if err := a.fix(i, a.min[i]); err != nil {
					return err
				}
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
}

// feasTrim tightens job i's window edges to slots where the capacity
// profile can hold the job at all (ignoring the other waiting jobs — a
// relaxation, so only provably useless starts are removed). Interior
// capacity holes are left to the LP rows. Returns whether the window
// moved; an empty window proves grid infeasibility.
func (a *analysis) feasTrim(i int) (bool, error) {
	w, dur := a.jobs[i].Width, a.dur[i]
	lo, hi := a.min[i], a.max[i]
	// Front edge: jump past the latest blocking slot of each bad window.
	for lo <= hi {
		bad := -1
		for u := lo; u < lo+dur; u++ {
			if a.capacity[u] < w {
				bad = u // keep scanning: the last bad slot jumps furthest
			}
		}
		if bad < 0 {
			break
		}
		lo = bad + 1
	}
	if lo > hi {
		return false, fmt.Errorf("%w: job %d has no feasible start slot", ErrInfeasible, a.jobs[i].ID)
	}
	// Back edge: mirror image.
	for hi >= lo {
		bad := -1
		for u := hi; u < hi+dur; u++ {
			if a.capacity[u] < w {
				bad = u
				break // the first bad slot jumps furthest downward
			}
		}
		if bad < 0 {
			break
		}
		hi = bad - dur
	}
	changed := lo != a.min[i] || hi != a.max[i]
	a.min[i], a.max[i] = lo, hi
	return changed, nil
}

// fix pins job i at the given grid slot: the job leaves the program, its
// width leaves the capacity profile and its cost moves to the offset.
func (a *analysis) fix(i, slot int) error {
	jb := a.jobs[i]
	for u := slot; u < slot+a.dur[i]; u++ {
		a.capacity[u] -= jb.Width
		if a.capacity[u] < 0 {
			return fmt.Errorf("%w: fixed jobs overload slot %d", ErrInfeasible, u)
		}
	}
	a.fixedSlot[i] = slot
	a.fixed = append(a.fixed, schedule.Entry{Job: jb, Start: a.inst.Now + int64(slot)*a.scale})
	a.offset += float64(a.gridCost(i, slot))
	a.stats.JobsFixed++
	return nil
}

// gridCost is the integral Eq. 2 coefficient of job i starting at slot t
// (identical to the cost Build writes into the column).
func (a *analysis) gridCost(i, t int) int64 {
	jb := a.jobs[i]
	start := a.inst.Now + int64(t)*a.scale
	return (start - jb.Submit + jb.Estimate) * int64(jb.Width)
}

// unfixedIdx returns the still-modeled original job indices.
func (a *analysis) unfixedIdx() []int {
	out := make([]int, 0, len(a.jobs))
	for i := range a.jobs {
		if a.fixedSlot[i] < 0 {
			out = append(out, i)
		}
	}
	return out
}

// costBoundTrim computes a grid-feasible upper bound UB on the optimum
// of the remaining program and drops every start slot whose cost alone
// pushes the objective past UB. With minCost_i = cost(i, min_i) and
// slack = UB - sum_i minCost_i, slot t survives for job i iff
// (t - min_i) * scale * w_i <= slack; the UB solution itself satisfies
// this (its per-job excursions sum to exactly slack), so the reduced
// program stays feasible whenever the original is.
func (a *analysis) costBoundTrim(seeds []*schedule.Schedule) {
	unfixed := a.unfixedIdx()
	if len(unfixed) == 0 {
		return
	}
	best := int64(-1)
	try := func(order []int) {
		if obj, ok := a.listObjective(order); ok && (best < 0 || obj < best) {
			best = obj
		}
	}
	canonical := append([]int(nil), unfixed...)
	sort.Slice(canonical, func(x, y int) bool {
		ji, jj := a.jobs[canonical[x]], a.jobs[canonical[y]]
		if ji.Submit != jj.Submit {
			return ji.Submit < jj.Submit
		}
		return ji.ID < jj.ID
	})
	try(canonical)
	for _, s := range seeds {
		if order, ok := a.orderFromSchedule(s, unfixed); ok {
			try(order)
		}
	}
	if best < 0 {
		return // no seed fit the grid: skip the trim, stay safe
	}
	var minSum int64
	for _, i := range unfixed {
		minSum += a.gridCost(i, a.min[i])
	}
	slack := best - minSum
	if slack < 0 {
		slack = 0 // cannot happen: every placement is at or after min
	}
	for _, i := range unfixed {
		step := a.scale * int64(a.jobs[i].Width)
		tmax := a.min[i] + int(slack/step)
		if tmax < a.max[i] {
			a.max[i] = tmax
		}
	}
}

// listObjective grid-list-schedules the given original job indices in
// order (earliest feasible slot within each job's current window,
// against the current capacity profile) and returns the summed grid
// cost, or ok=false when some job does not fit.
func (a *analysis) listObjective(order []int) (int64, bool) {
	capLeft := append([]int(nil), a.capacity...)
	var total int64
	for _, i := range order {
		w, dur := a.jobs[i].Width, a.dur[i]
		placed := false
		for t := a.min[i]; t <= a.max[i]; t++ {
			fits := true
			for u := t; u < t+dur; u++ {
				if capLeft[u] < w {
					fits = false
					break
				}
			}
			if fits {
				for u := t; u < t+dur; u++ {
					capLeft[u] -= w
				}
				total += a.gridCost(i, t)
				placed = true
				break
			}
		}
		if !placed {
			return 0, false
		}
	}
	return total, true
}

// orderFromSchedule extracts the start order of the unfixed jobs from a
// seed schedule. The seed must cover every unfixed job exactly once
// (entries of fixed jobs are ignored, unknown jobs invalidate the seed).
func (a *analysis) orderFromSchedule(s *schedule.Schedule, unfixed []int) ([]int, bool) {
	if s == nil {
		return nil, false
	}
	idx := make(map[int]int, len(a.jobs))
	for _, i := range unfixed {
		idx[a.jobs[i].ID] = i
	}
	c := s.Clone()
	c.SortByStart()
	order := make([]int, 0, len(unfixed))
	seen := make(map[int]bool, len(unfixed))
	for _, e := range c.Entries {
		i, ok := idx[e.Job.ID]
		if !ok {
			continue // fixed or foreign job: not part of the program
		}
		if seen[i] {
			return nil, false
		}
		seen[i] = true
		order = append(order, i)
	}
	if len(order) != len(unfixed) {
		return nil, false
	}
	return order, true
}

// dominanceTrim groups identical-shape jobs and narrows each member's
// window to the slots its rank can occupy in the canonically sorted
// optimal solution (see the package comment for the exchange argument).
func (a *analysis) dominanceTrim() error {
	type shape struct{ w, d, lo, hi int }
	byShape := make(map[shape][]int)
	for _, i := range a.unfixedIdx() {
		k := shape{a.jobs[i].Width, a.dur[i], a.min[i], a.max[i]}
		byShape[k] = append(byShape[k], i)
	}
	// Deterministic group order for reproducible models.
	shapes := make([]shape, 0, len(byShape))
	for k, members := range byShape {
		if len(members) >= 2 {
			shapes = append(shapes, k)
		}
	}
	sort.Slice(shapes, func(x, y int) bool {
		kx, ky := shapes[x], shapes[y]
		if kx.lo != ky.lo {
			return kx.lo < ky.lo
		}
		if kx.hi != ky.hi {
			return kx.hi < ky.hi
		}
		if kx.w != ky.w {
			return kx.w < ky.w
		}
		return kx.d < ky.d
	})
	for _, k := range shapes {
		members := byShape[k]
		sort.Slice(members, func(x, y int) bool {
			ji, jj := a.jobs[members[x]], a.jobs[members[y]]
			if ji.Submit != jj.Submit {
				return ji.Submit < jj.Submit
			}
			return ji.ID < jj.ID
		})
		maxCap := 0
		for u := k.lo; u < k.hi+k.d && u < a.slots; u++ {
			if a.capacity[u] > maxCap {
				maxCap = a.capacity[u]
			}
		}
		q := maxCap / k.w
		if q < 1 {
			q = 1 // feasTrim guarantees some slot fits; defensive only
		}
		g := len(members)
		for pos, i := range members {
			if lo := k.lo + (pos/q)*k.d; lo > a.min[i] {
				a.min[i] = lo
			}
			if hi := k.hi - ((g-1-pos)/q)*k.d; hi < a.max[i] {
				a.max[i] = hi
			}
			if a.min[i] > a.max[i] {
				return fmt.Errorf("%w: dominance group of job %d does not fit the grid",
					ErrInfeasible, a.jobs[i].ID)
			}
		}
		a.groupsOrig = append(a.groupsOrig, members)
	}
	return nil
}

// finish trims the grid tail, assembles the reduced buildSpec and the
// "after" size stats.
func (a *analysis) finish() {
	unfixed := a.unfixedIdx()
	newSlots := 1
	for _, i := range unfixed {
		if end := a.max[i] + a.dur[i]; end > newSlots {
			newSlots = end
		}
	}
	if newSlots > a.slots {
		newSlots = a.slots
	}
	a.stats.SlotsCut = a.slots - newSlots
	a.slots = newSlots

	n := len(unfixed)
	spec := buildSpec{
		inst: a.inst, scale: a.scale, slots: newSlots,
		jobs: make([]*job.Job, n),
		min:  make([]int, n), max: make([]int, n), dur: make([]int, n),
		capacity:  a.capacity[:newSlots],
		coverRows: true,
		fixed:     a.fixed,
		offset:    a.offset,
	}
	modeledOf := make(map[int]int, n) // original index -> modeled index
	for mi, i := range unfixed {
		spec.jobs[mi] = a.jobs[i]
		spec.min[mi], spec.max[mi], spec.dur[mi] = a.min[i], a.max[i], a.dur[i]
		modeledOf[i] = mi
	}
	for _, members := range a.groupsOrig {
		group := make([]int, 0, len(members))
		for _, i := range members {
			if mi, ok := modeledOf[i]; ok {
				group = append(group, mi)
			}
		}
		if len(group) >= 2 {
			spec.groups = append(spec.groups, group)
		}
	}
	a.spec = spec

	for mi := range spec.jobs {
		nv := spec.max[mi] - spec.min[mi] + 1
		a.stats.VarsAfter += nv
		a.stats.EntriesAfter += nv * (1 + spec.dur[mi])
	}
	a.stats.RowsAfter = n
	for _, b := range rowBindable(spec) {
		if b {
			a.stats.RowsAfter++
		}
	}
}

// BuildPresolved runs the presolve analysis and materializes the reduced
// model. The returned model solves to the same full-instance objective
// as Build's (Solution.Objective / Solution.Grid include the fixed jobs)
// — presolve only removes provably useless or dominated start slots.
func BuildPresolved(inst *Instance, scale int64, opt PresolveOptions) (*Model, *PresolveStats, error) {
	a, err := analyze(inst, scale, opt)
	if err != nil {
		return nil, nil, err
	}
	m := materialize(a.spec)
	st := a.stats
	return m, &st, nil
}

// EstimatePresolvedSize predicts the reduced model size without
// materializing it: the analysis runs (cheap — no matrix allocation),
// and the post-reduction variable/entry counts are returned. This is the
// size BuildPresolvedGuarded guards against, so ErrModelTooLarge no
// longer rejects instances that presolve makes tractable.
func EstimatePresolvedSize(inst *Instance, scale int64, opt PresolveOptions) (vars, entries int, err error) {
	a, err := analyze(inst, scale, opt)
	if err != nil {
		return 0, 0, err
	}
	return a.stats.VarsAfter, a.stats.EntriesAfter, nil
}

// BuildPresolvedGuarded is BuildPresolved behind the SizeLimit guard.
// Unlike BuildGuarded, the guard applies to the *reduced* size — the
// analysis itself is O(jobs × slots) with no matrix allocation, so it is
// always safe to run.
func BuildPresolvedGuarded(inst *Instance, scale int64, lim SizeLimit, opt PresolveOptions) (*Model, *PresolveStats, error) {
	a, err := analyze(inst, scale, opt)
	if err != nil {
		return nil, nil, err
	}
	if (lim.MaxVariables > 0 && a.stats.VarsAfter > lim.MaxVariables) ||
		(lim.MaxMatrixEntries > 0 && a.stats.EntriesAfter > lim.MaxMatrixEntries) {
		return nil, nil, &ModelTooLargeError{
			Scale: scale, Variables: a.stats.VarsAfter, MatrixEntries: a.stats.EntriesAfter,
			MaxVariables: lim.MaxVariables, MaxEntries: lim.MaxMatrixEntries,
		}
	}
	m := materialize(a.spec)
	st := a.stats
	return m, &st, nil
}

// PostsolveX lifts a presolved model's 0/1 start vector into the column
// layout of this (unreduced) model of the same instance and scale:
// modeled jobs keep their chosen slots, fixed jobs contribute their
// pinned slots. The result is a feasible vector of the full model with
// the same Eq. 2 objective — the postsolve map of the reduction.
func (m *Model) PostsolveX(red *Model, x []float64) ([]float64, error) {
	if red.Scale != m.Scale {
		return nil, fmt.Errorf("ilpsched: postsolve scale mismatch (%d vs %d)", red.Scale, m.Scale)
	}
	idx := make(map[int]int, len(m.jobs))
	for i, jb := range m.jobs {
		idx[jb.ID] = i
	}
	out := make([]float64, m.prob.NumVariables())
	place := func(id, slot int) error {
		i, ok := idx[id]
		if !ok {
			return fmt.Errorf("ilpsched: postsolve job %d not in target model", id)
		}
		if slot < m.minSlot[i] || slot > m.maxSlot[i] {
			return fmt.Errorf("ilpsched: postsolve slot %d outside job %d window [%d,%d]",
				slot, id, m.minSlot[i], m.maxSlot[i])
		}
		out[m.col(i, slot)] = 1
		return nil
	}
	for _, e := range red.fixed {
		slot := int((e.Start - m.Inst.Now) / m.Scale)
		if err := place(e.Job.ID, slot); err != nil {
			return nil, err
		}
	}
	for i, jb := range red.jobs {
		found := false
		for t := red.minSlot[i]; t <= red.maxSlot[i]; t++ {
			if x[red.col(i, t)] > 0.5 {
				if err := place(jb.ID, t); err != nil {
					return nil, err
				}
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("ilpsched: postsolve job %d unassigned", jb.ID)
		}
	}
	return out, nil
}

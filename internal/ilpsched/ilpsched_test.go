package ilpsched

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/lp"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/stats"
)

func jb(id int, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func inst(m int, now int64, horizon int64, jobs ...*job.Job) *Instance {
	return &Instance{
		Now: now, Machine: m, Base: machine.New(m, now),
		Jobs: jobs, Horizon: horizon,
	}
}

func TestInstanceValidate(t *testing.T) {
	ok := inst(4, 0, 1000, jb(1, 0, 2, 100))
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Instance){
		func(i *Instance) { i.Machine = 0 },
		func(i *Instance) { i.Base = nil },
		func(i *Instance) { i.Base = machine.New(8, 0) }, // size mismatch
		func(i *Instance) { i.Jobs = nil },
		func(i *Instance) { i.Horizon = 0 },
		func(i *Instance) { i.Jobs = []*job.Job{jb(1, 0, 9, 100)} },  // too wide
		func(i *Instance) { i.Jobs = []*job.Job{jb(1, 0, 2, 2000)} }, // beyond horizon
	}
	for k, mut := range cases {
		bad := inst(4, 0, 1000, jb(1, 0, 2, 100))
		mut(bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("case %d accepted", k)
		}
	}
}

func TestTimeScaleEq6(t *testing.T) {
	// Table-1-sized instance: makespan ~85559 s, acc runtime ~1.8e6 s.
	// sqrt(85559 * 1.8e6 * 102.4 / 2GiB) = sqrt(7343) ~ 86 s -> 120 s.
	i := inst(430, 0, 85559, jb(1, 0, 4, 100))
	i.Jobs[0].Estimate = 1800000 // forces acc runtime; bypass Validate
	s := DefaultScaling()
	s.SlotCap = 0 // pure Eq. 6
	got := s.TimeScale(i)
	if got != 120 {
		t.Fatalf("TimeScale = %d, want 120", got)
	}
	// With the default slot cap of 360 the same instance needs a coarser
	// grid: ceil(85559/360) = 238 -> 240 s.
	if got := DefaultScaling().TimeScale(i); got != 240 {
		t.Fatalf("slot-capped TimeScale = %d, want 240", got)
	}
}

func TestTimeScaleRounding(t *testing.T) {
	i := inst(4, 0, 1000, jb(1, 0, 2, 100))
	s := DefaultScaling()
	// Tiny instance: raw scale << 60 -> rounded up to 60.
	if got := s.TimeScale(i); got != 60 {
		t.Fatalf("TimeScale = %d, want 60", got)
	}
	// Without rounding or a slot cap, a tiny instance scales to 1 second.
	s.RoundTo = 1
	s.SlotCap = 0
	if got := s.TimeScale(i); got != 1 {
		t.Fatalf("unrounded TimeScale = %d, want 1", got)
	}
	// The slot cap alone coarsens it: 1000 s / 360 slots -> 3 s.
	s.SlotCap = 360
	if got := s.TimeScale(i); got != 3 {
		t.Fatalf("slot-capped TimeScale = %d, want 3", got)
	}
	// Larger memory -> finer scale (monotonicity).
	big := DefaultScaling()
	big.MemoryBytes *= 100
	iBig := inst(430, 0, 85559, jb(1, 0, 4, 100))
	iBig.Jobs[0].Estimate = 1800000
	if big.TimeScale(iBig) > DefaultScaling().TimeScale(iBig) {
		t.Fatal("more memory should not coarsen the scale")
	}
}

func TestBuildStructure(t *testing.T) {
	// 2 jobs, scale 10, horizon 100 -> 10 base slots + 3 slack.
	i := inst(4, 0, 100, jb(1, 0, 2, 25), jb(2, 0, 4, 30))
	m, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Slots != 13 {
		t.Fatalf("slots = %d, want 13", m.Slots)
	}
	// Job 1: dur 3 slots, starts 0..10 -> 11 vars; job 2: dur 3, 11 vars.
	if m.NumVariables() != 22 {
		t.Fatalf("vars = %d, want 22", m.NumVariables())
	}
	// Rows: 13 capacity + 2 assignment.
	if m.NumConstraints() != 15 {
		t.Fatalf("rows = %d, want 15", m.NumConstraints())
	}
	if m.MatrixEntries() == 0 {
		t.Fatal("no matrix entries")
	}
}

func TestBuildCapacitiesFromHistory(t *testing.T) {
	base := machine.New(4, 0)
	if err := base.Reserve(0, 35, 3); err != nil { // running job until 35
		t.Fatal(err)
	}
	i := &Instance{Now: 0, Machine: 4, Base: base, Horizon: 100,
		Jobs: []*job.Job{jb(1, 0, 1, 10)}}
	m, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Slots 0..2 fully inside the reservation: capacity 1. Slot 3 covers
	// [30,40): the minimum free inside is still 1 (conservative). Slot 4+: 4.
	want := []int{1, 1, 1, 1, 4}
	for k, w := range want {
		if m.capacity[k] != w {
			t.Fatalf("capacity[%d] = %d, want %d", k, m.capacity[k], w)
		}
	}
}

func TestSolveTinyOptimal(t *testing.T) {
	// M=2: A(w=2,d=10), B(w=1,d=100), C(w=1,d=100). ARTwW-optimal: A
	// first (obj 10*2 + 110 + 110 = 240), not B||C first (100+100+220=420).
	i := inst(2, 0, 250,
		jb(1, 0, 2, 10), jb(2, 0, 1, 100), jb(3, 0, 1, 100))
	m, err := Build(i, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mip.Options{MaxNodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MIP.Status != mip.Optimal {
		t.Fatalf("status = %v", sol.MIP.Status)
	}
	if math.Abs(sol.MIP.Objective-240) > 1e-6 {
		t.Fatalf("objective = %g, want 240", sol.MIP.Objective)
	}
	if e := sol.Compacted.Find(1); e.Start != 0 {
		t.Fatalf("job 1 start %d, want 0", e.Start)
	}
	if err := sol.Compacted.Validate(i.Base); err != nil {
		t.Fatal(err)
	}
	// Objective of the compacted schedule matches the MIP objective at
	// scale 1 (no grid slack to repair).
	if got := ObjectiveOfSchedule(sol.Compacted); math.Abs(got-240) > 1e-9 {
		t.Fatalf("compacted objective %g, want 240", got)
	}
}

func TestCompactionRepairsGridSlack(t *testing.T) {
	// Coarse scale forces grid starts; compaction must pull jobs forward
	// so that no artificial idle time remains.
	i := inst(2, 0, 300, jb(1, 0, 2, 25), jb(2, 0, 2, 25))
	m, err := Build(i, 60)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mip.Options{MaxNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MIP.Status != mip.Optimal {
		t.Fatalf("status = %v", sol.MIP.Status)
	}
	// Grid schedule: one job at slot 0, the other at slot 1 (start 60).
	// Compacted: 0 and 25.
	starts := []int64{sol.Compacted.Find(1).Start, sol.Compacted.Find(2).Start}
	if !(starts[0] == 0 && starts[1] == 25 || starts[0] == 25 && starts[1] == 0) {
		t.Fatalf("compacted starts %v, want {0, 25}", starts)
	}
	grid := []int64{sol.Grid.Find(1).Start, sol.Grid.Find(2).Start}
	if !(grid[0] == 0 && grid[1] == 60 || grid[0] == 60 && grid[1] == 0) {
		t.Fatalf("grid starts %v, want {0, 60}", grid)
	}
}

func TestIncumbentFromSchedule(t *testing.T) {
	i := inst(4, 0, 500, jb(1, 0, 2, 100), jb(2, 0, 4, 50), jb(3, 0, 1, 200))
	m, err := Build(i, 30)
	if err != nil {
		t.Fatal(err)
	}
	sch, err := policy.Build(policy.SJF{}, 0, i.Base, i.Jobs)
	if err != nil {
		t.Fatal(err)
	}
	x, err := m.IncumbentFromSchedule(sch)
	if err != nil {
		t.Fatal(err)
	}
	// The vector must be usable as a MIP incumbent.
	sol, err := m.Solve(mip.Options{MaxNodes: 500, Incumbent: x})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MIP.Status != mip.Optimal && sol.MIP.Status != mip.Feasible {
		t.Fatalf("status = %v", sol.MIP.Status)
	}
	// Wrong job set is rejected.
	other := &schedule.Schedule{Now: 0, Machine: 4,
		Entries: []schedule.Entry{{Job: jb(99, 0, 1, 10), Start: 0}}}
	if _, err := m.IncumbentFromSchedule(other); err == nil {
		t.Fatal("foreign schedule accepted")
	}
}

func TestSubmitAfterNowRestrictsSlots(t *testing.T) {
	i := inst(4, 0, 400, jb(1, 0, 2, 50), jb(2, 95, 2, 50))
	m, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mip.Options{MaxNodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MIP.Status != mip.Optimal {
		t.Fatalf("status = %v", sol.MIP.Status)
	}
	// Job 2 must not start before its submission (95 -> slot 10 = 100).
	if s := sol.Grid.Find(2).Start; s < 100 {
		t.Fatalf("job 2 grid start %d before submission", s)
	}
	if s := sol.Compacted.Find(2).Start; s < 95 {
		t.Fatalf("job 2 compacted start %d before submission", s)
	}
}

func TestWriteLP(t *testing.T) {
	i := inst(2, 0, 100, jb(1, 0, 1, 20), jb(2, 0, 2, 30))
	m, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.WriteLP(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Minimize", "Subject To", "assign_1", "assign_2", "cap_0", "Binaries", "End"} {
		if !strings.Contains(out, want) {
			t.Fatalf("LP output missing %q:\n%s", want, out)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	i := inst(4, 0, 100, jb(1, 0, 2, 50))
	if _, err := Build(i, 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	bad := inst(4, 0, 100, jb(1, 0, 2, 50))
	bad.Jobs = nil
	if _, err := Build(bad, 10); err == nil {
		t.Fatal("invalid instance accepted")
	}
}

// Property (the paper's central premise): at scale 1 the ILP optimum is
// at least as good as the best basic policy on the ARTwW objective, and
// the compacted schedule is always feasible.
func TestILPBeatsPoliciesAtScaleOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		mSize := r.Intn(4) + 2
		base := machine.New(mSize, 0)
		if r.Intn(2) == 0 {
			base.Reserve(0, int64(r.Intn(40)+1), r.Intn(mSize)+1)
		}
		n := r.Intn(3) + 2
		jobs := make([]*job.Job, n)
		for k := 0; k < n; k++ {
			jobs[k] = jb(k+1, 0, r.Intn(mSize)+1, int64(r.Intn(40)+5))
		}
		// Horizon: worst policy makespan.
		var horizon int64
		best := math.Inf(1)
		for _, p := range policy.Standard() {
			s, err := policy.Build(p, 0, base, jobs)
			if err != nil {
				return false
			}
			if mk := s.Makespan(); mk > horizon {
				horizon = mk
			}
			if o := ObjectiveOfSchedule(s); o < best {
				best = o
			}
		}
		i := &Instance{Now: 0, Machine: mSize, Base: base, Jobs: jobs, Horizon: horizon}
		m, err := Build(i, 1)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		sol, err := m.Solve(mip.Options{MaxNodes: 3000})
		if err != nil || sol.MIP.Status != mip.Optimal {
			t.Logf("seed %d: solve: %v %v", seed, sol, err)
			return false
		}
		if sol.Compacted.Validate(base) != nil {
			return false
		}
		// Optimal <= best policy (+tolerance).
		if sol.MIP.Objective > best+1e-6 {
			t.Logf("seed %d: ILP %g worse than policy %g", seed, sol.MIP.Objective, best)
			return false
		}
		// Compaction never hurts the grid objective.
		if ObjectiveOfSchedule(sol.Compacted) > ObjectiveOfSchedule(sol.Grid)+1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildAndSolve8Jobs(b *testing.B) {
	r := stats.NewRand(77)
	base := machine.New(64, 0)
	jobs := make([]*job.Job, 8)
	for k := range jobs {
		jobs[k] = jb(k+1, 0, r.Intn(32)+1, int64(r.Intn(3000)+300))
	}
	var horizon int64
	for _, p := range policy.Standard() {
		s, _ := policy.Build(p, 0, base, jobs)
		if mk := s.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	i := &Instance{Now: 0, Machine: 64, Base: base, Jobs: jobs, Horizon: horizon}
	b.ResetTimer()
	for k := 0; k < b.N; k++ {
		m, err := Build(i, 60)
		if err != nil {
			b.Fatal(err)
		}
		sol, err := m.Solve(mip.Options{MaxNodes: 200})
		if err != nil {
			b.Fatal(err)
		}
		if sol.MIP.Status != mip.Optimal && sol.MIP.Status != mip.Feasible {
			b.Fatalf("status %v", sol.MIP.Status)
		}
	}
}

// Round trip: the LP file WriteLP emits must parse back (lp.ReadLP) into
// a model whose MIP optimum matches solving the model directly — a full
// cross-check of the exporter.
func TestWriteLPRoundTripSolve(t *testing.T) {
	base := machine.New(4, 0)
	base.Reserve(0, 45, 2)
	i := &Instance{Now: 0, Machine: 4, Base: base, Horizon: 400,
		Jobs: []*job.Job{jb(1, 0, 2, 90), jb(2, 0, 4, 60), jb(3, 0, 1, 120)}}
	m, err := Build(i, 15)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := m.Solve(mip.Options{MaxNodes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.MIP.Status != mip.Optimal {
		t.Fatalf("direct solve: %v", sol.MIP.Status)
	}

	var buf strings.Builder
	if err := m.WriteLP(&buf); err != nil {
		t.Fatal(err)
	}
	p, ints, err := lp.ReadLP(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(ints) != m.NumVariables() {
		t.Fatalf("parsed %d integer columns, want %d", len(ints), m.NumVariables())
	}
	res, err := mip.Solve(p, ints, mip.Options{MaxNodes: 50000, IntegralObjective: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != mip.Optimal {
		t.Fatalf("round-trip solve: %v", res.Status)
	}
	if math.Abs(res.Objective-sol.MIP.Objective) > 1e-6 {
		t.Fatalf("round-trip objective %g, direct %g", res.Objective, sol.MIP.Objective)
	}
}

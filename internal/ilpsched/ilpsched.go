// Package ilpsched builds and solves the paper's time-indexed integer
// program for one self-tuning step (the quasi off-line scheduling problem),
// following van den Akker et al. [17] as §3.1 prescribes:
//
//	variables    x_it = 1 iff job i starts at time t            (Eq. 1)
//	minimize     sum_{i,t} x_it (t - s_i + d_i) w_i             (Eq. 2, ARTwW)
//	subject to   sum_t x_it = 1                   for every i   (Eq. 3)
//	             sum_i sum_{t-d_i < j <= t} x_ij w_i <= M_t     (Eq. 4)
//	             x_it binary                                    (Eq. 5)
//
// where M_t is the machine capacity reduced by the machine history of the
// already-running jobs. Because a one-second grid needs too much memory,
// the model is built on a time-scaled grid (§3.2, Eq. 6) and the solved
// start order is compacted ("each job is placed as soon as possible")
// before it is compared against the basic policies.
package ilpsched

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/job"
	"repro/internal/lp"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/schedule"
)

// Sentinel errors of the build/solve pipeline, matched with errors.Is.
// The typed errors below carry the diagnostic detail.
var (
	// ErrModelTooLarge: the pre-build size guard rejected the grid.
	ErrModelTooLarge = errors.New("ilpsched: model exceeds the size guard")
	// ErrHorizonTooTight: a job cannot complete before the horizon (the
	// instance is infeasible on any grid of this horizon).
	ErrHorizonTooTight = errors.New("ilpsched: horizon too tight")
	// ErrNoSchedule: branch and bound finished without a feasible
	// schedule (covers both proven infeasibility and exhausted limits).
	ErrNoSchedule = errors.New("ilpsched: no schedule found")
	// ErrInfeasible: the grid instance is proven infeasible (a strict
	// subset of ErrNoSchedule).
	ErrInfeasible = errors.New("ilpsched: grid instance infeasible")
)

// ModelTooLargeError reports the estimated model size that tripped the
// guard. errors.Is(err, ErrModelTooLarge) matches it.
type ModelTooLargeError struct {
	Scale         int64
	Variables     int // estimated binary columns
	MatrixEntries int // estimated structural nonzeros
	MaxVariables  int // the limit that tripped (0 = not this one)
	MaxEntries    int
}

func (e *ModelTooLargeError) Error() string {
	return fmt.Sprintf("ilpsched: model too large at scale %d: ~%d variables, ~%d matrix entries (limits %d vars, %d entries)",
		e.Scale, e.Variables, e.MatrixEntries, e.MaxVariables, e.MaxEntries)
}

// Is makes errors.Is(err, ErrModelTooLarge) match.
func (e *ModelTooLargeError) Is(target error) bool { return target == ErrModelTooLarge }

// NoScheduleError reports a branch-and-bound run that ended without a
// feasible schedule. errors.Is matches ErrNoSchedule always and
// ErrInfeasible when the status is a proven infeasibility. Result carries
// the full solver telemetry (nil for injected faults in tests).
type NoScheduleError struct {
	Status mip.Status
	Result *mip.Result
}

func (e *NoScheduleError) Error() string {
	if e.Result != nil && e.Result.DeadlineHit {
		return fmt.Sprintf("ilpsched: no schedule found (%v, deadline hit)", e.Status)
	}
	return fmt.Sprintf("ilpsched: no schedule found (%v)", e.Status)
}

// Is makes errors.Is match ErrNoSchedule (always) and ErrInfeasible
// (proven infeasibility only).
func (e *NoScheduleError) Is(target error) bool {
	return target == ErrNoSchedule || (target == ErrInfeasible && e.Status == mip.Infeasible)
}

// DeadlineHit reports whether the run stopped on its time budget.
func (e *NoScheduleError) DeadlineHit() bool {
	return e.Result != nil && e.Result.DeadlineHit
}

// Instance is one quasi off-line scheduling problem: the waiting jobs of a
// self-tuning step plus the machine history at that instant.
type Instance struct {
	// Now is the step instant.
	Now int64
	// Machine is the total processor count M.
	Machine int
	// Base is the free-capacity profile of the running jobs.
	Base *machine.Profile
	// Jobs are the waiting jobs, each with Submit <= Now allowed to start
	// from Now on (later submitters from Now or their submission).
	Jobs []*job.Job
	// Horizon is the maximum possible end of the schedule, "usually ...
	// the maximum makespan of the three [policy] schedules" (absolute
	// time). Jobs must fit entirely before the (slack-extended) horizon.
	Horizon int64
}

// Validate checks the instance.
func (inst *Instance) Validate() error {
	if inst.Machine < 1 {
		return fmt.Errorf("ilpsched: machine size %d", inst.Machine)
	}
	if inst.Base == nil {
		return fmt.Errorf("ilpsched: nil base profile")
	}
	if inst.Base.Total() != inst.Machine {
		return fmt.Errorf("ilpsched: profile machine %d != %d", inst.Base.Total(), inst.Machine)
	}
	if len(inst.Jobs) == 0 {
		return fmt.Errorf("ilpsched: no jobs")
	}
	if inst.Horizon <= inst.Now {
		return fmt.Errorf("ilpsched: horizon %d not after now %d", inst.Horizon, inst.Now)
	}
	for _, j := range inst.Jobs {
		if j.Width > inst.Machine {
			return fmt.Errorf("ilpsched: %v wider than machine", j)
		}
		if inst.Now+j.Estimate > inst.Horizon && j.Submit <= inst.Now {
			return fmt.Errorf("%w: job %d cannot finish before %d", ErrHorizonTooTight, j.ID, inst.Horizon)
		}
	}
	return nil
}

// AccumulatedRuntime is the Eq. 6 input: the summed estimated durations.
func (inst *Instance) AccumulatedRuntime() int64 {
	return job.AccumulatedRuntime(inst.Jobs)
}

// MaxMakespan is the Eq. 6 input: horizon minus now.
func (inst *Instance) MaxMakespan() int64 { return inst.Horizon - inst.Now }

// Scaling is the paper's Eq. 6 memory model for choosing a time scale.
type Scaling struct {
	// BytesPerEntry is x, the memory per matrix entry; "good values for x
	// are 0.1 kB" (102.4 bytes).
	BytesPerEntry float64
	// MemoryBytes is the memory available for the matrix. The paper uses
	// an 8 GB machine and keeps the problem "about four times smaller
	// than the total memory available", i.e. 2 GiB.
	MemoryBytes float64
	// RoundTo rounds the scale up to this granularity ("rounded up to
	// the next 60 seconds").
	RoundTo int64
	// SlotCap additionally bounds the number of grid slots (0 = no cap).
	// The paper's Eq. 6 models the 2004 machine's memory; the analogous
	// budget for this solver is the simplex basis size, which grows with
	// the slot count.
	SlotCap int
}

// DefaultScaling returns the paper's configuration.
func DefaultScaling() Scaling {
	return Scaling{
		BytesPerEntry: 102.4,
		MemoryBytes:   8 * float64(1<<30) / 4,
		RoundTo:       60,
		SlotCap:       360,
	}
}

// TimeScale computes Eq. 6 for the instance:
//
//	time-scale = sqrt(max-makespan * acc-runtime * x / memory)
//
// rounded up to the RoundTo granularity with a minimum of one second.
// (The paper's printed formula lost the square root its own derivation
// implies — the matrix size scales with 1/scale²; see DESIGN.md.)
func (s Scaling) TimeScale(inst *Instance) int64 {
	raw := math.Sqrt(float64(inst.MaxMakespan()) * float64(inst.AccumulatedRuntime()) *
		s.BytesPerEntry / s.MemoryBytes)
	if s.SlotCap > 0 {
		if bySlots := float64(inst.MaxMakespan()) / float64(s.SlotCap); bySlots > raw {
			raw = bySlots
		}
	}
	scale := int64(math.Ceil(raw))
	if s.RoundTo > 1 {
		if rem := scale % s.RoundTo; rem != 0 || scale == 0 {
			scale += s.RoundTo - rem
		}
	}
	if scale < 1 {
		scale = 1
	}
	return scale
}

// Model is the scaled time-indexed integer program of an instance. A
// model built by Build carries every waiting job; a model built by
// BuildPresolved may carry only a subset (the presolve pass pins jobs
// whose start window collapses to a single slot and removes them from
// the program entirely — see presolve.go).
type Model struct {
	Inst  *Instance
	Scale int64 // seconds per grid slot
	Slots int   // number of start slots

	// jobs are the modeled jobs (== Inst.Jobs unless presolved); all
	// per-job arrays below are indexed by position in this slice.
	jobs []*job.Job
	// fixed are the presolve-pinned jobs with their grid start times;
	// offset is their Eq. 2 objective contribution, which the MIP
	// objective of the reduced program no longer sees.
	fixed  []schedule.Entry
	offset float64
	// groups are the presolve dominance groups (modeled-job indices in
	// canonical order); IncumbentFromSchedule reorders seed schedules
	// within each group so they respect the symmetry-trimmed windows.
	groups [][]int

	prob    *lp.Problem
	intCols []int
	// varOf[i] maps job index i's slot offset to its column:
	// column = varOf[i] + (slot - minSlot[i]).
	varOf    []int
	minSlot  []int
	maxSlot  []int
	slotDur  []int // ceil-scaled duration per job
	capacity []int // per-slot capacity M_t
	capRow   []int // row index per slot
}

// horizonSlack is the extra grid room granted beyond the scaled horizon so
// that ceil-scaled durations cannot make the policy-feasible instance
// grid-infeasible (each job's rounding adds strictly less than one slot).
func horizonSlack(n int) int { return n + 1 }

// SizeLimit is the pre-build model-size guard: building is refused with a
// *ModelTooLargeError when the estimated size exceeds either bound (0
// disables that bound). Eq. 6 keeps typical instances within memory, but
// a pathological step (huge queue, tight grid) could still build a model
// that exhausts memory mid-allocation — the guard converts that crash
// into a typed, retryable error.
type SizeLimit struct {
	MaxVariables     int
	MaxMatrixEntries int
}

// EstimateSize predicts the model size of Build(inst, scale) without
// allocating it: the number of binary x_it columns and an upper bound on
// the structural nonzeros (each column hits one assignment row plus at
// most slotDur capacity rows; capacity rows that can never bind are not
// materialized, so the entry estimate is conservative). The instant
// closed-form walk is O(jobs).
func EstimateSize(inst *Instance, scale int64) (vars, entries int) {
	if scale < 1 {
		return 0, 0
	}
	n := len(inst.Jobs)
	baseSlots := int((inst.MaxMakespan() + scale - 1) / scale)
	slots := baseSlots + horizonSlack(n)
	for _, jb := range inst.Jobs {
		dur := int((jb.Estimate + scale - 1) / scale)
		min := 0
		if jb.Submit > inst.Now {
			min = int((jb.Submit - inst.Now + scale - 1) / scale)
		}
		max := slots - dur
		if max < min {
			continue // Build will fail with ErrHorizonTooTight anyway
		}
		nv := max - min + 1
		vars += nv
		entries += nv * (1 + dur)
	}
	return vars, entries
}

// BuildGuarded is Build behind the SizeLimit guard: the size is estimated
// first and a *ModelTooLargeError returned instead of attempting an
// allocation that cannot fit. A zero SizeLimit behaves exactly like Build.
func BuildGuarded(inst *Instance, scale int64, lim SizeLimit) (*Model, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("ilpsched: time scale %d < 1", scale)
	}
	if lim.MaxVariables > 0 || lim.MaxMatrixEntries > 0 {
		vars, entries := EstimateSize(inst, scale)
		if (lim.MaxVariables > 0 && vars > lim.MaxVariables) ||
			(lim.MaxMatrixEntries > 0 && entries > lim.MaxMatrixEntries) {
			return nil, &ModelTooLargeError{
				Scale: scale, Variables: vars, MatrixEntries: entries,
				MaxVariables: lim.MaxVariables, MaxEntries: lim.MaxMatrixEntries,
			}
		}
	}
	return Build(inst, scale)
}

// Build constructs the model at the given time scale (use
// Scaling.TimeScale for the paper's choice).
func Build(inst *Instance, scale int64) (*Model, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	if scale < 1 {
		return nil, fmt.Errorf("ilpsched: time scale %d < 1", scale)
	}
	n := len(inst.Jobs)
	baseSlots := int((inst.MaxMakespan() + scale - 1) / scale)
	slots := baseSlots + horizonSlack(n)
	spec := buildSpec{
		inst: inst, scale: scale, slots: slots,
		jobs: inst.Jobs,
		min:  make([]int, n), max: make([]int, n), dur: make([]int, n),
		capacity: make([]int, slots),
	}
	for t := 0; t < slots; t++ {
		from := inst.Now + int64(t)*scale
		spec.capacity[t] = inst.Base.MinFree(from, from+scale)
	}
	for i, jb := range inst.Jobs {
		spec.dur[i] = int((jb.Estimate + scale - 1) / scale)
		min := 0
		if jb.Submit > inst.Now {
			min = int((jb.Submit - inst.Now + scale - 1) / scale)
		}
		max := slots - spec.dur[i]
		if max < min {
			return nil, fmt.Errorf("%w: job %d does not fit the grid (slots=%d, dur=%d)",
				ErrHorizonTooTight, jb.ID, slots, spec.dur[i])
		}
		spec.min[i], spec.max[i] = min, max
	}
	return materialize(spec), nil
}

// buildSpec is the input of the shared model materializer: the modeled
// jobs with their (possibly presolve-trimmed) start-slot windows, the
// per-slot capacities (already reduced by presolve-fixed jobs), and the
// presolve carry-over (fixed entries, objective offset, dominance
// groups). Build and BuildPresolved both funnel through materialize so
// the two model layouts stay bit-identical where they overlap.
type buildSpec struct {
	inst  *Instance
	scale int64
	slots int
	jobs  []*job.Job
	min   []int
	max   []int
	dur   []int
	// capacity is the per-slot free capacity M_t (minimum free capacity
	// inside the slot window — the safe, conservative value).
	capacity []int
	// coverRows materializes a capacity row only when the windows of the
	// modeled jobs can actually cover the slot with more width than it
	// has (the presolved rule); false uses the legacy total-width rule.
	coverRows bool
	fixed     []schedule.Entry
	offset    float64
	groups    [][]int
}

// materialize allocates the lp.Problem of a spec. A capacity row is only
// materialized when it can actually bind — on a large machine with a
// short queue most slots need no row, which keeps the simplex basis
// small.
func materialize(spec buildSpec) *Model {
	n := len(spec.jobs)
	m := &Model{
		Inst: spec.inst, Scale: spec.scale, Slots: spec.slots,
		jobs: spec.jobs, fixed: spec.fixed, offset: spec.offset,
		groups:  spec.groups,
		prob:    lp.NewProblem(),
		varOf:   make([]int, n),
		minSlot: spec.min, maxSlot: spec.max, slotDur: spec.dur,
		capacity: spec.capacity,
		capRow:   make([]int, spec.slots),
	}
	bindable := rowBindable(spec)
	for t := 0; t < spec.slots; t++ {
		if bindable[t] {
			m.capRow[t] = m.prob.AddConstraint(lp.LE, float64(m.capacity[t]))
		} else {
			m.capRow[t] = -1 // can never bind
		}
	}
	// Prefix counts of materialized capacity rows, so the exact entry
	// count of a column covering slots [t, t+dur) is O(1).
	capCnt := make([]int, spec.slots+1)
	for t := 0; t < spec.slots; t++ {
		capCnt[t+1] = capCnt[t]
		if m.capRow[t] >= 0 {
			capCnt[t+1]++
		}
	}
	// First pass: the exact column/entry totals, so the whole coefficient
	// matrix is allocated in one arena instead of one append chain per
	// x_it column (a dynpsim run rebuilds this model every self-tuning
	// step).
	totalCols, totalEntries := 0, 0
	for i := range spec.jobs {
		totalCols += spec.max[i] - spec.min[i] + 1
		for t := spec.min[i]; t <= spec.max[i]; t++ {
			totalEntries += 1 + capCnt[t+spec.dur[i]] - capCnt[t]
		}
	}
	m.prob.Grow(totalCols, n, totalEntries)
	m.intCols = make([]int, 0, totalCols)
	// Second pass: assignment rows and variables.
	for i, jb := range spec.jobs {
		min, max := spec.min[i], spec.max[i]
		row := m.prob.AddConstraint(lp.EQ, 1)
		first := -1
		for t := min; t <= max; t++ {
			start := spec.inst.Now + int64(t)*spec.scale
			// Eq. 2 coefficient: (t - s_i + d_i) * w_i, integral.
			cost := float64((start - jb.Submit + jb.Estimate) * int64(jb.Width))
			col := m.prob.AddVariable(0, 1, cost, fmt.Sprintf("x_%d_%d", jb.ID, t))
			if first < 0 {
				first = col
			}
			m.prob.ReserveColumn(col, 1+capCnt[t+spec.dur[i]]-capCnt[t])
			m.prob.SetCoeff(row, col, 1)
			for u := t; u < t+spec.dur[i]; u++ {
				if m.capRow[u] >= 0 {
					m.prob.SetCoeff(m.capRow[u], col, float64(jb.Width))
				}
			}
			m.intCols = append(m.intCols, col)
		}
		m.varOf[i] = first
	}
	return m
}

// rowBindable reports per slot whether its capacity row can ever bind.
// The legacy rule compares the capacity against the total modeled width;
// the presolved (coverRows) rule compares against only the width whose
// trimmed windows can actually cover the slot, which removes many more
// rows once presolve has tightened the windows.
func rowBindable(spec buildSpec) []bool {
	out := make([]bool, spec.slots)
	if !spec.coverRows {
		totalWidth := 0
		for _, jb := range spec.jobs {
			totalWidth += jb.Width
		}
		for t := 0; t < spec.slots; t++ {
			out[t] = spec.capacity[t] < totalWidth
		}
		return out
	}
	// Diff array of the covering width: job i can occupy any slot in
	// [min_i, max_i + dur_i).
	diff := make([]int, spec.slots+1)
	for i, jb := range spec.jobs {
		from := spec.min[i]
		to := spec.max[i] + spec.dur[i]
		if to > spec.slots {
			to = spec.slots
		}
		diff[from] += jb.Width
		diff[to] -= jb.Width
	}
	cover := 0
	for t := 0; t < spec.slots; t++ {
		cover += diff[t]
		out[t] = cover > spec.capacity[t]
	}
	return out
}

// NumVariables returns the number of binary x_it columns.
func (m *Model) NumVariables() int { return len(m.intCols) }

// NumConstraints returns the number of model rows.
func (m *Model) NumConstraints() int { return m.prob.NumConstraints() }

// MatrixEntries returns the number of structural nonzeros, the quantity
// Eq. 6 budgets memory for.
func (m *Model) MatrixEntries() int { return m.prob.NumNonZeros() }

// ModeledJobs returns the number of jobs the integer program still
// carries (fewer than len(Inst.Jobs) after presolve fixing).
func (m *Model) ModeledJobs() int { return len(m.jobs) }

// FixedJobs returns the presolve-pinned jobs with their grid starts.
func (m *Model) FixedJobs() []schedule.Entry {
	return append([]schedule.Entry(nil), m.fixed...)
}

// Offset returns the Eq. 2 objective contribution of the presolve-fixed
// jobs; the MIP objective of a presolved model excludes it.
func (m *Model) Offset() float64 { return m.offset }

// ObjectiveOfVector evaluates the model objective of a 0/1 start vector
// plus the presolve offset, i.e. the full Eq. 2 value the vector
// represents. Used to rank candidate incumbents before seeding.
func (m *Model) ObjectiveOfVector(x []float64) float64 {
	sum := m.offset
	for j, v := range x {
		if v > 0.5 {
			sum += m.prob.Cost(j)
		}
	}
	return sum
}

// col returns the column of job index i starting at slot t.
func (m *Model) col(i, t int) int { return m.varOf[i] + (t - m.minSlot[i]) }

// gridListSchedule places jobs in the given index order at their earliest
// grid-feasible slot and returns the corresponding 0/1 vector, or ok=false
// if some job does not fit (cannot happen with the built-in horizon slack).
func (m *Model) gridListSchedule(order []int) ([]float64, bool) {
	capLeft := append([]int(nil), m.capacity...)
	x := make([]float64, m.prob.NumVariables())
	for _, i := range order {
		jb := m.jobs[i]
		placed := false
		for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
			fits := true
			for u := t; u < t+m.slotDur[i]; u++ {
				if capLeft[u] < jb.Width {
					fits = false
					break
				}
			}
			if fits {
				for u := t; u < t+m.slotDur[i]; u++ {
					capLeft[u] -= jb.Width
				}
				x[m.col(i, t)] = 1
				placed = true
				break
			}
		}
		if !placed {
			return nil, false
		}
	}
	return x, true
}

// Heuristic returns the rounding heuristic for branch and bound: jobs are
// ordered by the fractional mean start slot of the LP relaxation and
// list-scheduled on the grid.
func (m *Model) Heuristic() mip.Heuristic {
	return func(relax []float64) ([]float64, bool) {
		n := len(m.jobs)
		mean := make([]float64, n)
		for i := 0; i < n; i++ {
			var s, tot float64
			for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
				v := relax[m.col(i, t)]
				s += v * float64(t)
				tot += v
			}
			if tot > 0 {
				mean[i] = s / tot
			}
		}
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			if mean[order[a]] != mean[order[b]] {
				return mean[order[a]] < mean[order[b]]
			}
			return m.jobs[order[a]].ID < m.jobs[order[b]].ID
		})
		return m.gridListSchedule(order)
	}
}

// Brancher returns the SOS-style range brancher for branch and bound: it
// picks the job whose start-time distribution is most fractional and
// splits its start window at the fractional mean slot. Both children
// forbid half of the window, which moves the LP relaxation far more than
// fixing a single x_it variable and keeps the search tree small — the
// standard device for time-indexed formulations.
func (m *Model) Brancher() mip.Brancher {
	return func(relax []float64) [][]mip.Bound {
		n := len(m.jobs)
		const tol = 1e-6
		pick, pickScore := -1, tol
		var pickMean float64
		for i := 0; i < n; i++ {
			var mean, maxv float64
			for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
				v := relax[m.col(i, t)]
				mean += v * float64(t)
				if v > maxv {
					maxv = v
				}
			}
			if score := 1 - maxv; score > pickScore {
				pickScore, pick, pickMean = score, i, mean
			}
		}
		if pick < 0 {
			return nil // integral: fall back (mip will not branch anyway)
		}
		theta := int(math.Floor(pickMean))
		if theta < m.minSlot[pick] {
			theta = m.minSlot[pick]
		}
		if theta >= m.maxSlot[pick] {
			theta = m.maxSlot[pick] - 1
		}
		var left, right []mip.Bound
		for t := m.minSlot[pick]; t <= m.maxSlot[pick]; t++ {
			if t <= theta {
				right = append(right, mip.Bound{Col: m.col(pick, t), Lo: 0, Hi: 0})
			} else {
				left = append(left, mip.Bound{Col: m.col(pick, t), Lo: 0, Hi: 0})
			}
		}
		// left child: start <= theta (forbid the late half);
		// right child: start > theta (forbid the early half).
		return [][]mip.Bound{left, right}
	}
}

// IncumbentFromSchedule converts a (real-time) schedule into a feasible
// model vector by grid-list-scheduling the jobs in the schedule's start
// order. This is how the best policy schedule seeds the branch and bound.
// On a presolved model the schedule may still cover every waiting job —
// entries of presolve-fixed jobs are ignored — and the order is
// canonicalized within each dominance group so that the symmetry-trimmed
// windows do not reject an otherwise feasible seed.
func (m *Model) IncumbentFromSchedule(s *schedule.Schedule) ([]float64, error) {
	idx := make(map[int]int, len(m.jobs))
	for i, jb := range m.jobs {
		idx[jb.ID] = i
	}
	fixedIDs := make(map[int]bool, len(m.fixed))
	for _, e := range m.fixed {
		fixedIDs[e.Job.ID] = true
	}
	c := s.Clone()
	c.SortByStart()
	order := make([]int, 0, len(m.jobs))
	for _, e := range c.Entries {
		if i, ok := idx[e.Job.ID]; ok {
			order = append(order, i)
			continue
		}
		if fixedIDs[e.Job.ID] {
			continue // pinned by presolve: not part of the program
		}
		return nil, fmt.Errorf("ilpsched: schedule job %d not in instance", e.Job.ID)
	}
	if len(order) != len(m.jobs) {
		return nil, fmt.Errorf("ilpsched: schedule has %d modeled jobs, model %d", len(order), len(m.jobs))
	}
	m.canonicalizeGroups(order)
	x, ok := m.gridListSchedule(order)
	if !ok {
		return nil, fmt.Errorf("ilpsched: schedule order does not fit the grid")
	}
	return x, nil
}

// canonicalizeGroups rewrites the positions occupied by each dominance
// group's members (in order of appearance) to the group's canonical job
// order. Identical-shape jobs are interchangeable — same width, same
// scaled duration, same window — so this permutation changes neither
// feasibility nor the Eq. 2 total, but it makes the order respect the
// per-position windows the presolve symmetry trimming imposed.
func (m *Model) canonicalizeGroups(order []int) {
	if len(m.groups) == 0 {
		return
	}
	groupOf := make(map[int]int, len(order))
	for g, members := range m.groups {
		for _, i := range members {
			groupOf[i] = g
		}
	}
	// positions[g] collects where group g's members sit in order.
	positions := make([][]int, len(m.groups))
	for pos, i := range order {
		if g, ok := groupOf[i]; ok {
			positions[g] = append(positions[g], pos)
		}
	}
	for g, ps := range positions {
		for k, pos := range ps {
			order[pos] = m.groups[g][k]
		}
	}
}

// Solution is the result of solving the model.
type Solution struct {
	// MIP is the raw branch-and-bound result. On a presolved model its
	// Objective excludes the fixed jobs' contribution; Objective below
	// is the full Eq. 2 value.
	MIP *mip.Result
	// Objective is the Eq. 2 objective of Grid including presolve-fixed
	// jobs (MIP objective plus the presolve offset). Comparable across
	// presolved and unreduced solves of the same instance.
	Objective float64
	// Grid is the schedule exactly as the ILP chose it (starts on the
	// scaled grid), including presolve-fixed jobs.
	Grid *schedule.Schedule
	// Compacted is Grid after the §3.2 repair: jobs re-inserted in start
	// order as early as possible. This is the schedule the paper
	// compares against the policies.
	Compacted *schedule.Schedule
}

// Solve runs branch and bound on the model. opt.Heuristic and
// opt.IntegralObjective are installed automatically; pass an Incumbent
// (e.g. from IncumbentFromSchedule) to seed the search. A run that ends
// without a feasible schedule returns a *NoScheduleError (matched by
// ErrNoSchedule, and by ErrInfeasible when infeasibility is proven).
func (m *Model) Solve(opt mip.Options) (*Solution, error) {
	return m.SolveCtx(context.Background(), opt)
}

// SolveCtx is Solve with cooperative cancellation: a done context aborts
// the branch and bound mid-search with a *mip.CanceledError and leaves
// the model untouched (bounds restored), so the model can be re-solved.
func (m *Model) SolveCtx(ctx context.Context, opt mip.Options) (*Solution, error) {
	if len(m.jobs) == 0 {
		// Presolve pinned every job: nothing left to search. Synthesize an
		// optimal result so downstream consumers (reports, telemetry) see
		// a normal zero-node solve.
		return m.finishSolution(&mip.Result{Status: mip.Optimal})
	}
	opt.IntegralObjective = true
	if opt.Heuristic == nil {
		opt.Heuristic = m.Heuristic()
	}
	if opt.Brancher == nil {
		opt.Brancher = m.Brancher()
	}
	// Cover cuts (opt.RootCutRounds) are available — the capacity rows are
	// knapsacks over binaries — but are left off by default: on typical
	// self-tuning-step instances the SOS brancher closes the gap faster
	// than the root re-solves the cuts cost.
	res, err := mip.SolveCtx(ctx, m.prob, m.intCols, opt)
	if err != nil {
		return nil, err
	}
	if res.Status != mip.Optimal && res.Status != mip.Feasible {
		return nil, &NoScheduleError{Status: res.Status, Result: res}
	}
	return m.finishSolution(res)
}

// SolutionFromVector decodes a raw incumbent vector (as handed to
// mip.Options.OnIncumbent) into a full Solution: grid starts for the
// modeled jobs, presolve-fixed entries appended, §3.2 compaction run.
// objective is the MIP-level objective of the vector (the presolve
// offset is added back, exactly as SolveCtx does for final results).
// This is how the anytime serving core lifts mid-solve incumbents into
// adoptable schedules without waiting for the solve to finish.
func (m *Model) SolutionFromVector(x []float64, objective float64) (*Solution, error) {
	if len(x) < m.NumVariables() {
		return nil, fmt.Errorf("ilpsched: vector has %d entries, model needs %d", len(x), m.NumVariables())
	}
	return m.finishSolution(&mip.Result{Status: mip.Feasible, Objective: objective, X: x})
}

// finishSolution lifts a MIP result into the full-instance solution:
// extract the modeled jobs' grid starts, append the presolve-fixed
// entries, and run the §3.2 compaction over all of them.
func (m *Model) finishSolution(res *mip.Result) (*Solution, error) {
	sol := &Solution{MIP: res, Objective: res.Objective + m.offset}
	grid := &schedule.Schedule{Policy: "ILP", Now: m.Inst.Now, Machine: m.Inst.Machine}
	grid.Entries = append(grid.Entries, m.fixed...)
	for i, jb := range m.jobs {
		found := false
		for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
			if res.X[m.col(i, t)] > 0.5 {
				grid.Entries = append(grid.Entries, schedule.Entry{
					Job: jb, Start: m.Inst.Now + int64(t)*m.Scale,
				})
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("ilpsched: job %d unassigned in MIP solution", jb.ID)
		}
	}
	sol.Grid = grid
	compacted, err := grid.Compact(m.Inst.Base)
	if err != nil {
		return nil, fmt.Errorf("ilpsched: compaction failed: %v", err)
	}
	sol.Compacted = compacted
	return sol, nil
}

// WriteLP emits the model in CPLEX LP file format, the interchange format
// the original study would have fed to CPLEX.
func (m *Model) WriteLP(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\\ time-indexed schedule, %d jobs, scale %ds, %d slots\nMinimize\n obj:",
		len(m.jobs), m.Scale, m.Slots); err != nil {
		return err
	}
	for i := range m.jobs {
		for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
			c := m.prob.Cost(m.col(i, t))
			fmt.Fprintf(w, " + %g %s", c, m.prob.Name(m.col(i, t)))
		}
	}
	fmt.Fprintf(w, "\nSubject To\n")
	for i, jb := range m.jobs {
		fmt.Fprintf(w, " assign_%d:", jb.ID)
		for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
			fmt.Fprintf(w, " + %s", m.prob.Name(m.col(i, t)))
		}
		fmt.Fprintf(w, " = 1\n")
	}
	for t := 0; t < m.Slots; t++ {
		if m.capRow[t] < 0 {
			continue // capacity can never bind: row not materialized
		}
		fmt.Fprintf(w, " cap_%d:", t)
		any := false
		for i, jb := range m.jobs {
			for s := m.minSlot[i]; s <= m.maxSlot[i]; s++ {
				if s <= t && t < s+m.slotDur[i] {
					fmt.Fprintf(w, " + %d %s", jb.Width, m.prob.Name(m.col(i, s)))
					any = true
				}
			}
		}
		if !any {
			fmt.Fprintf(w, " 0 x_%d_%d", m.jobs[0].ID, m.minSlot[0])
		}
		fmt.Fprintf(w, " <= %d\n", m.capacity[t])
	}
	fmt.Fprintf(w, "Binaries\n")
	for i := range m.jobs {
		for t := m.minSlot[i]; t <= m.maxSlot[i]; t++ {
			fmt.Fprintf(w, " %s", m.prob.Name(m.col(i, t)))
		}
	}
	_, err := fmt.Fprintf(w, "\nEnd\n")
	return err
}

// ObjectiveOfSchedule evaluates the Eq. 2 objective (the weighted *sum*,
// not the normalized average) of a real-time schedule, for comparing ILP
// objectives with policy schedules on the same footing.
func ObjectiveOfSchedule(s *schedule.Schedule) float64 {
	var sum float64
	for _, e := range s.Entries {
		sum += float64(e.ResponseTime()) * float64(e.Job.Width)
	}
	return sum
}

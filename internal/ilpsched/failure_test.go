package ilpsched

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mip"
)

// Every failure path returns a typed, matchable error and leaves the
// model in a re-solvable state (no partial mutations).

func TestHorizonTooTightTyped(t *testing.T) {
	// A job whose estimate exceeds the horizon fails validation.
	i := inst(4, 0, 1000, jb(1, 0, 2, 2000))
	if _, err := Build(i, 10); !errors.Is(err, ErrHorizonTooTight) {
		t.Fatalf("Build = %v, want ErrHorizonTooTight", err)
	}
	// A future-submitted job (which Validate's finish check skips) whose
	// release slot leaves no room for its scaled duration fails in Build
	// with the same sentinel.
	late := inst(4, 0, 1000, jb(1, 995, 2, 1200))
	if _, err := Build(late, 500); !errors.Is(err, ErrHorizonTooTight) {
		t.Fatalf("Build(late) = %v, want ErrHorizonTooTight", err)
	}
}

func TestModelTooLargeTyped(t *testing.T) {
	i := inst(4, 0, 1000, jb(1, 0, 2, 100), jb(2, 0, 4, 60))
	vars, entries := EstimateSize(i, 10)
	if vars <= 0 || entries <= 0 {
		t.Fatalf("EstimateSize = (%d, %d), want positive", vars, entries)
	}
	_, err := BuildGuarded(i, 10, SizeLimit{MaxVariables: vars - 1})
	if !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("BuildGuarded = %v, want ErrModelTooLarge", err)
	}
	var tooLarge *ModelTooLargeError
	if !errors.As(err, &tooLarge) {
		t.Fatalf("BuildGuarded error %T, want *ModelTooLargeError", err)
	}
	if tooLarge.Variables != vars || tooLarge.MatrixEntries != entries || tooLarge.Scale != 10 {
		t.Fatalf("guard recorded %+v, want vars=%d entries=%d scale=10", tooLarge, vars, entries)
	}
	if _, err := BuildGuarded(i, 10, SizeLimit{MaxMatrixEntries: entries - 1}); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("entry-bound guard = %v, want ErrModelTooLarge", err)
	}
	// Generous or zero limits admit the build.
	if _, err := BuildGuarded(i, 10, SizeLimit{MaxVariables: vars, MaxMatrixEntries: entries}); err != nil {
		t.Fatalf("exact-limit build: %v", err)
	}
	if _, err := BuildGuarded(i, 10, SizeLimit{}); err != nil {
		t.Fatalf("unguarded build: %v", err)
	}
}

// EstimateSize must agree with the built model (the guard would be
// useless if the estimate undercounted).
func TestEstimateSizeMatchesBuild(t *testing.T) {
	i := inst(8, 0, 1500, jb(1, 0, 2, 100), jb(2, 40, 4, 300), jb(3, 100, 8, 60))
	for _, scale := range []int64{1, 7, 15, 60} {
		vars, entries := EstimateSize(i, scale)
		m, err := Build(i, scale)
		if err != nil {
			t.Fatalf("scale %d: %v", scale, err)
		}
		if vars != m.NumVariables() {
			t.Errorf("scale %d: estimated %d vars, built %d", scale, vars, m.NumVariables())
		}
		if entries < m.MatrixEntries() {
			t.Errorf("scale %d: estimated %d entries < built %d", scale, entries, m.MatrixEntries())
		}
	}
}

func TestInfeasibleInstanceTyped(t *testing.T) {
	// Two width-3 jobs on a 4-processor machine can never overlap, so
	// they need 2x100 s of grid, but the horizon grants only ~150 s
	// (plus rounding slack): the ILP is proven infeasible.
	i := inst(4, 0, 150, jb(1, 0, 3, 100), jb(2, 0, 3, 100))
	m, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Solve(mip.Options{MaxNodes: 1000})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Solve = %v, want ErrInfeasible", err)
	}
	if !errors.Is(err, ErrNoSchedule) {
		t.Fatalf("ErrInfeasible does not match ErrNoSchedule: %v", err)
	}
	var nse *NoScheduleError
	if !errors.As(err, &nse) || nse.Status != mip.Infeasible {
		t.Fatalf("error %v, want *NoScheduleError{Infeasible}", err)
	}
}

func TestCancelMidSolveTyped(t *testing.T) {
	i := inst(4, 0, 1000,
		jb(1, 0, 2, 100), jb(2, 0, 3, 200), jb(3, 0, 1, 150), jb(4, 0, 4, 80))
	m, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = m.SolveCtx(ctx, mip.Options{MaxNodes: 5000})
	if !errors.Is(err, mip.ErrCanceled) {
		t.Fatalf("SolveCtx = %v, want mip.ErrCanceled", err)
	}
	var ce *mip.CanceledError
	if !errors.As(err, &ce) || !errors.Is(ce.Cause, context.Canceled) {
		t.Fatalf("error %v, want *mip.CanceledError wrapping context.Canceled", err)
	}
	// No partial state: the same model re-solves cleanly.
	sol, err := m.Solve(mip.Options{MaxNodes: 5000})
	if err != nil {
		t.Fatalf("re-solve after cancel: %v", err)
	}
	if sol.MIP.Status != mip.Optimal {
		t.Fatalf("re-solve status %v, want optimal", sol.MIP.Status)
	}
	if sol.Compacted == nil {
		t.Fatal("re-solve produced no compacted schedule")
	}
	if err := sol.Compacted.Validate(i.Base); err != nil {
		t.Fatalf("re-solved schedule invalid: %v", err)
	}
}

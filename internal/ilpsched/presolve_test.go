package ilpsched

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/stats"

	"repro/internal/job"
)

// randomInstance builds a random-but-valid instance plus its policy
// schedules (seeds for presolve, horizon source), the shape shared by the
// property tests below.
func randomInstance(r *stats.Rand) (*Instance, []*schedule.Schedule) {
	mSize := r.Intn(4) + 2
	base := machine.New(mSize, 0)
	if r.Intn(2) == 0 {
		base.Reserve(0, int64(r.Intn(40)+1), r.Intn(mSize)+1)
	}
	n := r.Intn(4) + 2
	jobs := make([]*job.Job, n)
	for k := 0; k < n; k++ {
		var submit int64
		if r.Intn(3) == 0 {
			submit = int64(r.Intn(30))
		}
		jobs[k] = jb(k+1, submit, r.Intn(mSize)+1, int64(r.Intn(40)+5))
	}
	var horizon int64
	var seeds []*schedule.Schedule
	for _, p := range policy.Standard() {
		s, err := policy.Build(p, 0, base, jobs)
		if err != nil {
			return nil, nil
		}
		seeds = append(seeds, s)
		if mk := s.Makespan(); mk > horizon {
			horizon = mk
		}
	}
	return &Instance{Now: 0, Machine: mSize, Base: base, Jobs: jobs, Horizon: horizon}, seeds
}

// The central safety property of the tentpole: on random instances the
// presolved model proves the same optimal objective as the unreduced one,
// at scale 1 and on coarse grids, with and without upper-bound seeds.
func TestBuildPresolvedAgreesWithBuild(t *testing.T) {
	scales := []int64{1, 1, 7, 15}
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		i, seeds := randomInstance(r)
		if i == nil {
			return false
		}
		scale := scales[r.Intn(len(scales))]
		if r.Intn(2) == 0 {
			seeds = nil // presolve must be safe without any seed too
		}
		full, err := Build(i, scale)
		if err != nil {
			t.Logf("seed %d: build: %v", seed, err)
			return false
		}
		fullSol, err := full.Solve(mip.Options{MaxNodes: 30000})
		if err != nil || fullSol.MIP.Status != mip.Optimal {
			t.Logf("seed %d: full solve: %v %v", seed, fullSol, err)
			return false
		}
		red, st, err := BuildPresolved(i, scale, PresolveOptions{Seeds: seeds})
		if err != nil {
			t.Logf("seed %d: presolve: %v", seed, err)
			return false
		}
		if st.VarsAfter > st.VarsBefore || st.RowsAfter > st.RowsBefore ||
			st.EntriesAfter > st.EntriesBefore || st.VarsAfter < 0 {
			t.Logf("seed %d: stats not a reduction: %+v", seed, st)
			return false
		}
		redSol, err := red.Solve(mip.Options{MaxNodes: 30000})
		if err != nil || redSol.MIP.Status != mip.Optimal {
			t.Logf("seed %d: reduced solve: %v %v", seed, redSol, err)
			return false
		}
		if math.Abs(redSol.Objective-fullSol.Objective) > 1e-6 {
			t.Logf("seed %d scale %d: presolved %g, full %g (stats %+v)",
				seed, scale, redSol.Objective, fullSol.Objective, st)
			return false
		}
		if err := redSol.Compacted.Validate(i.Base); err != nil {
			t.Logf("seed %d: compacted infeasible: %v", seed, err)
			return false
		}
		if len(redSol.Grid.Entries) != len(i.Jobs) {
			t.Logf("seed %d: grid schedule covers %d/%d jobs",
				seed, len(redSol.Grid.Entries), len(i.Jobs))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Round trip of the postsolve map: a reduced solution lifted with
// PostsolveX is a feasible vector of the full model with the same Eq. 2
// objective, and seeding the full search with it cannot be beaten.
func TestPostsolveXRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		i, seeds := randomInstance(r)
		if i == nil {
			return false
		}
		full, err := Build(i, 1)
		if err != nil {
			return false
		}
		red, _, err := BuildPresolved(i, 1, PresolveOptions{Seeds: seeds})
		if err != nil {
			t.Logf("seed %d: presolve: %v", seed, err)
			return false
		}
		redSol, err := red.Solve(mip.Options{MaxNodes: 30000})
		if err != nil || redSol.MIP.Status != mip.Optimal {
			return false
		}
		x, err := full.PostsolveX(red, redSol.MIP.X)
		if err != nil {
			t.Logf("seed %d: postsolve: %v", seed, err)
			return false
		}
		// The lifted vector reproduces the reduced objective (which
		// already includes the offset of the presolve-fixed jobs).
		if got := full.ObjectiveOfVector(x); math.Abs(got-redSol.Objective) > 1e-6 {
			t.Logf("seed %d: lifted objective %g, reduced %g", seed, got, redSol.Objective)
			return false
		}
		// And it is accepted as a full-model incumbent that the exact
		// search cannot improve past the proven optimum.
		fullSol, err := full.Solve(mip.Options{MaxNodes: 30000, Incumbent: x})
		if err != nil || fullSol.MIP.Status != mip.Optimal {
			t.Logf("seed %d: seeded full solve: %v %v", seed, fullSol, err)
			return false
		}
		if math.Abs(fullSol.Objective-redSol.Objective) > 1e-6 {
			t.Logf("seed %d: seeded full %g, reduced %g", seed, fullSol.Objective, redSol.Objective)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// A single waiting job is fully decided by presolve: the canonical list
// schedule is the lower bound, so the cost-bound trim pins it and the
// model solves without any LP.
func TestPresolveFixesSingleJob(t *testing.T) {
	base := machine.New(4, 0)
	base.Reserve(0, 50, 3) // running job: width-2 job must wait until 50
	i := &Instance{Now: 0, Machine: 4, Base: base, Horizon: 200,
		Jobs: []*job.Job{jb(1, 0, 2, 60)}}
	red, st, err := BuildPresolved(i, 10, PresolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsFixed != 1 || st.VarsAfter != 0 {
		t.Fatalf("stats = %+v, want the job fixed and no variables", st)
	}
	sol, err := red.Solve(mip.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.Grid.Find(1).Start; got != 50 {
		t.Fatalf("fixed start %d, want 50", got)
	}
	full, err := Build(i, 10)
	if err != nil {
		t.Fatal(err)
	}
	fullSol, err := full.Solve(mip.Options{MaxNodes: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-fullSol.Objective) > 1e-9 {
		t.Fatalf("fixed objective %g, full %g", sol.Objective, fullSol.Objective)
	}
}

// Presolve proves grid infeasibility when a reservation blocks every
// possible start of a job, instead of materializing a doomed model.
func TestPresolveDetectsInfeasible(t *testing.T) {
	base := machine.New(4, 0)
	base.Reserve(0, 1000, 3) // only 1 processor free over the whole grid
	i := &Instance{Now: 0, Machine: 4, Base: base, Horizon: 400,
		Jobs: []*job.Job{jb(1, 0, 2, 50)}}
	_, _, err := BuildPresolved(i, 10, PresolveOptions{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// EstimatePresolvedSize predicts exactly what BuildPresolved materializes,
// and BuildPresolvedGuarded admits instances whose *unreduced* size the
// plain guard rejects — the satellite fix for ErrModelTooLarge.
func TestGuardAppliesToReducedSize(t *testing.T) {
	i, seeds := randomInstance(stats.NewRand(5))
	if i == nil {
		t.Fatal("bad fixture seed")
	}
	opt := PresolveOptions{Seeds: seeds}
	vars, entries, err := EstimatePresolvedSize(i, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	red, st, err := BuildPresolved(i, 1, opt)
	if err != nil {
		t.Fatal(err)
	}
	if vars != st.VarsAfter || entries != st.EntriesAfter {
		t.Fatalf("estimate (%d, %d) != stats (%d, %d)", vars, entries, st.VarsAfter, st.EntriesAfter)
	}
	if red.NumVariables() != vars {
		t.Fatalf("materialized %d vars, estimated %d", red.NumVariables(), vars)
	}
	if st.VarsRemoved() <= 0 {
		t.Fatalf("fixture seed produced no reduction: %+v", st)
	}
	// A limit strictly between the reduced and unreduced size: the plain
	// guard refuses, the presolved guard builds.
	lim := SizeLimit{MaxVariables: st.VarsAfter}
	if _, err := BuildGuarded(i, 1, lim); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("unreduced guard: err = %v, want ErrModelTooLarge", err)
	}
	if _, _, err := BuildPresolvedGuarded(i, 1, lim, opt); err != nil {
		t.Fatalf("reduced guard rejected a fitting model: %v", err)
	}
	// And the reduced guard still fires below the reduced size.
	tight := SizeLimit{MaxVariables: st.VarsAfter - 1}
	if _, _, err := BuildPresolvedGuarded(i, 1, tight, opt); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("tight reduced guard: err = %v, want ErrModelTooLarge", err)
	}
}

// Dominance trimming must not reject seed schedules that order an
// identical-shape group differently: IncumbentFromSchedule canonicalizes
// the group order before extracting starts.
func TestIncumbentSurvivesDominanceGroups(t *testing.T) {
	// Three identical jobs on a 2-wide machine: Q=2, a 3-member group.
	i := inst(2, 0, 400, jb(1, 0, 1, 50), jb(2, 0, 1, 50), jb(3, 0, 1, 50))
	red, st, err := BuildPresolved(i, 10, PresolveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.VarsRemoved() <= 0 {
		t.Fatalf("identical jobs produced no dominance reduction: %+v", st)
	}
	// A seed in reverse ID order would violate the canonical windows
	// without canonicalization.
	seed := &schedule.Schedule{Now: 0, Machine: 2, Entries: []schedule.Entry{
		{Job: i.Jobs[2], Start: 0}, {Job: i.Jobs[1], Start: 0}, {Job: i.Jobs[0], Start: 100},
	}}
	x, err := red.IncumbentFromSchedule(seed)
	if err != nil {
		t.Fatalf("canonicalized seed rejected: %v", err)
	}
	sol, err := red.Solve(mip.Options{MaxNodes: 5000, Incumbent: x})
	if err != nil || sol.MIP.Status != mip.Optimal {
		t.Fatalf("seeded solve: %v %v", sol, err)
	}
}

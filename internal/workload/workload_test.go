package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCTCConfigValid(t *testing.T) {
	for _, cfg := range []Config{CTC(), ShortBurst(), LongParallel()} {
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	muts := []func(*Config){
		func(c *Config) { c.Processors = 0 },
		func(c *Config) { c.MeanInterarrival = 0 },
		func(c *Config) { c.WidthValues = nil },
		func(c *Config) { c.WidthWeights = c.WidthWeights[:1] },
		func(c *Config) { c.MaxRuntime = 0 },
		func(c *Config) { c.ExactEstimateProb = 1.5 },
		func(c *Config) { c.Users = 0 },
		func(c *Config) { c.WidthValues = []int{0}; c.WidthWeights = []float64{1} },
		func(c *Config) { c.WidthValues = []int{9999}; c.WidthWeights = []float64{1} },
	}
	for i, mut := range muts {
		c := CTC()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestGenerateValidTrace(t *testing.T) {
	tr, err := Generate(CTC(), 500, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 500 {
		t.Fatalf("generated %d jobs, want 500", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Processors != 430 {
		t.Fatalf("processors = %d, want 430", tr.Processors)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(CTC(), 100, 42)
	b, _ := Generate(CTC(), 100, 42)
	for i := range a.Jobs {
		if *a.Jobs[i] != *b.Jobs[i] {
			t.Fatalf("job %d differs across same-seed runs", i)
		}
	}
	c, _ := Generate(CTC(), 100, 43)
	same := true
	for i := range a.Jobs {
		if *a.Jobs[i] != *c.Jobs[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// E6: the generator must reproduce the paper's 369 s mean interarrival.
func TestMeanInterarrivalMatchesPaper(t *testing.T) {
	tr, err := Generate(CTC(), 20000, 7)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.MeanInterarrival()
	if math.Abs(got-370) > 15 { // 369 + the +1 s floor, sampling noise
		t.Fatalf("mean interarrival = %v, want ~369-370", got)
	}
}

func TestEstimateBounds(t *testing.T) {
	tr, err := Generate(CTC(), 5000, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact := 0
	for _, j := range tr.Jobs {
		if j.Estimate < j.Runtime {
			t.Fatalf("job %d estimate %d < runtime %d", j.ID, j.Estimate, j.Runtime)
		}
		if j.Runtime > 64800 || j.Estimate > 64800 {
			t.Fatalf("job %d exceeds the 18h limit", j.ID)
		}
		if j.Estimate == j.Runtime {
			exact++
		}
	}
	frac := float64(exact) / float64(len(tr.Jobs))
	if frac < 0.08 || frac > 0.30 {
		t.Fatalf("exact-estimate fraction = %v, want near 0.15", frac)
	}
}

func TestWidthDistributionShape(t *testing.T) {
	tr, err := Generate(CTC(), 20000, 9)
	if err != nil {
		t.Fatal(err)
	}
	serial := 0
	for _, j := range tr.Jobs {
		if j.Width == 1 {
			serial++
		}
	}
	frac := float64(serial) / float64(len(tr.Jobs))
	if math.Abs(frac-0.35) > 0.03 {
		t.Fatalf("serial fraction = %v, want ~0.35", frac)
	}
}

func TestShortBurstVsLongParallel(t *testing.T) {
	short, _ := Generate(ShortBurst(), 3000, 5)
	long, _ := Generate(LongParallel(), 3000, 5)
	var sMean, lMean float64
	for _, j := range short.Jobs {
		sMean += float64(j.Runtime)
	}
	for _, j := range long.Jobs {
		lMean += float64(j.Runtime)
	}
	sMean /= float64(len(short.Jobs))
	lMean /= float64(len(long.Jobs))
	if !(lMean > 10*sMean) {
		t.Fatalf("long-parallel mean runtime %v not >> short-burst %v", lMean, sMean)
	}
}

func TestGeneratePhased(t *testing.T) {
	tr, err := GeneratePhased([]Phase{
		{Cfg: ShortBurst(), Jobs: 50},
		{Cfg: LongParallel(), Jobs: 20},
		{Cfg: ShortBurst(), Jobs: 30},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 100 {
		t.Fatalf("phased jobs = %d, want 100", len(tr.Jobs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err) // also checks IDs unique and submits sorted across phases
	}
	if _, err := GeneratePhased(nil, 1); err == nil {
		t.Fatal("empty phase list accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	bad := CTC()
	bad.Processors = 0
	if _, err := Generate(bad, 10, 1); err == nil {
		t.Fatal("invalid config accepted")
	}
	if _, err := Generate(CTC(), -1, 1); err == nil {
		t.Fatal("negative count accepted")
	}
}

// Property: every generated trace validates and respects the configured
// machine size, for arbitrary seeds and sizes.
func TestGenerateProperty(t *testing.T) {
	f := func(seed uint64, n uint16) bool {
		tr, err := Generate(CTC(), int(n%300), seed)
		if err != nil {
			return false
		}
		if len(tr.Jobs) == 0 {
			return true
		}
		if tr.Validate() != nil {
			return false
		}
		for _, j := range tr.Jobs {
			if j.Width > tr.Processors {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGenerate1000(b *testing.B) {
	cfg := CTC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg, 1000, uint64(i)+1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDailyAmplitudeValidation(t *testing.T) {
	c := CTC()
	c.DailyAmplitude = 1.0
	if err := c.Validate(); err == nil {
		t.Fatal("amplitude 1.0 accepted")
	}
	c.DailyAmplitude = -0.1
	if err := c.Validate(); err == nil {
		t.Fatal("negative amplitude accepted")
	}
	c.DailyAmplitude = 0.9
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDailyCycleShiftsArrivals(t *testing.T) {
	c := CTC()
	c.DailyAmplitude = 0.85
	tr, err := Generate(c, 30000, 13)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count arrivals in the "day" half (06:00-18:00 of the cycle, around
	// the midday peak) versus the "night" half.
	day, night := 0, 0
	for _, j := range tr.Jobs {
		tod := j.Submit % 86400
		if tod >= 6*3600 && tod < 18*3600 {
			day++
		} else {
			night++
		}
	}
	if !(float64(day) > 1.5*float64(night)) {
		t.Fatalf("diurnal cycle too weak: %d day vs %d night arrivals", day, night)
	}
	// Without the cycle the halves are balanced.
	flat, err := Generate(CTC(), 30000, 13)
	if err != nil {
		t.Fatal(err)
	}
	day, night = 0, 0
	for _, j := range flat.Jobs {
		tod := j.Submit % 86400
		if tod >= 6*3600 && tod < 18*3600 {
			day++
		} else {
			night++
		}
	}
	ratio := float64(day) / float64(night)
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("flat workload unbalanced: day/night ratio %v", ratio)
	}
}

// Package workload synthesizes CTC-like job traces. The paper evaluates on
// the CTC trace from the Parallel Workloads Archive; that data file is not
// shippable here, so this generator produces a statistically similar
// workload (see DESIGN.md): 430 processors, exponential interarrivals with
// the paper's mean of 369 s, power-of-two-biased widths, log-normal
// runtimes capped at the CTC 18-hour limit, and user estimates that
// over-state runtimes by a log-normal factor (a small fraction of users
// estimates exactly). Real SWF files can be used instead via package swf.
package workload

import (
	"fmt"
	"math"

	"repro/internal/job"
	"repro/internal/stats"
)

// Config parameterizes the generator.
type Config struct {
	// Processors is the machine size (CTC batch partition: 430).
	Processors int
	// MeanInterarrival is the mean of the exponential interarrival time
	// in seconds (369 for CTC per the paper).
	MeanInterarrival float64
	// WidthValues/WidthWeights define the discrete width distribution.
	WidthValues  []int
	WidthWeights []float64
	// RunMu/RunSigma are the log-normal runtime parameters; runtimes are
	// clamped to [1, MaxRuntime].
	RunMu, RunSigma float64
	MaxRuntime      int64
	// ExactEstimateProb is the probability a user estimates exactly;
	// otherwise the estimate is Runtime times a log-normal factor >= 1
	// (EstFactorMu/EstFactorSigma), clamped to MaxRuntime and rounded up
	// to full minutes as batch systems require.
	ExactEstimateProb           float64
	EstFactorMu, EstFactorSigma float64
	// Users is the size of the simulated user community.
	Users int
	// DailyAmplitude in [0, 1) modulates the arrival rate over a 24 h
	// cycle (rate peaks mid-cycle, bottoms at the cycle boundary), the
	// day/night pattern production workloads show. 0 disables it.
	DailyAmplitude float64
}

// daySeconds is the diurnal cycle length.
const daySeconds = 86400

// rateWeight is the relative arrival rate at clock time t.
func (c Config) rateWeight(t int64) float64 {
	if c.DailyAmplitude == 0 {
		return 1
	}
	phase := 2 * math.Pi * float64(t%daySeconds) / daySeconds
	// Peak at midday (phase pi), trough at midnight (phase 0).
	return 1 - c.DailyAmplitude*math.Cos(phase)
}

// CTC returns the default CTC-like configuration.
func CTC() Config {
	return Config{
		Processors:        430,
		MeanInterarrival:  369,
		WidthValues:       []int{1, 2, 3, 4, 8, 16, 32, 64, 128, 256},
		WidthWeights:      []float64{35, 8, 3, 10, 12, 12, 9, 6, 3, 2},
		RunMu:             7.5, // median runtime ~1800 s
		RunSigma:          1.9,
		MaxRuntime:        64800, // CTC 18-hour limit
		ExactEstimateProb: 0.15,
		EstFactorMu:       0.9, // median over-estimation factor ~2.5
		EstFactorSigma:    0.9,
		Users:             60,
	}
}

// ShortBurst returns a configuration dominated by short sequential jobs
// (a parameter-study burst, the workload that favors SJF).
func ShortBurst() Config {
	c := CTC()
	c.MeanInterarrival = 30
	c.WidthValues = []int{1, 2, 4}
	c.WidthWeights = []float64{70, 20, 10}
	c.RunMu = 5.0 // median ~150 s
	c.RunSigma = 0.8
	return c
}

// LongParallel returns a configuration dominated by long, wide jobs (the
// workload that favors LJF).
func LongParallel() Config {
	c := CTC()
	c.MeanInterarrival = 1800
	c.WidthValues = []int{32, 64, 128, 256}
	c.WidthWeights = []float64{30, 35, 25, 10}
	c.RunMu = 9.5 // median ~13000 s
	c.RunSigma = 0.7
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Processors < 1:
		return fmt.Errorf("workload: processors %d < 1", c.Processors)
	case c.MeanInterarrival <= 0:
		return fmt.Errorf("workload: non-positive mean interarrival %v", c.MeanInterarrival)
	case len(c.WidthValues) == 0 || len(c.WidthValues) != len(c.WidthWeights):
		return fmt.Errorf("workload: width distribution malformed")
	case c.MaxRuntime < 1:
		return fmt.Errorf("workload: max runtime %d < 1", c.MaxRuntime)
	case c.ExactEstimateProb < 0 || c.ExactEstimateProb > 1:
		return fmt.Errorf("workload: exact-estimate probability %v outside [0,1]", c.ExactEstimateProb)
	case c.Users < 1:
		return fmt.Errorf("workload: users %d < 1", c.Users)
	case c.DailyAmplitude < 0 || c.DailyAmplitude >= 1:
		return fmt.Errorf("workload: daily amplitude %v outside [0, 1)", c.DailyAmplitude)
	}
	for _, w := range c.WidthValues {
		if w < 1 || w > c.Processors {
			return fmt.Errorf("workload: width %d outside [1, %d]", w, c.Processors)
		}
	}
	return nil
}

// Generate produces n jobs under cfg, deterministically from seed.
func Generate(cfg Config, n int, seed uint64) (*job.Trace, error) {
	return generate(cfg, n, 0, 1, stats.NewRand(seed))
}

// Phase is a workload regime for GeneratePhased.
type Phase struct {
	Cfg  Config
	Jobs int
}

// GeneratePhased concatenates several workload regimes into one trace,
// continuing the clock and job numbering across phase boundaries. This is
// how the "permanently changing job characteristics" the paper motivates
// dynP with are synthesized.
func GeneratePhased(phases []Phase, seed uint64) (*job.Trace, error) {
	if len(phases) == 0 {
		return nil, fmt.Errorf("workload: no phases")
	}
	r := stats.NewRand(seed)
	out := &job.Trace{Note: "synthetic-phased"}
	var clock int64
	nextID := 1
	for i, ph := range phases {
		t, err := generate(ph.Cfg, ph.Jobs, clock, nextID, r)
		if err != nil {
			return nil, fmt.Errorf("workload: phase %d: %v", i, err)
		}
		out.Jobs = append(out.Jobs, t.Jobs...)
		if len(t.Jobs) > 0 {
			clock = t.Jobs[len(t.Jobs)-1].Submit
			nextID = t.Jobs[len(t.Jobs)-1].ID + 1
		}
		if t.Processors > out.Processors {
			out.Processors = t.Processors
		}
	}
	return out, nil
}

func generate(cfg Config, n int, startClock int64, firstID int, r *stats.Rand) (*job.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("workload: negative job count %d", n)
	}
	t := &job.Trace{Processors: cfg.Processors, Note: "synthetic-ctc"}
	clock := startClock
	for i := 0; i < n; i++ {
		clock += int64(r.Exp(cfg.MeanInterarrival/cfg.rateWeight(clock))) + 1
		run := int64(r.LogNormal(cfg.RunMu, cfg.RunSigma))
		if run < 1 {
			run = 1
		}
		if run > cfg.MaxRuntime {
			run = cfg.MaxRuntime
		}
		est := run
		if r.Float64() >= cfg.ExactEstimateProb {
			factor := 1 + r.LogNormal(cfg.EstFactorMu, cfg.EstFactorSigma)
			est = int64(float64(run) * factor)
			// Batch users request full minutes.
			if rem := est % 60; rem != 0 {
				est += 60 - rem
			}
			if est > cfg.MaxRuntime {
				est = cfg.MaxRuntime
			}
			if est < run {
				est = run
			}
		}
		t.Jobs = append(t.Jobs, &job.Job{
			ID:       firstID + i,
			Submit:   clock,
			Width:    cfg.WidthValues[r.Choice(cfg.WidthWeights)],
			Estimate: est,
			Runtime:  run,
			User:     r.Intn(cfg.Users),
			Group:    r.Intn(5),
		})
	}
	return t, nil
}

// Package stats provides the deterministic random-number and distribution
// substrate used by the synthetic workload generator and the benchmark
// harness, plus small summary-statistics helpers.
//
// All randomness in the repository flows through *Rand so that simulations
// and benchmark tables are reproducible from a seed.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Rand is a small, fast, deterministic PRNG (xorshift64*). It deliberately
// does not use math/rand so the sequence is stable across Go releases.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed (0 is remapped to a fixed
// non-zero constant because xorshift has an all-zero fixed point).
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("stats: Intn(%d)", n))
	}
	return int(r.Uint64() % uint64(n))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box–Muller).
func (r *Rand) Norm(mu, sigma float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mu + sigma*z
}

// LogNormal returns exp(Norm(mu, sigma)).
func (r *Rand) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Norm(mu, sigma))
}

// Choice draws an index according to the given non-negative weights.
// It panics if all weights are zero or the slice is empty.
func (r *Rand) Choice(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: Choice with zero total weight")
	}
	x := r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Summary holds basic descriptive statistics of a float sample.
type Summary struct {
	N              int
	Mean, Std      float64
	Min, Max       float64
	Median         float64
	P90            float64
	Sum            float64
	absDevReserved struct{} // prevents unkeyed literals; keep the struct extensible
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Quantile(sorted, 0.5)
	s.P90 = Quantile(sorted, 0.9)
	return s
}

// Histogram counts samples into fixed bucket boundaries: bucket i counts
// values in [Bounds[i-1], Bounds[i]) with an implicit (-inf, Bounds[0])
// first and [Bounds[last], +inf) final bucket.
type Histogram struct {
	Bounds []float64
	Counts []int
	Total  int
}

// NewHistogram creates a histogram over the given ascending boundaries.
// It panics on empty or unsorted boundaries.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one boundary")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram boundaries not strictly ascending")
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int, len(bounds)+1)}
}

// Add counts one sample.
func (h *Histogram) Add(x float64) {
	i := sort.SearchFloat64s(h.Bounds, x)
	// SearchFloat64s returns the first bound >= x; values equal to a bound
	// belong to the bucket starting at that bound.
	if i < len(h.Bounds) && h.Bounds[i] == x {
		i++
	}
	h.Counts[i]++
	h.Total++
}

// Fraction returns the share of samples in bucket i.
func (h *Histogram) Fraction(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Quantile returns the q-quantile (0 <= q <= 1) of an already sorted
// sample, using linear interpolation. It panics on an empty sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical sequences")
	}
}

func TestZeroSeedRemapped(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRangeAndPanic(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(13)
		if v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestExpMean(t *testing.T) {
	r := NewRand(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(369)
	}
	mean := sum / n
	if math.Abs(mean-369) > 5 {
		t.Fatalf("Exp mean = %v, want ~369", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRand(13)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		x := r.Norm(5, 2)
		sum += x
		ss += x * x
	}
	mean := sum / n
	v := ss/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("Norm mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(v)-2) > 0.05 {
		t.Fatalf("Norm std = %v, want ~2", math.Sqrt(v))
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 1000; i++ {
		if r.LogNormal(2, 1.5) <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
}

func TestChoiceDistribution(t *testing.T) {
	r := NewRand(19)
	counts := [3]int{}
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	if frac := float64(counts[2]) / n; math.Abs(frac-0.7) > 0.02 {
		t.Fatalf("Choice weight-7 fraction = %v, want ~0.7", frac)
	}
	if frac := float64(counts[0]) / n; math.Abs(frac-0.1) > 0.02 {
		t.Fatalf("Choice weight-1 fraction = %v, want ~0.1", frac)
	}
}

func TestChoicePanics(t *testing.T) {
	r := NewRand(1)
	for _, w := range [][]float64{{}, {0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Choice(%v) did not panic", w)
				}
			}()
			r.Choice(w)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(23)
	f := func(n uint8) bool {
		m := int(n % 50)
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return len(p) == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Sum != 15 {
		t.Fatalf("bad summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("Std = %v, want sqrt(2.5)", s.Std)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary: %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// Property: Summarize Min <= Median <= Max and Min <= Mean <= Max.
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			// Keep magnitudes small enough that sums of squares cannot
			// overflow; Summarize is used on metric values, not extremes.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(2, 4, 8)
	for _, x := range []float64{1, 2, 3, 4, 7, 8, 100} {
		h.Add(x)
	}
	// Buckets: (-inf,2) (2,4) wait: [2,4) [4,8) [8,inf)
	want := []int{1, 2, 2, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, h.Counts[i], w, h.Counts)
		}
	}
	if h.Total != 7 {
		t.Fatalf("total = %d", h.Total)
	}
	if f := h.Fraction(1); f != 2.0/7.0 {
		t.Fatalf("Fraction(1) = %v", f)
	}
	if (&Histogram{Bounds: []float64{1}, Counts: make([]int, 2)}).Fraction(0) != 0 {
		t.Fatal("empty histogram fraction not 0")
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, bad := range [][]float64{{}, {3, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("NewHistogram(%v) did not panic", bad)
				}
			}()
			NewHistogram(bad...)
		}()
	}
}

// Property: histogram buckets partition every sample exactly once.
func TestHistogramPartitionProperty(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(0, 10, 100)
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) {
				continue
			}
			h.Add(x)
			n++
		}
		sum := 0
		for _, c := range h.Counts {
			sum += c
		}
		return sum == n && h.Total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

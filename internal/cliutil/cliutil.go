// Package cliutil holds the small pieces the command-line binaries
// share: opening a buffered JSONL event tracer and making sure it is
// flushed on every exit path, including SIGINT/SIGTERM. Long
// simulations and solver runs are exactly the processes users interrupt
// with ^C, and a killed process with an unflushed bufio writer silently
// truncates its trace — so each binary routes its cleanup through here
// instead of hand-rolling the signal handling.
package cliutil

import (
	"bufio"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"

	"repro/internal/obs"
)

// OpenTracer opens path for a buffered JSONL obs.Tracer. The returned
// flush reports any tracer write error to stderr (prefixed with name),
// flushes the buffer and closes the file; it is idempotent, so it can
// be deferred and also handed to ExitOnSignal. An empty path returns a
// nil tracer (the obs package treats nil as disabled) and a no-op
// flush.
func OpenTracer(name, path string) (*obs.Tracer, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	tracer := obs.NewTracer(bw)
	var once sync.Once
	flush := func() {
		once.Do(func() {
			if err := tracer.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace: %v\n", name, err)
			}
			if err := bw.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: trace flush: %v\n", name, err)
			}
			f.Close()
		})
	}
	return tracer, flush, nil
}

// ExitOnSignal installs a SIGINT/SIGTERM handler that runs cleanup and
// exits with the conventional 128+signal status. Binaries with their
// own shutdown sequence (the schedd daemon drains instead of exiting)
// should handle signals themselves and only share the flush func.
func ExitOnSignal(cleanup func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-ch
		if cleanup != nil {
			cleanup()
		}
		code := 128 + 2 // SIGINT
		if sig == syscall.SIGTERM {
			code = 128 + 15
		}
		os.Exit(code)
	}()
}

package cliutil

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestOpenTracerDisabled(t *testing.T) {
	tr, flush, err := OpenTracer("test", "")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Enabled() {
		t.Error("empty path returned an enabled tracer")
	}
	flush() // must be a callable no-op
	flush()
}

func TestOpenTracerWritesAndFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	tr, flush, err := OpenTracer("test", path)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Enabled() {
		t.Fatal("tracer not enabled")
	}
	tr.Emit("test.event")

	// Before the flush the event may still sit in the bufio buffer; after
	// it the file must hold the event, and a second flush must be a
	// harmless no-op (the signal handler and the normal exit path can
	// both call it).
	flush()
	flush()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "test.event") {
		t.Errorf("trace file %q does not contain the emitted event", b)
	}
}

func TestOpenTracerBadPath(t *testing.T) {
	if _, _, err := OpenTracer("test", filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl")); err == nil {
		t.Error("OpenTracer into a missing directory succeeded")
	}
}

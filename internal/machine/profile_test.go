package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestNewProfile(t *testing.T) {
	p := New(16, 0)
	if p.Total() != 16 || p.Origin() != 0 || p.FreeAt(0) != 16 || p.FreeAt(1<<40) != 16 {
		t.Fatalf("fresh profile wrong: %+v", p.Steps())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, 0)
}

func TestReserveAndFreeAt(t *testing.T) {
	p := New(10, 0)
	if err := p.Reserve(5, 15, 4); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    int64
		want int
	}{{0, 10}, {4, 10}, {5, 6}, {14, 6}, {15, 10}, {100, 10}}
	for _, c := range cases {
		if got := p.FreeAt(c.t); got != c.want {
			t.Fatalf("FreeAt(%d) = %d, want %d", c.t, got, c.want)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReserveOverlap(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 0, 10, 4)
	mustReserve(t, p, 5, 20, 6)
	if got := p.FreeAt(7); got != 0 {
		t.Fatalf("FreeAt(7) = %d, want 0", got)
	}
	if err := p.Reserve(6, 8, 1); err == nil {
		t.Fatal("overbooking accepted")
	}
	// Failed reserve must not modify the profile.
	if got := p.FreeAt(12); got != 4 {
		t.Fatalf("failed reserve mutated profile: FreeAt(12) = %d", got)
	}
}

func TestReserveErrors(t *testing.T) {
	p := New(10, 100)
	if err := p.Reserve(50, 60, 1); err == nil {
		t.Fatal("reserve before origin accepted")
	}
	if err := p.Reserve(200, 200, 1); err == nil {
		t.Fatal("empty reservation accepted")
	}
	if err := p.Reserve(200, 210, -1); err == nil {
		t.Fatal("negative width accepted")
	}
}

func TestReleaseInverseOfReserve(t *testing.T) {
	p := New(8, 0)
	mustReserve(t, p, 10, 30, 5)
	mustReserve(t, p, 20, 40, 3)
	if err := p.Release(10, 30, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.Release(20, 40, 3); err != nil {
		t.Fatal(err)
	}
	steps := p.Steps()
	if len(steps) != 1 || steps[0].Free != 8 {
		t.Fatalf("release did not restore profile: %+v", steps)
	}
}

func TestReleaseOverflow(t *testing.T) {
	p := New(8, 0)
	if err := p.Release(0, 10, 1); err == nil {
		t.Fatal("release beyond machine size accepted")
	}
}

func TestEarliestFit(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 0, 100, 8) // only 2 free until 100

	if s, ok := p.EarliestFit(0, 50, 2); !ok || s != 0 {
		t.Fatalf("narrow job: got (%d,%v), want (0,true)", s, ok)
	}
	if s, ok := p.EarliestFit(0, 50, 3); !ok || s != 100 {
		t.Fatalf("wide job: got (%d,%v), want (100,true)", s, ok)
	}
	if _, ok := p.EarliestFit(0, 50, 11); ok {
		t.Fatal("job wider than machine fitted")
	}
	// earliest inside a blocked region
	if s, ok := p.EarliestFit(40, 10, 5); !ok || s != 100 {
		t.Fatalf("blocked start: got (%d,%v), want (100,true)", s, ok)
	}
	// earliest before origin is clamped
	if s, ok := p.EarliestFit(-50, 10, 2); !ok || s != 0 {
		t.Fatalf("pre-origin start: got (%d,%v), want (0,true)", s, ok)
	}
}

func TestEarliestFitGap(t *testing.T) {
	// A hole between two reservations that is too short for the job:
	// the search must skip over it.
	p := New(4, 0)
	mustReserve(t, p, 0, 100, 3)   // 1 free
	mustReserve(t, p, 150, 300, 3) // 1 free again
	// width 2 fits in [100,150) only for jobs <= 50s
	if s, ok := p.EarliestFit(0, 50, 2); !ok || s != 100 {
		t.Fatalf("short job: got (%d,%v), want (100,true)", s, ok)
	}
	if s, ok := p.EarliestFit(0, 51, 2); !ok || s != 300 {
		t.Fatalf("long job: got (%d,%v), want (300,true)", s, ok)
	}
}

func TestEarliestFitDurationPanic(t *testing.T) {
	p := New(4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("zero duration did not panic")
		}
	}()
	p.EarliestFit(0, 0, 1)
}

func TestUtilized(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 10, 20, 4)
	if got := p.Utilized(0, 30); got != 40 {
		t.Fatalf("Utilized = %d, want 40", got)
	}
	if got := p.Utilized(15, 18); got != 12 {
		t.Fatalf("partial Utilized = %d, want 12", got)
	}
	if got := p.Utilized(30, 10); got != 0 {
		t.Fatalf("inverted window Utilized = %d, want 0", got)
	}
}

func TestClone(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 0, 10, 5)
	c := p.Clone()
	mustReserve(t, c, 0, 10, 5)
	if p.FreeAt(5) != 5 {
		t.Fatal("clone shares memory with original")
	}
	if c.FreeAt(5) != 0 {
		t.Fatal("clone reserve failed")
	}
}

func mustReserve(t *testing.T, p *Profile, start, end int64, w int) {
	t.Helper()
	if err := p.Reserve(start, end, w); err != nil {
		t.Fatal(err)
	}
}

// Property: after any sequence of successful reservations, Validate holds
// and FreeAt never goes negative; EarliestFit results can actually be
// reserved.
func TestProfileProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := stats.NewRand(seed)
		p := New(32, 0)
		for k := 0; k < int(n%40); k++ {
			dur := int64(r.Intn(500) + 1)
			w := r.Intn(32) + 1
			earliest := int64(r.Intn(1000))
			s, ok := p.EarliestFit(earliest, dur, w)
			if !ok {
				return false // width <= 32 always fits eventually
			}
			if s < earliest {
				return false
			}
			if err := p.Reserve(s, s+dur, w); err != nil {
				return false // EarliestFit promised a fit
			}
			if err := p.Validate(); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: EarliestFit returns the *earliest* feasible start: starting
// one second earlier must be infeasible (unless already at the earliest
// bound).
func TestEarliestFitMinimality(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := New(16, 0)
		for k := 0; k < 15; k++ {
			dur := int64(r.Intn(200) + 1)
			w := r.Intn(16) + 1
			s, _ := p.EarliestFit(0, dur, w)
			p.Reserve(s, s+dur, w)
		}
		dur := int64(r.Intn(200) + 1)
		w := r.Intn(16) + 1
		s, ok := p.EarliestFit(0, dur, w)
		if !ok {
			return false
		}
		if s == 0 {
			return true
		}
		// A start at s-1 must fail: some second in [s-1, s-1+dur) lacks w.
		for tt := s - 1; tt < s-1+dur; tt++ {
			if p.FreeAt(tt) < w {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryFromRunning(t *testing.T) {
	running := []Running{
		{JobID: 1, Width: 4, End: 100},
		{JobID: 2, Width: 2, End: 100}, // same end: single time stamp
		{JobID: 3, Width: 3, End: 250},
		{JobID: 4, Width: 1, End: 5}, // already finished
	}
	h, err := HistoryFromRunning(10, 10, running)
	if err != nil {
		t.Fatal(err)
	}
	want := History{{10, 1}, {100, 7}, {250, 10}}
	if len(h) != len(want) {
		t.Fatalf("history length %d, want %d: %+v", len(h), len(want), h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("step %d = %+v, want %+v", i, h[i], want[i])
		}
	}
	if !h.Monotone() {
		t.Fatal("history not monotone")
	}
}

func TestHistoryErrors(t *testing.T) {
	if _, err := HistoryFromRunning(4, 0, []Running{{JobID: 1, Width: 5, End: 10}}); err == nil {
		t.Fatal("overcommitted running set accepted")
	}
	if _, err := HistoryFromRunning(4, 0, []Running{{JobID: 1, Width: 0, End: 10}}); err == nil {
		t.Fatal("zero-width running job accepted")
	}
}

func TestHistoryProfileRoundTrip(t *testing.T) {
	running := []Running{{JobID: 1, Width: 4, End: 100}, {JobID: 2, Width: 2, End: 60}}
	h, err := HistoryFromRunning(8, 0, running)
	if err != nil {
		t.Fatal(err)
	}
	p := h.Profile(8)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.FreeAt(0) != 2 || p.FreeAt(60) != 4 || p.FreeAt(100) != 8 {
		t.Fatalf("profile from history wrong: %+v", p.Steps())
	}
}

func TestHistoryString(t *testing.T) {
	h := History{{0, 3}, {50, 8}}
	s := h.String()
	if s == "" || !containsAll(s, "time [sec.]", "free resources", "50", "8") {
		t.Fatalf("bad history rendering:\n%s", s)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, x := range subs {
		found := false
		for i := 0; i+len(x) <= len(s); i++ {
			if s[i:i+len(x)] == x {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func BenchmarkEarliestFit(b *testing.B) {
	r := stats.NewRand(1)
	p := New(430, 0)
	for k := 0; k < 200; k++ {
		dur := int64(r.Intn(5000) + 60)
		w := r.Intn(64) + 1
		s, _ := p.EarliestFit(0, dur, w)
		p.Reserve(s, s+dur, w)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EarliestFit(0, 3600, 32)
	}
}

func BenchmarkReserveRelease(b *testing.B) {
	p := New(430, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Reserve(100, 200, 10)
		p.Release(100, 200, 10)
	}
}

func TestMinFree(t *testing.T) {
	p := New(10, 0)
	mustReserve(t, p, 10, 20, 4) // free 6 on [10,20)
	mustReserve(t, p, 15, 30, 3) // free 3 on [15,20), 7 on [20,30)
	cases := []struct {
		from, to int64
		want     int
	}{
		{0, 10, 10},
		{0, 11, 6},
		{10, 15, 6},
		{10, 20, 3},
		{0, 100, 3},
		{20, 40, 7},
		{30, 40, 10},
		{-5, 5, 10}, // clamped to origin
	}
	for _, c := range cases {
		if got := p.MinFree(c.from, c.to); got != c.want {
			t.Fatalf("MinFree(%d, %d) = %d, want %d", c.from, c.to, got, c.want)
		}
	}
}

func TestMinFreePanicsOnEmptyWindow(t *testing.T) {
	p := New(4, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("empty window did not panic")
		}
	}()
	p.MinFree(10, 10)
}

// Property: MinFree over [a,b) equals the minimum of FreeAt over every
// second in the window.
func TestMinFreeMatchesPointwise(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := New(12, 0)
		for k := 0; k < 6; k++ {
			dur := int64(r.Intn(50) + 1)
			w := r.Intn(12) + 1
			s, _ := p.EarliestFit(int64(r.Intn(100)), dur, w)
			p.Reserve(s, s+dur, w)
		}
		from := int64(r.Intn(150))
		to := from + int64(r.Intn(60)+1)
		want := 12
		for tt := from; tt < to; tt++ {
			if f := p.FreeAt(tt); f < want {
				want = f
			}
		}
		return p.MinFree(from, to) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

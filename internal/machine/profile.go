// Package machine models the HPC machine and its future resource usage.
//
// The central type is Profile, a step function over time giving the number
// of free processors. Planning-based resource management systems (the
// paper's CCS) plan the present and future resource usage: every running
// and planned job is a reservation that lowers the free capacity over its
// interval. The "machine history" of the paper (Figure 1) — the list of
// (time stamp, resources free from that time on) tuples induced by the
// already-running jobs — is exactly the profile restricted to running
// jobs, and is monotone non-decreasing in free resources.
package machine

import (
	"fmt"
	"math"
	"sort"
)

// Horizon is the sentinel end time of the last profile segment.
const Horizon = int64(math.MaxInt64)

// Step is one segment boundary of a Profile: from Time on (until the next
// step) Free processors are available.
type Step struct {
	Time int64
	Free int
}

// Profile is the free-capacity step function of a machine. The zero value
// is not usable; construct profiles with New.
//
// Invariants: steps are strictly increasing in Time, 0 <= Free <= total,
// consecutive steps have different Free values, and the first step is at
// the profile origin.
type Profile struct {
	total int
	steps []Step // steps[i] valid on [steps[i].Time, steps[i+1].Time)
}

// New returns a profile for a machine with total processors, fully free
// from time origin onwards.
func New(total int, origin int64) *Profile {
	if total < 1 {
		panic(fmt.Sprintf("machine: non-positive machine size %d", total))
	}
	return &Profile{total: total, steps: []Step{{Time: origin, Free: total}}}
}

// Total returns the machine size M.
func (p *Profile) Total() int { return p.total }

// Origin returns the first time covered by the profile.
func (p *Profile) Origin() int64 { return p.steps[0].Time }

// Clone returns an independent copy of the profile. Policies build their
// candidate schedules on clones so that the live profile is untouched.
func (p *Profile) Clone() *Profile {
	cp := &Profile{total: p.total, steps: make([]Step, len(p.steps))}
	copy(cp.steps, p.steps)
	return cp
}

// Steps returns a copy of the profile's segments (for display and tests).
func (p *Profile) Steps() []Step {
	return append([]Step(nil), p.steps...)
}

// segmentAt returns the index of the segment containing time t.
// t must be >= Origin().
func (p *Profile) segmentAt(t int64) int {
	// sort.Search for the first step with Time > t, minus one.
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].Time > t })
	if i == 0 {
		panic(fmt.Sprintf("machine: time %d before profile origin %d", t, p.Origin()))
	}
	return i - 1
}

// FreeAt returns the number of free processors at time t.
func (p *Profile) FreeAt(t int64) int {
	return p.steps[p.segmentAt(t)].Free
}

// splitAt ensures a step boundary exists exactly at time t and returns its
// index. t must be >= Origin().
func (p *Profile) splitAt(t int64) int {
	i := p.segmentAt(t)
	if p.steps[i].Time == t {
		return i
	}
	p.steps = append(p.steps, Step{})
	copy(p.steps[i+2:], p.steps[i+1:])
	p.steps[i+1] = Step{Time: t, Free: p.steps[i].Free}
	return i + 1
}

// normalize merges adjacent segments with equal Free values.
func (p *Profile) normalize() {
	out := p.steps[:1]
	for _, s := range p.steps[1:] {
		if s.Free != out[len(out)-1].Free {
			out = append(out, s)
		}
	}
	p.steps = out
}

// Reserve allocates width processors on [start, end). It returns an error
// (and leaves the profile unchanged) if the capacity would go negative
// anywhere in the interval.
func (p *Profile) Reserve(start, end int64, width int) error {
	if width < 0 {
		return fmt.Errorf("machine: negative width %d", width)
	}
	if end <= start {
		return fmt.Errorf("machine: empty reservation [%d, %d)", start, end)
	}
	if start < p.Origin() {
		return fmt.Errorf("machine: reservation start %d before profile origin %d", start, p.Origin())
	}
	// Check first.
	for i := p.segmentAt(start); i < len(p.steps) && p.steps[i].Time < end; i++ {
		if p.steps[i].Free < width {
			return fmt.Errorf("machine: only %d processors free at %d, need %d",
				p.steps[i].Free, maxi64(start, p.steps[i].Time), width)
		}
	}
	lo := p.splitAt(start)
	hi := len(p.steps) // reservation extends to the end of the profile
	if end != Horizon {
		hi = p.splitAt(end)
	}
	for i := lo; i < hi; i++ {
		p.steps[i].Free -= width
	}
	p.normalize()
	return nil
}

// Release is the inverse of Reserve: it frees width processors on
// [start, end). It returns an error if the capacity would exceed the
// machine size anywhere in the interval.
func (p *Profile) Release(start, end int64, width int) error {
	if width < 0 {
		return fmt.Errorf("machine: negative width %d", width)
	}
	if end <= start {
		return fmt.Errorf("machine: empty release [%d, %d)", start, end)
	}
	if start < p.Origin() {
		return fmt.Errorf("machine: release start %d before profile origin %d", start, p.Origin())
	}
	for i := p.segmentAt(start); i < len(p.steps) && p.steps[i].Time < end; i++ {
		if p.steps[i].Free+width > p.total {
			return fmt.Errorf("machine: release would exceed machine size at %d",
				maxi64(start, p.steps[i].Time))
		}
	}
	lo := p.splitAt(start)
	hi := len(p.steps)
	if end != Horizon {
		hi = p.splitAt(end)
	}
	for i := lo; i < hi; i++ {
		p.steps[i].Free += width
	}
	p.normalize()
	return nil
}

// EarliestFit returns the earliest start time >= earliest at which width
// processors are free for dur consecutive seconds. It returns ok=false
// only if width exceeds the machine size (any narrower job eventually fits
// because all reservations are finite).
func (p *Profile) EarliestFit(earliest, dur int64, width int) (start int64, ok bool) {
	if width > p.total {
		return 0, false
	}
	if dur <= 0 {
		panic(fmt.Sprintf("machine: non-positive duration %d", dur))
	}
	if earliest < p.Origin() {
		earliest = p.Origin()
	}
	cand := earliest
	i := p.segmentAt(cand)
	for {
		// Verify [cand, cand+dur) fits; on failure restart after the
		// blocking segment.
		j := i
		for {
			if p.steps[j].Free < width {
				if j+1 >= len(p.steps) {
					// Blocking segment extends to the horizon: cannot
					// happen for valid profiles (last segment is fully
					// free once all finite reservations end), but guard
					// against malformed input.
					return 0, false
				}
				cand = p.steps[j+1].Time
				i = j + 1
				break
			}
			if j+1 >= len(p.steps) || p.steps[j+1].Time >= cand+dur {
				return cand, true // window fits entirely
			}
			j++
		}
	}
}

// MinFree returns the minimum free capacity anywhere in [from, to).
// It panics on an empty interval. Times before the origin are clamped.
func (p *Profile) MinFree(from, to int64) int {
	if to <= from {
		panic(fmt.Sprintf("machine: empty window [%d, %d)", from, to))
	}
	if from < p.Origin() {
		from = p.Origin()
		if to <= from {
			return p.steps[0].Free
		}
	}
	min := p.total
	for i := p.segmentAt(from); i < len(p.steps) && p.steps[i].Time < to; i++ {
		if p.steps[i].Free < min {
			min = p.steps[i].Free
		}
	}
	return min
}

// Utilized returns the integral of (total - free) over [from, to), i.e.
// the reserved processor-seconds in the window.
func (p *Profile) Utilized(from, to int64) int64 {
	if to <= from {
		return 0
	}
	if from < p.Origin() {
		from = p.Origin()
	}
	var used int64
	for i := p.segmentAt(from); i < len(p.steps); i++ {
		segStart := maxi64(from, p.steps[i].Time)
		segEnd := to
		if i+1 < len(p.steps) && p.steps[i+1].Time < to {
			segEnd = p.steps[i+1].Time
		}
		if segEnd <= segStart {
			break
		}
		used += int64(p.total-p.steps[i].Free) * (segEnd - segStart)
	}
	return used
}

// Validate checks the profile invariants.
func (p *Profile) Validate() error {
	if len(p.steps) == 0 {
		return fmt.Errorf("machine: empty profile")
	}
	for i, s := range p.steps {
		if s.Free < 0 || s.Free > p.total {
			return fmt.Errorf("machine: step %d free %d outside [0, %d]", i, s.Free, p.total)
		}
		if i > 0 {
			if s.Time <= p.steps[i-1].Time {
				return fmt.Errorf("machine: steps not strictly increasing at %d", i)
			}
			if s.Free == p.steps[i-1].Free {
				return fmt.Errorf("machine: unmerged equal steps at %d", i)
			}
		}
	}
	if p.steps[len(p.steps)-1].Free != p.total {
		return fmt.Errorf("machine: profile does not end fully free (open-ended reservation)")
	}
	return nil
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package machine

import (
	"fmt"
	"sort"
	"strings"
)

// Running describes an already-running job as the scheduler sees it: it
// occupies Width processors until End (computed from the *estimated*
// duration, as the paper prescribes: "the estimated duration of already
// running jobs has to be used for generating the time stamps").
type Running struct {
	JobID int
	Width int
	End   int64 // first second the processors are free again
}

// History is the paper's machine history (Figure 1): a list of tuples
// (time stamp, number of resources free from that time on). The number of
// free resources is monotone non-decreasing because only running jobs are
// considered.
type History []Step

// HistoryFromRunning derives the machine history at time now for a machine
// with total processors and the given running jobs. Jobs whose End is <=
// now are ignored. If more than one job ends at the same time a single
// time stamp is emitted, as in the paper.
func HistoryFromRunning(total int, now int64, running []Running) (History, error) {
	busy := 0
	ends := make(map[int64]int) // end time -> width released
	for _, r := range running {
		if r.Width < 1 {
			return nil, fmt.Errorf("machine: running job %d has width %d", r.JobID, r.Width)
		}
		if r.End <= now {
			continue
		}
		busy += r.Width
		ends[r.End] += r.Width
	}
	if busy > total {
		return nil, fmt.Errorf("machine: running jobs occupy %d > %d processors", busy, total)
	}
	h := History{{Time: now, Free: total - busy}}
	times := make([]int64, 0, len(ends))
	for t := range ends {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	free := total - busy
	for _, t := range times {
		free += ends[t]
		h = append(h, Step{Time: t, Free: free})
	}
	return h, nil
}

// Profile converts the history into a capacity profile suitable for
// planning waiting jobs on top of the running ones.
func (h History) Profile(total int) *Profile {
	p := &Profile{total: total, steps: append([]Step(nil), h...)}
	p.normalize()
	return p
}

// Monotone reports whether free resources never decrease over the history,
// which must hold for any history derived from running jobs only.
func (h History) Monotone() bool {
	for i := 1; i < len(h); i++ {
		if h[i].Free < h[i-1].Free {
			return false
		}
	}
	return true
}

// String renders the history as the two-column table of Figure 1.
func (h History) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%12s  %14s\n", "time [sec.]", "free resources")
	for _, s := range h {
		fmt.Fprintf(&b, "%12d  %14d\n", s.Time, s.Free)
	}
	return b.String()
}

package dynp

import (
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/policy"
	"repro/internal/schedule"
	"repro/internal/stats"
)

func j(id int, submit int64, width int, est int64) *job.Job {
	return &job.Job{ID: id, Submit: submit, Width: width, Estimate: est, Runtime: est}
}

func evalsWith(values ...float64) []Evaluation {
	ps := policy.Standard()
	evals := make([]Evaluation, len(values))
	for i, v := range values {
		evals[i] = Evaluation{Policy: ps[i], Value: v, Schedule: &schedule.Schedule{Policy: ps[i].Name()}}
	}
	return evals
}

func TestSimpleDeciderPicksMin(t *testing.T) {
	d := SimpleDecider{}
	got := d.Decide(metrics.SLDwA{}, policy.FCFS{}, evalsWith(3, 1, 2))
	if got.Name() != "SJF" {
		t.Fatalf("got %s, want SJF", got.Name())
	}
}

func TestSimpleDeciderMaximizeMetric(t *testing.T) {
	d := SimpleDecider{}
	got := d.Decide(metrics.Utilization{}, policy.FCFS{}, evalsWith(0.2, 0.9, 0.5))
	if got.Name() != "SJF" {
		t.Fatalf("got %s, want SJF (highest utilization)", got.Name())
	}
}

// The four wrong decisions of the simple decider ([14]): ties are resolved
// toward FCFS in three cases and toward SJF in one, although the old
// policy should be kept. The advanced decider stays with the old policy.
func TestDeciderWrongTieCases(t *testing.T) {
	m := metrics.SLDwA{}
	cases := []struct {
		name         string
		old          policy.Policy
		values       []float64 // FCFS, SJF, LJF
		simpleWant   string
		advancedWant string
	}{
		{"FCFS==SJF best, old SJF", policy.SJF{}, []float64{1, 1, 2}, "FCFS", "SJF"},
		{"FCFS==LJF best, old LJF", policy.LJF{}, []float64{1, 2, 1}, "FCFS", "LJF"},
		{"all equal, old LJF", policy.LJF{}, []float64{1, 1, 1}, "FCFS", "LJF"},
		{"SJF==LJF best, old LJF", policy.LJF{}, []float64{2, 1, 1}, "SJF", "LJF"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := (SimpleDecider{}).Decide(m, c.old, evalsWith(c.values...)); got.Name() != c.simpleWant {
				t.Fatalf("simple: got %s, want %s", got.Name(), c.simpleWant)
			}
			if got := (AdvancedDecider{}).Decide(m, c.old, evalsWith(c.values...)); got.Name() != c.advancedWant {
				t.Fatalf("advanced: got %s, want %s", got.Name(), c.advancedWant)
			}
		})
	}
}

func TestAdvancedDeciderSwitchesOnStrictImprovement(t *testing.T) {
	got := (AdvancedDecider{}).Decide(metrics.SLDwA{}, policy.FCFS{}, evalsWith(2, 1, 3))
	if got.Name() != "SJF" {
		t.Fatalf("advanced refused a strict improvement: got %s", got.Name())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, metrics.SLDwA{}, SimpleDecider{}); err == nil {
		t.Fatal("empty policy list accepted")
	}
	if _, err := New([]policy.Policy{policy.FCFS{}, policy.FCFS{}}, metrics.SLDwA{}, SimpleDecider{}); err == nil {
		t.Fatal("duplicate policies accepted")
	}
	if _, err := New(policy.Standard(), nil, SimpleDecider{}); err == nil {
		t.Fatal("nil metric accepted")
	}
	if _, err := New(policy.Standard(), metrics.SLDwA{}, nil); err == nil {
		t.Fatal("nil decider accepted")
	}
	s, err := New(policy.Standard(), metrics.SLDwA{}, SimpleDecider{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Current().Name() != "FCFS" {
		t.Fatalf("initial policy %s, want FCFS", s.Current().Name())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(nil, metrics.SLDwA{}, SimpleDecider{})
}

func TestStepSwitchesToSJF(t *testing.T) {
	// Saturated 2-proc machine with one huge and three tiny jobs: SJF has
	// a far better SLDwA than FCFS, so the first step must switch.
	s := MustNew(policy.Standard(), metrics.SLDwA{}, SimpleDecider{})
	base := machine.New(2, 0)
	waiting := []*job.Job{
		j(1, 0, 2, 100000), j(2, 1, 2, 10), j(3, 2, 2, 10), j(4, 3, 2, 10),
	}
	res, err := s.Step(10, base, waiting)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen.Name() != "SJF" || !res.Switched {
		t.Fatalf("chose %s (switched=%v), want SJF switch", res.Chosen.Name(), res.Switched)
	}
	if s.Current().Name() != "SJF" || s.Switches() != 1 || s.Steps() != 1 {
		t.Fatalf("scheduler state wrong: current=%s switches=%d steps=%d",
			s.Current().Name(), s.Switches(), s.Steps())
	}
	if res.Schedule.Policy != "SJF" {
		t.Fatalf("result schedule from %s, want SJF", res.Schedule.Policy)
	}
	if res.Best().Value != (metrics.SLDwA{}).Eval(res.Schedule) {
		t.Fatal("Best() does not match chosen schedule value")
	}
}

func TestStepEmptyQueue(t *testing.T) {
	s := MustNew(policy.Standard(), metrics.SLDwA{}, AdvancedDecider{})
	base := machine.New(4, 0)
	res, err := s.Step(0, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All values are 0; advanced decider stays with FCFS.
	if res.Chosen.Name() != "FCFS" || res.Switched {
		t.Fatalf("empty-queue step switched to %s", res.Chosen.Name())
	}
}

func TestStepErrorPropagates(t *testing.T) {
	s := MustNew(policy.Standard(), metrics.SLDwA{}, SimpleDecider{})
	base := machine.New(2, 0)
	if _, err := s.Step(0, base, []*job.Job{j(1, 0, 5, 10)}); err == nil {
		t.Fatal("over-wide job did not error")
	}
}

func TestReschedule(t *testing.T) {
	s := MustNew([]policy.Policy{policy.LJF{}}, metrics.SLDwA{}, SimpleDecider{})
	base := machine.New(4, 0)
	sch, err := s.Reschedule(5, base, []*job.Job{j(1, 0, 2, 10)})
	if err != nil {
		t.Fatal(err)
	}
	if sch.Policy != "LJF" || s.Steps() != 0 {
		t.Fatalf("Reschedule used %s or counted a step (%d)", sch.Policy, s.Steps())
	}
}

// Property: the decider always returns one of the evaluated policies, the
// chosen value is never beaten by any other evaluation, and the advanced
// decider never switches without a strict improvement over the old policy.
func TestDeciderProperties(t *testing.T) {
	m := metrics.SLDwA{}
	ps := policy.Standard()
	f := func(a, b, c uint16, oldIdx uint8) bool {
		vals := []float64{float64(a % 5), float64(b % 5), float64(c % 5)}
		old := ps[int(oldIdx)%3]
		for _, d := range []Decider{SimpleDecider{}, AdvancedDecider{}} {
			got := d.Decide(m, old, evalsWith(vals...))
			found := -1
			for i, p := range ps {
				if p.Name() == got.Name() {
					found = i
				}
			}
			if found < 0 {
				return false
			}
			for _, v := range vals {
				if metrics.Better(m, v, vals[found]) {
					return false // chosen policy was beaten
				}
			}
		}
		adv := (AdvancedDecider{}).Decide(m, old, evalsWith(vals...))
		if adv.Name() != old.Name() {
			var oldVal, advVal float64
			for i, p := range ps {
				if p.Name() == old.Name() {
					oldVal = vals[i]
				}
				if p.Name() == adv.Name() {
					advVal = vals[i]
				}
			}
			if !metrics.Better(m, advVal, oldVal) {
				return false // switched without strict improvement
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSelfTuningStep25 measures one full self-tuning step (three
// policy schedules + decision) with 25 waiting jobs — the paper reports
// < 10 ms for this on 2004 hardware.
func BenchmarkSelfTuningStep25(b *testing.B) {
	r := stats.NewRand(7)
	base := machine.New(430, 0)
	var waiting []*job.Job
	for k := 0; k < 25; k++ {
		waiting = append(waiting, j(k+1, int64(r.Intn(3600)),
			r.Intn(64)+1, int64(r.Intn(14400)+60)))
	}
	s := MustNew(policy.Standard(), metrics.SLDwA{}, AdvancedDecider{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(3600, base, waiting); err != nil {
			b.Fatal(err)
		}
	}
}

func TestThresholdDeciderDamping(t *testing.T) {
	m := metrics.SLDwA{}
	d := ThresholdDecider{Threshold: 0.10}
	// 5 % improvement: below the 10 % threshold -> stay with old (FCFS).
	got := d.Decide(m, policy.FCFS{}, evalsWith(1.00, 0.95, 1.2))
	if got.Name() != "FCFS" {
		t.Fatalf("switched on a 5%% improvement: %s", got.Name())
	}
	// 20 % improvement: switch.
	got = d.Decide(m, policy.FCFS{}, evalsWith(1.00, 0.80, 1.2))
	if got.Name() != "SJF" {
		t.Fatalf("did not switch on a 20%% improvement: %s", got.Name())
	}
	// Ties always stay.
	got = d.Decide(m, policy.SJF{}, evalsWith(1.0, 1.0, 1.0))
	if got.Name() != "SJF" {
		t.Fatalf("tie did not stay: %s", got.Name())
	}
}

func TestThresholdZeroMatchesAdvanced(t *testing.T) {
	m := metrics.SLDwA{}
	ps := policy.Standard()
	f := func(a, b, c uint16, oldIdx uint8) bool {
		vals := []float64{float64(a%7) + 1, float64(b%7) + 1, float64(c%7) + 1}
		old := ps[int(oldIdx)%3]
		th := (ThresholdDecider{Threshold: 0}).Decide(m, old, evalsWith(vals...))
		adv := (AdvancedDecider{}).Decide(m, old, evalsWith(vals...))
		return th.Name() == adv.Name()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdDeciderMaximizeMetric(t *testing.T) {
	m := metrics.Utilization{}
	d := ThresholdDecider{Threshold: 0.10}
	// Utilization 0.50 -> 0.52 is only 4 %: stay.
	got := d.Decide(m, policy.FCFS{}, evalsWith(0.50, 0.52, 0.1))
	if got.Name() != "FCFS" {
		t.Fatalf("switched on 4%% utilization gain: %s", got.Name())
	}
	// 0.50 -> 0.60 is 20 %: switch.
	got = d.Decide(m, policy.FCFS{}, evalsWith(0.50, 0.60, 0.1))
	if got.Name() != "SJF" {
		t.Fatalf("did not switch on 20%% utilization gain: %s", got.Name())
	}
}

func TestThresholdDeciderReducesSwitches(t *testing.T) {
	// On a noisy workload the damped decider must switch at most as often
	// as the advanced one.
	r := stats.NewRand(31)
	base := machine.New(8, 0)
	damped := MustNew(policy.Standard(), metrics.SLDwA{}, ThresholdDecider{Threshold: 0.25})
	eager := MustNew(policy.Standard(), metrics.SLDwA{}, AdvancedDecider{})
	for step := 0; step < 60; step++ {
		var waiting []*job.Job
		for k := 0; k < r.Intn(6)+2; k++ {
			waiting = append(waiting, j(step*100+k+1, int64(step),
				r.Intn(8)+1, int64(r.Intn(400)+10)))
		}
		if _, err := damped.Step(int64(step), base, waiting); err != nil {
			t.Fatal(err)
		}
		if _, err := eager.Step(int64(step), base, waiting); err != nil {
			t.Fatal(err)
		}
	}
	if damped.Switches() > eager.Switches() {
		t.Fatalf("damped decider switched more (%d) than advanced (%d)",
			damped.Switches(), eager.Switches())
	}
}

func TestParallelStepMatchesSequential(t *testing.T) {
	r := stats.NewRand(17)
	base := machine.New(32, 0)
	base.Reserve(0, 500, 12)
	var waiting []*job.Job
	for k := 0; k < 20; k++ {
		waiting = append(waiting, j(k+1, int64(r.Intn(50)), r.Intn(16)+1, int64(r.Intn(900)+10)))
	}
	seq := MustNew(policy.Extended(), metrics.SLDwA{}, AdvancedDecider{})
	par := MustNew(policy.Extended(), metrics.SLDwA{}, AdvancedDecider{})
	par.SetParallel(true)
	rs, err := seq.Step(100, base, waiting)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.Step(100, base, waiting)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Chosen.Name() != rp.Chosen.Name() {
		t.Fatalf("parallel chose %s, sequential %s", rp.Chosen.Name(), rs.Chosen.Name())
	}
	for i := range rs.Evals {
		if rs.Evals[i].Value != rp.Evals[i].Value {
			t.Fatalf("eval %d differs: %v vs %v", i, rs.Evals[i].Value, rp.Evals[i].Value)
		}
	}
}

func TestParallelStepErrorPropagates(t *testing.T) {
	s := MustNew(policy.Standard(), metrics.SLDwA{}, SimpleDecider{})
	s.SetParallel(true)
	base := machine.New(2, 0)
	if _, err := s.Step(0, base, []*job.Job{j(1, 0, 5, 10)}); err == nil {
		t.Fatal("parallel step swallowed the error")
	}
}

func BenchmarkStepParallelVsSequential(b *testing.B) {
	r := stats.NewRand(7)
	base := machine.New(430, 0)
	var waiting []*job.Job
	for k := 0; k < 50; k++ {
		waiting = append(waiting, j(k+1, int64(r.Intn(3600)), r.Intn(64)+1, int64(r.Intn(14400)+60)))
	}
	for _, par := range []bool{false, true} {
		name := "sequential"
		if par {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			s := MustNew(policy.Extended(), metrics.SLDwA{}, AdvancedDecider{})
			s.SetParallel(par)
			for i := 0; i < b.N; i++ {
				if _, err := s.Step(3600, base, waiting); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Package dynp implements the self-tuning dynP scheduler of the paper:
// dynamic policy switching driven by self-tuning steps. In every step the
// scheduler computes a full schedule for each available policy (FCFS, SJF
// and LJF in the paper's CCS), evaluates every schedule with a performance
// metric so each policy is expressed by a single value, and a decider
// mechanism chooses the policy to switch to.
//
// Two deciders are provided. The simple decider ([15]) is the plain
// if-then-else cascade choosing the first policy with the best value; it
// ignores the previously active policy and therefore makes a wrong
// decision in four tie cases ([14]: FCFS is favored in three and SJF in
// one, although staying with the old policy is correct). The advanced
// decider fixes exactly those cases by staying with the old policy
// whenever it ties with the best value.
package dynp

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/schedule"
)

// Evaluation is one policy's outcome in a self-tuning step.
type Evaluation struct {
	Policy   policy.Policy
	Schedule *schedule.Schedule
	Value    float64
}

// Decider chooses the next active policy from the per-policy evaluations.
type Decider interface {
	Name() string
	// Decide returns the policy to switch to. evals is non-empty and in
	// the scheduler's fixed policy order; old is the currently active
	// policy (always one of the evaluated ones).
	Decide(m metrics.Metric, old policy.Policy, evals []Evaluation) policy.Policy
}

// SimpleDecider picks the first policy (in list order) whose value is not
// beaten by any other: the paper's three-if-then-else construct. With the
// standard order FCFS, SJF, LJF, ties are resolved toward FCFS (and SJF
// over LJF), reproducing the four wrong decisions analyzed in [14].
type SimpleDecider struct{}

func (SimpleDecider) Name() string { return "simple" }

func (SimpleDecider) Decide(m metrics.Metric, old policy.Policy, evals []Evaluation) policy.Policy {
	best := evals[0]
	for _, e := range evals[1:] {
		if metrics.Better(m, e.Value, best.Value) {
			best = e
		}
	}
	return best.Policy
}

// AdvancedDecider is the old-policy-aware decider: it behaves like the
// simple decider except that when the currently active policy ties with
// the best value, the scheduler stays with it.
type AdvancedDecider struct{}

func (AdvancedDecider) Name() string { return "advanced" }

func (AdvancedDecider) Decide(m metrics.Metric, old policy.Policy, evals []Evaluation) policy.Policy {
	best := evals[0]
	for _, e := range evals[1:] {
		if metrics.Better(m, e.Value, best.Value) {
			best = e
		}
	}
	for _, e := range evals {
		if e.Policy.Name() == old.Name() && !metrics.Better(m, best.Value, e.Value) {
			return e.Policy // old policy ties with the best: stay
		}
	}
	return best.Policy
}

// ThresholdDecider switches away from the old policy only when the best
// candidate improves on it by more than a relative threshold — the
// oscillation damping explored in the dynP scheduler family ([14]): tiny
// metric differences between policies are usually noise, and each switch
// perturbs the running plan. Threshold 0 behaves like AdvancedDecider.
type ThresholdDecider struct {
	// Threshold is the required relative improvement, e.g. 0.05 = 5 %.
	Threshold float64
}

func (d ThresholdDecider) Name() string { return "threshold" }

func (d ThresholdDecider) Decide(m metrics.Metric, old policy.Policy, evals []Evaluation) policy.Policy {
	best := evals[0]
	var oldEval *Evaluation
	for i := range evals {
		if metrics.Better(m, evals[i].Value, best.Value) {
			best = evals[i]
		}
		if evals[i].Policy.Name() == old.Name() {
			oldEval = &evals[i]
		}
	}
	if oldEval == nil {
		return best.Policy // old policy not evaluated: take the best
	}
	if !metrics.Better(m, best.Value, oldEval.Value) {
		return oldEval.Policy // old ties with the best: stay
	}
	// Relative improvement of best over old; direction-aware.
	var improvement float64
	switch {
	case oldEval.Value == 0:
		improvement = 1
	case m.Direction() == metrics.Maximize:
		improvement = (best.Value - oldEval.Value) / oldEval.Value
	default:
		improvement = (oldEval.Value - best.Value) / oldEval.Value
	}
	if improvement > d.Threshold {
		return best.Policy
	}
	return oldEval.Policy
}

// StepResult is the outcome of one self-tuning step.
type StepResult struct {
	// Chosen is the policy the decider selected.
	Chosen policy.Policy
	// Schedule is the full schedule of the chosen policy; the resource
	// manager implements it until the next step.
	Schedule *schedule.Schedule
	// Evals holds all per-policy evaluations, in scheduler policy order.
	Evals []Evaluation
	// Switched reports whether the active policy changed.
	Switched bool
}

// Best returns the evaluation of the chosen policy.
func (r *StepResult) Best() Evaluation {
	for _, e := range r.Evals {
		if e.Policy.Name() == r.Chosen.Name() {
			return e
		}
	}
	return Evaluation{} // unreachable for results produced by Step
}

// Scheduler is the self-tuning dynP scheduler.
type Scheduler struct {
	policies []policy.Policy
	metric   metrics.Metric
	decider  Decider
	current  policy.Policy
	parallel bool

	steps    int
	switches int

	trace     *obs.Tracer
	cSteps    *obs.Counter
	cSwitches *obs.Counter
	cReplans  *obs.Counter
	cParSteps *obs.Counter
}

// New constructs a scheduler. policies must be non-empty; the first one is
// the initially active policy (CCS starts with FCFS).
func New(policies []policy.Policy, m metrics.Metric, d Decider) (*Scheduler, error) {
	if len(policies) == 0 {
		return nil, errors.New("dynp: no policies")
	}
	seen := map[string]bool{}
	for _, p := range policies {
		if seen[p.Name()] {
			return nil, fmt.Errorf("dynp: duplicate policy %q", p.Name())
		}
		seen[p.Name()] = true
	}
	if m == nil {
		return nil, errors.New("dynp: nil metric")
	}
	if d == nil {
		return nil, errors.New("dynp: nil decider")
	}
	return &Scheduler{policies: policies, metric: m, decider: d, current: policies[0]}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(policies []policy.Policy, m metrics.Metric, d Decider) *Scheduler {
	s, err := New(policies, m, d)
	if err != nil {
		panic(err)
	}
	return s
}

// Current returns the active policy.
func (s *Scheduler) Current() policy.Policy { return s.current }

// Metric returns the metric the scheduler tunes for.
func (s *Scheduler) Metric() metrics.Metric { return s.metric }

// Policies returns the candidate policies in evaluation order.
func (s *Scheduler) Policies() []policy.Policy {
	return append([]policy.Policy(nil), s.policies...)
}

// Steps returns the number of self-tuning steps performed.
func (s *Scheduler) Steps() int { return s.steps }

// Switches returns how often the active policy changed.
func (s *Scheduler) Switches() int { return s.switches }

// SetObs attaches an observability sink: trace receives one
// "dynp.decision" event per self-tuning step carrying the per-policy
// metric scores that drove the decision, plus a "dynp.switch" event
// whenever the active policy changes; reg accumulates the
// dynp.steps/dynp.switches/dynp.replans counters. Either may be nil.
func (s *Scheduler) SetObs(trace *obs.Tracer, reg *obs.Registry) {
	s.trace = trace
	s.cSteps = reg.Counter("dynp.steps")
	s.cSwitches = reg.Counter("dynp.switches")
	s.cReplans = reg.Counter("dynp.replans")
	s.cParSteps = reg.Counter("dynp.parallel.steps")
}

// SetParallel makes Step evaluate the candidate policies concurrently,
// one goroutine per policy. Each policy builds its schedule on its own
// clone of the base profile, so the evaluations are independent; results
// are deterministic regardless of scheduling order because they are
// collected positionally.
func (s *Scheduler) SetParallel(on bool) { s.parallel = on }

// buildEval builds and evaluates one policy's schedule with panic
// containment: a panicking policy implementation must not kill the whole
// simulation (in the parallel path a goroutine panic would otherwise
// crash the process). A recovered panic is reported like a build error.
func (s *Scheduler) buildEval(now int64, base *machine.Profile, waiting []*job.Job, p policy.Policy) (ev Evaluation, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("dynp: %s: panic: %v", p.Name(), r)
			s.trace.Emit("dynp.panic",
				obs.Int("t", now),
				obs.Str("policy", p.Name()),
				obs.Str("value", fmt.Sprint(r)))
		}
	}()
	sch, berr := policy.Build(p, now, base, waiting)
	if berr != nil {
		return Evaluation{}, fmt.Errorf("dynp: %s: %v", p.Name(), berr)
	}
	return Evaluation{Policy: p, Schedule: sch, Value: s.metric.Eval(sch)}, nil
}

// Step performs one self-tuning step at time now: it computes full
// schedules for every policy on top of base (the profile of running
// jobs), evaluates them with the scheduler's metric, lets the decider
// choose, and switches the active policy. base is not modified.
//
// A policy whose Build panics is dropped from the step (the panic is
// recovered and traced as "dynp.panic"); Step errors only when no policy
// produced a schedule.
func (s *Scheduler) Step(now int64, base *machine.Profile, waiting []*job.Job) (*StepResult, error) {
	all := make([]Evaluation, len(s.policies))
	errs := make([]error, len(s.policies))
	if s.parallel && len(s.policies) > 1 {
		s.cParSteps.Inc()
		// One goroutine per policy, bounded to GOMAXPROCS so a large
		// policy set does not oversubscribe the machine while ILP solves
		// (which have their own worker pools) run in the same process.
		sem := make(chan struct{}, runtime.GOMAXPROCS(0))
		var wg sync.WaitGroup
		for i, p := range s.policies {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, p policy.Policy) {
				defer func() { <-sem; wg.Done() }()
				all[i], errs[i] = s.buildEval(now, base, waiting, p)
			}(i, p)
		}
		wg.Wait()
	} else {
		for i, p := range s.policies {
			all[i], errs[i] = s.buildEval(now, base, waiting, p)
			// Build boundaries are not preemption points; yield so other
			// goroutines (serving handlers, the WAL writer) get the CPU
			// between policy evaluations on a small host.
			runtime.Gosched()
		}
	}
	evals := all[:0]
	var firstErr error
	for i := range all {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		evals = append(evals, all[i])
	}
	if len(evals) == 0 {
		return nil, fmt.Errorf("dynp: no policy produced a schedule: %w", firstErr)
	}
	chosen := s.decider.Decide(s.metric, s.current, evals)
	res := &StepResult{Chosen: chosen, Evals: evals, Switched: chosen.Name() != s.current.Name()}
	res.Schedule = res.Best().Schedule
	if res.Switched {
		s.switches++
		s.cSwitches.Inc()
		s.trace.Emit("dynp.switch",
			obs.Int("t", now),
			obs.Str("from", s.current.Name()),
			obs.Str("to", chosen.Name()))
	}
	if s.trace.Enabled() {
		fields := make([]obs.Field, 0, len(evals)+4)
		fields = append(fields,
			obs.Int("t", now),
			obs.Int("queue_depth", int64(len(waiting))),
			obs.Str("chosen", chosen.Name()),
			obs.Bool("switched", res.Switched))
		for _, e := range evals {
			fields = append(fields, obs.Float("score_"+e.Policy.Name(), e.Value))
		}
		s.trace.Emit("dynp.decision", fields...)
	}
	s.current = chosen
	s.steps++
	s.cSteps.Inc()
	return res, nil
}

// Reschedule builds a schedule with the currently active policy without a
// self-tuning step (used by the simulator when a job finishes early and
// the plan is compacted, which is not a policy decision point).
func (s *Scheduler) Reschedule(now int64, base *machine.Profile, waiting []*job.Job) (*schedule.Schedule, error) {
	s.cReplans.Inc()
	return policy.Build(s.current, now, base, waiting)
}

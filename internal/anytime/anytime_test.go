package anytime

import (
	"testing"
	"time"

	"repro/internal/ilpsched"
	"repro/internal/job"
	"repro/internal/machine"
	"repro/internal/mip"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
)

// greedySeed packs the jobs first-fit in ID order — deliberately
// mediocre, so the solver has room to publish improvements.
func greedySeed(t *testing.T, total int, now int64, jobs []*job.Job) *schedule.Schedule {
	t.Helper()
	p := machine.New(total, now)
	s := &schedule.Schedule{Policy: "seed", Now: now, Machine: total}
	for _, j := range jobs {
		start, ok := p.EarliestFit(now, j.Estimate, j.Width)
		if !ok {
			t.Fatalf("job %d does not fit", j.ID)
		}
		if err := p.Reserve(start, start+j.Estimate, j.Width); err != nil {
			t.Fatalf("reserve job %d: %v", j.ID, err)
		}
		s.Entries = append(s.Entries, schedule.Entry{Job: j, Start: start})
	}
	return s
}

func problemOf(t *testing.T, total int, now int64, jobs []*job.Job) Problem {
	t.Helper()
	seed := greedySeed(t, total, now, jobs)
	horizon := seed.Makespan()
	inst := &ilpsched.Instance{
		Now: now, Machine: total, Base: machine.New(total, now),
		Jobs: jobs, Horizon: horizon,
	}
	return Problem{Inst: inst, Seed: seed, Fingerprint: solvepipe.Fingerprint(inst), Now: now}
}

// testJobs is a queue where first-fit in ID order wastes capacity: the
// wide job blocks narrow ones that the optimum reorders.
func testJobs(now int64) []*job.Job {
	return []*job.Job{
		{ID: 1, Submit: now, Width: 7, Estimate: 100, Runtime: 100},
		{ID: 2, Submit: now, Width: 4, Estimate: 40, Runtime: 40},
		{ID: 3, Submit: now, Width: 4, Estimate: 40, Runtime: 40},
		{ID: 4, Submit: now, Width: 2, Estimate: 30, Runtime: 30},
		{ID: 5, Submit: now, Width: 8, Estimate: 20, Runtime: 20},
	}
}

func newTestCore(reg *obs.Registry, notify func()) *Core {
	return New(Config{
		Pipe: solvepipe.Config{
			Budget: 5 * time.Second,
			MIP:    mip.Options{MaxNodes: 200000},
		},
		Metrics: reg,
		Notify:  notify,
	})
}

func TestCorePublishesImprovingPlans(t *testing.T) {
	reg := obs.NewRegistry()
	nudge := make(chan struct{}, 1)
	c := newTestCore(reg, func() {
		select {
		case nudge <- struct{}{}:
		default:
		}
	})
	c.Start()
	defer c.Stop()

	const total = 8
	p := problemOf(t, total, 0, testJobs(0))
	seedObj := ilpsched.ObjectiveOfSchedule(p.Seed)
	c.Update(p)

	deadline := time.After(10 * time.Second)
	var plan *Plan
	for plan == nil || plan.Objective >= seedObj {
		select {
		case <-nudge:
			plan = c.Best()
		case <-deadline:
			t.Fatalf("no improving plan published (best %+v, seed objective %g)", plan, seedObj)
		}
	}
	if plan.Fingerprint != p.Fingerprint || plan.Now != p.Now {
		t.Fatalf("plan names (%d, %d), problem is (%d, %d)",
			plan.Fingerprint, plan.Now, p.Fingerprint, p.Now)
	}
	if err := plan.Schedule.Validate(p.Inst.Base); err != nil {
		t.Fatalf("published plan infeasible: %v", err)
	}
	if len(plan.Schedule.Entries) != len(p.Inst.Jobs) {
		t.Fatalf("plan covers %d jobs, instance has %d", len(plan.Schedule.Entries), len(p.Inst.Jobs))
	}
	if got := ilpsched.ObjectiveOfSchedule(plan.Schedule); got != plan.Objective {
		t.Fatalf("plan objective %g, schedule evaluates to %g", plan.Objective, got)
	}
	if n := reg.Counter("anytime.incumbents.found").Value(); n < 1 {
		t.Fatalf("found counter %d, want >= 1", n)
	}
}

// TestCoreSeqStrictlyIncreases: every nudge-visible plan carries a
// larger Seq and (within one problem) a smaller objective.
func TestCoreSeqStrictlyIncreases(t *testing.T) {
	nudge := make(chan struct{}, 64)
	c := newTestCore(nil, func() { nudge <- struct{}{} })
	c.Start()
	defer c.Stop()

	p := problemOf(t, 8, 0, testJobs(0))
	c.Update(p)

	var lastSeq int64
	lastObj := ilpsched.ObjectiveOfSchedule(p.Seed) + 1
	timeout := time.After(10 * time.Second)
	for improved := 0; improved < 2; {
		select {
		case <-nudge:
			plan := c.Best()
			if plan == nil {
				continue
			}
			if plan.Seq == lastSeq {
				continue
			}
			if plan.Seq < lastSeq {
				t.Fatalf("seq went backwards: %d after %d", plan.Seq, lastSeq)
			}
			if plan.Objective >= lastObj {
				t.Fatalf("objective did not improve: %g after %g", plan.Objective, lastObj)
			}
			lastSeq, lastObj = plan.Seq, plan.Objective
			improved++
		case <-timeout:
			if lastSeq > 0 {
				return // at least one improvement is enough on a slow box
			}
			t.Fatal("no plans published")
		}
	}
}

func TestCorePreemptionSwitchesProblems(t *testing.T) {
	reg := obs.NewRegistry()
	nudge := make(chan struct{}, 64)
	c := newTestCore(reg, func() {
		select {
		case nudge <- struct{}{}:
		default:
		}
	})
	c.Start()
	defer c.Stop()

	// A big instance the solver will chew on for a while...
	var bigJobs []*job.Job
	for i := 1; i <= 14; i++ {
		bigJobs = append(bigJobs, &job.Job{
			ID: i, Submit: 0, Width: 1 + i%7, Estimate: int64(20 + 13*i), Runtime: int64(20 + 13*i),
		})
	}
	big := problemOf(t, 8, 0, bigJobs)
	c.Update(big)
	time.Sleep(50 * time.Millisecond)
	// ...preempted by a fresh small problem at a later virtual time.
	small := problemOf(t, 8, 1000, []*job.Job{
		{ID: 100, Submit: 1000, Width: 7, Estimate: 50, Runtime: 50},
		{ID: 101, Submit: 1000, Width: 4, Estimate: 30, Runtime: 30},
		{ID: 102, Submit: 1000, Width: 4, Estimate: 30, Runtime: 30},
	})
	c.Update(small)

	deadline := time.After(15 * time.Second)
	for {
		plan := c.Best()
		if plan != nil && plan.Fingerprint == small.Fingerprint && plan.Now == small.Now {
			if err := plan.Schedule.Validate(small.Inst.Base); err != nil {
				t.Fatalf("plan for new problem infeasible: %v", err)
			}
			return
		}
		select {
		case <-nudge:
		case <-deadline:
			t.Fatalf("core never published for the new problem (best %+v)", plan)
		}
	}
}

func TestCoreIdlesOnEmptyProblem(t *testing.T) {
	c := newTestCore(nil, nil)
	c.Start()
	c.Update(Problem{})
	c.Update(problemOf(t, 4, 0, []*job.Job{{ID: 1, Submit: 0, Width: 2, Estimate: 10, Runtime: 10}}))
	c.Update(Problem{}) // and back to idle
	time.Sleep(20 * time.Millisecond)
	c.Stop()
	// Stop after Start returns only when the loop exited; reaching here
	// without deadlock is the assertion.
}

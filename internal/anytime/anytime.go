// Package anytime is the background anytime-optimizer core: it runs the
// parallel branch and bound continuously instead of per replan interval,
// streaming every strictly improving, validated incumbent out through a
// lock-free atomic pointer the moment the solver finds it.
//
// The serving loop (internal/schedd) and the core form a producer/
// consumer pair with no locks on either hot path:
//
//   - the writer loop pushes an immutable Problem (instance + seed +
//     fingerprint) after every state mutation via Update — latest wins,
//     and a stale in-flight solve is preempted cooperatively through
//     mip.Options.Stop at the solver's own counter-gated checkpoint;
//   - the solve goroutine publishes each improved incumbent as a Plan
//     through an atomic.Pointer and fires the Notify hook (a nonblocking
//     channel nudge in schedd), so the writer adopts improvements at its
//     own pace without the solver ever blocking on it.
//
// Staleness is handled at the consumer: every Plan carries the
// fingerprint and virtual time of the Problem it was solved against, and
// the writer refuses any plan whose fingerprint no longer matches the
// queue state it just pushed (see schedd's adoption path). The core
// itself only guarantees that a Plan was feasible and strictly improving
// for the Problem it names.
package anytime

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/ilpsched"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/solvepipe"
)

// Problem is one immutable scheduling problem pushed by the serving
// loop. The zero Problem (nil Inst) idles the core: it preempts any
// in-flight solve and waits for the next Update.
type Problem struct {
	// Inst is the full time-indexed instance (base profile of running
	// jobs, waiting jobs, horizon). The core never mutates it; the
	// pusher must not either once pushed.
	Inst *ilpsched.Instance
	// Seed is the currently adopted plan restricted to the instance's
	// jobs — the warm-start incumbent every solve session begins from,
	// which also makes the first streamed incumbent a known-feasible
	// baseline to improve on.
	Seed *schedule.Schedule
	// Fingerprint is solvepipe.Fingerprint(Inst), computed by the
	// pusher so producer and consumer agree on the staleness key.
	Fingerprint uint64
	// Now is Inst.Now, hoisted so consumers can reject a plan solved at
	// a different virtual time without touching the instance.
	Now int64
}

// Plan is one published incumbent: a feasible compacted schedule for the
// Problem identified by (Fingerprint, Now), strictly better than every
// earlier Plan of the same solve session.
type Plan struct {
	// Fingerprint and Now name the Problem this plan solves.
	Fingerprint uint64
	Now         int64
	// Schedule is the §3.2-compacted schedule covering exactly the
	// problem's jobs.
	Schedule *schedule.Schedule
	// Objective is the Eq. 2 objective of Schedule (weighted response
	// sum of the compacted entries — directly comparable with
	// ilpsched.ObjectiveOfSchedule of a competing plan).
	Objective float64
	// Seq increments with every published plan across all sessions, so
	// a consumer can cheaply skip plans it has already inspected.
	Seq int64
	// FoundAfter is how long into the solve session the incumbent
	// appeared.
	FoundAfter time.Duration
}

// Config parameterizes the core.
type Config struct {
	// Pipe is the solve-pipeline configuration (scaling, MIP options,
	// presolve). Budget bounds ONE solve session; a session also ends
	// early when Update preempts it or the search proves optimality.
	Pipe solvepipe.Config
	// Trace and Metrics are the observability sinks (nil-safe).
	Trace   *obs.Tracer
	Metrics *obs.Registry
	// Notify, if non-nil, is called after every published Plan — on the
	// solver's worker goroutine, so it must be fast and must never
	// block (schedd passes a nonblocking channel send).
	Notify func()
	// OnSessionEnd, if non-nil, is called when a solve session returns —
	// optimality proven, budget exhausted, or preempted by a newer
	// Update. Runs on the solve goroutine; same rules as Notify.
	OnSessionEnd func()
}

// Core runs the continuous optimizer. Create with New, feed with
// Update, read with Best, stop with Stop.
type Core struct {
	cfg     Config
	updates chan Problem
	stopCh  chan struct{}
	done    chan struct{}
	started atomic.Bool

	// gen increments on every Update; an in-flight solve stops as soon
	// as it observes a generation newer than its own.
	gen  atomic.Int64
	seq  atomic.Int64
	best atomic.Pointer[Plan]

	cSolves    *obs.Counter
	cPreempted *obs.Counter
	cFound     *obs.Counter
}

// New creates a stopped core.
func New(cfg Config) *Core {
	c := &Core{
		cfg: cfg,
		// Capacity 1 + latest-wins drain in the loop: Update never
		// blocks the writer and never queues history.
		updates: make(chan Problem, 1),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		c.cSolves = reg.Counter("anytime.solves")
		c.cPreempted = reg.Counter("anytime.solves.preempted")
		c.cFound = reg.Counter("anytime.incumbents.found")
	}
	return c
}

// Start launches the solve loop. It must be called exactly once.
func (c *Core) Start() {
	if !c.started.CompareAndSwap(false, true) {
		panic("anytime: Start called twice")
	}
	go c.run()
}

// Update hands the core the latest problem, preempting any in-flight
// solve of an older one. Latest wins: if the core is still busy when the
// next Update arrives, the intermediate problem is simply skipped. Never
// blocks; safe for concurrent use (though schedd calls it from the one
// writer goroutine).
func (c *Core) Update(p Problem) {
	c.gen.Add(1)
	for {
		select {
		case c.updates <- p:
			return
		default:
		}
		// Channel full: displace the stale queued problem.
		select {
		case <-c.updates:
		default:
		}
	}
}

// Best returns the most recently published plan (nil before the first).
// The consumer must check Fingerprint/Now against its own state before
// adopting — the core keeps publishing for the problem a solve session
// started with even while a newer Update is waiting.
func (c *Core) Best() *Plan { return c.best.Load() }

// Stop preempts any in-flight solve and waits for the loop to exit.
// Safe to call once after Start.
func (c *Core) Stop() {
	close(c.stopCh)
	if c.started.Load() {
		<-c.done
	} else {
		close(c.done)
	}
}

func (c *Core) run() {
	defer close(c.done)
	for {
		select {
		case <-c.stopCh:
			return
		case p := <-c.updates:
			// Drain to the freshest problem before burning solver time.
			for {
				select {
				case p2 := <-c.updates:
					p = p2
					continue
				default:
				}
				break
			}
			c.solve(p)
		}
	}
}

// solve runs one session over a problem, publishing every strictly
// improving incumbent. Returns when the search finishes (optimal, budget
// exhausted) or a newer generation preempts it.
func (c *Core) solve(p Problem) {
	if p.Inst == nil || len(p.Inst.Jobs) == 0 {
		return
	}
	myGen := c.gen.Load()
	stop := func() bool {
		select {
		case <-c.stopCh:
			return true
		default:
		}
		return c.gen.Load() != myGen
	}
	pipe := c.cfg.Pipe
	if pipe.Trace == nil {
		pipe.Trace = c.cfg.Trace
	}
	if pipe.Metrics == nil {
		pipe.Metrics = c.cfg.Metrics
	}
	pipe.Seed = p.Seed
	c.cSolves.Inc()
	start := time.Now()
	out := solvepipe.SolveAnytime(context.Background(), pipe, p.Inst, stop, func(inc solvepipe.AnytimeIncumbent) {
		c.publishPlan(p, inc)
	})
	preempted := c.gen.Load() != myGen
	if preempted {
		c.cPreempted.Inc()
	}
	c.cfg.Trace.Emit("anytime.session",
		obs.Int("t", p.Now),
		obs.Int("jobs", int64(len(p.Inst.Jobs))),
		obs.Bool("preempted", preempted),
		obs.Bool("solved", !out.Failed()),
		obs.Float("dur_ms", float64(time.Since(start))/float64(time.Millisecond)))
	if c.cfg.OnSessionEnd != nil {
		c.cfg.OnSessionEnd()
	}
}

// publishPlan validates and publishes one streamed incumbent. Runs on a
// solver worker goroutine under the solver's incumbent lock: everything
// here is cheap (one validate over the entries) and lock-free towards
// the consumer.
func (c *Core) publishPlan(p Problem, inc solvepipe.AnytimeIncumbent) {
	sch := inc.Solution.Compacted
	if sch == nil || len(sch.Entries) == 0 {
		return
	}
	// The solver already decoded a feasible grid solution and compacted
	// it against the instance base; re-validate anyway so a plan that
	// escapes this core is feasible by construction, never by trust.
	if err := sch.Validate(p.Inst.Base); err != nil {
		c.cfg.Trace.Emit("anytime.incumbent.invalid", obs.Str("err", err.Error()))
		return
	}
	obj := ilpsched.ObjectiveOfSchedule(sch)
	if prev := c.best.Load(); prev != nil &&
		prev.Fingerprint == p.Fingerprint && prev.Now == p.Now && obj >= prev.Objective {
		// Compaction can flatten two distinct grid incumbents onto equal
		// schedules; only strictly better plans are worth a nudge.
		return
	}
	plan := &Plan{
		Fingerprint: p.Fingerprint,
		Now:         p.Now,
		Schedule:    sch,
		Objective:   obj,
		Seq:         c.seq.Add(1),
		FoundAfter:  inc.At,
	}
	c.best.Store(plan)
	c.cFound.Inc()
	c.cfg.Trace.Emit("anytime.incumbent",
		obs.Int("t", p.Now),
		obs.Int("seq", plan.Seq),
		obs.Float("objective", obj),
		obs.Float("found_ms", float64(inc.At)/float64(time.Millisecond)))
	if c.cfg.Notify != nil {
		c.cfg.Notify()
	}
}

package lp

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteMPS emits the problem in free-format MPS, the interchange format
// CPLEX-era solvers consume. Columns listed in integer are wrapped in
// INTORG/INTEND marker pairs. Column names are taken from the problem
// (sanitized); rows are named R0..R(m-1) and the objective row OBJ.
func WriteMPS(w io.Writer, p *Problem, name string, integer []int) error {
	p.coalesce()
	bw := bufio.NewWriter(w)
	isInt := make(map[int]bool, len(integer))
	for _, c := range integer {
		if c < 0 || c >= p.NumVariables() {
			return fmt.Errorf("lp: integer column %d out of range", c)
		}
		isInt[c] = true
	}
	if name == "" {
		name = "PROBLEM"
	}
	fmt.Fprintf(bw, "NAME          %s\n", sanitize(name))
	fmt.Fprintf(bw, "ROWS\n N  OBJ\n")
	for i := 0; i < p.NumConstraints(); i++ {
		var kind byte
		switch p.sense[i] {
		case LE:
			kind = 'L'
		case GE:
			kind = 'G'
		default:
			kind = 'E'
		}
		fmt.Fprintf(bw, " %c  R%d\n", kind, i)
	}
	fmt.Fprintf(bw, "COLUMNS\n")
	inInt := false
	markers := 0
	for j := 0; j < p.NumVariables(); j++ {
		if isInt[j] != inInt {
			kind := "INTORG"
			if inInt {
				kind = "INTEND"
			}
			fmt.Fprintf(bw, "    MARKER%d   'MARKER'  '%s'\n", markers, kind)
			markers++
			inInt = isInt[j]
		}
		cn := p.colName(j)
		if c := p.cost[j]; c != 0 {
			fmt.Fprintf(bw, "    %-10s OBJ  %s\n", cn, fnum(c))
		}
		for _, e := range p.cols[j] {
			fmt.Fprintf(bw, "    %-10s R%d  %s\n", cn, e.row, fnum(e.val))
		}
		// A column with no entries at all must still appear so the reader
		// learns it exists: emit a zero objective entry.
		if p.cost[j] == 0 && len(p.cols[j]) == 0 {
			fmt.Fprintf(bw, "    %-10s OBJ  0\n", cn)
		}
	}
	if inInt {
		fmt.Fprintf(bw, "    MARKER%d   'MARKER'  'INTEND'\n", markers)
	}
	fmt.Fprintf(bw, "RHS\n")
	for i := 0; i < p.NumConstraints(); i++ {
		if p.rhs[i] != 0 {
			fmt.Fprintf(bw, "    RHS  R%d  %s\n", i, fnum(p.rhs[i]))
		}
	}
	fmt.Fprintf(bw, "BOUNDS\n")
	for j := 0; j < p.NumVariables(); j++ {
		lo, hi := p.lo[j], p.hi[j]
		cn := p.colName(j)
		switch {
		case lo == 0 && math.IsInf(hi, 1):
			// Default bounds: nothing to emit.
		case lo == hi:
			fmt.Fprintf(bw, " FX BND  %-10s %s\n", cn, fnum(lo))
		case math.IsInf(lo, -1) && math.IsInf(hi, 1):
			fmt.Fprintf(bw, " FR BND  %-10s\n", cn)
		default:
			if math.IsInf(lo, -1) {
				fmt.Fprintf(bw, " MI BND  %-10s\n", cn)
			} else if lo != 0 {
				fmt.Fprintf(bw, " LO BND  %-10s %s\n", cn, fnum(lo))
			}
			if !math.IsInf(hi, 1) {
				fmt.Fprintf(bw, " UP BND  %-10s %s\n", cn, fnum(hi))
			}
		}
	}
	fmt.Fprintf(bw, "ENDATA\n")
	return bw.Flush()
}

// colName returns a unique, MPS-safe name for column j.
func (p *Problem) colName(j int) string {
	n := sanitize(p.names[j])
	if n == "" {
		return fmt.Sprintf("C%d", j)
	}
	return fmt.Sprintf("%s_%d", n, j)
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '.', r == '-':
			return r
		}
		return '_'
	}, s)
}

func fnum(v float64) string {
	return strconv.FormatFloat(v, 'g', 17, 64)
}

// ReadMPS parses a free-format MPS stream (the subset WriteMPS emits plus
// the common BV/PL bound types and RANGES-free files). It returns the
// problem and the indices of integer columns.
func ReadMPS(r io.Reader) (*Problem, []int, error) {
	p := NewProblem()
	var integer []int
	rowIdx := map[string]int{}
	colIdx := map[string]int{}
	objRow := ""
	section := ""
	inInt := false
	boundsSeen := map[int]bool{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	lineNo := 0
	getCol := func(name string) int {
		if j, ok := colIdx[name]; ok {
			return j
		}
		j := p.AddVariable(0, Inf, 0, name)
		colIdx[name] = j
		if inInt {
			integer = append(integer, j)
		}
		return j
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if t := strings.TrimSpace(line); t == "" || strings.HasPrefix(t, "*") {
			continue
		}
		// Section headers start in column 1 (no leading blank).
		if line[0] != ' ' && line[0] != '\t' {
			fields := strings.Fields(line)
			section = strings.ToUpper(fields[0])
			if section == "ENDATA" {
				break
			}
			continue
		}
		fields := strings.Fields(line)
		switch section {
		case "ROWS":
			if len(fields) != 2 {
				return nil, nil, fmt.Errorf("lp: mps line %d: bad ROWS entry", lineNo)
			}
			kind, name := strings.ToUpper(fields[0]), fields[1]
			switch kind {
			case "N":
				if objRow == "" {
					objRow = name
				}
			case "L":
				rowIdx[name] = p.AddConstraint(LE, 0)
			case "G":
				rowIdx[name] = p.AddConstraint(GE, 0)
			case "E":
				rowIdx[name] = p.AddConstraint(EQ, 0)
			default:
				return nil, nil, fmt.Errorf("lp: mps line %d: unknown row kind %q", lineNo, kind)
			}
		case "COLUMNS":
			if len(fields) >= 3 && strings.Contains(line, "'MARKER'") {
				if strings.Contains(line, "'INTORG'") {
					inInt = true
				} else if strings.Contains(line, "'INTEND'") {
					inInt = false
				}
				continue
			}
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, nil, fmt.Errorf("lp: mps line %d: bad COLUMNS entry", lineNo)
			}
			j := getCol(fields[0])
			for k := 1; k < len(fields); k += 2 {
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				if fields[k] == objRow {
					p.cost[j] += v
					continue
				}
				row, ok := rowIdx[fields[k]]
				if !ok {
					return nil, nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, fields[k])
				}
				p.SetCoeff(row, j, v)
			}
		case "RHS":
			if len(fields) < 3 || len(fields)%2 == 0 {
				return nil, nil, fmt.Errorf("lp: mps line %d: bad RHS entry", lineNo)
			}
			for k := 1; k < len(fields); k += 2 {
				if fields[k] == objRow {
					continue // objective offset: unsupported, ignored
				}
				row, ok := rowIdx[fields[k]]
				if !ok {
					return nil, nil, fmt.Errorf("lp: mps line %d: unknown row %q", lineNo, fields[k])
				}
				v, err := strconv.ParseFloat(fields[k+1], 64)
				if err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
				p.rhs[row] = v
			}
		case "BOUNDS":
			if len(fields) < 3 {
				return nil, nil, fmt.Errorf("lp: mps line %d: bad BOUNDS entry", lineNo)
			}
			kind := strings.ToUpper(fields[0])
			j, ok := colIdx[fields[2]]
			if !ok {
				return nil, nil, fmt.Errorf("lp: mps line %d: unknown column %q", lineNo, fields[2])
			}
			var v float64
			if len(fields) >= 4 {
				var err error
				if v, err = strconv.ParseFloat(fields[3], 64); err != nil {
					return nil, nil, fmt.Errorf("lp: mps line %d: %v", lineNo, err)
				}
			}
			if !boundsSeen[j] && (kind == "UP" || kind == "MI") {
				// First bound on the column adjusts only one side.
			}
			boundsSeen[j] = true
			switch kind {
			case "LO":
				p.lo[j] = v
			case "UP":
				p.hi[j] = v
				// MPS convention: UP with a negative value and no prior LO
				// makes the lower bound -inf.
				if v < 0 && p.lo[j] == 0 {
					p.lo[j] = math.Inf(-1)
				}
			case "FX":
				p.lo[j], p.hi[j] = v, v
			case "FR":
				p.lo[j], p.hi[j] = math.Inf(-1), Inf
			case "MI":
				p.lo[j] = math.Inf(-1)
			case "PL":
				p.hi[j] = Inf
			case "BV":
				p.lo[j], p.hi[j] = 0, 1
				integer = appendUnique(integer, j)
			case "UI":
				p.hi[j] = v
				integer = appendUnique(integer, j)
			case "LI":
				p.lo[j] = v
				integer = appendUnique(integer, j)
			default:
				return nil, nil, fmt.Errorf("lp: mps line %d: unknown bound kind %q", lineNo, kind)
			}
		case "RANGES":
			return nil, nil, fmt.Errorf("lp: mps line %d: RANGES not supported", lineNo)
		case "":
			return nil, nil, fmt.Errorf("lp: mps line %d: data before any section", lineNo)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if objRow == "" {
		return nil, nil, fmt.Errorf("lp: mps: no objective (N) row")
	}
	return p, integer, nil
}

func appendUnique(xs []int, v int) []int {
	for _, x := range xs {
		if x == v {
			return xs
		}
	}
	return append(xs, v)
}

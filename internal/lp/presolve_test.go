package lp

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestPresolveFixedColumn(t *testing.T) {
	// min x + y s.t. x + y >= 4, x fixed at 1 -> y >= 3, which the
	// singleton-row fold turns into a bound: no rows survive.
	p := NewProblem()
	x := p.AddVariable(1, 1, 1, "x")
	y := p.AddVariable(0, 10, 1, "y")
	r := p.AddConstraint(GE, 4)
	p.SetCoeff(r, x, 1)
	p.SetCoeff(r, y, 1)
	pr, st := Presolve(p)
	if st != Optimal {
		t.Fatalf("status = %v", st)
	}
	if pr.Reduced.NumVariables() != 1 || pr.Reduced.NumConstraints() != 0 {
		t.Fatalf("reduction wrong: %d cols, %d rows",
			pr.Reduced.NumVariables(), pr.Reduced.NumConstraints())
	}
	if lo, hi := pr.Reduced.Bounds(0); lo != 3 || hi != 10 {
		t.Fatalf("tightened bounds = [%v, %v], want [3, 10]", lo, hi)
	}
	if pr.Stats.SingletonRows != 1 || pr.Stats.ColsFixed != 1 || pr.Stats.RowsRemoved != 1 {
		t.Fatalf("stats = %+v", pr.Stats)
	}
	if mapped := pr.MapCols([]int{x, y}); mapped[0] != -1 || mapped[1] != 0 {
		t.Fatalf("MapCols = %v", mapped)
	}
	if v, ok := pr.FixedValue(x); !ok || v != 1 {
		t.Fatalf("FixedValue(x) = %v, %v", v, ok)
	}
	res, err := p.SolvePresolved(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-4) > 1e-8 {
		t.Fatalf("postsolved: %v %g, want optimal 4", res.Status, res.Objective)
	}
	if res.X[x] != 1 || math.Abs(res.X[y]-3) > 1e-8 {
		t.Fatalf("postsolved X = %v", res.X)
	}
	checkKKT(t, p, res)
}

func TestPresolveEmptyColumn(t *testing.T) {
	p := NewProblem()
	e := p.AddVariable(0, 5, -2, "empty") // no rows: settles at hi = 5
	x := p.AddVariable(0, 3, 1, "x")
	r := p.AddConstraint(GE, 2)
	p.SetCoeff(r, x, 1)
	res, err := p.SolvePresolved(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[e] != 5 {
		t.Fatalf("empty column value %v, want 5", res.X[e])
	}
	if math.Abs(res.Objective-(-10+2)) > 1e-8 {
		t.Fatalf("objective %g, want -8", res.Objective)
	}
	checkKKT(t, p, res)
}

func TestPresolveDetectsUnboundedEmptyColumn(t *testing.T) {
	p := NewProblem()
	p.AddVariable(0, Inf, -1, "runaway")
	res, err := p.SolvePresolved(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", res.Status)
	}
}

func TestPresolveDetectsEmptyRowInfeasible(t *testing.T) {
	// x fixed at 1, row x >= 4 becomes empty with rhs 3 > 0: infeasible.
	p := NewProblem()
	x := p.AddVariable(1, 1, 0, "x")
	r := p.AddConstraint(GE, 4)
	p.SetCoeff(r, x, 1)
	res, err := p.SolvePresolved(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	// The consistent variant is kept feasible.
	p2 := NewProblem()
	x2 := p2.AddVariable(4, 4, 0, "x")
	r2 := p2.AddConstraint(GE, 4)
	p2.SetCoeff(r2, x2, 1)
	res2, err := p2.SolvePresolved(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Optimal || res2.X[x2] != 4 {
		t.Fatalf("consistent fixed problem: %v %v", res2.Status, res2.X)
	}
}

func TestPresolveAllColumnsRemoved(t *testing.T) {
	p := NewProblem()
	p.AddVariable(2, 2, 3, "a")
	p.AddVariable(0, 1, 5, "b") // empty, cost > 0 -> 0
	res, err := p.SolvePresolved(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Objective-6) > 1e-12 {
		t.Fatalf("trivial problem: %v %g, want optimal 6", res.Status, res.Objective)
	}
}

// Property: SolvePresolved agrees with Solve (status, objective, KKT) on
// random feasible LPs augmented with fixed and empty columns.
func TestPresolveAgreesWithSolve(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRand(seed)
		p := randomFeasibleLP(r)
		// Sprinkle in fixed and empty columns.
		for k := 0; k < r.Intn(3); k++ {
			v := float64(r.Intn(4))
			j := p.AddVariable(v, v, float64(r.Intn(7)-3), "fx")
			if p.NumConstraints() > 0 && r.Intn(2) == 0 {
				p.SetCoeff(r.Intn(p.NumConstraints()), j, float64(r.Intn(3)-1))
			}
		}
		for k := 0; k < r.Intn(2); k++ {
			p.AddVariable(0, float64(r.Intn(5)+1), float64(r.Intn(7)-3), "em")
		}
		a, err := p.Solve(Options{})
		if err != nil {
			return false
		}
		b, err := p.SolvePresolved(Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if a.Status != b.Status {
			t.Logf("seed %d: status %v vs %v", seed, a.Status, b.Status)
			return false
		}
		if a.Status == Optimal {
			if math.Abs(a.Objective-b.Objective) > 1e-6 {
				t.Logf("seed %d: objective %g vs %g", seed, a.Objective, b.Objective)
				return false
			}
			checkKKT(t, p, b)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
